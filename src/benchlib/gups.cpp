#include "benchlib/gups.hpp"

#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {

namespace {

/// Cycles charged per update for the benchmark's own work between memory
/// operations: the polynomial stream step, index masking, owner/offset
/// arithmetic and loop control, as executed by the interpreted RISC-V
/// environment the paper measures (a few hundred Spike-interpreted
/// instructions per update).
constexpr std::uint64_t kUpdateComputeCycles = 300;

}  // namespace

GupsResult run_gups(Machine& machine, const GupsConfig& config) {
  const int n = machine.n_pes();
  const std::uint64_t total_entries = std::uint64_t{1}
                                      << config.log2_table_entries;
  XBGAS_CHECK(total_entries % static_cast<std::uint64_t>(n) == 0,
              "table entries must divide evenly across PEs");
  const std::uint64_t local_entries =
      total_entries / static_cast<std::uint64_t>(n);
  XBGAS_CHECK(is_pow2(local_entries), "per-PE table slice must be 2^k");
  const unsigned local_shift = floor_log2(local_entries);

  machine.reset_time_and_stats();

  const std::uint64_t updates_per_pe =
      config.updates_per_pe != 0
          ? config.updates_per_pe
          : 4 * total_entries / static_cast<std::uint64_t>(n);

  GupsResult result;
  result.n_pes = n;
  result.total_updates = updates_per_pe * static_cast<std::uint64_t>(n);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const int me = pe.rank();

    // Distributed table.
    auto* table = static_cast<std::uint64_t*>(
        xbrtime_malloc(local_entries * sizeof(std::uint64_t)));
    XBGAS_CHECK(table != nullptr, "GUPs table allocation failed");
    for (std::uint64_t i = 0; i < local_entries; ++i) {
      table[i] = static_cast<std::uint64_t>(me) * local_entries + i;
    }

    // Broadcast run parameters from PE 0 (the paper's benchmarks route
    // their setup through the broadcast collective).
    auto* params = static_cast<std::uint64_t*>(
        xbrtime_malloc(2 * sizeof(std::uint64_t)));
    std::uint64_t src_params[2] = {updates_per_pe, total_entries};
    broadcast(params, src_params, 2, 1, /*root=*/0);
    const std::uint64_t updates = params[0];
    const std::uint64_t index_mask = params[1] - 1;

    auto apply_stream = [&](bool) {
      GupsStream stream = GupsStream::at(
          static_cast<std::int64_t>(static_cast<std::uint64_t>(me) * updates));
      for (std::uint64_t u = 0; u < updates; ++u) {
        const std::uint64_t ran = stream.next();
        const std::uint64_t g = ran & index_mask;
        const int owner = static_cast<int>(g >> local_shift);
        const std::uint64_t offset = g & (local_entries - 1);
        pe.clock().advance(kUpdateComputeCycles);
        xbr_amo_xor(table + offset, ran, owner);
      }
    };

    // --- timed update phase -------------------------------------------
    xbrtime_barrier();
    const std::uint64_t t0 = pe.clock().cycles();
    apply_stream(true);
    xbrtime_barrier();
    const std::uint64_t t1 = pe.clock().cycles();

    if (me == 0) {
      result.cycles = t1 - t0;
    }

    // --- verification (untimed): reapplying the stream XORs every update
    // out again, so the table must return to its initial contents.
    std::uint64_t errors = 0;
    if (config.verify) {
      apply_stream(false);
      xbrtime_barrier();
      for (std::uint64_t i = 0; i < local_entries; ++i) {
        if (table[i] !=
            static_cast<std::uint64_t>(me) * local_entries + i) {
          ++errors;
        }
      }
    }
    auto* err_buf =
        static_cast<std::uint64_t*>(xbrtime_malloc(sizeof(std::uint64_t)));
    *err_buf = errors;
    auto* err_sum =
        static_cast<std::uint64_t*>(xbrtime_malloc(sizeof(std::uint64_t)));
    reduce_all<OpSum>(err_sum, err_buf, 1, 1);
    if (me == 0) {
      result.errors = *err_sum;
    }

    xbrtime_free(err_sum);
    xbrtime_free(err_buf);
    xbrtime_free(params);
    xbrtime_free(table);
    xbrtime_close();
  });

  result.seconds =
      static_cast<double>(result.cycles) / SimClock::kDefaultHz;
  if (result.seconds > 0) {
    result.gups =
        static_cast<double>(result.total_updates) / result.seconds / 1e9;
    result.mops_total = result.gups * 1e3;
    result.mops_per_pe = result.mops_total / n;
  }
  return result;
}

}  // namespace xbgas
