#pragma once

// GUPs (HPCC RandomAccess) adapted to the xbrtime API — the Figure-4
// workload. A table of 2^m 64-bit words is distributed evenly over the PEs;
// each PE walks its slice of the canonical polynomial update stream and
// XORs table[ran mod 2^m] wherever it lives (local cache-model access or a
// remote AMO through the network model). Setup parameters travel by
// broadcast and verification errors are combined by reduction, matching the
// paper's note that the benchmark exercises both collectives. Verification
// (re-applying the stream and checking the table returns to its initial
// state) follows the HPCC scheme and runs outside the timed region.

#include <cstdint>

#include "machine/machine.hpp"

namespace xbgas {

struct GupsConfig {
  unsigned log2_table_entries = 21;  ///< total table entries (all PEs)
  /// Updates each PE performs. 0 selects the HPCC convention of 4x the
  /// table size divided across PEs — enough coverage for the cache model
  /// to reach steady state, which is what differentiates the per-PE
  /// curves of Figure 4.
  std::uint64_t updates_per_pe = 0;
  bool verify = true;  ///< the paper runs GUPs "with verification enabled"
};

struct GupsResult {
  int n_pes = 0;
  std::uint64_t total_updates = 0;
  std::uint64_t cycles = 0;     ///< simulated cycles for the update phase
  double seconds = 0.0;         ///< at SimClock::kDefaultHz
  double gups = 0.0;            ///< billions of updates per second
  double mops_total = 0.0;      ///< millions of updates/s (paper's unit)
  double mops_per_pe = 0.0;
  std::uint64_t errors = 0;     ///< verification mismatches (0 expected)
};

/// Run the full benchmark on `machine`. The machine's clocks/stats are reset
/// first; the result reflects only the timed update phase.
GupsResult run_gups(Machine& machine, const GupsConfig& config);

}  // namespace xbgas
