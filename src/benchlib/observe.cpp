#include "benchlib/observe.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "trace/collect.hpp"
#include "trace/export_chrome.hpp"
#include "trace/export_csv.hpp"

namespace xbgas {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void emit_observability(Machine& machine, const CliArgs& args) {
  const std::string trace_path = args.get("trace-out", "");
  if (!trace_path.empty()) {
    const Tracer& tracer = machine.tracer();
    const bool ok = ends_with(trace_path, ".csv")
                        ? write_csv_trace(tracer, trace_path)
                        : write_chrome_trace(tracer, trace_path);
    if (!ok) throw Error("cannot write trace file: " + trace_path);
    std::printf("trace: %llu events (%llu dropped to ring wrap) -> %s\n",
                static_cast<unsigned long long>(tracer.total_recorded()),
                static_cast<unsigned long long>(tracer.total_dropped()),
                trace_path.c_str());
  }

  const std::string mode = args.get("counters", "off");
  if (mode == "off") return;
  const CounterRegistry counters = collect_counters(machine);
  if (mode == "table") {
    counters.dump_table(stdout);
  } else if (mode == "json") {
    counters.dump_json(stdout);
  } else {
    throw Error("unknown --counters mode: " + mode + " (table|json|off)");
  }
}

}  // namespace xbgas
