#include "benchlib/observe.hpp"

#include <cstdio>
#include <string>

#include "collectives/nbi.hpp"
#include "collectives/policy.hpp"
#include "common/error.hpp"
#include "serving/counters.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/wc.hpp"
#include "trace/collect.hpp"
#include "trace/export_chrome.hpp"
#include "trace/export_csv.hpp"

namespace xbgas {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void emit_observability(Machine& machine, const CliArgs& args) {
  const std::string trace_path = args.get("trace-out", "");
  if (!trace_path.empty()) {
    const Tracer& tracer = machine.tracer();
    const bool ok = ends_with(trace_path, ".csv")
                        ? write_csv_trace(tracer, trace_path)
                        : write_chrome_trace(tracer, trace_path);
    if (!ok) throw Error("cannot write trace file: " + trace_path);
    std::printf("trace: %llu events (%llu dropped to ring wrap) -> %s\n",
                static_cast<unsigned long long>(tracer.total_recorded()),
                static_cast<unsigned long long>(tracer.total_dropped()),
                trace_path.c_str());
  }

  const std::string mode = args.get("counters", "off");
  if (mode == "off") return;
  CounterRegistry counters = collect_counters(machine);
  // Fold the process-wide collective-dispatch counters in. They live in the
  // collectives layer (the trace-layer collector can't see them), so the
  // benchlib does the merge.
  const CollDispatchCounts coll = coll_dispatch_counts();
  counters.set("coll.dispatch.total", coll.total);
  counters.set("coll.dispatch.auto", coll.auto_resolved);
  for (int a = 1; a < kCollAlgoCount; ++a) {
    counters.set(std::string("coll.algo.") +
                     coll_algo_name(static_cast<CollAlgo>(a)),
                 coll.by_algo[a]);
    for (int k = 0; k < kCollKindCount; ++k) {
      if (coll.by_kind_algo[k][a] == 0) continue;  // keep the dump readable
      counters.set(std::string("coll.") +
                       coll_kind_name(static_cast<CollKind>(k)) + "." +
                       coll_algo_name(static_cast<CollAlgo>(a)),
                   coll.by_kind_algo[k][a]);
    }
  }
  // Request-tracked RMA, write-combining, and pipelined-collective ledgers:
  // process-wide like the dispatch counts, and likewise guarded so workloads
  // that never touch the nbi surface keep their historical dumps.
  const RmaNbiCounters nbi = rma_nbi_counters();
  if (nbi.puts + nbi.gets + nbi.tests + nbi.waits + nbi.quiets > 0) {
    counters.set("rma.nbi.puts", nbi.puts);
    counters.set("rma.nbi.gets", nbi.gets);
    counters.set("rma.nbi.tests", nbi.tests);
    counters.set("rma.nbi.waits", nbi.waits);
    counters.set("rma.nbi.quiets", nbi.quiets);
  }
  const WcCounters wc = wc_counters();
  if (wc.puts > 0) {
    counters.set("rma.coalesced.puts", wc.puts);
    counters.set("rma.coalesced.enqueued", wc.enqueued);
    counters.set("rma.coalesced.flushes", wc.flushes);
    counters.set("rma.coalesced.messages", wc.messages);
    counters.set("rma.coalesced.bytes", wc.bytes);
  }
  const CollPipelineCounters pipe = coll_pipeline_counters();
  if (pipe.collectives > 0) {
    counters.set("coll.pipeline.collectives", pipe.collectives);
    counters.set("coll.pipeline.chunks", pipe.chunks);
    counters.set("coll.pipeline.waits", pipe.waits);
  }
  // Tuner ledger: only present when a tune table was loaded (entries > 0)
  // or a lookup actually happened, so untuned workloads dump unchanged.
  const CollTunerCounters tuner = coll_tuner_counters();
  if (tuner.entries > 0 || tuner.hits > 0 || tuner.misses > 0) {
    counters.set("coll.tuner.entries", tuner.entries);
    counters.set("coll.tuner.hits", tuner.hits);
    counters.set("coll.tuner.misses", tuner.misses);
  }
  // Same story for the serving layer's process-wide ledger; skip the block
  // entirely for non-serving workloads so their dumps stay unchanged.
  const ServingCounters serving = serving_counters_snapshot();
  if (serving.requests > 0) {
    counters.set("serving.requests", serving.requests);
    counters.set("serving.gets", serving.gets);
    counters.set("serving.puts", serving.puts);
    counters.set("serving.incrs", serving.incrs);
    counters.set("serving.served", serving.served);
    counters.set("serving.failed", serving.failed);
    counters.set("serving.retries", serving.retries);
    counters.set("serving.requests_retried", serving.requests_retried);
    counters.set("serving.attempt_timeouts", serving.attempt_timeouts);
    counters.set("serving.hedges", serving.hedges);
    counters.set("serving.redirected", serving.redirected);
    counters.set("serving.replica_skips", serving.replica_skips);
    counters.set("serving.failovers", serving.failovers);
    counters.set("serving.replayed", serving.replayed);
    counters.set("serving.failed_fast", serving.failed_fast);
    counters.set("serving.rebalanced_keys", serving.rebalanced_keys);
    counters.set("serving.hot_folds", serving.hot_folds);
  }
  if (mode == "table") {
    counters.dump_table(stdout);
  } else if (mode == "json") {
    counters.dump_json(stdout);
  } else {
    throw Error("unknown --counters mode: " + mode + " (table|json|off)");
  }
}

}  // namespace xbgas
