#include "benchlib/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xbgas {

ZipfGenerator::ZipfGenerator(std::size_t n, double s) {
  XBGAS_CHECK(n > 0, "ZipfGenerator: n must be >= 1");
  XBGAS_CHECK(s >= 0.0, "ZipfGenerator: exponent must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (std::size_t r = 0; r < n; ++r) cdf_[r] /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfGenerator::sample(Xoshiro256ss& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

ServingTraffic::ServingTraffic(std::uint64_t seed, int rank,
                               std::size_t n_keys, const ServingMix& mix)
    : zipf_(n_keys, mix.zipf_s),
      // Expand (seed, rank) exactly like the fault layer expands
      // (seed, rank, site): one SplitMix64 hop per dimension, so traffic
      // streams never correlate with fault placement streams.
      rng_(SplitMix64(SplitMix64(seed).next() ^
                      (std::uint64_t{0x517cc1b727220a95} *
                       static_cast<std::uint64_t>(rank + 1)))
               .next()),
      mix_(mix),
      n_keys_(n_keys) {
  XBGAS_CHECK(mix.put_pct >= 0 && mix.incr_pct >= 0 &&
                  mix.put_pct + mix.incr_pct <= 100,
              "ServingMix: put/incr percentages must be >= 0 and sum <= 100");
  // Odd multiplier derived from the seed: a bijection over keys mod 2^k is
  // overkill here — we only need hot ranks scattered deterministically, so
  // map rank -> (rank * scatter) % n_keys with scatter coprime-ish (odd).
  scatter_ = (SplitMix64(seed ^ 0x9e3779b97f4a7c15ull).next() | 1ull);
}

ServingRequest ServingTraffic::next() {
  ServingRequest req;
  const std::size_t rank = zipf_.sample(rng_);
  req.key = (rank * scatter_) % n_keys_;
  const std::uint64_t roll = rng_.next_below(100);
  if (roll < static_cast<std::uint64_t>(mix_.put_pct)) {
    req.kind = ServingRequest::Kind::kPut;
    req.value = rng_.next() & ((std::uint64_t{1} << 24) - 1);
  } else if (roll < static_cast<std::uint64_t>(mix_.put_pct + mix_.incr_pct)) {
    req.kind = ServingRequest::Kind::kIncr;
    req.value = 1 + rng_.next_below(7);
  } else {
    req.kind = ServingRequest::Kind::kGet;
  }
  return req;
}

}  // namespace xbgas
