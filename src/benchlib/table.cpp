#include "benchlib/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace xbgas {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  XBGAS_CHECK(!headers_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  XBGAS_CHECK(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::cell(double v) { return strfmt("%.3f", v); }
std::string AsciiTable::cell(long long v) { return strfmt("%lld", v); }
std::string AsciiTable::cell(unsigned long long v) { return strfmt("%llu", v); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string rule = "+";
  for (const auto w : width) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out = rule + emit_row(headers_) + rule;
  for (const auto& row : rows_) out += emit_row(row);
  out += rule;
  return out;
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace xbgas
