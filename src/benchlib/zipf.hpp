#pragma once

// ZipfGenerator / ServingTraffic — deterministic skewed request streams for
// the serving workload (docs/SERVING.md).
//
// Traffic shaped like millions of users is heavy-tailed: a few keys take
// most of the hits. ZipfGenerator samples key ranks from a Zipf(s)
// distribution by inverting the empirical CDF with a precomputed cumulative
// table (exact, no rejection loop — every sample consumes exactly one RNG
// draw, which keeps per-PE streams aligned and runs bit-reproducible).
// Sampled ranks are scattered over the key space with a fixed multiplicative
// permutation so the hot set is not one contiguous shard: hot keys spread
// across every PE, like real hash-sharded stores.
//
// ServingTraffic derives per-PE request streams from one workload seed via
// SplitMix64, mirroring how the fault layer builds per-(rank, site) streams:
// same seed => the same requests in the same order on every run, regardless
// of scheduler interleaving.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "serving/client.hpp"

namespace xbgas {

class ZipfGenerator {
 public:
  /// Zipf over ranks [0, n) with exponent `s` (s = 0 degenerates to
  /// uniform). Throws Error when n == 0 or s < 0.
  ZipfGenerator(std::size_t n, double s);

  /// Sample a rank: 0 is the hottest, 1 the next, ... Consumes exactly one
  /// draw from `rng`.
  std::size_t sample(Xoshiro256ss& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< cdf_[r] = P(rank <= r), cdf_.back() == 1
};

/// Workload mix in percent; the remainder up to 100 is gets.
struct ServingMix {
  int put_pct = 20;
  int incr_pct = 10;
  double zipf_s = 0.99;  ///< classic YCSB skew
};

/// Per-PE deterministic request stream.
class ServingTraffic {
 public:
  /// Streams for `rank` out of a workload seeded with `seed` over `n_keys`
  /// keys. Each (seed, rank) pair gets an independent xoshiro stream.
  ServingTraffic(std::uint64_t seed, int rank, std::size_t n_keys,
                 const ServingMix& mix);

  /// Next request in this PE's stream.
  ServingRequest next();

 private:
  ZipfGenerator zipf_;
  Xoshiro256ss rng_;
  ServingMix mix_;
  std::size_t n_keys_;
  std::uint64_t scatter_;  ///< odd multiplier scattering ranks over keys
};

}  // namespace xbgas
