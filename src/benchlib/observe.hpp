#pragma once

// Post-run observability emission for the bench/ and examples/ binaries:
//
//   --trace-out PATH        write the recorded trace (Chrome trace_event
//                           JSON; PATH ending in .csv selects flat CSV)
//   --counters table|json   dump the machine-wide counter registry to
//                           stdout (default off)
//
// Call once after the final Machine::run region of interest; the flags are
// parsed from the same CliArgs the machine was configured with, so a binary
// gains the whole observability surface with a single call.

#include "common/cli.hpp"
#include "machine/machine.hpp"

namespace xbgas {

/// Write --trace-out / --counters artifacts for `machine`. No-op when
/// neither flag is present. Throws xbgas::Error for an unknown --counters
/// mode or an unwritable trace path.
void emit_observability(Machine& machine, const CliArgs& args);

}  // namespace xbgas
