#pragma once

// Shared CLI -> MachineConfig plumbing for the bench/ and examples/
// binaries: --topology, --pes, network-model overrides, and standard
// machine sizing.

#include <vector>

#include "common/cli.hpp"
#include "machine/machine.hpp"

namespace xbgas {

/// Machine configuration from common flags:
///   --topology flat|ring|torus|hypercube   (default flat)
///   --shared-mb N                          shared segment size per PE
///   --private-mb N                         private segment size per PE
///   --fabric-bpc X                         fabric bytes/cycle
///   --fabric-mpc N                         fabric cycles/message
///   --link-bpc X                           link bytes/cycle
///   --barrier dissemination|central|tournament
///   --trace-out PATH                       enable tracing; write the trace
///                                          to PATH at emit_observability
///                                          (.csv => CSV, else Chrome JSON)
///   --trace-capacity N                     events retained per PE
///
/// Fault-injection flags (docs/RESILIENCE.md):
///   --fault-seed N             master seed; same seed => same fault placement
///   --fault-rma-drop P         P(transient drop) per remote RMA attempt
///   --fault-rma-delay P        P(extra delay) per remote RMA attempt
///   --fault-delay-cycles N     cycles added when a delay fault fires
///   --fault-bitflip P          P(one payload bit flipped) per transfer
///   --fault-olb P              P(transient OLB translation fault)
///   --fault-amo-drop P         P(remote RMW request dropped) per AMO attempt
///   --fault-amo-delay P        P(extra delay) per remote AMO attempt
///   --fault-retries N          max retries per transfer (default 6)
///   --fault-checksum 0|1       verify payload checksums (default: on when
///                              --fault-bitflip > 0)
///   --fault-timeout-ms N       barrier watchdog, host milliseconds (0 = off)
///   --fault-agree-timeout-ms N xbr_agree decision watchdog, host
///                              milliseconds (0 = the 60 s safety net)
///   --fault-kill RANK:SITE:K   kill RANK at its K-th SITE (barrier|rma),
///                              e.g. --fault-kill 2:barrier:3
///
/// XbrSan runtime sanitizer (docs/SANITIZER.md):
///   --xbrsan off|bounds|full   off (default): no checking; bounds: validate
///                              every remote-access target against the target
///                              PE's live symmetric allocations; full: bounds
///                              plus epoch-based RMA conflict detection
///
/// PE execution model (docs/SCALING.md):
///   --sched fibers|threads     N:M fiber scheduling (default) or legacy
///                              one std::thread per PE
///   --sched-workers N          fiber-mode worker threads
///                              (default 0 = min(hw concurrency, n_pes))
///   --sched-stack-kb N         stack KiB per PE fiber (default 512)
///   --sched-yield-inject P     P(extra yield) per cooperative poll point
///                              (test/shake-out aid; default 0)
///   --sched-yield-seed N       seed for the injected-yield stream
MachineConfig machine_config_from_cli(const CliArgs& args, int n_pes);

/// PE counts from --pes a,b,c (default: the paper's 1,2,4,8).
std::vector<int> pe_counts_from_cli(const CliArgs& args);

}  // namespace xbgas
