#pragma once

// ASCII table printer for the figure/table reproduction binaries: prints
// the same rows/series the paper reports, aligned for terminal reading.

#include <string>
#include <vector>

namespace xbgas {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.3f and integers with %lld.
  static std::string cell(double v);
  static std::string cell(long long v);
  static std::string cell(unsigned long long v);

  /// Render with a header rule and column padding.
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xbgas
