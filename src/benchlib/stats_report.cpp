#include "benchlib/stats_report.hpp"

#include <cstdio>

#include "benchlib/table.hpp"
#include "common/strfmt.hpp"

namespace xbgas {

void print_machine_stats(Machine& machine) {
  AsciiTable table({"PE", "sim cycles", "L1 hit", "L2 hit", "TLB hit",
                    "OLB lookups", "OLB remote", "OLB local"});
  for (int r = 0; r < machine.n_pes(); ++r) {
    PeContext& pe = machine.pe(r);
    const auto& olb = pe.olb().stats();
    table.add_row(
        {AsciiTable::cell(static_cast<long long>(r)),
         AsciiTable::cell(static_cast<unsigned long long>(pe.clock().cycles())),
         strfmt("%.1f%%", 100.0 * pe.cache().l1().stats().hit_rate()),
         strfmt("%.1f%%", 100.0 * pe.cache().l2().stats().hit_rate()),
         strfmt("%.1f%%", 100.0 * pe.cache().tlb().stats().hit_rate()),
         AsciiTable::cell(static_cast<unsigned long long>(olb.lookups)),
         AsciiTable::cell(static_cast<unsigned long long>(olb.hits)),
         AsciiTable::cell(
             static_cast<unsigned long long>(olb.local_shortcuts))});
  }
  table.print();
  const NetTotals net = machine.network().totals();
  std::printf("network: %llu messages (%llu puts, %llu gets), %llu bytes "
              "incl. headers, %llu hops, topology %s\n",
              static_cast<unsigned long long>(net.messages),
              static_cast<unsigned long long>(net.puts),
              static_cast<unsigned long long>(net.gets),
              static_cast<unsigned long long>(net.bytes),
              static_cast<unsigned long long>(net.hops),
              machine.network().topology().name().c_str());
  std::printf("fabric:  %llu phases, %llu serialization-stall cycles\n",
              static_cast<unsigned long long>(net.phases),
              static_cast<unsigned long long>(net.stall_cycles));
}

}  // namespace xbgas
