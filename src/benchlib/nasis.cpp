#include "benchlib/nasis.hpp"

#include <algorithm>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {

namespace {

constexpr int kNumBuckets = 1024;

/// Cycles per key for the local histogram / grouping / ranking passes
/// (a few RV64I instructions each).
constexpr std::uint64_t kPerKeyComputeCycles = 8;

}  // namespace

IsClassParams is_class_params(IsClass cls) {
  switch (cls) {
    case IsClass::kS:
      return {std::uint64_t{1} << 16, std::int32_t{1} << 11};
    case IsClass::kW:
      return {std::uint64_t{1} << 20, std::int32_t{1} << 16};
    case IsClass::kA:
      return {std::uint64_t{1} << 23, std::int32_t{1} << 19};
    case IsClass::kB:
      return {std::uint64_t{1} << 25, std::int32_t{1} << 21};
  }
  throw Error("unknown IS class");
}

const char* is_class_name(IsClass cls) {
  switch (cls) {
    case IsClass::kS: return "S";
    case IsClass::kW: return "W";
    case IsClass::kA: return "A";
    case IsClass::kB: return "B";
  }
  return "?";
}

std::size_t is_shared_bytes_needed(IsClass cls, int n_pes) {
  const auto params = is_class_params(cls);
  const std::size_t kpp =
      static_cast<std::size_t>(params.total_keys) /
      static_cast<std::size_t>(std::max(n_pes, 1));
  // recv buffer (2x slack) + bucket count arrays + exchange arrays, doubled
  // again because a quarter of the shared segment is reserved for the
  // collective staging region and the allocator needs headroom.
  const std::size_t user = 2 * kpp * sizeof(std::int32_t) +
                           4 * kNumBuckets * sizeof(std::int64_t) +
                           (std::size_t{1} << 20);
  return std::max<std::size_t>(2 * user, std::size_t{16} << 20);
}

IsResult run_is(Machine& machine, const IsConfig& config) {
  const int n = machine.n_pes();
  const auto params = is_class_params(config.cls);
  XBGAS_CHECK(params.total_keys % static_cast<std::uint64_t>(n) == 0,
              "total keys must divide evenly across PEs");
  const std::size_t kpp = static_cast<std::size_t>(
      params.total_keys / static_cast<std::uint64_t>(n));
  const std::size_t recv_cap = 2 * kpp + kNumBuckets;
  const std::int32_t max_key = params.max_key;
  XBGAS_CHECK(max_key % kNumBuckets == 0, "max_key must divide into buckets");
  const std::int32_t bucket_width = max_key / kNumBuckets;

  machine.reset_time_and_stats();

  IsResult result;
  result.n_pes = n;
  result.total_keys = params.total_keys;
  result.iterations = config.iterations;

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const int me = pe.rank();
    const auto un = static_cast<std::size_t>(n);

    // --- key generation (NAS create_seq, per-PE slice of the stream) ----
    std::vector<std::int32_t> keys(kpp);
    {
      const double seed = NasRandlc::skip_ahead(
          NasRandlc::kDefaultSeed, NasRandlc::kA,
          static_cast<std::int64_t>(4 * kpp) * me);
      NasRandlc rng(seed);
      const double k4 = static_cast<double>(max_key) / 4.0;
      for (auto& k : keys) {
        const double x = rng.next() + rng.next() + rng.next() + rng.next();
        k = static_cast<std::int32_t>(k4 * x);
        XBGAS_DCHECK(k >= 0 && k < max_key, "key out of range");
      }
    }

    // --- symmetric working set ----------------------------------------
    auto* l_counts = static_cast<std::int64_t*>(
        xbrtime_malloc(kNumBuckets * sizeof(std::int64_t)));
    auto* g_counts = static_cast<std::int64_t*>(
        xbrtime_malloc(kNumBuckets * sizeof(std::int64_t)));
    auto* send_cnt = static_cast<std::int32_t*>(
        xbrtime_malloc(un * sizeof(std::int32_t)));
    auto* recv_cnt = static_cast<std::int32_t*>(
        xbrtime_malloc(un * sizeof(std::int32_t)));
    auto* off_msg = static_cast<std::int32_t*>(
        xbrtime_malloc(un * sizeof(std::int32_t)));
    auto* put_off = static_cast<std::int32_t*>(
        xbrtime_malloc(un * sizeof(std::int32_t)));
    auto* recv_buf = static_cast<std::int32_t*>(
        xbrtime_malloc(recv_cap * sizeof(std::int32_t)));
    XBGAS_CHECK(recv_buf != nullptr, "IS allocation failed - raise shared_bytes");

    std::vector<std::int32_t> send_buf(kpp);
    std::vector<std::size_t> send_disp(un + 1);
    std::vector<int> bucket_owner(kNumBuckets);
    std::size_t recv_total = 0;
    std::int32_t my_lo = 0, my_hi = 0;

    auto one_iteration = [&] {
      // (1) local histogram.
      std::fill(l_counts, l_counts + kNumBuckets, 0);
      for (const auto k : keys) ++l_counts[k / bucket_width];
      pe.clock().advance(kPerKeyComputeCycles * kpp);

      // (2) global bucket distribution via reduce-to-all (the reduce +
      //     broadcast composition the paper calls out for this benchmark).
      reduce_all<OpSum>(g_counts, l_counts, kNumBuckets, 1);

      // (3) balanced contiguous bucket->PE assignment.
      {
        const auto target = static_cast<std::int64_t>(params.total_keys) / n;
        std::int64_t acc = 0;
        int owner = 0;
        for (int b = 0; b < kNumBuckets; ++b) {
          if (acc >= static_cast<std::int64_t>(owner + 1) * target &&
              owner < n - 1) {
            ++owner;
          }
          bucket_owner[static_cast<std::size_t>(b)] = owner;
          acc += g_counts[b];
        }
        pe.clock().advance(kNumBuckets);
      }

      // (4) group keys by destination and exchange counts/offsets.
      {
        std::vector<std::size_t> fill(un, 0);
        std::fill(send_cnt, send_cnt + un, 0);
        for (const auto k : keys) {
          ++send_cnt[bucket_owner[static_cast<std::size_t>(k / bucket_width)]];
        }
        send_disp[0] = 0;
        for (std::size_t d = 0; d < un; ++d) {
          send_disp[d + 1] =
              send_disp[d] + static_cast<std::size_t>(send_cnt[d]);
        }
        for (const auto k : keys) {
          const auto d = static_cast<std::size_t>(
              bucket_owner[static_cast<std::size_t>(k / bucket_width)]);
          send_buf[send_disp[d] + fill[d]++] = k;
        }
        pe.clock().advance(kPerKeyComputeCycles * kpp);
      }

      alltoall(recv_cnt, send_cnt, 1);

      // recv offsets by sender; publish each sender's slot via a second
      // all-to-all.
      {
        std::int32_t off = 0;
        for (std::size_t s = 0; s < un; ++s) {
          off_msg[s] = off;
          off += recv_cnt[s];
        }
        recv_total = static_cast<std::size_t>(off);
        XBGAS_CHECK(recv_total <= recv_cap,
                    "IS receive buffer overflow - key distribution too skewed");
      }
      alltoall(put_off, off_msg, 1);

      // (5) one-sided key exchange.
      for (std::size_t d = 0; d < un; ++d) {
        const auto cnt = static_cast<std::size_t>(send_cnt[d]);
        if (cnt > 0) {
          xbr_put(recv_buf + put_off[d], send_buf.data() + send_disp[d],
                  cnt, 1, static_cast<int>(d));
        }
      }
      xbrtime_barrier();

      // (6) local ranking: counting sort over this PE's key range.
      {
        my_lo = max_key;
        my_hi = 0;
        for (int b = 0; b < kNumBuckets; ++b) {
          if (bucket_owner[static_cast<std::size_t>(b)] == me) {
            my_lo = std::min(my_lo, b * bucket_width);
            my_hi = std::max(my_hi, (b + 1) * bucket_width);
          }
        }
        if (my_lo >= my_hi) {  // PE owns no buckets (tiny classes)
          my_lo = my_hi = 0;
        }
        const auto range = static_cast<std::size_t>(my_hi - my_lo);
        std::vector<std::int32_t> rank_cnt(range + 1, 0);
        for (std::size_t i = 0; i < recv_total; ++i) {
          const std::int32_t k = recv_buf[i];
          XBGAS_DCHECK(k >= my_lo && k < my_hi, "received key out of range");
          ++rank_cnt[static_cast<std::size_t>(k - my_lo)];
        }
        for (std::size_t r = 1; r < rank_cnt.size(); ++r) {
          rank_cnt[r] = static_cast<std::int32_t>(rank_cnt[r] + rank_cnt[r - 1]);
        }
        pe.clock().advance(kPerKeyComputeCycles * (recv_total + range));
      }
    };

    // --- timed iterations ----------------------------------------------
    xbrtime_barrier();
    const std::uint64_t t0 = pe.clock().cycles();
    for (int it = 0; it < config.iterations; ++it) one_iteration();
    xbrtime_barrier();
    const std::uint64_t t1 = pe.clock().cycles();
    if (me == 0) result.cycles = t1 - t0;

    // --- verification (untimed) ----------------------------------------
    // (a) every received key in range (checked above), (b) cross-PE
    // boundary order, (c) global key conservation.
    auto* minmax = static_cast<std::int32_t*>(
        xbrtime_malloc(2 * un * sizeof(std::int32_t)));
    std::int32_t mm[2] = {my_lo, my_hi};
    fcollect(minmax, mm, 2);
    auto* conserve = static_cast<std::int64_t*>(
        xbrtime_malloc(sizeof(std::int64_t)));
    auto* conserve_sum = static_cast<std::int64_t*>(
        xbrtime_malloc(sizeof(std::int64_t)));
    *conserve = static_cast<std::int64_t>(recv_total);
    reduce_all<OpSum>(conserve_sum, conserve, 1, 1);

    bool ok = *conserve_sum == static_cast<std::int64_t>(params.total_keys);
    for (std::size_t r = 0; r + 1 < un; ++r) {
      if (minmax[2 * r + 1] > minmax[2 * (r + 1)]) ok = false;  // hi_r <= lo_{r+1}
    }
    if (me == 0) result.verified = ok;

    xbrtime_free(conserve_sum);
    xbrtime_free(conserve);
    xbrtime_free(minmax);
    xbrtime_free(recv_buf);
    xbrtime_free(put_off);
    xbrtime_free(off_msg);
    xbrtime_free(recv_cnt);
    xbrtime_free(send_cnt);
    xbrtime_free(g_counts);
    xbrtime_free(l_counts);
    xbrtime_close();
  });

  result.seconds = static_cast<double>(result.cycles) / SimClock::kDefaultHz;
  if (result.seconds > 0) {
    result.mops_total =
        static_cast<double>(result.total_keys) *
        static_cast<double>(result.iterations) / result.seconds / 1e6;
    result.mops_per_pe = result.mops_total / n;
  }
  return result;
}

}  // namespace xbgas
