#include "benchlib/options.hpp"

#include "common/error.hpp"

namespace xbgas {

MachineConfig machine_config_from_cli(const CliArgs& args, int n_pes) {
  MachineConfig config;
  config.n_pes = n_pes;
  config.topology_name = args.get("topology", "flat");
  config.layout.shared_bytes =
      static_cast<std::size_t>(args.get_int("shared-mb", 64)) << 20;
  config.layout.private_bytes =
      static_cast<std::size_t>(args.get_int("private-mb", 8)) << 20;
  config.net.fabric_bytes_per_cycle =
      args.get_double("fabric-bpc", config.net.fabric_bytes_per_cycle);
  config.net.link_bytes_per_cycle =
      args.get_double("link-bpc", config.net.link_bytes_per_cycle);
  config.net.fabric_message_cycles = static_cast<std::uint64_t>(
      args.get_int("fabric-mpc",
                   static_cast<std::int64_t>(config.net.fabric_message_cycles)));

  config.trace.enabled = args.has("trace-out");
  config.trace.ring_capacity = static_cast<std::size_t>(args.get_int(
      "trace-capacity",
      static_cast<std::int64_t>(config.trace.ring_capacity)));

  const std::string barrier = args.get("barrier", "dissemination");
  if (barrier == "dissemination") {
    config.net.barrier_algorithm = BarrierAlgorithm::kDissemination;
  } else if (barrier == "central") {
    config.net.barrier_algorithm = BarrierAlgorithm::kCentral;
  } else if (barrier == "tournament") {
    config.net.barrier_algorithm = BarrierAlgorithm::kTournament;
  } else {
    throw Error("unknown barrier algorithm: " + barrier);
  }
  return config;
}

std::vector<int> pe_counts_from_cli(const CliArgs& args) {
  return args.get_int_list("pes", {1, 2, 4, 8});
}

}  // namespace xbgas
