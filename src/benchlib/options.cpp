#include "benchlib/options.hpp"

#include <string>

#include "collectives/policy.hpp"
#include "common/error.hpp"

namespace xbgas {

MachineConfig machine_config_from_cli(const CliArgs& args, int n_pes) {
  MachineConfig config;
  config.n_pes = n_pes;
  config.topology_name = args.get("topology", "flat");
  config.layout.shared_bytes =
      static_cast<std::size_t>(args.get_int("shared-mb", 64)) << 20;
  config.layout.private_bytes =
      static_cast<std::size_t>(args.get_int("private-mb", 8)) << 20;
  config.net.fabric_bytes_per_cycle =
      args.get_double("fabric-bpc", config.net.fabric_bytes_per_cycle);
  config.net.link_bytes_per_cycle =
      args.get_double("link-bpc", config.net.link_bytes_per_cycle);
  config.net.fabric_message_cycles = static_cast<std::uint64_t>(
      args.get_int("fabric-mpc",
                   static_cast<std::int64_t>(config.net.fabric_message_cycles)));

  config.trace.enabled = args.has("trace-out");
  config.trace.ring_capacity = static_cast<std::size_t>(args.get_int(
      "trace-capacity",
      static_cast<std::int64_t>(config.trace.ring_capacity)));

  config.fault.seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  config.fault.rma_drop_prob = args.get_double("fault-rma-drop", 0.0);
  config.fault.rma_delay_prob = args.get_double("fault-rma-delay", 0.0);
  config.fault.delay_cycles = static_cast<std::uint64_t>(args.get_int(
      "fault-delay-cycles",
      static_cast<std::int64_t>(config.fault.delay_cycles)));
  config.fault.rma_bitflip_prob = args.get_double("fault-bitflip", 0.0);
  config.fault.olb_fault_prob = args.get_double("fault-olb", 0.0);
  config.fault.amo_drop_prob = args.get_double("fault-amo-drop", 0.0);
  config.fault.amo_delay_prob = args.get_double("fault-amo-delay", 0.0);
  config.fault.max_rma_retries = static_cast<int>(
      args.get_int("fault-retries", config.fault.max_rma_retries));
  // Without checksums an injected bit-flip would be silent corruption, so
  // verification defaults on whenever bit-flips are being injected.
  config.fault.verify_checksum =
      args.get_bool("fault-checksum", config.fault.rma_bitflip_prob > 0.0);
  const std::int64_t timeout_ms = args.get_int("fault-timeout-ms", 0);
  if (args.has("fault-timeout-ms") && timeout_ms <= 0) {
    throw FaultConfigError(
        "--fault-timeout-ms must be positive (omit the flag to disable the "
        "barrier watchdog), got " + std::to_string(timeout_ms));
  }
  config.fault.barrier_timeout_ms = static_cast<std::uint64_t>(timeout_ms);
  const std::int64_t agree_ms = args.get_int("fault-agree-timeout-ms", 0);
  if (args.has("fault-agree-timeout-ms") && agree_ms <= 0) {
    throw FaultConfigError(
        "--fault-agree-timeout-ms must be positive (omit the flag to keep "
        "the agreement board's 60 s safety net), got " +
        std::to_string(agree_ms));
  }
  config.fault.agree_timeout_ms = static_cast<std::uint64_t>(agree_ms);

  // One or more scripted kills: RANK:SITE:K[,RANK:SITE:K...]. Full
  // validation (rank range, K >= 1) happens in validate_fault_config when
  // the Machine is constructed.
  std::string kills = args.get("fault-kill", "");
  while (!kills.empty()) {
    const std::size_t comma = kills.find(',');
    const std::string kill = kills.substr(0, comma);
    kills = comma == std::string::npos ? "" : kills.substr(comma + 1);

    const std::size_t c1 = kill.find(':');
    const std::size_t c2 = c1 == std::string::npos
                               ? std::string::npos
                               : kill.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      throw Error(
          "--fault-kill expects RANK:SITE:K[,RANK:SITE:K...] "
          "(e.g. 2:barrier:3), got " + kill);
    }
    KillSpec spec;
    const std::string site = kill.substr(c1 + 1, c2 - c1 - 1);
    if (site == "barrier") {
      spec.site = KillSite::kBarrier;
    } else if (site == "rma") {
      spec.site = KillSite::kRma;
    } else if (site == "agree") {
      spec.site = KillSite::kAgree;
    } else if (site == "amo") {
      spec.site = KillSite::kAmo;
    } else {
      throw Error(
          "--fault-kill site must be barrier, rma, agree, or amo, got " +
          site);
    }
    spec.rank = std::stoi(kill.substr(0, c1));
    spec.at = static_cast<std::uint64_t>(std::stoll(kill.substr(c2 + 1)));
    config.fault.kills.push_back(spec);
  }

  // Scripted link faults: A-B:MODE@AT[@HEAL][,...], MODE in {down,degraded}.
  // AT/HEAL are modeled cycles on the observing PE's clock; full range
  // validation happens in validate_fault_config.
  std::string links = args.get("fault-link", "");
  while (!links.empty()) {
    const std::size_t comma = links.find(',');
    const std::string one = links.substr(0, comma);
    links = comma == std::string::npos ? "" : links.substr(comma + 1);

    const std::size_t dash = one.find('-');
    const std::size_t colon =
        dash == std::string::npos ? std::string::npos : one.find(':', dash + 1);
    const std::size_t at1 = colon == std::string::npos
                                ? std::string::npos
                                : one.find('@', colon + 1);
    if (at1 == std::string::npos) {
      throw Error(
          "--fault-link expects A-B:MODE@AT[@HEAL][,...] "
          "(e.g. 0-3:down@500), got " + one);
    }
    LinkSpec spec;
    const std::string mode = one.substr(colon + 1, at1 - colon - 1);
    if (mode == "down") {
      spec.mode = LinkFaultMode::kDown;
    } else if (mode == "degraded") {
      spec.mode = LinkFaultMode::kDegraded;
    } else {
      throw Error("--fault-link mode must be down or degraded, got " + mode);
    }
    spec.a = std::stoi(one.substr(0, dash));
    spec.b = std::stoi(one.substr(dash + 1, colon - dash - 1));
    const std::size_t at2 = one.find('@', at1 + 1);
    spec.at = static_cast<std::uint64_t>(
        std::stoll(one.substr(at1 + 1, at2 == std::string::npos
                                           ? std::string::npos
                                           : at2 - at1 - 1)));
    if (at2 != std::string::npos) {
      spec.heal_at =
          static_cast<std::uint64_t>(std::stoll(one.substr(at2 + 1)));
    }
    config.fault.links.push_back(spec);
  }

  // Scripted 2-way partitions: LO-HI@AT[@HEAL][,...] — ranks [LO, HI]
  // versus everyone else, every crossing link down.
  std::string parts = args.get("fault-partition", "");
  while (!parts.empty()) {
    const std::size_t comma = parts.find(',');
    const std::string one = parts.substr(0, comma);
    parts = comma == std::string::npos ? "" : parts.substr(comma + 1);

    const std::size_t dash = one.find('-');
    const std::size_t at1 =
        dash == std::string::npos ? std::string::npos : one.find('@', dash + 1);
    if (at1 == std::string::npos) {
      throw Error(
          "--fault-partition expects LO-HI@AT[@HEAL][,...] "
          "(e.g. 0-31@2000), got " + one);
    }
    PartitionSpec spec;
    spec.lo = std::stoi(one.substr(0, dash));
    spec.hi = std::stoi(one.substr(dash + 1, at1 - dash - 1));
    const std::size_t at2 = one.find('@', at1 + 1);
    spec.at = static_cast<std::uint64_t>(
        std::stoll(one.substr(at1 + 1, at2 == std::string::npos
                                           ? std::string::npos
                                           : at2 - at1 - 1)));
    if (at2 != std::string::npos) {
      spec.heal_at =
          static_cast<std::uint64_t>(std::stoll(one.substr(at2 + 1)));
    }
    config.fault.partitions.push_back(spec);
  }

  config.fault.degraded_beta_factor =
      args.get_double("fault-link-beta", config.fault.degraded_beta_factor);
  config.fault.degraded_alpha_cycles = static_cast<std::uint64_t>(args.get_int(
      "fault-link-alpha",
      static_cast<std::int64_t>(config.fault.degraded_alpha_cycles)));

  config.coll_algo = args.get("coll-algo", "auto");
  (void)parse_coll_algo(config.coll_algo);  // validate eagerly, clear error

  config.coll_tune_table = args.get("coll-tune-table", "");
  const std::int64_t radix = args.get_int("coll-radix", 0);
  if (radix < 0 || radix == 1) {
    throw Error("--coll-radix must be 0 (default) or >= 2");
  }
  config.coll_radix = static_cast<int>(radix);

  config.sched.mode = args.get("sched", "fibers");
  if (config.sched.mode != "fibers" && config.sched.mode != "threads") {
    throw Error("--sched must be fibers or threads, got " + config.sched.mode);
  }
  const std::int64_t workers = args.get_int("sched-workers", 0);
  if (workers < 0) {
    throw Error("--sched-workers must be >= 0 (0 = hardware concurrency)");
  }
  config.sched.workers = static_cast<int>(workers);
  const std::int64_t stack_kb = args.get_int("sched-stack-kb", 512);
  if (stack_kb < 64) {
    throw Error("--sched-stack-kb must be >= 64 (PE bodies need headroom)");
  }
  config.sched.stack_bytes = static_cast<std::size_t>(stack_kb) << 10;
  config.sched.yield_inject_prob = args.get_double("sched-yield-inject", 0.0);
  if (config.sched.yield_inject_prob < 0.0 ||
      config.sched.yield_inject_prob > 1.0) {
    throw Error("--sched-yield-inject must be a probability in [0, 1]");
  }
  config.sched.yield_inject_seed =
      static_cast<std::uint64_t>(args.get_int("sched-yield-seed", 0));

  config.san.mode = parse_san_mode(args.get("xbrsan", "off"));

  const std::string barrier = args.get("barrier", "dissemination");
  if (barrier == "dissemination") {
    config.net.barrier_algorithm = BarrierAlgorithm::kDissemination;
  } else if (barrier == "central") {
    config.net.barrier_algorithm = BarrierAlgorithm::kCentral;
  } else if (barrier == "tournament") {
    config.net.barrier_algorithm = BarrierAlgorithm::kTournament;
  } else {
    throw Error("unknown barrier algorithm: " + barrier);
  }
  return config;
}

std::vector<int> pe_counts_from_cli(const CliArgs& args) {
  return args.get_int_list("pes", {1, 2, 4, 8});
}

}  // namespace xbgas
