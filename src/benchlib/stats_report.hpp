#pragma once

// Post-run machine statistics reporting for the bench binaries: per-PE
// simulated cycles, cache/TLB hit rates and OLB counters, plus the
// machine-wide network totals. Read after Machine::run returns (the PE
// threads have joined, so the per-PE structures are quiescent).

#include "machine/machine.hpp"

namespace xbgas {

/// Print the per-PE + network statistics table to stdout.
void print_machine_stats(Machine& machine);

}  // namespace xbgas
