#pragma once

// NAS Integer Sort (IS) adapted to the xbrtime API — the Figure-5 workload.
//
// The benchmark ranks N uniformly-generated-by-LCG keys (the NAS key
// distribution: the average of four randlc draws, so triangular-ish around
// max_key/2) for `iterations` repetitions. Each iteration:
//
//   1. local bucket histogram,
//   2. reduction-to-all of the bucket counts (the reduce+broadcast pattern
//      the paper highlights for this benchmark),
//   3. bucket->PE assignment by balanced prefix sums,
//   4. all-to-all exchange of per-pair key counts + offsets, then one-sided
//      puts of the key payloads into each destination's symmetric buffer,
//   5. local counting-sort ranking of the received keys.
//
// Verification (untimed): local sortedness, cross-PE boundary order via a
// neighbor get, and global key conservation via reduction.

#include <cstdint>

#include "machine/machine.hpp"

namespace xbgas {

enum class IsClass { kS, kW, kA, kB };

/// NAS problem-class parameters (keys, max key value).
struct IsClassParams {
  std::uint64_t total_keys;
  std::int32_t max_key;
};

IsClassParams is_class_params(IsClass cls);
const char* is_class_name(IsClass cls);

struct IsConfig {
  IsClass cls = IsClass::kS;
  int iterations = 10;  ///< NAS default
};

struct IsResult {
  int n_pes = 0;
  std::uint64_t total_keys = 0;
  int iterations = 0;
  std::uint64_t cycles = 0;  ///< simulated cycles for the timed iterations
  double seconds = 0.0;
  double mops_total = 0.0;   ///< keys ranked per microsecond (NAS metric)
  double mops_per_pe = 0.0;
  bool verified = false;
};

/// Run the full benchmark on `machine`. Requires total_keys divisible by
/// n_pes and enough shared memory for ~3.5x the per-PE key slice.
IsResult run_is(Machine& machine, const IsConfig& config);

/// Shared-segment bytes per PE needed for a given class/PE count (for
/// MachineConfig sizing by the bench drivers).
std::size_t is_shared_bytes_needed(IsClass cls, int n_pes);

}  // namespace xbgas
