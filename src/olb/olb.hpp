#pragma once

// Object Look-aside Buffer (paper §3.2).
//
// xBGAS forms 128-bit effective addresses from an extended register (holding
// an object ID) and a base register (holding a 64-bit address). The OLB is
// the per-PE hardware structure that maps each object ID to the physical
// base of the corresponding remote resource. Object ID 0 is architecturally
// "the local PE": remote instructions with e-register == 0 degrade to plain
// local accesses, which is what keeps xBGAS binary-compatible with RV64I.
//
// In this reproduction an "object" is a peer PE's symmetric shared segment,
// and the convention (DESIGN.md §4.2) is object ID = logical rank + 1.

#include <cstdint>
#include <vector>

#include "trace/channel.hpp"

namespace xbgas {

inline constexpr std::uint64_t kLocalObjectId = 0;

/// Object ID under the rank+1 convention.
constexpr std::uint64_t object_id_for_pe(int pe) {
  return static_cast<std::uint64_t>(pe) + 1;
}

/// Inverse of object_id_for_pe. id must be nonzero.
constexpr int pe_for_object_id(std::uint64_t id) {
  return static_cast<int>(id - 1);
}

struct OlbEntry {
  std::uint64_t object_id = 0;
  int pe = -1;                     ///< owning logical PE rank
  std::byte* segment_base = nullptr;  ///< physical base of the object
  std::size_t segment_size = 0;
};

struct OlbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t local_shortcuts = 0;  ///< translations with object ID 0
};

/// One PE's OLB. Not thread-safe by design: each PE owns its own instance,
/// mirroring the per-node hardware structure.
class ObjectLookasideBuffer {
 public:
  ObjectLookasideBuffer() = default;

  /// Register the mapping for one object ID. IDs may be inserted in any
  /// order; re-inserting an ID overwrites its entry.
  void insert(const OlbEntry& entry);

  /// Translate an object ID. Returns nullptr on miss (unknown ID) and for
  /// the local shortcut ID 0 (the caller uses its own local memory).
  /// Hit/miss/shortcut statistics are updated.
  const OlbEntry* lookup(std::uint64_t object_id);

  /// Translation without statistics side effects (for assertions/tools).
  const OlbEntry* peek(std::uint64_t object_id) const;

  std::size_t entry_count() const;
  const OlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = OlbStats{}; }

  /// Attach the owning PE's trace channel; lookup outcomes are recorded as
  /// kOlbHit/kOlbMiss/kOlbLocal events. Null (the default) disables.
  void set_trace(TraceChannel* trace) { trace_ = trace; }

 private:
  // Dense table indexed by object ID: the paper's OLB holds *every* object
  // ID, so capacity-miss modeling is unnecessary; misses only occur for IDs
  // that were never mapped (a program error surfaced to the caller).
  std::vector<OlbEntry> table_;
  OlbStats stats_;
  TraceChannel* trace_ = nullptr;
};

}  // namespace xbgas
