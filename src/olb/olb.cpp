#include "olb/olb.hpp"

#include "common/error.hpp"

namespace xbgas {

void ObjectLookasideBuffer::insert(const OlbEntry& entry) {
  XBGAS_CHECK(entry.object_id != kLocalObjectId,
              "object ID 0 is architecturally reserved for the local PE");
  if (entry.object_id >= table_.size()) {
    table_.resize(entry.object_id + 1);
  }
  table_[entry.object_id] = entry;
}

const OlbEntry* ObjectLookasideBuffer::lookup(std::uint64_t object_id) {
  ++stats_.lookups;
  if (object_id == kLocalObjectId) {
    ++stats_.local_shortcuts;
    if (trace_) trace_->record(EventKind::kOlbLocal, -1, object_id);
    return nullptr;
  }
  if (object_id < table_.size() &&
      table_[object_id].segment_base != nullptr) {
    ++stats_.hits;
    if (trace_) trace_->record(EventKind::kOlbHit, -1, object_id);
    return &table_[object_id];
  }
  ++stats_.misses;
  if (trace_) trace_->record(EventKind::kOlbMiss, -1, object_id);
  return nullptr;
}

const OlbEntry* ObjectLookasideBuffer::peek(std::uint64_t object_id) const {
  if (object_id == kLocalObjectId) return nullptr;
  if (object_id < table_.size() &&
      table_[object_id].segment_base != nullptr) {
    return &table_[object_id];
  }
  return nullptr;
}

std::size_t ObjectLookasideBuffer::entry_count() const {
  std::size_t n = 0;
  for (const auto& e : table_) {
    if (e.segment_base != nullptr) ++n;
  }
  return n;
}

}  // namespace xbgas
