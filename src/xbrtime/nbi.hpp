#pragma once

// Explicit-handle nonblocking RMA (the OpenSHMEM *_nbi family).
//
//   req = xbr_put_nbi(dest, src, nelems, stride, pe)   start a put
//   req = xbr_get_nbi(dest, src, nelems, stride, pe)   start a get
//   xbr_test(req)       true iff the transfer has completed (non-advancing)
//   xbr_wait_req(req)   block (advance the clock) until it completes
//   xbr_quiet()         complete ALL outstanding nb traffic from this PE
//   xbr_fence()         quiet + write-combiner flush: remote completion order
//
// Like the legacy _nb forms, an nbi transfer moves its bytes host-side at
// issue and defers only the *modeled* latency: the issuing PE is charged the
// injection cost now, and the remainder completes at the request's horizon.
// Independent requests overlap (the horizon is a max, not a sum), which is
// the communication/computation overlap the collective pipelines and the
// serving layer's hedged reads build on.
//
// Completion discipline: a request completes at xbr_test (when its horizon
// has passed), xbr_wait_req, xbr_quiet, xbr_wait, or any barrier — barriers
// are full fences in the xbrtime model. Until then XbrSan (full mode) keeps
// the request's hazard zones open: a put's local source must not be
// rewritten (kNbWriteBeforeWait), its remote landing zone must not be
// accessed by anyone (kNbRemoteBeforeWait), and a get's local destination
// must not be touched (kNbReadBeforeWait). docs/SANITIZER.md has the table.

#include <cstddef>
#include <cstdint>

#include "xbrtime/rma.hpp"

namespace xbgas {

/// Handle to one explicit nonblocking transfer. Value-semantic; id 0 is the
/// null (already-complete) request, returned for transfers that finish at
/// issue (zero length, or a local pe == rank copy).
struct XbrRequest {
  std::uint64_t id = 0;

  bool is_null() const { return id == 0; }
};

/// Process-wide nbi traffic counters (observability: rma.nbi.*). Reset
/// between benchmark repetitions with reset_rma_nbi_counters().
struct RmaNbiCounters {
  std::uint64_t puts = 0;    ///< xbr_put_nbi calls
  std::uint64_t gets = 0;    ///< xbr_get_nbi / xbr_get_atomic_nbi calls
  std::uint64_t tests = 0;   ///< xbr_test probes
  std::uint64_t waits = 0;   ///< xbr_wait_req completions
  std::uint64_t quiets = 0;  ///< xbr_quiet / xbr_fence drains
};

RmaNbiCounters rma_nbi_counters();
void reset_rma_nbi_counters();

/// True iff the transfer behind `req` has completed — its modeled horizon is
/// at or before the calling PE's clock. Never advances the clock; completes
/// (retires) the request when it returns true. A null or already-retired
/// request is trivially complete.
bool xbr_test(XbrRequest req);

/// Complete the transfer behind `req`: advance the calling PE's clock to the
/// request's horizon (no-op if already past) and retire it.
void xbr_wait_req(XbrRequest req);

/// Complete ALL outstanding nonblocking traffic issued by this PE: flush the
/// write combiner, advance the clock to the pending-completion horizon, and
/// retire every live request (the OpenSHMEM quiet).
void xbr_quiet();

/// Ordering fence for remote writes. In this model every transfer is
/// complete when its horizon passes, so fence and quiet coincide; the
/// distinct entry point preserves the OpenSHMEM put-ordering contract for
/// code written against it.
void xbr_fence();

namespace detail {

/// Count an nbi issue in the process-wide counters.
void note_nbi_issue(bool is_put);

/// The shared drain used by xbr_quiet / xbr_wait / both barrier flavours:
/// write-combiner flush, clock to the pending horizon, request table
/// cleared, XbrSan zones closed.
void nb_drain_all(PeContext& ctx);

}  // namespace detail

template <class T>
XbrRequest xbr_put_nbi(T* dest, const T* src, std::size_t nelems, int stride,
                       int pe) {
  detail::validate_rma("xbr_put_nbi", dest, src, nelems, stride, pe);
  std::uint64_t id = 0;
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/true, /*nonblocking=*/true,
                       /*atomic_elems=*/false, detail::NbTrack::kRequest, &id);
  detail::note_nbi_issue(/*is_put=*/true);
  return XbrRequest{id};
}

template <class T>
XbrRequest xbr_get_nbi(T* dest, const T* src, std::size_t nelems, int stride,
                       int pe) {
  detail::validate_rma("xbr_get_nbi", dest, src, nelems, stride, pe);
  std::uint64_t id = 0;
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/false, /*nonblocking=*/true,
                       /*atomic_elems=*/false, detail::NbTrack::kRequest, &id);
  detail::note_nbi_issue(/*is_put=*/false);
  return XbrRequest{id};
}

/// Nonblocking word-atomic remote load: xbr_get_atomic's element atomicity
/// with xbr_get_nbi's completion discipline. The serving layer's hedged
/// reads use this to keep several replica loads in flight at once.
template <class T>
  requires(std::is_trivially_copyable_v<T> &&
           (sizeof(T) == 4 || sizeof(T) == 8))
XbrRequest xbr_get_atomic_nbi(T* dest, const T* src, std::size_t nelems,
                              int stride, int pe) {
  detail::validate_rma("xbr_get_atomic_nbi", dest, src, nelems, stride, pe);
  detail::validate_word_aligned("xbr_get_atomic_nbi", dest, src, sizeof(T));
  std::uint64_t id = 0;
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/false, /*nonblocking=*/true,
                       /*atomic_elems=*/true, detail::NbTrack::kRequest, &id);
  detail::note_nbi_issue(/*is_put=*/false);
  return XbrRequest{id};
}

}  // namespace xbgas
