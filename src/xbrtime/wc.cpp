#include "xbrtime/wc.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

#include "fault/errors.hpp"
#include "fault/injector.hpp"
#include "machine/fiber.hpp"
#include "net/fabric.hpp"
#include "olb/olb.hpp"
#include "san/sanitizer.hpp"
#include "xbrtime/transport.hpp"

namespace xbgas {

namespace {

struct WcCountersAtomic {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> flushes{0};
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
};

WcCountersAtomic& wc_counters_atomic() {
  static WcCountersAtomic counters;
  return counters;
}

/// Local-side cache cost for reading the put's source at enqueue time —
/// the same accounting rma_transfer applies to its local side.
std::uint64_t wc_local_cycles(PeContext& ctx, const void* ptr,
                              std::size_t bytes) {
  const MemoryArena& arena = ctx.arena();
  if (arena.contains(ptr, bytes)) {
    const auto addr = static_cast<std::uint64_t>(
        static_cast<const std::byte*>(ptr) - arena.base());
    return ctx.cache().access(addr, bytes);
  }
  return ctx.cache().config().costs.l1_hit_cycles;
}

}  // namespace

WcCounters wc_counters() {
  WcCountersAtomic& c = wc_counters_atomic();
  return WcCounters{
      .puts = c.puts.load(std::memory_order_relaxed),
      .enqueued = c.enqueued.load(std::memory_order_relaxed),
      .flushes = c.flushes.load(std::memory_order_relaxed),
      .messages = c.messages.load(std::memory_order_relaxed),
      .bytes = c.bytes.load(std::memory_order_relaxed),
  };
}

void reset_wc_counters() {
  WcCountersAtomic& c = wc_counters_atomic();
  c.puts.store(0, std::memory_order_relaxed);
  c.enqueued.store(0, std::memory_order_relaxed);
  c.flushes.store(0, std::memory_order_relaxed);
  c.messages.store(0, std::memory_order_relaxed);
  c.bytes.store(0, std::memory_order_relaxed);
}

void xbr_wc_enable(std::size_t threshold_bytes, std::size_t capacity_entries) {
  PeContext& ctx = xbrtime_ctx();
  WriteCombinerState& wc = ctx.xbrtime_state().wc;
  detail::wc_flush_all(ctx);  // re-enable with new knobs starts empty
  wc.enabled = true;
  wc.threshold_bytes = threshold_bytes;
  wc.capacity_entries = std::max<std::size_t>(capacity_entries, 1);
  wc.targets.assign(static_cast<std::size_t>(ctx.n_pes()), WcTargetBuffer{});
}

void xbr_wc_disable() {
  PeContext& ctx = xbrtime_ctx();
  detail::wc_flush_all(ctx);
  ctx.xbrtime_state().wc.enabled = false;
}

bool xbr_wc_enabled() {
  return xbrtime_ctx().xbrtime_state().wc.enabled;
}

void xbr_wc_flush() { detail::wc_flush_all(xbrtime_ctx()); }

namespace detail {

bool wc_try_enqueue(void* dest, const void* src, std::size_t elem_size,
                    std::size_t nelems, int stride, int pe) {
  wc_counters_atomic().puts.fetch_add(1, std::memory_order_relaxed);
  PeContext& ctx = xbrtime_ctx();
  WriteCombinerState& wc = ctx.xbrtime_state().wc;
  const std::size_t bytes = elem_size * nelems;
  if (!wc.enabled || stride != 1 || pe == ctx.rank() || nelems == 0 ||
      bytes > wc.threshold_bytes || !ctx.arena().in_shared(dest, bytes)) {
    return false;
  }
  FiberScheduler::poll_yield();

  // XbrSan sees the put at enqueue time: bounds/lifetime/conflicts on the
  // remote range and local-hazard checks on the source, so a bad wc put is
  // diagnosed where it was issued, not at some later flush point.
  Sanitizer& san = ctx.machine().sanitizer();
  if (san.enabled()) {
    san.check_remote("xbr_put_wc", ctx.rank(), pe,
                     ctx.arena().shared_offset_of(dest), bytes,
                     ctx.arena().shared_size(), SanAccess::kWrite,
                     ctx.clock().cycles(), &ctx.trace());
  }
  if (san.conflicts_enabled()) {
    san.check_local("xbr_put_wc", ctx.rank(), src, bytes, /*is_write=*/false,
                    &ctx.trace());
  }

  // Enqueue cost: reading the source plus the per-element issue work the
  // hardware still performs; the per-MESSAGE alpha is what batching saves.
  const NetCostParams& p = ctx.machine().network().params();
  const std::uint64_t per_elem = nelems > p.unroll_threshold
                                     ? p.issue_per_element_cycles_unrolled
                                     : p.issue_per_element_cycles;
  ctx.clock().advance(wc_local_cycles(ctx, src, bytes) + per_elem * nelems);

  WcTargetBuffer& buf = wc.targets[static_cast<std::size_t>(pe)];
  const std::size_t pos = buf.payload.size();
  buf.payload.resize(pos + bytes);
  std::memcpy(buf.payload.data() + pos, src, bytes);
  buf.entries.push_back(
      WcEntry{ctx.arena().shared_offset_of(dest), pos, bytes});
  wc_counters_atomic().enqueued.fetch_add(1, std::memory_order_relaxed);
  if (buf.entries.size() >= wc.capacity_entries) {
    wc_flush_target(ctx, pe);
  }
  return true;
}

void wc_flush_target(PeContext& ctx, int pe) {
  WriteCombinerState& wc = ctx.xbrtime_state().wc;
  if (wc.targets.empty()) return;
  WcTargetBuffer& buf = wc.targets[static_cast<std::size_t>(pe)];
  if (buf.entries.empty()) return;

  NetworkModel& net = ctx.machine().network();
  FaultInjector& fault = ctx.machine().fault_injector();
  const FaultConfig& fc = fault.config();
  const bool faults_on = fault.enabled();
  const int rank = ctx.rank();
  if (faults_on) fault.on_rma_issue(rank);  // scripted-kill site (may throw)

  const std::size_t total = buf.payload.size();
  std::uint64_t cycles = 0;

  // One message for the whole batch: bounded retry against translation
  // faults, drops, and the scripted link plan, exactly like rma_transfer.
  // The payload-corruption stages are skipped (see wc.hpp).
  const bool links_on = !net.link_faults().empty();
  const int max_attempts = 1 + std::max(0, fc.max_rma_retries);
  int attempt = 0;
  for (;;) {
    ++attempt;
    (void)ctx.olb().lookup(object_id_for_pe(pe));
    cycles += net.put_cost(rank, pe, total);
    net.record(/*is_put=*/true, total, rank, pe);

    if (links_on) {
      const LinkStatus ls = link_attempt_status(
          ctx, pe, ctx.clock().cycles() + cycles, attempt);
      if (ls == LinkStatus::kDown) {
        if (attempt >= max_attempts) {
          ctx.clock().advance(cycles);
          // Drop the batch before the throw: the flush failed terminally and
          // must not replay stale entries on the next enqueue.
          buf.entries.clear();
          buf.payload.clear();
          throw_transfer_failed(
              ctx, pe, "wc_flush", attempt,
              "wc_flush: " + std::to_string(attempt) +
                  " batched attempts dropped by a down link (PE " +
                  std::to_string(rank) + " -> " + std::to_string(pe) + ", " +
                  std::to_string(total) + " bytes)");
        }
        fault.counters().rma_retries.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t backoff = backoff_cycles(fc, attempt);
        ctx.trace().record(EventKind::kRmaRetry, pe,
                           static_cast<std::uint64_t>(attempt), backoff);
        cycles += backoff;
        continue;
      }
      if (ls == LinkStatus::kDegraded) {
        cycles += net.degraded_penalty_cycles(total);
      }
    }

    if (faults_on && (fault.draw_olb_fault(rank) || fault.draw_rma_drop(rank))) {
      fault.counters().rma_drops.fetch_add(1, std::memory_order_relaxed);
      if (attempt >= max_attempts) {
        ctx.clock().advance(cycles);
        buf.entries.clear();
        buf.payload.clear();
        throw_transfer_failed(
            ctx, pe, "wc_flush", attempt,
            "wc_flush: batched transfer dropped " + std::to_string(attempt) +
                " times, retries exhausted (PE " + std::to_string(rank) +
                " -> " + std::to_string(pe) + ", " + std::to_string(total) +
                " bytes)");
      }
      fault.counters().rma_retries.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t backoff = backoff_cycles(fc, attempt);
      ctx.trace().record(EventKind::kRmaRetry, pe,
                         static_cast<std::uint64_t>(attempt), backoff);
      cycles += backoff;
      continue;
    }

    if (faults_on && fault.draw_rma_delay(rank)) {
      fault.counters().rma_delays.fetch_add(1, std::memory_order_relaxed);
      cycles += fc.delay_cycles;
    }
    break;
  }

  for (const WcEntry& e : buf.entries) {
    std::byte* target =
        ctx.resolve_symmetric(pe, ctx.arena().shared_at(e.offset));
    std::memcpy(target, buf.payload.data() + e.pos, e.bytes);
  }

  ctx.clock().advance(cycles);
  ctx.trace().record(EventKind::kWcFlush, pe, total, buf.entries.size());
  WcCountersAtomic& c = wc_counters_atomic();
  c.flushes.fetch_add(1, std::memory_order_relaxed);
  c.messages.fetch_add(buf.entries.size(), std::memory_order_relaxed);
  c.bytes.fetch_add(total, std::memory_order_relaxed);
  buf.entries.clear();
  buf.payload.clear();
}

void wc_flush_all(PeContext& ctx) {
  const WriteCombinerState& wc = ctx.xbrtime_state().wc;
  if (!wc.enabled && wc.targets.empty()) return;
  for (int pe = 0; pe < ctx.n_pes(); ++pe) {
    wc_flush_target(ctx, pe);
  }
}

}  // namespace detail

}  // namespace xbgas
