#pragma once

// The paper's typed entry points for one-sided RMA (§3.3):
//
//   void xbrtime_TYPENAME_put(TYPE *dest, const TYPE *src,
//                             size_t nelems, int stride, int pe);
//   void xbrtime_TYPENAME_get(TYPE *dest, const TYPE *src,
//                             size_t nelems, int stride, int pe);
//
// plus the non-blocking forms the paper mentions ("although not shown,
// non-blocking forms of both get and put are also included"). One explicit
// function per Table-1 type, generated from the X-macro so the whole
// 24-type x 4-call surface stays in lock-step with the type table.

#include <cstddef>

#include "xbrtime/types.hpp"

namespace xbgas {

#define XBGAS_DECLARE_RMA(NAME, TYPE)                                    \
  void xbrtime_##NAME##_put(TYPE* dest, const TYPE* src,                 \
                            std::size_t nelems, int stride, int pe);     \
  void xbrtime_##NAME##_get(TYPE* dest, const TYPE* src,                 \
                            std::size_t nelems, int stride, int pe);     \
  void xbrtime_##NAME##_put_nb(TYPE* dest, const TYPE* src,              \
                               std::size_t nelems, int stride, int pe);  \
  void xbrtime_##NAME##_get_nb(TYPE* dest, const TYPE* src,              \
                               std::size_t nelems, int stride, int pe);

XBGAS_FOREACH_TYPE(XBGAS_DECLARE_RMA)

#undef XBGAS_DECLARE_RMA

}  // namespace xbgas
