#pragma once

// The xbrtime runtime API (paper §3.3) — the C-style, OpenSHMEM-flavoured
// interface the collective library is built on:
//
//   xbrtime_init / xbrtime_close     runtime setup & teardown (collective)
//   xbrtime_mype / xbrtime_num_pes   rank queries
//   xbrtime_barrier                  world barrier (+ simulated-clock sync)
//   xbrtime_malloc / xbrtime_free    symmetric shared-heap management
//
// SPMD usage: inside Machine::run every PE thread calls xbrtime_init()
// first; all calls below then operate on the calling PE's context. The
// runtime is intentionally a thin veneer over the machine substrate — the
// paper stresses that xbrtime "directly translates these high-level function
// calls into assembly instructions whenever possible", and the equivalent
// here is a handful of arithmetic operations plus the modeled costs.

#include <cstddef>

#include "machine/machine.hpp"

namespace xbgas {

/// Initialize the runtime for the calling PE thread. Collective over all
/// PEs (contains a barrier). Returns 0 on success (the paper's C signature).
/// Must be called inside an SPMD region (Machine::run body).
int xbrtime_init();

/// Tear down the runtime for the calling PE. Collective. Verifies that the
/// PE released all its symmetric allocations (leaks are reported via log).
void xbrtime_close();

/// Rank of the calling PE, or -1 outside an initialized region.
int xbrtime_mype();

/// Number of PEs in the world, or 0 outside an initialized region.
int xbrtime_num_pes();

/// World barrier: synchronizes all PEs and reconciles simulated clocks
/// (shared-fabric serialization is folded in here; see NetworkModel).
void xbrtime_barrier();

/// Collective symmetric allocation: every PE must call with the same size
/// in the same sequence. The returned block sits at the same shared-segment
/// offset on every PE (verified at runtime; throws on asymmetry). Returns
/// nullptr when any PE's heap is exhausted (all successful siblings roll
/// back so the heaps stay symmetric).
void* xbrtime_malloc(std::size_t bytes);

/// Collective symmetric release of a pointer from xbrtime_malloc.
void xbrtime_free(void* ptr);

/// LIFO symmetric staging allocator (OpenSHMEM pWrk/pSync-style).
///
/// Collectives need internal symmetric scratch (the s_buff of Algorithms
/// 2-4) but cannot call the world-collective xbrtime_malloc from a *team*
/// collective — non-members would never arrive at its barrier. Instead,
/// xbrtime_init carves a staging region out of the symmetric heap (same
/// offset everywhere) and each collective push/pops scratch from it without
/// any synchronization: participants perform identical sequences, so their
/// staging offsets match. Strict LIFO discipline is enforced.
void* xbrtime_stage_alloc(std::size_t bytes);
void xbrtime_stage_free(void* ptr);

/// Bytes available in the staging region right now (for capacity tests).
std::size_t xbrtime_stage_avail();

/// Abandon every live staging block and reset the LIFO stack to empty.
/// Recovery-only: after a PE death unwinds a collective mid-flight, the
/// survivors' staging stacks can disagree; xbr_team_shrink resets every
/// survivor's stack so post-recovery collectives see symmetric offsets again.
void xbrtime_stage_reset();

/// Shared-segment offset of the staging region's base block. Used by
/// xbr_checkpoint to skip the staging scratch when snapshotting the heap.
std::size_t xbrtime_stage_offset();

/// True if `addr` on this PE maps to a remotely accessible (symmetric
/// shared-segment) address of PE `pe` — mirrors xbrtime's address-check
/// helper used to validate user pointers.
bool xbrtime_addr_accessible(const void* addr, int pe);

/// Per-PE execution statistics snapshot (cache/TLB hit rates, OLB
/// translation counters, simulated cycles) — the observability surface the
/// simulated environment offers on top of the paper's API.
struct XbrtimeStats {
  int pe = -1;
  std::uint64_t cycles = 0;
  double l1_hit_rate = 0.0;
  double l2_hit_rate = 0.0;
  double tlb_hit_rate = 0.0;
  std::uint64_t olb_lookups = 0;
  std::uint64_t olb_hits = 0;
  std::uint64_t olb_local_shortcuts = 0;
};

/// Snapshot of the calling PE's statistics.
XbrtimeStats xbrtime_stats();

/// The calling thread's PE context. Throws if the runtime is not
/// initialized on this thread. Used by the RMA/collective layers.
PeContext& xbrtime_ctx();

/// True when the calling thread has an initialized runtime.
bool xbrtime_initialized();

}  // namespace xbgas
