#include "xbrtime/rma.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "fault/checksum.hpp"
#include "fault/injector.hpp"
#include "machine/fiber.hpp"
#include "net/fabric.hpp"
#include "olb/olb.hpp"
#include "san/sanitizer.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/transport.hpp"

namespace xbgas {

namespace {

/// Cycles for touching [ptr, ptr+bytes) in this PE's local memory. Pointers
/// outside the arena (ordinary host heap/stack buffers used in tests and
/// examples) are charged a flat L1-hit cost — they model registers/private
/// scratch rather than simulated DRAM. Containment goes through
/// MemoryArena::contains (integer-domain, overflow-safe): most pointers
/// probed here are *not* arena pointers, where raw relational comparison is
/// unspecified behavior and `b + bytes` can wrap.
std::uint64_t local_access_cycles(PeContext& ctx, const void* ptr,
                                  std::size_t bytes) {
  const MemoryArena& arena = ctx.arena();
  if (arena.contains(ptr, bytes)) {
    // Defined: contains() proved both pointers address the arena array.
    const auto addr = static_cast<std::uint64_t>(
        static_cast<const std::byte*>(ptr) - arena.base());
    return ctx.cache().access(addr, bytes);
  }
  return ctx.cache().config().costs.l1_hit_cycles;
}

/// Per-element issue cost, honouring the unrolling threshold (§3.3).
std::uint64_t issue_cycles(const NetCostParams& p, std::size_t nelems) {
  const std::uint64_t per =
      nelems > p.unroll_threshold ? p.issue_per_element_cycles_unrolled
                                  : p.issue_per_element_cycles;
  return per * nelems;
}

/// Strided element-wise copy; memmove throughout — a local (pe == rank)
/// transfer may have overlapping src/dst ranges, where per-element memcpy is
/// undefined behavior even when each element pair happens to be disjoint.
void copy_elements(std::byte* dst, const std::byte* src, std::size_t elem_size,
                   std::size_t nelems, int stride) {
  if (stride == 1) {
    std::memmove(dst, src, elem_size * nelems);
    return;
  }
  const std::size_t step = elem_size * static_cast<std::size_t>(stride);
  for (std::size_t i = 0; i < nelems; ++i) {
    std::memmove(dst + i * step, src + i * step, elem_size);
  }
}

/// Word-atomic strided copy for xbr_put_atomic / xbr_get_atomic: each
/// element moves with one relaxed atomic access on the symmetric
/// (contended) side — `atomic_dst` says which side that is — and a plain
/// access on the caller's private buffer. Relaxed is enough: the simulated
/// fabric provides no ordering either; cross-PE ordering comes from
/// barriers.
template <class T>
void copy_words_atomic(std::byte* dst, const std::byte* src,
                       std::size_t nelems, int stride, bool atomic_dst) {
  const std::size_t step = sizeof(T) * static_cast<std::size_t>(stride);
  for (std::size_t i = 0; i < nelems; ++i) {
    T v;
    if (atomic_dst) {
      std::memcpy(&v, src + i * step, sizeof(T));
      std::atomic_ref<T>(*reinterpret_cast<T*>(dst + i * step))
          .store(v, std::memory_order_relaxed);
    } else {
      v = std::atomic_ref<T>(*reinterpret_cast<T*>(
                                 const_cast<std::byte*>(src) + i * step))
              .load(std::memory_order_relaxed);
      std::memcpy(dst + i * step, &v, sizeof(T));
    }
  }
}

void copy_elements_atomic(std::byte* dst, const std::byte* src,
                          std::size_t elem_size, std::size_t nelems,
                          int stride, bool atomic_dst) {
  if (elem_size == 8) {
    copy_words_atomic<std::uint64_t>(dst, src, nelems, stride, atomic_dst);
  } else {
    copy_words_atomic<std::uint32_t>(dst, src, nelems, stride, atomic_dst);
  }
}

/// Modeled cost of software checksum verification: one pass over the moved
/// bytes on each side of the transfer at cache-line throughput.
std::uint64_t checksum_cycles(std::size_t bytes) { return (2 * bytes) / 8 + 1; }

/// Count one retry: the counter, the trace event, and the backoff charge
/// (backoff_cycles in fault/config.hpp — saturating, monotone in attempt).
std::uint64_t note_retry(PeContext& ctx, FaultInjector& fault, int pe,
                         int attempt) {
  fault.counters().rma_retries.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t backoff = backoff_cycles(fault.config(), attempt);
  ctx.trace().record(EventKind::kRmaRetry, pe,
                     static_cast<std::uint64_t>(attempt), backoff);
  return backoff;
}

void note_fault(PeContext& ctx, int pe, FaultSite site, int attempt) {
  ctx.trace().record(EventKind::kFaultInject, pe,
                     static_cast<std::uint64_t>(site),
                     static_cast<std::uint64_t>(attempt));
}

/// XbrSan validation of the remote (or local-symmetric) side of a transfer:
/// bounds + lifetime against the target PE's live allocations, and in full
/// mode the same-epoch conflict ledger. `sym` is the caller's own symmetric
/// address for the range (the offset is identical on every PE by the
/// symmetric-heap discipline). Throws SanViolationError *before* any bytes
/// move, so the diagnosed access never lands.
void san_check_target(Sanitizer& san, PeContext& ctx, const char* fn,
                      int target_pe, const void* sym, std::size_t span,
                      SanAccess access) {
  if (!san.enabled()) return;
  if (!ctx.arena().in_shared(sym, 0)) return;  // non-symmetric local scratch
  san.check_remote(fn, ctx.rank(), target_pe, ctx.arena().shared_offset_of(sym),
                   span, ctx.arena().shared_size(), access,
                   ctx.clock().cycles(), &ctx.trace());
}

}  // namespace

namespace detail {

LinkStatus link_attempt_status(PeContext& ctx, int target_pe,
                               std::uint64_t now, int attempt) {
  const LinkStatus ls =
      ctx.machine().network().link_faults().status(ctx.rank(), target_pe, now);
  FaultCounters& counters = ctx.machine().fault_injector().counters();
  if (ls == LinkStatus::kDown) {
    counters.link_down_drops.fetch_add(1, std::memory_order_relaxed);
    note_fault(ctx, target_pe, FaultSite::kLinkDown, attempt);
  } else if (ls == LinkStatus::kDegraded) {
    counters.link_degraded.fetch_add(1, std::memory_order_relaxed);
    note_fault(ctx, target_pe, FaultSite::kLinkDegraded, attempt);
  }
  return ls;
}

void throw_transfer_failed(PeContext& ctx, int target_pe, const char* site,
                           int attempts, const std::string& what) {
  const int rank = ctx.rank();
  Machine& machine = ctx.machine();
  LinkFaults& links = machine.network().link_faults();
  if (!links.empty() &&
      links.status(rank, target_pe, ctx.clock().cycles()) ==
          LinkStatus::kDown) {
    // The retries died against a link scripted down: not a lossy transient
    // but an unreachable peer. Escalate — record the suspect, pull every
    // blocked PE into recovery, and throw the typed verdict.
    const int a = rank < target_pe ? rank : target_pe;
    const int b = rank < target_pe ? target_pe : rank;
    machine.fault_injector().counters().pe_unreachable.fetch_add(
        1, std::memory_order_relaxed);
    ctx.trace().record(EventKind::kLinkFault, target_pe,
                       static_cast<std::uint64_t>(a),
                       static_cast<std::uint64_t>(b));
    machine.recovery().note_unreachable(rank, target_pe);
    machine.poison_barriers_for_unreachable(
        target_pe, "PE " + std::to_string(rank) +
                       " exhausted retries across down link (" +
                       std::to_string(a) + ", " + std::to_string(b) + ")");
    throw PeUnreachableError(
        what + "; link (" + std::to_string(a) + ", " + std::to_string(b) +
            ") is down — peer " + std::to_string(target_pe) + " unreachable",
        attempts, target_pe, site, a, b);
  }
  throw RmaRetriesExhaustedError(what, attempts, target_pe, site);
}

void validate_rma(const char* fn, const void* dest, const void* src,
                  std::size_t nelems, int stride, int pe) {
  PeContext& ctx = xbrtime_ctx();
  if (pe < 0 || pe >= ctx.n_pes()) {
    throw Error(std::string(fn) + ": pe " + std::to_string(pe) +
                " out of range [0, " + std::to_string(ctx.n_pes()) + ")");
  }
  if (stride < 1) {
    throw Error(std::string(fn) + ": stride must be >= 1 (got " +
                std::to_string(stride) + ")");
  }
  if (nelems == 0) return;  // a zero-length transfer touches no memory
  if (dest == nullptr) {
    throw Error(std::string(fn) + ": dest must not be null");
  }
  if (src == nullptr) {
    throw Error(std::string(fn) + ": src must not be null");
  }
}

void validate_amo(const char* fn, const void* dest, int pe) {
  PeContext& ctx = xbrtime_ctx();
  if (pe < 0 || pe >= ctx.n_pes()) {
    throw Error(std::string(fn) + ": pe " + std::to_string(pe) +
                " out of range [0, " + std::to_string(ctx.n_pes()) + ")");
  }
  if (dest == nullptr) {
    throw Error(std::string(fn) + ": dest must not be null");
  }
}

void validate_word_aligned(const char* fn, const void* dest, const void* src,
                           std::size_t elem_size) {
  const auto misaligned = [elem_size](const void* p) {
    return p != nullptr &&
           reinterpret_cast<std::uintptr_t>(p) % elem_size != 0;
  };
  if (misaligned(dest) || misaligned(src)) {
    throw Error(std::string(fn) + ": buffers must be naturally aligned to " +
                std::to_string(elem_size) +
                " bytes (word-atomic access requires it)");
  }
}

void rma_transfer(void* dest, const void* src, std::size_t elem_size,
                  std::size_t nelems, int stride, int pe, bool remote_is_dest,
                  bool nonblocking, bool atomic_elems, NbTrack track,
                  std::uint64_t* req_out) {
  // Cooperative poll point: RMA issues are the densest operation in a PE
  // body, so they bound a fiber's uninterrupted slice (and host the seeded
  // yield injection the scheduler tests rely on).
  FiberScheduler::poll_yield();
  PeContext& ctx = xbrtime_ctx();
  XBGAS_CHECK(pe >= 0 && pe < ctx.n_pes(), "RMA target PE out of range");
  XBGAS_CHECK(stride >= 1, "RMA stride must be >= 1");
  XBGAS_CHECK(track != NbTrack::kRequest || req_out != nullptr,
              "request-tracked transfer needs a request-out slot");
  if (req_out != nullptr) *req_out = 0;  // completed-at-issue until proven nb
  if (nelems == 0) return;

  const std::size_t span =
      elem_size * ((nelems - 1) * static_cast<std::size_t>(stride) + 1);
  const std::size_t bytes = elem_size * nelems;

  std::byte* dst_ptr = static_cast<std::byte*>(dest);
  const std::byte* src_ptr = static_cast<const std::byte*>(src);

  Sanitizer& san = ctx.machine().sanitizer();
  const bool nbi = track == NbTrack::kRequest;
  const char* fn =
      atomic_elems
          ? (remote_is_dest
                 ? "xbr_put_atomic"
                 : (nbi ? "xbr_get_atomic_nbi" : "xbr_get_atomic"))
          : remote_is_dest
              ? (nonblocking ? (nbi ? "xbr_put_nbi" : "xbr_put_nb")
                             : "xbr_put")
              : (nonblocking ? (nbi ? "xbr_get_nbi" : "xbr_get_nb")
                             : "xbr_get");
  // How each side of the copy is recorded by XbrSan: the symmetric side of
  // a word-atomic transfer is an atomic access (atomic/atomic concurrency
  // is legal), the caller's private side stays a plain access.
  const SanAccess sym_write =
      atomic_elems ? SanAccess::kAtomic : SanAccess::kWrite;
  const SanAccess sym_read =
      atomic_elems ? SanAccess::kAtomic : SanAccess::kRead;

  if (pe == ctx.rank()) {
    // Local transfer: the §3.2 object-ID-0 shortcut. Plain memory-to-memory
    // copy with cache-model accounting; never crosses the fabric, so the
    // fault injector (whose sites are all remote-transfer sites) is not
    // consulted. XbrSan still sees symmetric-heap ranges: the copy must not
    // touch an open nonblocking landing zone, and in full mode it enters the
    // ledger so a peer's same-epoch remote access to the range is caught.
    if (san.conflicts_enabled()) {
      san.check_local(fn, ctx.rank(), src_ptr, span, /*is_write=*/false,
                      &ctx.trace());
      san.check_local(fn, ctx.rank(), dst_ptr, span, /*is_write=*/true,
                      &ctx.trace());
    }
    san_check_target(san, ctx, fn, pe, src_ptr, span,
                     remote_is_dest ? SanAccess::kRead : sym_read);
    san_check_target(san, ctx, fn, pe, dst_ptr, span,
                     remote_is_dest ? sym_write : SanAccess::kWrite);
    const std::uint64_t cycles = local_access_cycles(ctx, src_ptr, span) +
                                 local_access_cycles(ctx, dst_ptr, span) +
                                 issue_cycles(ctx.machine().network().params(),
                                              nelems);
    ctx.clock().advance(cycles);
    if (atomic_elems) {
      copy_elements_atomic(dst_ptr, src_ptr, elem_size, nelems, stride,
                           /*atomic_dst=*/remote_is_dest);
    } else {
      copy_elements(dst_ptr, src_ptr, elem_size, nelems, stride);
    }
    return;
  }

  NetworkModel& net = ctx.machine().network();
  FaultInjector& fault = ctx.machine().fault_injector();
  const FaultConfig& fc = fault.config();
  const bool faults_on = fault.enabled();
  const int rank = ctx.rank();
  if (faults_on) fault.on_rma_issue(rank);  // scripted-kill site (may throw)

  std::uint64_t cycles = issue_cycles(net.params(), nelems);
  ctx.trace().record(remote_is_dest ? EventKind::kRmaPutIssue
                                    : EventKind::kRmaGetIssue,
                     pe, bytes);

  // Local-side cost and symmetric-address rebase (once; retries re-use the
  // translation result but re-pay the wire).
  if (remote_is_dest) {
    cycles += local_access_cycles(ctx, src_ptr, span);
    dst_ptr = ctx.resolve_symmetric(pe, dst_ptr);
  } else {
    cycles += local_access_cycles(ctx, dst_ptr, span);
    src_ptr = ctx.resolve_symmetric(pe, src_ptr);
  }

  // XbrSan: validate the remote target range (bounds/lifetime/conflicts)
  // and the local side (must not touch an open nonblocking landing zone)
  // before any bytes move. The symmetric address passed by the caller has
  // the same offset on every PE, so it names the remote range exactly.
  san_check_target(san, ctx, fn, pe, remote_is_dest ? dest : src, span,
                   remote_is_dest ? sym_write : sym_read);
  if (san.conflicts_enabled()) {
    san.check_local(fn, rank, remote_is_dest ? src : dest, span,
                    /*is_write=*/!remote_is_dest, &ctx.trace());
  }

  // Bounded retry with exponential backoff: each attempt performs the
  // architectural OLB translation (§3.2), pays the full wire cost, and is
  // recorded in the phase/lifetime traffic accounting — a retransmission
  // consumes fabric bandwidth exactly like a first attempt.
  const bool links_on = !net.link_faults().empty();
  const int max_attempts = 1 + std::max(0, fc.max_rma_retries);
  int attempt = 0;
  for (;;) {
    ++attempt;
    (void)ctx.olb().lookup(object_id_for_pe(pe));
    cycles += remote_is_dest ? net.put_cost(rank, pe, bytes)
                             : net.get_cost(rank, pe, bytes);
    net.record(remote_is_dest, bytes, rank, pe);

    if (links_on) {
      // Scripted link plan, evaluated at this attempt's modeled time: a
      // down link drops the attempt wholesale (retries keep failing until
      // exhaustion escalates), a degraded one charges extra alpha/beta.
      const LinkStatus ls = detail::link_attempt_status(
          ctx, pe, ctx.clock().cycles() + cycles, attempt);
      if (ls == LinkStatus::kDown) {
        if (attempt >= max_attempts) {
          ctx.clock().advance(cycles);
          detail::throw_transfer_failed(
              ctx, pe, "link_down", attempt,
              "rma_transfer: " + std::to_string(attempt) +
                  " attempts dropped by a down link (PE " +
                  std::to_string(rank) + " -> " + std::to_string(pe) + ", " +
                  std::to_string(bytes) + " bytes)");
        }
        cycles += note_retry(ctx, fault, pe, attempt);
        continue;
      }
      if (ls == LinkStatus::kDegraded) {
        cycles += net.degraded_penalty_cycles(bytes);
      }
    }

    if (faults_on && fault.draw_olb_fault(rank)) {
      fault.counters().olb_faults.fetch_add(1, std::memory_order_relaxed);
      note_fault(ctx, pe, FaultSite::kOlbFault, attempt);
      if (attempt >= max_attempts) {
        ctx.clock().advance(cycles);
        detail::throw_transfer_failed(
            ctx, pe, "olb", attempt,
            "rma_transfer: OLB translation fault persisted through " +
                std::to_string(attempt) + " attempts (PE " +
                std::to_string(rank) + " -> " + std::to_string(pe) + ")");
      }
      cycles += note_retry(ctx, fault, pe, attempt);
      continue;
    }

    if (faults_on && fault.draw_rma_drop(rank)) {
      fault.counters().rma_drops.fetch_add(1, std::memory_order_relaxed);
      note_fault(ctx, pe, FaultSite::kRmaDrop, attempt);
      if (attempt >= max_attempts) {
        ctx.clock().advance(cycles);
        detail::throw_transfer_failed(
            ctx, pe, "drop", attempt,
            "rma_transfer: remote transfer dropped " + std::to_string(attempt) +
                " times, retries exhausted (PE " + std::to_string(rank) +
                " -> " + std::to_string(pe) + ", " + std::to_string(bytes) +
                " bytes)");
      }
      cycles += note_retry(ctx, fault, pe, attempt);
      continue;
    }

    if (faults_on && fault.draw_rma_delay(rank)) {
      fault.counters().rma_delays.fetch_add(1, std::memory_order_relaxed);
      note_fault(ctx, pe, FaultSite::kRmaDelay, attempt);
      cycles += fc.delay_cycles;
    }

    if (atomic_elems) {
      copy_elements_atomic(dst_ptr, src_ptr, elem_size, nelems, stride,
                           /*atomic_dst=*/remote_is_dest);
      // No bit-flip / checksum stages: the word travels in the request
      // header, whose loss the drop site above already models, and a plain
      // corruption write would race the very accesses this path keeps
      // atomic.
      break;
    }
    copy_elements(dst_ptr, src_ptr, elem_size, nelems, stride);

    if (faults_on && fault.draw_rma_bitflip(rank)) {
      fault.counters().rma_bitflips.fetch_add(1, std::memory_order_relaxed);
      note_fault(ctx, pe, FaultSite::kRmaBitflip, attempt);
      fault.corrupt_payload(rank, dst_ptr, elem_size, nelems, stride);
    }

    if (fc.verify_checksum) {
      cycles += checksum_cycles(bytes);
      const std::uint64_t want =
          strided_checksum(src_ptr, elem_size, nelems, stride);
      const std::uint64_t got =
          strided_checksum(dst_ptr, elem_size, nelems, stride);
      if (want != got) {
        fault.counters().checksum_failures.fetch_add(
            1, std::memory_order_relaxed);
        if (attempt >= max_attempts) {
          ctx.clock().advance(cycles);
          detail::throw_transfer_failed(
              ctx, pe, "checksum", attempt,
              "rma_transfer: payload checksum mismatch persisted through " +
                  std::to_string(attempt) + " attempts (PE " +
                  std::to_string(rank) + " -> " + std::to_string(pe) + ")");
        }
        cycles += note_retry(ctx, fault, pe, attempt);
        continue;
      }
    }
    break;
  }

  const EventKind done_kind = remote_is_dest ? EventKind::kRmaPutComplete
                                             : EventKind::kRmaGetComplete;
  if (nonblocking) {
    // The transfer completes at the modeled horizon, not when the issuing
    // PE's clock moves on — stamp the completion event there.
    const std::uint64_t issue_only = net.params().injection_cycles;
    const std::uint64_t done_at = ctx.clock().cycles() + cycles;
    ctx.note_pending(done_at);
    ctx.clock().advance(issue_only);
    ctx.trace().record_at(done_at, done_kind, pe, bytes);
    if (track == NbTrack::kRequest) {
      // Explicit-handle nbi: register the request so xbr_test/xbr_wait_req
      // can complete it individually, and open the request-tagged XbrSan
      // zones — the local source of a put must not be rewritten, the remote
      // landing zone must not be observed, and a get's destination must not
      // be touched until the request completes.
      XbrtimeRuntimeState& st = ctx.xbrtime_state();
      const std::uint64_t id = st.nbi_next_id++;
      st.nbi_inflight.push_back({id, done_at});
      *req_out = id;
      if (remote_is_dest) {
        san.note_nb_src(fn, rank, src, span, id);
        if (san.conflicts_enabled() && ctx.arena().in_shared(dest, 0)) {
          san.note_nb_remote(fn, rank, pe,
                             ctx.arena().shared_offset_of(dest), span, id);
        }
      } else {
        san.note_nb_dest(fn, rank, dest, span, id);
      }
    } else if (track == NbTrack::kLegacy && !remote_is_dest) {
      // A nonblocking get's destination stays "open" until xbr_wait: reading
      // it before then observes a half-landed transfer.
      san.note_nb_dest(fn, rank, dest, span);
    }
  } else {
    ctx.clock().advance(cycles);
    ctx.trace().record(done_kind, pe, bytes);
  }
}

}  // namespace detail

namespace detail {

std::uint64_t amo_cycles(const char* fn, const void* local_addr,
                         std::size_t bytes, int pe) {
  PeContext& ctx = xbrtime_ctx();
  // XbrSan: an AMO is an atomic access to the target range — atomic/atomic
  // pairs are legitimate (the GUPs update pattern), atomic vs plain
  // transfer is a conflict. Checked before any cost is charged.
  san_check_target(ctx.machine().sanitizer(), ctx, fn, pe, local_addr, bytes,
                   SanAccess::kAtomic);
  if (pe == ctx.rank()) {
    // Local RMW: the cache access dominates; the write-back hits the line
    // just fetched.
    return local_access_cycles(ctx, local_addr, bytes) +
           ctx.cache().config().costs.l1_hit_cycles;
  }
  FaultInjector& fault = ctx.machine().fault_injector();
  const FaultConfig& fc = fault.config();
  const bool faults_on = fault.enabled();
  const int rank = ctx.rank();
  if (faults_on) fault.on_amo_issue(rank);  // scripted-kill site
  NetworkModel& net = ctx.machine().network();
  ctx.trace().record(EventKind::kAmo, pe, bytes);

  // Bounded retry, mirroring rma_transfer: each attempt re-translates and
  // re-pays the full round-trip wire cost; a dropped RMW request charges
  // backoff and goes again, exhaustion throws the same error the RMA path
  // does, so application-level retry policies treat both uniformly.
  const bool links_on = !net.link_faults().empty();
  const int max_attempts = 1 + std::max(0, fc.max_rma_retries);
  std::uint64_t cycles = 0;
  int attempt = 0;
  for (;;) {
    ++attempt;
    (void)ctx.olb().lookup(object_id_for_pe(pe));
    net.record(/*is_put=*/false, bytes, rank, pe);
    net.record(/*is_put=*/true, bytes, rank, pe);
    cycles += net.get_cost(rank, pe, bytes) + net.put_cost(rank, pe, bytes);

    if (links_on) {
      const LinkStatus ls = link_attempt_status(
          ctx, pe, ctx.clock().cycles() + cycles, attempt);
      if (ls == LinkStatus::kDown) {
        if (attempt >= max_attempts) {
          ctx.clock().advance(cycles);
          throw_transfer_failed(
              ctx, pe, "link_down", attempt,
              std::string(fn) + ": " + std::to_string(attempt) +
                  " RMW attempts dropped by a down link (PE " +
                  std::to_string(rank) + " -> " + std::to_string(pe) + ")");
        }
        fault.counters().amo_retries.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t backoff = backoff_cycles(fc, attempt);
        ctx.trace().record(EventKind::kRmaRetry, pe,
                           static_cast<std::uint64_t>(attempt), backoff);
        cycles += backoff;
        continue;
      }
      if (ls == LinkStatus::kDegraded) {
        // Round-trip RMW crosses the degraded link twice.
        cycles += 2 * net.degraded_penalty_cycles(bytes);
      }
    }

    if (faults_on && fault.draw_amo_drop(rank)) {
      fault.counters().amo_drops.fetch_add(1, std::memory_order_relaxed);
      note_fault(ctx, pe, FaultSite::kAmoDrop, attempt);
      if (attempt >= max_attempts) {
        ctx.clock().advance(cycles);
        throw_transfer_failed(
            ctx, pe, "amo_drop", attempt,
            std::string(fn) + ": remote RMW request dropped " +
                std::to_string(attempt) + " times, retries exhausted (PE " +
                std::to_string(rank) + " -> " + std::to_string(pe) + ")");
      }
      fault.counters().amo_retries.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t backoff = backoff_cycles(fc, attempt);
      ctx.trace().record(EventKind::kRmaRetry, pe,
                         static_cast<std::uint64_t>(attempt), backoff);
      cycles += backoff;
      continue;
    }

    if (faults_on && fault.draw_amo_delay(rank)) {
      fault.counters().amo_delays.fetch_add(1, std::memory_order_relaxed);
      note_fault(ctx, pe, FaultSite::kAmoDelay, attempt);
      cycles += fc.delay_cycles;
    }
    break;
  }
  return cycles;
}

}  // namespace detail

void xbr_wait() {
  // Full drain, shared with xbr_quiet and the barriers: write combiner
  // flushed, clock to the pending horizon, request table cleared, XbrSan
  // zones closed.
  detail::nb_drain_all(xbrtime_ctx());
}

}  // namespace xbgas
