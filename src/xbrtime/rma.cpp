#include "xbrtime/rma.hpp"

#include <cstring>

#include "common/error.hpp"
#include "net/fabric.hpp"
#include "olb/olb.hpp"

namespace xbgas {

namespace {

/// Cycles for touching [ptr, ptr+bytes) in this PE's local memory. Pointers
/// outside the arena (ordinary host heap/stack buffers used in tests and
/// examples) are charged a flat L1-hit cost — they model registers/private
/// scratch rather than simulated DRAM.
std::uint64_t local_access_cycles(PeContext& ctx, const void* ptr,
                                  std::size_t bytes) {
  const auto* b = static_cast<const std::byte*>(ptr);
  const MemoryArena& arena = ctx.arena();
  if (b >= arena.base() && b + bytes <= arena.base() + arena.size()) {
    const auto addr = static_cast<std::uint64_t>(b - arena.base());
    return ctx.cache().access(addr, bytes);
  }
  return ctx.cache().config().costs.l1_hit_cycles;
}

/// Per-element issue cost, honouring the unrolling threshold (§3.3).
std::uint64_t issue_cycles(const NetCostParams& p, std::size_t nelems) {
  const std::uint64_t per =
      nelems > p.unroll_threshold ? p.issue_per_element_cycles_unrolled
                                  : p.issue_per_element_cycles;
  return per * nelems;
}

/// Strided element-wise copy; memcpy/memmove fast path when contiguous.
void copy_elements(std::byte* dst, const std::byte* src, std::size_t elem_size,
                   std::size_t nelems, int stride) {
  if (stride == 1) {
    std::memmove(dst, src, elem_size * nelems);
    return;
  }
  const std::size_t step = elem_size * static_cast<std::size_t>(stride);
  for (std::size_t i = 0; i < nelems; ++i) {
    std::memcpy(dst + i * step, src + i * step, elem_size);
  }
}

}  // namespace

namespace detail {

void rma_transfer(void* dest, const void* src, std::size_t elem_size,
                  std::size_t nelems, int stride, int pe, bool remote_is_dest,
                  bool nonblocking) {
  PeContext& ctx = xbrtime_ctx();
  XBGAS_CHECK(pe >= 0 && pe < ctx.n_pes(), "RMA target PE out of range");
  XBGAS_CHECK(stride >= 1, "RMA stride must be >= 1");
  if (nelems == 0) return;

  const std::size_t span =
      elem_size * ((nelems - 1) * static_cast<std::size_t>(stride) + 1);
  const std::size_t bytes = elem_size * nelems;

  std::byte* dst_ptr = static_cast<std::byte*>(dest);
  const std::byte* src_ptr = static_cast<const std::byte*>(src);

  if (pe == ctx.rank()) {
    // Local transfer: the §3.2 object-ID-0 shortcut. Plain memory-to-memory
    // copy with cache-model accounting, no network involvement.
    const std::uint64_t cycles = local_access_cycles(ctx, src_ptr, span) +
                                 local_access_cycles(ctx, dst_ptr, span) +
                                 issue_cycles(ctx.machine().network().params(),
                                              nelems);
    ctx.clock().advance(cycles);
    copy_elements(dst_ptr, src_ptr, elem_size, nelems, stride);
    return;
  }

  NetworkModel& net = ctx.machine().network();
  std::uint64_t cycles = issue_cycles(net.params(), nelems);
  ctx.trace().record(remote_is_dest ? EventKind::kRmaPutIssue
                                    : EventKind::kRmaGetIssue,
                     pe, bytes);
  // The architectural OLB translation every remote access performs (§3.2);
  // keeps the per-PE OLB statistics faithful on the fast path too.
  (void)ctx.olb().lookup(object_id_for_pe(pe));

  if (remote_is_dest) {
    // put: rebase the symmetric dest onto the target PE.
    cycles += local_access_cycles(ctx, src_ptr, span);
    dst_ptr = ctx.resolve_symmetric(pe, dst_ptr);
    cycles += net.put_cost(ctx.rank(), pe, bytes);
    net.record(/*is_put=*/true, bytes, ctx.rank(), pe);
  } else {
    // get: rebase the symmetric src onto the target PE.
    cycles += local_access_cycles(ctx, dst_ptr, span);
    src_ptr = ctx.resolve_symmetric(pe, src_ptr);
    cycles += net.get_cost(ctx.rank(), pe, bytes);
    net.record(/*is_put=*/false, bytes, ctx.rank(), pe);
  }

  // Data always moves eagerly (host memory is coherent); only the modeled
  // completion time differs between blocking and non-blocking forms.
  copy_elements(dst_ptr, src_ptr, elem_size, nelems, stride);

  const EventKind done_kind = remote_is_dest ? EventKind::kRmaPutComplete
                                             : EventKind::kRmaGetComplete;
  if (nonblocking) {
    // The transfer completes at the modeled horizon, not when the issuing
    // PE's clock moves on — stamp the completion event there.
    const std::uint64_t issue_only = net.params().injection_cycles;
    const std::uint64_t done_at = ctx.clock().cycles() + cycles;
    ctx.note_pending(done_at);
    ctx.clock().advance(issue_only);
    ctx.trace().record_at(done_at, done_kind, pe, bytes);
  } else {
    ctx.clock().advance(cycles);
    ctx.trace().record(done_kind, pe, bytes);
  }
}

}  // namespace detail

namespace detail {

std::uint64_t amo_cycles(const void* local_addr, std::size_t bytes, int pe) {
  PeContext& ctx = xbrtime_ctx();
  if (pe == ctx.rank()) {
    // Local RMW: the cache access dominates; the write-back hits the line
    // just fetched.
    return local_access_cycles(ctx, local_addr, bytes) +
           ctx.cache().config().costs.l1_hit_cycles;
  }
  NetworkModel& net = ctx.machine().network();
  ctx.trace().record(EventKind::kAmo, pe, bytes);
  (void)ctx.olb().lookup(object_id_for_pe(pe));
  net.record(/*is_put=*/false, bytes, ctx.rank(), pe);
  net.record(/*is_put=*/true, bytes, ctx.rank(), pe);
  return net.get_cost(ctx.rank(), pe, bytes) +
         net.put_cost(ctx.rank(), pe, bytes);
}

}  // namespace detail

void xbr_wait() {
  PeContext& ctx = xbrtime_ctx();
  if (ctx.pending_completion() > ctx.clock().cycles()) {
    ctx.clock().set(ctx.pending_completion());
  }
  ctx.clear_pending();
}

}  // namespace xbgas
