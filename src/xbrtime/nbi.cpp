#include "xbrtime/nbi.hpp"

#include <algorithm>
#include <atomic>

#include "xbrtime/wc.hpp"

namespace xbgas {

namespace {

struct NbiCountersAtomic {
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> tests{0};
  std::atomic<std::uint64_t> waits{0};
  std::atomic<std::uint64_t> quiets{0};
};

NbiCountersAtomic& nbi_counters_atomic() {
  static NbiCountersAtomic counters;
  return counters;
}

/// Find the inflight entry for `id`, or end(). The table is small (live
/// requests only) and append-ordered, so a linear scan is the right shape.
std::vector<NbInflight>::iterator find_inflight(XbrtimeRuntimeState& st,
                                                std::uint64_t id) {
  return std::find_if(st.nbi_inflight.begin(), st.nbi_inflight.end(),
                      [id](const NbInflight& r) { return r.id == id; });
}

}  // namespace

RmaNbiCounters rma_nbi_counters() {
  NbiCountersAtomic& c = nbi_counters_atomic();
  return RmaNbiCounters{
      .puts = c.puts.load(std::memory_order_relaxed),
      .gets = c.gets.load(std::memory_order_relaxed),
      .tests = c.tests.load(std::memory_order_relaxed),
      .waits = c.waits.load(std::memory_order_relaxed),
      .quiets = c.quiets.load(std::memory_order_relaxed),
  };
}

void reset_rma_nbi_counters() {
  NbiCountersAtomic& c = nbi_counters_atomic();
  c.puts.store(0, std::memory_order_relaxed);
  c.gets.store(0, std::memory_order_relaxed);
  c.tests.store(0, std::memory_order_relaxed);
  c.waits.store(0, std::memory_order_relaxed);
  c.quiets.store(0, std::memory_order_relaxed);
}

bool xbr_test(XbrRequest req) {
  nbi_counters_atomic().tests.fetch_add(1, std::memory_order_relaxed);
  if (req.is_null()) return true;
  PeContext& ctx = xbrtime_ctx();
  XbrtimeRuntimeState& st = ctx.xbrtime_state();
  const auto it = find_inflight(st, req.id);
  if (it == st.nbi_inflight.end()) return true;  // retired by a prior fence
  if (ctx.clock().cycles() < it->done_at) return false;
  st.nbi_inflight.erase(it);
  ctx.machine().sanitizer().on_wait_req(ctx.rank(), req.id);
  return true;
}

void xbr_wait_req(XbrRequest req) {
  if (req.is_null()) return;
  PeContext& ctx = xbrtime_ctx();
  XbrtimeRuntimeState& st = ctx.xbrtime_state();
  const auto it = find_inflight(st, req.id);
  if (it == st.nbi_inflight.end()) return;  // retired by a prior fence
  if (it->done_at > ctx.clock().cycles()) {
    ctx.clock().set(it->done_at);
  }
  st.nbi_inflight.erase(it);
  ctx.machine().sanitizer().on_wait_req(ctx.rank(), req.id);
  nbi_counters_atomic().waits.fetch_add(1, std::memory_order_relaxed);
}

void xbr_quiet() {
  PeContext& ctx = xbrtime_ctx();
  detail::nb_drain_all(ctx);
  nbi_counters_atomic().quiets.fetch_add(1, std::memory_order_relaxed);
}

void xbr_fence() { xbr_quiet(); }

namespace detail {

void note_nbi_issue(bool is_put) {
  NbiCountersAtomic& c = nbi_counters_atomic();
  (is_put ? c.puts : c.gets).fetch_add(1, std::memory_order_relaxed);
}

void nb_drain_all(PeContext& ctx) {
  // Flush first: buffered small puts become real transfers whose cost lands
  // on the clock before the horizon drain below absorbs outstanding nb work.
  wc_flush_all(ctx);
  if (ctx.pending_completion() > ctx.clock().cycles()) {
    ctx.clock().set(ctx.pending_completion());
  }
  ctx.clear_pending();
  ctx.xbrtime_state().nbi_inflight.clear();
  ctx.machine().sanitizer().on_wait(ctx.rank());
}

}  // namespace detail

}  // namespace xbgas
