#include "xbrtime/validation.hpp"

#include "common/error.hpp"
#include "isa/hart.hpp"
#include "olb/olb.hpp"

namespace xbgas {

namespace {

// Register conventions for the generated transfer loops (temporaries per
// the RISC-V convention: t0..t4 = x5..x9).
constexpr unsigned kSrc = 5;   ///< source pointer
constexpr unsigned kDst = 6;   ///< destination pointer (e6 pairs with x6)
constexpr unsigned kObj = 7;   ///< object-ID scratch
constexpr unsigned kTmp = 8;   ///< data temp
constexpr unsigned kCnt = 9;   ///< loop counter

using isa::ProgramBuilder;

void emit_local_load(ProgramBuilder& b, std::size_t w, unsigned rd,
                     unsigned rs1, std::int64_t off) {
  switch (w) {
    case 1: b.lbu(rd, rs1, off); return;
    case 2: b.lhu(rd, rs1, off); return;
    case 4: b.lwu(rd, rs1, off); return;
    case 8: b.ld(rd, rs1, off); return;
    default: throw Error("unsupported element size");
  }
}

void emit_local_store(ProgramBuilder& b, std::size_t w, unsigned rs2,
                      unsigned rs1, std::int64_t off) {
  switch (w) {
    case 1: b.sb(rs2, rs1, off); return;
    case 2: b.sh(rs2, rs1, off); return;
    case 4: b.sw(rs2, rs1, off); return;
    case 8: b.sd(rs2, rs1, off); return;
    default: throw Error("unsupported element size");
  }
}

void emit_remote_load(ProgramBuilder& b, std::size_t w, unsigned rd,
                      unsigned rs1, std::int64_t off) {
  switch (w) {
    case 1: b.elbu(rd, rs1, off); return;
    case 2: b.elhu(rd, rs1, off); return;
    case 4: b.elwu(rd, rs1, off); return;
    case 8: b.eld(rd, rs1, off); return;
    default: throw Error("unsupported element size");
  }
}

void emit_remote_store(ProgramBuilder& b, std::size_t w, unsigned rs2,
                       unsigned rs1, std::int64_t off) {
  switch (w) {
    case 1: b.esb(rs2, rs1, off); return;
    case 2: b.esh(rs2, rs1, off); return;
    case 4: b.esw(rs2, rs1, off); return;
    case 8: b.esd(rs2, rs1, off); return;
    default: throw Error("unsupported element size");
  }
}

/// Shared loop skeleton: `emit_pair(off)` emits one element move at byte
/// offset `off` from the current pointers.
template <class EmitPair>
isa::Program build_transfer(std::uint64_t dest_addr, std::uint64_t src_addr,
                            std::size_t elem_size, std::size_t nelems,
                            int stride, std::uint64_t object_id, bool unroll,
                            EmitPair&& emit_pair) {
  XBGAS_CHECK(elem_size == 1 || elem_size == 2 || elem_size == 4 ||
                  elem_size == 8,
              "ISA transfers support 1/2/4/8-byte elements");
  XBGAS_CHECK(stride >= 1, "stride must be >= 1");
  const auto step =
      static_cast<std::int64_t>(elem_size * static_cast<std::size_t>(stride));

  ProgramBuilder b;
  b.li(kObj, static_cast<std::int64_t>(object_id));
  b.eaddie(kDst, kObj, 0);  // e6 <- object ID; pairs with x6 in e-forms
  b.li(kSrc, static_cast<std::int64_t>(src_addr));
  b.li(kDst, static_cast<std::int64_t>(dest_addr));

  if (nelems == 0) {
    b.ecall();
    return b.build();
  }

  // Immediate offsets in the unrolled body must fit the 12-bit form.
  const bool can_unroll = unroll && nelems >= 4 && 3 * step <= 2047;

  if (can_unroll) {
    const auto chunks = static_cast<std::int64_t>(nelems / 4);
    const std::size_t rem = nelems % 4;
    b.li(kCnt, chunks);
    b.label("uloop");
    for (int k = 0; k < 4; ++k) emit_pair(b, k * step);
    b.addi(kSrc, kSrc, 4 * step);
    b.addi(kDst, kDst, 4 * step);
    b.addi(kCnt, kCnt, -1);
    b.bne(kCnt, 0, "uloop");
    // Straight-line remainder (< 4 elements).
    for (std::size_t k = 0; k < rem; ++k) {
      emit_pair(b, static_cast<std::int64_t>(k) * step);
    }
  } else {
    b.li(kCnt, static_cast<std::int64_t>(nelems));
    b.label("loop");
    emit_pair(b, 0);
    b.addi(kSrc, kSrc, step);
    b.addi(kDst, kDst, step);
    b.addi(kCnt, kCnt, -1);
    b.bne(kCnt, 0, "loop");
  }
  b.ecall();
  return b.build();
}

std::uint64_t arena_offset(PeContext& ctx, const void* p, std::size_t span) {
  const auto* b = static_cast<const std::byte*>(p);
  const MemoryArena& arena = ctx.arena();
  XBGAS_CHECK(b >= arena.base() && b + span <= arena.base() + arena.size(),
              "ISA transfer operands must live in the PE's arena");
  return static_cast<std::uint64_t>(b - arena.base());
}

IsaTransferResult run_program(PeContext& ctx, const isa::Program& prog) {
  isa::Hart hart(ctx.port());
  hart.load_program(prog);
  const auto halt = hart.run();
  XBGAS_CHECK(halt == isa::Hart::Halt::kEcall,
              "ISA transfer did not run to completion");
  return IsaTransferResult{.instructions = hart.stats().instructions,
                           .cycles = hart.cycles()};
}

}  // namespace

isa::Program build_put_program(std::uint64_t dest_addr, std::uint64_t src_addr,
                               std::size_t elem_size, std::size_t nelems,
                               int stride, std::uint64_t object_id,
                               bool unroll) {
  return build_transfer(
      dest_addr, src_addr, elem_size, nelems, stride, object_id, unroll,
      [elem_size](ProgramBuilder& b, std::int64_t off) {
        emit_local_load(b, elem_size, kTmp, kSrc, off);
        emit_remote_store(b, elem_size, kTmp, kDst, off);
      });
}

isa::Program build_get_program(std::uint64_t dest_addr, std::uint64_t src_addr,
                               std::size_t elem_size, std::size_t nelems,
                               int stride, std::uint64_t object_id,
                               bool unroll) {
  // For get, the *source* is remote: swap the pair so x6/e6 tracks the
  // remote source and x5 the local destination.
  return build_transfer(
      src_addr, dest_addr, elem_size, nelems, stride, object_id, unroll,
      [elem_size](ProgramBuilder& b, std::int64_t off) {
        emit_remote_load(b, elem_size, kTmp, kDst, off);
        emit_local_store(b, elem_size, kTmp, kSrc, off);
      });
}

IsaTransferResult isa_put(PeContext& ctx, void* dest, const void* src,
                          std::size_t elem_size, std::size_t nelems,
                          int stride, int pe, bool unroll) {
  XBGAS_CHECK(pe >= 0 && pe < ctx.n_pes(), "target PE out of range");
  const std::size_t span =
      nelems == 0 ? 0
                  : elem_size * ((nelems - 1) * static_cast<std::size_t>(stride) + 1);
  const std::uint64_t dest_addr = arena_offset(ctx, dest, span);
  const std::uint64_t src_addr = arena_offset(ctx, src, span);
  const std::uint64_t obj =
      pe == ctx.rank() ? kLocalObjectId : object_id_for_pe(pe);
  return run_program(ctx, build_put_program(dest_addr, src_addr, elem_size,
                                            nelems, stride, obj, unroll));
}

IsaTransferResult isa_get(PeContext& ctx, void* dest, const void* src,
                          std::size_t elem_size, std::size_t nelems,
                          int stride, int pe, bool unroll) {
  XBGAS_CHECK(pe >= 0 && pe < ctx.n_pes(), "target PE out of range");
  const std::size_t span =
      nelems == 0 ? 0
                  : elem_size * ((nelems - 1) * static_cast<std::size_t>(stride) + 1);
  const std::uint64_t dest_addr = arena_offset(ctx, dest, span);
  const std::uint64_t src_addr = arena_offset(ctx, src, span);
  const std::uint64_t obj =
      pe == ctx.rank() ? kLocalObjectId : object_id_for_pe(pe);
  return run_program(ctx, build_get_program(dest_addr, src_addr, elem_size,
                                            nelems, stride, obj, unroll));
}

}  // namespace xbgas
