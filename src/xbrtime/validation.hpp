#pragma once

// ISA-lowered transfers — the fidelity path.
//
// The production RMA path (rma.cpp) moves bytes with cost-accounted bulk
// copies. This module lowers the *same* transfer to an actual RV64I+xBGAS
// instruction sequence (the eld/esd loop the real xbrtime assembly uses,
// including the loop-unrolling optimization of §3.3) and executes it on the
// interpreter against the same arenas and OLB. Integration tests assert the
// two paths produce identical memory effects; the A3 ablation bench uses the
// interpreter's cycle counts to quantify the unrolling win.

#include <cstddef>
#include <cstdint>

#include "isa/builder.hpp"
#include "machine/machine.hpp"

namespace xbgas {

struct IsaTransferResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

/// Build the instruction sequence for a strided put/get of `nelems` elements
/// of `elem_size` (1/2/4/8 bytes) between arena offsets. `object_id` selects
/// the remote target (0 = local). When `unroll`, the main loop is unrolled
/// x4 with a remainder loop, as the runtime does past its threshold.
isa::Program build_put_program(std::uint64_t dest_addr, std::uint64_t src_addr,
                               std::size_t elem_size, std::size_t nelems,
                               int stride, std::uint64_t object_id,
                               bool unroll);

isa::Program build_get_program(std::uint64_t dest_addr, std::uint64_t src_addr,
                               std::size_t elem_size, std::size_t nelems,
                               int stride, std::uint64_t object_id,
                               bool unroll);

/// Execute a put/get by lowering to instructions and interpreting them on a
/// hart wired to this PE's port. `dest`/`src` follow the xbr_put/xbr_get
/// conventions (symmetric remote side, arena-resident local side). Returns
/// the interpreter's instruction/cycle counts; the PE SimClock is *not*
/// advanced (callers doing performance comparison decide what to charge).
IsaTransferResult isa_put(PeContext& ctx, void* dest, const void* src,
                          std::size_t elem_size, std::size_t nelems,
                          int stride, int pe, bool unroll);

IsaTransferResult isa_get(PeContext& ctx, void* dest, const void* src,
                          std::size_t elem_size, std::size_t nelems,
                          int stride, int pe, bool unroll);

}  // namespace xbgas
