#include "xbrtime/api_c.hpp"

#include "xbrtime/rma.hpp"

namespace xbgas {

#define XBGAS_DEFINE_RMA(NAME, TYPE)                                     \
  void xbrtime_##NAME##_put(TYPE* dest, const TYPE* src,                 \
                            std::size_t nelems, int stride, int pe) {    \
    xbr_put(dest, src, nelems, stride, pe);                              \
  }                                                                      \
  void xbrtime_##NAME##_get(TYPE* dest, const TYPE* src,                 \
                            std::size_t nelems, int stride, int pe) {    \
    xbr_get(dest, src, nelems, stride, pe);                              \
  }                                                                      \
  void xbrtime_##NAME##_put_nb(TYPE* dest, const TYPE* src,              \
                               std::size_t nelems, int stride, int pe) { \
    xbr_put_nb(dest, src, nelems, stride, pe);                           \
  }                                                                      \
  void xbrtime_##NAME##_get_nb(TYPE* dest, const TYPE* src,              \
                               std::size_t nelems, int stride, int pe) { \
    xbr_get_nb(dest, src, nelems, stride, pe);                           \
  }

XBGAS_FOREACH_TYPE(XBGAS_DEFINE_RMA)

#undef XBGAS_DEFINE_RMA

namespace {
#define XBGAS_TYPE_NAME(NAME, TYPE) #NAME,
#define XBGAS_TYPE_CTYPE(NAME, TYPE) #TYPE,
const char* const kTypedNames[] = {XBGAS_FOREACH_TYPE(XBGAS_TYPE_NAME)};
const char* const kTypedCtypes[] = {XBGAS_FOREACH_TYPE(XBGAS_TYPE_CTYPE)};
#undef XBGAS_TYPE_NAME
#undef XBGAS_TYPE_CTYPE

static_assert(sizeof(kTypedNames) / sizeof(kTypedNames[0]) == kNumTypedNames,
              "Table 1 must list exactly 24 typed names");
}  // namespace

const char* const* typed_names() { return kTypedNames; }
const char* const* typed_ctypes() { return kTypedCtypes; }

}  // namespace xbgas
