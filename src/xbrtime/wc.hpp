#pragma once

// Per-PE write combining — the RMA aggregation engine for small-put storms.
//
// GUPs-style workloads issue thousands of tiny puts whose cost is pure
// per-message overhead: alpha (OLB + injection + hops + remote access)
// dwarfs the byte serialization. The write combiner batches small puts to
// the same target PE into one message: k puts of b bytes cost one alpha
// plus k*b serialization instead of k alphas — the >= 2x modeled-cycle win
// bench_gups measures.
//
//   xbr_wc_enable(threshold, capacity)  start coalescing on this PE
//   xbr_put_wc(dest, src, n, stride, pe)  put, buffered when eligible
//   xbr_wc_flush()                      push out every buffered put now
//   xbr_wc_disable()                    flush + stop coalescing
//
// Eligibility: coalescing on, contiguous (stride 1), remote (pe != rank),
// payload at most `threshold` bytes, and a symmetric destination. Anything
// else falls through to a plain blocking xbr_put, so xbr_put_wc is always
// safe to call.
//
// Flush points: a target buffer reaching `capacity` entries, xbr_wc_flush,
// xbr_quiet / xbr_fence / xbr_wait, barriers, and xbr_wc_disable. Until a
// put flushes, its DATA has not moved — unlike the nb/nbi transfers, which
// copy at issue — so the fence discipline is load-bearing: remote readers
// may only observe a wc put after a flush point, and the usual
// barrier-ordered programs get that for free. XbrSan checks the target
// range at enqueue time (fn "xbr_put_wc"), so bounds/lifetime/conflict
// diagnosis is not deferred.
//
// Like the word-atomic path, a flushed batch skips the payload-corruption
// fault stages (bit-flip, checksum): entries land via per-entry header
// copies whose loss the message-drop site already models.

#include <cstddef>
#include <cstdint>

#include "xbrtime/rma.hpp"

namespace xbgas {

/// Process-wide write-combining counters (observability: rma.coalesced.*).
struct WcCounters {
  std::uint64_t puts = 0;      ///< xbr_put_wc calls
  std::uint64_t enqueued = 0;  ///< calls that buffered (vs fell through)
  std::uint64_t flushes = 0;   ///< batched messages sent
  std::uint64_t messages = 0;  ///< individual puts those batches carried
  std::uint64_t bytes = 0;     ///< payload bytes flushed
};

WcCounters wc_counters();
void reset_wc_counters();

/// Start coalescing on the calling PE. `threshold_bytes` caps the payload a
/// put may have and still coalesce; `capacity_entries` is the per-target
/// buffered-put count that triggers an automatic flush.
void xbr_wc_enable(std::size_t threshold_bytes = 64,
                   std::size_t capacity_entries = 64);

/// Flush everything buffered, then stop coalescing (xbr_put_wc degrades to
/// xbr_put until re-enabled).
void xbr_wc_disable();

/// True iff coalescing is on for the calling PE.
bool xbr_wc_enabled();

/// Flush every target's buffered puts now (blocking; modeled cost charged).
void xbr_wc_flush();

namespace detail {

/// Buffer the put if it is eligible (see header comment); returns false to
/// tell the caller to fall through to a plain xbr_put.
bool wc_try_enqueue(void* dest, const void* src, std::size_t elem_size,
                    std::size_t nelems, int stride, int pe);

/// Flush one target's buffer / all buffers for `ctx`'s PE. No-ops when the
/// combiner is off or empty, so the barrier/fence hooks are free in the
/// common case.
void wc_flush_target(PeContext& ctx, int pe);
void wc_flush_all(PeContext& ctx);

}  // namespace detail

template <class T>
void xbr_put_wc(T* dest, const T* src, std::size_t nelems, int stride,
                int pe) {
  detail::validate_rma("xbr_put_wc", dest, src, nelems, stride, pe);
  if (detail::wc_try_enqueue(dest, src, sizeof(T), nelems, stride, pe)) return;
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/true, /*nonblocking=*/false);
}

}  // namespace xbgas
