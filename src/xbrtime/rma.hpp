#pragma once

// One-sided remote memory access (paper §3.3).
//
//   xbr_put(dest, src, nelems, stride, pe)   write local src  -> pe's dest
//   xbr_get(dest, src, nelems, stride, pe)   read  pe's src   -> local dest
//
// `dest` (for put) / `src` (for get) must be symmetric shared addresses:
// the caller passes its *own* copy of the symmetric allocation and the
// runtime rebases it onto the target PE, exactly how xBGAS hardware pairs an
// object ID with a local virtual address. `stride` is in elements and
// applies to both buffers (stride == 1 is contiguous); `nelems` may be 0.
//
// Non-blocking forms (`_nb`) move data immediately but only charge the
// injection cost at issue time; the remaining modeled latency completes at
// xbr_wait() or the next xbrtime_barrier(), so independent transfers
// overlap — mirroring the paper's non-blocking get/put.
//
// Timing model per remote transfer (see NetworkModel): one pipelined
// message — startup (OLB + injection + hop latency) + bytes/link-bandwidth
// serialization + remote memory access + a per-element issue cost that
// drops once `nelems` crosses the runtime's loop-unrolling threshold.
//
// Resilience (docs/RESILIENCE.md): under an active FaultConfig each remote
// transfer is attempted up to 1 + max_rma_retries times with exponential
// backoff charged to the SimClock — retries show up in modeled time — and
// optional checksum verification turns injected payload corruption into the
// same retry path instead of silent data loss.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace detail {

/// How a nonblocking transfer is tracked for completion and hazards.
enum class NbTrack : std::uint8_t {
  kLegacy,   ///< the original _nb epoch: closed only by xbr_wait / a barrier
  kRequest,  ///< explicit-handle nbi: registered in the per-PE request table
             ///< and closed individually by xbr_test / xbr_wait_req
  kInternal, ///< collective-internal pipelining: timing only, no XbrSan
             ///< zones (the enclosing collective owns the hazard contract)
};

/// Byte-level transfer engine shared by all typed entry points.
/// If `remote_is_dest`, `remote_ptr` is the caller's symmetric address for
/// the destination (put); otherwise for the source (get).
/// `atomic_elems` selects the word-atomic variant (xbr_put_atomic /
/// xbr_get_atomic): every element moves with one atomic access on the
/// symmetric side, the payload-corruption stages (bit-flip, checksum) are
/// skipped, and XbrSan records the access as atomic.
/// With `track == NbTrack::kRequest`, `req_out` (required non-null) receives
/// the allocated request id, or 0 when the transfer completed at issue
/// (zero length, or local pe == rank).
void rma_transfer(void* dest, const void* src, std::size_t elem_size,
                  std::size_t nelems, int stride, int pe, bool remote_is_dest,
                  bool nonblocking, bool atomic_elems = false,
                  NbTrack track = NbTrack::kLegacy,
                  std::uint64_t* req_out = nullptr);

/// Entry-point argument validation: throws xbgas::Error naming `fn` and the
/// offending argument (bad pe, stride < 1, null dest/src) *before* any cost
/// is charged or any deep machinery (resolve_symmetric) is entered. Null
/// pointers are permitted for zero-length transfers, which touch no memory.
void validate_rma(const char* fn, const void* dest, const void* src,
                  std::size_t nelems, int stride, int pe);

/// Same for the AMO entry points (pe range, null dest).
void validate_amo(const char* fn, const void* dest, int pe);

/// Word-atomic entry points additionally require naturally aligned
/// buffers (std::atomic_ref demands it); throws xbgas::Error otherwise.
void validate_word_aligned(const char* fn, const void* dest, const void* src,
                           std::size_t elem_size);

}  // namespace detail

template <class T>
void xbr_put(T* dest, const T* src, std::size_t nelems, int stride, int pe) {
  detail::validate_rma("xbr_put", dest, src, nelems, stride, pe);
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/true, /*nonblocking=*/false);
}

template <class T>
void xbr_get(T* dest, const T* src, std::size_t nelems, int stride, int pe) {
  detail::validate_rma("xbr_get", dest, src, nelems, stride, pe);
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/false, /*nonblocking=*/false);
}

template <class T>
void xbr_put_nb(T* dest, const T* src, std::size_t nelems, int stride, int pe) {
  detail::validate_rma("xbr_put_nb", dest, src, nelems, stride, pe);
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/true, /*nonblocking=*/true);
}

template <class T>
void xbr_get_nb(T* dest, const T* src, std::size_t nelems, int stride, int pe) {
  detail::validate_rma("xbr_get_nb", dest, src, nelems, stride, pe);
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/false, /*nonblocking=*/true);
}

/// Word-atomic remote store: xbr_put for 4/8-byte elements where each
/// element lands with a single atomic access on the target's symmetric
/// slot. This models xBGAS's naturally aligned remote dword store — the
/// hardware moves an aligned word indivisibly — with std::atomic_ref
/// standing in for that atomicity on the host (the xbr_amo precedent), so
/// shards serving concurrent traffic from many PEs stay race-free without
/// any locking. Same fault/retry/cost machinery as xbr_put, except the
/// payload-corruption stages (bit-flip, checksum) do not apply: a ≤ 8-byte
/// operand travels in the request header, whose loss the drop site models.
/// XbrSan records the access as atomic, so atomic/atomic concurrency is
/// exempt from conflict detection while an overlapping plain transfer is
/// still diagnosed.
template <class T>
  requires(std::is_trivially_copyable_v<T> &&
           (sizeof(T) == 4 || sizeof(T) == 8))
void xbr_put_atomic(T* dest, const T* src, std::size_t nelems, int stride,
                    int pe) {
  detail::validate_rma("xbr_put_atomic", dest, src, nelems, stride, pe);
  detail::validate_word_aligned("xbr_put_atomic", dest, src, sizeof(T));
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/true, /*nonblocking=*/false,
                       /*atomic_elems=*/true);
}

/// Word-atomic remote load, mirror of xbr_put_atomic.
template <class T>
  requires(std::is_trivially_copyable_v<T> &&
           (sizeof(T) == 4 || sizeof(T) == 8))
void xbr_get_atomic(T* dest, const T* src, std::size_t nelems, int stride,
                    int pe) {
  detail::validate_rma("xbr_get_atomic", dest, src, nelems, stride, pe);
  detail::validate_word_aligned("xbr_get_atomic", dest, src, sizeof(T));
  detail::rma_transfer(dest, src, sizeof(T), nelems, stride, pe,
                       /*remote_is_dest=*/false, /*nonblocking=*/false,
                       /*atomic_elems=*/true);
}

/// Complete all outstanding non-blocking transfers issued by this PE.
void xbr_wait();

namespace detail {
/// Modeled AMO cost; also runs the XbrSan target check (`fn` names the
/// calling entry point in any violation diagnostic).
std::uint64_t amo_cycles(const char* fn, const void* local_addr,
                         std::size_t bytes, int pe);
}  // namespace detail

/// Remote atomic XOR on a symmetric 32/64-bit integer (the GUPs update
/// primitive). The paper's runtime performs an unsynchronized remote
/// read-modify-write sequence; here host-side atomicity (std::atomic_ref)
/// stands in for it so the simulation itself stays race-free, while the
/// modeled cost remains the full get+put round trip that sequence costs.
template <class T>
  requires(std::is_integral_v<T> && (sizeof(T) == 4 || sizeof(T) == 8))
T xbr_amo_xor(T* dest, T value, int pe) {
  detail::validate_amo("xbr_amo_xor", dest, pe);
  PeContext& ctx = xbrtime_ctx();
  T* target = dest;
  if (pe != ctx.rank()) {
    target = reinterpret_cast<T*>(ctx.resolve_symmetric(pe, dest));
  }
  ctx.clock().advance(detail::amo_cycles("xbr_amo_xor", dest, sizeof(T), pe));
  return std::atomic_ref<T>(*target).fetch_xor(value,
                                               std::memory_order_relaxed);
}

/// Remote atomic add, same contract as xbr_amo_xor.
template <class T>
  requires(std::is_integral_v<T> && (sizeof(T) == 4 || sizeof(T) == 8))
T xbr_amo_add(T* dest, T value, int pe) {
  detail::validate_amo("xbr_amo_add", dest, pe);
  PeContext& ctx = xbrtime_ctx();
  T* target = dest;
  if (pe != ctx.rank()) {
    target = reinterpret_cast<T*>(ctx.resolve_symmetric(pe, dest));
  }
  ctx.clock().advance(detail::amo_cycles("xbr_amo_add", dest, sizeof(T), pe));
  return std::atomic_ref<T>(*target).fetch_add(value,
                                               std::memory_order_relaxed);
}

}  // namespace xbgas
