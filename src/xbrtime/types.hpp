#pragma once

// The Table-1 type universe: every TYPENAME <-> TYPE pair for which the
// xBGAS runtime exposes explicit typed entry points (xbrtime_int_put,
// xbrtime_float_broadcast, ...). The paper deliberately names one call per
// C type — rather than OpenSHMEM's size-suffixed calls — on usability
// grounds (§4.7), so the generated API surface below reproduces all 24.
//
// X-macro convention: X(TYPENAME, TYPE) in paper Table-1 order.

#include <cstddef>
#include <cstdint>

namespace xbgas {

// clang-format off
#define XBGAS_FOREACH_TYPE(X)        \
  X(float, float)                    \
  X(double, double)                  \
  X(longdouble, long double)         \
  X(char, char)                      \
  X(uchar, unsigned char)            \
  X(schar, signed char)              \
  X(ushort, unsigned short)          \
  X(short, short)                    \
  X(uint, unsigned int)              \
  X(int, int)                        \
  X(ulong, unsigned long)            \
  X(long, long)                      \
  X(ulonglong, unsigned long long)   \
  X(longlong, long long)             \
  X(uint8, std::uint8_t)             \
  X(int8, std::int8_t)               \
  X(uint16, std::uint16_t)           \
  X(int16, std::int16_t)             \
  X(uint32, std::uint32_t)           \
  X(int32, std::int32_t)             \
  X(uint64, std::uint64_t)           \
  X(int64, std::int64_t)             \
  X(size, std::size_t)               \
  X(ptrdiff, std::ptrdiff_t)

// Integer-only subset (bitwise reductions are defined for these but not for
// the floating-point types; paper §4.4).
#define XBGAS_FOREACH_INT_TYPE(X)    \
  X(char, char)                      \
  X(uchar, unsigned char)            \
  X(schar, signed char)              \
  X(ushort, unsigned short)          \
  X(short, short)                    \
  X(uint, unsigned int)              \
  X(int, int)                        \
  X(ulong, unsigned long)            \
  X(long, long)                      \
  X(ulonglong, unsigned long long)   \
  X(longlong, long long)             \
  X(uint8, std::uint8_t)             \
  X(int8, std::int8_t)               \
  X(uint16, std::uint16_t)           \
  X(int16, std::int16_t)             \
  X(uint32, std::uint32_t)           \
  X(int32, std::int32_t)             \
  X(uint64, std::uint64_t)           \
  X(int64, std::int64_t)             \
  X(size, std::size_t)               \
  X(ptrdiff, std::ptrdiff_t)
// clang-format on

/// Number of Table-1 entries.
inline constexpr int kNumTypedNames = 24;

/// TYPENAME strings in Table-1 order (for the Table-1 bench/test).
const char* const* typed_names();

/// TYPE spellings in Table-1 order.
const char* const* typed_ctypes();

}  // namespace xbgas
