#pragma once

// Shared transport-failure plumbing for every bounded-retry loop in the
// xbrtime layer (rma put/get, remote AMO, write-combiner flush).
//
// Two pieces:
//
//  * link_attempt_status — the per-attempt consult of the scripted
//    link/partition fault plan (LinkFaults), evaluated against the issuing
//    PE's modeled clock plus its locally-accumulated attempt cycles, so
//    fault placement is bit-identical across runs. Counts and traces the
//    observation.
//
//  * throw_transfer_failed — the single terminal throw site that used to be
//    hand-rolled per loop. It attaches the structured facts (target rank,
//    site, attempts) to RmaRetriesExhaustedError, and when the retries died
//    against a link the plan has scripted *down* it escalates: the peer is
//    not lossy but unreachable, so it records the suspect in the recovery
//    roster, poisons the currently-registered barriers (pulling every
//    blocked PE into the same agree -> shrink recovery a death triggers),
//    and throws the typed PeUnreachableError instead.

#include <cstdint>
#include <string>

#include "machine/machine.hpp"
#include "net/fabric.hpp"

namespace xbgas {
namespace detail {

/// Consult the link plan for one transfer attempt from `ctx.rank()` to
/// `target_pe` at modeled time `now` (clock + accumulated attempt cycles).
/// kDown / kDegraded observations bump fault.injected.link_* counters and
/// record a kFaultInject trace event. Callers must gate on
/// `!network().link_faults().empty()` to keep the fault-free path one branch.
LinkStatus link_attempt_status(PeContext& ctx, int target_pe,
                               std::uint64_t now, int attempt);

/// Terminal failure of a bounded-retry transfer loop. `site` is the
/// transport stage that exhausted ("olb", "drop", "checksum", "amo_drop",
/// "wc_flush", "link_down"). The caller must have advanced the PE clock
/// already. Throws PeUnreachableError when the direct link to `target_pe`
/// is down at the current modeled time (after recording the suspect and
/// poisoning registered barriers), RmaRetriesExhaustedError otherwise.
[[noreturn]] void throw_transfer_failed(PeContext& ctx, int target_pe,
                                        const char* site, int attempts,
                                        const std::string& what);

}  // namespace detail
}  // namespace xbgas
