#include "xbrtime/runtime.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace xbgas {

namespace {

struct StagingState {
  std::byte* base = nullptr;
  std::size_t capacity = 0;
  std::size_t top = 0;
  std::vector<std::size_t> lifo;  // offsets of live blocks, stack order
};

struct RuntimeTls {
  PeContext* ctx = nullptr;
  std::size_t live_allocations = 0;
  StagingState staging;
};

thread_local RuntimeTls t_rt;

constexpr std::uint64_t kAllocFailed = std::numeric_limits<std::uint64_t>::max();

/// Cycles charged for the runtime's own bookkeeping on an API call; the
/// paper's library is "as lightweight as possible", so this is a token cost.
constexpr std::uint64_t kApiCallCycles = 10;

}  // namespace

PeContext& xbrtime_ctx() {
  XBGAS_CHECK(t_rt.ctx != nullptr,
              "xbrtime runtime not initialized on this thread "
              "(call xbrtime_init() inside Machine::run)");
  return *t_rt.ctx;
}

bool xbrtime_initialized() { return t_rt.ctx != nullptr; }

int xbrtime_init() {
  PeContext* ctx = current_pe_context();
  XBGAS_CHECK(ctx != nullptr,
              "xbrtime_init must be called from an SPMD region");
  XBGAS_CHECK(t_rt.ctx == nullptr, "xbrtime_init called twice");
  t_rt.ctx = ctx;
  t_rt.live_allocations = 0;
  ctx->clock().advance(kApiCallCycles);
  xbrtime_barrier();  // init is collective

  // Carve the collective staging region out of the symmetric heap (same
  // offset on every PE because every PE allocates it first).
  const std::size_t stage_bytes =
      std::min<std::size_t>(ctx->arena().shared_size() / 4,
                            std::size_t{16} << 20);
  void* stage = xbrtime_malloc(stage_bytes);
  XBGAS_CHECK(stage != nullptr, "failed to allocate collective staging region");
  t_rt.staging.base = static_cast<std::byte*>(stage);
  t_rt.staging.capacity = stage_bytes;
  t_rt.staging.top = 0;
  t_rt.staging.lifo.clear();
  return 0;
}

void xbrtime_close() {
  PeContext& ctx = xbrtime_ctx();
  if (!t_rt.staging.lifo.empty()) {
    XBGAS_LOG_WARN("xbrtime_close: %zu staging blocks still live on PE %d",
                   t_rt.staging.lifo.size(), ctx.rank());
  }
  if (t_rt.staging.base != nullptr) {
    xbrtime_free(t_rt.staging.base);
    t_rt.staging = StagingState{};
  }
  xbrtime_barrier();  // close is collective
  if (t_rt.live_allocations != 0) {
    XBGAS_LOG_WARN("xbrtime_close: %zu symmetric allocations leaked on PE %d",
                   t_rt.live_allocations, ctx.rank());
  }
  ctx.clock().advance(kApiCallCycles);
  t_rt = RuntimeTls{};
}

int xbrtime_mype() {
  return t_rt.ctx != nullptr ? t_rt.ctx->rank() : -1;
}

int xbrtime_num_pes() {
  return t_rt.ctx != nullptr ? t_rt.ctx->n_pes() : 0;
}

void xbrtime_barrier() {
  PeContext& ctx = xbrtime_ctx();
  // A barrier completes all outstanding non-blocking transfers first.
  if (ctx.pending_completion() > ctx.clock().cycles()) {
    ctx.clock().set(ctx.pending_completion());
  }
  ctx.clear_pending();
  ctx.machine().sanitizer().on_wait(ctx.rank());
  FaultInjector& fault = ctx.machine().fault_injector();
  if (fault.enabled()) fault.on_barrier_arrival(ctx.rank());  // scripted kill
  const std::uint64_t t =
      ctx.machine().world_barrier().arrive_and_wait(ctx.clock().cycles());
  ctx.clock().set(t);
}

void* xbrtime_malloc(std::size_t bytes) {
  PeContext& ctx = xbrtime_ctx();
  Machine& machine = ctx.machine();
  ctx.clock().advance(kApiCallCycles);

  const auto offset = ctx.shared_allocator().allocate(bytes);
  machine.validation_slot(ctx.rank()) = offset ? *offset : kAllocFailed;
  xbrtime_barrier();

  // Symmetry check: every PE must have produced the same offset. A mismatch
  // means the program broke the collective-allocation discipline. Every PE
  // computes the same verdict from the same slots, so either all throw or
  // none do.
  bool any_failed = false;
  bool mismatch = false;
  std::uint64_t ref = kAllocFailed;
  for (int r = 0; r < ctx.n_pes(); ++r) {
    const std::uint64_t theirs = machine.validation_slot(r);
    if (theirs == kAllocFailed) {
      any_failed = true;
    } else if (ref == kAllocFailed) {
      ref = theirs;
    } else if (theirs != ref) {
      mismatch = true;
    }
  }
  // XbrSan mirrors the allocator state (its own shadow map, under its own
  // lock) so remote-access bounds checks never race the target's allocator.
  // Registration must happen BEFORE the final barrier: the moment a peer
  // exits that barrier it may legally target this block, and it must find
  // the shadow entry already present.
  if (!mismatch && !any_failed) {
    ++t_rt.live_allocations;
    Sanitizer& san = machine.sanitizer();
    if (san.enabled()) {
      san.on_alloc(ctx.rank(), *offset,
                   ctx.shared_allocator().allocation_size(*offset));
    }
  }
  xbrtime_barrier();  // slots may be rewritten by the next collective

  if (mismatch) {
    throw Error(
        "xbrtime_malloc: asymmetric allocation detected - PEs called "
        "xbrtime_malloc with different histories");
  }
  if (any_failed) {
    if (offset) ctx.shared_allocator().release(*offset);  // roll back
    return nullptr;
  }
  return ctx.arena().shared_at(*offset);
}

void xbrtime_free(void* ptr) {
  PeContext& ctx = xbrtime_ctx();
  XBGAS_CHECK(ptr != nullptr, "xbrtime_free(nullptr)");
  ctx.clock().advance(kApiCallCycles);
  const std::size_t offset = ctx.arena().shared_offset_of(ptr);
  // Free is collective in the SHMEM discipline: synchronize FIRST, so no
  // peer can still be remotely touching the block when it is released. The
  // barrier also orders the XbrSan shadow update — a lagging peer may
  // legally target this block right up to its own free() call, so the
  // shadow entry must stay live until every PE has arrived.
  xbrtime_barrier();
  Sanitizer& san = ctx.machine().sanitizer();
  if (san.enabled()) {
    san.on_free(ctx.rank(), offset,
                ctx.shared_allocator().allocation_size(offset));
  }
  ctx.shared_allocator().release(offset);
  --t_rt.live_allocations;
}

void* xbrtime_stage_alloc(std::size_t bytes) {
  PeContext& ctx = xbrtime_ctx();
  StagingState& st = t_rt.staging;
  XBGAS_CHECK(st.base != nullptr, "staging region not initialized");
  const std::size_t need = align_up(bytes == 0 ? 1 : bytes, 16);
  XBGAS_CHECK(st.top + need <= st.capacity,
              "collective staging region exhausted - raise "
              "MemoryLayout::shared_bytes");
  std::byte* p = st.base + st.top;
  st.lifo.push_back(st.top);
  st.top += need;
  ctx.clock().advance(kApiCallCycles);
  ctx.trace().record(EventKind::kStagingAlloc, -1, need);
  return p;
}

void xbrtime_stage_free(void* ptr) {
  PeContext& ctx = xbrtime_ctx();
  StagingState& st = t_rt.staging;
  XBGAS_CHECK(!st.lifo.empty(), "stage_free with no live staging block");
  const std::size_t offset = st.lifo.back();
  XBGAS_CHECK(static_cast<std::byte*>(ptr) == st.base + offset,
              "stage_free must release the most recent staging block (LIFO)");
  st.lifo.pop_back();
  st.top = offset;
  ctx.clock().advance(kApiCallCycles);
  ctx.trace().record(EventKind::kStagingFree);
}

std::size_t xbrtime_stage_avail() {
  const StagingState& st = t_rt.staging;
  return st.capacity - st.top;
}

void xbrtime_stage_reset() {
  StagingState& st = t_rt.staging;
  st.top = 0;
  st.lifo.clear();
}

std::size_t xbrtime_stage_offset() {
  PeContext& ctx = xbrtime_ctx();
  const StagingState& st = t_rt.staging;
  XBGAS_CHECK(st.base != nullptr, "staging region not initialized");
  return ctx.arena().shared_offset_of(st.base);
}

XbrtimeStats xbrtime_stats() {
  PeContext& ctx = xbrtime_ctx();
  return XbrtimeStats{
      .pe = ctx.rank(),
      .cycles = ctx.clock().cycles(),
      .l1_hit_rate = ctx.cache().l1().stats().hit_rate(),
      .l2_hit_rate = ctx.cache().l2().stats().hit_rate(),
      .tlb_hit_rate = ctx.cache().tlb().stats().hit_rate(),
      .olb_lookups = ctx.olb().stats().lookups,
      .olb_hits = ctx.olb().stats().hits,
      .olb_local_shortcuts = ctx.olb().stats().local_shortcuts,
  };
}

bool xbrtime_addr_accessible(const void* addr, int pe) {
  PeContext& ctx = xbrtime_ctx();
  if (pe < 0 || pe >= ctx.n_pes()) return false;
  return ctx.arena().in_shared(addr, 1);
}

}  // namespace xbgas
