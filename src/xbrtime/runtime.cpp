#include "xbrtime/runtime.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "xbrtime/nbi.hpp"

namespace xbgas {

namespace {

// The runtime's per-PE state (init flag, allocation count, staging stack)
// lives in PeContext::xbrtime_state(), NOT in a thread_local: PE fibers
// migrate between worker threads, so thread identity no longer implies PE
// identity. current_pe_context() resolves the calling fiber's (or, in
// threads mode, thread's) PE.

constexpr std::uint64_t kAllocFailed = std::numeric_limits<std::uint64_t>::max();

/// Cycles charged for the runtime's own bookkeeping on an API call; the
/// paper's library is "as lightweight as possible", so this is a token cost.
constexpr std::uint64_t kApiCallCycles = 10;

/// The calling PE's runtime state, or nullptr outside an SPMD region.
XbrtimeRuntimeState* rt_state() {
  PeContext* ctx = current_pe_context();
  return ctx != nullptr ? &ctx->xbrtime_state() : nullptr;
}

}  // namespace

PeContext& xbrtime_ctx() {
  PeContext* ctx = current_pe_context();
  XBGAS_CHECK(ctx != nullptr && ctx->xbrtime_state().initialized,
              "xbrtime runtime not initialized on this PE "
              "(call xbrtime_init() inside Machine::run)");
  return *ctx;
}

bool xbrtime_initialized() {
  const XbrtimeRuntimeState* st = rt_state();
  return st != nullptr && st->initialized;
}

int xbrtime_init() {
  PeContext* ctx = current_pe_context();
  XBGAS_CHECK(ctx != nullptr,
              "xbrtime_init must be called from an SPMD region");
  XbrtimeRuntimeState& st = ctx->xbrtime_state();
  XBGAS_CHECK(!st.initialized, "xbrtime_init called twice");
  st.initialized = true;
  st.live_allocations = 0;
  ctx->clock().advance(kApiCallCycles);
  xbrtime_barrier();  // init is collective

  // Carve the collective staging region out of the symmetric heap (same
  // offset on every PE because every PE allocates it first).
  const std::size_t stage_bytes =
      std::min<std::size_t>(ctx->arena().shared_size() / 4,
                            std::size_t{16} << 20);
  void* stage = xbrtime_malloc(stage_bytes);
  XBGAS_CHECK(stage != nullptr, "failed to allocate collective staging region");
  st.staging_base = static_cast<std::byte*>(stage);
  st.staging_capacity = stage_bytes;
  st.staging_top = 0;
  st.staging_lifo.clear();
  return 0;
}

void xbrtime_close() {
  PeContext& ctx = xbrtime_ctx();
  XbrtimeRuntimeState& st = ctx.xbrtime_state();
  if (!st.staging_lifo.empty()) {
    XBGAS_LOG_WARN("xbrtime_close: %zu staging blocks still live on PE %d",
                   st.staging_lifo.size(), ctx.rank());
  }
  if (st.staging_base != nullptr) {
    xbrtime_free(st.staging_base);
    st.staging_base = nullptr;
    st.staging_capacity = 0;
    st.staging_top = 0;
    st.staging_lifo.clear();
  }
  xbrtime_barrier();  // close is collective
  if (st.live_allocations != 0) {
    XBGAS_LOG_WARN("xbrtime_close: %zu symmetric allocations leaked on PE %d",
                   st.live_allocations, ctx.rank());
  }
  ctx.clock().advance(kApiCallCycles);
  st = XbrtimeRuntimeState{};
}

int xbrtime_mype() {
  return xbrtime_initialized() ? current_pe_context()->rank() : -1;
}

int xbrtime_num_pes() {
  return xbrtime_initialized() ? current_pe_context()->n_pes() : 0;
}

void xbrtime_barrier() {
  PeContext& ctx = xbrtime_ctx();
  // A barrier is a full fence: the write combiner flushes, all outstanding
  // nonblocking transfers (legacy and request-tracked) complete, and every
  // XbrSan nb zone this PE opened closes.
  detail::nb_drain_all(ctx);
  FaultInjector& fault = ctx.machine().fault_injector();
  if (fault.enabled()) fault.on_barrier_arrival(ctx.rank());  // scripted kill
  const std::uint64_t t =
      ctx.machine().world_barrier().arrive_and_wait(ctx.clock().cycles());
  ctx.clock().set(t);
}

void* xbrtime_malloc(std::size_t bytes) {
  PeContext& ctx = xbrtime_ctx();
  Machine& machine = ctx.machine();
  ctx.clock().advance(kApiCallCycles);

  const auto offset = ctx.shared_allocator().allocate(bytes);
  machine.validation_slot(ctx.rank()) = offset ? *offset : kAllocFailed;
  xbrtime_barrier();

  // Symmetry check: every PE must have produced the same offset. A mismatch
  // means the program broke the collective-allocation discipline. Every PE
  // computes the same verdict from the same slots, so either all throw or
  // none do.
  bool any_failed = false;
  bool mismatch = false;
  std::uint64_t ref = kAllocFailed;
  for (int r = 0; r < ctx.n_pes(); ++r) {
    const std::uint64_t theirs = machine.validation_slot(r);
    if (theirs == kAllocFailed) {
      any_failed = true;
    } else if (ref == kAllocFailed) {
      ref = theirs;
    } else if (theirs != ref) {
      mismatch = true;
    }
  }
  // XbrSan mirrors the allocator state (its own shadow map, under its own
  // lock) so remote-access bounds checks never race the target's allocator.
  // Registration must happen BEFORE the final barrier: the moment a peer
  // exits that barrier it may legally target this block, and it must find
  // the shadow entry already present.
  if (!mismatch && !any_failed) {
    ++ctx.xbrtime_state().live_allocations;
    Sanitizer& san = machine.sanitizer();
    if (san.enabled()) {
      san.on_alloc(ctx.rank(), *offset,
                   ctx.shared_allocator().allocation_size(*offset));
    }
  }
  xbrtime_barrier();  // slots may be rewritten by the next collective

  if (mismatch) {
    throw Error(
        "xbrtime_malloc: asymmetric allocation detected - PEs called "
        "xbrtime_malloc with different histories");
  }
  if (any_failed) {
    if (offset) ctx.shared_allocator().release(*offset);  // roll back
    return nullptr;
  }
  return ctx.arena().shared_at(*offset);
}

void xbrtime_free(void* ptr) {
  PeContext& ctx = xbrtime_ctx();
  XBGAS_CHECK(ptr != nullptr, "xbrtime_free(nullptr)");
  ctx.clock().advance(kApiCallCycles);
  const std::size_t offset = ctx.arena().shared_offset_of(ptr);
  // Free is collective in the SHMEM discipline: synchronize FIRST, so no
  // peer can still be remotely touching the block when it is released. The
  // barrier also orders the XbrSan shadow update — a lagging peer may
  // legally target this block right up to its own free() call, so the
  // shadow entry must stay live until every PE has arrived.
  xbrtime_barrier();
  Sanitizer& san = ctx.machine().sanitizer();
  if (san.enabled()) {
    san.on_free(ctx.rank(), offset,
                ctx.shared_allocator().allocation_size(offset));
  }
  ctx.shared_allocator().release(offset);
  --ctx.xbrtime_state().live_allocations;
}

void* xbrtime_stage_alloc(std::size_t bytes) {
  PeContext& ctx = xbrtime_ctx();
  XbrtimeRuntimeState& st = ctx.xbrtime_state();
  XBGAS_CHECK(st.staging_base != nullptr, "staging region not initialized");
  const std::size_t need = align_up(bytes == 0 ? 1 : bytes, 16);
  XBGAS_CHECK(st.staging_top + need <= st.staging_capacity,
              "collective staging region exhausted - raise "
              "MemoryLayout::shared_bytes");
  std::byte* p = st.staging_base + st.staging_top;
  st.staging_lifo.push_back(st.staging_top);
  st.staging_top += need;
  ctx.clock().advance(kApiCallCycles);
  ctx.trace().record(EventKind::kStagingAlloc, -1, need);
  return p;
}

void xbrtime_stage_free(void* ptr) {
  PeContext& ctx = xbrtime_ctx();
  XbrtimeRuntimeState& st = ctx.xbrtime_state();
  XBGAS_CHECK(!st.staging_lifo.empty(), "stage_free with no live staging block");
  const std::size_t offset = st.staging_lifo.back();
  XBGAS_CHECK(static_cast<std::byte*>(ptr) == st.staging_base + offset,
              "stage_free must release the most recent staging block (LIFO)");
  st.staging_lifo.pop_back();
  st.staging_top = offset;
  ctx.clock().advance(kApiCallCycles);
  ctx.trace().record(EventKind::kStagingFree);
}

std::size_t xbrtime_stage_avail() {
  const XbrtimeRuntimeState& st = xbrtime_ctx().xbrtime_state();
  return st.staging_capacity - st.staging_top;
}

void xbrtime_stage_reset() {
  XbrtimeRuntimeState& st = xbrtime_ctx().xbrtime_state();
  st.staging_top = 0;
  st.staging_lifo.clear();
}

std::size_t xbrtime_stage_offset() {
  PeContext& ctx = xbrtime_ctx();
  const XbrtimeRuntimeState& st = ctx.xbrtime_state();
  XBGAS_CHECK(st.staging_base != nullptr, "staging region not initialized");
  return ctx.arena().shared_offset_of(st.staging_base);
}

XbrtimeStats xbrtime_stats() {
  PeContext& ctx = xbrtime_ctx();
  return XbrtimeStats{
      .pe = ctx.rank(),
      .cycles = ctx.clock().cycles(),
      .l1_hit_rate = ctx.cache().l1().stats().hit_rate(),
      .l2_hit_rate = ctx.cache().l2().stats().hit_rate(),
      .tlb_hit_rate = ctx.cache().tlb().stats().hit_rate(),
      .olb_lookups = ctx.olb().stats().lookups,
      .olb_hits = ctx.olb().stats().hits,
      .olb_local_shortcuts = ctx.olb().stats().local_shortcuts,
  };
}

bool xbrtime_addr_accessible(const void* addr, int pe) {
  PeContext& ctx = xbrtime_ctx();
  if (pe < 0 || pe >= ctx.n_pes()) return false;
  return ctx.arena().in_shared(addr, 1);
}

}  // namespace xbgas
