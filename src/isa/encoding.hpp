#pragma once

// RV64I/M + xBGAS binary encodings.
//
// Standard instructions follow the RISC-V user-level ISA v2.0 formats
// (R/I/S/B/U/J). The xBGAS extension instructions are encoded in the
// RISC-V *custom* opcode space — the published xbgas-archspec repository is
// unavailable offline, so the exact opcode values are a documented
// substitution (DESIGN.md §7); the three instruction *classes* and their
// operand semantics follow paper §3.2 exactly:
//
//   custom-0 (0x0B)  base e-loads   (I-type; e-register implied by rs1)
//   custom-1 (0x2B)  base e-stores  (S-type; e-register implied by rs1)
//   custom-2 (0x5B)  raw er-loads/stores (R-type; explicit e-register)
//   custom-3 (0x7B)  address management (eaddie / eaddix)

#include <cstdint>

namespace xbgas::isa {

// Major opcode field (bits [6:0]).
enum : std::uint32_t {
  kOpLoad = 0x03,
  kOpOpImm = 0x13,
  kOpAuipc = 0x17,
  kOpOpImm32 = 0x1B,
  kOpStore = 0x23,
  kOpOp = 0x33,
  kOpLui = 0x37,
  kOpOp32 = 0x3B,
  kOpBranch = 0x63,
  kOpJalr = 0x67,
  kOpJal = 0x6F,
  kOpSystem = 0x73,
  // xBGAS custom space:
  kOpXbgasLoad = 0x0B,   // custom-0
  kOpXbgasStore = 0x2B,  // custom-1
  kOpXbgasRaw = 0x5B,    // custom-2
  kOpXbgasAddr = 0x7B,   // custom-3
};

// funct3 values for loads/stores (shared by RV64I and the xBGAS e-forms).
enum : std::uint32_t {
  kWidthB = 0b000,
  kWidthH = 0b001,
  kWidthW = 0b010,
  kWidthD = 0b011,
  kWidthBU = 0b100,
  kWidthHU = 0b101,
  kWidthWU = 0b110,
};

// funct7 values in the xBGAS raw-op space (custom-2).
enum : std::uint32_t {
  kRawFunct7Load = 0x00,
  kRawFunct7Store = 0x01,
};

// funct3 values in the xBGAS address-management space (custom-3).
enum : std::uint32_t {
  kAddrFunct3Eaddie = 0b000,  // e[rd]  <- x[rs1] + imm
  kAddrFunct3Eaddix = 0b001,  // x[rd]  <- e[rs1] + imm
};

}  // namespace xbgas::isa
