#include "isa/builder.hpp"

#include <limits>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "isa/encoder.hpp"

namespace xbgas::isa {

namespace {
std::uint8_t reg(unsigned r) {
  XBGAS_CHECK(r < 32, "register index out of range");
  return static_cast<std::uint8_t>(r);
}
}  // namespace

ProgramBuilder& ProgramBuilder::emit(Instruction inst) {
  insts_.push_back(inst);
  return *this;
}

ProgramBuilder& ProgramBuilder::emit_branch(Op op, unsigned rs1, unsigned rs2,
                                            const std::string& lbl) {
  fixups_.push_back(Fixup{insts_.size(), lbl});
  return emit({op, 0, reg(rs1), reg(rs2), 0});
}

#define XBGAS_BUILDER_RTYPE(name, op)                                        \
  ProgramBuilder& ProgramBuilder::name(unsigned rd, unsigned rs1,            \
                                       unsigned rs2) {                       \
    return emit({op, reg(rd), reg(rs1), reg(rs2), 0});                       \
  }

#define XBGAS_BUILDER_ITYPE(name, op)                                        \
  ProgramBuilder& ProgramBuilder::name(unsigned rd, unsigned rs1,            \
                                       std::int64_t imm) {                   \
    return emit({op, reg(rd), reg(rs1), 0, imm});                            \
  }

#define XBGAS_BUILDER_STYPE(name, op)                                        \
  ProgramBuilder& ProgramBuilder::name(unsigned rs2, unsigned rs1,           \
                                       std::int64_t imm) {                   \
    return emit({op, 0, reg(rs1), reg(rs2), imm});                           \
  }

XBGAS_BUILDER_ITYPE(jalr, Op::kJalr)
XBGAS_BUILDER_ITYPE(lb, Op::kLb)
XBGAS_BUILDER_ITYPE(lh, Op::kLh)
XBGAS_BUILDER_ITYPE(lw, Op::kLw)
XBGAS_BUILDER_ITYPE(ld, Op::kLd)
XBGAS_BUILDER_ITYPE(lbu, Op::kLbu)
XBGAS_BUILDER_ITYPE(lhu, Op::kLhu)
XBGAS_BUILDER_ITYPE(lwu, Op::kLwu)
XBGAS_BUILDER_STYPE(sb, Op::kSb)
XBGAS_BUILDER_STYPE(sh, Op::kSh)
XBGAS_BUILDER_STYPE(sw, Op::kSw)
XBGAS_BUILDER_STYPE(sd, Op::kSd)
XBGAS_BUILDER_ITYPE(addi, Op::kAddi)
XBGAS_BUILDER_ITYPE(slti, Op::kSlti)
XBGAS_BUILDER_ITYPE(sltiu, Op::kSltiu)
XBGAS_BUILDER_ITYPE(xori, Op::kXori)
XBGAS_BUILDER_ITYPE(ori, Op::kOri)
XBGAS_BUILDER_ITYPE(andi, Op::kAndi)
XBGAS_BUILDER_ITYPE(slli, Op::kSlli)
XBGAS_BUILDER_ITYPE(srli, Op::kSrli)
XBGAS_BUILDER_ITYPE(srai, Op::kSrai)
XBGAS_BUILDER_ITYPE(addiw, Op::kAddiw)
XBGAS_BUILDER_RTYPE(add, Op::kAdd)
XBGAS_BUILDER_RTYPE(sub, Op::kSub)
XBGAS_BUILDER_RTYPE(sll, Op::kSll)
XBGAS_BUILDER_RTYPE(slt, Op::kSlt)
XBGAS_BUILDER_RTYPE(sltu, Op::kSltu)
XBGAS_BUILDER_RTYPE(xor_, Op::kXor)
XBGAS_BUILDER_RTYPE(srl, Op::kSrl)
XBGAS_BUILDER_RTYPE(sra, Op::kSra)
XBGAS_BUILDER_RTYPE(or_, Op::kOr)
XBGAS_BUILDER_RTYPE(and_, Op::kAnd)
XBGAS_BUILDER_RTYPE(addw, Op::kAddw)
XBGAS_BUILDER_RTYPE(subw, Op::kSubw)
XBGAS_BUILDER_RTYPE(mul, Op::kMul)
XBGAS_BUILDER_RTYPE(mulhu, Op::kMulhu)
XBGAS_BUILDER_RTYPE(div, Op::kDiv)
XBGAS_BUILDER_RTYPE(divu, Op::kDivu)
XBGAS_BUILDER_RTYPE(rem, Op::kRem)
XBGAS_BUILDER_RTYPE(remu, Op::kRemu)
XBGAS_BUILDER_ITYPE(elb, Op::kElb)
XBGAS_BUILDER_ITYPE(elh, Op::kElh)
XBGAS_BUILDER_ITYPE(elw, Op::kElw)
XBGAS_BUILDER_ITYPE(eld, Op::kEld)
XBGAS_BUILDER_ITYPE(elbu, Op::kElbu)
XBGAS_BUILDER_ITYPE(elhu, Op::kElhu)
XBGAS_BUILDER_ITYPE(elwu, Op::kElwu)
XBGAS_BUILDER_STYPE(esb, Op::kEsb)
XBGAS_BUILDER_STYPE(esh, Op::kEsh)
XBGAS_BUILDER_STYPE(esw, Op::kEsw)
XBGAS_BUILDER_STYPE(esd, Op::kEsd)

#undef XBGAS_BUILDER_RTYPE
#undef XBGAS_BUILDER_ITYPE
#undef XBGAS_BUILDER_STYPE

ProgramBuilder& ProgramBuilder::lui(unsigned rd, std::int64_t imm) {
  return emit({Op::kLui, reg(rd), 0, 0, imm});
}

ProgramBuilder& ProgramBuilder::auipc(unsigned rd, std::int64_t imm) {
  return emit({Op::kAuipc, reg(rd), 0, 0, imm});
}

ProgramBuilder& ProgramBuilder::jal(unsigned rd, const std::string& lbl) {
  fixups_.push_back(Fixup{insts_.size(), lbl});
  return emit({Op::kJal, reg(rd), 0, 0, 0});
}

ProgramBuilder& ProgramBuilder::beq(unsigned rs1, unsigned rs2, const std::string& l) {
  return emit_branch(Op::kBeq, rs1, rs2, l);
}
ProgramBuilder& ProgramBuilder::bne(unsigned rs1, unsigned rs2, const std::string& l) {
  return emit_branch(Op::kBne, rs1, rs2, l);
}
ProgramBuilder& ProgramBuilder::blt(unsigned rs1, unsigned rs2, const std::string& l) {
  return emit_branch(Op::kBlt, rs1, rs2, l);
}
ProgramBuilder& ProgramBuilder::bge(unsigned rs1, unsigned rs2, const std::string& l) {
  return emit_branch(Op::kBge, rs1, rs2, l);
}
ProgramBuilder& ProgramBuilder::bltu(unsigned rs1, unsigned rs2, const std::string& l) {
  return emit_branch(Op::kBltu, rs1, rs2, l);
}
ProgramBuilder& ProgramBuilder::bgeu(unsigned rs1, unsigned rs2, const std::string& l) {
  return emit_branch(Op::kBgeu, rs1, rs2, l);
}

ProgramBuilder& ProgramBuilder::ecall() { return emit({Op::kEcall, 0, 0, 0, 0}); }
ProgramBuilder& ProgramBuilder::ebreak() { return emit({Op::kEbreak, 0, 0, 0, 0}); }

ProgramBuilder& ProgramBuilder::erld(unsigned rd, unsigned rs1, unsigned ext) {
  return emit({Op::kErld, reg(rd), reg(rs1), reg(ext), 0});
}
ProgramBuilder& ProgramBuilder::erlw(unsigned rd, unsigned rs1, unsigned ext) {
  return emit({Op::kErlw, reg(rd), reg(rs1), reg(ext), 0});
}
ProgramBuilder& ProgramBuilder::erlh(unsigned rd, unsigned rs1, unsigned ext) {
  return emit({Op::kErlh, reg(rd), reg(rs1), reg(ext), 0});
}
ProgramBuilder& ProgramBuilder::erlb(unsigned rd, unsigned rs1, unsigned ext) {
  return emit({Op::kErlb, reg(rd), reg(rs1), reg(ext), 0});
}
// Raw stores carry the e-register operand in the rd field (see encoder.cpp).
ProgramBuilder& ProgramBuilder::ersd(unsigned rs2, unsigned rs1, unsigned ext) {
  return emit({Op::kErsd, reg(ext), reg(rs1), reg(rs2), 0});
}
ProgramBuilder& ProgramBuilder::ersw(unsigned rs2, unsigned rs1, unsigned ext) {
  return emit({Op::kErsw, reg(ext), reg(rs1), reg(rs2), 0});
}
ProgramBuilder& ProgramBuilder::ersh(unsigned rs2, unsigned rs1, unsigned ext) {
  return emit({Op::kErsh, reg(ext), reg(rs1), reg(rs2), 0});
}
ProgramBuilder& ProgramBuilder::ersb(unsigned rs2, unsigned rs1, unsigned ext) {
  return emit({Op::kErsb, reg(ext), reg(rs1), reg(rs2), 0});
}

ProgramBuilder& ProgramBuilder::eaddie(unsigned e_rd, unsigned rs1, std::int64_t imm) {
  return emit({Op::kEaddie, reg(e_rd), reg(rs1), 0, imm});
}
ProgramBuilder& ProgramBuilder::eaddix(unsigned rd, unsigned e_rs1, std::int64_t imm) {
  return emit({Op::kEaddix, reg(rd), reg(e_rs1), 0, imm});
}

ProgramBuilder& ProgramBuilder::li(unsigned rd, std::int64_t value) {
  // The standard assembler expansion: addi for 12-bit, lui+addiw for 32-bit
  // (addiw's mod-2^32 wrap makes the int32 cast of `hi` correct even when
  // value - lo overflows), and the recursive shift-by-12 scheme for full
  // 64-bit constants.
  if (value >= -2048 && value <= 2047) {
    return addi(rd, 0, value);
  }
  if (value >= std::numeric_limits<std::int32_t>::min() &&
      value <= std::numeric_limits<std::int32_t>::max()) {
    const std::int64_t lo =
        sign_extend(static_cast<std::uint64_t>(value) & 0xFFF, 12);
    const auto hi = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(value) - static_cast<std::uint32_t>(lo));
    lui(rd, static_cast<std::int64_t>(hi));
    if (lo != 0) addiw(rd, rd, lo);
    return *this;
  }
  const std::int64_t lo =
      sign_extend(static_cast<std::uint64_t>(value) & 0xFFF, 12);
  const std::int64_t hi =
      static_cast<std::int64_t>(static_cast<std::uint64_t>(value) -
                                static_cast<std::uint64_t>(lo)) >> 12;
  li(rd, hi);
  slli(rd, rd, 12);
  if (lo != 0) addi(rd, rd, lo);
  return *this;
}

ProgramBuilder& ProgramBuilder::insn(const Instruction& inst) {
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::branch_insn(Op op, unsigned rs1, unsigned rs2,
                                            const std::string& lbl) {
  XBGAS_CHECK(is_branch(op), "branch_insn requires a branch op");
  return emit_branch(op, rs1, rs2, lbl);
}

ProgramBuilder& ProgramBuilder::jal_insn(unsigned rd, const std::string& lbl) {
  return jal(rd, lbl);
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  XBGAS_CHECK(!labels_.contains(name), "duplicate label: " + name);
  labels_[name] = insts_.size();
  return *this;
}

Program ProgramBuilder::build() const {
  std::vector<Instruction> insts = insts_;
  for (const auto& fix : fixups_) {
    const auto it = labels_.find(fix.label);
    XBGAS_CHECK(it != labels_.end(), "undefined label: " + fix.label);
    const auto target = static_cast<std::int64_t>(it->second);
    const auto source = static_cast<std::int64_t>(fix.index);
    insts[fix.index].imm = (target - source) * 4;
  }
  Program prog;
  prog.insts = std::move(insts);
  prog.words.reserve(prog.insts.size());
  for (const auto& inst : prog.insts) prog.words.push_back(encode(inst));
  return prog;
}

}  // namespace xbgas::isa
