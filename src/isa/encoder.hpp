#pragma once

// Instruction -> 32-bit word encoder. encode/decode round-trip exactly
// (property-tested in tests/isa/codec_test.cpp).

#include <cstdint>

#include "isa/instruction.hpp"

namespace xbgas::isa {

/// Encode one instruction. Throws xbgas::Error if a field is out of range
/// for the op's format (e.g. a 13-bit branch offset that doesn't fit, or an
/// odd branch target).
std::uint32_t encode(const Instruction& inst);

}  // namespace xbgas::isa
