#pragma once

// The extended xBGAS register file (paper Figure 1): the 32 standard RV64I
// base registers x0-x31 plus 32 extended "e" registers e0-e31. An extended
// register paired with a base register forms a 128-bit effective address:
// the e-register carries the object ID, the x-register the 64-bit address.
//
// x0 is hardwired to zero per RV64I. e-registers hold object IDs; the value
// 0 denotes the local PE (paper §3.2), so a cleared e-file makes every
// access local and the extension degrades gracefully to plain RV64I.

#include <array>
#include <cstdint>

#include "common/error.hpp"

namespace xbgas::isa {

class RegFile {
 public:
  std::uint64_t x(unsigned i) const {
    XBGAS_DCHECK(i < 32, "x register index");
    return x_[i];
  }

  void set_x(unsigned i, std::uint64_t v) {
    XBGAS_DCHECK(i < 32, "x register index");
    if (i != 0) x_[i] = v;  // x0 is hardwired to zero
  }

  std::uint64_t e(unsigned i) const {
    XBGAS_DCHECK(i < 32, "e register index");
    return e_[i];
  }

  void set_e(unsigned i, std::uint64_t v) {
    XBGAS_DCHECK(i < 32, "e register index");
    e_[i] = v;
  }

  void clear() {
    x_.fill(0);
    e_.fill(0);
  }

 private:
  std::array<std::uint64_t, 32> x_{};
  std::array<std::uint64_t, 32> e_{};
};

}  // namespace xbgas::isa
