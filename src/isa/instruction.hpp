#pragma once

// Decoded instruction representation shared by the decoder, encoder,
// program builder, and interpreter.

#include <cstdint>
#include <string>

namespace xbgas::isa {

enum class Op : std::uint8_t {
  // RV64I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLd, kLbu, kLhu, kLwu,
  kSb, kSh, kSw, kSd,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kAddiw, kSlliw, kSrliw, kSraiw,
  kAddw, kSubw, kSllw, kSrlw, kSraw,
  // RV64M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kMulw, kDivw, kDivuw, kRemw, kRemuw,
  // System
  kEcall, kEbreak,
  // xBGAS base integer e-loads/stores (implicit e-register = e[rs1 index])
  kElb, kElh, kElw, kEld, kElbu, kElhu, kElwu,
  kEsb, kEsh, kEsw, kEsd,
  // xBGAS raw integer loads/stores (explicit e-register operand, no imm)
  kErlb, kErlh, kErlw, kErld, kErlbu, kErlhu, kErlwu,
  kErsb, kErsh, kErsw, kErsd,
  // xBGAS address management
  kEaddie, kEaddix,
  kCount,
};

struct Instruction {
  Op op = Op::kEcall;
  std::uint8_t rd = 0;   ///< destination register index (x or e space per op)
  std::uint8_t rs1 = 0;  ///< first source register index
  std::uint8_t rs2 = 0;  ///< second source / ext register index for raw ops
  std::int64_t imm = 0;  ///< sign-extended immediate (0 for R-type)

  bool operator==(const Instruction&) const = default;
};

/// Mnemonic for one op (lower-case, e.g. "eld").
const char* mnemonic(Op op);

/// Disassembly, e.g. "eld x5, 16(x6)".
std::string to_string(const Instruction& inst);

/// Classification helpers used by the interpreter's cost accounting.
bool is_load(Op op);
bool is_store(Op op);
bool is_remote(Op op);  ///< any xBGAS e-form data access
bool is_branch(Op op);

/// Access width in bytes for load/store ops (1/2/4/8); throws otherwise.
unsigned access_width(Op op);

/// True for loads whose result is zero-extended (lbu/lhu/lwu & e-forms).
bool is_unsigned_load(Op op);

}  // namespace xbgas::isa
