#pragma once

// ProgramBuilder — a type-safe in-memory assembler.
//
// The paper's toolchain compiles C through the xBGAS riscv64 GNU toolchain;
// here the runtime *generates* the remote-access instruction sequences it
// needs (e.g. the unrolled eld/esd copy loops behind get/put) and hands them
// to the interpreter. Labels resolve branch/jump offsets at build() time.
//
// Register operands are plain 0..31 indices; x-space vs e-space is implied
// by the mnemonic, mirroring assembly syntax.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace xbgas::isa {

/// A built program: encoded words plus the matching decoded forms.
struct Program {
  std::vector<std::uint32_t> words;
  std::vector<Instruction> insts;

  std::size_t size() const { return words.size(); }
};

class ProgramBuilder {
 public:
  // --- RV64I ---------------------------------------------------------
  ProgramBuilder& lui(unsigned rd, std::int64_t imm);
  ProgramBuilder& auipc(unsigned rd, std::int64_t imm);
  ProgramBuilder& jal(unsigned rd, const std::string& label);
  ProgramBuilder& jalr(unsigned rd, unsigned rs1, std::int64_t imm);

  ProgramBuilder& beq(unsigned rs1, unsigned rs2, const std::string& label);
  ProgramBuilder& bne(unsigned rs1, unsigned rs2, const std::string& label);
  ProgramBuilder& blt(unsigned rs1, unsigned rs2, const std::string& label);
  ProgramBuilder& bge(unsigned rs1, unsigned rs2, const std::string& label);
  ProgramBuilder& bltu(unsigned rs1, unsigned rs2, const std::string& label);
  ProgramBuilder& bgeu(unsigned rs1, unsigned rs2, const std::string& label);

  ProgramBuilder& lb(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& lh(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& lw(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& ld(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& lbu(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& lhu(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& lwu(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& sb(unsigned rs2, unsigned rs1, std::int64_t imm);
  ProgramBuilder& sh(unsigned rs2, unsigned rs1, std::int64_t imm);
  ProgramBuilder& sw(unsigned rs2, unsigned rs1, std::int64_t imm);
  ProgramBuilder& sd(unsigned rs2, unsigned rs1, std::int64_t imm);

  ProgramBuilder& addi(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& slti(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& sltiu(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& xori(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& ori(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& andi(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& slli(unsigned rd, unsigned rs1, std::int64_t shamt);
  ProgramBuilder& srli(unsigned rd, unsigned rs1, std::int64_t shamt);
  ProgramBuilder& srai(unsigned rd, unsigned rs1, std::int64_t shamt);

  ProgramBuilder& add(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& sub(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& sll(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& slt(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& sltu(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& xor_(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& srl(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& sra(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& or_(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& and_(unsigned rd, unsigned rs1, unsigned rs2);

  ProgramBuilder& addiw(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& addw(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& subw(unsigned rd, unsigned rs1, unsigned rs2);

  // --- RV64M ---------------------------------------------------------
  ProgramBuilder& mul(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& mulhu(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& div(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& divu(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& rem(unsigned rd, unsigned rs1, unsigned rs2);
  ProgramBuilder& remu(unsigned rd, unsigned rs1, unsigned rs2);

  ProgramBuilder& ecall();
  ProgramBuilder& ebreak();

  // --- xBGAS base integer e-loads/stores (implicit e[rs1]) -----------
  ProgramBuilder& elb(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& elh(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& elw(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& eld(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& elbu(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& elhu(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& elwu(unsigned rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& esb(unsigned rs2, unsigned rs1, std::int64_t imm);
  ProgramBuilder& esh(unsigned rs2, unsigned rs1, std::int64_t imm);
  ProgramBuilder& esw(unsigned rs2, unsigned rs1, std::int64_t imm);
  ProgramBuilder& esd(unsigned rs2, unsigned rs1, std::int64_t imm);

  // --- xBGAS raw integer loads/stores (explicit e-register) ----------
  ProgramBuilder& erld(unsigned rd, unsigned rs1, unsigned ext);
  ProgramBuilder& erlw(unsigned rd, unsigned rs1, unsigned ext);
  ProgramBuilder& erlh(unsigned rd, unsigned rs1, unsigned ext);
  ProgramBuilder& erlb(unsigned rd, unsigned rs1, unsigned ext);
  ProgramBuilder& ersd(unsigned rs2, unsigned rs1, unsigned ext);
  ProgramBuilder& ersw(unsigned rs2, unsigned rs1, unsigned ext);
  ProgramBuilder& ersh(unsigned rs2, unsigned rs1, unsigned ext);
  ProgramBuilder& ersb(unsigned rs2, unsigned rs1, unsigned ext);

  // --- xBGAS address management ---------------------------------------
  ProgramBuilder& eaddie(unsigned e_rd, unsigned rs1, std::int64_t imm);
  ProgramBuilder& eaddix(unsigned rd, unsigned e_rs1, std::int64_t imm);

  // --- pseudo-instructions --------------------------------------------
  ProgramBuilder& nop() { return addi(0, 0, 0); }
  ProgramBuilder& li(unsigned rd, std::int64_t value);  ///< expands as needed
  ProgramBuilder& mv(unsigned rd, unsigned rs1) { return addi(rd, rs1, 0); }
  ProgramBuilder& j(const std::string& label) { return jal(0, label); }

  // --- generic emission (used by the text assembler) --------------------
  /// Append an already-formed instruction verbatim.
  ProgramBuilder& insn(const Instruction& inst);
  /// Append a branch whose offset resolves to `label` at build() time.
  ProgramBuilder& branch_insn(Op op, unsigned rs1, unsigned rs2,
                              const std::string& label);
  /// Append a jal whose offset resolves to `label` at build() time.
  ProgramBuilder& jal_insn(unsigned rd, const std::string& label);

  // --- labels & assembly ------------------------------------------------
  ProgramBuilder& label(const std::string& name);

  /// Resolve all labels and encode. Throws on undefined labels.
  Program build() const;

  std::size_t current_index() const { return insts_.size(); }

 private:
  ProgramBuilder& emit(Instruction inst);
  ProgramBuilder& emit_branch(Op op, unsigned rs1, unsigned rs2,
                              const std::string& label);

  struct Fixup {
    std::size_t index;
    std::string label;
  };

  std::vector<Instruction> insts_;
  std::map<std::string, std::size_t> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace xbgas::isa
