#pragma once

// Text assembler for RV64IM + xBGAS — the front half of the paper's
// toolchain substitution (DESIGN.md §1): where the authors compile C with
// the xBGAS riscv64 GNU toolchain, this repo assembles the instruction
// sequences it needs from source text (or via the typed ProgramBuilder).
//
// Syntax (one instruction, label, or comment per line):
//
//     # comments run to end of line
//     start:                       ; labels end with ':'
//       li   t0, 0xC0FFEE          ; pseudo-instructions expand
//       addi x5, x5, -1
//       ld   a0, 16(sp)            ; loads/stores use offset(base)
//       eld  x8, 0(x6)             ; xBGAS base form (e6 implied by x6)
//       erld x9, x6, e7            ; xBGAS raw form (explicit e-register)
//       eaddie e6, x7, 0
//       bne  x5, zero, start
//       ecall
//
// Registers accept numeric (x0-x31, e0-e31) and standard ABI names (zero,
// ra, sp, gp, tp, t0-t6, s0-s11/fp, a0-a7). Immediates accept decimal and
// 0x-hex, with optional leading '-'.

#include <string>
#include <string_view>

#include "isa/builder.hpp"

namespace xbgas::isa {

/// Assemble `source` into an executable Program. Throws xbgas::Error with
/// a line-numbered message on any syntax or range problem.
Program assemble(std::string_view source);

/// Disassemble a program: one "offset: word  mnemonic operands" line per
/// instruction (round-trips through assemble for label-free programs).
std::string disassemble(const Program& program);

}  // namespace xbgas::isa
