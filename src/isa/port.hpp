#pragma once

// GlobalMemoryPort — the hart's window onto the global address space.
//
// Local accesses (object ID 0) hit the PE's own memory; remote accesses
// (nonzero object ID) are translated through the OLB and serviced from the
// owning PE's memory, exactly the dispatch the paper describes for xBGAS
// remote load/store execution (§3.2). Each access returns the modeled cost
// in cycles, so the same interface carries both semantics and timing.

#include <cstdint>

namespace xbgas::isa {

struct MemAccessResult {
  std::uint64_t cycles = 0;
};

class GlobalMemoryPort {
 public:
  virtual ~GlobalMemoryPort() = default;

  /// Load `width` (1/2/4/8) bytes at `addr` within object `object_id`.
  /// The raw (zero-extended) bits land in *value.
  virtual MemAccessResult load(std::uint64_t object_id, std::uint64_t addr,
                               unsigned width, std::uint64_t* value) = 0;

  /// Store the low `width` bytes of `value` at `addr` within `object_id`.
  virtual MemAccessResult store(std::uint64_t object_id, std::uint64_t addr,
                                unsigned width, std::uint64_t value) = 0;
};

}  // namespace xbgas::isa
