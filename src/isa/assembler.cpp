#include "isa/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace xbgas::isa {

namespace {

// ---------------------------------------------------------------------------
// Operand model
// ---------------------------------------------------------------------------

enum class OperandKind { kXReg, kEReg, kImm, kSymbol, kMem };

struct Operand {
  OperandKind kind;
  unsigned reg = 0;       // kXReg / kEReg, and the base register for kMem
  std::int64_t imm = 0;   // kImm, and the offset for kMem
  std::string symbol;     // kSymbol
};

const std::map<std::string, unsigned>& abi_names() {
  static const std::map<std::string, unsigned> kAbi = [] {
    std::map<std::string, unsigned> m{
        {"zero", 0}, {"ra", 1}, {"sp", 2},  {"gp", 3},
        {"tp", 4},   {"fp", 8}, {"s0", 8},  {"s1", 9},
    };
    for (unsigned i = 0; i <= 2; ++i) m["t" + std::to_string(i)] = 5 + i;
    for (unsigned i = 3; i <= 6; ++i) m["t" + std::to_string(i)] = 28 + i - 3;
    for (unsigned i = 0; i <= 7; ++i) m["a" + std::to_string(i)] = 10 + i;
    for (unsigned i = 2; i <= 11; ++i) m["s" + std::to_string(i)] = 18 + i - 2;
    return m;
  }();
  return kAbi;
}

bool is_symbol_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool is_symbol_char(char c) { return is_symbol_start(c) || std::isdigit(static_cast<unsigned char>(c)); }

std::optional<unsigned> parse_numeric_reg(std::string_view text, char prefix) {
  if (text.size() < 2 || text.size() > 3 || text[0] != prefix) return std::nullopt;
  unsigned value = 0;
  for (char c : text.substr(1)) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  return value < 32 ? std::optional<unsigned>(value) : std::nullopt;
}

std::optional<std::int64_t> parse_number(std::string_view text) {
  if (text.empty()) return std::nullopt;
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i >= text.size()) return std::nullopt;
  int base = 10;
  if (text.size() - i > 2 && text[i] == '0' &&
      (text[i + 1] == 'x' || text[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  std::uint64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return std::nullopt;
    value = value * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(digit);
  }
  const auto signedv = static_cast<std::int64_t>(value);
  return negative ? -signedv : signedv;
}

/// Parse one operand token: register, immediate, symbol, or imm(base).
Operand parse_operand(std::string_view text, int line) {
  const auto fail = [&](const char* why) -> Operand {
    throw Error(strfmt("asm line %d: %s: '%.*s'", line, why,
                       static_cast<int>(text.size()), text.data()));
  };

  if (text.empty()) return fail("empty operand");

  // imm(base) memory reference.
  if (const auto open = text.find('('); open != std::string_view::npos) {
    if (text.back() != ')') return fail("malformed memory operand");
    const auto offset_text = text.substr(0, open);
    const auto base_text = text.substr(open + 1, text.size() - open - 2);
    const auto offset = offset_text.empty() ? std::optional<std::int64_t>(0)
                                            : parse_number(offset_text);
    if (!offset) return fail("bad memory offset");
    Operand base = parse_operand(base_text, line);
    if (base.kind != OperandKind::kXReg) return fail("memory base must be an x register");
    return Operand{.kind = OperandKind::kMem, .reg = base.reg, .imm = *offset, .symbol = {}};
  }

  if (const auto xr = parse_numeric_reg(text, 'x')) {
    return Operand{.kind = OperandKind::kXReg, .reg = *xr, .imm = 0, .symbol = {}};
  }
  if (const auto er = parse_numeric_reg(text, 'e')) {
    return Operand{.kind = OperandKind::kEReg, .reg = *er, .imm = 0, .symbol = {}};
  }
  if (const auto it = abi_names().find(std::string(text)); it != abi_names().end()) {
    return Operand{.kind = OperandKind::kXReg, .reg = it->second, .imm = 0, .symbol = {}};
  }
  if (const auto num = parse_number(text)) {
    return Operand{.kind = OperandKind::kImm, .reg = 0, .imm = *num, .symbol = {}};
  }
  if (is_symbol_start(text[0])) {
    for (char c : text) {
      if (!is_symbol_char(c)) return fail("bad symbol");
    }
    return Operand{.kind = OperandKind::kSymbol, .reg = 0, .imm = 0, .symbol = std::string(text)};
  }
  return fail("unrecognized operand");
}

// ---------------------------------------------------------------------------
// Mnemonic table: operand format per op
// ---------------------------------------------------------------------------

enum class Fmt {
  kRType,      // op rd, rs1, rs2
  kIType,      // op rd, rs1, imm      (ALU immediates and shifts)
  kLoad,       // op rd, imm(rs1)      (standard + xBGAS e-loads)
  kStore,      // op rs2, imm(rs1)     (standard + xBGAS e-stores)
  kRawLoad,    // op rd, rs1, eN
  kRawStore,   // op rs2, rs1, eN
  kBranch,     // op rs1, rs2, label|imm
  kJal,        // op rd, label|imm
  kJalr,       // op rd, imm(rs1)
  kUType,      // op rd, imm
  kEaddie,     // eaddie eN, rs1, imm
  kEaddix,     // eaddix rd, eN, imm
  kNullary,    // ecall / ebreak
};

std::optional<Fmt> fmt_of(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
    case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
    case Op::kOr: case Op::kAnd: case Op::kAddw: case Op::kSubw:
    case Op::kSllw: case Op::kSrlw: case Op::kSraw: case Op::kMul:
    case Op::kMulh: case Op::kMulhsu: case Op::kMulhu: case Op::kDiv:
    case Op::kDivu: case Op::kRem: case Op::kRemu: case Op::kMulw:
    case Op::kDivw: case Op::kDivuw: case Op::kRemw: case Op::kRemuw:
      return Fmt::kRType;
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
    case Op::kSrai: case Op::kAddiw: case Op::kSlliw: case Op::kSrliw:
    case Op::kSraiw:
      return Fmt::kIType;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
    case Op::kElb: case Op::kElh: case Op::kElw: case Op::kEld:
    case Op::kElbu: case Op::kElhu: case Op::kElwu:
      return Fmt::kLoad;
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
    case Op::kEsb: case Op::kEsh: case Op::kEsw: case Op::kEsd:
      return Fmt::kStore;
    case Op::kErlb: case Op::kErlh: case Op::kErlw: case Op::kErld:
    case Op::kErlbu: case Op::kErlhu: case Op::kErlwu:
      return Fmt::kRawLoad;
    case Op::kErsb: case Op::kErsh: case Op::kErsw: case Op::kErsd:
      return Fmt::kRawStore;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return Fmt::kBranch;
    case Op::kJal:
      return Fmt::kJal;
    case Op::kJalr:
      return Fmt::kJalr;
    case Op::kLui: case Op::kAuipc:
      return Fmt::kUType;
    case Op::kEaddie:
      return Fmt::kEaddie;
    case Op::kEaddix:
      return Fmt::kEaddix;
    case Op::kEcall: case Op::kEbreak:
      return Fmt::kNullary;
    case Op::kCount:
      return std::nullopt;
  }
  return std::nullopt;
}

const std::map<std::string, Op>& mnemonic_table() {
  static const std::map<std::string, Op> kTable = [] {
    std::map<std::string, Op> m;
    for (int i = 0; i < static_cast<int>(Op::kCount); ++i) {
      const Op op = static_cast<Op>(i);
      if (fmt_of(op)) m[mnemonic(op)] = op;
    }
    return m;
  }();
  return kTable;
}

// ---------------------------------------------------------------------------
// Line-level parsing
// ---------------------------------------------------------------------------

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split_operands(std::string_view rest) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= rest.size()) {
    auto comma = rest.find(',', start);
    if (comma == std::string_view::npos) comma = rest.size();
    const auto piece = trim(rest.substr(start, comma - start));
    if (!piece.empty()) out.push_back(piece);
    start = comma + 1;
    if (comma == rest.size()) break;
  }
  return out;
}

void expect(bool cond, int line, const char* what) {
  if (!cond) throw Error(strfmt("asm line %d: %s", line, what));
}

unsigned want_x(const Operand& op, int line) {
  expect(op.kind == OperandKind::kXReg, line, "expected an x register");
  return op.reg;
}

unsigned want_e(const Operand& op, int line) {
  expect(op.kind == OperandKind::kEReg, line, "expected an e register");
  return op.reg;
}

std::int64_t want_imm(const Operand& op, int line) {
  expect(op.kind == OperandKind::kImm, line, "expected an immediate");
  return op.imm;
}

}  // namespace

Program assemble(std::string_view source) {
  ProgramBuilder b;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    auto newline = source.find('\n', pos);
    if (newline == std::string_view::npos) newline = source.size();
    std::string_view line = source.substr(pos, newline - pos);
    pos = newline + 1;
    ++line_no;

    // Strip comments ('#' or ';') and whitespace.
    if (const auto hash = line.find_first_of("#;"); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      if (newline == source.size()) break;
      continue;
    }

    // Labels (possibly followed by an instruction on the same line).
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const auto name = trim(line.substr(0, colon));
      expect(!name.empty() && is_symbol_start(name[0]), line_no, "bad label");
      b.label(std::string(name));
      line = trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) {
      if (newline == source.size()) break;
      continue;
    }

    // Mnemonic and operands.
    auto space = line.find_first_of(" \t");
    const std::string mnem(line.substr(0, space));
    const auto ops = split_operands(
        space == std::string_view::npos ? std::string_view{} : line.substr(space));
    auto operand = [&](std::size_t i) { return parse_operand(ops[i], line_no); };

    // Pseudo-instructions first.
    if (mnem == "li") {
      expect(ops.size() == 2, line_no, "li takes rd, imm");
      b.li(want_x(operand(0), line_no), want_imm(operand(1), line_no));
    } else if (mnem == "mv") {
      expect(ops.size() == 2, line_no, "mv takes rd, rs1");
      b.mv(want_x(operand(0), line_no), want_x(operand(1), line_no));
    } else if (mnem == "nop") {
      expect(ops.empty(), line_no, "nop takes no operands");
      b.nop();
    } else if (mnem == "j") {
      expect(ops.size() == 1, line_no, "j takes a target");
      const Operand t = operand(0);
      if (t.kind == OperandKind::kSymbol) {
        b.jal_insn(0, t.symbol);
      } else {
        b.insn({Op::kJal, 0, 0, 0, want_imm(t, line_no)});
      }
    } else if (mnem == "ret") {
      expect(ops.empty(), line_no, "ret takes no operands");
      b.jalr(0, 1, 0);
    } else {
      const auto it = mnemonic_table().find(mnem);
      expect(it != mnemonic_table().end(), line_no, "unknown mnemonic");
      const Op op = it->second;
      switch (*fmt_of(op)) {
        case Fmt::kRType: {
          expect(ops.size() == 3, line_no, "R-type takes rd, rs1, rs2");
          b.insn({op, static_cast<std::uint8_t>(want_x(operand(0), line_no)),
                  static_cast<std::uint8_t>(want_x(operand(1), line_no)),
                  static_cast<std::uint8_t>(want_x(operand(2), line_no)), 0});
          break;
        }
        case Fmt::kIType: {
          expect(ops.size() == 3, line_no, "I-type takes rd, rs1, imm");
          b.insn({op, static_cast<std::uint8_t>(want_x(operand(0), line_no)),
                  static_cast<std::uint8_t>(want_x(operand(1), line_no)), 0,
                  want_imm(operand(2), line_no)});
          break;
        }
        case Fmt::kLoad: {
          expect(ops.size() == 2, line_no, "load takes rd, imm(rs1)");
          const Operand mem = operand(1);
          expect(mem.kind == OperandKind::kMem, line_no, "expected imm(base)");
          b.insn({op, static_cast<std::uint8_t>(want_x(operand(0), line_no)),
                  static_cast<std::uint8_t>(mem.reg), 0, mem.imm});
          break;
        }
        case Fmt::kStore: {
          expect(ops.size() == 2, line_no, "store takes rs2, imm(rs1)");
          const Operand mem = operand(1);
          expect(mem.kind == OperandKind::kMem, line_no, "expected imm(base)");
          b.insn({op, 0, static_cast<std::uint8_t>(mem.reg),
                  static_cast<std::uint8_t>(want_x(operand(0), line_no)),
                  mem.imm});
          break;
        }
        case Fmt::kRawLoad: {
          expect(ops.size() == 3, line_no, "raw load takes rd, rs1, eN");
          b.insn({op, static_cast<std::uint8_t>(want_x(operand(0), line_no)),
                  static_cast<std::uint8_t>(want_x(operand(1), line_no)),
                  static_cast<std::uint8_t>(want_e(operand(2), line_no)), 0});
          break;
        }
        case Fmt::kRawStore: {
          expect(ops.size() == 3, line_no, "raw store takes rs2, rs1, eN");
          // e-register index rides in the rd field (see encoder.cpp).
          b.insn({op, static_cast<std::uint8_t>(want_e(operand(2), line_no)),
                  static_cast<std::uint8_t>(want_x(operand(1), line_no)),
                  static_cast<std::uint8_t>(want_x(operand(0), line_no)), 0});
          break;
        }
        case Fmt::kBranch: {
          expect(ops.size() == 3, line_no, "branch takes rs1, rs2, target");
          const unsigned rs1 = want_x(operand(0), line_no);
          const unsigned rs2 = want_x(operand(1), line_no);
          const Operand target = operand(2);
          if (target.kind == OperandKind::kSymbol) {
            b.branch_insn(op, rs1, rs2, target.symbol);
          } else {
            b.insn({op, 0, static_cast<std::uint8_t>(rs1),
                    static_cast<std::uint8_t>(rs2),
                    want_imm(target, line_no)});
          }
          break;
        }
        case Fmt::kJal: {
          expect(ops.size() == 2, line_no, "jal takes rd, target");
          const unsigned rd = want_x(operand(0), line_no);
          const Operand target = operand(1);
          if (target.kind == OperandKind::kSymbol) {
            b.jal_insn(rd, target.symbol);
          } else {
            b.insn({Op::kJal, static_cast<std::uint8_t>(rd), 0, 0,
                    want_imm(target, line_no)});
          }
          break;
        }
        case Fmt::kJalr: {
          expect(ops.size() == 2, line_no, "jalr takes rd, imm(rs1)");
          const Operand mem = operand(1);
          expect(mem.kind == OperandKind::kMem, line_no, "expected imm(base)");
          b.insn({Op::kJalr,
                  static_cast<std::uint8_t>(want_x(operand(0), line_no)),
                  static_cast<std::uint8_t>(mem.reg), 0, mem.imm});
          break;
        }
        case Fmt::kUType: {
          expect(ops.size() == 2, line_no, "U-type takes rd, imm");
          b.insn({op, static_cast<std::uint8_t>(want_x(operand(0), line_no)),
                  0, 0, want_imm(operand(1), line_no)});
          break;
        }
        case Fmt::kEaddie: {
          expect(ops.size() == 3, line_no, "eaddie takes eN, rs1, imm");
          b.eaddie(want_e(operand(0), line_no), want_x(operand(1), line_no),
                   want_imm(operand(2), line_no));
          break;
        }
        case Fmt::kEaddix: {
          expect(ops.size() == 3, line_no, "eaddix takes rd, eN, imm");
          b.eaddix(want_x(operand(0), line_no), want_e(operand(1), line_no),
                   want_imm(operand(2), line_no));
          break;
        }
        case Fmt::kNullary: {
          expect(ops.empty(), line_no, "takes no operands");
          b.insn({op, 0, 0, 0, 0});
          break;
        }
      }
    }
    if (newline == source.size()) break;
  }
  return b.build();
}

std::string disassemble(const Program& program) {
  std::string out;
  for (std::size_t i = 0; i < program.size(); ++i) {
    out += strfmt("%4zu: %08x  %s\n", i * 4, program.words[i],
                  to_string(program.insts[i]).c_str());
  }
  return out;
}

}  // namespace xbgas::isa
