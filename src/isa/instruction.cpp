#include "isa/instruction.hpp"

#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace xbgas::isa {

const char* mnemonic(Op op) {
  switch (op) {
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLd: return "ld";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kLwu: return "lwu";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kSd: return "sd";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kAddiw: return "addiw";
    case Op::kSlliw: return "slliw";
    case Op::kSrliw: return "srliw";
    case Op::kSraiw: return "sraiw";
    case Op::kAddw: return "addw";
    case Op::kSubw: return "subw";
    case Op::kSllw: return "sllw";
    case Op::kSrlw: return "srlw";
    case Op::kSraw: return "sraw";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kMulhsu: return "mulhsu";
    case Op::kMulhu: return "mulhu";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kRem: return "rem";
    case Op::kRemu: return "remu";
    case Op::kMulw: return "mulw";
    case Op::kDivw: return "divw";
    case Op::kDivuw: return "divuw";
    case Op::kRemw: return "remw";
    case Op::kRemuw: return "remuw";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kElb: return "elb";
    case Op::kElh: return "elh";
    case Op::kElw: return "elw";
    case Op::kEld: return "eld";
    case Op::kElbu: return "elbu";
    case Op::kElhu: return "elhu";
    case Op::kElwu: return "elwu";
    case Op::kEsb: return "esb";
    case Op::kEsh: return "esh";
    case Op::kEsw: return "esw";
    case Op::kEsd: return "esd";
    case Op::kErlb: return "erlb";
    case Op::kErlh: return "erlh";
    case Op::kErlw: return "erlw";
    case Op::kErld: return "erld";
    case Op::kErlbu: return "erlbu";
    case Op::kErlhu: return "erlhu";
    case Op::kErlwu: return "erlwu";
    case Op::kErsb: return "ersb";
    case Op::kErsh: return "ersh";
    case Op::kErsw: return "ersw";
    case Op::kErsd: return "ersd";
    case Op::kEaddie: return "eaddie";
    case Op::kEaddix: return "eaddix";
    case Op::kCount: break;
  }
  return "?";
}

bool is_load(Op op) {
  switch (op) {
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
    case Op::kElb: case Op::kElh: case Op::kElw: case Op::kEld:
    case Op::kElbu: case Op::kElhu: case Op::kElwu:
    case Op::kErlb: case Op::kErlh: case Op::kErlw: case Op::kErld:
    case Op::kErlbu: case Op::kErlhu: case Op::kErlwu:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  switch (op) {
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
    case Op::kEsb: case Op::kEsh: case Op::kEsw: case Op::kEsd:
    case Op::kErsb: case Op::kErsh: case Op::kErsw: case Op::kErsd:
      return true;
    default:
      return false;
  }
}

bool is_remote(Op op) {
  switch (op) {
    case Op::kElb: case Op::kElh: case Op::kElw: case Op::kEld:
    case Op::kElbu: case Op::kElhu: case Op::kElwu:
    case Op::kEsb: case Op::kEsh: case Op::kEsw: case Op::kEsd:
    case Op::kErlb: case Op::kErlh: case Op::kErlw: case Op::kErld:
    case Op::kErlbu: case Op::kErlhu: case Op::kErlwu:
    case Op::kErsb: case Op::kErsh: case Op::kErsw: case Op::kErsd:
      return true;
    default:
      return false;
  }
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

unsigned access_width(Op op) {
  switch (op) {
    case Op::kLb: case Op::kLbu: case Op::kSb:
    case Op::kElb: case Op::kElbu: case Op::kEsb:
    case Op::kErlb: case Op::kErlbu: case Op::kErsb:
      return 1;
    case Op::kLh: case Op::kLhu: case Op::kSh:
    case Op::kElh: case Op::kElhu: case Op::kEsh:
    case Op::kErlh: case Op::kErlhu: case Op::kErsh:
      return 2;
    case Op::kLw: case Op::kLwu: case Op::kSw:
    case Op::kElw: case Op::kElwu: case Op::kEsw:
    case Op::kErlw: case Op::kErlwu: case Op::kErsw:
      return 4;
    case Op::kLd: case Op::kSd:
    case Op::kEld: case Op::kEsd:
    case Op::kErld: case Op::kErsd:
      return 8;
    default:
      throw Error(std::string("access_width: not a memory op: ") + mnemonic(op));
  }
}

bool is_unsigned_load(Op op) {
  switch (op) {
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
    case Op::kElbu: case Op::kElhu: case Op::kElwu:
    case Op::kErlbu: case Op::kErlhu: case Op::kErlwu:
      return true;
    default:
      return false;
  }
}

std::string to_string(const Instruction& inst) {
  const char* m = mnemonic(inst.op);
  const auto rd = static_cast<int>(inst.rd);
  const auto rs1 = static_cast<int>(inst.rs1);
  const auto rs2 = static_cast<int>(inst.rs2);
  const auto imm = static_cast<long long>(inst.imm);
  switch (inst.op) {
    case Op::kLui:
    case Op::kAuipc:
      return strfmt("%s x%d, %lld", m, rd, imm);
    case Op::kJal:
      return strfmt("%s x%d, %lld", m, rd, imm);
    case Op::kJalr:
      return strfmt("%s x%d, %lld(x%d)", m, rd, imm, rs1);
    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu:
      return strfmt("%s x%d, x%d, %lld", m, rs1, rs2, imm);
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
      return strfmt("%s x%d, %lld(x%d)", m, rd, imm, rs1);
    case Op::kElb: case Op::kElh: case Op::kElw: case Op::kEld:
    case Op::kElbu: case Op::kElhu: case Op::kElwu:
      return strfmt("%s x%d, %lld(x%d)", m, rd, imm, rs1);
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
    case Op::kEsb: case Op::kEsh: case Op::kEsw: case Op::kEsd:
      return strfmt("%s x%d, %lld(x%d)", m, rs2, imm, rs1);
    case Op::kErlb: case Op::kErlh: case Op::kErlw: case Op::kErld:
    case Op::kErlbu: case Op::kErlhu: case Op::kErlwu:
      return strfmt("%s x%d, x%d, e%d", m, rd, rs1, rs2);
    case Op::kErsb: case Op::kErsh: case Op::kErsw: case Op::kErsd:
      return strfmt("%s x%d, x%d, e%d", m, rs2, rs1, rd);
    case Op::kEaddie:
      return strfmt("%s e%d, x%d, %lld", m, rd, rs1, imm);
    case Op::kEaddix:
      return strfmt("%s x%d, e%d, %lld", m, rd, rs1, imm);
    case Op::kEcall:
    case Op::kEbreak:
      return m;
    default:
      break;
  }
  if (inst.imm != 0 || inst.op == Op::kAddi || inst.op == Op::kSlti ||
      inst.op == Op::kSltiu || inst.op == Op::kXori || inst.op == Op::kOri ||
      inst.op == Op::kAndi || inst.op == Op::kSlli || inst.op == Op::kSrli ||
      inst.op == Op::kSrai || inst.op == Op::kAddiw || inst.op == Op::kSlliw ||
      inst.op == Op::kSrliw || inst.op == Op::kSraiw) {
    return strfmt("%s x%d, x%d, %lld", m, rd, rs1, imm);
  }
  return strfmt("%s x%d, x%d, x%d", m, rd, rs1, rs2);
}

}  // namespace xbgas::isa
