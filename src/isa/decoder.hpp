#pragma once

// 32-bit word -> Instruction decoder for RV64I/M + xBGAS.

#include <cstdint>
#include <optional>

#include "isa/instruction.hpp"

namespace xbgas::isa {

/// Decode one instruction word. Throws xbgas::Error on an illegal encoding.
Instruction decode(std::uint32_t word);

/// Non-throwing variant for tools/fuzzing.
std::optional<Instruction> try_decode(std::uint32_t word) noexcept;

}  // namespace xbgas::isa
