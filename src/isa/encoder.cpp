#include "isa/encoder.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "isa/encoding.hpp"

namespace xbgas::isa {

namespace {

void check_reg(std::uint8_t r, const char* what) {
  XBGAS_CHECK(r < 32, strfmt("%s register index out of range: %u", what, r));
}

void check_imm_range(std::int64_t imm, unsigned bits_, const char* what) {
  const std::int64_t lo = -(std::int64_t{1} << (bits_ - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits_ - 1)) - 1;
  XBGAS_CHECK(imm >= lo && imm <= hi,
              strfmt("%s immediate %lld does not fit in %u bits", what,
                     static_cast<long long>(imm), bits_));
}

std::uint32_t u(std::int64_t v) { return static_cast<std::uint32_t>(v); }

std::uint32_t r_type(std::uint32_t opcode, std::uint32_t funct3,
                     std::uint32_t funct7, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2) {
  return opcode | (std::uint32_t{rd} << 7) | (funct3 << 12) |
         (std::uint32_t{rs1} << 15) | (std::uint32_t{rs2} << 20) |
         (funct7 << 25);
}

std::uint32_t i_type(std::uint32_t opcode, std::uint32_t funct3,
                     std::uint8_t rd, std::uint8_t rs1, std::int64_t imm) {
  check_imm_range(imm, 12, "I-type");
  return opcode | (std::uint32_t{rd} << 7) | (funct3 << 12) |
         (std::uint32_t{rs1} << 15) | ((u(imm) & 0xFFFu) << 20);
}

std::uint32_t s_type(std::uint32_t opcode, std::uint32_t funct3,
                     std::uint8_t rs1, std::uint8_t rs2, std::int64_t imm) {
  check_imm_range(imm, 12, "S-type");
  const std::uint32_t i = u(imm);
  return opcode | ((i & 0x1Fu) << 7) | (funct3 << 12) |
         (std::uint32_t{rs1} << 15) | (std::uint32_t{rs2} << 20) |
         (((i >> 5) & 0x7Fu) << 25);
}

std::uint32_t b_type(std::uint32_t opcode, std::uint32_t funct3,
                     std::uint8_t rs1, std::uint8_t rs2, std::int64_t imm) {
  check_imm_range(imm, 13, "B-type");
  XBGAS_CHECK((imm & 1) == 0, "branch offset must be even");
  const std::uint32_t i = u(imm);
  return opcode | (((i >> 11) & 1u) << 7) | (((i >> 1) & 0xFu) << 8) |
         (funct3 << 12) | (std::uint32_t{rs1} << 15) |
         (std::uint32_t{rs2} << 20) | (((i >> 5) & 0x3Fu) << 25) |
         (((i >> 12) & 1u) << 31);
}

std::uint32_t u_type(std::uint32_t opcode, std::uint8_t rd, std::int64_t imm) {
  // imm is the full 32-bit value with low 12 bits zero (as after `lui`).
  XBGAS_CHECK((imm & 0xFFF) == 0, "U-type immediate must be 4KiB-aligned");
  check_imm_range(imm >> 12, 20, "U-type");
  return opcode | (std::uint32_t{rd} << 7) | (u(imm) & 0xFFFFF000u);
}

std::uint32_t j_type(std::uint32_t opcode, std::uint8_t rd, std::int64_t imm) {
  check_imm_range(imm, 21, "J-type");
  XBGAS_CHECK((imm & 1) == 0, "jump offset must be even");
  const std::uint32_t i = u(imm);
  return opcode | (std::uint32_t{rd} << 7) | (((i >> 12) & 0xFFu) << 12) |
         (((i >> 11) & 1u) << 20) | (((i >> 1) & 0x3FFu) << 21) |
         (((i >> 20) & 1u) << 31);
}

std::uint32_t shift_i(std::uint32_t funct3, std::uint32_t funct6,
                      std::uint8_t rd, std::uint8_t rs1, std::int64_t shamt,
                      bool word_form) {
  const std::int64_t max_shamt = word_form ? 31 : 63;
  XBGAS_CHECK(shamt >= 0 && shamt <= max_shamt, "shift amount out of range");
  const std::uint32_t opcode = word_form ? kOpOpImm32 : kOpOpImm;
  return opcode | (std::uint32_t{rd} << 7) | (funct3 << 12) |
         (std::uint32_t{rs1} << 15) | ((u(shamt) & 0x3Fu) << 20) |
         (funct6 << 26);
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  check_reg(inst.rd, "rd");
  check_reg(inst.rs1, "rs1");
  check_reg(inst.rs2, "rs2");
  const auto rd = inst.rd;
  const auto rs1 = inst.rs1;
  const auto rs2 = inst.rs2;
  const auto imm = inst.imm;

  switch (inst.op) {
    case Op::kLui: return u_type(kOpLui, rd, imm);
    case Op::kAuipc: return u_type(kOpAuipc, rd, imm);
    case Op::kJal: return j_type(kOpJal, rd, imm);
    case Op::kJalr: return i_type(kOpJalr, 0b000, rd, rs1, imm);

    case Op::kBeq: return b_type(kOpBranch, 0b000, rs1, rs2, imm);
    case Op::kBne: return b_type(kOpBranch, 0b001, rs1, rs2, imm);
    case Op::kBlt: return b_type(kOpBranch, 0b100, rs1, rs2, imm);
    case Op::kBge: return b_type(kOpBranch, 0b101, rs1, rs2, imm);
    case Op::kBltu: return b_type(kOpBranch, 0b110, rs1, rs2, imm);
    case Op::kBgeu: return b_type(kOpBranch, 0b111, rs1, rs2, imm);

    case Op::kLb: return i_type(kOpLoad, kWidthB, rd, rs1, imm);
    case Op::kLh: return i_type(kOpLoad, kWidthH, rd, rs1, imm);
    case Op::kLw: return i_type(kOpLoad, kWidthW, rd, rs1, imm);
    case Op::kLd: return i_type(kOpLoad, kWidthD, rd, rs1, imm);
    case Op::kLbu: return i_type(kOpLoad, kWidthBU, rd, rs1, imm);
    case Op::kLhu: return i_type(kOpLoad, kWidthHU, rd, rs1, imm);
    case Op::kLwu: return i_type(kOpLoad, kWidthWU, rd, rs1, imm);

    case Op::kSb: return s_type(kOpStore, kWidthB, rs1, rs2, imm);
    case Op::kSh: return s_type(kOpStore, kWidthH, rs1, rs2, imm);
    case Op::kSw: return s_type(kOpStore, kWidthW, rs1, rs2, imm);
    case Op::kSd: return s_type(kOpStore, kWidthD, rs1, rs2, imm);

    case Op::kAddi: return i_type(kOpOpImm, 0b000, rd, rs1, imm);
    case Op::kSlti: return i_type(kOpOpImm, 0b010, rd, rs1, imm);
    case Op::kSltiu: return i_type(kOpOpImm, 0b011, rd, rs1, imm);
    case Op::kXori: return i_type(kOpOpImm, 0b100, rd, rs1, imm);
    case Op::kOri: return i_type(kOpOpImm, 0b110, rd, rs1, imm);
    case Op::kAndi: return i_type(kOpOpImm, 0b111, rd, rs1, imm);
    case Op::kSlli: return shift_i(0b001, 0x00, rd, rs1, imm, false);
    case Op::kSrli: return shift_i(0b101, 0x00, rd, rs1, imm, false);
    case Op::kSrai: return shift_i(0b101, 0x10, rd, rs1, imm, false);

    case Op::kAdd: return r_type(kOpOp, 0b000, 0x00, rd, rs1, rs2);
    case Op::kSub: return r_type(kOpOp, 0b000, 0x20, rd, rs1, rs2);
    case Op::kSll: return r_type(kOpOp, 0b001, 0x00, rd, rs1, rs2);
    case Op::kSlt: return r_type(kOpOp, 0b010, 0x00, rd, rs1, rs2);
    case Op::kSltu: return r_type(kOpOp, 0b011, 0x00, rd, rs1, rs2);
    case Op::kXor: return r_type(kOpOp, 0b100, 0x00, rd, rs1, rs2);
    case Op::kSrl: return r_type(kOpOp, 0b101, 0x00, rd, rs1, rs2);
    case Op::kSra: return r_type(kOpOp, 0b101, 0x20, rd, rs1, rs2);
    case Op::kOr: return r_type(kOpOp, 0b110, 0x00, rd, rs1, rs2);
    case Op::kAnd: return r_type(kOpOp, 0b111, 0x00, rd, rs1, rs2);

    case Op::kAddiw: return i_type(kOpOpImm32, 0b000, rd, rs1, imm);
    case Op::kSlliw: return shift_i(0b001, 0x00, rd, rs1, imm, true);
    case Op::kSrliw: return shift_i(0b101, 0x00, rd, rs1, imm, true);
    case Op::kSraiw: return shift_i(0b101, 0x10, rd, rs1, imm, true);

    case Op::kAddw: return r_type(kOpOp32, 0b000, 0x00, rd, rs1, rs2);
    case Op::kSubw: return r_type(kOpOp32, 0b000, 0x20, rd, rs1, rs2);
    case Op::kSllw: return r_type(kOpOp32, 0b001, 0x00, rd, rs1, rs2);
    case Op::kSrlw: return r_type(kOpOp32, 0b101, 0x00, rd, rs1, rs2);
    case Op::kSraw: return r_type(kOpOp32, 0b101, 0x20, rd, rs1, rs2);

    case Op::kMul: return r_type(kOpOp, 0b000, 0x01, rd, rs1, rs2);
    case Op::kMulh: return r_type(kOpOp, 0b001, 0x01, rd, rs1, rs2);
    case Op::kMulhsu: return r_type(kOpOp, 0b010, 0x01, rd, rs1, rs2);
    case Op::kMulhu: return r_type(kOpOp, 0b011, 0x01, rd, rs1, rs2);
    case Op::kDiv: return r_type(kOpOp, 0b100, 0x01, rd, rs1, rs2);
    case Op::kDivu: return r_type(kOpOp, 0b101, 0x01, rd, rs1, rs2);
    case Op::kRem: return r_type(kOpOp, 0b110, 0x01, rd, rs1, rs2);
    case Op::kRemu: return r_type(kOpOp, 0b111, 0x01, rd, rs1, rs2);
    case Op::kMulw: return r_type(kOpOp32, 0b000, 0x01, rd, rs1, rs2);
    case Op::kDivw: return r_type(kOpOp32, 0b100, 0x01, rd, rs1, rs2);
    case Op::kDivuw: return r_type(kOpOp32, 0b101, 0x01, rd, rs1, rs2);
    case Op::kRemw: return r_type(kOpOp32, 0b110, 0x01, rd, rs1, rs2);
    case Op::kRemuw: return r_type(kOpOp32, 0b111, 0x01, rd, rs1, rs2);

    case Op::kEcall: return kOpSystem;
    case Op::kEbreak: return kOpSystem | (1u << 20);

    case Op::kElb: return i_type(kOpXbgasLoad, kWidthB, rd, rs1, imm);
    case Op::kElh: return i_type(kOpXbgasLoad, kWidthH, rd, rs1, imm);
    case Op::kElw: return i_type(kOpXbgasLoad, kWidthW, rd, rs1, imm);
    case Op::kEld: return i_type(kOpXbgasLoad, kWidthD, rd, rs1, imm);
    case Op::kElbu: return i_type(kOpXbgasLoad, kWidthBU, rd, rs1, imm);
    case Op::kElhu: return i_type(kOpXbgasLoad, kWidthHU, rd, rs1, imm);
    case Op::kElwu: return i_type(kOpXbgasLoad, kWidthWU, rd, rs1, imm);

    case Op::kEsb: return s_type(kOpXbgasStore, kWidthB, rs1, rs2, imm);
    case Op::kEsh: return s_type(kOpXbgasStore, kWidthH, rs1, rs2, imm);
    case Op::kEsw: return s_type(kOpXbgasStore, kWidthW, rs1, rs2, imm);
    case Op::kEsd: return s_type(kOpXbgasStore, kWidthD, rs1, rs2, imm);

    // Raw ops: R-type; the e-register operand rides in the rs2 field for
    // loads and in the rd field for stores (paper: "erld rd, rs1, ext2").
    case Op::kErlb: return r_type(kOpXbgasRaw, kWidthB, kRawFunct7Load, rd, rs1, rs2);
    case Op::kErlh: return r_type(kOpXbgasRaw, kWidthH, kRawFunct7Load, rd, rs1, rs2);
    case Op::kErlw: return r_type(kOpXbgasRaw, kWidthW, kRawFunct7Load, rd, rs1, rs2);
    case Op::kErld: return r_type(kOpXbgasRaw, kWidthD, kRawFunct7Load, rd, rs1, rs2);
    case Op::kErlbu: return r_type(kOpXbgasRaw, kWidthBU, kRawFunct7Load, rd, rs1, rs2);
    case Op::kErlhu: return r_type(kOpXbgasRaw, kWidthHU, kRawFunct7Load, rd, rs1, rs2);
    case Op::kErlwu: return r_type(kOpXbgasRaw, kWidthWU, kRawFunct7Load, rd, rs1, rs2);
    case Op::kErsb: return r_type(kOpXbgasRaw, kWidthB, kRawFunct7Store, rd, rs1, rs2);
    case Op::kErsh: return r_type(kOpXbgasRaw, kWidthH, kRawFunct7Store, rd, rs1, rs2);
    case Op::kErsw: return r_type(kOpXbgasRaw, kWidthW, kRawFunct7Store, rd, rs1, rs2);
    case Op::kErsd: return r_type(kOpXbgasRaw, kWidthD, kRawFunct7Store, rd, rs1, rs2);

    case Op::kEaddie: return i_type(kOpXbgasAddr, kAddrFunct3Eaddie, rd, rs1, imm);
    case Op::kEaddix: return i_type(kOpXbgasAddr, kAddrFunct3Eaddix, rd, rs1, imm);

    case Op::kCount: break;
  }
  throw Error("encode: unsupported op");
}

}  // namespace xbgas::isa
