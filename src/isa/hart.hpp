#pragma once

// Hart — the RV64IM + xBGAS interpreter core (the repo's stand-in for the
// Spike-based simulation environment of paper §5.1).
//
// Harvard-style simplification: the program lives in its own instruction
// store (a built Program), while data addresses index the PE's arena through
// a GlobalMemoryPort. The port performs the §3.2 dispatch — e-register value
// 0 is a local access, any other object ID goes through the OLB to a peer's
// memory — and returns modeled cycles, which the hart accumulates together
// with its own per-instruction costs.

#include <cstdint>

#include "isa/builder.hpp"
#include "isa/port.hpp"
#include "isa/regfile.hpp"

namespace xbgas::isa {

struct HartConfig {
  std::uint64_t base_op_cycles = 1;
  std::uint64_t branch_taken_extra = 1;
  std::uint64_t mul_cycles = 3;
  std::uint64_t div_cycles = 20;
  /// Paper §3.2: the extension can be disabled, leaving a standard RV64I
  /// core. Executing any e-instruction while disabled is an illegal
  /// instruction.
  bool xbgas_enabled = true;
};

struct HartStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t remote_loads = 0;   ///< nonzero-object e-form loads
  std::uint64_t remote_stores = 0;  ///< nonzero-object e-form stores
  std::uint64_t branches_taken = 0;
};

class Hart {
 public:
  enum class Halt { kNone, kEcall, kEbreak, kMaxSteps };

  explicit Hart(GlobalMemoryPort& port, const HartConfig& config = HartConfig{});

  /// Install a program and reset pc to 0 (registers are preserved so callers
  /// can pass arguments in x10..x17, the RISC-V a0..a7 convention).
  void load_program(Program program);

  /// Reset pc, clear registers, clear statistics.
  void reset();

  RegFile& regs() { return regs_; }
  const RegFile& regs() const { return regs_; }

  /// Execute one instruction. Returns kNone while running.
  Halt step();

  /// Run until ecall/ebreak or the step limit.
  Halt run(std::uint64_t max_steps = 100'000'000);

  std::uint64_t pc() const { return pc_; }
  std::uint64_t cycles() const { return cycles_; }
  const HartStats& stats() const { return stats_; }
  const HartConfig& config() const { return config_; }

 private:
  Halt execute(const Instruction& inst);
  void do_load(const Instruction& inst);
  void do_store(const Instruction& inst);

  GlobalMemoryPort& port_;
  HartConfig config_;
  Program program_;
  RegFile regs_;
  std::uint64_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  HartStats stats_;
};

}  // namespace xbgas::isa
