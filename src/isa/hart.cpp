#include "isa/hart.hpp"

#include <limits>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "olb/olb.hpp"

namespace xbgas::isa {

namespace {

__extension__ using int128_t = __int128;
__extension__ using uint128_t = unsigned __int128;

std::int64_t s64(std::uint64_t v) { return static_cast<std::int64_t>(v); }
std::uint64_t u64(std::int64_t v) { return static_cast<std::uint64_t>(v); }

std::uint64_t sext32(std::uint64_t v) {
  return u64(static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

}  // namespace

Hart::Hart(GlobalMemoryPort& port, const HartConfig& config)
    : port_(port), config_(config) {}

void Hart::load_program(Program program) {
  program_ = std::move(program);
  pc_ = 0;
}

void Hart::reset() {
  pc_ = 0;
  cycles_ = 0;
  regs_.clear();
  stats_ = HartStats{};
}

Hart::Halt Hart::run(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    const Halt h = step();
    if (h != Halt::kNone) return h;
  }
  return Halt::kMaxSteps;
}

Hart::Halt Hart::step() {
  XBGAS_CHECK(pc_ % 4 == 0, "misaligned pc");
  const std::uint64_t index = pc_ / 4;
  XBGAS_CHECK(index < program_.insts.size(),
              strfmt("pc 0x%llx past end of program (%zu instructions)",
                     static_cast<unsigned long long>(pc_),
                     program_.insts.size()));
  const Instruction& inst = program_.insts[index];
  ++stats_.instructions;
  cycles_ += config_.base_op_cycles;
  return execute(inst);
}

void Hart::do_load(const Instruction& inst) {
  ++stats_.loads;
  const unsigned width = access_width(inst.op);
  std::uint64_t object_id = kLocalObjectId;
  std::uint64_t addr = 0;

  switch (inst.op) {
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
      addr = regs_.x(inst.rs1) + u64(inst.imm);
      break;
    case Op::kElb: case Op::kElh: case Op::kElw: case Op::kEld:
    case Op::kElbu: case Op::kElhu: case Op::kElwu:
      // Base-integer form: the e-register *naturally corresponding* to rs1
      // supplies the object ID (paper §3.2).
      XBGAS_CHECK(config_.xbgas_enabled, "xBGAS extension disabled");
      object_id = regs_.e(inst.rs1);
      addr = regs_.x(inst.rs1) + u64(inst.imm);
      break;
    case Op::kErlb: case Op::kErlh: case Op::kErlw: case Op::kErld:
    case Op::kErlbu: case Op::kErlhu: case Op::kErlwu:
      // Raw form: explicit e-register in the rs2 field, no immediate.
      XBGAS_CHECK(config_.xbgas_enabled, "xBGAS extension disabled");
      object_id = regs_.e(inst.rs2);
      addr = regs_.x(inst.rs1);
      break;
    default:
      throw Error("do_load: not a load");
  }

  if (object_id != kLocalObjectId) ++stats_.remote_loads;

  std::uint64_t raw = 0;
  const MemAccessResult res = port_.load(object_id, addr, width, &raw);
  cycles_ += res.cycles;

  std::uint64_t value = raw;
  if (!is_unsigned_load(inst.op)) {
    value = u64(sign_extend(raw, width * 8));
  }
  regs_.set_x(inst.rd, value);
}

void Hart::do_store(const Instruction& inst) {
  ++stats_.stores;
  const unsigned width = access_width(inst.op);
  std::uint64_t object_id = kLocalObjectId;
  std::uint64_t addr = 0;
  std::uint64_t value = 0;

  switch (inst.op) {
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
      addr = regs_.x(inst.rs1) + u64(inst.imm);
      value = regs_.x(inst.rs2);
      break;
    case Op::kEsb: case Op::kEsh: case Op::kEsw: case Op::kEsd:
      XBGAS_CHECK(config_.xbgas_enabled, "xBGAS extension disabled");
      object_id = regs_.e(inst.rs1);
      addr = regs_.x(inst.rs1) + u64(inst.imm);
      value = regs_.x(inst.rs2);
      break;
    case Op::kErsb: case Op::kErsh: case Op::kErsw: case Op::kErsd:
      // Raw store: e-register operand rides in the rd field.
      XBGAS_CHECK(config_.xbgas_enabled, "xBGAS extension disabled");
      object_id = regs_.e(inst.rd);
      addr = regs_.x(inst.rs1);
      value = regs_.x(inst.rs2);
      break;
    default:
      throw Error("do_store: not a store");
  }

  if (object_id != kLocalObjectId) ++stats_.remote_stores;

  const MemAccessResult res = port_.store(object_id, addr, width, value);
  cycles_ += res.cycles;
}

Hart::Halt Hart::execute(const Instruction& inst) {
  const auto rd = inst.rd;
  const auto rs1v = regs_.x(inst.rs1);
  const auto rs2v = regs_.x(inst.rs2);
  const auto imm = inst.imm;
  std::uint64_t next_pc = pc_ + 4;

  switch (inst.op) {
    case Op::kLui:
      regs_.set_x(rd, u64(imm));
      break;
    case Op::kAuipc:
      regs_.set_x(rd, pc_ + u64(imm));
      break;
    case Op::kJal:
      regs_.set_x(rd, pc_ + 4);
      next_pc = pc_ + u64(imm);
      cycles_ += config_.branch_taken_extra;
      break;
    case Op::kJalr:
      regs_.set_x(rd, pc_ + 4);
      next_pc = (rs1v + u64(imm)) & ~std::uint64_t{1};
      cycles_ += config_.branch_taken_extra;
      break;

    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu: {
      bool taken = false;
      switch (inst.op) {
        case Op::kBeq: taken = rs1v == rs2v; break;
        case Op::kBne: taken = rs1v != rs2v; break;
        case Op::kBlt: taken = s64(rs1v) < s64(rs2v); break;
        case Op::kBge: taken = s64(rs1v) >= s64(rs2v); break;
        case Op::kBltu: taken = rs1v < rs2v; break;
        case Op::kBgeu: taken = rs1v >= rs2v; break;
        default: break;
      }
      if (taken) {
        next_pc = pc_ + u64(imm);
        cycles_ += config_.branch_taken_extra;
        ++stats_.branches_taken;
      }
      break;
    }

    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
    case Op::kElb: case Op::kElh: case Op::kElw: case Op::kEld:
    case Op::kElbu: case Op::kElhu: case Op::kElwu:
    case Op::kErlb: case Op::kErlh: case Op::kErlw: case Op::kErld:
    case Op::kErlbu: case Op::kErlhu: case Op::kErlwu:
      do_load(inst);
      break;

    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
    case Op::kEsb: case Op::kEsh: case Op::kEsw: case Op::kEsd:
    case Op::kErsb: case Op::kErsh: case Op::kErsw: case Op::kErsd:
      do_store(inst);
      break;

    case Op::kAddi: regs_.set_x(rd, rs1v + u64(imm)); break;
    case Op::kSlti: regs_.set_x(rd, s64(rs1v) < imm ? 1 : 0); break;
    case Op::kSltiu: regs_.set_x(rd, rs1v < u64(imm) ? 1 : 0); break;
    case Op::kXori: regs_.set_x(rd, rs1v ^ u64(imm)); break;
    case Op::kOri: regs_.set_x(rd, rs1v | u64(imm)); break;
    case Op::kAndi: regs_.set_x(rd, rs1v & u64(imm)); break;
    case Op::kSlli: regs_.set_x(rd, rs1v << (imm & 63)); break;
    case Op::kSrli: regs_.set_x(rd, rs1v >> (imm & 63)); break;
    case Op::kSrai: regs_.set_x(rd, u64(s64(rs1v) >> (imm & 63))); break;

    case Op::kAdd: regs_.set_x(rd, rs1v + rs2v); break;
    case Op::kSub: regs_.set_x(rd, rs1v - rs2v); break;
    case Op::kSll: regs_.set_x(rd, rs1v << (rs2v & 63)); break;
    case Op::kSlt: regs_.set_x(rd, s64(rs1v) < s64(rs2v) ? 1 : 0); break;
    case Op::kSltu: regs_.set_x(rd, rs1v < rs2v ? 1 : 0); break;
    case Op::kXor: regs_.set_x(rd, rs1v ^ rs2v); break;
    case Op::kSrl: regs_.set_x(rd, rs1v >> (rs2v & 63)); break;
    case Op::kSra: regs_.set_x(rd, u64(s64(rs1v) >> (rs2v & 63))); break;
    case Op::kOr: regs_.set_x(rd, rs1v | rs2v); break;
    case Op::kAnd: regs_.set_x(rd, rs1v & rs2v); break;

    case Op::kAddiw: regs_.set_x(rd, sext32(rs1v + u64(imm))); break;
    case Op::kSlliw: regs_.set_x(rd, sext32(rs1v << (imm & 31))); break;
    case Op::kSrliw:
      regs_.set_x(rd, sext32(static_cast<std::uint32_t>(rs1v) >> (imm & 31)));
      break;
    case Op::kSraiw:
      regs_.set_x(
          rd, u64(static_cast<std::int64_t>(
                  static_cast<std::int32_t>(rs1v) >> (imm & 31))));
      break;

    case Op::kAddw: regs_.set_x(rd, sext32(rs1v + rs2v)); break;
    case Op::kSubw: regs_.set_x(rd, sext32(rs1v - rs2v)); break;
    case Op::kSllw: regs_.set_x(rd, sext32(rs1v << (rs2v & 31))); break;
    case Op::kSrlw:
      regs_.set_x(rd,
                  sext32(static_cast<std::uint32_t>(rs1v) >> (rs2v & 31)));
      break;
    case Op::kSraw:
      regs_.set_x(
          rd, u64(static_cast<std::int64_t>(
                  static_cast<std::int32_t>(rs1v) >> (rs2v & 31))));
      break;

    case Op::kMul:
      regs_.set_x(rd, rs1v * rs2v);
      cycles_ += config_.mul_cycles;
      break;
    case Op::kMulh:
      regs_.set_x(
          rd, u64(static_cast<std::int64_t>(
                  (static_cast<int128_t>(s64(rs1v)) * s64(rs2v)) >> 64)));
      cycles_ += config_.mul_cycles;
      break;
    case Op::kMulhsu:
      regs_.set_x(
          rd, u64(static_cast<std::int64_t>(
                  (static_cast<int128_t>(s64(rs1v)) *
                   static_cast<int128_t>(rs2v)) >> 64)));
      cycles_ += config_.mul_cycles;
      break;
    case Op::kMulhu:
      regs_.set_x(
          rd, static_cast<std::uint64_t>(
                  (static_cast<uint128_t>(rs1v) * rs2v) >> 64));
      cycles_ += config_.mul_cycles;
      break;
    case Op::kDiv:
      if (rs2v == 0) {
        regs_.set_x(rd, ~std::uint64_t{0});
      } else if (s64(rs1v) == std::numeric_limits<std::int64_t>::min() &&
                 s64(rs2v) == -1) {
        regs_.set_x(rd, rs1v);  // overflow case per spec
      } else {
        regs_.set_x(rd, u64(s64(rs1v) / s64(rs2v)));
      }
      cycles_ += config_.div_cycles;
      break;
    case Op::kDivu:
      regs_.set_x(rd, rs2v == 0 ? ~std::uint64_t{0} : rs1v / rs2v);
      cycles_ += config_.div_cycles;
      break;
    case Op::kRem:
      if (rs2v == 0) {
        regs_.set_x(rd, rs1v);
      } else if (s64(rs1v) == std::numeric_limits<std::int64_t>::min() &&
                 s64(rs2v) == -1) {
        regs_.set_x(rd, 0);
      } else {
        regs_.set_x(rd, u64(s64(rs1v) % s64(rs2v)));
      }
      cycles_ += config_.div_cycles;
      break;
    case Op::kRemu:
      regs_.set_x(rd, rs2v == 0 ? rs1v : rs1v % rs2v);
      cycles_ += config_.div_cycles;
      break;

    case Op::kMulw:
      regs_.set_x(rd, sext32(rs1v * rs2v));
      cycles_ += config_.mul_cycles;
      break;
    case Op::kDivw: {
      const auto a = static_cast<std::int32_t>(rs1v);
      const auto b = static_cast<std::int32_t>(rs2v);
      std::int32_t q;
      if (b == 0) {
        q = -1;
      } else if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
        q = a;
      } else {
        q = a / b;
      }
      regs_.set_x(rd, u64(static_cast<std::int64_t>(q)));
      cycles_ += config_.div_cycles;
      break;
    }
    case Op::kDivuw: {
      const auto a = static_cast<std::uint32_t>(rs1v);
      const auto b = static_cast<std::uint32_t>(rs2v);
      regs_.set_x(rd, sext32(b == 0 ? ~std::uint32_t{0} : a / b));
      cycles_ += config_.div_cycles;
      break;
    }
    case Op::kRemw: {
      const auto a = static_cast<std::int32_t>(rs1v);
      const auto b = static_cast<std::int32_t>(rs2v);
      std::int32_t r;
      if (b == 0) {
        r = a;
      } else if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
        r = 0;
      } else {
        r = a % b;
      }
      regs_.set_x(rd, u64(static_cast<std::int64_t>(r)));
      cycles_ += config_.div_cycles;
      break;
    }
    case Op::kRemuw: {
      const auto a = static_cast<std::uint32_t>(rs1v);
      const auto b = static_cast<std::uint32_t>(rs2v);
      regs_.set_x(rd, sext32(b == 0 ? a : a % b));
      cycles_ += config_.div_cycles;
      break;
    }

    case Op::kEcall:
      pc_ += 4;
      return Halt::kEcall;
    case Op::kEbreak:
      pc_ += 4;
      return Halt::kEbreak;

    case Op::kEaddie:
      XBGAS_CHECK(config_.xbgas_enabled, "xBGAS extension disabled");
      regs_.set_e(rd, rs1v + u64(imm));
      break;
    case Op::kEaddix:
      XBGAS_CHECK(config_.xbgas_enabled, "xBGAS extension disabled");
      regs_.set_x(rd, regs_.e(inst.rs1) + u64(imm));
      break;

    case Op::kCount:
      throw Error("execute: invalid op");
  }

  pc_ = next_pc;
  return Halt::kNone;
}

}  // namespace xbgas::isa
