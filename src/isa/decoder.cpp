#include "isa/decoder.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "isa/encoding.hpp"

namespace xbgas::isa {

namespace {

std::int64_t imm_i(std::uint32_t w) { return sign_extend(w >> 20, 12); }

std::int64_t imm_s(std::uint32_t w) {
  const std::uint32_t v = (bits(w, 25, 7) << 5) | bits(w, 7, 5);
  return sign_extend(v, 12);
}

std::int64_t imm_b(std::uint32_t w) {
  const std::uint32_t v = (bits(w, 31, 1) << 12) | (bits(w, 7, 1) << 11) |
                          (bits(w, 25, 6) << 5) | (bits(w, 8, 4) << 1);
  return sign_extend(v, 13);
}

std::int64_t imm_u(std::uint32_t w) {
  return sign_extend(w & 0xFFFFF000u, 32);
}

std::int64_t imm_j(std::uint32_t w) {
  const std::uint32_t v = (bits(w, 31, 1) << 20) | (bits(w, 12, 8) << 12) |
                          (bits(w, 20, 1) << 11) | (bits(w, 21, 10) << 1);
  return sign_extend(v, 21);
}

[[noreturn]] void illegal(std::uint32_t w) {
  throw Error(strfmt("illegal instruction word 0x%08x", w));
}

Op load_op_for_width(std::uint32_t funct3, bool xbgas, std::uint32_t w) {
  switch (funct3) {
    case kWidthB: return xbgas ? Op::kElb : Op::kLb;
    case kWidthH: return xbgas ? Op::kElh : Op::kLh;
    case kWidthW: return xbgas ? Op::kElw : Op::kLw;
    case kWidthD: return xbgas ? Op::kEld : Op::kLd;
    case kWidthBU: return xbgas ? Op::kElbu : Op::kLbu;
    case kWidthHU: return xbgas ? Op::kElhu : Op::kLhu;
    case kWidthWU: return xbgas ? Op::kElwu : Op::kLwu;
    default: illegal(w);
  }
}

Op store_op_for_width(std::uint32_t funct3, bool xbgas, std::uint32_t w) {
  switch (funct3) {
    case kWidthB: return xbgas ? Op::kEsb : Op::kSb;
    case kWidthH: return xbgas ? Op::kEsh : Op::kSh;
    case kWidthW: return xbgas ? Op::kEsw : Op::kSw;
    case kWidthD: return xbgas ? Op::kEsd : Op::kSd;
    default: illegal(w);
  }
}

Op raw_load_for_width(std::uint32_t funct3, std::uint32_t w) {
  switch (funct3) {
    case kWidthB: return Op::kErlb;
    case kWidthH: return Op::kErlh;
    case kWidthW: return Op::kErlw;
    case kWidthD: return Op::kErld;
    case kWidthBU: return Op::kErlbu;
    case kWidthHU: return Op::kErlhu;
    case kWidthWU: return Op::kErlwu;
    default: illegal(w);
  }
}

Op raw_store_for_width(std::uint32_t funct3, std::uint32_t w) {
  switch (funct3) {
    case kWidthB: return Op::kErsb;
    case kWidthH: return Op::kErsh;
    case kWidthW: return Op::kErsw;
    case kWidthD: return Op::kErsd;
    default: illegal(w);
  }
}

}  // namespace

Instruction decode(std::uint32_t w) {
  Instruction inst;
  inst.rd = static_cast<std::uint8_t>(bits(w, 7, 5));
  inst.rs1 = static_cast<std::uint8_t>(bits(w, 15, 5));
  inst.rs2 = static_cast<std::uint8_t>(bits(w, 20, 5));
  const std::uint32_t opcode = bits(w, 0, 7);
  const std::uint32_t funct3 = bits(w, 12, 3);
  const std::uint32_t funct7 = bits(w, 25, 7);

  switch (opcode) {
    case kOpLui:
      inst.op = Op::kLui;
      inst.imm = imm_u(w);
      inst.rs1 = inst.rs2 = 0;  // canonical form: U-type has no sources
      return inst;
    case kOpAuipc:
      inst.op = Op::kAuipc;
      inst.imm = imm_u(w);
      inst.rs1 = inst.rs2 = 0;
      return inst;
    case kOpJal:
      inst.op = Op::kJal;
      inst.imm = imm_j(w);
      inst.rs1 = inst.rs2 = 0;
      return inst;
    case kOpJalr:
      if (funct3 != 0) illegal(w);
      inst.op = Op::kJalr;
      inst.imm = imm_i(w);
      inst.rs2 = 0;  // canonical form: I-type has no rs2
      return inst;
    case kOpBranch: {
      inst.imm = imm_b(w);
      inst.rd = 0;  // canonical form: B-type has no rd
      switch (funct3) {
        case 0b000: inst.op = Op::kBeq; return inst;
        case 0b001: inst.op = Op::kBne; return inst;
        case 0b100: inst.op = Op::kBlt; return inst;
        case 0b101: inst.op = Op::kBge; return inst;
        case 0b110: inst.op = Op::kBltu; return inst;
        case 0b111: inst.op = Op::kBgeu; return inst;
        default: illegal(w);
      }
    }
    case kOpLoad:
      inst.op = load_op_for_width(funct3, /*xbgas=*/false, w);
      inst.imm = imm_i(w);
      inst.rs2 = 0;
      return inst;
    case kOpXbgasLoad:
      inst.op = load_op_for_width(funct3, /*xbgas=*/true, w);
      inst.imm = imm_i(w);
      inst.rs2 = 0;
      return inst;
    case kOpStore:
      inst.op = store_op_for_width(funct3, /*xbgas=*/false, w);
      inst.imm = imm_s(w);
      inst.rd = 0;  // canonical form: S-type has no rd
      return inst;
    case kOpXbgasStore:
      inst.op = store_op_for_width(funct3, /*xbgas=*/true, w);
      inst.imm = imm_s(w);
      inst.rd = 0;
      return inst;
    case kOpOpImm: {
      inst.imm = imm_i(w);
      inst.rs2 = 0;
      switch (funct3) {
        case 0b000: inst.op = Op::kAddi; return inst;
        case 0b010: inst.op = Op::kSlti; return inst;
        case 0b011: inst.op = Op::kSltiu; return inst;
        case 0b100: inst.op = Op::kXori; return inst;
        case 0b110: inst.op = Op::kOri; return inst;
        case 0b111: inst.op = Op::kAndi; return inst;
        case 0b001:
          if ((funct7 >> 1) != 0x00) illegal(w);
          inst.op = Op::kSlli;
          inst.imm = bits(w, 20, 6);
          return inst;
        case 0b101: {
          const auto funct6 = funct7 >> 1;
          if (funct6 == 0x00) inst.op = Op::kSrli;
          else if (funct6 == 0x10) inst.op = Op::kSrai;
          else illegal(w);
          inst.imm = bits(w, 20, 6);
          return inst;
        }
        default: illegal(w);
      }
    }
    case kOpOpImm32: {
      inst.imm = imm_i(w);
      inst.rs2 = 0;
      switch (funct3) {
        case 0b000: inst.op = Op::kAddiw; return inst;
        case 0b001:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kSlliw;
          inst.imm = bits(w, 20, 5);
          return inst;
        case 0b101:
          if (funct7 == 0x00) inst.op = Op::kSrliw;
          else if (funct7 == 0x20) inst.op = Op::kSraiw;
          else illegal(w);
          inst.imm = bits(w, 20, 5);
          return inst;
        default: illegal(w);
      }
    }
    case kOpOp: {
      if (funct7 == 0x01) {
        switch (funct3) {
          case 0b000: inst.op = Op::kMul; return inst;
          case 0b001: inst.op = Op::kMulh; return inst;
          case 0b010: inst.op = Op::kMulhsu; return inst;
          case 0b011: inst.op = Op::kMulhu; return inst;
          case 0b100: inst.op = Op::kDiv; return inst;
          case 0b101: inst.op = Op::kDivu; return inst;
          case 0b110: inst.op = Op::kRem; return inst;
          case 0b111: inst.op = Op::kRemu; return inst;
          default: illegal(w);
        }
      }
      switch (funct3) {
        case 0b000:
          if (funct7 == 0x00) inst.op = Op::kAdd;
          else if (funct7 == 0x20) inst.op = Op::kSub;
          else illegal(w);
          return inst;
        case 0b001:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kSll;
          return inst;
        case 0b010:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kSlt;
          return inst;
        case 0b011:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kSltu;
          return inst;
        case 0b100:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kXor;
          return inst;
        case 0b101:
          if (funct7 == 0x00) inst.op = Op::kSrl;
          else if (funct7 == 0x20) inst.op = Op::kSra;
          else illegal(w);
          return inst;
        case 0b110:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kOr;
          return inst;
        case 0b111:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kAnd;
          return inst;
        default: illegal(w);
      }
    }
    case kOpOp32: {
      if (funct7 == 0x01) {
        switch (funct3) {
          case 0b000: inst.op = Op::kMulw; return inst;
          case 0b100: inst.op = Op::kDivw; return inst;
          case 0b101: inst.op = Op::kDivuw; return inst;
          case 0b110: inst.op = Op::kRemw; return inst;
          case 0b111: inst.op = Op::kRemuw; return inst;
          default: illegal(w);
        }
      }
      switch (funct3) {
        case 0b000:
          if (funct7 == 0x00) inst.op = Op::kAddw;
          else if (funct7 == 0x20) inst.op = Op::kSubw;
          else illegal(w);
          return inst;
        case 0b001:
          if (funct7 != 0x00) illegal(w);
          inst.op = Op::kSllw;
          return inst;
        case 0b101:
          if (funct7 == 0x00) inst.op = Op::kSrlw;
          else if (funct7 == 0x20) inst.op = Op::kSraw;
          else illegal(w);
          return inst;
        default: illegal(w);
      }
    }
    case kOpSystem: {
      if (w == kOpSystem) {
        inst.op = Op::kEcall;
        inst.rd = inst.rs1 = inst.rs2 = 0;
        return inst;
      }
      if (w == (kOpSystem | (1u << 20))) {
        inst.op = Op::kEbreak;
        inst.rd = inst.rs1 = inst.rs2 = 0;
        return inst;
      }
      illegal(w);
    }
    case kOpXbgasRaw: {
      if (funct7 == kRawFunct7Load) {
        inst.op = raw_load_for_width(funct3, w);
      } else if (funct7 == kRawFunct7Store) {
        inst.op = raw_store_for_width(funct3, w);
      } else {
        illegal(w);
      }
      return inst;
    }
    case kOpXbgasAddr: {
      inst.imm = imm_i(w);
      inst.rs2 = 0;
      switch (funct3) {
        case kAddrFunct3Eaddie: inst.op = Op::kEaddie; return inst;
        case kAddrFunct3Eaddix: inst.op = Op::kEaddix; return inst;
        default: illegal(w);
      }
    }
    default:
      illegal(w);
  }
}

std::optional<Instruction> try_decode(std::uint32_t word) noexcept {
  try {
    return decode(word);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace xbgas::isa
