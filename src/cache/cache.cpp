#include "cache/cache.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace xbgas {

SetAssocCache::SetAssocCache(const CacheGeometry& geometry)
    : geometry_(geometry) {
  XBGAS_CHECK(is_pow2(geometry.line_bytes), "line size must be a power of two");
  XBGAS_CHECK(geometry.ways >= 1, "cache needs >= 1 way");
  const std::size_t sets = geometry.num_sets();
  XBGAS_CHECK(sets >= 1 && is_pow2(sets),
              "size/(ways*line) must be a power-of-two set count");
  set_mask_ = sets - 1;
  set_shift_ = floor_log2(sets);
  line_shift_ = floor_log2(geometry.line_bytes);
  ways_.resize(sets * geometry.ways);
}

bool SetAssocCache::access_line(std::uint64_t line_addr) {
  ++stats_.accesses;
  const std::size_t set = static_cast<std::size_t>(line_addr) & set_mask_;
  const std::uint64_t tag = line_addr >> set_shift_;
  Way* base = &ways_[set * geometry_.ways];

  Way* victim = base;
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++use_counter_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++stats_.misses;
  if (victim->valid) ++stats_.evictions;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++use_counter_;
  return false;
}

unsigned SetAssocCache::access(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> line_shift_;
  unsigned misses = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access_line(line)) ++misses;
  }
  return misses;
}

void SetAssocCache::flush() {
  for (auto& way : ways_) way.valid = false;
  use_counter_ = 0;
}

}  // namespace xbgas
