#pragma once

// CacheHierarchy — the per-PE local memory timing stack: TLB -> L1 -> L2 ->
// DRAM, with the paper's §5.1 geometry as the default profile. Converts a
// (virtual address, size, read/write) access into modeled cycles.

#include <cstdint>

#include "cache/cache.hpp"
#include "cache/tlb.hpp"
#include "trace/channel.hpp"

namespace xbgas {

struct CacheCosts {
  std::uint64_t l1_hit_cycles = 2;
  std::uint64_t l2_hit_cycles = 12;
  std::uint64_t dram_cycles = 150;
  std::uint64_t tlb_miss_cycles = 30;  ///< page-walk penalty
};

struct HierarchyConfig {
  CacheGeometry l1{.size_bytes = 16 * 1024, .ways = 8, .line_bytes = 64};
  CacheGeometry l2{.size_bytes = 8 * 1024 * 1024, .ways = 8, .line_bytes = 64};
  TlbGeometry tlb{.entries = 256, .ways = 4, .page_bytes = 4096};
  CacheCosts costs{};
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config = HierarchyConfig{});

  /// Model one local access of `bytes` at `addr`; returns modeled cycles.
  /// Reads and writes cost the same in this model (allocate-on-write).
  std::uint64_t access(std::uint64_t addr, std::size_t bytes);

  void flush();

  const SetAssocCache& l1() const { return l1_; }
  const SetAssocCache& l2() const { return l2_; }
  const Tlb& tlb() const { return tlb_; }
  const HierarchyConfig& config() const { return config_; }

  void reset_stats();

  /// Attach the owning PE's trace channel; each access records one
  /// kCacheAccess event (worst serviced level) plus a kTlbMiss event when
  /// any page walk was needed. Null (the default) disables.
  void set_trace(TraceChannel* trace) { trace_ = trace; }

 private:
  HierarchyConfig config_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  Tlb tlb_;
  TraceChannel* trace_ = nullptr;
};

}  // namespace xbgas
