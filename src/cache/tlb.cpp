#include "cache/tlb.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace xbgas {

Tlb::Tlb(const TlbGeometry& geometry) : geometry_(geometry) {
  XBGAS_CHECK(is_pow2(geometry.page_bytes), "page size must be a power of two");
  XBGAS_CHECK(geometry.ways >= 1 && geometry.entries % geometry.ways == 0,
              "entries must divide evenly into ways");
  const unsigned sets = geometry.num_sets();
  XBGAS_CHECK(sets >= 1 && is_pow2(sets), "set count must be a power of two");
  set_mask_ = sets - 1;
  set_shift_ = floor_log2(sets);
  page_shift_ = floor_log2(geometry.page_bytes);
  entries_.resize(static_cast<std::size_t>(sets) * geometry.ways);
}

bool Tlb::access(std::uint64_t addr) {
  ++stats_.accesses;
  const std::uint64_t vpn = addr >> page_shift_;
  const std::size_t set = static_cast<std::size_t>(vpn) & set_mask_;
  const std::uint64_t tag = vpn >> set_shift_;
  Entry* base = &entries_[set * geometry_.ways];

  Entry* victim = base;
  for (unsigned w = 0; w < geometry_.ways; ++w) {
    Entry& e = base[w];
    if (e.valid && e.vpn_tag == tag) {
      e.lru = ++use_counter_;
      ++stats_.hits;
      return true;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.lru < victim->lru) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->vpn_tag = tag;
  victim->lru = ++use_counter_;
  return false;
}

void Tlb::flush() {
  for (auto& e : entries_) e.valid = false;
  use_counter_ = 0;
}

}  // namespace xbgas
