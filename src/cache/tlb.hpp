#pragma once

// TLB timing model: 256 entries (paper §5.1), set-associative with true LRU,
// 4 KiB pages. Like the cache model it tracks tags only; the hierarchy
// charges a fixed walk penalty per miss.

#include <cstdint>
#include <vector>

namespace xbgas {

struct TlbGeometry {
  unsigned entries = 256;
  unsigned ways = 4;
  unsigned page_bytes = 4096;

  unsigned num_sets() const { return entries / ways; }
};

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class Tlb {
 public:
  explicit Tlb(const TlbGeometry& geometry);

  /// Translate one virtual address. Returns true on hit; fills on miss.
  bool access(std::uint64_t addr);

  void flush();

  const TlbGeometry& geometry() const { return geometry_; }
  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TlbStats{}; }

 private:
  struct Entry {
    std::uint64_t vpn_tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  TlbGeometry geometry_;
  std::size_t set_mask_;
  unsigned set_shift_;
  unsigned page_shift_;
  std::uint64_t use_counter_ = 0;
  std::vector<Entry> entries_;
  TlbStats stats_;
};

}  // namespace xbgas
