#include "cache/hierarchy.hpp"

namespace xbgas {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config), l1_(config.l1), l2_(config.l2), tlb_(config.tlb) {}

std::uint64_t CacheHierarchy::access(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  std::uint64_t cycles = 0;

  // One translation per page the access touches.
  std::uint64_t walked_pages = 0;
  const std::uint64_t page = config_.tlb.page_bytes;
  for (std::uint64_t a = addr & ~(page - 1); a <= addr + bytes - 1; a += page) {
    if (!tlb_.access(a)) {
      cycles += config_.costs.tlb_miss_cycles;
      ++walked_pages;
    }
  }

  // One probe per line the access touches; misses fall through L1 -> L2 ->
  // DRAM.
  std::uint64_t worst_level = 1;  // 1 = L1, 2 = L2, 3 = DRAM
  const std::uint64_t line = config_.l1.line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    if (l1_.access_line(l)) {
      cycles += config_.costs.l1_hit_cycles;
    } else if (l2_.access_line(l)) {
      cycles += config_.costs.l2_hit_cycles;
      worst_level = worst_level < 2 ? 2 : worst_level;
    } else {
      cycles += config_.costs.dram_cycles;
      worst_level = 3;
    }
  }
  if (trace_) {
    trace_->record(EventKind::kCacheAccess, -1, worst_level, bytes);
    if (walked_pages > 0) {
      trace_->record(EventKind::kTlbMiss, -1, walked_pages);
    }
  }
  return cycles;
}

void CacheHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  tlb_.flush();
}

void CacheHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
  tlb_.reset_stats();
}

}  // namespace xbgas
