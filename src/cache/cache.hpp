#pragma once

// Set-associative cache timing model with true-LRU replacement.
//
// Paper §5.1 configures each simulated RISC-V core with an 8-way 16 KB L1
// and an 8-way 8 MB L2; this model reproduces that geometry. It tracks tags
// only (no data — the arenas hold the real bytes), so an access returns
// hit/miss and the hierarchy converts that into cycles.

#include <cstdint>
#include <vector>

namespace xbgas {

struct CacheGeometry {
  std::size_t size_bytes = 16 * 1024;
  unsigned ways = 8;
  unsigned line_bytes = 64;

  std::size_t num_sets() const { return size_bytes / (ways * line_bytes); }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< misses that displaced a valid line

  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geometry);

  /// Probe one line address. Returns true on hit; on miss the line is filled
  /// (allocate-on-miss for both reads and writes).
  bool access_line(std::uint64_t line_addr);

  /// Probe a byte-range access: touches every line it spans; returns the
  /// number of missing lines.
  unsigned access(std::uint64_t addr, std::size_t bytes);

  /// Invalidate everything (e.g. between benchmark repetitions).
  void flush();

  const CacheGeometry& geometry() const { return geometry_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger == more recently used
    bool valid = false;
  };

  CacheGeometry geometry_;
  std::size_t set_mask_;
  unsigned set_shift_;
  unsigned line_shift_;
  std::uint64_t use_counter_ = 0;
  std::vector<Way> ways_;  // num_sets x ways, row-major
  CacheStats stats_;
};

}  // namespace xbgas
