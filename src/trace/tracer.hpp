#pragma once

// Tracer — machine-wide event storage: one EventRing per PE.
//
// Always compiled; whether it *records* is a runtime decision made at
// Machine construction (TraceConfig::enabled, driven by --trace-out in the
// bench binaries). When disabled, no rings are allocated and every PE's
// TraceChannel stays unbound, so the instrumented hot paths pay only a null
// check.

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/ring.hpp"

namespace xbgas {

struct TraceConfig {
  bool enabled = false;
  /// Events retained per PE (rounded up to a power of two). At 32 bytes per
  /// event the default keeps the footprint at 2 MiB per PE.
  std::size_t ring_capacity = std::size_t{1} << 16;
};

class Tracer {
 public:
  Tracer(int n_pes, const TraceConfig& config) : config_(config) {
    if (config.enabled) {
      rings_.reserve(static_cast<std::size_t>(n_pes));
      for (int r = 0; r < n_pes; ++r) {
        rings_.push_back(std::make_unique<EventRing>(config.ring_capacity));
      }
    }
    n_pes_ = n_pes;
  }

  bool enabled() const { return config_.enabled; }
  int n_pes() const { return n_pes_; }
  const TraceConfig& config() const { return config_; }

  /// The ring for one PE, or nullptr when tracing is disabled.
  EventRing* ring(int pe) {
    if (!config_.enabled) return nullptr;
    return rings_[static_cast<std::size_t>(pe)].get();
  }
  const EventRing* ring(int pe) const {
    if (!config_.enabled) return nullptr;
    return rings_[static_cast<std::size_t>(pe)].get();
  }

  std::uint64_t total_recorded() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->recorded();
    return n;
  }

  std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->dropped();
    return n;
  }

  /// Discard all recorded events (between benchmark repetitions).
  void clear() {
    for (auto& r : rings_) r->clear();
  }

 private:
  TraceConfig config_;
  int n_pes_ = 0;
  std::vector<std::unique_ptr<EventRing>> rings_;
};

}  // namespace xbgas
