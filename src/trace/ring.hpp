#pragma once

// EventRing — one PE's lock-free trace buffer.
//
// Single-writer (the owning PE thread), bounded, wrapping: when full, the
// oldest events are overwritten and counted as dropped rather than blocking
// or allocating on the hot path. Readers (exporters, tests) normally run
// after Machine::run has joined the PE threads, when the ring is quiescent;
// a concurrent snapshot is safe in the sense that it never crashes and the
// recorded/dropped counters are exact, but a slot being overwritten during
// the copy may yield a mix of the old and new events' words. Slots are
// stored as relaxed atomic words so that concurrent access is defined
// behavior (and TSan-clean) without adding anything to the hot path —
// relaxed stores compile to plain moves.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "trace/event.hpp"

namespace xbgas {

class EventRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2) so the slot
  /// index is a mask, not a division.
  explicit EventRing(std::size_t capacity)
      : buf_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(buf_.size() - 1) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::size_t capacity() const { return buf_.size(); }

  /// Append one event. Owner-thread only; never allocates, never blocks.
  void push(const TraceEvent& e) {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    Slot& slot = buf_[static_cast<std::size_t>(n) & mask_];
    std::uint64_t words[kSlotWords] = {};
    std::memcpy(words, &e, sizeof(e));
    for (std::size_t w = 0; w < kSlotWords; ++w) {
      slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    count_.store(n + 1, std::memory_order_release);
  }

  /// Total events ever pushed (including overwritten ones).
  std::uint64_t recorded() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Events currently held.
  std::uint64_t stored() const {
    const std::uint64_t n = recorded();
    return n < buf_.size() ? n : buf_.size();
  }

  /// Events lost to wraparound.
  std::uint64_t dropped() const { return recorded() - stored(); }

  /// Copy the held events oldest-first.
  std::vector<TraceEvent> snapshot() const {
    const std::uint64_t n = recorded();
    const std::uint64_t held = n < buf_.size() ? n : buf_.size();
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(held));
    for (std::uint64_t i = n - held; i < n; ++i) {
      const Slot& slot = buf_[static_cast<std::size_t>(i) & mask_];
      std::uint64_t words[kSlotWords];
      for (std::size_t w = 0; w < kSlotWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      TraceEvent e;
      std::memcpy(&e, words, sizeof(e));
      out.push_back(e);
    }
    return out;
  }

  /// Discard everything (between benchmark repetitions; no writers active).
  void clear() { count_.store(0, std::memory_order_release); }

 private:
  static constexpr std::size_t kSlotWords =
      (sizeof(TraceEvent) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);
  static_assert(std::is_trivially_copyable_v<TraceEvent>);

  struct Slot {
    std::atomic<std::uint64_t> words[kSlotWords];
  };

  static std::size_t next_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::vector<Slot> buf_;
  std::size_t mask_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace xbgas
