#include "trace/export_chrome.hpp"

#include <cstdio>
#include <vector>

#include "common/strfmt.hpp"

namespace xbgas {

namespace {

void append_common(std::string& out, const char* name, const char* ph, int tid,
                   std::uint64_t ts) {
  out += strfmt("{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":0,\"tid\":%d,"
                "\"ts\":%llu",
                name, ph, tid, static_cast<unsigned long long>(ts));
}

void append_args(std::string& out, const TraceEvent& e) {
  out += strfmt(",\"args\":{\"a\":%llu,\"b\":%llu",
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b));
  if (e.target_pe >= 0) {
    out += strfmt(",\"target_pe\":%d", e.target_pe);
  }
  out += "}";
}

void append_instant(std::string& out, int tid, const TraceEvent& e) {
  append_common(out, event_kind_name(e.kind), "i", tid, e.cycles);
  out += ",\"s\":\"t\"";
  append_args(out, e);
  out += "},\n";
}

void append_span(std::string& out, int tid, const TraceEvent& begin,
                 const TraceEvent& end) {
  append_common(out, span_name(begin.kind), "X", tid, begin.cycles);
  out += strfmt(",\"dur\":%llu",
                static_cast<unsigned long long>(end.cycles - begin.cycles));
  append_args(out, begin);
  out += "},\n";
}

void append_pe_track(std::string& out, int pe, const EventRing& ring) {
  // Thread-name metadata so the track reads "PE n" in the viewer.
  out += strfmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%d,\"args\":{\"name\":\"PE %d\"}},\n",
                pe, pe);

  // Begin/end kinds nest properly within one PE (a stage wraps its RMA ops
  // and the trailing barrier), so a stack matches them. Anything the ring
  // wrap orphaned (an end without its begin, or a begin never closed)
  // degrades to an instant rather than being dropped.
  std::vector<TraceEvent> open;
  for (const TraceEvent& e : ring.snapshot()) {
    if (is_begin_kind(e.kind)) {
      open.push_back(e);
    } else if (is_end_kind(e.kind)) {
      if (!open.empty() && end_kind_for(open.back().kind) == e.kind) {
        append_span(out, pe, open.back(), e);
        open.pop_back();
      } else {
        append_instant(out, pe, e);
      }
    } else {
      append_instant(out, pe, e);
    }
  }
  for (const TraceEvent& e : open) append_instant(out, pe, e);
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::string out;
  out += "{\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"xbgas machine\"}},\n";
  for (int pe = 0; pe < tracer.n_pes(); ++pe) {
    if (const EventRing* ring = tracer.ring(pe)) {
      append_pe_track(out, pe, *ring);
    }
  }
  // The viewer tolerates a trailing comma inside traceEvents, but strict
  // JSON parsers do not; close the array with a final metadata event.
  out += "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"sort_index\":0}}\n";
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json(tracer);
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return n == doc.size();
}

}  // namespace xbgas
