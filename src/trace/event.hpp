#pragma once

// Typed trace events — the vocabulary of the observability layer.
//
// Every event is a fixed-size POD stamped with the issuing PE's simulated
// clock, so a trace is a deterministic record of *modeled* time, not host
// time. Begin/end kinds come in pairs (issue/complete, enter/exit,
// begin/end); the exporters match them into duration spans, everything else
// renders as an instant. The payload fields `a`/`b` are kind-specific (see
// the table in docs/OBSERVABILITY.md).

#include <cstdint>

namespace xbgas {

enum class EventKind : std::uint8_t {
  // Remote memory access (paper §3.3). a = payload bytes, target_pe set.
  kRmaPutIssue,
  kRmaPutComplete,
  kRmaGetIssue,
  kRmaGetComplete,
  // Remote atomic (instant). a = operand bytes, target_pe set.
  kAmo,
  // Barrier rendezvous (paper §4.2). a = BarrierAlgorithm as int,
  // b = modeled exchange rounds.
  kBarrierEnter,
  kBarrierExit,
  // Binomial-tree collective stage (paper §4.3-§4.6, Algorithms 1-4).
  // a = 0-based stage index, b = current tree mask.
  kStageBegin,
  kStageEnd,
  // OLB translation outcome (paper §3.2). a = object ID.
  kOlbHit,
  kOlbMiss,
  kOlbLocal,
  // Local memory access through the cache model (paper §5.1 geometry).
  // a = level that serviced the slowest line (1 = L1, 2 = L2, 3 = DRAM),
  // b = access bytes.
  kCacheAccess,
  // TLB page-walk penalty. a = number of pages walked in this access.
  kTlbMiss,
  // Collective staging allocator (LIFO scratch, runtime §3.3). a = bytes.
  kStagingAlloc,
  kStagingFree,
  // Fault injection + resilience (src/fault). An injected fault landing on
  // this PE: a = FaultSite as int, b = attempt number within the transfer.
  kFaultInject,
  // A remote transfer being re-tried after a transient fault.
  // a = attempt number, b = backoff cycles charged.
  kRmaRetry,
  // Barrier watchdog fired on this PE. a = participants that arrived,
  // b = expected participants.
  kBarrierTimeout,
  // Collective algorithm dispatch (src/collectives/policy.hpp).
  // a = (CollKind << 8) | chosen CollAlgo, b = payload bytes.
  kCollDispatch,
  // XbrSan finding (src/san). a = SanViolationKind as int, b = offending
  // shared-segment byte offset; target_pe = the PE whose memory is involved.
  kSanViolation,
  // Survivor-recovery protocol step (docs/RESILIENCE.md). a = RecoveryOp as
  // int, b = op-specific payload: roster size for agree/shrink, snapshot
  // bytes for checkpoint/restore, 0 for revoke.
  kRecovery,
  // Serving-layer request lifecycle (src/serving, docs/SERVING.md).
  // a = ServingOp as int, b = op-specific payload (key for request ops,
  // push count for rebalance); target_pe = the shard owner involved, or -1.
  kServing,
  // Write-combiner flush (src/xbrtime/wc.hpp): buffered small puts to one
  // target leaving as a single batched transfer. a = payload bytes,
  // b = coalesced put count; target_pe = the destination shard.
  kWcFlush,
  // Unreachable-peer escalation (src/xbrtime/transport.hpp): this PE's
  // retries exhausted against a link scripted down, so the transfer failure
  // became a PeUnreachableError. a/b = the dead link's endpoints (a < b);
  // target_pe = the unreachable peer.
  kLinkFault,
};

inline constexpr int kEventKindCount =
    static_cast<int>(EventKind::kLinkFault) + 1;

/// Which recovery-protocol step a kRecovery event records (payload `a`).
enum class RecoveryOp : std::uint8_t {
  kAgree = 0,
  kShrink,
  kRevoke,
  kCheckpoint,
  kRestore,
};

constexpr const char* recovery_op_name(RecoveryOp op) {
  switch (op) {
    case RecoveryOp::kAgree: return "agree";
    case RecoveryOp::kShrink: return "shrink";
    case RecoveryOp::kRevoke: return "revoke";
    case RecoveryOp::kCheckpoint: return "checkpoint";
    case RecoveryOp::kRestore: return "restore";
  }
  return "unknown";
}

/// Which serving-layer step a kServing event records (payload `a`).
enum class ServingOp : std::uint8_t {
  kRetry = 0,      ///< an attempt timed out or threw; going again
  kHedge,          ///< slow primary read; duplicate issued to the replica
  kRedirect,       ///< request served by the replica, not the primary
  kReplay,         ///< suspect write re-applied after failover
  kFail,           ///< request failed (deadline or retries exhausted)
  kFailoverBegin,  ///< death detected; entering the recovery state machine
  kFailoverEnd,    ///< serving resumed on the shrunken team
  kRebalance,      ///< orphaned keys re-homed (b = keys pushed by this PE)
};

constexpr const char* serving_op_name(ServingOp op) {
  switch (op) {
    case ServingOp::kRetry: return "retry";
    case ServingOp::kHedge: return "hedge";
    case ServingOp::kRedirect: return "redirect";
    case ServingOp::kReplay: return "replay";
    case ServingOp::kFail: return "fail";
    case ServingOp::kFailoverBegin: return "failover_begin";
    case ServingOp::kFailoverEnd: return "failover_end";
    case ServingOp::kRebalance: return "rebalance";
  }
  return "unknown";
}

/// Stable short name for exporters and dumps.
constexpr const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kRmaPutIssue: return "rma_put_issue";
    case EventKind::kRmaPutComplete: return "rma_put_complete";
    case EventKind::kRmaGetIssue: return "rma_get_issue";
    case EventKind::kRmaGetComplete: return "rma_get_complete";
    case EventKind::kAmo: return "amo";
    case EventKind::kBarrierEnter: return "barrier_enter";
    case EventKind::kBarrierExit: return "barrier_exit";
    case EventKind::kStageBegin: return "stage_begin";
    case EventKind::kStageEnd: return "stage_end";
    case EventKind::kOlbHit: return "olb_hit";
    case EventKind::kOlbMiss: return "olb_miss";
    case EventKind::kOlbLocal: return "olb_local";
    case EventKind::kCacheAccess: return "cache_access";
    case EventKind::kTlbMiss: return "tlb_miss";
    case EventKind::kStagingAlloc: return "staging_alloc";
    case EventKind::kStagingFree: return "staging_free";
    case EventKind::kFaultInject: return "fault_inject";
    case EventKind::kRmaRetry: return "rma_retry";
    case EventKind::kBarrierTimeout: return "barrier_timeout";
    case EventKind::kCollDispatch: return "coll_dispatch";
    case EventKind::kSanViolation: return "san_violation";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kServing: return "serving";
    case EventKind::kWcFlush: return "wc_flush";
    case EventKind::kLinkFault: return "link_fault";
  }
  return "unknown";
}

/// True for kinds that open a span closed by `end_kind_for`.
constexpr bool is_begin_kind(EventKind k) {
  return k == EventKind::kRmaPutIssue || k == EventKind::kRmaGetIssue ||
         k == EventKind::kBarrierEnter || k == EventKind::kStageBegin;
}

/// The closing kind for a begin kind (undefined for non-begin kinds).
constexpr EventKind end_kind_for(EventKind k) {
  switch (k) {
    case EventKind::kRmaPutIssue: return EventKind::kRmaPutComplete;
    case EventKind::kRmaGetIssue: return EventKind::kRmaGetComplete;
    case EventKind::kBarrierEnter: return EventKind::kBarrierExit;
    case EventKind::kStageBegin: return EventKind::kStageEnd;
    default: return k;
  }
}

constexpr bool is_end_kind(EventKind k) {
  return k == EventKind::kRmaPutComplete || k == EventKind::kRmaGetComplete ||
         k == EventKind::kBarrierExit || k == EventKind::kStageEnd;
}

/// Span display name for a begin/end pair (exporter track labels).
constexpr const char* span_name(EventKind begin) {
  switch (begin) {
    case EventKind::kRmaPutIssue: return "rma_put";
    case EventKind::kRmaGetIssue: return "rma_get";
    case EventKind::kBarrierEnter: return "barrier";
    case EventKind::kStageBegin: return "stage";
    default: return event_kind_name(begin);
  }
}

struct TraceEvent {
  std::uint64_t cycles = 0;    ///< SimClock timestamp at record time
  std::uint64_t a = 0;         ///< kind-specific payload (see EventKind)
  std::uint64_t b = 0;         ///< kind-specific payload (see EventKind)
  EventKind kind = EventKind::kRmaPutIssue;
  std::int32_t target_pe = -1; ///< peer PE for RMA/AMO kinds, else -1
};

}  // namespace xbgas
