#pragma once

// collect_counters — populate a CounterRegistry from a quiescent Machine.
//
// Header-only on purpose: the trace library sits *below* machine in the link
// order (OLB and cache link against it), so the one function that reads the
// whole Machine lives here and compiles into whichever higher layer calls it
// (benchlib, tests, user code). Call after Machine::run has returned; the
// per-PE structures are single-owner and must be quiescent.
//
// Counter semantics are documented in docs/OBSERVABILITY.md; the invariant
// tests/trace/counters_test.cpp locks down is that every value equals the
// sum (or max, for cycles) of the raw per-PE stat fields it aggregates.

#include "machine/machine.hpp"
#include "trace/counters.hpp"

namespace xbgas {

inline CounterRegistry collect_counters(const Machine& machine) {
  CounterRegistry reg;
  reg.set("machine.pes", static_cast<std::uint64_t>(machine.n_pes()));
  reg.set("cycles.max", machine.max_cycles());

  for (int r = 0; r < machine.n_pes(); ++r) {
    const PeContext& pe = machine.pe(r);

    const OlbStats& olb = pe.olb().stats();
    reg.add("olb.lookups", olb.lookups);
    reg.add("olb.hits", olb.hits);
    reg.add("olb.misses", olb.misses);
    reg.add("olb.local_shortcuts", olb.local_shortcuts);

    const CacheStats& l1 = pe.cache().l1().stats();
    reg.add("cache.l1.accesses", l1.accesses);
    reg.add("cache.l1.hits", l1.hits);
    reg.add("cache.l1.misses", l1.misses);
    reg.add("cache.l1.evictions", l1.evictions);

    const CacheStats& l2 = pe.cache().l2().stats();
    reg.add("cache.l2.accesses", l2.accesses);
    reg.add("cache.l2.hits", l2.hits);
    reg.add("cache.l2.misses", l2.misses);
    reg.add("cache.l2.evictions", l2.evictions);

    const TlbStats& tlb = pe.cache().tlb().stats();
    reg.add("cache.tlb.accesses", tlb.accesses);
    reg.add("cache.tlb.hits", tlb.hits);
    reg.add("cache.tlb.misses", tlb.misses);
  }

  const NetTotals net = machine.network().totals();
  reg.set("net.messages", net.messages);
  reg.set("net.bytes", net.bytes);
  reg.set("net.puts", net.puts);
  reg.set("net.gets", net.gets);
  reg.set("net.hops", net.hops);
  reg.set("net.phases", net.phases);
  reg.set("net.stall_cycles", net.stall_cycles);
  reg.set("net.phase_bytes_open", machine.network().phase_bytes());

  const LinkFaults& links = machine.network().link_faults();
  reg.set("net.link.down_observed", links.down_observed());
  reg.set("net.link.degraded_observed", links.degraded_observed());
  reg.set("net.link.healed", links.heals());

  const Tracer& tracer = machine.tracer();
  reg.set("trace.enabled", tracer.enabled() ? 1 : 0);
  reg.set("trace.recorded", tracer.total_recorded());
  reg.set("trace.dropped", tracer.total_dropped());

  const FaultCounters& fault = machine.fault_injector().counters();
  const auto ld = [](const std::atomic<std::uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  reg.set("fault.injected.rma_drop", ld(fault.rma_drops));
  reg.set("fault.injected.rma_delay", ld(fault.rma_delays));
  reg.set("fault.injected.bitflip", ld(fault.rma_bitflips));
  reg.set("fault.injected.olb_fault", ld(fault.olb_faults));
  reg.set("fault.injected.kills", ld(fault.kills));
  reg.set("fault.injected.amo_drop", ld(fault.amo_drops));
  reg.set("fault.injected.amo_delay", ld(fault.amo_delays));
  reg.set("fault.injected.link_down", ld(fault.link_down_drops));
  reg.set("fault.injected.link_degraded", ld(fault.link_degraded));
  reg.set("fault.injected.unreachable", ld(fault.pe_unreachable));
  reg.set("rma.retries", ld(fault.rma_retries));
  reg.set("amo.retries", ld(fault.amo_retries));
  reg.set("rma.checksum_failures", ld(fault.checksum_failures));
  reg.set("barrier.timeouts", ld(fault.barrier_timeouts));
  reg.set("machine.pes_alive", static_cast<std::uint64_t>(machine.n_alive()));
  reg.set("machine.pes_failed",
          static_cast<std::uint64_t>(machine.n_pes() - machine.n_alive()));

  const RecoveryCounters& rc = machine.recovery().counters();
  reg.set("recovery.epoch", machine.recovery().epoch());
  reg.set("recovery.agreements", ld(rc.agreements));
  reg.set("recovery.shrinks", ld(rc.shrinks));
  reg.set("recovery.revokes", ld(rc.revokes));
  reg.set("recovery.checkpoints", ld(rc.checkpoints));
  reg.set("recovery.restores", ld(rc.restores));
  reg.set("recovery.checkpointed_bytes", ld(rc.checkpointed_bytes));
  reg.set("recovery.restored_bytes", ld(rc.restored_bytes));
  reg.set("recovery.orphaned_bytes", ld(rc.orphaned_bytes));

  const SchedStats ss = machine.sched_stats();
  reg.set("sched.regions", ss.regions);
  reg.set("sched.fibers", ss.fibers);
  reg.set("sched.workers", ss.workers);
  reg.set("sched.switches", ss.switches);
  reg.set("sched.yields_waiting", ss.yields_waiting);
  reg.set("sched.injected_yields", ss.injected_yields);
  reg.set("sched.naps", ss.naps);

  const Sanitizer& san = machine.sanitizer();
  const Sanitizer::Counters sc = san.counters();
  reg.set("san.enabled", san.enabled() ? 1 : 0);
  reg.set("san.bounds_checks", sc.bounds_checks);
  reg.set("san.ledger_records", sc.ledger_records);
  reg.set("san.ledger_dropped", sc.ledger_dropped);
  reg.set("san.epochs", sc.epochs);
  reg.set("san.nb_tracked", sc.nb_tracked);
  reg.set("san.violations", sc.violations);
  return reg;
}

}  // namespace xbgas
