#include "trace/export_csv.hpp"

#include <cstdio>

#include "common/strfmt.hpp"

namespace xbgas {

std::string csv_trace(const Tracer& tracer) {
  std::string out = "pe,cycles,event,target_pe,a,b\n";
  for (int pe = 0; pe < tracer.n_pes(); ++pe) {
    const EventRing* ring = tracer.ring(pe);
    if (ring == nullptr) continue;
    for (const TraceEvent& e : ring->snapshot()) {
      out += strfmt("%d,%llu,%s,%d,%llu,%llu\n", pe,
                    static_cast<unsigned long long>(e.cycles),
                    event_kind_name(e.kind), e.target_pe,
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
    }
  }
  return out;
}

bool write_csv_trace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = csv_trace(tracer);
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return n == doc.size();
}

}  // namespace xbgas
