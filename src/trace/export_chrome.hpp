#pragma once

// Chrome trace_event exporter.
//
// Produces the JSON Array-of-events object format understood by
// chrome://tracing and Perfetto: one process ("xbgas machine"), one named
// thread track per PE (tid == PE rank), with begin/end event pairs matched
// into complete ("X") spans and everything else emitted as instants ("i").
// Timestamps are simulated cycles written into the `ts` microsecond field
// verbatim, so 1 displayed microsecond == 1 modeled cycle.

#include <string>

#include "trace/tracer.hpp"

namespace xbgas {

/// Render the whole trace as a Chrome trace_event JSON document.
std::string chrome_trace_json(const Tracer& tracer);

/// Write chrome_trace_json() to `path`. Returns false (and writes nothing
/// else) if the file cannot be opened.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace xbgas
