#pragma once

// Flat CSV exporter — one row per event, for spreadsheet/pandas analysis
// when the Chrome viewer is more than the job needs.
//
//   pe,cycles,event,target_pe,a,b

#include <string>

#include "trace/tracer.hpp"

namespace xbgas {

/// Render the whole trace as CSV (header row included).
std::string csv_trace(const Tracer& tracer);

/// Write csv_trace() to `path`. Returns false if the file cannot be opened.
bool write_csv_trace(const Tracer& tracer, const std::string& path);

}  // namespace xbgas
