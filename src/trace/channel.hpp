#pragma once

// TraceChannel — the per-PE recording handle the instrumented layers hold.
//
// Disabled-path cost contract (DESIGN.md §Observability): when tracing is
// off the channel is unbound (ring_ == nullptr) and every record call is a
// single predictable branch — no allocation, no lock, no atomic RMW, no
// syscall. Low-level subsystems (OLB, cache hierarchy) hold a TraceChannel*
// that is null by default, adding one more null check on their paths.

#include <cstdint>

#include "net/sim_clock.hpp"
#include "trace/ring.hpp"

namespace xbgas {

class TraceChannel {
 public:
  TraceChannel() = default;

  TraceChannel(const TraceChannel&) = delete;
  TraceChannel& operator=(const TraceChannel&) = delete;

  /// Attach the channel to a ring and the owning PE's clock. Passing a null
  /// ring leaves the channel disabled.
  void bind(EventRing* ring, const SimClock* clock) {
    ring_ = ring;
    clock_ = clock;
  }

  bool enabled() const { return ring_ != nullptr; }

  /// Record one event stamped with the PE's current simulated clock.
  void record(EventKind kind, std::int32_t target_pe = -1, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    if (ring_ == nullptr) return;
    ring_->push(TraceEvent{.cycles = clock_->cycles(),
                           .a = a,
                           .b = b,
                           .kind = kind,
                           .target_pe = target_pe});
  }

  /// Record one event with an explicit timestamp — for completion events
  /// whose modeled finish time is known before the clock is advanced to it
  /// (non-blocking RMA, barrier exit).
  void record_at(std::uint64_t cycles, EventKind kind,
                 std::int32_t target_pe = -1, std::uint64_t a = 0,
                 std::uint64_t b = 0) {
    if (ring_ == nullptr) return;
    ring_->push(TraceEvent{.cycles = cycles,
                           .a = a,
                           .b = b,
                           .kind = kind,
                           .target_pe = target_pe});
  }

 private:
  EventRing* ring_ = nullptr;
  const SimClock* clock_ = nullptr;
};

}  // namespace xbgas
