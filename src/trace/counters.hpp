#pragma once

// CounterRegistry — the machine-wide counter surface.
//
// One queryable, ordered name -> value store that aggregates the statistics
// already kept by the substrates (OLB hit/miss, per-level cache and TLB
// stats, network traffic/phase/stall totals) plus the tracer's own
// bookkeeping. Populated by collect_counters() (trace/collect.hpp) at
// teardown; dumped as an ASCII table or flat JSON object via --counters.
//
// Names are dotted paths ("olb.hits", "cache.l1.misses", "net.stall_cycles")
// so the flat JSON stays grep- and jq-friendly.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace xbgas {

class CounterRegistry {
 public:
  /// Set (or overwrite) one counter. Insertion order is preserved for dumps.
  void set(const std::string& name, std::uint64_t value);

  /// Add to a counter, creating it at zero if absent.
  void add(const std::string& name, std::uint64_t delta);

  /// Query one counter by exact name.
  std::optional<std::uint64_t> get(const std::string& name) const;

  /// All counter names, in insertion order.
  std::vector<std::string> names() const;

  std::size_t size() const { return entries_.size(); }

  /// Two-column ASCII table.
  void dump_table(std::FILE* out) const;

  /// Flat JSON object, one key per counter.
  void dump_json(std::FILE* out) const;
  std::string json() const;

 private:
  struct Entry {
    std::string name;
    std::uint64_t value = 0;
  };
  Entry* find(const std::string& name);
  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

namespace trace {
/// The ISSUE/docs-facing alias: the observability layer's counter registry.
using Counters = CounterRegistry;
}  // namespace trace

}  // namespace xbgas
