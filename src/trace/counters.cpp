#include "trace/counters.hpp"

#include <algorithm>

namespace xbgas {

CounterRegistry::Entry* CounterRegistry::find(const std::string& name) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.name == name; });
  return it == entries_.end() ? nullptr : &*it;
}

const CounterRegistry::Entry* CounterRegistry::find(
    const std::string& name) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.name == name; });
  return it == entries_.end() ? nullptr : &*it;
}

void CounterRegistry::set(const std::string& name, std::uint64_t value) {
  if (Entry* e = find(name)) {
    e->value = value;
    return;
  }
  entries_.push_back(Entry{name, value});
}

void CounterRegistry::add(const std::string& name, std::uint64_t delta) {
  if (Entry* e = find(name)) {
    e->value += delta;
    return;
  }
  entries_.push_back(Entry{name, delta});
}

std::optional<std::uint64_t> CounterRegistry::get(
    const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) return std::nullopt;
  return e->value;
}

std::vector<std::string> CounterRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

void CounterRegistry::dump_table(std::FILE* out) const {
  std::size_t width = 7;  // "counter"
  for (const auto& e : entries_) width = std::max(width, e.name.size());
  std::fprintf(out, "%-*s  value\n", static_cast<int>(width), "counter");
  for (const auto& e : entries_) {
    std::fprintf(out, "%-*s  %llu\n", static_cast<int>(width), e.name.c_str(),
                 static_cast<unsigned long long>(e.value));
  }
}

std::string CounterRegistry::json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + e.name + "\": " + std::to_string(e.value);
  }
  out += "\n}\n";
  return out;
}

void CounterRegistry::dump_json(std::FILE* out) const {
  const std::string s = json();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace xbgas
