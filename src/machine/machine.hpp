#pragma once

// Machine — the simulated multi-PE system (the repo's stand-in for the
// paper's 12-core Spike environment, §5.1).
//
// A Machine owns N processing elements. Each PE has its own memory arena
// (Figure 2 layout), OLB pre-populated with every peer's shared segment,
// cache hierarchy, simulated clock, and deterministic allocators. run()
// executes an SPMD body with one cooperative *fiber* per PE multiplexed
// over a bounded worker pool (FiberScheduler, docs/SCALING.md) — so a
// 1024-PE machine runs on a handful of host cores; MachineConfig::sched
// selects the legacy 1:1 thread-per-PE model instead. A failing PE poisons
// every registered barrier (so no waiter deadlocks) and run() throws a
// composite SpmdRegionError listing every failed rank and cause — unless
// the survivors *recovered* (acknowledged every death via xbr_team_shrink's
// agreement), in which case run() returns normally. The machine also owns
// the FaultInjector, the RecoveryState (failure roster + agreement board),
// the CheckpointStore (src/fault), and a post-mortem health view
// (alive / failed_ranks / failures / health).

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include <map>
#include <string>

#include "cache/hierarchy.hpp"
#include "fault/checkpoint_store.hpp"
#include "fault/config.hpp"
#include "fault/errors.hpp"
#include "fault/injector.hpp"
#include "fault/roster.hpp"
#include "machine/barrier.hpp"
#include "machine/fiber.hpp"
#include "machine/port.hpp"
#include "memory/arena.hpp"
#include "memory/freelist_allocator.hpp"
#include "net/fabric.hpp"
#include "net/sim_clock.hpp"
#include "olb/olb.hpp"
#include "san/config.hpp"
#include "san/sanitizer.hpp"
#include "trace/channel.hpp"
#include "trace/tracer.hpp"

namespace xbgas {

class Machine;

struct MachineConfig {
  int n_pes = 4;
  MemoryLayout layout{};
  std::string topology_name = "flat";
  NetCostParams net{};
  HierarchyConfig cache{};
  TraceConfig trace{};
  FaultConfig fault{};
  SanConfig san{};
  /// Collective algorithm selection: "auto" (cost model), "tree", "ring",
  /// or "hier". Parsed by the collectives policy layer
  /// (src/collectives/policy.hpp); kept as a string here so the machine
  /// substrate stays independent of the collectives layer.
  std::string coll_algo = "auto";
  /// Path to a persisted auto-tuner table (empty: none). Entries override
  /// the analytic cost model per (kind, n_pes, bytes); misses fall back.
  std::string coll_tune_table;
  /// Forced k-nomial radix for tree/hierarchical schedules (0: default 2,
  /// or the tuned radix when a tune-table entry matches).
  int coll_radix = 0;
  /// PE execution model: fiber N:M scheduling (default) or legacy
  /// thread-per-PE (docs/SCALING.md).
  SchedConfig sched{};
};

/// One explicit-handle nonblocking transfer in flight (src/xbrtime/nbi.hpp):
/// the request id handed to the caller and the simulated completion horizon.
struct NbInflight {
  std::uint64_t id = 0;
  std::uint64_t done_at = 0;
};

/// One small put buffered by the write combiner awaiting a flush
/// (src/xbrtime/wc.hpp): where it lands in the target's symmetric segment
/// and where its payload sits in the per-target staging buffer.
struct WcEntry {
  std::size_t offset = 0;  ///< shared-segment byte offset of the dest
  std::size_t pos = 0;     ///< byte position in WcTargetBuffer::payload
  std::size_t bytes = 0;
};

struct WcTargetBuffer {
  std::vector<WcEntry> entries;
  std::vector<std::byte> payload;
};

/// Per-PE write-combining state. Disabled by default; xbr_wc_enable sizes
/// `targets` to n_pes and flushes are triggered at capacity, fences,
/// xbr_wait/xbr_quiet, and barriers.
struct WriteCombinerState {
  bool enabled = false;
  std::size_t threshold_bytes = 0;   ///< puts at most this large coalesce
  std::size_t capacity_entries = 0;  ///< per-target flush trigger
  std::vector<WcTargetBuffer> targets;
};

/// Per-PE xbrtime runtime state (src/xbrtime/runtime.cpp). This used to be
/// thread-local — correct when each PE owned a thread, wrong once fibers
/// migrate between workers — so it lives in the PeContext now. Machine::run
/// resets it at region start, preserving the old fresh-thread-per-region
/// semantics.
struct XbrtimeRuntimeState {
  bool initialized = false;
  std::size_t live_allocations = 0;
  /// Collective staging stack carved from the symmetric heap.
  std::byte* staging_base = nullptr;
  std::size_t staging_capacity = 0;
  std::size_t staging_top = 0;
  std::vector<std::size_t> staging_lifo;  ///< live block offsets, stack order
  /// Explicit-handle nonblocking requests (xbr_put_nbi / xbr_get_nbi) still
  /// in flight; ids are never reused within a region. Entries whose horizon
  /// has been absorbed by xbr_wait_req/xbr_test are removed; xbr_quiet,
  /// xbr_wait and barriers clear the whole table.
  std::uint64_t nbi_next_id = 1;
  std::vector<NbInflight> nbi_inflight;
  /// Write-combining buffers (xbr_put_wc; src/xbrtime/wc.hpp).
  WriteCombinerState wc;
};

/// Per-PE state handed to the SPMD body. Owned by the Machine; never
/// outlives it.
class PeContext {
 public:
  PeContext(Machine& machine, int rank, const MachineConfig& config);

  PeContext(const PeContext&) = delete;
  PeContext& operator=(const PeContext&) = delete;

  int rank() const { return rank_; }
  int n_pes() const;

  Machine& machine() { return machine_; }
  MemoryArena& arena() { return arena_; }
  const MemoryArena& arena() const { return arena_; }
  ObjectLookasideBuffer& olb() { return olb_; }
  const ObjectLookasideBuffer& olb() const { return olb_; }
  CacheHierarchy& cache() { return cache_; }
  const CacheHierarchy& cache() const { return cache_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  FreeListAllocator& shared_allocator() { return shared_alloc_; }
  FreeListAllocator& private_allocator() { return private_alloc_; }
  MachinePort& port() { return port_; }
  TraceChannel& trace() { return trace_; }

  /// Attach this PE to a trace ring (null disables) and propagate the
  /// channel to the OLB and cache models. Called by the Machine constructor.
  void bind_trace(EventRing* ring);

  /// Resolve a *symmetric* local pointer to the equivalent location in a
  /// peer PE's shared segment. Throws if `local` is not in this PE's shared
  /// segment or `pe` is out of range. pe == rank() returns `local` itself
  /// (the §3.2 object-ID-0 shortcut).
  std::byte* resolve_symmetric(int pe, void* local);
  const std::byte* resolve_symmetric(int pe, const void* local) const;

  /// Completion horizon for non-blocking RMA: the simulated time by which
  /// all outstanding non-blocking transfers issued by this PE are complete.
  /// xbr_wait / xbrtime_barrier advance the clock to this value.
  std::uint64_t pending_completion() const { return pending_completion_; }
  void note_pending(std::uint64_t done_at) {
    if (done_at > pending_completion_) pending_completion_ = done_at;
  }
  void clear_pending() { pending_completion_ = 0; }

  /// xbrtime runtime state for this PE; only the xbrtime layer mutates it.
  XbrtimeRuntimeState& xbrtime_state() { return xbrtime_state_; }

 private:
  std::uint64_t pending_completion_ = 0;
  XbrtimeRuntimeState xbrtime_state_;
  Machine& machine_;
  int rank_;
  MemoryArena arena_;
  ObjectLookasideBuffer olb_;
  CacheHierarchy cache_;
  SimClock clock_;
  FreeListAllocator shared_alloc_;
  FreeListAllocator private_alloc_;
  MachinePort port_;
  TraceChannel trace_;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int n_pes() const { return config_.n_pes; }
  const MachineConfig& config() const { return config_; }

  /// Process-unique, never-reused id for this Machine instance. Cross-machine
  /// registries (e.g. the survivor-team rendezvous in collectives/shrink.cpp)
  /// key on this instead of the address, which the allocator may reuse.
  std::uint64_t instance_id() const { return instance_id_; }

  NetworkModel& network() { return network_; }
  const NetworkModel& network() const { return network_; }

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  FaultInjector& fault_injector() { return fault_injector_; }
  const FaultInjector& fault_injector() const { return fault_injector_; }

  Sanitizer& sanitizer() { return sanitizer_; }
  const Sanitizer& sanitizer() const { return sanitizer_; }

  ClockSyncBarrier& world_barrier() { return *world_barrier_; }

  PeContext& pe(int rank);
  const PeContext& pe(int rank) const;

  /// Survivor-recovery state: failure roster, acknowledgment epochs, and
  /// the xbr_agree board (docs/RESILIENCE.md).
  RecoveryState& recovery() { return recovery_; }
  const RecoveryState& recovery() const { return recovery_; }

  /// Snapshot store behind xbr_checkpoint / xbr_restore.
  CheckpointStore& checkpoint_store() { return checkpoint_store_; }
  const CheckpointStore& checkpoint_store() const { return checkpoint_store_; }

  /// Execute `body` as an SPMD region: one fiber per PE over the bounded
  /// worker pool (or one thread per PE when config().sched.mode ==
  /// "threads"). A failing PE is marked failed in the recovery roster
  /// immediately and poisons every registered barrier with its rank and
  /// cause, so surviving waiters unwind with PeFailedError instead of
  /// deadlocking. Every PE's failure is collected and recorded (primaries
  /// first, then by rank — the order is deterministic and golden-testable).
  /// If at least one PE completed normally and every failure is a primary
  /// that survivors acknowledged via agreement (xbr_team_shrink), the
  /// region *recovered*: run returns normally. Otherwise run throws
  /// SpmdRegionError listing each failed rank and cause — no exception is
  /// silently dropped. During the region, current_pe_context() returns the
  /// calling fiber's (or thread's) PE context.
  void run(const std::function<void(PeContext&)>& body);

  /// Scheduler statistics accumulated across every run() on this machine
  /// (sched.* counters, docs/OBSERVABILITY.md).
  SchedStats sched_stats() const;

  // -- Post-mortem health view (docs/RESILIENCE.md) --

  /// True while `rank` has never *primarily* failed in any SPMD region on
  /// this machine. Survivors that unwound with PeFailedError because some
  /// other PE died (secondary failures) stay alive.
  bool alive(int rank) const;

  /// Number of PEs that are still alive.
  int n_alive() const;

  /// World ranks that have primarily failed, ascending.
  std::vector<int> failed_ranks() const;

  /// Every recorded PE failure (rank, cause, primary/secondary), primaries
  /// first then by rank within each region, accumulated across regions.
  std::vector<PeFailure> failures() const;

  /// Deterministic multi-line health summary: alive count, failed ranks,
  /// each recorded failure, and the recovery epoch — the post-mortem view
  /// docs/RESILIENCE.md documents and the golden tests pin down.
  std::string health() const;

  /// Max simulated clock across PEs (the "makespan" of the last region).
  std::uint64_t max_cycles() const;

  /// Reset all PE clocks and cache/OLB/net statistics (between benchmark
  /// repetitions).
  void reset_time_and_stats();

  /// One plain 64-bit slot per PE, used by collective runtime operations
  /// (e.g. symmetric-heap symmetry verification) to exchange small values.
  /// Synchronization is the caller's job (writes and reads must be separated
  /// by barriers).
  std::uint64_t& validation_slot(int rank);

  /// Any barrier registered here is poisoned when a PE fails, so waiters on
  /// team/subset barriers unwind instead of deadlocking. The world barrier
  /// is registered automatically.
  void register_barrier(ClockSyncBarrier* barrier);
  void unregister_barrier(ClockSyncBarrier* barrier);

  /// Unreachable-peer escalation (PeUnreachableError): poison the barriers
  /// registered *right now* with `suspect` as the failed rank, so every
  /// blocked PE unwinds with PeFailedError naming the suspect and enters
  /// the same agree -> shrink recovery a death triggers. Unlike a death,
  /// the suspect is alive: it is NOT marked failed and no birth-poison is
  /// recorded — barriers created after the quorum decision are born clean,
  /// and the quorum rule (not this call) decides who is evicted.
  void poison_barriers_for_unreachable(int suspect, const std::string& cause);

 private:
  /// Poison every registered barrier with the failing rank and cause; while
  /// the failure is unacknowledged its poison info also applies to
  /// late-registered barriers (see register_barrier).
  void poison_all_barriers(int failed_rank, const std::string& cause);

  MachineConfig config_;
  NetworkModel network_;
  Tracer tracer_;
  FaultInjector fault_injector_;
  Sanitizer sanitizer_;
  RecoveryState recovery_;
  CheckpointStore checkpoint_store_;
  std::uint64_t instance_id_;
  std::vector<std::unique_ptr<PeContext>> pes_;
  std::unique_ptr<ClockSyncBarrier> world_barrier_;
  std::vector<std::uint64_t> validation_slots_;

  std::mutex barriers_mutex_;
  std::vector<ClockSyncBarrier*> barriers_;
  /// Poison info per primarily-failed rank; register_barrier applies the
  /// smallest *unacknowledged* one to barriers born after a death, and
  /// stops once agreement acknowledges the failure (shrunken-team barriers
  /// of a later recovery epoch are born clean).
  std::map<int, BarrierPoison> primary_poisons_;

  mutable std::mutex health_mutex_;
  std::vector<PeFailure> failures_;   ///< accumulated failure records
  SchedStats sched_stats_;            ///< accumulated, under health_mutex_
};

/// The PE context bound to the calling fiber (fiber mode) or thread
/// (threads mode) inside Machine::run, or nullptr outside any SPMD region.
PeContext* current_pe_context();

}  // namespace xbgas
