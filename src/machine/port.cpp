#include "machine/port.hpp"

#include <cstring>

#include "cache/hierarchy.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "memory/arena.hpp"
#include "net/fabric.hpp"
#include "olb/olb.hpp"

namespace xbgas {

MachinePort::MachinePort(int rank, MemoryArena& local,
                         ObjectLookasideBuffer& olb, CacheHierarchy& cache,
                         NetworkModel& net, std::size_t private_bytes)
    : rank_(rank),
      local_(local),
      olb_(olb),
      cache_(cache),
      net_(net),
      private_bytes_(private_bytes) {}

std::byte* MachinePort::translate(std::uint64_t object_id, std::uint64_t addr,
                                  unsigned width, bool is_store,
                                  std::uint64_t* cycles) {
  XBGAS_CHECK(width == 1 || width == 2 || width == 4 || width == 8,
              "unsupported access width");
  XBGAS_CHECK(addr % width == 0,
              strfmt("misaligned %u-byte access at 0x%llx", width,
                     static_cast<unsigned long long>(addr)));

  if (object_id == kLocalObjectId) {
    (void)olb_.lookup(object_id);  // counts the architectural shortcut
    XBGAS_CHECK(addr + width <= local_.size(),
                strfmt("local access out of bounds: 0x%llx",
                       static_cast<unsigned long long>(addr)));
    *cycles = cache_.access(addr, width);
    return local_.base() + addr;
  }

  const OlbEntry* entry = olb_.lookup(object_id);
  XBGAS_CHECK(entry != nullptr,
              strfmt("OLB miss for object ID %llu",
                     static_cast<unsigned long long>(object_id)));

  // Symmetric addressing: the issuing PE's address, rebased onto the peer's
  // shared segment. Remote access is only legal within the shared segment.
  XBGAS_CHECK(addr >= private_bytes_,
              "remote access targets the private segment");
  const std::uint64_t shared_off = addr - private_bytes_;
  XBGAS_CHECK(shared_off + width <= entry->segment_size,
              "remote access out of bounds of the shared segment");

  *cycles = is_store ? net_.put_cost(rank_, entry->pe, width)
                     : net_.get_cost(rank_, entry->pe, width);
  net_.record(is_store, width, rank_, entry->pe);
  return entry->segment_base + shared_off;
}

isa::MemAccessResult MachinePort::load(std::uint64_t object_id,
                                       std::uint64_t addr, unsigned width,
                                       std::uint64_t* value) {
  std::uint64_t cycles = 0;
  const std::byte* p = translate(object_id, addr, width, /*is_store=*/false,
                                 &cycles);
  std::uint64_t raw = 0;
  std::memcpy(&raw, p, width);
  *value = raw;
  return isa::MemAccessResult{.cycles = cycles};
}

isa::MemAccessResult MachinePort::store(std::uint64_t object_id,
                                        std::uint64_t addr, unsigned width,
                                        std::uint64_t value) {
  std::uint64_t cycles = 0;
  std::byte* p =
      translate(object_id, addr, width, /*is_store=*/true, &cycles);
  std::memcpy(p, &value, width);
  return isa::MemAccessResult{.cycles = cycles};
}

}  // namespace xbgas
