#include "machine/machine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/topology.hpp"

namespace xbgas {

namespace {
/// Threads-mode binding only. In fiber mode the PE context rides on the
/// fiber (user_data), never on the worker thread — fibers migrate.
thread_local PeContext* t_current_pe = nullptr;

int log_rank_provider() {
  PeContext* pe = current_pe_context();
  return pe != nullptr ? pe->rank() : -1;
}
}  // namespace

PeContext* current_pe_context() {
  if (void* ud = FiberScheduler::current_user_data(); ud != nullptr) {
    return static_cast<PeContext*>(ud);
  }
  return t_current_pe;
}

PeContext::PeContext(Machine& machine, int rank, const MachineConfig& config)
    : machine_(machine),
      rank_(rank),
      arena_(config.layout),
      cache_(config.cache),
      shared_alloc_(config.layout.shared_bytes),
      private_alloc_(config.layout.private_bytes),
      port_(rank, arena_, olb_, cache_, machine.network(),
            config.layout.private_bytes) {}

int PeContext::n_pes() const { return machine_.n_pes(); }

void PeContext::bind_trace(EventRing* ring) {
  trace_.bind(ring, &clock_);
  olb_.set_trace(&trace_);
  cache_.set_trace(&trace_);
}

std::byte* PeContext::resolve_symmetric(int pe, void* local) {
  return const_cast<std::byte*>(
      static_cast<const PeContext*>(this)->resolve_symmetric(pe, local));
}

const std::byte* PeContext::resolve_symmetric(int pe, const void* local) const {
  XBGAS_CHECK(pe >= 0 && pe < machine_.n_pes(), "PE rank out of range");
  const std::size_t offset = arena_.shared_offset_of(local);
  if (pe == rank_) return static_cast<const std::byte*>(local);
  return machine_.pe(pe).arena().shared_at(offset);
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      network_(make_topology(config.topology_name, config.n_pes), config.net),
      tracer_(config.n_pes, config.trace),
      fault_injector_(config.fault, config.n_pes),
      sanitizer_(config.san, config.n_pes),
      recovery_(config.n_pes),
      checkpoint_store_(config.n_pes) {
  static std::atomic<std::uint64_t> next_instance_id{1};
  instance_id_ = next_instance_id.fetch_add(1, std::memory_order_relaxed);
  XBGAS_CHECK(config.n_pes >= 1, "machine needs >= 1 PE");
  pes_.reserve(static_cast<std::size_t>(config.n_pes));
  for (int r = 0; r < config.n_pes; ++r) {
    pes_.push_back(std::make_unique<PeContext>(*this, r, config_));
    pes_.back()->bind_trace(tracer_.ring(r));
  }
  // Populate every PE's OLB with every peer's shared segment (object ID =
  // rank + 1; ID 0 stays the architectural local shortcut).
  for (auto& pe : pes_) {
    for (int r = 0; r < config.n_pes; ++r) {
      auto& peer = *pes_[static_cast<std::size_t>(r)];
      pe->olb().insert(OlbEntry{
          .object_id = object_id_for_pe(r),
          .pe = r,
          .segment_base = peer.arena().shared_base(),
          .segment_size = peer.arena().shared_size(),
      });
    }
  }
  validation_slots_.assign(static_cast<std::size_t>(config.n_pes), 0);
  std::vector<int> world_ranks(static_cast<std::size_t>(config.n_pes));
  for (int r = 0; r < config.n_pes; ++r) {
    world_ranks[static_cast<std::size_t>(r)] = r;
  }
  world_barrier_ = std::make_unique<ClockSyncBarrier>(
      config.n_pes,
      [this](std::uint64_t max_cycles, int n) {
        return network_.reconcile_phase(max_cycles, n);
      },
      config.fault.barrier_timeout_ms, world_ranks);
  if (sanitizer_.conflicts_enabled()) {
    world_barrier_->set_all_arrived_hook(
        [this, world_ranks] { sanitizer_.on_barrier_all_arrived(world_ranks); });
  }
  register_barrier(world_barrier_.get());
  // Scripted link/partition faults: the transport consults the LinkFaults
  // plan per attempt; down/heal transitions feed the recovery roster's
  // reachability graph so xbr_agree's quorum rule sees exactly the links
  // the transport enforces.
  network_.configure_link_faults(config.fault, config.n_pes);
  if (!network_.link_faults().empty()) {
    network_.link_faults().set_down_callback(
        [this](int a, int b) { recovery_.note_link_down(a, b); });
    network_.link_faults().set_heal_callback(
        [this](int a, int b) { recovery_.note_link_up(a, b); });
  }
  set_log_rank_provider(&log_rank_provider);
}

Machine::~Machine() = default;

PeContext& Machine::pe(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes(), "PE rank out of range");
  return *pes_[static_cast<std::size_t>(rank)];
}

const PeContext& Machine::pe(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < n_pes(), "PE rank out of range");
  return *pes_[static_cast<std::size_t>(rank)];
}

void Machine::run(const std::function<void(PeContext&)>& body) {
  const std::string& mode = config_.sched.mode;
  XBGAS_CHECK(mode == "fibers" || mode == "threads",
              "MachineConfig::sched.mode must be \"fibers\" or \"threads\"");

  // One slot per PE, written only by that PE's fiber/thread and read after
  // all of them stop — no exception is ever dropped, and the report below
  // lists all of them.
  struct Slot {
    bool failed = false;
    PeFailure failure;
  };
  std::vector<Slot> slots(pes_.size());

  // A PE's xbrtime state used to be thread-local and therefore fresh for
  // every region; preserve that — notably, a PE that died mid-region must
  // not look "initialized" to the next region's body.
  for (auto& pe_ptr : pes_) pe_ptr->xbrtime_state() = XbrtimeRuntimeState{};

  // The PE body, identical under either execution model. Catches
  // *everything*: no exception may cross back into the scheduler.
  auto pe_body = [&](std::size_t i) {
    PeContext* ctx = pes_[i].get();
    const int rank = ctx->rank();
    try {
      body(*ctx);
    } catch (const PeFailedError& e) {
      // Secondary: this PE unwound from a barrier poisoned by another
      // PE's death. The barriers are already poisoned with the primary's
      // cause — don't re-poison with the echo.
      slots[i] = Slot{true, PeFailure{rank, e.what(), /*secondary=*/true}};
    } catch (const std::exception& e) {
      // Primary: mark the roster *before* poisoning so survivors running
      // the recovery protocol observe the death as soon as they unwind.
      recovery_.mark_failed(rank);
      sanitizer_.on_pe_failed(rank);
      slots[i] = Slot{true, PeFailure{rank, e.what(), /*secondary=*/false}};
      poison_all_barriers(rank, e.what());
    } catch (...) {
      recovery_.mark_failed(rank);
      sanitizer_.on_pe_failed(rank);
      slots[i] = Slot{true, PeFailure{rank, "unknown exception",
                                      /*secondary=*/false}};
      poison_all_barriers(rank, "unknown exception");
    }
  };

  if (mode == "fibers") {
    FiberScheduler sched(config_.sched, config_.n_pes);
    for (std::size_t i = 0; i < pes_.size(); ++i) {
      sched.spawn([&pe_body, i] { pe_body(i); }, pes_[i].get());
    }
    sched.run();
    const SchedStats& s = sched.stats();
    const std::lock_guard<std::mutex> lock(health_mutex_);
    sched_stats_.regions += s.regions;
    sched_stats_.fibers += s.fibers;
    sched_stats_.workers = std::max(sched_stats_.workers, s.workers);
    sched_stats_.switches += s.switches;
    sched_stats_.yields_waiting += s.yields_waiting;
    sched_stats_.injected_yields += s.injected_yields;
    sched_stats_.naps += s.naps;
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pes_.size());
    for (std::size_t i = 0; i < pes_.size(); ++i) {
      threads.emplace_back([&pe_body, ctx = pes_[i].get(), i] {
        t_current_pe = ctx;
        pe_body(i);
        t_current_pe = nullptr;
      });
    }
    for (auto& t : threads) t.join();
  }

  std::vector<PeFailure> region_failures;
  std::size_t n_success = 0;
  for (const Slot& s : slots) {
    if (s.failed) {
      region_failures.push_back(s.failure);
    } else {
      ++n_success;
    }
  }
  if (region_failures.empty()) return;

  // Deterministic report order: primaries first, then by rank. Slot order
  // already yields rank order; the explicit sort makes the invariant hold
  // no matter how the collection above evolves (it is golden-tested).
  std::stable_sort(region_failures.begin(), region_failures.end(),
                   [](const PeFailure& a, const PeFailure& b) {
                     if (a.secondary != b.secondary) return !a.secondary;
                     return a.rank < b.rank;
                   });
  std::size_t n_primary = 0;
  for (const PeFailure& f : region_failures) n_primary += f.secondary ? 0 : 1;

  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (const PeFailure& f : region_failures) failures_.push_back(f);
  }

  // Recovered region: every failure is a primary death that the survivors
  // acknowledged via agreement, and at least one PE finished its body. The
  // job shrank and kept going — that is success, not an exception.
  bool recovered = n_success > 0;
  for (const PeFailure& f : region_failures) {
    if (f.secondary || !recovery_.acknowledged(f.rank)) {
      recovered = false;
      break;
    }
  }
  if (recovered) return;

  std::string msg = "SPMD region failed on " +
                    std::to_string(region_failures.size()) + " of " +
                    std::to_string(pes_.size()) + " PEs (" +
                    std::to_string(n_primary) + " primary):";
  for (const PeFailure& f : region_failures) {
    msg += "\n  rank " + std::to_string(f.rank) +
           (f.secondary ? " (secondary): " : ": ") + f.what;
  }
  throw SpmdRegionError(msg, std::move(region_failures));
}

SchedStats Machine::sched_stats() const {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  return sched_stats_;
}

bool Machine::alive(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < n_pes(), "PE rank out of range");
  return !recovery_.failed(rank);
}

int Machine::n_alive() const { return n_pes() - recovery_.n_failed(); }

std::vector<int> Machine::failed_ranks() const {
  return recovery_.failed_ranks();
}

std::vector<PeFailure> Machine::failures() const {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  return failures_;
}

std::string Machine::health() const {
  std::string out =
      "alive " + std::to_string(n_alive()) + "/" + std::to_string(n_pes());
  const std::vector<int> failed = recovery_.failed_ranks();
  out += "\nfailed ranks: [";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(failed[i]);
  }
  out += "]";
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (const PeFailure& f : failures_) {
      out += "\n  rank " + std::to_string(f.rank) +
             (f.secondary ? " (secondary): " : " (primary): ") + f.what;
    }
  }
  const RecoveryCounters& rc = recovery_.counters();
  out += "\nrecovery: epoch " + std::to_string(recovery_.epoch()) +
         ", agreements " + std::to_string(rc.agreements.load()) +
         ", shrinks " + std::to_string(rc.shrinks.load()) + ", checkpoints " +
         std::to_string(rc.checkpoints.load()) + ", restores " +
         std::to_string(rc.restores.load());
  return out;
}

std::uint64_t Machine::max_cycles() const {
  std::uint64_t best = 0;
  for (const auto& pe_ptr : pes_) {
    best = std::max(best, pe_ptr->clock().cycles());
  }
  return best;
}

void Machine::reset_time_and_stats() {
  for (auto& pe_ptr : pes_) {
    pe_ptr->clock().reset();
    pe_ptr->cache().reset_stats();
    pe_ptr->cache().flush();
    pe_ptr->olb().reset_stats();
  }
  network_.reset_totals();
  network_.reset_phase();
  tracer_.clear();
  // Fault counters reset with the other statistics; the injection RNG
  // streams deliberately keep their position (see FaultInjector).
  fault_injector_.reset_counters();
}

std::uint64_t& Machine::validation_slot(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes(), "PE rank out of range");
  return validation_slots_[static_cast<std::size_t>(rank)];
}

void Machine::register_barrier(ClockSyncBarrier* barrier) {
  const std::lock_guard<std::mutex> lock(barriers_mutex_);
  barriers_.push_back(barrier);
  // A barrier created after a PE already died can never be completed by the
  // dead PE: poison it at birth or a surviving registrant waits forever
  // (e.g. a team member re-creating the shared rendezvous barrier after the
  // first copy was destroyed on the failure path). Once survivors have
  // acknowledged a death via agreement, barriers of the new recovery epoch
  // must be born clean — only *unacknowledged* failures poison at birth.
  for (const auto& [rank, poison] : primary_poisons_) {
    if (!recovery_.acknowledged(rank)) {
      barrier->poison(poison);
      break;
    }
  }
}

void Machine::unregister_barrier(ClockSyncBarrier* barrier) {
  const std::lock_guard<std::mutex> lock(barriers_mutex_);
  std::erase(barriers_, barrier);
}

void Machine::poison_barriers_for_unreachable(int suspect,
                                              const std::string& cause) {
  BarrierPoison info;
  info.failed_rank = suspect;
  info.reason = "PE " + std::to_string(suspect) +
                " is unreachable (" + cause +
                "); surviving PEs enter recovery";
  const std::lock_guard<std::mutex> lock(barriers_mutex_);
  // One-shot: only barriers that exist right now are poisoned. The suspect
  // is alive, so no primary_poisons_ entry is recorded — barriers created
  // after the quorum decision (the shrunken team's) must be born clean.
  for (auto* b : barriers_) b->poison(info);
}

void Machine::poison_all_barriers(int failed_rank, const std::string& cause) {
  BarrierPoison info;
  info.failed_rank = failed_rank;
  info.reason = "PE " + std::to_string(failed_rank) + " failed (" + cause +
                "); surviving PEs fail fast";
  const std::lock_guard<std::mutex> lock(barriers_mutex_);
  primary_poisons_[failed_rank] = info;
  // Before the death is acknowledged, fail fast: poison everything so no
  // waiter can deadlock on a rendezvous the dead PE will never join. Once
  // survivors have acknowledged it via agreement, barriers whose rosters
  // exclude the dead rank belong to the *new* recovery epoch and can never
  // be blocked by it — poisoning them would inject a spurious failure into
  // a healthy shrunken team, and make the number of agreement waves depend
  // on how late this (host-scheduled) call lands relative to the fold.
  const bool acknowledged = recovery_.acknowledged(failed_rank);
  for (auto* b : barriers_) {
    if (acknowledged && b->excludes_rank(failed_rank)) continue;
    b->poison(info);
  }
}

}  // namespace xbgas
