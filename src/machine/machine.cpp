#include "machine/machine.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/topology.hpp"

namespace xbgas {

namespace {
thread_local PeContext* t_current_pe = nullptr;

int log_rank_provider() {
  return t_current_pe != nullptr ? t_current_pe->rank() : -1;
}
}  // namespace

PeContext* current_pe_context() { return t_current_pe; }

PeContext::PeContext(Machine& machine, int rank, const MachineConfig& config)
    : machine_(machine),
      rank_(rank),
      arena_(config.layout),
      cache_(config.cache),
      shared_alloc_(config.layout.shared_bytes),
      private_alloc_(config.layout.private_bytes),
      port_(rank, arena_, olb_, cache_, machine.network(),
            config.layout.private_bytes) {}

int PeContext::n_pes() const { return machine_.n_pes(); }

void PeContext::bind_trace(EventRing* ring) {
  trace_.bind(ring, &clock_);
  olb_.set_trace(&trace_);
  cache_.set_trace(&trace_);
}

std::byte* PeContext::resolve_symmetric(int pe, void* local) {
  return const_cast<std::byte*>(
      static_cast<const PeContext*>(this)->resolve_symmetric(pe, local));
}

const std::byte* PeContext::resolve_symmetric(int pe, const void* local) const {
  XBGAS_CHECK(pe >= 0 && pe < machine_.n_pes(), "PE rank out of range");
  const std::size_t offset = arena_.shared_offset_of(local);
  if (pe == rank_) return static_cast<const std::byte*>(local);
  return machine_.pe(pe).arena().shared_at(offset);
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      network_(make_topology(config.topology_name, config.n_pes), config.net),
      tracer_(config.n_pes, config.trace) {
  XBGAS_CHECK(config.n_pes >= 1, "machine needs >= 1 PE");
  pes_.reserve(static_cast<std::size_t>(config.n_pes));
  for (int r = 0; r < config.n_pes; ++r) {
    pes_.push_back(std::make_unique<PeContext>(*this, r, config_));
    pes_.back()->bind_trace(tracer_.ring(r));
  }
  // Populate every PE's OLB with every peer's shared segment (object ID =
  // rank + 1; ID 0 stays the architectural local shortcut).
  for (auto& pe : pes_) {
    for (int r = 0; r < config.n_pes; ++r) {
      auto& peer = *pes_[static_cast<std::size_t>(r)];
      pe->olb().insert(OlbEntry{
          .object_id = object_id_for_pe(r),
          .pe = r,
          .segment_base = peer.arena().shared_base(),
          .segment_size = peer.arena().shared_size(),
      });
    }
  }
  validation_slots_.assign(static_cast<std::size_t>(config.n_pes), 0);
  world_barrier_ = std::make_unique<ClockSyncBarrier>(
      config.n_pes, [this](std::uint64_t max_cycles, int n) {
        return network_.reconcile_phase(max_cycles, n);
      });
  register_barrier(world_barrier_.get());
  set_log_rank_provider(&log_rank_provider);
}

Machine::~Machine() = default;

PeContext& Machine::pe(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes(), "PE rank out of range");
  return *pes_[static_cast<std::size_t>(rank)];
}

const PeContext& Machine::pe(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < n_pes(), "PE rank out of range");
  return *pes_[static_cast<std::size_t>(rank)];
}

void Machine::run(const std::function<void(PeContext&)>& body) {
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(pes_.size());
  for (auto& pe_ptr : pes_) {
    threads.emplace_back([&, ctx = pe_ptr.get()] {
      t_current_pe = ctx;
      try {
        body(*ctx);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        poison_all_barriers();
      }
      t_current_pe = nullptr;
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t Machine::max_cycles() const {
  std::uint64_t best = 0;
  for (const auto& pe_ptr : pes_) {
    best = std::max(best, pe_ptr->clock().cycles());
  }
  return best;
}

void Machine::reset_time_and_stats() {
  for (auto& pe_ptr : pes_) {
    pe_ptr->clock().reset();
    pe_ptr->cache().reset_stats();
    pe_ptr->cache().flush();
    pe_ptr->olb().reset_stats();
  }
  network_.reset_totals();
  network_.reset_phase();
  tracer_.clear();
}

std::uint64_t& Machine::validation_slot(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes(), "PE rank out of range");
  return validation_slots_[static_cast<std::size_t>(rank)];
}

void Machine::register_barrier(ClockSyncBarrier* barrier) {
  const std::lock_guard<std::mutex> lock(barriers_mutex_);
  barriers_.push_back(barrier);
  // A barrier created after a PE already died can never be completed by the
  // dead PE: poison it at birth or a surviving registrant waits forever
  // (e.g. a team member re-creating the shared rendezvous barrier after the
  // first copy was destroyed on the failure path).
  if (pe_failed_) barrier->poison();
}

void Machine::unregister_barrier(ClockSyncBarrier* barrier) {
  const std::lock_guard<std::mutex> lock(barriers_mutex_);
  std::erase(barriers_, barrier);
}

void Machine::poison_all_barriers() {
  const std::lock_guard<std::mutex> lock(barriers_mutex_);
  pe_failed_ = true;
  for (auto* b : barriers_) b->poison();
}

}  // namespace xbgas
