#pragma once

// FiberScheduler — the N:M cooperative execution substrate under
// Machine::run (docs/SCALING.md).
//
// The original machine dedicated one std::thread to every PE, which caps
// realistic world sizes near the paper's 12 cores: a 1024-PE region would
// ask the host for 1024 kernel threads, all contending for the same few
// cores and the same barrier mutex. Here each PE body runs as a cooperative
// *fiber* (a ucontext stackful coroutine with its own heap-allocated stack)
// and a bounded pool of worker threads — sized to hardware concurrency by
// default — multiplexes the fibers, so a 1024-PE machine runs comfortably
// on a laptop.
//
// Scheduler invariants (the contract every blocking primitive obeys):
//
//  * A fiber may only leave the CPU through yield() / yield_waiting() /
//    finishing its body. There is no preemption: between yield points a
//    fiber owns its worker thread.
//
//  * A fiber must NEVER block its worker thread (mutex wait, condvar wait,
//    sleep, join). With n_fibers > n_workers a blocked worker can strand
//    the very fibers whose progress would satisfy the wait — the classic
//    N:M deadlock. Blocking primitives (ClockSyncBarrier, RecoveryState)
//    instead poll their condition and yield_waiting() between probes; a
//    parked fiber is always re-run, so there is no lost-wakeup window by
//    construction.
//
//  * A fiber must not hold a lock across a yield point. Every mutex in the
//    barrier/roster/registry paths is released before yield_waiting() and
//    re-acquired after.
//
//  * Fibers may migrate between workers; per-PE state therefore lives in
//    PeContext (reached via current_user_data()), never in thread_locals.
//
// yield() means "I made progress, give others a turn" (cooperative time
// slice); yield_waiting() means "I am blocked on a condition somebody else
// must change". The distinction drives the idle backoff: when every live
// fiber reports waiting for a full sweep, the workers nap briefly instead
// of spinning — the only actors that can change a condition are other
// fibers (or a rare host-side poison), so an all-waiting sweep means the
// region is momentarily quiescent.
//
// Sanitizer interop: stack switches are invisible to ASan/TSan unless
// announced. Every switch is bracketed with __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber (ASan: fake-stack handoff) and
// __tsan_switch_to_fiber (TSan: per-fiber shadow state), so the whole fiber
// machine runs clean under -fsanitize=address and -fsanitize=thread
// (scripts/check.sh stages 11/12).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xbgas {

/// PE execution model configuration (MachineConfig::sched).
struct SchedConfig {
  /// "fibers": N PE contexts over a bounded worker pool (default).
  /// "threads": the legacy 1:1 std::thread-per-PE model.
  std::string mode = "fibers";
  /// Worker threads for fiber mode; 0 = min(hardware_concurrency, n_pes).
  int workers = 0;
  /// Stack bytes per fiber. PE bodies recurse at most O(log n) deep in the
  /// collective tree schedules; 512 KiB leaves generous headroom even under
  /// ASan's enlarged frames.
  std::size_t stack_bytes = std::size_t{512} * 1024;
  /// Test-only: probability that a cooperative poll point injects an extra
  /// yield, drawn from a stream seeded with (yield_inject_seed, fiber).
  /// Shakes out ordering assumptions — any schedule a random yield pattern
  /// can produce must still complete with identical simulated time.
  double yield_inject_prob = 0.0;
  std::uint64_t yield_inject_seed = 0;
};

/// Scheduler statistics for one SPMD region (sched.* counters,
/// docs/OBSERVABILITY.md). Plain integers: read after run() returns.
struct SchedStats {
  std::uint64_t regions = 0;         ///< SPMD regions executed
  std::uint64_t fibers = 0;          ///< fibers spawned
  std::uint64_t workers = 0;         ///< worker threads used
  std::uint64_t switches = 0;        ///< fiber resumes (context switches in)
  std::uint64_t yields_waiting = 0;  ///< blocked-condition yields
  std::uint64_t injected_yields = 0; ///< test-injected extra yields
  std::uint64_t naps = 0;            ///< idle backoff sleeps (all waiting)
};

namespace detail {
struct Fiber;
struct WorkerState;
}  // namespace detail

class FiberScheduler {
 public:
  explicit FiberScheduler(const SchedConfig& config, int n_fibers);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Register a fiber. `user_data` is retrievable from inside the fiber via
  /// current_user_data() (Machine::run stores the PeContext*). Must be
  /// called before run().
  void spawn(std::function<void()> body, void* user_data);

  /// Execute every spawned fiber to completion over the worker pool.
  /// Blocks the calling thread. If a fiber body let an exception escape
  /// (Machine::run never does — its bodies catch everything), the first one
  /// is rethrown here after all fibers have stopped.
  void run();

  /// Statistics of the completed run().
  const SchedStats& stats() const { return stats_; }

  // -- Calling-fiber context (static: reachable from any depth) --

  /// True when the calling code runs on a scheduler fiber.
  static bool on_fiber();

  /// The user_data of the currently running fiber, or nullptr when the
  /// caller is not on a fiber. current_pe_context() builds on this.
  static void* current_user_data();

  /// Cooperative time slice: re-queue the calling fiber and run others.
  /// No-op off-fiber.
  static void yield();

  /// Blocked-condition yield: like yield(), but tells the idle backoff
  /// this fiber is waiting on external progress. No-op off-fiber.
  static void yield_waiting();

  /// Cheap cooperative poll point for long compute/RMA loops: yields every
  /// k-th call per fiber (bounding a fiber's time slice) and applies the
  /// seeded test yield injection. No-op off-fiber; one predictable branch
  /// when injection is off.
  static void poll_yield();

 private:
  friend struct detail::WorkerState;

  detail::Fiber* pop_ready();
  void push_ready(detail::Fiber* fiber);
  void worker_loop(detail::WorkerState& worker);

  SchedConfig config_;
  int n_workers_ = 1;
  SchedStats stats_{};

  std::vector<std::unique_ptr<detail::Fiber>> fibers_;

  std::mutex ready_mutex_;
  std::deque<detail::Fiber*> ready_;  // FIFO: single-worker mode is strict
                                      // round-robin, hence deterministic

  std::atomic<int> live_fibers_{0};
  /// Consecutive resumes that ended in yield_waiting with no intervening
  /// progress; drives the all-waiting nap.
  std::atomic<std::uint64_t> waiting_streak_{0};

  std::atomic<std::uint64_t> switches_{0};
  std::atomic<std::uint64_t> yields_waiting_{0};
  std::atomic<std::uint64_t> injected_yields_{0};
  std::atomic<std::uint64_t> naps_{0};
};

}  // namespace xbgas
