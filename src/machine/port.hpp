#pragma once

// MachinePort — the per-PE implementation of isa::GlobalMemoryPort.
//
// This is where the §3.2 execution rule lives for interpreted code:
//   e-register == 0  ->  local access (cache-hierarchy timing)
//   e-register != 0  ->  OLB translation to the owning PE's shared segment
//                        (network-model timing + fabric traffic accounting)
//
// Addresses are arena-relative: a remote access uses the *same* address the
// issuing PE would use locally, relying on the symmetric-heap property that
// shared allocations sit at identical offsets on every PE.

#include <cstddef>
#include <cstdint>

#include "isa/port.hpp"

namespace xbgas {

class MemoryArena;
class ObjectLookasideBuffer;
class CacheHierarchy;
class NetworkModel;

class MachinePort final : public isa::GlobalMemoryPort {
 public:
  MachinePort(int rank, MemoryArena& local, ObjectLookasideBuffer& olb,
              CacheHierarchy& cache, NetworkModel& net,
              std::size_t private_bytes);

  isa::MemAccessResult load(std::uint64_t object_id, std::uint64_t addr,
                            unsigned width, std::uint64_t* value) override;

  isa::MemAccessResult store(std::uint64_t object_id, std::uint64_t addr,
                             unsigned width, std::uint64_t value) override;

 private:
  /// Resolve (object_id, addr) to a concrete byte pointer and the cycle
  /// cost of reaching it.
  std::byte* translate(std::uint64_t object_id, std::uint64_t addr,
                       unsigned width, bool is_store, std::uint64_t* cycles);

  int rank_;
  MemoryArena& local_;
  ObjectLookasideBuffer& olb_;
  CacheHierarchy& cache_;
  NetworkModel& net_;
  std::size_t private_bytes_;
};

}  // namespace xbgas
