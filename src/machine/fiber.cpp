#include "machine/fiber.hpp"

#include <ucontext.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "common/error.hpp"

// Stack switches must be announced to the sanitizers or they misattribute
// frames (ASan) and happens-before edges (TSan). Both interfaces ship with
// the gcc/clang sanitizer runtimes; plain builds compile none of this.
#if !defined(__has_feature)
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#define XBGAS_FIBER_ASAN 1
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
#define XBGAS_FIBER_TSAN 1
#include <sanitizer/tsan_interface.h>
#endif

namespace xbgas {

namespace detail {

struct Fiber {
  FiberScheduler* sched = nullptr;
  std::function<void()> body;
  void* user_data = nullptr;

  ucontext_t ctx{};
  std::unique_ptr<std::byte[]> stack;
  std::size_t stack_size = 0;

  bool finished = false;
  /// Set by yield_waiting() just before switching out; read by the worker
  /// after the switch to drive the all-waiting nap.
  bool waiting_yield = false;
  std::uint64_t poll_count = 0;
  std::uint64_t inject_rng = 0;  ///< splitmix64 state for yield injection
  std::exception_ptr uncaught;

  /// ASan fake-stack handle saved while this fiber is switched out, and the
  /// worker stack to announce when switching back (captured on each landing
  /// because fibers migrate between workers).
  void* asan_fake = nullptr;
  const void* ret_stack_bottom = nullptr;
  std::size_t ret_stack_size = 0;
  void* tsan_fiber = nullptr;
};

struct WorkerState {
  FiberScheduler* sched = nullptr;
  ucontext_t ctx{};
  void* asan_fake = nullptr;
  void* tsan_fiber = nullptr;
  Fiber* current = nullptr;
};

namespace {

thread_local WorkerState* t_worker = nullptr;
thread_local Fiber* t_fiber = nullptr;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Worker -> fiber. Returns when the fiber yields or finishes.
void switch_worker_to_fiber(WorkerState& w, Fiber& f) {
  w.current = &f;
  t_fiber = &f;
#if defined(XBGAS_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&w.asan_fake, f.stack.get(), f.stack_size);
#endif
#if defined(XBGAS_FIBER_TSAN)
  __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
  swapcontext(&w.ctx, &f.ctx);
#if defined(XBGAS_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(w.asan_fake, nullptr, nullptr);
#endif
  t_fiber = nullptr;
  w.current = nullptr;
}

/// Fiber -> its current worker. `dying` releases the ASan fake stack: the
/// fiber never runs again.
void switch_fiber_to_worker(Fiber& f, [[maybe_unused]] bool dying) {
  WorkerState& w = *t_worker;
#if defined(XBGAS_FIBER_ASAN)
  __sanitizer_start_switch_fiber(dying ? nullptr : &f.asan_fake,
                                 f.ret_stack_bottom, f.ret_stack_size);
#endif
#if defined(XBGAS_FIBER_TSAN)
  __tsan_switch_to_fiber(w.tsan_fiber, 0);
#endif
  swapcontext(&f.ctx, &w.ctx);
  // Resumed — possibly on a different worker; only touch `f` from here.
#if defined(XBGAS_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(f.asan_fake, &f.ret_stack_bottom,
                                  &f.ret_stack_size);
#endif
}

/// Entry point of every fiber (runs on the fiber's own stack). makecontext
/// takes no arguments portably; the spawning worker parks the Fiber* in its
/// WorkerState::current, which this (same thread, just switched) reads.
void fiber_trampoline() {
  Fiber* f = t_worker->current;
#if defined(XBGAS_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(nullptr, &f->ret_stack_bottom,
                                  &f->ret_stack_size);
#endif
  try {
    f->body();
  } catch (...) {
    // Machine::run bodies catch everything themselves; this is the
    // scheduler's own guarantee that no exception crosses a context switch.
    f->uncaught = std::current_exception();
  }
  f->finished = true;
  switch_fiber_to_worker(*f, /*dying=*/true);
  // Unreachable: a finished fiber is never resumed.
}

}  // namespace

}  // namespace detail

FiberScheduler::FiberScheduler(const SchedConfig& config, int n_fibers)
    : config_(config) {
  XBGAS_CHECK(n_fibers >= 0, "negative fiber count");
  XBGAS_CHECK(config.stack_bytes >= std::size_t{64} * 1024,
              "fiber stacks below 64 KiB are unsafe for PE bodies");
  fibers_.reserve(static_cast<std::size_t>(n_fibers));
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const int want = config.workers > 0 ? config.workers : static_cast<int>(hw);
  n_workers_ = std::max(1, std::min(want, std::max(1, n_fibers)));
}

FiberScheduler::~FiberScheduler() = default;

void FiberScheduler::spawn(std::function<void()> body, void* user_data) {
  auto fiber = std::make_unique<detail::Fiber>();
  fiber->sched = this;
  fiber->body = std::move(body);
  fiber->user_data = user_data;
  fiber->stack_size = config_.stack_bytes;
  fiber->stack = std::make_unique<std::byte[]>(fiber->stack_size);
  fiber->inject_rng = config_.yield_inject_seed * 0x9e3779b97f4a7c15ull +
                      (fibers_.size() + 1) * 0xbf58476d1ce4e5b9ull;
  fibers_.push_back(std::move(fiber));
}

detail::Fiber* FiberScheduler::pop_ready() {
  const std::lock_guard<std::mutex> lock(ready_mutex_);
  if (ready_.empty()) return nullptr;
  detail::Fiber* f = ready_.front();
  ready_.pop_front();
  return f;
}

void FiberScheduler::push_ready(detail::Fiber* fiber) {
  const std::lock_guard<std::mutex> lock(ready_mutex_);
  ready_.push_back(fiber);
}

void FiberScheduler::worker_loop(detail::WorkerState& w) {
  detail::t_worker = &w;
#if defined(XBGAS_FIBER_TSAN)
  w.tsan_fiber = __tsan_get_current_fiber();
#endif
  while (live_fibers_.load(std::memory_order_acquire) > 0) {
    detail::Fiber* f = pop_ready();
    if (f == nullptr) {
      // Another worker holds the remaining fibers; don't spin on the queue.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    switches_.fetch_add(1, std::memory_order_relaxed);
    detail::switch_worker_to_fiber(w, *f);
    if (f->finished) {
#if defined(XBGAS_FIBER_TSAN)
      __tsan_destroy_fiber(f->tsan_fiber);
#endif
      waiting_streak_.store(0, std::memory_order_relaxed);
      live_fibers_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    const bool was_waiting = f->waiting_yield;
    f->waiting_yield = false;
    push_ready(f);
    if (was_waiting) {
      // Idle backoff: once every live fiber has reported "blocked" for a
      // couple of consecutive sweeps, nothing can change until an external
      // actor (watchdog deadline, host-side poison) acts — nap instead of
      // burning the host core re-polling.
      const std::uint64_t streak =
          waiting_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
      const auto live = static_cast<std::uint64_t>(
          live_fibers_.load(std::memory_order_relaxed));
      if (streak >= 2 * live + 1) {
        naps_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    } else {
      waiting_streak_.store(0, std::memory_order_relaxed);
    }
  }
}

void FiberScheduler::run() {
  stats_.regions += 1;
  stats_.fibers += fibers_.size();
  if (fibers_.empty()) return;
  XBGAS_CHECK(!detail::t_fiber, "FiberScheduler::run is not fiber-reentrant");

  live_fibers_.store(static_cast<int>(fibers_.size()),
                     std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(ready_mutex_);
    for (auto& f : fibers_) {
      getcontext(&f->ctx);
      f->ctx.uc_stack.ss_sp = f->stack.get();
      f->ctx.uc_stack.ss_size = f->stack_size;
      f->ctx.uc_link = nullptr;
      makecontext(&f->ctx, detail::fiber_trampoline, 0);
#if defined(XBGAS_FIBER_TSAN)
      f->tsan_fiber = __tsan_create_fiber(0);
#endif
      ready_.push_back(f.get());
    }
  }

  std::vector<std::unique_ptr<detail::WorkerState>> workers;
  std::vector<std::thread> threads;
  workers.reserve(static_cast<std::size_t>(n_workers_));
  threads.reserve(static_cast<std::size_t>(n_workers_));
  for (int i = 0; i < n_workers_; ++i) {
    workers.push_back(std::make_unique<detail::WorkerState>());
    workers.back()->sched = this;
    detail::WorkerState* w = workers.back().get();
    threads.emplace_back([this, w] { worker_loop(*w); });
  }
  for (auto& t : threads) t.join();

  stats_.workers = static_cast<std::uint64_t>(n_workers_);
  stats_.switches = switches_.load(std::memory_order_relaxed);
  stats_.yields_waiting = yields_waiting_.load(std::memory_order_relaxed);
  stats_.injected_yields = injected_yields_.load(std::memory_order_relaxed);
  stats_.naps = naps_.load(std::memory_order_relaxed);

  for (auto& f : fibers_) {
    if (f->uncaught) std::rethrow_exception(f->uncaught);
  }
}

bool FiberScheduler::on_fiber() { return detail::t_fiber != nullptr; }

void* FiberScheduler::current_user_data() {
  return detail::t_fiber != nullptr ? detail::t_fiber->user_data : nullptr;
}

void FiberScheduler::yield() {
  detail::Fiber* f = detail::t_fiber;
  if (f == nullptr) return;
  f->waiting_yield = false;
  detail::switch_fiber_to_worker(*f, /*dying=*/false);
}

void FiberScheduler::yield_waiting() {
  detail::Fiber* f = detail::t_fiber;
  if (f == nullptr) return;
  f->sched->yields_waiting_.fetch_add(1, std::memory_order_relaxed);
  f->waiting_yield = true;
  detail::switch_fiber_to_worker(*f, /*dying=*/false);
}

void FiberScheduler::poll_yield() {
  detail::Fiber* f = detail::t_fiber;
  if (f == nullptr) return;
  // Bound a fiber's uninterrupted slice through long RMA/compute loops:
  // yield every 1024th poll even without injection.
  constexpr std::uint64_t kSliceMask = 1023;
  ++f->poll_count;
  bool do_yield = (f->poll_count & kSliceMask) == 0;
  FiberScheduler* s = f->sched;
  if (s->config_.yield_inject_prob > 0.0) {
    const double u =
        static_cast<double>(detail::splitmix64(f->inject_rng) >> 11) *
        0x1.0p-53;
    if (u < s->config_.yield_inject_prob) {
      s->injected_yields_.fetch_add(1, std::memory_order_relaxed);
      do_yield = true;
    }
  }
  if (do_yield) yield();
}

}  // namespace xbgas
