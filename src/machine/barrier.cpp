#include "machine/barrier.hpp"

#include <algorithm>
#include <chrono>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "fault/injector.hpp"
#include "machine/machine.hpp"

namespace xbgas {

namespace {

/// Barrier enter/exit events for the calling PE, if it is an SPMD thread
/// with tracing bound. a = modeled algorithm, b = modeled exchange rounds.
void trace_barrier(EventKind kind, std::uint64_t at_cycles, int n) {
  PeContext* pe = current_pe_context();
  if (pe == nullptr || !pe->trace().enabled()) return;
  const auto algorithm = static_cast<std::uint64_t>(
      pe->machine().config().net.barrier_algorithm);
  const std::uint64_t rounds =
      n > 1 ? ceil_log2(static_cast<std::uint64_t>(n)) : 0;
  pe->trace().record_at(at_cycles, kind, -1, algorithm, rounds);
}

std::string rank_list(const std::vector<int>& ranks) {
  std::string out = "[";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(ranks[i]);
  }
  return out + "]";
}

}  // namespace

ClockSyncBarrier::ClockSyncBarrier(int n_participants, Reconcile reconcile,
                                   std::uint64_t watchdog_ms,
                                   std::vector<int> member_ranks)
    : n_(n_participants),
      reconcile_(std::move(reconcile)),
      watchdog_ms_(watchdog_ms),
      member_ranks_(std::move(member_ranks)) {
  XBGAS_CHECK(n_participants >= 1, "barrier needs >= 1 participant");
}

void ClockSyncBarrier::throw_poisoned_locked() const {
  // Copy out before throwing: the unwind releases the lock and another
  // thread may poison again (no-op) or read the info concurrently.
  const BarrierPoison p = poison_;
  if (p.failed_rank >= 0) throw PeFailedError(p.reason, p.failed_rank);
  if (p.timeout) throw BarrierTimeoutError(p.reason, p.arrived, p.missing);
  throw Error(p.reason.empty()
                  ? "barrier poisoned: a PE terminated abnormally"
                  : p.reason);
}

std::uint64_t ClockSyncBarrier::arrive_and_wait(std::uint64_t my_cycles) {
  trace_barrier(EventKind::kBarrierEnter, my_cycles, n_);
  PeContext* pe = current_pe_context();
  const int my_rank = pe != nullptr ? pe->rank() : -1;

  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) throw_poisoned_locked();

  max_cycles_ = std::max(max_cycles_, my_cycles);
  arrived_ranks_.push_back(my_rank);
  if (++arrived_ == n_) {
    // Last arriver: every other participant is blocked on cv_, so the hook
    // observes all members quiescent (XbrSan epoch join).
    if (all_arrived_) all_arrived_();
    // Reconcile, open the next generation, release everyone.
    result_ = reconcile_ ? reconcile_(max_cycles_, n_) : max_cycles_;
    arrived_ = 0;
    arrived_ranks_.clear();
    max_cycles_ = 0;
    ++generation_;
    cv_.notify_all();
    const std::uint64_t r = result_;
    lock.unlock();
    trace_barrier(EventKind::kBarrierExit, r, n_);
    return r;
  }

  const std::uint64_t my_generation = generation_;
  const auto released = [&] {
    return generation_ != my_generation || poisoned_;
  };
  if (watchdog_ms_ == 0) {
    cv_.wait(lock, released);
  } else if (!cv_.wait_for(lock, std::chrono::milliseconds(watchdog_ms_),
                           released)) {
    // Watchdog fired: some participants never arrived. Poison with the full
    // rendezvous roster so the hang becomes a diagnosis, then throw like
    // every other waiter will.
    BarrierPoison info;
    info.timeout = true;
    info.arrived = arrived_ranks_;
    if (!member_ranks_.empty()) {
      for (const int r : member_ranks_) {
        if (std::find(info.arrived.begin(), info.arrived.end(), r) ==
            info.arrived.end()) {
          info.missing.push_back(r);
        }
      }
    }
    info.reason = strfmt(
        "barrier watchdog: %d of %d participants arrived within %llu ms; "
        "arrived ranks %s, missing ranks %s",
        arrived_, n_, static_cast<unsigned long long>(watchdog_ms_),
        rank_list(info.arrived).c_str(),
        member_ranks_.empty() ? "(unknown)" : rank_list(info.missing).c_str());
    poisoned_ = true;
    poison_ = info;
    cv_.notify_all();
    if (pe != nullptr) {
      pe->machine().fault_injector().counters().barrier_timeouts.fetch_add(
          1, std::memory_order_relaxed);
      pe->trace().record(EventKind::kBarrierTimeout, -1,
                         static_cast<std::uint64_t>(info.arrived.size()),
                         static_cast<std::uint64_t>(n_));
    }
    throw_poisoned_locked();
  }
  // A completed rendezvous is a completed rendezvous: if this waiter's
  // generation closed before the poison landed, it leaves normally and
  // observes the poison at its *next* arrival. Only a generation that can
  // never complete throws here. This keeps survivor unwind points
  // deterministic — every PE finishes exactly the barriers that fully
  // rendezvoused before a death, regardless of wakeup timing.
  if (generation_ == my_generation && poisoned_) throw_poisoned_locked();
  const std::uint64_t r = result_;
  lock.unlock();
  trace_barrier(EventKind::kBarrierExit, r, n_);
  return r;
}

void ClockSyncBarrier::poison() { poison(BarrierPoison{}); }

void ClockSyncBarrier::poison(BarrierPoison info) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!poisoned_) {
    poisoned_ = true;
    poison_ = std::move(info);
  }
  cv_.notify_all();
}

bool ClockSyncBarrier::poisoned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

BarrierPoison ClockSyncBarrier::poison_info() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return poison_;
}

bool ClockSyncBarrier::excludes_rank(int rank) const {
  // member_ranks_ is const after construction: no lock needed.
  if (member_ranks_.empty()) return false;
  return std::find(member_ranks_.begin(), member_ranks_.end(), rank) ==
         member_ranks_.end();
}

}  // namespace xbgas
