#include "machine/barrier.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xbgas {

ClockSyncBarrier::ClockSyncBarrier(int n_participants, Reconcile reconcile)
    : n_(n_participants), reconcile_(std::move(reconcile)) {
  XBGAS_CHECK(n_participants >= 1, "barrier needs >= 1 participant");
}

std::uint64_t ClockSyncBarrier::arrive_and_wait(std::uint64_t my_cycles) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) throw Error("barrier poisoned: a PE terminated abnormally");

  max_cycles_ = std::max(max_cycles_, my_cycles);
  if (++arrived_ == n_) {
    // Last arriver: reconcile, open the next generation, release everyone.
    result_ = reconcile_ ? reconcile_(max_cycles_, n_) : max_cycles_;
    arrived_ = 0;
    max_cycles_ = 0;
    ++generation_;
    cv_.notify_all();
    return result_;
  }

  const std::uint64_t my_generation = generation_;
  cv_.wait(lock, [&] { return generation_ != my_generation || poisoned_; });
  if (poisoned_) throw Error("barrier poisoned: a PE terminated abnormally");
  return result_;
}

void ClockSyncBarrier::poison() {
  const std::lock_guard<std::mutex> lock(mutex_);
  poisoned_ = true;
  cv_.notify_all();
}

bool ClockSyncBarrier::poisoned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

}  // namespace xbgas
