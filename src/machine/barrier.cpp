#include "machine/barrier.hpp"

#include <algorithm>
#include <chrono>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "fault/injector.hpp"
#include "machine/fiber.hpp"
#include "machine/machine.hpp"

namespace xbgas {

namespace {

/// Combining-tree radix: 8 keeps the tree at most 4 levels deep for 1024
/// participants while spreading arrivals over n/8 leaf cache lines.
constexpr int kRadix = 8;

/// Barrier enter/exit events for the calling PE, if it is an SPMD context
/// with tracing bound. a = modeled algorithm, b = modeled exchange rounds.
void trace_barrier(EventKind kind, std::uint64_t at_cycles, int n) {
  PeContext* pe = current_pe_context();
  if (pe == nullptr || !pe->trace().enabled()) return;
  const auto algorithm = static_cast<std::uint64_t>(
      pe->machine().config().net.barrier_algorithm);
  const std::uint64_t rounds =
      n > 1 ? ceil_log2(static_cast<std::uint64_t>(n)) : 0;
  pe->trace().record_at(at_cycles, kind, -1, algorithm, rounds);
}

std::string rank_list(const std::vector<int>& ranks) {
  std::string out = "[";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(ranks[i]);
  }
  return out + "]";
}

std::size_t tree_node_count(int n, std::vector<std::size_t>& offsets,
                            std::vector<int>& widths) {
  std::size_t total = 0;
  int width = (n + kRadix - 1) / kRadix;  // leaves
  for (;;) {
    offsets.push_back(total);
    widths.push_back(width);
    total += static_cast<std::size_t>(width);
    if (width == 1) break;
    width = (width + kRadix - 1) / kRadix;
  }
  return total;
}

void fetch_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_release,
                            std::memory_order_relaxed)) {
  }
}

}  // namespace

ClockSyncBarrier::ClockSyncBarrier(int n_participants, Reconcile reconcile,
                                   std::uint64_t watchdog_ms,
                                   std::vector<int> member_ranks)
    : n_(n_participants),
      reconcile_(std::move(reconcile)),
      watchdog_ms_(watchdog_ms),
      member_ranks_(std::move(member_ranks)),
      nodes_(tree_node_count(std::max(n_participants, 1), level_offset_,
                             level_width_)),
      arrived_slots_(static_cast<std::size_t>(std::max(n_participants, 1))) {
  XBGAS_CHECK(n_participants >= 1, "barrier needs >= 1 participant");
}

int ClockSyncBarrier::fanin(std::size_t level, std::size_t idx) const {
  const int children =
      level == 0 ? n_ : level_width_[level - 1];
  const int first = static_cast<int>(idx) * kRadix;
  return std::min(kRadix, children - first);
}

bool ClockSyncBarrier::combine(int ticket, std::uint64_t& carry) {
  std::size_t idx = static_cast<std::size_t>(ticket) / kRadix;
  for (std::size_t level = 0;; ++level, idx /= kRadix) {
    TreeNode& node = nodes_[level_offset_[level] + idx];
    fetch_max(node.max_cycles, carry);
    // The RMW chain on count orders every sibling's max contribution before
    // the last arriver's read below.
    if (node.count.fetch_add(1, std::memory_order_acq_rel) + 1 <
        fanin(level, idx)) {
      return false;
    }
    carry = node.max_cycles.load(std::memory_order_acquire);
    if (level + 1 == level_offset_.size()) return true;  // completed the root
  }
}

std::uint64_t ClockSyncBarrier::release(std::uint64_t tree_max) {
  // Every other participant has contributed its arrival and is parked in
  // await_release (polling the generation word or sleeping on cv_) — the
  // quiescence window the hook contract promises.
  if (all_arrived_) all_arrived_();
  const std::uint64_t res = reconcile_ ? reconcile_(tree_max, n_) : tree_max;
  // Reset the tree for the next generation BEFORE publishing this one:
  // no new arrival can reach the tree until some waiter observes the
  // generation advance, and that acquire/release pair orders the resets.
  for (TreeNode& node : nodes_) {
    node.count.store(0, std::memory_order_relaxed);
    node.max_cycles.store(0, std::memory_order_relaxed);
  }
  tickets_.store(0, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    result_ = res;
    generation_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  return res;
}

std::uint64_t ClockSyncBarrier::await_release(std::uint64_t my_gen) {
  const bool on_fiber = FiberScheduler::on_fiber();
  const auto deadline =
      watchdog_ms_ == 0
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::milliseconds(watchdog_ms_);
  for (;;) {
    if (generation_.load(std::memory_order_acquire) != my_gen) {
      // A completed rendezvous is a completed rendezvous: if this waiter's
      // generation closed before a poison landed, it leaves normally and
      // observes the poison at its *next* arrival. Only a generation that
      // can never complete throws. This keeps survivor unwind points
      // deterministic — every PE finishes exactly the barriers that fully
      // rendezvoused before a death, regardless of wakeup timing.
      return result_;
    }
    if (poisoned_flag_.load(std::memory_order_acquire)) {
      if (generation_.load(std::memory_order_acquire) != my_gen) {
        return result_;
      }
      throw_poisoned();
    }
    if (watchdog_ms_ != 0 && std::chrono::steady_clock::now() >= deadline) {
      watchdog_expired();
    }
    if (on_fiber) {
      // N:M invariant: never block the worker — park cooperatively; the
      // scheduler always re-runs us, so no wakeup can be lost.
      FiberScheduler::yield_waiting();
    } else {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto released = [&] {
        return generation_.load(std::memory_order_acquire) != my_gen ||
               poisoned_flag_.load(std::memory_order_acquire);
      };
      if (watchdog_ms_ == 0) {
        cv_.wait(lock, released);
      } else {
        cv_.wait_until(lock, deadline, released);
      }
    }
  }
}

std::uint64_t ClockSyncBarrier::arrive_and_wait(std::uint64_t my_cycles) {
  trace_barrier(EventKind::kBarrierEnter, my_cycles, n_);
  PeContext* pe = current_pe_context();
  const int my_rank = pe != nullptr ? pe->rank() : -1;

  if (poisoned_flag_.load(std::memory_order_acquire)) throw_poisoned();

  // Generation must be captured before the ticket: a legitimate arrival
  // causally follows the previous generation's release, so this load can
  // never observe a stale generation.
  const std::uint64_t my_gen = generation_.load(std::memory_order_acquire);
  const int ticket = tickets_.fetch_add(1, std::memory_order_acq_rel);
  XBGAS_CHECK(ticket < n_,
              "barrier over-subscribed: more arrivals than participants in "
              "one generation");
  arrived_slots_[static_cast<std::size_t>(ticket)].store(
      my_rank, std::memory_order_relaxed);

  std::uint64_t carry = my_cycles;
  std::uint64_t r;
  if (combine(ticket, carry)) {
    r = release(carry);
  } else {
    r = await_release(my_gen);
  }
  trace_barrier(EventKind::kBarrierExit, r, n_);
  return r;
}

void ClockSyncBarrier::throw_poisoned() {
  // Copy out before throwing: another thread may poison again (no-op) or
  // read the info concurrently.
  BarrierPoison p;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    p = poison_;
  }
  if (p.failed_rank >= 0) throw PeFailedError(p.reason, p.failed_rank);
  if (p.timeout) throw BarrierTimeoutError(p.reason, p.arrived, p.missing);
  throw Error(p.reason.empty()
                  ? "barrier poisoned: a PE terminated abnormally"
                  : p.reason);
}

void ClockSyncBarrier::watchdog_expired() {
  // Watchdog fired: some participants never arrived. Poison with the full
  // rendezvous roster so the hang becomes a diagnosis, then throw like
  // every other waiter will.
  BarrierPoison info;
  info.timeout = true;
  const int n_arrived =
      std::min(tickets_.load(std::memory_order_acquire), n_);
  for (int i = 0; i < n_arrived; ++i) {
    info.arrived.push_back(
        arrived_slots_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed));
  }
  if (!member_ranks_.empty()) {
    for (const int r : member_ranks_) {
      if (std::find(info.arrived.begin(), info.arrived.end(), r) ==
          info.arrived.end()) {
        info.missing.push_back(r);
      }
    }
  }
  info.reason = strfmt(
      "barrier watchdog: %d of %d participants arrived within %llu ms; "
      "arrived ranks %s, missing ranks %s",
      n_arrived, n_, static_cast<unsigned long long>(watchdog_ms_),
      rank_list(info.arrived).c_str(),
      member_ranks_.empty() ? "(unknown)" : rank_list(info.missing).c_str());
  poison(std::move(info));
  PeContext* pe = current_pe_context();
  if (pe != nullptr) {
    pe->machine().fault_injector().counters().barrier_timeouts.fetch_add(
        1, std::memory_order_relaxed);
    pe->trace().record(EventKind::kBarrierTimeout, -1,
                       static_cast<std::uint64_t>(n_arrived),
                       static_cast<std::uint64_t>(n_));
  }
  throw_poisoned();
}

void ClockSyncBarrier::poison() { poison(BarrierPoison{}); }

void ClockSyncBarrier::poison(BarrierPoison info) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_flag_.load(std::memory_order_relaxed)) {
      poison_ = std::move(info);
      poisoned_flag_.store(true, std::memory_order_release);
    }
  }
  cv_.notify_all();
}

bool ClockSyncBarrier::poisoned() const {
  return poisoned_flag_.load(std::memory_order_acquire);
}

BarrierPoison ClockSyncBarrier::poison_info() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return poison_;
}

bool ClockSyncBarrier::excludes_rank(int rank) const {
  // member_ranks_ is const after construction: no lock needed.
  if (member_ranks_.empty()) return false;
  return std::find(member_ranks_.begin(), member_ranks_.end(), rank) ==
         member_ranks_.end();
}

}  // namespace xbgas
