#include "machine/barrier.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "machine/machine.hpp"

namespace xbgas {

namespace {

/// Barrier enter/exit events for the calling PE, if it is an SPMD thread
/// with tracing bound. a = modeled algorithm, b = modeled exchange rounds.
void trace_barrier(EventKind kind, std::uint64_t at_cycles, int n) {
  PeContext* pe = current_pe_context();
  if (pe == nullptr || !pe->trace().enabled()) return;
  const auto algorithm = static_cast<std::uint64_t>(
      pe->machine().config().net.barrier_algorithm);
  const std::uint64_t rounds =
      n > 1 ? ceil_log2(static_cast<std::uint64_t>(n)) : 0;
  pe->trace().record_at(at_cycles, kind, -1, algorithm, rounds);
}

}  // namespace

ClockSyncBarrier::ClockSyncBarrier(int n_participants, Reconcile reconcile)
    : n_(n_participants), reconcile_(std::move(reconcile)) {
  XBGAS_CHECK(n_participants >= 1, "barrier needs >= 1 participant");
}

std::uint64_t ClockSyncBarrier::arrive_and_wait(std::uint64_t my_cycles) {
  trace_barrier(EventKind::kBarrierEnter, my_cycles, n_);
  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) throw Error("barrier poisoned: a PE terminated abnormally");

  max_cycles_ = std::max(max_cycles_, my_cycles);
  if (++arrived_ == n_) {
    // Last arriver: reconcile, open the next generation, release everyone.
    result_ = reconcile_ ? reconcile_(max_cycles_, n_) : max_cycles_;
    arrived_ = 0;
    max_cycles_ = 0;
    ++generation_;
    cv_.notify_all();
    const std::uint64_t r = result_;
    lock.unlock();
    trace_barrier(EventKind::kBarrierExit, r, n_);
    return r;
  }

  const std::uint64_t my_generation = generation_;
  cv_.wait(lock, [&] { return generation_ != my_generation || poisoned_; });
  if (poisoned_) throw Error("barrier poisoned: a PE terminated abnormally");
  const std::uint64_t r = result_;
  lock.unlock();
  trace_barrier(EventKind::kBarrierExit, r, n_);
  return r;
}

void ClockSyncBarrier::poison() {
  const std::lock_guard<std::mutex> lock(mutex_);
  poisoned_ = true;
  cv_.notify_all();
}

bool ClockSyncBarrier::poisoned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

}  // namespace xbgas
