#pragma once

// ClockSyncBarrier — the rendezvous primitive under every xbrtime barrier.
//
// Besides synchronizing threads, the barrier is where simulated time is
// reconciled: each participant arrives with its SimClock value; the last
// arriver runs a reconcile callback (normally NetworkModel::reconcile_phase,
// which folds in shared-fabric serialization and the barrier's own modeled
// cost) and every participant leaves with the agreed post-barrier clock.
//
// The barrier can be *poisoned* when a PE dies with an exception: all
// current and future waiters throw instead of deadlocking, letting
// Machine::run unwind the whole SPMD region and rethrow the original error.
//
// Implementation: mutex + condvar sense/generation barrier. The host may be
// heavily oversubscribed (PEs >> cores), so sleeping waiters beat spinners.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace xbgas {

class ClockSyncBarrier {
 public:
  using Reconcile = std::function<std::uint64_t(std::uint64_t max_cycles, int n)>;

  /// `reconcile` may be empty, in which case the barrier result is simply
  /// the max of the participants' clocks.
  explicit ClockSyncBarrier(int n_participants, Reconcile reconcile = {});

  /// Block until all participants arrive; returns the reconciled clock.
  /// Throws xbgas::Error if the barrier is (or becomes) poisoned.
  std::uint64_t arrive_and_wait(std::uint64_t my_cycles);

  /// Wake every waiter with an error. Safe to call from any thread.
  void poison();

  bool poisoned() const;

  int participants() const { return n_; }

 private:
  const int n_;
  Reconcile reconcile_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t max_cycles_ = 0;
  std::uint64_t result_ = 0;
  bool poisoned_ = false;
};

}  // namespace xbgas
