#pragma once

// ClockSyncBarrier — the rendezvous primitive under every xbrtime barrier.
//
// Besides synchronizing threads, the barrier is where simulated time is
// reconciled: each participant arrives with its SimClock value; the last
// arriver runs a reconcile callback (normally NetworkModel::reconcile_phase,
// which folds in shared-fabric serialization and the barrier's own modeled
// cost) and every participant leaves with the agreed post-barrier clock.
//
// Failure semantics (docs/RESILIENCE.md):
//
//  * The barrier can be *poisoned* when a PE dies with an exception: all
//    current and future waiters throw instead of deadlocking, letting
//    Machine::run unwind the whole SPMD region. A poison carries its cause —
//    when a PE death triggered it, waiters throw PeFailedError naming the
//    dead rank (the team fail-fast protocol); a generic poison throws plain
//    xbgas::Error, preserving the original behavior.
//
//  * An optional *watchdog* (FaultConfig::barrier_timeout_ms, host time)
//    bounds how long a participant may wait. When it fires, the waiter
//    poisons the barrier itself and every participant throws
//    BarrierTimeoutError listing which ranks arrived and which never did —
//    a hang becomes a diagnosis.
//
// Implementation: mutex + condvar sense/generation barrier. The host may be
// heavily oversubscribed (PEs >> cores), so sleeping waiters beat spinners.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "fault/errors.hpp"

namespace xbgas {

/// Why a barrier was poisoned; decides which exception waiters throw.
struct BarrierPoison {
  std::string reason;     ///< full diagnostic message (empty = generic)
  int failed_rank = -1;   ///< >= 0: a PE died -> waiters throw PeFailedError
  bool timeout = false;   ///< watchdog fired -> waiters throw BarrierTimeoutError
  std::vector<int> arrived;  ///< world ranks that reached the rendezvous
  std::vector<int> missing;  ///< world ranks that never arrived (if known)
};

class ClockSyncBarrier {
 public:
  using Reconcile = std::function<std::uint64_t(std::uint64_t max_cycles, int n)>;
  using AllArrived = std::function<void()>;

  /// `reconcile` may be empty, in which case the barrier result is simply
  /// the max of the participants' clocks. `watchdog_ms` (host milliseconds,
  /// 0 = off) bounds each wait; `member_ranks`, when provided, is the world
  /// ranks of the expected participants, used only to name missing ranks in
  /// watchdog diagnostics.
  explicit ClockSyncBarrier(int n_participants, Reconcile reconcile = {},
                            std::uint64_t watchdog_ms = 0,
                            std::vector<int> member_ranks = {});

  /// Install a hook the last arriver runs under the barrier mutex, while
  /// every other participant is still blocked in the rendezvous. XbrSan uses
  /// this to join the members' vector clocks at the only moment the join is
  /// both race-free and exact (every member quiescent). Keep it cheap: it
  /// executes inside the critical section of every barrier crossing.
  void set_all_arrived_hook(AllArrived hook) { all_arrived_ = std::move(hook); }

  /// Block until all participants arrive; returns the reconciled clock.
  /// Throws (per BarrierPoison) if the barrier is or becomes poisoned, and
  /// BarrierTimeoutError if this waiter's watchdog fires first.
  std::uint64_t arrive_and_wait(std::uint64_t my_cycles);

  /// Wake every waiter with a generic error. Safe to call from any thread.
  void poison();

  /// Wake every waiter with a typed cause. The first poison wins; later
  /// calls only re-notify.
  void poison(BarrierPoison info);

  bool poisoned() const;

  /// Copy of the poison diagnostics (meaningful only when poisoned()).
  BarrierPoison poison_info() const;

  /// True iff the member roster is known and `rank` is not on it — i.e. this
  /// barrier can provably never be blocked by `rank`. A barrier constructed
  /// without `member_ranks` conservatively reports false for every rank.
  bool excludes_rank(int rank) const;

  int participants() const { return n_; }

 private:
  [[noreturn]] void throw_poisoned_locked() const;

  const int n_;
  Reconcile reconcile_;
  AllArrived all_arrived_;
  const std::uint64_t watchdog_ms_;
  const std::vector<int> member_ranks_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::vector<int> arrived_ranks_;  ///< world ranks in the open generation
  std::uint64_t generation_ = 0;
  std::uint64_t max_cycles_ = 0;
  std::uint64_t result_ = 0;
  bool poisoned_ = false;
  BarrierPoison poison_;
};

}  // namespace xbgas
