#pragma once

// ClockSyncBarrier — the rendezvous primitive under every xbrtime barrier.
//
// Besides synchronizing PE contexts, the barrier is where simulated time is
// reconciled: each participant arrives with its SimClock value; the last
// arriver runs a reconcile callback (normally NetworkModel::reconcile_phase,
// which folds in shared-fabric serialization and the barrier's own modeled
// cost) and every participant leaves with the agreed post-barrier clock.
//
// Arrival is a radix-8 *combining tree* (docs/SCALING.md): each arriver
// folds its clock into a leaf node with two atomic operations; the last
// arriver at a node carries the node's max up one level, so the critical
// path from first arrival to release is O(log_8 n) combining steps and no
// arrival ever takes the barrier mutex. The old central mutex+counter
// serialized all n arrivals through one critical section — measurable at
// 12 PEs, prohibitive at 1024. Release is a single generation word every
// waiter observes (sense-reversal broadcast).
//
// Waiting is execution-model aware: a PE fiber must never block its worker
// thread (the N:M scheduler invariant, src/machine/fiber.hpp), so fiber
// waiters poll the generation word and yield_waiting() between probes —
// re-run by the scheduler, they can never miss a wakeup. Plain host threads
// (tests, legacy "threads" mode) sleep on the condition variable exactly as
// before.
//
// Failure semantics (docs/RESILIENCE.md), unchanged from the thread-per-PE
// implementation:
//
//  * The barrier can be *poisoned* when a PE dies with an exception: all
//    current and future waiters throw instead of deadlocking, letting
//    Machine::run unwind the whole SPMD region. A poison carries its cause —
//    when a PE death triggered it, waiters throw PeFailedError naming the
//    dead rank (the team fail-fast protocol); a generic poison throws plain
//    xbgas::Error. A generation that fully rendezvoused before the poison
//    landed still completes normally — survivor unwind points stay
//    deterministic.
//
//  * An optional *watchdog* (FaultConfig::barrier_timeout_ms, host time)
//    bounds how long a participant may wait. When it fires, the waiter
//    poisons the barrier itself and every participant throws
//    BarrierTimeoutError listing which ranks arrived and which never did —
//    a hang becomes a diagnosis.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "fault/errors.hpp"

namespace xbgas {

/// Why a barrier was poisoned; decides which exception waiters throw.
struct BarrierPoison {
  std::string reason;     ///< full diagnostic message (empty = generic)
  int failed_rank = -1;   ///< >= 0: a PE died -> waiters throw PeFailedError
  bool timeout = false;   ///< watchdog fired -> waiters throw BarrierTimeoutError
  std::vector<int> arrived;  ///< world ranks that reached the rendezvous
  std::vector<int> missing;  ///< world ranks that never arrived (if known)
};

class ClockSyncBarrier {
 public:
  using Reconcile = std::function<std::uint64_t(std::uint64_t max_cycles, int n)>;
  using AllArrived = std::function<void()>;

  /// `reconcile` may be empty, in which case the barrier result is simply
  /// the max of the participants' clocks. `watchdog_ms` (host milliseconds,
  /// 0 = off) bounds each wait; `member_ranks`, when provided, is the world
  /// ranks of the expected participants, used only to name missing ranks in
  /// watchdog diagnostics.
  explicit ClockSyncBarrier(int n_participants, Reconcile reconcile = {},
                            std::uint64_t watchdog_ms = 0,
                            std::vector<int> member_ranks = {});

  /// Install a hook the last arriver runs while every other participant is
  /// still parked in the rendezvous (fiber waiters only poll the release
  /// word; they touch no shared state). XbrSan uses this to join the
  /// members' vector clocks at the only moment the join is both race-free
  /// and exact (every member quiescent). Keep it cheap: it executes on the
  /// release critical path of every barrier crossing.
  void set_all_arrived_hook(AllArrived hook) { all_arrived_ = std::move(hook); }

  /// Block until all participants arrive; returns the reconciled clock.
  /// Throws (per BarrierPoison) if the barrier is or becomes poisoned, and
  /// BarrierTimeoutError if this waiter's watchdog fires first.
  std::uint64_t arrive_and_wait(std::uint64_t my_cycles);

  /// Wake every waiter with a generic error. Safe to call from any thread.
  void poison();

  /// Wake every waiter with a typed cause. The first poison wins; later
  /// calls only re-notify.
  void poison(BarrierPoison info);

  bool poisoned() const;

  /// Copy of the poison diagnostics (meaningful only when poisoned()).
  BarrierPoison poison_info() const;

  /// True iff the member roster is known and `rank` is not on it — i.e. this
  /// barrier can provably never be blocked by `rank`. A barrier constructed
  /// without `member_ranks` conservatively reports false for every rank.
  bool excludes_rank(int rank) const;

  int participants() const { return n_; }

 private:
  /// One combining-tree node, cache-line isolated so sibling arrivals don't
  /// false-share.
  struct alignas(64) TreeNode {
    std::atomic<int> count{0};
    std::atomic<std::uint64_t> max_cycles{0};
  };

  /// Number of direct children of node `idx` at `level` (tickets feed the
  /// leaves, level k-1 nodes feed level k).
  int fanin(std::size_t level, std::size_t idx) const;

  /// Climb the combining tree with this arrival's clock. Returns true when
  /// the caller completed the root (the release duty is theirs) and leaves
  /// the tree-wide max in `carry`.
  bool combine(int ticket, std::uint64_t& carry);

  /// Winner-only: run hook + reconcile, reset the tree, publish the next
  /// generation, wake condvar waiters. Returns the reconciled clock.
  std::uint64_t release(std::uint64_t tree_max);

  /// Waiter: poll (fiber) or sleep (thread) until the generation advances
  /// past `my_gen`, poison lands, or the watchdog expires.
  std::uint64_t await_release(std::uint64_t my_gen);

  [[noreturn]] void throw_poisoned();
  [[noreturn]] void watchdog_expired();

  const int n_;
  Reconcile reconcile_;
  AllArrived all_arrived_;
  const std::uint64_t watchdog_ms_;
  const std::vector<int> member_ranks_;

  // -- Lock-free arrival state --
  // level_offset_/level_width_ are declared (hence constructed) before
  // nodes_: the constructor's tree-shape computation fills them while
  // initializing nodes_.
  std::vector<std::size_t> level_offset_;  ///< first node of each level
  std::vector<int> level_width_;           ///< nodes per level
  std::vector<TreeNode> nodes_;            ///< level-major combining tree
  std::atomic<int> tickets_{0};            ///< arrival order within generation
  std::vector<std::atomic<int>> arrived_slots_;  ///< rank per ticket (diagnostics)
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> poisoned_flag_{false};
  /// Reconciled clock of the latest closed generation. Plain: written before
  /// the generation_ release-store, read after its acquire-load.
  std::uint64_t result_ = 0;

  // -- Slow paths (poison, watchdog diagnostics, condvar waiters) --
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  BarrierPoison poison_;
};

}  // namespace xbgas
