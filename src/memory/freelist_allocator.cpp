#include "memory/freelist_allocator.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace xbgas {

FreeListAllocator::FreeListAllocator(std::size_t region_bytes)
    : region_bytes_(region_bytes) {
  XBGAS_CHECK(region_bytes > 0, "allocator region must be non-empty");
  free_.emplace(0, region_bytes);
}

std::optional<std::size_t> FreeListAllocator::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = kAlignment;
  bytes = align_up(bytes, kAlignment);
  // First fit in address order: deterministic across PEs by construction.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const auto [offset, size] = *it;
    if (size < bytes) continue;
    free_.erase(it);
    if (size > bytes) free_.emplace(offset + bytes, size - bytes);
    allocated_.emplace(offset, bytes);
    bytes_in_use_ += bytes;
    return offset;
  }
  return std::nullopt;
}

void FreeListAllocator::release(std::size_t offset) {
  const auto it = allocated_.find(offset);
  XBGAS_CHECK(it != allocated_.end(), "release of unallocated offset");
  std::size_t size = it->second;
  allocated_.erase(it);
  bytes_in_use_ -= size;

  // Coalesce with successor.
  auto next = free_.lower_bound(offset);
  if (next != free_.end() && offset + size == next->first) {
    size += next->second;
    next = free_.erase(next);
  }
  // Coalesce with predecessor.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return;
    }
  }
  free_.emplace(offset, size);
}

std::size_t FreeListAllocator::allocation_size(std::size_t offset) const {
  const auto it = allocated_.find(offset);
  XBGAS_CHECK(it != allocated_.end(), "allocation_size of unallocated offset");
  return it->second;
}

bool FreeListAllocator::is_live(std::size_t offset) const {
  return allocated_.contains(offset);
}

std::size_t FreeListAllocator::largest_free_block() const {
  std::size_t best = 0;
  for (const auto& [offset, size] : free_) best = std::max(best, size);
  return best;
}

std::vector<std::pair<std::size_t, std::size_t>>
FreeListAllocator::live_blocks() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(allocated_.size());
  for (const auto& [offset, size] : allocated_) out.emplace_back(offset, size);
  return out;
}

}  // namespace xbgas
