#pragma once

// MemoryArena — one PE's simulated physical memory.
//
// The arena is a single aligned allocation carved into the Figure-2 layout:
//
//   +--------------------+---------------------------+
//   | private segment    | symmetric shared segment  |
//   +--------------------+---------------------------+
//   ^ base()             ^ shared_base()
//
// Remote memory operations translate (object ID, local address) pairs into a
// peer arena via the OLB: peer_address = peer.shared_base() + shared_offset.

#include <cstddef>
#include <memory>

#include "memory/layout.hpp"

namespace xbgas {

class MemoryArena {
 public:
  explicit MemoryArena(const MemoryLayout& layout);

  MemoryArena(const MemoryArena&) = delete;
  MemoryArena& operator=(const MemoryArena&) = delete;
  MemoryArena(MemoryArena&&) = default;
  MemoryArena& operator=(MemoryArena&&) = default;

  std::byte* base() { return storage_.get(); }
  const std::byte* base() const { return storage_.get(); }
  std::size_t size() const { return layout_.total_bytes(); }

  std::byte* private_base() { return storage_.get(); }
  std::size_t private_size() const { return layout_.private_bytes; }

  std::byte* shared_base() { return storage_.get() + layout_.private_bytes; }
  const std::byte* shared_base() const {
    return storage_.get() + layout_.private_bytes;
  }
  std::size_t shared_size() const { return layout_.shared_bytes; }

  const MemoryLayout& layout() const { return layout_; }

  /// True iff [p, p+len) lies wholly inside this arena.
  bool contains(const void* p, std::size_t len) const;

  /// True iff [p, p+len) lies wholly inside the symmetric shared segment.
  bool in_shared(const void* p, std::size_t len) const;

  /// Offset of `p` from the shared-segment base. Throws if p is not in the
  /// shared segment — callers rely on this to reject non-symmetric addresses
  /// in remote operations.
  std::size_t shared_offset_of(const void* p) const;

  /// Address at a given offset from the shared-segment base.
  std::byte* shared_at(std::size_t offset);
  const std::byte* shared_at(std::size_t offset) const;

 private:
  MemoryLayout layout_;
  std::unique_ptr<std::byte[]> storage_;
};

}  // namespace xbgas
