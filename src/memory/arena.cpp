#include "memory/arena.hpp"

#include <cstdint>

#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace xbgas {

namespace {

/// Overflow-safe "[p, p+len) lies wholly inside [seg, seg+seg_len)" on
/// integer addresses. Relational comparison of raw pointers into different
/// complete objects is unspecified, and `p + len` can wrap for huge spans —
/// both bite exactly when callers probe arbitrary host pointers (test stack
/// buffers, near-end spans), so the containment test must be integer-domain.
bool range_within(const void* p, std::size_t len, const std::byte* seg,
                  std::size_t seg_len) {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const auto lo = reinterpret_cast<std::uintptr_t>(seg);
  if (a < lo) return false;
  const std::uintptr_t delta = a - lo;
  return delta <= seg_len && len <= seg_len - delta;
}

}  // namespace

MemoryArena::MemoryArena(const MemoryLayout& layout)
    : layout_(layout),
      storage_(std::make_unique<std::byte[]>(layout.total_bytes())) {
  XBGAS_CHECK(layout.total_bytes() > 0, "arena must be non-empty");
}

bool MemoryArena::contains(const void* p, std::size_t len) const {
  return range_within(p, len, base(), size());
}

bool MemoryArena::in_shared(const void* p, std::size_t len) const {
  return range_within(p, len, shared_base(), shared_size());
}

std::size_t MemoryArena::shared_offset_of(const void* p) const {
  XBGAS_CHECK(in_shared(p, 0),
              "address is not in the symmetric shared segment");
  return static_cast<std::size_t>(static_cast<const std::byte*>(p) -
                                  shared_base());
}

std::byte* MemoryArena::shared_at(std::size_t offset) {
  XBGAS_CHECK(offset <= shared_size(), "shared offset out of range");
  return shared_base() + offset;
}

const std::byte* MemoryArena::shared_at(std::size_t offset) const {
  XBGAS_CHECK(offset <= shared_size(), "shared offset out of range");
  return shared_base() + offset;
}

}  // namespace xbgas
