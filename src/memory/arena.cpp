#include "memory/arena.hpp"

#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace xbgas {

MemoryArena::MemoryArena(const MemoryLayout& layout)
    : layout_(layout),
      storage_(std::make_unique<std::byte[]>(layout.total_bytes())) {
  XBGAS_CHECK(layout.total_bytes() > 0, "arena must be non-empty");
}

bool MemoryArena::contains(const void* p, std::size_t len) const {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= base() && b + len <= base() + size();
}

bool MemoryArena::in_shared(const void* p, std::size_t len) const {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= shared_base() && b + len <= shared_base() + shared_size();
}

std::size_t MemoryArena::shared_offset_of(const void* p) const {
  XBGAS_CHECK(in_shared(p, 0),
              "address is not in the symmetric shared segment");
  return static_cast<std::size_t>(static_cast<const std::byte*>(p) -
                                  shared_base());
}

std::byte* MemoryArena::shared_at(std::size_t offset) {
  XBGAS_CHECK(offset <= shared_size(), "shared offset out of range");
  return shared_base() + offset;
}

const std::byte* MemoryArena::shared_at(std::size_t offset) const {
  XBGAS_CHECK(offset <= shared_size(), "shared offset out of range");
  return shared_base() + offset;
}

}  // namespace xbgas
