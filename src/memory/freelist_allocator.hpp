#pragma once

// FreeListAllocator — deterministic first-fit allocator over a byte region.
//
// The symmetric heap relies on one property above all others: if every PE
// performs the *same sequence* of allocate/release calls, every PE's
// allocator hands back the *same offsets*. First-fit over an ordered free
// list with eager coalescing is fully deterministic, so running one instance
// per PE (no sharing, no locks) keeps the shared segments symmetric — the
// Cray SHMEM-style discipline described in paper §3.3.
//
// Metadata lives out-of-band (ordered maps keyed by offset), so the managed
// region itself contains only user data; a stray remote write can corrupt
// user data but never the allocator, which keeps failure modes diagnosable.

#include <cstddef>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace xbgas {

class FreeListAllocator {
 public:
  static constexpr std::size_t kAlignment = 16;

  explicit FreeListAllocator(std::size_t region_bytes);

  /// Allocate `bytes` (rounded up to kAlignment); returns the offset into the
  /// region, or nullopt when no free block fits.
  std::optional<std::size_t> allocate(std::size_t bytes);

  /// Release a previously allocated offset. Throws on double free / bad ptr.
  void release(std::size_t offset);

  /// Size originally requested for a live allocation (rounded up).
  std::size_t allocation_size(std::size_t offset) const;
  bool is_live(std::size_t offset) const;

  std::size_t region_bytes() const { return region_bytes_; }
  std::size_t bytes_in_use() const { return bytes_in_use_; }
  std::size_t live_allocations() const { return allocated_.size(); }

  /// Largest currently allocatable request (for exhaustion tests).
  std::size_t largest_free_block() const;

  /// Every live allocation as (offset, bytes), ascending by offset — the
  /// deterministic enumeration xbr_checkpoint snapshots.
  std::vector<std::pair<std::size_t, std::size_t>> live_blocks() const;

 private:
  std::size_t region_bytes_;
  std::size_t bytes_in_use_ = 0;
  std::map<std::size_t, std::size_t> free_;       // offset -> size
  std::map<std::size_t, std::size_t> allocated_;  // offset -> size
};

}  // namespace xbgas
