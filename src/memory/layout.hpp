#pragma once

// Per-PE memory layout (paper Figure 2): every processing element owns one
// physically-private arena split into a private segment and a symmetric
// shared segment. Shared allocations are made collectively and land at the
// same offset from the shared-segment base on every PE, which is what makes
// one-sided remote addressing work.

#include <cstddef>

namespace xbgas {

struct MemoryLayout {
  /// Bytes of PE-private memory (runtime scratch, reduce l_buff, ...).
  std::size_t private_bytes = std::size_t{8} << 20;
  /// Bytes of symmetric shared memory (xbrtime_malloc arena).
  std::size_t shared_bytes = std::size_t{64} << 20;

  std::size_t total_bytes() const { return private_bytes + shared_bytes; }
};

}  // namespace xbgas
