#pragma once

// The paper's typed collective entry points (§4.3-§4.6):
//
//   xbrtime_TYPENAME_broadcast(dest, src, nelems, stride, root)
//   xbrtime_TYPENAME_reduce_OP(dest, src, nelems, stride, root)
//       OP in {sum, prod, min, max} for all 24 Table-1 types, plus
//       {and, or, xor} for the non-floating-point types (§4.4)
//   xbrtime_TYPENAME_scatter(dest, src, pe_msgs, pe_disp, nelems, root)
//   xbrtime_TYPENAME_gather(dest, src, pe_msgs, pe_disp, nelems, root)
//
// The paper's prototypes print `int *pe_msgs[]`; the algorithms treat them
// as flat int[n_pes] arrays, so these take `const int*` (DESIGN.md §7).

#include <cstddef>

#include "xbrtime/types.hpp"

namespace xbgas {

#define XBGAS_DECLARE_COLL(NAME, TYPE)                                      \
  void xbrtime_##NAME##_broadcast(TYPE* dest, const TYPE* src,              \
                                  std::size_t nelems, int stride,           \
                                  int root);                                \
  void xbrtime_##NAME##_reduce_sum(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root);                               \
  void xbrtime_##NAME##_reduce_prod(TYPE* dest, const TYPE* src,            \
                                    std::size_t nelems, int stride,         \
                                    int root);                              \
  void xbrtime_##NAME##_reduce_min(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root);                               \
  void xbrtime_##NAME##_reduce_max(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root);                               \
  void xbrtime_##NAME##_scatter(TYPE* dest, const TYPE* src,                \
                                const int* pe_msgs, const int* pe_disp,     \
                                std::size_t nelems, int root);              \
  void xbrtime_##NAME##_gather(TYPE* dest, const TYPE* src,                 \
                               const int* pe_msgs, const int* pe_disp,      \
                               std::size_t nelems, int root);

XBGAS_FOREACH_TYPE(XBGAS_DECLARE_COLL)

#undef XBGAS_DECLARE_COLL

#define XBGAS_DECLARE_COLL_BITWISE(NAME, TYPE)                              \
  void xbrtime_##NAME##_reduce_and(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root);                               \
  void xbrtime_##NAME##_reduce_or(TYPE* dest, const TYPE* src,              \
                                  std::size_t nelems, int stride,           \
                                  int root);                                \
  void xbrtime_##NAME##_reduce_xor(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root);

XBGAS_FOREACH_INT_TYPE(XBGAS_DECLARE_COLL_BITWISE)

#undef XBGAS_DECLARE_COLL_BITWISE

}  // namespace xbgas
