#pragma once

// Multi-level hierarchical collectives — the generalization of the old
// two-level hierarchical.hpp to an arbitrary-depth level stack (paper §7:
// "location aware communication optimization using the xBGAS OLB",
// following XHC-OpenMPI's per-level design).
//
// A HierShape is a strictly-ascending divisibility chain of group widths
// [g_0 < g_1 < ... < g_top], each dividing the next and g_top dividing (and
// strictly less than) the world size. PEs whose world rank is ≡ 0 modulo a
// level's sub-group width are that level's *leaders*; the stack of teams is
//
//   top:      Team(0, g_top, n/g_top)             — one leader per g_top PEs
//   level i:  Team((me/g_i)*g_i, g_{i-1}, g_i/g_{i-1})   (g_{-1} := 1)
//
// so a broadcast crosses the expensive outer links once per outer group and
// fans out over progressively cheaper links, and a reduce runs the mirror
// bottom-up. Every level runs the k-nomial schedule from schedule.hpp with
// a tunable radix (radix 2 is the paper's binomial tree), and
// synchronization is scoped to the level's Team — no world barriers, so
// disjoint subtrees of the hierarchy proceed independently.
//
// Happens-before is carried by the Team machinery: the constructor
// rendezvous plus per-stage team barriers chain transitively through the
// leader ranks, which is exactly the order the data dependencies follow.
// The root→top-leader handoff uses a two-member Team for the same reason
// (the put is ordered by the pair's barrier, and the root never writes its
// own dest — that write belongs to its innermost-level sender).
//
// Every entry point has a `pipelined` form (internal hops issued as chunked
// nonblocking transfers, chunk size tunable) and a `defer_tail` form (the
// innermost level's final stage skips its barrier so the caller — the nbi
// dispatch layer — can return a live CollReq whose wait() is the fence).

#include <algorithm>
#include <cstddef>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/schedule.hpp"
#include "collectives/team.hpp"

namespace xbgas {

/// Shape of the level stack plus the per-level transfer tuning knobs.
/// `groups` empty means flat (depth 1): one k-nomial tree over the world.
struct HierShape {
  std::vector<int> groups;  ///< ascending widths; see validate_hier_shape
  int radix = 2;            ///< k-nomial tree degree at every level
  std::size_t chunk = 0;    ///< pipelined chunk elements (0 = heuristic)
};

/// Throws xbgas::Error unless `shape` is valid for an n-PE world: radix ≥ 2
/// and `groups` (possibly empty) strictly ascending with entries ≥ 2, each
/// dividing the next, the last dividing n and strictly less than n.
void validate_hier_shape(const HierShape& shape, int n_pes);

namespace detail {

/// One level of the stack as seen by world rank `me`. Teams are
/// (start, stride, size) in world ranks; `member` is whether `me`
/// participates at this level.
struct HierLevel {
  int start;
  int stride;
  int size;
  bool member;
};

/// The level stack for `me`, ordered top (widest links) to innermost.
/// `groups` must already be validated and non-empty.
std::vector<HierLevel> hier_levels(const std::vector<int>& groups, int n_pes,
                                   int me);

// Defined in nbi.cpp (observability: coll.pipeline.chunks).
void note_pipeline_chunks(std::size_t n);

/// Chunk count for pipelined internal hops. With no explicit chunk size the
/// heuristic is one chunk per 512 elements capped at 8 (small messages stay
/// one transfer, huge ones don't drown in injection costs); an explicit
/// `chunk_elems` — the tuner's knob — is honored up to 64 chunks.
constexpr std::size_t pipeline_chunks(std::size_t nelems,
                                      std::size_t chunk_elems = 0) {
  return chunk_elems == 0
             ? std::clamp<std::size_t>(nelems / 512, 1, 8)
             : std::clamp<std::size_t>((nelems + chunk_elems - 1) /
                                           chunk_elems,
                                       1, 64);
}

/// One internal pipelined hop: the (nelems, stride) transfer split into
/// pipeline_chunks() nonblocking pieces (NbTrack::kInternal — timing only,
/// the enclosing collective owns the hazard contract).
template <class T>
void nbi_put_chunks(T* dest, const T* src, std::size_t nelems, int stride,
                    int world_pe, std::size_t chunk_elems = 0) {
  const std::size_t nc = pipeline_chunks(nelems, chunk_elems);
  for (std::size_t c = 0; c < nc; ++c) {
    const std::size_t lo = nelems * c / nc;
    const std::size_t hi = nelems * (c + 1) / nc;
    if (hi > lo) {
      const std::size_t at = lo * static_cast<std::size_t>(stride);
      rma_transfer(dest + at, src + at, sizeof(T), hi - lo, stride, world_pe,
                   /*remote_is_dest=*/true, /*nonblocking=*/true,
                   /*atomic_elems=*/false, NbTrack::kInternal);
    }
  }
  note_pipeline_chunks(nc);
}

template <class T>
void nbi_get_chunks(T* dest, const T* src, std::size_t nelems, int stride,
                    int world_pe, std::size_t chunk_elems = 0) {
  const std::size_t nc = pipeline_chunks(nelems, chunk_elems);
  for (std::size_t c = 0; c < nc; ++c) {
    const std::size_t lo = nelems * c / nc;
    const std::size_t hi = nelems * (c + 1) / nc;
    if (hi > lo) {
      const std::size_t at = lo * static_cast<std::size_t>(stride);
      rma_transfer(dest + at, src + at, sizeof(T), hi - lo, stride, world_pe,
                   /*remote_is_dest=*/false, /*nonblocking=*/true,
                   /*atomic_elems=*/false, NbTrack::kInternal);
    }
  }
  note_pipeline_chunks(nc);
}

// -- Single-level k-nomial primitives (any Communicator) --------------------

/// Top-down k-nomial broadcast over `comm` with the xbgas::broadcast
/// contract. With `defer_last` the FINAL stage's puts are left unfenced for
/// the caller (nbi tail); every earlier stage barriers as usual.
template <class T>
void knomial_broadcast(T* dest, const T* src, std::size_t nelems, int stride,
                       int root, int radix, Communicator& comm,
                       bool pipelined = false, bool defer_last = false,
                       std::size_t chunk = 0) {
  const int vr = collective_prologue(comm, root, stride);
  const int n = comm.n_pes();
  if (vr == 0 && nelems > 0 && dest != src) {
    xbr_put(dest, src, nelems, stride, comm.world_rank(comm.rank()));
  }
  if (n == 1) return;

  PeContext& ctx = xbrtime_ctx();
  const auto edges = knomial_broadcast_schedule(n, radix);
  const int stages = knomial_stages(n, radix);
  std::size_t e = 0;
  for (int s = 0; s < stages; ++s) {
    ctx.trace().record(EventKind::kStageBegin, -1,
                       static_cast<std::uint64_t>(s),
                       static_cast<std::uint64_t>(radix));
    for (; e < edges.size() && edges[e].stage == s; ++e) {
      if (edges[e].from_vrank != vr || nelems == 0) continue;
      const int lpart = logical_rank(edges[e].to_vrank, root, n);
      const T* from = (vr == 0) ? src : dest;
      if (pipelined) {
        nbi_put_chunks(dest, from, nelems, stride, comm.world_rank(lpart),
                       chunk);
      } else {
        xbr_put(dest, from, nelems, stride, comm.world_rank(lpart));
      }
    }
    if (!(defer_last && s == stages - 1)) comm.barrier();
    ctx.trace().record(EventKind::kStageEnd, -1,
                       static_cast<std::uint64_t>(s),
                       static_cast<std::uint64_t>(radix));
  }
}

/// Bottom-up k-nomial reduction over a symmetric CONTIGUOUS partial buffer
/// (each PE's `part` holds its packed contribution on entry; the team's
/// vrank-0 PE holds the combined result on return). Pipelined gets land
/// host-side at issue, so the combine overlaps the modeled flight and each
/// stage settles to max(transfer, combine) at its barrier.
template <class Op, class T>
void knomial_reduce_part(T* part, std::size_t nelems, int root, int radix,
                         Communicator& comm, bool pipelined = false,
                         std::size_t chunk = 0) {
  const int vr = collective_prologue(comm, root, /*stride=*/1);
  const int n = comm.n_pes();
  comm.barrier();  // all parts settled before any parent pulls
  if (n == 1) return;

  PeContext& ctx = xbrtime_ctx();
  std::vector<T> land(nelems);
  const auto edges = knomial_reduce_schedule(n, radix);
  const int stages = knomial_stages(n, radix);
  std::size_t e = 0;
  for (int s = 0; s < stages; ++s) {
    ctx.trace().record(EventKind::kStageBegin, -1,
                       static_cast<std::uint64_t>(s),
                       static_cast<std::uint64_t>(radix));
    for (; e < edges.size() && edges[e].stage == s; ++e) {
      if (edges[e].to_vrank != vr || nelems == 0) continue;
      const int lpart = logical_rank(edges[e].from_vrank, root, n);
      if (pipelined) {
        nbi_get_chunks(land.data(), part, nelems, 1, comm.world_rank(lpart),
                       chunk);
      } else {
        xbr_get(land.data(), part, nelems, 1, comm.world_rank(lpart));
      }
      for (std::size_t j = 0; j < nelems; ++j) {
        part[j] = Op::apply(part[j], land[j]);
      }
      ctx.clock().advance(kReduceOpCycles * nelems);
    }
    comm.barrier();  // parent's combined part visible to the next stage
    ctx.trace().record(EventKind::kStageEnd, -1,
                       static_cast<std::uint64_t>(s),
                       static_cast<std::uint64_t>(radix));
  }
}

/// k-nomial reduction with the xbgas::reduce contract (dest meaningful on
/// the comm-rank `root` only, src untouched): pack into a symmetric
/// contiguous partial, climb the tree, unpack at the root.
template <class Op, class T>
void knomial_reduce(T* dest, const T* src, std::size_t nelems, int stride,
                    int root, int radix, Communicator& comm,
                    bool pipelined = false, std::size_t chunk = 0) {
  T* part = static_cast<T*>(
      collective_staging_alloc(sizeof(T), std::max<std::size_t>(nelems, 1)));
  for (std::size_t j = 0; j < nelems; ++j) {
    part[j] = src[j * static_cast<std::size_t>(stride)];
  }
  knomial_reduce_part<Op>(part, nelems, root, radix, comm, pipelined, chunk);
  if (comm.rank() == root) {
    for (std::size_t j = 0; j < nelems; ++j) {
      dest[j * static_cast<std::size_t>(stride)] = part[j];
    }
  }
  collective_staging_free(part);
}

/// Bottom-up k-nomial block gather for fcollect. Team rank r is world PE
/// `start + r*sub` and enters holding the `sub` world-rank blocks
/// [start + r*sub, start + (r+1)*sub) contiguously in its own dest; team
/// rank 0 exits holding all `size*sub` blocks. Gets are self-symmetric
/// (dest offset == src offset), mirroring gather (Algorithm 4).
template <class T>
void knomial_gather_blocks(T* dest, std::size_t per, int start, int sub,
                           int radix, Communicator& comm) {
  const int m = comm.n_pes();
  const int vr = comm.rank();  // rooted at team rank 0: no vrank remap
  comm.barrier();  // lower-level accumulations settled before pulls
  if (m == 1) return;

  PeContext& ctx = xbrtime_ctx();
  const auto edges = knomial_reduce_schedule(m, radix);
  const int stages = knomial_stages(m, radix);
  std::size_t e = 0;
  long long width = 1;  // accumulated subtree width (team ranks) at stage s
  for (int s = 0; s < stages; ++s) {
    ctx.trace().record(EventKind::kStageBegin, -1,
                       static_cast<std::uint64_t>(s),
                       static_cast<std::uint64_t>(radix));
    for (; e < edges.size() && edges[e].stage == s; ++e) {
      if (edges[e].to_vrank != vr || per == 0) continue;
      const int child = edges[e].from_vrank;
      const long long got = std::min<long long>(width, m - child);
      const std::size_t off =
          (static_cast<std::size_t>(start) +
           static_cast<std::size_t>(child) * static_cast<std::size_t>(sub)) *
          per;
      xbr_get(dest + off, dest + off,
              static_cast<std::size_t>(got) * static_cast<std::size_t>(sub) *
                  per,
              1, comm.world_rank(child));
    }
    comm.barrier();
    width *= radix;
    ctx.trace().record(EventKind::kStageEnd, -1,
                       static_cast<std::uint64_t>(s),
                       static_cast<std::uint64_t>(radix));
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Multi-level entry points (world communicator; same contracts as the flat
// collectives over the whole world)
// ---------------------------------------------------------------------------

/// Hierarchical broadcast. With `defer_tail` the innermost level's final
/// stage is left unfenced — the caller owns the fence (CollReq::wait).
template <class T>
void hier_broadcast(T* dest, const T* src, std::size_t nelems, int stride,
                    int root, const HierShape& shape, bool pipelined = false,
                    bool defer_tail = false) {
  PeContext& ctx = xbrtime_ctx();
  const int n = ctx.n_pes();
  validate_hier_shape(shape, n);
  if (shape.groups.empty()) {
    detail::knomial_broadcast(dest, src, nelems, stride, root, shape.radix,
                              world_comm(), pipelined, defer_tail,
                              shape.chunk);
    return;
  }

  const int me = ctx.rank();
  const int g_top = shape.groups.back();
  const int top_leader = (root / g_top) * g_top;

  // Handoff: the payload enters the level stack at the root's top-level
  // leader. The root does NOT write its own dest — that write belongs to
  // its innermost-level sender (avoiding a racy double write); instead it
  // puts src straight into the leader's dest, ordered by the pair barrier.
  if (me == root || me == top_leader) {
    if (root == top_leader) {
      if (me == root && nelems > 0 && dest != src) {
        xbr_put(dest, src, nelems, stride, me);
      }
    } else {
      Team pair(top_leader, root - top_leader, 2);
      if (me == root && nelems > 0) {
        xbr_put(dest, src, nelems, stride, top_leader);
      }
      pair.barrier();  // leader's dest primed before it fans out
    }
  }

  const auto levels = detail::hier_levels(shape.groups, n, me);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const auto& lv = levels[l];
    if (!lv.member) continue;
    const bool innermost = l + 1 == levels.size();
    Team team(lv.start, lv.stride, lv.size);
    const int team_root = l == 0 ? top_leader / g_top : 0;
    detail::knomial_broadcast(dest, dest, nelems, stride, team_root,
                              shape.radix, team, pipelined,
                              defer_tail && innermost, shape.chunk);
  }
}

/// Hierarchical reduction: packed partials climb the level stack bottom-up;
/// `dest` is meaningful only on `root` (and may be private).
template <class Op, class T>
void hier_reduce(T* dest, const T* src, std::size_t nelems, int stride,
                 int root, const HierShape& shape, bool pipelined = false) {
  PeContext& ctx = xbrtime_ctx();
  const int n = ctx.n_pes();
  validate_hier_shape(shape, n);
  const int me = ctx.rank();

  if (shape.groups.empty()) {
    detail::knomial_reduce<Op>(dest, src, nelems, stride, root, shape.radix,
                               world_comm(), pipelined, shape.chunk);
    return;
  }

  T* part = static_cast<T*>(detail::collective_staging_alloc(
      sizeof(T), std::max<std::size_t>(nelems, 1)));
  for (std::size_t j = 0; j < nelems; ++j) {
    part[j] = src[j * static_cast<std::size_t>(stride)];
  }

  const int g_top = shape.groups.back();
  const int top_leader = (root / g_top) * g_top;
  const auto levels = detail::hier_levels(shape.groups, n, me);
  for (std::size_t l = levels.size(); l-- > 0;) {
    const auto& lv = levels[l];
    if (!lv.member) continue;
    Team team(lv.start, lv.stride, lv.size);
    const int team_root = l == 0 ? top_leader / g_top : 0;
    detail::knomial_reduce_part<Op>(part, nelems, team_root, shape.radix,
                                    team, pipelined, shape.chunk);
  }

  // Handoff: combined result moves from the top-level leader to the root's
  // symmetric part (identical staging histories keep the offsets aligned),
  // bracketed by the pair's barriers for both hazard directions.
  if (root != top_leader && (me == root || me == top_leader)) {
    Team pair(top_leader, root - top_leader, 2);
    if (me == top_leader && nelems > 0) {
      xbr_put(part, part, nelems, 1, root);
    }
    pair.barrier();  // root reads its part only after the leader's put
  }
  if (me == root) {
    for (std::size_t j = 0; j < nelems; ++j) {
      dest[j * static_cast<std::size_t>(stride)] = part[j];
    }
  }
  detail::collective_staging_free(part);
}

/// Hierarchical allreduce: reduce to world rank 0 then broadcast back down.
template <class Op, class T>
void hier_reduce_all(T* dest, const T* src, std::size_t nelems, int stride,
                     const HierShape& shape, bool pipelined = false,
                     bool defer_tail = false) {
  hier_reduce<Op>(dest, src, nelems, stride, /*root=*/0, shape, pipelined);
  hier_broadcast(dest, dest, nelems, stride, /*root=*/0, shape, pipelined,
                 defer_tail);
}

/// Hierarchical fcollect: per-PE blocks climb the level stack (block gather
/// to world rank 0), then the concatenation broadcasts back down.
template <class T>
void hier_fcollect(T* dest, const T* src, std::size_t nelems_per_pe,
                   const HierShape& shape, bool pipelined = false,
                   bool defer_tail = false) {
  PeContext& ctx = xbrtime_ctx();
  const int n = ctx.n_pes();
  validate_hier_shape(shape, n);
  const int me = ctx.rank();
  const std::size_t per = nelems_per_pe;
  const std::size_t total = per * static_cast<std::size_t>(n);

  if (per > 0 && dest + static_cast<std::size_t>(me) * per != src) {
    xbr_put(dest + static_cast<std::size_t>(me) * per, src, per, 1, me);
  }

  if (shape.groups.empty()) {
    Communicator& world = world_comm();
    detail::knomial_gather_blocks(dest, per, /*start=*/0, /*sub=*/1,
                                  shape.radix, world);
    detail::knomial_broadcast(dest, dest, total, /*stride=*/1, /*root=*/0,
                              shape.radix, world, pipelined, defer_tail,
                              shape.chunk);
    return;
  }

  const auto levels = detail::hier_levels(shape.groups, n, me);
  for (std::size_t l = levels.size(); l-- > 0;) {
    const auto& lv = levels[l];
    if (!lv.member) continue;
    Team team(lv.start, lv.stride, lv.size);
    detail::knomial_gather_blocks(dest, per, lv.start, lv.stride, shape.radix,
                                  team);
  }
  hier_broadcast(dest, dest, total, /*stride=*/1, /*root=*/0, shape,
                 pipelined, defer_tail);
}

// ---------------------------------------------------------------------------
// Legacy two-level entry point (compatibility shim over hier_broadcast)
// ---------------------------------------------------------------------------

/// Two-level broadcast with the same contract as xbgas::broadcast over the
/// whole world. `group_size` must divide the world size evenly; 1 or
/// world-size degrade to the plain binomial tree.
template <class T>
void hierarchical_broadcast(T* dest, const T* src, std::size_t nelems,
                            int stride, int root, int group_size) {
  const int n = xbrtime_ctx().n_pes();
  XBGAS_CHECK(group_size >= 1 && n % group_size == 0,
              "group_size must divide the PE count");
  if (group_size == 1 || group_size == n) {
    broadcast(dest, src, nelems, stride, root);
    return;
  }
  hier_broadcast(dest, src, nelems, stride, root,
                 HierShape{{group_size}, /*radix=*/2, /*chunk=*/0});
}

}  // namespace xbgas
