#pragma once

// xbr_checkpoint / xbr_restore — collective heap snapshots that make PE
// deaths survivable with bounded data loss (docs/RESILIENCE.md).
//
// xbr_checkpoint snapshots every live symmetric-heap allocation of every
// member into the machine's CheckpointStore (the simulation's stand-in for
// survivor-replicated remote storage; the modeled cost charges the
// replication traffic). The collective staging scratch is excluded — it is
// runtime-internal and reset on recovery anyway.
//
// xbr_restore, typically run on a shrunken team after a death, does two
// things: (1) every member restores its own latest snapshot in place, and
// (2) the snapshots of *orphans* — failed ranks that checkpointed but are
// not on the team — are re-sharded deterministically across the survivors
// (orphan i, ascending by rank, lands on team rank i % n) and handed back in
// the RestoreReport so the application can fold the lost ranks' data into
// its own structures. The assignment is pure arithmetic over the roster, so
// every survivor computes the identical mapping without communication.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collectives/comm.hpp"
#include "fault/checkpoint_store.hpp"

namespace xbgas {

/// One orphaned snapshot block assigned to the calling PE by xbr_restore.
struct OrphanShard {
  int world_rank = -1;      ///< the failed rank that owned the data
  std::size_t offset = 0;   ///< its shared-segment offset at checkpoint time
  std::vector<std::byte> data;
};

/// What xbr_restore did on the calling PE.
struct RestoreReport {
  std::uint64_t version = 0;        ///< snapshot version restored (0 = none)
  std::uint64_t restored_bytes = 0; ///< own bytes copied back into the heap
  std::uint64_t orphan_bytes = 0;   ///< orphan bytes assigned to this PE
  std::vector<OrphanShard> orphans; ///< this PE's share of orphaned data
};

/// Collective over `comm`: snapshot every member's live symmetric-heap
/// allocations (staging excluded) into the checkpoint store. Returns the
/// new snapshot version (identical on every member).
std::uint64_t xbr_checkpoint(Communicator& comm);
std::uint64_t xbr_checkpoint();

/// Collective over `comm`: restore each member's own latest snapshot in
/// place (blocks whose allocation no longer matches are skipped) and deal
/// out failed non-members' snapshots round-robin across the team.
RestoreReport xbr_restore(Communicator& comm);
RestoreReport xbr_restore();

}  // namespace xbgas
