#include "collectives/tuner.hpp"

#include <limits>

#include "collectives/ops.hpp"
#include "machine/machine.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace {

constexpr CollKind kAllKinds[] = {CollKind::kBroadcast, CollKind::kReduce,
                                  CollKind::kAllreduce, CollKind::kAllgather};

/// Run one candidate schedule for one (kind, size) point; every PE calls
/// this with identical arguments (SPMD).
void run_candidate(CollKind kind, const TuneCandidate& cand,
                   const HierShape& shape, std::size_t nelems,
                   std::size_t per, long* dest, long* src) {
  Communicator& world = world_comm();
  const std::size_t seg = detail::ring_segments_hint(nelems, cand.chunk);
  switch (cand.algo) {
    case CollAlgo::kRing:
      switch (kind) {
        case CollKind::kBroadcast:
          ring_broadcast(dest, src, nelems, 1, 0, world, seg);
          break;
        case CollKind::kReduce:
          ring_reduce<OpSum>(dest, src, nelems, 1, 0, world, seg);
          break;
        case CollKind::kAllreduce:
          ring_allreduce<OpSum>(dest, src, nelems, 1, world);
          break;
        case CollKind::kAllgather:
          ring_allgather(dest, src, per, world);
          break;
      }
      break;
    case CollAlgo::kHier:
      switch (kind) {
        case CollKind::kBroadcast:
          hier_broadcast(dest, src, nelems, 1, 0, shape);
          break;
        case CollKind::kReduce:
          hier_reduce<OpSum>(dest, src, nelems, 1, 0, shape);
          break;
        case CollKind::kAllreduce:
          hier_reduce_all<OpSum>(dest, src, nelems, 1, shape);
          break;
        case CollKind::kAllgather:
          hier_fcollect(dest, src, per, shape);
          break;
      }
      break;
    default:  // tree: the flat k-nomial schedules
      switch (kind) {
        case CollKind::kBroadcast:
          detail::knomial_broadcast(dest, src, nelems, 1, 0, cand.radix,
                                    world);
          break;
        case CollKind::kReduce:
          detail::knomial_reduce<OpSum>(dest, src, nelems, 1, 0, cand.radix,
                                        world);
          break;
        case CollKind::kAllreduce:
          detail::knomial_reduce<OpSum>(dest, src, nelems, 1, 0, cand.radix,
                                        world);
          detail::knomial_broadcast(dest, dest, nelems, 1, 0, cand.radix,
                                    world);
          break;
        case CollKind::kAllgather: {
          const int me = xbrtime_mype();
          if (per > 0) {
            xbr_put(dest + static_cast<std::size_t>(me) * per, src, per, 1,
                    me);
          }
          detail::knomial_gather_blocks(dest, per, /*start=*/0, /*sub=*/1,
                                        cand.radix, world);
          detail::knomial_broadcast(dest, dest,
                                    per * static_cast<std::size_t>(
                                              xbrtime_num_pes()),
                                    1, 0, cand.radix, world);
          break;
        }
      }
      break;
  }
}

}  // namespace

std::vector<TuneCandidate> default_tune_candidates(const MachineConfig& base) {
  const CollectivePolicy policy(base, CollAlgo::kTree);
  const bool hier_ok = policy.hier_eligible(CollKind::kBroadcast, base.n_pes);
  std::vector<TuneCandidate> cands;
  for (const int r : {2, 4, 8}) {
    cands.push_back(TuneCandidate{CollAlgo::kTree, r, 0});
  }
  if (base.n_pes >= 2) {
    for (const std::size_t c : {std::size_t{0}, std::size_t{256},
                                std::size_t{2048}}) {
      cands.push_back(TuneCandidate{CollAlgo::kRing, 2, c});
    }
  }
  if (hier_ok) {
    for (const int r : {2, 4, 8}) {
      cands.push_back(TuneCandidate{CollAlgo::kHier, r, 0});
    }
  }
  return cands;
}

TuneTable build_tune_table(const MachineConfig& base,
                           const std::vector<std::size_t>& sizes,
                           const std::vector<TuneCandidate>& candidates,
                           std::vector<TuneMeasurement>* measurements) {
  const auto n = static_cast<std::size_t>(base.n_pes);
  const CollectivePolicy probe(base, CollAlgo::kTree);
  const std::vector<int> groups = probe.hier_groups(base.n_pes);

  // Normalized points: allgather is keyed on the total concatenation.
  struct Point {
    CollKind kind;
    std::size_t nelems;  ///< total elements moved
    std::size_t per;     ///< per-PE elements (allgather only)
  };
  std::vector<Point> points;
  for (const CollKind kind : kAllKinds) {
    for (const std::size_t s : sizes) {
      if (kind == CollKind::kAllgather) {
        const std::size_t per = std::max<std::size_t>(s / n, 1);
        points.push_back(Point{kind, per * n, per});
      } else {
        points.push_back(Point{kind, s, 0});
      }
    }
  }

  std::size_t max_elems = 1;
  for (const auto& p : points) max_elems = std::max(max_elems, p.nelems);

  std::vector<std::vector<std::uint64_t>> cycles(
      candidates.size(), std::vector<std::uint64_t>(points.size(), 0));

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const TuneCandidate& cand = candidates[c];
    MachineConfig config = base;
    config.coll_algo = "tree";  // dispatch is bypassed: schedules run direct
    Machine machine(config);
    std::vector<std::uint64_t>& row = cycles[c];
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      auto* dest = static_cast<long*>(
          xbrtime_malloc(max_elems * sizeof(long)));
      auto* src = static_cast<long*>(
          xbrtime_malloc(max_elems * sizeof(long)));
      for (std::size_t i = 0; i < max_elems; ++i) {
        src[i] = static_cast<long>(i + 1);
      }
      const HierShape shape{groups, cand.radix, cand.chunk};
      for (std::size_t p = 0; p < points.size(); ++p) {
        const Point& pt = points[p];
        // Warm once (forwarding sets, staging high-water), then measure.
        run_candidate(pt.kind, cand, shape, pt.nelems, pt.per, dest, src);
        xbrtime_barrier();
        const std::uint64_t t0 = pe.clock().cycles();
        run_candidate(pt.kind, cand, shape, pt.nelems, pt.per, dest, src);
        xbrtime_barrier();  // clocks meet: rank-0 delta is the makespan
        const std::uint64_t t1 = pe.clock().cycles();
        if (pe.rank() == 0) row[p] = t1 - t0;
      }
      xbrtime_free(src);
      xbrtime_free(dest);
      xbrtime_close();
    });
  }

  TuneTable table;
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::size_t best = candidates.size();
    std::uint64_t best_cycles = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (measurements != nullptr) {
        measurements->push_back(TuneMeasurement{
            points[p].kind, points[p].nelems,
            points[p].nelems * sizeof(long), candidates[c], cycles[c][p]});
      }
      if (cycles[c][p] < best_cycles) {
        best_cycles = cycles[c][p];
        best = c;
      }
    }
    if (best == candidates.size()) continue;
    const TuneCandidate& w = candidates[best];
    table.insert(TuneEntry{points[p].kind, base.n_pes,
                           points[p].nelems * sizeof(long), w.algo, w.radix,
                           w.chunk});
  }
  return table;
}

TuneTable build_tune_table(const MachineConfig& base,
                           const std::vector<std::size_t>& sizes,
                           std::vector<TuneMeasurement>* measurements) {
  return build_tune_table(base, sizes, default_tune_candidates(base),
                          measurements);
}

}  // namespace xbgas
