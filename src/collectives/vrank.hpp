#pragma once

// Logical <-> virtual rank remapping (paper §4.3, Table 2).
//
// Every collective assigns virtual ranks so the root is always virtual rank
// 0, with consecutive virtual ranks allocated in sequence by logical rank
// relative to the root:
//
//   vir_rank = log_rank >= root ? log_rank - root : log_rank + n_pes - root
//
// e.g. with 7 PEs and root 4 (the paper's worked example): logical
// 0,1,2,3,4,5,6 -> virtual 3,4,5,6,0,1,2.

#include "common/error.hpp"

namespace xbgas {

constexpr int virtual_rank(int log_rank, int root, int n_pes) {
  XBGAS_CHECK(n_pes >= 1, "n_pes must be >= 1");
  XBGAS_CHECK(log_rank >= 0 && log_rank < n_pes, "log_rank out of range");
  XBGAS_CHECK(root >= 0 && root < n_pes, "root out of range");
  return log_rank >= root ? log_rank - root : (log_rank + n_pes) - root;
}

constexpr int logical_rank(int vir_rank, int root, int n_pes) {
  XBGAS_CHECK(n_pes >= 1, "n_pes must be >= 1");
  XBGAS_CHECK(vir_rank >= 0 && vir_rank < n_pes, "vir_rank out of range");
  XBGAS_CHECK(root >= 0 && root < n_pes, "root out of range");
  return (vir_rank + root) % n_pes;
}

}  // namespace xbgas
