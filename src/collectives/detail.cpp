#include "collectives/collectives.hpp"

#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace {

/// WorldComm is stateless — every method reads the calling thread's runtime
/// context — so one instance serves all PEs.
class WorldComm final : public Communicator {
 public:
  int n_pes() const override { return xbrtime_num_pes(); }
  int rank() const override { return xbrtime_mype(); }
  int world_rank(int r) const override { return r; }
  void barrier() override { xbrtime_barrier(); }
};

WorldComm g_world;

}  // namespace

Communicator& world_comm() { return g_world; }

namespace detail {

void* collective_staging_alloc(std::size_t elem_size, std::size_t count) {
  return xbrtime_stage_alloc(elem_size * count);
}

void collective_staging_free(void* p) { xbrtime_stage_free(p); }

int collective_prologue(const Communicator& comm, int root, int stride) {
  XBGAS_CHECK(xbrtime_initialized(),
              "collectives require an initialized xbrtime runtime");
  const int n = comm.n_pes();
  const int me = comm.rank();
  XBGAS_CHECK(n >= 1, "communicator must have >= 1 PE");
  XBGAS_CHECK(me >= 0 && me < n,
              "calling PE is not a member of this communicator");
  XBGAS_CHECK(root >= 0 && root < n, "collective root out of range");
  XBGAS_CHECK(stride >= 1, "collective stride must be >= 1");
  return virtual_rank(me, root, n);
}

std::vector<std::size_t> adjusted_displacements(const Communicator& comm,
                                                const int* pe_msgs, int root) {
  const int n = comm.n_pes();
  XBGAS_CHECK(pe_msgs != nullptr, "pe_msgs must be non-null");
  std::vector<std::size_t> adj(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    const int lr = logical_rank(v, root, n);
    XBGAS_CHECK(pe_msgs[lr] >= 0, "pe_msgs entries must be non-negative");
    adj[static_cast<std::size_t>(v) + 1] =
        adj[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(pe_msgs[lr]);
  }
  return adj;
}

}  // namespace detail

}  // namespace xbgas
