#include "collectives/hierarchy.hpp"

#include "common/error.hpp"

namespace xbgas {

void validate_hier_shape(const HierShape& shape, int n_pes) {
  XBGAS_CHECK(n_pes >= 1, "hierarchy: world size must be >= 1");
  XBGAS_CHECK(shape.radix >= 2, "hierarchy: k-nomial radix must be >= 2");
  int prev = 1;
  for (const int g : shape.groups) {
    XBGAS_CHECK(g >= 2, "hierarchy: group widths must be >= 2");
    XBGAS_CHECK(g > prev, "hierarchy: group widths must be strictly ascending");
    XBGAS_CHECK(g % prev == 0,
                "hierarchy: each group width must divide the next");
    prev = g;
  }
  if (!shape.groups.empty()) {
    const int g_top = shape.groups.back();
    XBGAS_CHECK(n_pes % g_top == 0,
                "hierarchy: the widest group must divide the PE count");
    XBGAS_CHECK(g_top < n_pes,
                "hierarchy: the widest group must be smaller than the world "
                "(use an empty group list for a flat tree)");
  }
}

namespace detail {

std::vector<HierLevel> hier_levels(const std::vector<int>& groups, int n_pes,
                                   int me) {
  std::vector<HierLevel> levels;
  levels.reserve(groups.size() + 1);
  const int g_top = groups.back();
  levels.push_back(
      HierLevel{0, g_top, n_pes / g_top, me % g_top == 0});
  for (std::size_t i = groups.size(); i-- > 0;) {
    const int g = groups[i];
    const int sub = i == 0 ? 1 : groups[i - 1];
    levels.push_back(HierLevel{(me / g) * g, sub, g / sub, me % sub == 0});
  }
  return levels;
}

}  // namespace detail

}  // namespace xbgas
