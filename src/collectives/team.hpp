#pragma once

// Team — collectives over a subset of PEs (paper §7 future work:
// "integration of collective functionality between a subset of PEs").
//
// Teams follow the OpenSHMEM active-set convention: a team is the PEs
// { start, start + stride, ..., start + (size-1) * stride } in world ranks.
// Every member constructs the Team with identical parameters (SPMD
// discipline); the constructor rendezvouses members on a shared team
// barrier, which is registered with the Machine so a crashing PE poisons it
// rather than deadlocking teammates.
//
// Team barriers synchronize member clocks (max + modeled barrier cost) but
// deliberately do NOT reconcile the global fabric phase — that stays tied
// to world barriers so disjoint teams don't consume each other's traffic.

#include <memory>

#include "collectives/comm.hpp"
#include "machine/barrier.hpp"

namespace xbgas {

class Machine;

class Team final : public Communicator {
 public:
  /// Collective over the member PEs: each member constructs the Team with
  /// the same (start, stride, size). Throws if the calling PE is not a
  /// member or the active set does not fit in the world.
  Team(int start, int stride, int size);
  ~Team() override;

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  int n_pes() const override { return size_; }
  int rank() const override { return my_rank_; }
  int world_rank(int r) const override;
  void barrier() override;

  int start() const { return start_; }
  int stride() const { return stride_; }

  /// True if world rank `wr` belongs to this active set.
  bool contains_world_rank(int wr) const;

  /// Poison this team's barrier with a generic "revoked" cause (the ULFM
  /// MPI_Comm_revoke analogue): members blocked in — or later arriving at —
  /// the team barrier throw plain Error, distinguishable from a PE death.
  void revoke();

 private:
  int start_;
  int stride_;
  int size_;
  int my_rank_;
  Machine* machine_;
  std::shared_ptr<ClockSyncBarrier> barrier_;
};

}  // namespace xbgas
