#pragma once

// Non-blocking collectives: xbr_*_nbi variants of broadcast / reduce /
// allreduce / fcollect that return a CollReq instead of blocking on the
// final fence.
//
// Execution model: like the nbi RMA primitives they are built on, an nbi
// collective moves its bytes host-side during the call — per-stage barriers
// still order the dependent hops of the tree/ring schedules — and defers
// only the tail: the last hop's transfers are issued nonblocking and the
// final fence is CollReq::wait(). Between issue and wait the caller
// overlaps computation with the modeled in-flight time; XbrSan (full mode)
// keeps the result buffer "open" (kCollInFlight) so a premature RMA touch
// of it is diagnosed, not silently absorbed.
//
// Pipelining: every internal hop is issued as chunked nonblocking
// transfers (detail::pipeline_chunks picks the split), so within a stage
// the chunks overlap (the completion horizon is a max, not a sum) and the
// per-step cost of the ring allreduce becomes max(transfer, combine)
// instead of their sum — the communication/computation overlap the paper's
// blocking collectives leave on the table. Algorithm selection routes
// through the same CollectivePolicy dispatcher as the blocking forms
// (kCollDispatch events, coll.algo.* counters), so forced --coll-algo and
// the analytic model apply unchanged.
//
// Contract: every participating PE must call wait() on every CollReq, in
// the same order (SPMD discipline; waits may be out of issue order as long
// as they agree across PEs). A collective whose work completes inside the
// call (hierarchical, reduce-family, n == 1) returns an already-complete
// CollReq whose wait() is a no-op — callers treat every request uniformly.
// Any barrier is a full fence and also completes an in-flight collective;
// wait() stays mandatory for the modeled-time accounting and portability.

#include <cstddef>
#include <cstdint>

#include "collectives/policy.hpp"
#include "xbrtime/nbi.hpp"

namespace xbgas {

/// Process-wide nbi-collective counters (observability: coll.pipeline.*).
struct CollPipelineCounters {
  std::uint64_t collectives = 0;  ///< xbr_*_nbi calls issued
  std::uint64_t chunks = 0;       ///< internal pipelined transfer chunks
  std::uint64_t waits = 0;        ///< CollReq handles retired by wait()
};

CollPipelineCounters coll_pipeline_counters();
void reset_coll_pipeline_counters();

namespace detail {
void note_pipeline_collective();
void note_pipeline_chunks(std::size_t n);
void note_pipeline_wait();
}  // namespace detail

/// Handle to an in-flight nbi collective. Value-semantic; the default
/// instance is already complete. wait() completes ALL of the calling PE's
/// outstanding nonblocking traffic (it is a quiet) and synchronizes the
/// communicator — after it returns, every PE's result buffer is valid and
/// its XbrSan zone is closed.
class CollReq {
 public:
  CollReq() = default;
  explicit CollReq(Communicator* comm)
      : comm_(comm), done_(comm == nullptr) {}

  bool done() const { return done_; }

  void wait() {
    if (!waited_) {
      // Counted on the first wait() per handle — including already-complete
      // requests, so coll.pipeline.waits tracks the SPMD discipline (one
      // wait per issued collective), not which schedules happen to defer
      // their final fence.
      waited_ = true;
      detail::note_pipeline_wait();
    }
    if (done_) return;
    done_ = true;
    comm_->barrier();  // barriers are full fences: quiet + rendezvous
  }

 private:
  Communicator* comm_ = nullptr;
  bool done_ = true;
  bool waited_ = false;
};

namespace detail {

// pipeline_chunks / nbi_put_chunks / nbi_get_chunks live in
// collectives/hierarchy.hpp (via policy.hpp) so the hierarchy engine can
// share them; the tuner's chunk knob is their optional last argument.

/// Open the kCollInFlight zone over the caller's result buffer; closed by
/// CollReq::wait (or any other fence).
template <class T>
void open_coll_zone(const char* fn, T* dest, std::size_t nelems, int stride) {
  if (nelems == 0) return;
  PeContext& ctx = xbrtime_ctx();
  ctx.machine().sanitizer().note_coll_dest(
      fn, ctx.rank(), dest, strided_span(nelems, stride) * sizeof(T));
}

// -- Tree broadcast, chunk-pipelined, final fence deferred ------------------

template <class T>
CollReq tree_broadcast_nbi(T* dest, const T* src, std::size_t nelems,
                           int stride, int root, Communicator& comm) {
  const int vr = collective_prologue(comm, root, stride);
  const int n = comm.n_pes();
  if (vr == 0 && nelems > 0 && dest != src) {
    xbr_put(dest, src, nelems, stride, comm.world_rank(comm.rank()));
  }
  if (n == 1) return CollReq{};

  PeContext& ctx = xbrtime_ctx();
  const auto levels = ceil_log2(static_cast<std::uint64_t>(n));
  unsigned mask = (1u << levels) - 1u;
  const auto uvr = static_cast<unsigned>(vr);
  std::uint64_t stage = 0;
  for (int i = static_cast<int>(levels) - 1; i >= 0; --i) {
    mask ^= (1u << i);
    ctx.trace().record(EventKind::kStageBegin, -1, stage, mask);
    if ((uvr & mask) == 0 && (uvr & (1u << i)) == 0) {
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n;
      const int lpart = logical_rank(vpart, root, n);
      if (vr < vpart && nelems > 0) {
        const T* from = (vr == 0) ? src : dest;
        nbi_put_chunks(dest, from, nelems, stride, comm.world_rank(lpart));
      }
    }
    // Dependent stages are ordered by a barrier; the FINAL stage's fence is
    // CollReq::wait — the deferred tail that buys the overlap.
    if (i > 0) comm.barrier();
    ctx.trace().record(EventKind::kStageEnd, -1, stage, mask);
    ++stage;
  }
  open_coll_zone("xbr_broadcast_nbi", dest, nelems, stride);
  return CollReq{&comm};
}

// -- Ring broadcast, segmented, final fence deferred ------------------------

template <class T>
CollReq ring_broadcast_nbi(T* dest, const T* src, std::size_t nelems,
                           int stride, int root, Communicator& comm) {
  const int vr = collective_prologue(comm, root, stride);
  const int n = comm.n_pes();
  if (vr == 0 && nelems > 0 && dest != src) {
    xbr_put(dest, src, nelems, stride, comm.world_rank(comm.rank()));
  }
  comm.barrier();
  if (n == 1 || nelems == 0) return CollReq{};

  const std::size_t nseg = std::min(ring_default_segments(nelems), nelems);
  const int next_world =
      vr < n - 1 ? comm.world_rank(logical_rank(vr + 1, root, n)) : -1;

  const int total_steps = (n - 2) + static_cast<int>(nseg);
  for (int step = 0; step < total_steps; ++step) {
    const int s = step - vr;
    if (s >= 0 && s < static_cast<int>(nseg) && vr < n - 1) {
      const std::size_t lo = nelems * static_cast<std::size_t>(s) / nseg;
      const std::size_t hi = nelems * (static_cast<std::size_t>(s) + 1) / nseg;
      if (hi > lo) {
        const std::size_t at = lo * static_cast<std::size_t>(stride);
        rma_transfer(dest + at, dest + at, sizeof(T), hi - lo, stride,
                     next_world, /*remote_is_dest=*/true, /*nonblocking=*/true,
                     /*atomic_elems=*/false, NbTrack::kInternal);
        note_pipeline_chunks(1);
      }
    }
    if (step < total_steps - 1) comm.barrier();  // final fence is wait()
  }
  open_coll_zone("xbr_broadcast_nbi", dest, nelems, stride);
  return CollReq{&comm};
}

// -- Tree reduce, chunk-pipelined (complete at return) ----------------------

template <class Op, class T>
CollReq tree_reduce_nbi(T* dest, const T* src, std::size_t nelems, int stride,
                        int root, Communicator& comm) {
  const int vr = collective_prologue(comm, root, stride);
  const int n = comm.n_pes();
  const std::size_t span = strided_span(nelems, stride);

  T* s_buff = static_cast<T*>(collective_staging_alloc(sizeof(T), span));
  std::vector<T> l_buff(span);

  for (std::size_t j = 0; j < nelems; ++j) {
    const std::size_t at = j * static_cast<std::size_t>(stride);
    s_buff[at] = src[at];
  }
  comm.barrier();  // all s_buffs loaded before any partner pulls

  PeContext& ctx = xbrtime_ctx();
  const auto levels = ceil_log2(static_cast<std::uint64_t>(n));
  unsigned mask = (1u << levels) - 1u;
  const auto uvr = static_cast<unsigned>(vr);
  for (unsigned i = 0; i < levels; ++i) {
    mask ^= (1u << i);
    ctx.trace().record(EventKind::kStageBegin, -1, i, mask);
    if ((uvr | mask) == mask && (uvr & (1u << i)) == 0) {
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n;
      const int lpart = logical_rank(vpart, root, n);
      if (vr < vpart && nelems > 0) {
        // The chunked gets land host-side at issue, so the combine runs
        // while the modeled transfer is still in flight; the stage barrier
        // then settles to max(transfer, combine) instead of their sum.
        nbi_get_chunks(l_buff.data(), s_buff, nelems, stride,
                       comm.world_rank(lpart));
        for (std::size_t j = 0; j < nelems; ++j) {
          const std::size_t at = j * static_cast<std::size_t>(stride);
          s_buff[at] = Op::apply(s_buff[at], l_buff[at]);
        }
        ctx.clock().advance(kReduceOpCycles * nelems);
      }
    }
    comm.barrier();  // next stage's partner pulls our combined s_buff
    ctx.trace().record(EventKind::kStageEnd, -1, i, mask);
  }

  if (vr == 0) {
    for (std::size_t k = 0; k < nelems; ++k) {
      const std::size_t at = k * static_cast<std::size_t>(stride);
      dest[at] = s_buff[at];
    }
  }
  collective_staging_free(s_buff);
  return CollReq{};  // staging freed, result landed: complete at return
}

// -- Ring allreduce, pipelined (complete at return) -------------------------

template <class Op, class T>
CollReq ring_allreduce_nbi(T* dest, const T* src, std::size_t nelems,
                           int stride, Communicator& comm) {
  (void)collective_prologue(comm, /*root=*/0, stride);
  const int n = comm.n_pes();
  const int me = comm.rank();

  if (n == 1) {
    if (nelems > 0 && dest != src) {
      for (std::size_t j = 0; j < nelems; ++j) {
        const std::size_t at = j * static_cast<std::size_t>(stride);
        dest[at] = src[at];
      }
    }
    return CollReq{};
  }

  PeContext& ctx = xbrtime_ctx();
  T* acc = static_cast<T*>(
      collective_staging_alloc(sizeof(T), std::max<std::size_t>(nelems, 1)));
  pack_strided(acc, src, nelems, stride);
  const std::size_t max_chunk = nelems / static_cast<std::size_t>(n) + 1;
  std::vector<T> land(max_chunk);
  const int prev_world = comm.world_rank((me + n - 1) % n);
  comm.barrier();  // all accumulators loaded before any neighbour pulls

  // Reduce-scatter with deferred-completion pulls: the chunked get charges
  // only injection now, the combine runs during its modeled flight, and the
  // step barrier settles to max(transfer, combine) — the per-step win over
  // the blocking ring, which pays transfer + combine in sequence.
  for (int s = 0; s < n - 1; ++s) {
    const int c = ((me - 1 - s) % n + n) % n;
    const std::size_t lo = ring_chunk_lo(nelems, n, c);
    const std::size_t hi = ring_chunk_lo(nelems, n, c + 1);
    if (hi > lo) {
      nbi_get_chunks(land.data(), acc + lo, hi - lo, 1, prev_world);
      for (std::size_t k = 0; k < hi - lo; ++k) {
        acc[lo + k] = Op::apply(land[k], acc[lo + k]);
      }
      ctx.clock().advance(kReduceOpCycles * (hi - lo));
    }
    comm.barrier();
  }

  // Allgather: chunked nonblocking pulls, one barrier per step (the final
  // one is required — a neighbour may still be pulling from our acc, which
  // is about to be freed).
  for (int s = 0; s < n - 1; ++s) {
    const int c = ((me - s) % n + n) % n;
    const std::size_t lo = ring_chunk_lo(nelems, n, c);
    const std::size_t hi = ring_chunk_lo(nelems, n, c + 1);
    if (hi > lo) {
      nbi_get_chunks(acc + lo, acc + lo, hi - lo, 1, prev_world);
    }
    comm.barrier();
  }

  unpack_strided(dest, acc, nelems, stride);
  collective_staging_free(acc);
  return CollReq{};
}

// -- Ring allgather (fcollect), final fence deferred ------------------------

template <class T>
CollReq ring_allgather_nbi(T* dest, const T* src, std::size_t nelems_per_pe,
                           Communicator& comm) {
  (void)collective_prologue(comm, /*root=*/0, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  const std::size_t seg = nelems_per_pe;

  if (seg > 0 && dest + static_cast<std::size_t>(me) * seg != src) {
    xbr_put(dest + static_cast<std::size_t>(me) * seg, src, seg, 1,
            comm.world_rank(me));
  }
  comm.barrier();
  if (n == 1 || seg == 0) return CollReq{};

  const int prev_world = comm.world_rank((me + n - 1) % n);
  for (int s = 0; s < n - 1; ++s) {
    const auto c = static_cast<std::size_t>(((me - 1 - s) % n + n) % n);
    // Every pull reads a segment the previous step's barrier settled, so
    // the LAST step needs no trailing barrier: defer it to wait().
    nbi_get_chunks(dest + c * seg, dest + c * seg, seg, 1, prev_world);
    if (s < n - 2) comm.barrier();
  }
  open_coll_zone("xbr_fcollect_nbi", dest,
                 seg * static_cast<std::size_t>(n), 1);
  return CollReq{&comm};
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatching nbi entry points (CollectivePolicy-routed)
// ---------------------------------------------------------------------------

template <class T>
CollReq xbr_broadcast_nbi(T* dest, const T* src, std::size_t nelems,
                          int stride, int root,
                          Communicator& comm = world_comm()) {
  detail::note_pipeline_collective();
  const bool world = &comm == &world_comm();
  const CollDecision d = detail::resolve_and_record(
      CollKind::kBroadcast, comm.n_pes(), nelems, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      return detail::ring_broadcast_nbi(dest, src, nelems, stride, root, comm);
    case CollAlgo::kHier:
      // Chunked deferred-completion transfers down the level stack; the
      // innermost level's last stage stays unfenced so the returned request
      // is live (CollReq::wait is the fence).
      hier_broadcast(dest, src, nelems, stride, root,
                     active_collective_policy().hier_shape(comm.n_pes(),
                                                           d.radix, d.chunk),
                     /*pipelined=*/true, /*defer_tail=*/true);
      detail::open_coll_zone("xbr_broadcast_nbi", dest, nelems, stride);
      return CollReq{&comm};
    default:
      if (d.radix != 2) {
        detail::knomial_broadcast(dest, src, nelems, stride, root, d.radix,
                                  comm, /*pipelined=*/true,
                                  /*defer_last=*/true, d.chunk);
        if (comm.n_pes() == 1) return CollReq{};
        detail::open_coll_zone("xbr_broadcast_nbi", dest, nelems, stride);
        return CollReq{&comm};
      }
      return detail::tree_broadcast_nbi(dest, src, nelems, stride, root, comm);
  }
}

template <class Op, class T>
CollReq xbr_reduce_nbi(T* dest, const T* src, std::size_t nelems, int stride,
                       int root, Communicator& comm = world_comm()) {
  detail::note_pipeline_collective();
  const bool world = &comm == &world_comm();
  const CollDecision d = detail::resolve_and_record(
      CollKind::kReduce, comm.n_pes(), nelems, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      // ring_reduce is already a fully pipelined schedule (double-buffered
      // landing, deferred combine); it completes internally.
      ring_reduce<Op>(dest, src, nelems, stride, root, comm,
                      detail::ring_segments_hint(nelems, d.chunk));
      return CollReq{};
    case CollAlgo::kHier:
      // Pipelined up the level stack; the staging discipline makes this
      // complete at return (like the tree-reduce form).
      hier_reduce<Op>(dest, src, nelems, stride, root,
                      active_collective_policy().hier_shape(comm.n_pes(),
                                                            d.radix, d.chunk),
                      /*pipelined=*/true);
      return CollReq{};
    default:
      if (d.radix != 2) {
        detail::knomial_reduce<Op>(dest, src, nelems, stride, root, d.radix,
                                   comm, /*pipelined=*/true, d.chunk);
        return CollReq{};
      }
      return detail::tree_reduce_nbi<Op>(dest, src, nelems, stride, root,
                                         comm);
  }
}

template <class Op, class T>
CollReq xbr_reduce_all_nbi(T* dest, const T* src, std::size_t nelems,
                           int stride, Communicator& comm = world_comm()) {
  detail::note_pipeline_collective();
  const bool world = &comm == &world_comm();
  const CollDecision d = detail::resolve_and_record(
      CollKind::kAllreduce, comm.n_pes(), nelems, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      return detail::ring_allreduce_nbi<Op>(dest, src, nelems, stride, comm);
    case CollAlgo::kHier:
      // Reduce up then broadcast down the level stack, the broadcast tail
      // deferred: the returned request is live.
      hier_reduce_all<Op>(dest, src, nelems, stride,
                          active_collective_policy().hier_shape(
                              comm.n_pes(), d.radix, d.chunk),
                          /*pipelined=*/true, /*defer_tail=*/true);
      detail::open_coll_zone("xbr_reduce_all_nbi", dest, nelems, stride);
      return CollReq{&comm};
    default: {
      if (d.radix != 2) {
        detail::knomial_reduce<Op>(dest, src, nelems, stride, /*root=*/0,
                                   d.radix, comm, /*pipelined=*/true, d.chunk);
        detail::knomial_broadcast(dest, dest, nelems, stride, /*root=*/0,
                                  d.radix, comm, /*pipelined=*/true,
                                  /*defer_last=*/true, d.chunk);
        if (comm.n_pes() == 1) return CollReq{};
        detail::open_coll_zone("xbr_reduce_all_nbi", dest, nelems, stride);
        return CollReq{&comm};
      }
      CollReq r =
          detail::tree_reduce_nbi<Op>(dest, src, nelems, stride, 0, comm);
      r.wait();
      return detail::tree_broadcast_nbi(dest, dest, nelems, stride, 0, comm);
    }
  }
}

template <class T>
CollReq xbr_fcollect_nbi(T* dest, const T* src, std::size_t nelems_per_pe,
                         Communicator& comm = world_comm()) {
  detail::note_pipeline_collective();
  const int n = comm.n_pes();
  const bool world = &comm == &world_comm();
  const std::size_t total = nelems_per_pe * static_cast<std::size_t>(n);
  const CollDecision d = detail::resolve_and_record(CollKind::kAllgather, n,
                                                    total, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      return detail::ring_allgather_nbi(dest, src, nelems_per_pe, comm);
    case CollAlgo::kHier:
      hier_fcollect(dest, src, nelems_per_pe,
                    active_collective_policy().hier_shape(n, d.radix,
                                                          d.chunk),
                    /*pipelined=*/true, /*defer_tail=*/true);
      detail::open_coll_zone("xbr_fcollect_nbi", dest, total, 1);
      return CollReq{&comm};
    default: {
      if (d.radix != 2) {
        const int me = comm.rank();
        if (nelems_per_pe > 0 &&
            dest + static_cast<std::size_t>(me) * nelems_per_pe != src) {
          xbr_put(dest + static_cast<std::size_t>(me) * nelems_per_pe, src,
                  nelems_per_pe, 1, comm.world_rank(me));
        }
        detail::knomial_gather_blocks(dest, nelems_per_pe, /*start=*/0,
                                      /*sub=*/1, d.radix, comm);
        detail::knomial_broadcast(dest, dest, total, /*stride=*/1,
                                  /*root=*/0, d.radix, comm,
                                  /*pipelined=*/true, /*defer_last=*/true,
                                  d.chunk);
        if (n == 1) return CollReq{};
        detail::open_coll_zone("xbr_fcollect_nbi", dest, total, 1);
        return CollReq{&comm};
      }
      // The paper's composition: gather to rank 0, then pipelined broadcast.
      std::vector<int> msgs(static_cast<std::size_t>(n),
                            static_cast<int>(nelems_per_pe));
      std::vector<int> disp(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        disp[static_cast<std::size_t>(r)] =
            static_cast<int>(static_cast<std::size_t>(r) * nelems_per_pe);
      }
      gather(dest, src, msgs.data(), disp.data(), total, /*root=*/0, comm);
      return detail::tree_broadcast_nbi(dest, dest, total, /*stride=*/1,
                                        /*root=*/0, comm);
    }
  }
}

}  // namespace xbgas
