#pragma once

// Cost-model-driven collective algorithm selection — the layer the paper's
// §7 future work asks for once "algorithms optimized for larger message
// sizes" exist alongside the binomial tree. The repo now carries three
// algorithm families (tree in collectives.hpp, segmented ring in ring.hpp,
// locality-aware hierarchical in hierarchical.hpp); CollectivePolicy is the
// analytic latency–bandwidth model that picks between them per collective
// and per (n_pes, payload bytes) point, and the dispatch_* templates below
// are the call sites that consult it.
//
// The model is the classic alpha–beta decomposition parameterized from the
// machine's own NetCostParams (docs/COLLECTIVES.md derives the formulas):
//
//   message(b) = alpha + b * beta
//     alpha = OLB lookup + injection + mean_hops * per_hop + remote memory
//             + fabric per-message cost + header serialization
//     beta  = 1 / link_bytes_per_cycle
//   barrier(n) = NetCostParams::barrier_cycles(n)   (modeled exchange)
//   gamma      = cycles per reduced element (detail::kReduceOpCycles)
//
//   tree      ceil(log2 n) stages, the WHOLE payload per stage
//   ring      pipelined: (n-2)+S steps of B/S bytes (bcast/reduce) or
//             2(n-1) steps of B/n bytes (allreduce), n-1 steps (allgather)
//   hier      leaders-then-local two-level tree; only modeled when the
//             machine topology is a cluster (locality to exploit)
//
// Selection: MachineConfig::coll_algo ("auto" | "tree" | "ring" | "hier")
// forces a family or leaves the argmin of the model in charge; benches
// expose it as --coll-algo. Every dispatch bumps the process-wide
// coll.algo.<name> counters and records a kCollDispatch trace event.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "collectives/hierarchical.hpp"
#include "collectives/ring.hpp"

namespace xbgas {

/// Algorithm family. kAuto is only a *request* (forced() value); choose()
/// and the dispatchers always resolve to a concrete family.
enum class CollAlgo : std::uint8_t { kAuto = 0, kTree, kRing, kHier };
inline constexpr int kCollAlgoCount = 4;

/// The collective shapes the policy distinguishes.
enum class CollKind : std::uint8_t {
  kBroadcast = 0,
  kReduce,
  kAllreduce,
  kAllgather,
};
inline constexpr int kCollKindCount = 4;

const char* coll_algo_name(CollAlgo algo);
const char* coll_kind_name(CollKind kind);

/// Parse "auto" | "tree" | "ring" | "hier"; throws xbgas::Error otherwise.
CollAlgo parse_coll_algo(const std::string& name);

class CollectivePolicy {
 public:
  /// Default NetCostParams on a flat fabric, auto selection.
  CollectivePolicy();

  /// Parameterize from a machine configuration: wire costs from config.net,
  /// hop distances (and cluster grouping, when present) from
  /// config.topology_name, forced algorithm from config.coll_algo unless
  /// `forced` overrides it.
  explicit CollectivePolicy(const MachineConfig& config,
                            CollAlgo forced = CollAlgo::kAuto);

  CollAlgo forced() const { return forced_; }
  void set_forced(CollAlgo algo) { forced_ = algo; }

  /// Cluster group size from the topology (0 on non-cluster fabrics).
  int cluster_group() const { return cluster_group_; }

  // -- Analytic cost model (cycles; exposed for tests and the bench) --

  double message_cost(std::size_t bytes) const;
  double barrier_cost(int n_pes) const;
  double tree_cost(CollKind kind, int n_pes, std::size_t nelems,
                   std::size_t elem_size) const;
  double ring_cost(CollKind kind, int n_pes, std::size_t nelems,
                   std::size_t elem_size) const;
  /// +infinity unless `hier_eligible(kind, n_pes)`.
  double hier_cost(CollKind kind, int n_pes, std::size_t nelems,
                   std::size_t elem_size) const;

  /// The hierarchical family only implements broadcast, over the world
  /// communicator, on a cluster topology whose group divides n_pes.
  bool hier_eligible(CollKind kind, int n_pes) const;

  /// Resolve the algorithm for one call site: the forced family when set
  /// (with ineligible choices degrading to tree), else the model argmin.
  /// `world` tells the policy whether the communicator spans the machine
  /// (hierarchical needs it). Never returns kAuto.
  CollAlgo choose(CollKind kind, int n_pes, std::size_t nelems,
                  std::size_t elem_size, bool world = true) const;

  /// Smallest element count at which the model prefers the ring over the
  /// tree for this collective (the crossover the bench plots), or SIZE_MAX
  /// when the ring never wins below the search cap (2^24 elements).
  std::size_t crossover_nelems(CollKind kind, int n_pes,
                               std::size_t elem_size) const;

 private:
  NetCostParams net_{};
  double mean_hops_ = 1.0;
  int cluster_group_ = 0;
  int cluster_remote_hops_ = 0;
  CollAlgo forced_ = CollAlgo::kAuto;
};

/// Snapshot of the process-wide dispatch counters (every PE's dispatch
/// counts once). Reset between benchmark repetitions with
/// reset_coll_dispatch_counts(); benchlib's emit_observability folds these
/// into the counter registry as coll.algo.<name> / coll.<kind>.<algo>.
struct CollDispatchCounts {
  std::uint64_t total = 0;
  std::uint64_t auto_resolved = 0;  ///< dispatches decided by the model
  std::uint64_t by_algo[kCollAlgoCount] = {};
  std::uint64_t by_kind_algo[kCollKindCount][kCollAlgoCount] = {};
};

CollDispatchCounts coll_dispatch_counts();
void reset_coll_dispatch_counts();

/// The policy in force for the calling PE (built from its machine's config
/// and cached per thread). Requires an initialized runtime.
const CollectivePolicy& active_collective_policy();

namespace detail {

/// Consult the active policy, bump the dispatch counters, and record the
/// kCollDispatch trace event (a = (kind << 8) | algo, b = payload bytes).
/// Returns the concrete algorithm to run.
CollAlgo resolve_and_record(CollKind kind, int n_pes, std::size_t nelems,
                            std::size_t elem_size, bool world);

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatching entry points (same contracts as the tree primitives)
// ---------------------------------------------------------------------------

template <class T>
void dispatch_broadcast(T* dest, const T* src, std::size_t nelems, int stride,
                        int root, Communicator& comm = world_comm()) {
  const bool world = &comm == &world_comm();
  switch (detail::resolve_and_record(CollKind::kBroadcast, comm.n_pes(),
                                     nelems, sizeof(T), world)) {
    case CollAlgo::kRing:
      ring_broadcast(dest, src, nelems, stride, root, comm);
      break;
    case CollAlgo::kHier:
      hierarchical_broadcast(dest, src, nelems, stride, root,
                             active_collective_policy().cluster_group());
      break;
    default:
      broadcast(dest, src, nelems, stride, root, comm);
      break;
  }
}

template <class Op, class T>
void dispatch_reduce(T* dest, const T* src, std::size_t nelems, int stride,
                     int root, Communicator& comm = world_comm()) {
  const bool world = &comm == &world_comm();
  switch (detail::resolve_and_record(CollKind::kReduce, comm.n_pes(), nelems,
                                     sizeof(T), world)) {
    case CollAlgo::kRing:
      ring_reduce<Op>(dest, src, nelems, stride, root, comm);
      break;
    default:
      reduce<Op>(dest, src, nelems, stride, root, comm);
      break;
  }
}

template <class Op, class T>
void dispatch_reduce_all(T* dest, const T* src, std::size_t nelems,
                         int stride, Communicator& comm = world_comm()) {
  const bool world = &comm == &world_comm();
  switch (detail::resolve_and_record(CollKind::kAllreduce, comm.n_pes(),
                                     nelems, sizeof(T), world)) {
    case CollAlgo::kRing:
      ring_allreduce<Op>(dest, src, nelems, stride, comm);
      break;
    case CollAlgo::kHier:
      reduce<Op>(dest, src, nelems, stride, /*root=*/0, comm);
      hierarchical_broadcast(dest, dest, nelems, stride, /*root=*/0,
                             active_collective_policy().cluster_group());
      break;
    default:
      reduce<Op>(dest, src, nelems, stride, /*root=*/0, comm);
      broadcast(dest, dest, nelems, stride, /*root=*/0, comm);
      break;
  }
}

template <class T>
void dispatch_fcollect(T* dest, const T* src, std::size_t nelems_per_pe,
                       Communicator& comm = world_comm()) {
  const int n = comm.n_pes();
  const bool world = &comm == &world_comm();
  const std::size_t total =
      nelems_per_pe * static_cast<std::size_t>(n);
  switch (detail::resolve_and_record(CollKind::kAllgather, n, total,
                                     sizeof(T), world)) {
    case CollAlgo::kRing:
      ring_allgather(dest, src, nelems_per_pe, comm);
      break;
    default: {
      // The paper's composition: gather to rank 0, then broadcast.
      std::vector<int> msgs(static_cast<std::size_t>(n),
                            static_cast<int>(nelems_per_pe));
      std::vector<int> disp(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        disp[static_cast<std::size_t>(r)] = static_cast<int>(
            static_cast<std::size_t>(r) * nelems_per_pe);
      }
      gather(dest, src, msgs.data(), disp.data(), total, /*root=*/0, comm);
      broadcast(dest, dest, total, /*stride=*/1, /*root=*/0, comm);
      break;
    }
  }
}

}  // namespace xbgas
