#pragma once

// Cost-model-driven collective algorithm selection — the layer the paper's
// §7 future work asks for once "algorithms optimized for larger message
// sizes" exist alongside the binomial tree. The repo now carries three
// algorithm families (k-nomial tree in collectives.hpp/hierarchy.hpp,
// segmented ring in ring.hpp, locality-aware hierarchical in
// hierarchy.hpp); CollectivePolicy is the analytic latency–bandwidth model
// that picks between them per collective and per (n_pes, payload bytes)
// point, and the dispatch_* templates below are the call sites that
// consult it.
//
// The model is the classic alpha–beta decomposition parameterized from the
// machine's own NetCostParams (docs/COLLECTIVES.md derives the formulas):
//
//   message(b) = alpha + b * beta
//     alpha = OLB lookup + injection + mean_hops * per_hop + remote memory
//             + fabric per-message cost + header serialization
//     beta  = 1 / link_bytes_per_cycle
//   barrier(n) = NetCostParams::barrier_cycles(n)   (modeled exchange)
//   gamma      = cycles per reduced element (detail::kReduceOpCycles)
//
//   tree      ceil(log_k n) stages, the WHOLE payload per stage
//   ring      pipelined: (n-2)+S steps of B/S bytes (bcast/reduce) or
//             2(n-1) steps of B/n bytes (allreduce), n-1 steps (allgather)
//   hier      multi-level k-nomial stack over the cluster topology's
//             grouping levels; only modeled when there is locality to
//             exploit (hier_eligible)
//
// On top of the analytic model sits a measurement-driven auto-tuner
// (XHC-style, src/collectives/tuner.hpp): a TuneTable maps
// (kind, n_pes, bytes) to a measured-best (family, radix, chunk) triple,
// persists to a text file, and loads via --coll-tune-table. decide()
// consults the table first and falls back to the alpha-beta argmin on a
// miss; coll.tuner.* counters account for both paths.
//
// Selection: MachineConfig::coll_algo ("auto" | "tree" | "ring" | "hier")
// forces a family or leaves the decision in charge; benches expose it as
// --coll-algo (plus --coll-radix / --coll-tune-table). Every dispatch
// bumps the process-wide coll.algo.<name> counters and records a
// kCollDispatch trace event.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "collectives/hierarchy.hpp"
#include "collectives/ring.hpp"

namespace xbgas {

/// Algorithm family. kAuto is only a *request* (forced() value); choose()
/// and the dispatchers always resolve to a concrete family.
enum class CollAlgo : std::uint8_t { kAuto = 0, kTree, kRing, kHier };
inline constexpr int kCollAlgoCount = 4;

/// The collective shapes the policy distinguishes.
enum class CollKind : std::uint8_t {
  kBroadcast = 0,
  kReduce,
  kAllreduce,
  kAllgather,
};
inline constexpr int kCollKindCount = 4;

const char* coll_algo_name(CollAlgo algo);
const char* coll_kind_name(CollKind kind);

/// Parse "auto" | "tree" | "ring" | "hier"; throws xbgas::Error otherwise.
CollAlgo parse_coll_algo(const std::string& name);

/// Parse a coll_kind_name back; throws xbgas::Error otherwise.
CollKind parse_coll_kind(const std::string& name);

/// A fully-resolved dispatch decision: the family plus the schedule knobs
/// the tuner sweeps (k-nomial radix, pipelined chunk size in elements;
/// chunk 0 keeps the built-in heuristics).
struct CollDecision {
  CollAlgo algo = CollAlgo::kTree;
  int radix = 2;
  std::size_t chunk = 0;
  bool tuned = false;  ///< true when a tune-table entry decided it
};

/// One persisted tuner measurement: the winning (algo, radix, chunk) for a
/// (kind, n_pes, bytes) point.
struct TuneEntry {
  CollKind kind = CollKind::kBroadcast;
  int n_pes = 0;
  std::size_t bytes = 0;
  CollAlgo algo = CollAlgo::kTree;
  int radix = 2;
  std::size_t chunk = 0;
};

/// The tuner's lookup table. Entries are exact on (kind, n_pes); payload
/// size matches the nearest measured point in log-scale (OSU sweeps are
/// geometric, so nearest-log is the natural interpolation).
class TuneTable {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Insert or replace the entry at (kind, n_pes, bytes).
  void insert(const TuneEntry& entry);

  /// Every entry in save() order (sorted by key, then bytes). The OSU
  /// bench uses this to merge per-PE-count sweeps into one table.
  std::vector<TuneEntry> entries() const;

  /// Best match for the point, or nullptr when no (kind, n_pes) entry
  /// exists at any payload size.
  const TuneEntry* lookup(CollKind kind, int n_pes, std::size_t bytes) const;

  /// Persist as the versioned text format docs/COLLECTIVES.md specifies
  /// (sorted, so saves are deterministic). Throws xbgas::Error on I/O error.
  void save(const std::string& path) const;

  /// Load a table persisted by save(). Throws xbgas::Error on I/O or
  /// format errors.
  static TuneTable load(const std::string& path);

 private:
  // (kind, n_pes) -> entries sorted by bytes ascending.
  std::map<std::pair<int, int>, std::vector<TuneEntry>> by_key_;
  std::size_t count_ = 0;
};

class CollectivePolicy {
 public:
  /// Default NetCostParams on a flat fabric, auto selection.
  CollectivePolicy();

  /// Parameterize from a machine configuration: wire costs from config.net,
  /// hop distances (and cluster grouping levels, when present) from
  /// config.topology_name, forced algorithm from config.coll_algo unless
  /// `forced` overrides it, default radix from config.coll_radix, and the
  /// tune table from config.coll_tune_table (throws if the file is set but
  /// unreadable).
  explicit CollectivePolicy(const MachineConfig& config,
                            CollAlgo forced = CollAlgo::kAuto);

  CollAlgo forced() const { return forced_; }
  void set_forced(CollAlgo algo) { forced_ = algo; }

  /// Innermost cluster group size from the topology (0 on non-cluster
  /// fabrics).
  int cluster_group() const {
    return cluster_groups_.empty() ? 0 : cluster_groups_.front();
  }

  /// Apply the scripted link plan's currently-down pairs to the model:
  /// mean hops re-derive from the degraded reachability view
  /// (DegradedTopologyView), hierarchy levels with an intra-group dead link
  /// drop out of hier_groups()/hier_cost(), and families whose fixed
  /// schedules cross a dead link are excluded from choose() (unless every
  /// family is blocked, in which case costs stand and the escalation
  /// machinery handles the crossing). active_collective_policy() calls this
  /// on every LinkFaults version change.
  void apply_link_faults(std::vector<std::pair<int, int>> down_pairs,
                         const MachineConfig& config);

  /// The down pairs currently applied (normalized a < b, sorted).
  const std::vector<std::pair<int, int>>& down_pairs() const {
    return down_pairs_;
  }

  /// True when `algo`'s fixed schedule over ranks [0, n_pes) crosses a down
  /// pair: the ring's consecutive cycle, or the k-nomial tree's parent
  /// edges (root 0, default radix). Hier is never blocked here — its level
  /// stack is filtered per group instead.
  bool family_blocked(CollAlgo algo, int n_pes) const;

  /// The topology's grouping widths usable as a hierarchy over n_pes:
  /// cluster levels that divide n_pes and are smaller than it, ascending.
  /// Empty on non-cluster fabrics (or when nothing divides).
  std::vector<int> hier_groups(int n_pes) const;

  /// The level stack dispatch hands to the hierarchy engine.
  HierShape hier_shape(int n_pes, int radix, std::size_t chunk) const;

  /// Default k-nomial radix (config.coll_radix, or 2).
  int default_radix() const { return default_radix_; }

  const TuneTable& tune_table() const { return tune_table_; }
  void set_tune_table(TuneTable table);

  // -- Analytic cost model (cycles; exposed for tests and the bench) --

  double message_cost(std::size_t bytes) const;
  double barrier_cost(int n_pes) const;
  double tree_cost(CollKind kind, int n_pes, std::size_t nelems,
                   std::size_t elem_size) const;
  double ring_cost(CollKind kind, int n_pes, std::size_t nelems,
                   std::size_t elem_size) const;
  /// +infinity unless `hier_eligible(kind, n_pes)`.
  double hier_cost(CollKind kind, int n_pes, std::size_t nelems,
                   std::size_t elem_size) const;

  /// The hierarchical family covers every collective kind; it needs the
  /// world communicator, a cluster topology, and at least one grouping
  /// level that divides n_pes.
  bool hier_eligible(CollKind kind, int n_pes) const;

  /// Resolve the algorithm for one call site: the forced family when set
  /// (with ineligible choices degrading to tree), else the model argmin.
  /// `world` tells the policy whether the communicator spans the machine
  /// (hierarchical needs it). Never returns kAuto.
  CollAlgo choose(CollKind kind, int n_pes, std::size_t nelems,
                  std::size_t elem_size, bool world = true) const;

  /// Full decision for one call site: forced family first, then the tune
  /// table (counted as coll.tuner.hits / .misses), then the analytic
  /// argmin. Never returns kAuto.
  CollDecision decide(CollKind kind, int n_pes, std::size_t nelems,
                      std::size_t elem_size, bool world = true) const;

  /// Smallest element count at which the model prefers the ring over the
  /// tree for this collective (the crossover the bench plots), or SIZE_MAX
  /// when the ring never wins below the search cap (2^24 elements).
  std::size_t crossover_nelems(CollKind kind, int n_pes,
                               std::size_t elem_size) const;

 private:
  /// True when a down pair falls inside one width-`g` group of [0, n_pes).
  bool level_cut(int g, int n_pes) const;

  NetCostParams net_{};
  double mean_hops_ = 1.0;
  std::vector<int> cluster_groups_;  ///< ascending widths (empty: no cluster)
  std::vector<int> cluster_hops_;    ///< boundary costs, parallel to groups
  std::vector<std::pair<int, int>> down_pairs_;  ///< normalized, sorted
  int default_radix_ = 2;
  CollAlgo forced_ = CollAlgo::kAuto;
  TuneTable tune_table_;
};

/// Snapshot of the process-wide dispatch counters (every PE's dispatch
/// counts once). Reset between benchmark repetitions with
/// reset_coll_dispatch_counts(); benchlib's emit_observability folds these
/// into the counter registry as coll.algo.<name> / coll.<kind>.<algo>.
struct CollDispatchCounts {
  std::uint64_t total = 0;
  std::uint64_t auto_resolved = 0;  ///< dispatches decided by the model
  std::uint64_t by_algo[kCollAlgoCount] = {};
  std::uint64_t by_kind_algo[kCollKindCount][kCollAlgoCount] = {};
};

CollDispatchCounts coll_dispatch_counts();
void reset_coll_dispatch_counts();

/// Process-wide auto-tuner counters (observability: coll.tuner.*).
/// `entries` is the size of the most recently loaded table; hits/misses
/// count decide() consultations that found / missed a usable entry.
struct CollTunerCounters {
  std::uint64_t entries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

CollTunerCounters coll_tuner_counters();
void reset_coll_tuner_counters();

/// The policy in force for the calling PE (built from its machine's config
/// and cached per thread). Requires an initialized runtime.
const CollectivePolicy& active_collective_policy();

namespace detail {

/// Consult the active policy, bump the dispatch counters, and record the
/// kCollDispatch trace event (a = (kind << 8) | algo, b = payload bytes).
/// Returns the concrete decision to run.
CollDecision resolve_and_record(CollKind kind, int n_pes, std::size_t nelems,
                                std::size_t elem_size, bool world);

/// Map the tuner's chunk-elements knob to the ring family's segment count
/// (0 keeps the ring heuristic).
inline std::size_t ring_segments_hint(std::size_t nelems, std::size_t chunk) {
  return chunk == 0 ? 0 : std::clamp<std::size_t>(nelems / chunk, 1, 64);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatching entry points (same contracts as the tree primitives)
// ---------------------------------------------------------------------------

template <class T>
void dispatch_broadcast(T* dest, const T* src, std::size_t nelems, int stride,
                        int root, Communicator& comm = world_comm()) {
  const bool world = &comm == &world_comm();
  const CollDecision d = detail::resolve_and_record(
      CollKind::kBroadcast, comm.n_pes(), nelems, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      ring_broadcast(dest, src, nelems, stride, root, comm,
                     detail::ring_segments_hint(nelems, d.chunk));
      break;
    case CollAlgo::kHier:
      hier_broadcast(dest, src, nelems, stride, root,
                     active_collective_policy().hier_shape(comm.n_pes(),
                                                           d.radix, d.chunk));
      break;
    default:
      if (d.radix != 2) {
        detail::knomial_broadcast(dest, src, nelems, stride, root, d.radix,
                                  comm);
      } else {
        broadcast(dest, src, nelems, stride, root, comm);
      }
      break;
  }
}

template <class Op, class T>
void dispatch_reduce(T* dest, const T* src, std::size_t nelems, int stride,
                     int root, Communicator& comm = world_comm()) {
  const bool world = &comm == &world_comm();
  const CollDecision d = detail::resolve_and_record(
      CollKind::kReduce, comm.n_pes(), nelems, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      ring_reduce<Op>(dest, src, nelems, stride, root, comm,
                      detail::ring_segments_hint(nelems, d.chunk));
      break;
    case CollAlgo::kHier:
      hier_reduce<Op>(dest, src, nelems, stride, root,
                      active_collective_policy().hier_shape(comm.n_pes(),
                                                            d.radix, d.chunk));
      break;
    default:
      if (d.radix != 2) {
        detail::knomial_reduce<Op>(dest, src, nelems, stride, root, d.radix,
                                   comm);
      } else {
        reduce<Op>(dest, src, nelems, stride, root, comm);
      }
      break;
  }
}

template <class Op, class T>
void dispatch_reduce_all(T* dest, const T* src, std::size_t nelems,
                         int stride, Communicator& comm = world_comm()) {
  const bool world = &comm == &world_comm();
  const CollDecision d = detail::resolve_and_record(
      CollKind::kAllreduce, comm.n_pes(), nelems, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      ring_allreduce<Op>(dest, src, nelems, stride, comm);
      break;
    case CollAlgo::kHier:
      hier_reduce_all<Op>(dest, src, nelems, stride,
                          active_collective_policy().hier_shape(
                              comm.n_pes(), d.radix, d.chunk));
      break;
    default:
      if (d.radix != 2) {
        detail::knomial_reduce<Op>(dest, src, nelems, stride, /*root=*/0,
                                   d.radix, comm);
        detail::knomial_broadcast(dest, dest, nelems, stride, /*root=*/0,
                                  d.radix, comm);
      } else {
        reduce<Op>(dest, src, nelems, stride, /*root=*/0, comm);
        broadcast(dest, dest, nelems, stride, /*root=*/0, comm);
      }
      break;
  }
}

template <class T>
void dispatch_fcollect(T* dest, const T* src, std::size_t nelems_per_pe,
                       Communicator& comm = world_comm()) {
  const int n = comm.n_pes();
  const bool world = &comm == &world_comm();
  const std::size_t total =
      nelems_per_pe * static_cast<std::size_t>(n);
  const CollDecision d = detail::resolve_and_record(CollKind::kAllgather, n,
                                                    total, sizeof(T), world);
  switch (d.algo) {
    case CollAlgo::kRing:
      ring_allgather(dest, src, nelems_per_pe, comm);
      break;
    case CollAlgo::kHier:
      hier_fcollect(dest, src, nelems_per_pe,
                    active_collective_policy().hier_shape(n, d.radix,
                                                          d.chunk));
      break;
    default: {
      if (d.radix != 2) {
        const int me = comm.rank();
        if (nelems_per_pe > 0 &&
            dest + static_cast<std::size_t>(me) * nelems_per_pe != src) {
          xbr_put(dest + static_cast<std::size_t>(me) * nelems_per_pe, src,
                  nelems_per_pe, 1, comm.world_rank(me));
        }
        detail::knomial_gather_blocks(dest, nelems_per_pe, /*start=*/0,
                                      /*sub=*/1, d.radix, comm);
        detail::knomial_broadcast(dest, dest, total, /*stride=*/1,
                                  /*root=*/0, d.radix, comm);
        break;
      }
      // The paper's composition: gather to rank 0, then broadcast.
      std::vector<int> msgs(static_cast<std::size_t>(n),
                            static_cast<int>(nelems_per_pe));
      std::vector<int> disp(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        disp[static_cast<std::size_t>(r)] = static_cast<int>(
            static_cast<std::size_t>(r) * nelems_per_pe);
      }
      gather(dest, src, msgs.data(), disp.data(), total, /*root=*/0, comm);
      broadcast(dest, dest, total, /*stride=*/1, /*root=*/0, comm);
      break;
    }
  }
}

}  // namespace xbgas
