#pragma once

// Locality-aware hierarchical broadcast — the paper's §7 future-work item
// "location aware communication optimization using the xBGAS OLB".
//
// PEs are grouped into "nodes" of `group_size` consecutive world ranks (the
// same sequential-rank-per-node assumption recursive halving makes, §4.3).
// The broadcast then runs in two levels:
//
//   1. the root forwards to its node's leader (rank 0 within the group),
//   2. leaders run a binomial broadcast among themselves (one transfer per
//      node crosses the expensive inter-node links),
//   3. each node broadcasts internally over cheap local links.
//
// On a distance-sensitive topology this moves exactly one copy of the
// payload onto the long links per node instead of up to log2(N); on a flat
// fabric it degrades gracefully to roughly the plain tree. The OLB is what
// makes the locality information available: object IDs are dense in rank
// order, so group membership is a pure function of the translated ID.

#include "collectives/collectives.hpp"
#include "collectives/team.hpp"

namespace xbgas {

/// Two-level broadcast with the same contract as xbgas::broadcast over the
/// whole world. `group_size` must divide the world size evenly; 1 or
/// world-size degrade to the plain binomial tree.
template <class T>
void hierarchical_broadcast(T* dest, const T* src, std::size_t nelems,
                            int stride, int root, int group_size) {
  PeContext& ctx = xbrtime_ctx();
  const int n = ctx.n_pes();
  XBGAS_CHECK(group_size >= 1 && n % group_size == 0,
              "group_size must divide the PE count");
  if (group_size == 1 || group_size == n) {
    broadcast(dest, src, nelems, stride, root);
    return;
  }

  const int me = ctx.rank();
  const int groups = n / group_size;
  const int my_leader = (me / group_size) * group_size;
  const int root_leader = (root / group_size) * group_size;

  // (1) Root primes its own dest and hands the payload to its node leader.
  if (me == root && nelems > 0) {
    if (dest != src) {
      xbr_put(dest, src, nelems, stride, me);
    }
    if (me != root_leader) {
      xbr_put(dest, dest, nelems, stride, root_leader);
    }
  }
  xbrtime_barrier();

  // (2) Leaders exchange over the inter-node links (binomial tree).
  if (me == my_leader) {
    Team leaders(0, group_size, groups);
    broadcast(dest, dest, nelems, stride,
              /*team root=*/root_leader / group_size, leaders);
  }
  xbrtime_barrier();

  // (3) Each node fans out locally from its leader.
  Team node(my_leader, 1, group_size);
  broadcast(dest, dest, nelems, stride, /*team root=*/0, node);
  xbrtime_barrier();
}

}  // namespace xbgas
