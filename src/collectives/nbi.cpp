#include "collectives/nbi.hpp"

#include <atomic>

namespace xbgas {

namespace {

struct PipelineCountersAtomic {
  std::atomic<std::uint64_t> collectives{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> waits{0};
};

PipelineCountersAtomic& pipeline_counters_atomic() {
  static PipelineCountersAtomic counters;
  return counters;
}

}  // namespace

CollPipelineCounters coll_pipeline_counters() {
  PipelineCountersAtomic& c = pipeline_counters_atomic();
  return CollPipelineCounters{
      .collectives = c.collectives.load(std::memory_order_relaxed),
      .chunks = c.chunks.load(std::memory_order_relaxed),
      .waits = c.waits.load(std::memory_order_relaxed),
  };
}

void reset_coll_pipeline_counters() {
  PipelineCountersAtomic& c = pipeline_counters_atomic();
  c.collectives.store(0, std::memory_order_relaxed);
  c.chunks.store(0, std::memory_order_relaxed);
  c.waits.store(0, std::memory_order_relaxed);
}

namespace detail {

void note_pipeline_collective() {
  pipeline_counters_atomic().collectives.fetch_add(1,
                                                   std::memory_order_relaxed);
}

void note_pipeline_chunks(std::size_t n) {
  pipeline_counters_atomic().chunks.fetch_add(n, std::memory_order_relaxed);
}

void note_pipeline_wait() {
  pipeline_counters_atomic().waits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace xbgas
