#pragma once

// Reduction operators (paper §4.4): sum, product, min, max for every
// Table-1 type; bitwise AND/OR/XOR for the non-floating-point types only.

#include <algorithm>
#include <type_traits>

namespace xbgas {

struct OpSum {
  static constexpr const char* kName = "sum";
  template <class T>
  static constexpr T apply(T a, T b) {
    return static_cast<T>(a + b);
  }
};

struct OpProd {
  static constexpr const char* kName = "prod";
  template <class T>
  static constexpr T apply(T a, T b) {
    return static_cast<T>(a * b);
  }
};

struct OpMin {
  static constexpr const char* kName = "min";
  template <class T>
  static constexpr T apply(T a, T b) {
    return std::min(a, b);
  }
};

struct OpMax {
  static constexpr const char* kName = "max";
  template <class T>
  static constexpr T apply(T a, T b) {
    return std::max(a, b);
  }
};

struct OpBand {
  static constexpr const char* kName = "and";
  template <class T>
  static constexpr T apply(T a, T b) {
    static_assert(std::is_integral_v<T>,
                  "bitwise reductions require integral types (paper §4.4)");
    return static_cast<T>(a & b);
  }
};

struct OpBor {
  static constexpr const char* kName = "or";
  template <class T>
  static constexpr T apply(T a, T b) {
    static_assert(std::is_integral_v<T>,
                  "bitwise reductions require integral types (paper §4.4)");
    return static_cast<T>(a | b);
  }
};

struct OpBxor {
  static constexpr const char* kName = "xor";
  template <class T>
  static constexpr T apply(T a, T b) {
    static_assert(std::is_integral_v<T>,
                  "bitwise reductions require integral types (paper §4.4)");
    return static_cast<T>(a ^ b);
  }
};

}  // namespace xbgas
