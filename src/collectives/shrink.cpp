#include "collectives/shrink.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>

#include "collectives/agree.hpp"
#include "collectives/team.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "fault/injector.hpp"
#include "fault/roster.hpp"
#include "machine/machine.hpp"
#include "trace/event.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace {

// Same shared-rendezvous-barrier registry pattern as Team (team.cpp), keyed
// by the agreement that produced the roster: members of one shrink wave
// share (machine, epoch, roster) exactly, and a later wave — even over an
// identical roster — gets a fresh barrier because its epoch is larger.
using SurvivorKey =
    std::tuple<std::uint64_t, std::uint64_t, std::vector<int>>;

std::mutex g_registry_mutex;
std::map<SurvivorKey, std::weak_ptr<ClockSyncBarrier>> g_registry;

// A rendezvous that was poisoned must stay poisoned for stragglers. The
// members of one shrink wave reach the SurvivorTeam constructor at wildly
// different times; if the early ones throw on a poisoned rendezvous and
// release the barrier before a late member acquires it, a plain weak_ptr
// registry would hand the late member a *fresh, clean* barrier for the same
// (epoch, roster) — and it would wait forever for peers that already moved
// on to the next agreement. Keys are never reused (the epoch is a strictly
// increasing agreement sequence number), so a tombstone is permanent truth.
std::map<SurvivorKey, BarrierPoison> g_tombstones;

[[noreturn]] void throw_tombstoned(const BarrierPoison& p) {
  if (p.failed_rank >= 0) throw PeFailedError(p.reason, p.failed_rank);
  throw Error(p.reason.empty() ? "survivor team rendezvous was poisoned"
                               : p.reason);
}

std::shared_ptr<ClockSyncBarrier> acquire_barrier(
    Machine& machine, std::uint64_t epoch, const std::vector<int>& members) {
  const SurvivorKey key{machine.instance_id(), epoch, members};
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  if (auto it = g_tombstones.find(key); it != g_tombstones.end()) {
    throw_tombstoned(it->second);
  }
  if (auto it = g_registry.find(key); it != g_registry.end()) {
    if (auto existing = it->second.lock()) return existing;
  }
  const NetCostParams& params = machine.network().params();
  const int size = static_cast<int>(members.size());
  auto* raw = new ClockSyncBarrier(
      size,
      [params, size](std::uint64_t max_cycles, int) {
        // Like team barriers: no global fabric-phase reconcile, just the
        // modeled log2(size) exchange (see team.hpp).
        return max_cycles + params.barrier_cycles(size);
      },
      machine.config().fault.barrier_timeout_ms, members);
  if (machine.sanitizer().conflicts_enabled()) {
    raw->set_all_arrived_hook([&machine, members] {
      machine.sanitizer().on_barrier_all_arrived(members);
    });
  }
  std::shared_ptr<ClockSyncBarrier> barrier(
      raw, [key, &machine](ClockSyncBarrier* b) {
        machine.unregister_barrier(b);
        {
          const std::lock_guard<std::mutex> inner(g_registry_mutex);
          g_registry.erase(key);
          // Last member let go of a poisoned rendezvous: leave a tombstone
          // so any straggler of this wave throws instead of founding a
          // fresh barrier nobody else will ever arrive at.
          if (b->poisoned()) g_tombstones[key] = b->poison_info();
        }
        delete b;
      });
  machine.register_barrier(barrier.get());
  g_registry[key] = barrier;
  return barrier;
}

}  // namespace

SurvivorTeam::SurvivorTeam(std::vector<int> members, std::uint64_t epoch)
    : members_(std::move(members)), epoch_(epoch) {
  PeContext& ctx = xbrtime_ctx();
  machine_ = &ctx.machine();

  XBGAS_CHECK(!members_.empty(), "survivor team must have >= 1 member");
  XBGAS_CHECK(std::is_sorted(members_.begin(), members_.end()),
              "survivor roster must be ascending");
  const auto it =
      std::lower_bound(members_.begin(), members_.end(), ctx.rank());
  XBGAS_CHECK(it != members_.end() && *it == ctx.rank(),
              "calling PE is not a member of this survivor team");
  my_rank_ = static_cast<int>(it - members_.begin());

  barrier_ = acquire_barrier(*machine_, epoch_, members_);
  barrier();  // rendezvous: every member holds the barrier before any use
}

SurvivorTeam::~SurvivorTeam() = default;

int SurvivorTeam::world_rank(int r) const {
  XBGAS_CHECK(r >= 0 && r < n_pes(), "team rank out of range");
  return members_[static_cast<std::size_t>(r)];
}

bool SurvivorTeam::contains_world_rank(int wr) const {
  return std::binary_search(members_.begin(), members_.end(), wr);
}

void SurvivorTeam::barrier() {
  PeContext& ctx = xbrtime_ctx();
  if (ctx.pending_completion() > ctx.clock().cycles()) {
    ctx.clock().set(ctx.pending_completion());
  }
  ctx.clear_pending();
  machine_->sanitizer().on_wait(ctx.rank());
  FaultInjector& fault = machine_->fault_injector();
  if (fault.enabled()) fault.on_barrier_arrival(ctx.rank());  // scripted kill
  const std::uint64_t t = barrier_->arrive_and_wait(ctx.clock().cycles());
  ctx.clock().set(t);
}

void SurvivorTeam::revoke() {
  PeContext& ctx = xbrtime_ctx();
  BarrierPoison info;
  info.reason = "survivor team (epoch " + std::to_string(epoch_) +
                ") revoked by rank " + std::to_string(ctx.rank());
  barrier_->poison(info);
  machine_->recovery().counters().revokes.fetch_add(1);
  ctx.trace().record(EventKind::kRecovery, -1,
                     static_cast<std::uint64_t>(RecoveryOp::kRevoke),
                     members_.size());
}

std::unique_ptr<SurvivorTeam> xbr_team_shrink(Communicator& parent) {
  PeContext& ctx = xbrtime_ctx();
  Machine& machine = ctx.machine();

  std::vector<int> expected(static_cast<std::size_t>(parent.n_pes()));
  for (int r = 0; r < parent.n_pes(); ++r) {
    expected[static_cast<std::size_t>(r)] = parent.world_rank(r);
  }

  for (;;) {
    // The death that brought us here may have interrupted a collective
    // mid-flight: discard whatever partial non-blocking/staging state this
    // survivor still carries so every member re-enters symmetric.
    ctx.clear_pending();
    machine.sanitizer().on_wait(ctx.rank());
    xbrtime_stage_reset();

    const AgreeResult ag = detail::agree_over_world_ranks(expected, ~0ull);
    expected = ag.roster;
    try {
      auto team = std::make_unique<SurvivorTeam>(ag.roster, ag.epoch);
      if (team->rank() == 0) {
        machine.recovery().counters().shrinks.fetch_add(1);
      }
      ctx.trace().record(EventKind::kRecovery, -1,
                         static_cast<std::uint64_t>(RecoveryOp::kShrink),
                         ag.roster.size());
      return team;
    } catch (const PeFailedError& e) {
      // Another member died while the team was forming; agree again over
      // the smaller set. Termination: every retry removes >= 1 rank.
      XBGAS_LOG_DEBUG("xbr_team_shrink retry on PE %d: %s", ctx.rank(),
                      e.what());
    }
  }
}

std::unique_ptr<SurvivorTeam> xbr_team_shrink() {
  return xbr_team_shrink(world_comm());
}

void xbr_team_revoke(Communicator& comm) {
  if (auto* survivor = dynamic_cast<SurvivorTeam*>(&comm)) {
    survivor->revoke();
    return;
  }
  if (auto* team = dynamic_cast<Team*>(&comm)) {
    team->revoke();
    return;
  }
  throw Error("xbr_team_revoke: only team communicators can be revoked");
}

}  // namespace xbgas
