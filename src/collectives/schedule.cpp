#include "collectives/schedule.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace xbgas {

int schedule_stages(int n_pes) {
  XBGAS_CHECK(n_pes >= 1, "n_pes must be >= 1");
  return static_cast<int>(ceil_log2(static_cast<std::uint64_t>(n_pes)));
}

int knomial_stages(int n_pes, int radix) {
  XBGAS_CHECK(n_pes >= 1, "n_pes must be >= 1");
  XBGAS_CHECK(radix >= 2, "k-nomial radix must be >= 2");
  int stages = 0;
  long long reach = 1;
  while (reach < n_pes) {
    reach *= radix;
    ++stages;
  }
  return stages;
}

std::vector<TreeEdge> knomial_broadcast_schedule(int n_pes, int radix) {
  const int stages = knomial_stages(n_pes, radix);
  std::vector<TreeEdge> edges;
  if (n_pes > 1) edges.reserve(static_cast<std::size_t>(n_pes) - 1);
  long long step = 1;
  for (int s = 1; s < stages; ++s) step *= radix;  // radix^(stages-1)
  for (int s = 0; s < stages; ++s) {
    const long long span = step * radix;
    for (long long vr = 0; vr < n_pes; vr += span) {
      for (int j = 1; j < radix; ++j) {
        const long long to = vr + j * step;
        if (to >= n_pes) break;
        edges.push_back(
            TreeEdge{s, static_cast<int>(vr), static_cast<int>(to)});
      }
    }
    step /= radix;
  }
  return edges;
}

std::vector<TreeEdge> knomial_reduce_schedule(int n_pes, int radix) {
  const int stages = knomial_stages(n_pes, radix);
  std::vector<TreeEdge> edges;
  if (n_pes > 1) edges.reserve(static_cast<std::size_t>(n_pes) - 1);
  long long step = 1;
  for (int s = 0; s < stages; ++s) {
    const long long span = step * radix;
    for (long long vr = 0; vr < n_pes; vr += span) {
      for (int j = 1; j < radix; ++j) {
        const long long from = vr + j * step;
        if (from >= n_pes) break;
        // vr (the parent) pulls from's accumulated subtree via get.
        edges.push_back(
            TreeEdge{s, static_cast<int>(from), static_cast<int>(vr)});
      }
    }
    step = span;
  }
  return edges;
}

std::vector<TreeEdge> broadcast_schedule(int n_pes) {
  return knomial_broadcast_schedule(n_pes, 2);
}

std::vector<TreeEdge> reduce_schedule(int n_pes) {
  return knomial_reduce_schedule(n_pes, 2);
}

}  // namespace xbgas
