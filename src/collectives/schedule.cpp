#include "collectives/schedule.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace xbgas {

int schedule_stages(int n_pes) {
  XBGAS_CHECK(n_pes >= 1, "n_pes must be >= 1");
  return static_cast<int>(ceil_log2(static_cast<std::uint64_t>(n_pes)));
}

std::vector<TreeEdge> broadcast_schedule(int n_pes) {
  const int levels = schedule_stages(n_pes);
  std::vector<TreeEdge> edges;
  unsigned mask = (1u << levels) - 1u;
  int stage = 0;
  for (int i = levels - 1; i >= 0; --i, ++stage) {
    mask ^= (1u << i);
    for (int vr = 0; vr < n_pes; ++vr) {
      const auto uvr = static_cast<unsigned>(vr);
      if ((uvr & mask) != 0) continue;
      if ((uvr & (1u << i)) != 0) continue;
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n_pes;
      if (vr < vpart) {
        edges.push_back(TreeEdge{stage, vr, vpart});
      }
    }
  }
  return edges;
}

std::vector<TreeEdge> reduce_schedule(int n_pes) {
  const int levels = schedule_stages(n_pes);
  std::vector<TreeEdge> edges;
  unsigned mask = (1u << levels) - 1u;
  for (int i = 0; i < levels; ++i) {
    mask ^= (1u << i);
    for (int vr = 0; vr < n_pes; ++vr) {
      const auto uvr = static_cast<unsigned>(vr);
      if ((uvr | mask) != mask) continue;
      if ((uvr & (1u << i)) != 0) continue;
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n_pes;
      if (vr < vpart) {
        // vr (the parent) pulls vpart's accumulated subtree via get.
        edges.push_back(TreeEdge{i, vpart, vr});
      }
    }
  }
  return edges;
}

}  // namespace xbgas
