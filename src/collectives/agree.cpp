#include "collectives/agree.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "fault/roster.hpp"
#include "machine/machine.hpp"
#include "net/fabric.hpp"
#include "trace/event.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace detail {

AgreeResult agree_over_world_ranks(std::vector<int> expected,
                                   std::uint64_t flag) {
  PeContext& ctx = xbrtime_ctx();
  Machine& machine = ctx.machine();
  const int me = ctx.rank();

  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  XBGAS_CHECK(!expected.empty(), "xbr_agree over an empty participant set");
  XBGAS_CHECK(std::binary_search(expected.begin(), expected.end(), me),
              "calling PE is not a participant of this agreement");

  RecoveryState& rec = machine.recovery();
  FaultInjector& fault = machine.fault_injector();

  // Scripted kill site #1: die before publishing anything — the other
  // participants must decide without this rank's contribution.
  if (fault.enabled()) fault.on_agree_step(me);

  const std::uint64_t seq = rec.begin_agreement(me);
  rec.contribute(me, seq, expected, flag, ctx.clock().cycles());

  // Scripted kill site #2: die after publishing — the decision must discard
  // this rank's contribution and exclude it from the roster.
  if (fault.enabled()) fault.on_agree_step(me);

  const AgreeDecision d = rec.await_decision(
      me, seq, expected, machine.config().fault.agree_timeout_ms);

  // Two tree-shaped phases (gather the contributions, broadcast the
  // decision) over the expected set, on top of the decision's clock.
  const NetCostParams& params = machine.network().params();
  const std::uint64_t cost =
      2 * params.barrier_cycles(static_cast<int>(expected.size()));
  if (d.max_cycles + cost > ctx.clock().cycles()) {
    ctx.clock().set(d.max_cycles + cost);
  }

  ctx.trace().record(EventKind::kRecovery, -1,
                     static_cast<std::uint64_t>(RecoveryOp::kAgree),
                     d.roster.size());
  return AgreeResult{d.roster, d.flag, d.seq};
}

}  // namespace detail

AgreeResult xbr_agree(std::uint64_t flag, Communicator& comm) {
  std::vector<int> expected(static_cast<std::size_t>(comm.n_pes()));
  for (int r = 0; r < comm.n_pes(); ++r) {
    expected[static_cast<std::size_t>(r)] = comm.world_rank(r);
  }
  return detail::agree_over_world_ranks(std::move(expected), flag);
}

AgreeResult xbr_agree(std::uint64_t flag) { return xbr_agree(flag, world_comm()); }

}  // namespace xbgas
