#include "collectives/team.hpp"

#include <map>
#include <mutex>
#include <tuple>

#include "common/error.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace {

// Members of a team construct their Team objects independently (one thread
// each) but must share one rendezvous barrier. This registry hands every
// member of the same (machine, start, stride, size) active set the same
// ClockSyncBarrier; the custom deleter unregisters and evicts it when the
// last member's Team is destroyed.

using TeamKey = std::tuple<Machine*, int, int, int>;

std::mutex g_registry_mutex;
std::map<TeamKey, std::weak_ptr<ClockSyncBarrier>> g_registry;

std::shared_ptr<ClockSyncBarrier> acquire_barrier(Machine& machine, int start,
                                                  int stride, int size) {
  const TeamKey key{&machine, start, stride, size};
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  if (auto it = g_registry.find(key); it != g_registry.end()) {
    if (auto existing = it->second.lock()) return existing;
  }
  const NetCostParams& params = machine.network().params();
  std::vector<int> member_ranks(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    member_ranks[static_cast<std::size_t>(r)] = start + r * stride;
  }
  auto* raw = new ClockSyncBarrier(
      size,
      [params, size](std::uint64_t max_cycles, int) {
        // Team barriers do not reconcile the global fabric phase (see
        // header); they only cost the modeled log2(size) exchange.
        return max_cycles + params.barrier_cycles(size);
      },
      machine.config().fault.barrier_timeout_ms, member_ranks);
  if (machine.sanitizer().conflicts_enabled()) {
    // XbrSan epoch join over exactly the member set: a team barrier orders
    // its members' accesses (vector-clock join), not the whole world's.
    raw->set_all_arrived_hook([&machine, member_ranks] {
      machine.sanitizer().on_barrier_all_arrived(member_ranks);
    });
  }
  std::shared_ptr<ClockSyncBarrier> barrier(
      raw, [key, &machine](ClockSyncBarrier* b) {
        machine.unregister_barrier(b);
        {
          const std::lock_guard<std::mutex> inner(g_registry_mutex);
          g_registry.erase(key);
        }
        delete b;
      });
  machine.register_barrier(barrier.get());
  g_registry[key] = barrier;
  return barrier;
}

}  // namespace

Team::Team(int start, int stride, int size)
    : start_(start), stride_(stride), size_(size) {
  PeContext& ctx = xbrtime_ctx();
  machine_ = &ctx.machine();
  const int world = machine_->n_pes();

  XBGAS_CHECK(size >= 1, "team size must be >= 1");
  XBGAS_CHECK(stride >= 1, "team stride must be >= 1");
  XBGAS_CHECK(start >= 0 && start + (size - 1) * stride < world,
              "team active set exceeds the world");

  const int wr = ctx.rank();
  const int rel = wr - start;
  XBGAS_CHECK(rel >= 0 && rel % stride == 0 && rel / stride < size,
              "calling PE is not a member of this team");
  my_rank_ = rel / stride;

  barrier_ = acquire_barrier(*machine_, start, stride, size);
  barrier();  // rendezvous: every member holds the barrier before any use
}

Team::~Team() = default;

int Team::world_rank(int r) const {
  XBGAS_CHECK(r >= 0 && r < size_, "team rank out of range");
  return start_ + r * stride_;
}

bool Team::contains_world_rank(int wr) const {
  const int rel = wr - start_;
  return rel >= 0 && rel % stride_ == 0 && rel / stride_ < size_;
}

void Team::revoke() {
  PeContext& ctx = xbrtime_ctx();
  BarrierPoison info;
  info.reason = "team (" + std::to_string(start_) + "," +
                std::to_string(stride_) + "," + std::to_string(size_) +
                ") revoked by rank " + std::to_string(ctx.rank());
  barrier_->poison(info);
  machine_->recovery().counters().revokes.fetch_add(1);
  ctx.trace().record(EventKind::kRecovery, -1,
                     static_cast<std::uint64_t>(RecoveryOp::kRevoke),
                     static_cast<std::uint64_t>(size_));
}

void Team::barrier() {
  PeContext& ctx = xbrtime_ctx();
  // Full fence, same as the world barrier: write combiner flushed, all
  // nonblocking traffic (legacy and request-tracked) completed.
  detail::nb_drain_all(ctx);
  FaultInjector& fault = machine_->fault_injector();
  if (fault.enabled()) fault.on_barrier_arrival(ctx.rank());  // scripted kill
  const std::uint64_t t = barrier_->arrive_and_wait(ctx.clock().cycles());
  ctx.clock().set(t);
}

}  // namespace xbgas
