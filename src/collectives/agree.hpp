#pragma once

// xbr_agree — fault-tolerant agreement, the consensus primitive under
// survivor recovery (docs/RESILIENCE.md; the ULFM MPI_Comm_agree analogue).
//
// Every *surviving* participant returns the bitwise-identical decision:
//
//   * roster — the participants that are alive and reached the agreement,
//     ascending world ranks. A participant that dies before or during the
//     agreement is excluded on every survivor, identically.
//   * flag   — the bitwise AND of the surviving participants' flag inputs
//     (a vote: a bit stays set only if every survivor set it).
//
// Correctness under mid-agreement death: the decision is produced by the
// smallest *live* expected rank once every expected rank has contributed or
// failed; waiters re-derive that leader on every wake, so the duty migrates
// if the leader itself dies (KillSite::kAgree exercises exactly this). A
// contribution from a rank that subsequently died is discarded — the roster
// only ever names live ranks.
//
// Cost model: the board is a binomial-tree fold over the participants, so
// the modeled cost is two barrier-shaped phases (gather + broadcast) over
// |expected| PEs, on top of the max contributor clock.

#include <cstdint>
#include <vector>

#include "collectives/comm.hpp"

namespace xbgas {

/// What one agreement decided; identical on every surviving participant.
struct AgreeResult {
  std::vector<int> roster;  ///< surviving world ranks, ascending
  std::uint64_t flag = 0;   ///< AND over surviving participants' flags
  std::uint64_t epoch = 0;  ///< this agreement's sequence number
};

/// Fault-tolerant agreement over `comm`'s members. Collective over the
/// *surviving* members: dead members are excluded from the decision rather
/// than waited for. Throws AgreementTimeoutError if an expected member
/// neither contributes nor fails within the fault watchdog window.
AgreeResult xbr_agree(std::uint64_t flag, Communicator& comm);
AgreeResult xbr_agree(std::uint64_t flag);

namespace detail {

/// The core protocol over an explicit world-rank set (sorted, deduplicated
/// internally). xbr_team_shrink drives this directly with a shrinking
/// expected set; the public overloads wrap the communicator's member list.
AgreeResult agree_over_world_ranks(std::vector<int> expected,
                                   std::uint64_t flag);

}  // namespace detail

}  // namespace xbgas
