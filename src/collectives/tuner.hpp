#pragma once

// Measurement-driven auto-tuner for collective dispatch (XHC-style).
//
// build_tune_table() runs every candidate schedule — (family, k-nomial
// radix, chunk size) — for every collective kind and payload size on the
// MODELED machine described by a MachineConfig, measures the makespan in
// simulated cycles (rank-0 clock delta across bracketing barriers; clocks
// synchronize to the max at barriers, so the delta is the global critical
// path), and records the argmin per (kind, n_pes, bytes) point into a
// TuneTable. The table persists via TuneTable::save and loads at Machine
// construction time through --coll-tune-table; CollectivePolicy::decide
// consults it before the alpha-beta model.
//
// Everything is deterministic: the simulator's clocks are a pure function
// of the schedule, so run-twice produces bitwise-identical tables.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collectives/policy.hpp"

namespace xbgas {

/// One schedule variant the sweep measures.
struct TuneCandidate {
  CollAlgo algo = CollAlgo::kTree;
  int radix = 2;          ///< k-nomial degree (tree/hier families)
  std::size_t chunk = 0;  ///< chunk elements (ring segmenting; 0 heuristic)
};

/// One (point, candidate) measurement from the sweep.
struct TuneMeasurement {
  CollKind kind = CollKind::kBroadcast;
  std::size_t nelems = 0;  ///< total elements (allgather: concatenation)
  std::size_t bytes = 0;   ///< payload bytes, the TuneTable key
  TuneCandidate cand;
  std::uint64_t cycles = 0;  ///< modeled makespan
};

/// The default candidate list for `base`: tree and (when the topology
/// offers locality) hier at radices {2, 4, 8}, ring at chunk sizes
/// {heuristic, 256, 2048}.
std::vector<TuneCandidate> default_tune_candidates(const MachineConfig& base);

/// Sweep all four collective kinds over `sizes` (element counts of 8-byte
/// payload elements) for every candidate, one modeled Machine run per
/// candidate, and return the per-point winners. When `measurements` is
/// non-null it receives every (point, candidate) sample — the OSU bench
/// reuses them instead of re-measuring.
TuneTable build_tune_table(const MachineConfig& base,
                           const std::vector<std::size_t>& sizes,
                           const std::vector<TuneCandidate>& candidates,
                           std::vector<TuneMeasurement>* measurements =
                               nullptr);

TuneTable build_tune_table(const MachineConfig& base,
                           const std::vector<std::size_t>& sizes,
                           std::vector<TuneMeasurement>* measurements =
                               nullptr);

}  // namespace xbgas
