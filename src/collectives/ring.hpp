#pragma once

// Segmented ring (pipelined) broadcast — the paper's §7 future-work item:
// "algorithms optimized for larger message sizes ... need to be added to
// our existing binomial tree methodology".
//
// The message is split into S segments that flow down the virtual-rank
// chain root -> 1 -> 2 -> ... -> n-1, one hop per step, with all links
// active once the pipeline fills. Total steps: (n-2) + S. Per-PE data
// volume is the payload itself (vs the binomial tree, where interior nodes
// forward the *whole* payload log-depth times on the critical path), so the
// ring wins once per-segment serialization outweighs its extra
// synchronization steps — the classic large-message crossover this
// implementation exists to demonstrate (bench_ablation_largemsg).

#include <algorithm>
#include <cstddef>

#include "collectives/collectives.hpp"

namespace xbgas {

/// Default segment count heuristic: one segment per 256 elements, capped so
/// tiny messages degrade to a plain (unsegmented) chain.
constexpr std::size_t ring_default_segments(std::size_t nelems) {
  return std::clamp<std::size_t>(nelems / 256, 1, 32);
}

/// Broadcast with the same contract as xbgas::broadcast (symmetric dest on
/// every PE, root-private src, stride in elements), pipelined over a ring.
/// `segments` == 0 selects the heuristic.
template <class T>
void ring_broadcast(T* dest, const T* src, std::size_t nelems, int stride,
                    int root, Communicator& comm = world_comm(),
                    std::size_t segments = 0) {
  const int vr = detail::collective_prologue(comm, root, stride);
  const int n = comm.n_pes();

  // Root primes its own dest; it forwards from dest like everyone else.
  if (vr == 0 && nelems > 0 && dest != src) {
    xbr_put(dest, src, nelems, stride, comm.world_rank(comm.rank()));
  }
  comm.barrier();
  if (n == 1 || nelems == 0) return;

  const std::size_t nseg =
      std::min(segments == 0 ? ring_default_segments(nelems) : segments,
               nelems);
  const int next_world =
      vr < n - 1 ? comm.world_rank(logical_rank(vr + 1, root, n)) : -1;

  const int total_steps = (n - 2) + static_cast<int>(nseg);
  for (int step = 0; step < total_steps; ++step) {
    // Virtual rank r forwards segment (step - r) this step, if it exists.
    const int s = step - vr;
    if (s >= 0 && s < static_cast<int>(nseg) && vr < n - 1) {
      const std::size_t lo = nelems * static_cast<std::size_t>(s) / nseg;
      const std::size_t hi =
          nelems * (static_cast<std::size_t>(s) + 1) / nseg;
      if (hi > lo) {
        xbr_put(dest + lo * static_cast<std::size_t>(stride),
                dest + lo * static_cast<std::size_t>(stride), hi - lo,
                stride, next_world);
      }
    }
    comm.barrier();
  }
}

}  // namespace xbgas
