#pragma once

// Ring algorithms for large messages — the paper's §7 future-work item:
// "algorithms optimized for larger message sizes ... need to be added to
// our existing binomial tree methodology".
//
//   ring_broadcast   segmented pipeline root -> 1 -> ... -> n-1
//   ring_reduce      segmented pipeline n-1 -> ... -> root, combining per hop
//   ring_allreduce   reduce-scatter + allgather, 2(n-1) steps,
//                    bandwidth-optimal (each PE moves ~2B bytes total)
//   ring_allgather   fixed-count gather-to-all, n-1 steps of B/n bytes
//
// In the pipelined forms the message is split into S segments that flow
// along the virtual-rank chain one hop per step, with all links active once
// the pipeline fills ((n-2) + S total steps). Per-PE data volume is the
// payload itself (vs the binomial tree, where interior nodes forward the
// *whole* payload log-depth times on the critical path), so the ring wins
// once per-segment serialization outweighs its extra synchronization
// steps — the classic large-message crossover the policy layer
// (policy.hpp) models analytically and bench_policy_crossover measures.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "collectives/collectives.hpp"

namespace xbgas {

/// Default segment count heuristic: one segment per 256 elements, capped so
/// tiny messages degrade to a plain (unsegmented) chain.
constexpr std::size_t ring_default_segments(std::size_t nelems) {
  return std::clamp<std::size_t>(nelems / 256, 1, 32);
}

/// Broadcast with the same contract as xbgas::broadcast (symmetric dest on
/// every PE, root-private src, stride in elements), pipelined over a ring.
/// `segments` == 0 selects the heuristic.
template <class T>
void ring_broadcast(T* dest, const T* src, std::size_t nelems, int stride,
                    int root, Communicator& comm = world_comm(),
                    std::size_t segments = 0) {
  const int vr = detail::collective_prologue(comm, root, stride);
  const int n = comm.n_pes();

  // Root primes its own dest; it forwards from dest like everyone else.
  if (vr == 0 && nelems > 0 && dest != src) {
    xbr_put(dest, src, nelems, stride, comm.world_rank(comm.rank()));
  }
  comm.barrier();
  if (n == 1 || nelems == 0) return;

  const std::size_t nseg =
      std::min(segments == 0 ? ring_default_segments(nelems) : segments,
               nelems);
  const int next_world =
      vr < n - 1 ? comm.world_rank(logical_rank(vr + 1, root, n)) : -1;

  const int total_steps = (n - 2) + static_cast<int>(nseg);
  for (int step = 0; step < total_steps; ++step) {
    // Virtual rank r forwards segment (step - r) this step, if it exists.
    const int s = step - vr;
    if (s >= 0 && s < static_cast<int>(nseg) && vr < n - 1) {
      const std::size_t lo = nelems * static_cast<std::size_t>(s) / nseg;
      const std::size_t hi =
          nelems * (static_cast<std::size_t>(s) + 1) / nseg;
      if (hi > lo) {
        xbr_put(dest + lo * static_cast<std::size_t>(stride),
                dest + lo * static_cast<std::size_t>(stride), hi - lo,
                stride, next_world);
      }
    }
    comm.barrier();
  }
}

namespace detail {

/// Pack a strided user buffer into contiguous staging (and back).
template <class T>
void pack_strided(T* packed, const T* user, std::size_t nelems, int stride) {
  for (std::size_t j = 0; j < nelems; ++j) {
    packed[j] = user[j * static_cast<std::size_t>(stride)];
  }
}
template <class T>
void unpack_strided(T* user, const T* packed, std::size_t nelems, int stride) {
  for (std::size_t j = 0; j < nelems; ++j) {
    user[j * static_cast<std::size_t>(stride)] = packed[j];
  }
}

/// Element range of ring chunk `c` of `n` over a packed buffer: evenly
/// split, first chunks one element larger when n does not divide nelems.
constexpr std::size_t ring_chunk_lo(std::size_t nelems, int n, int c) {
  return nelems * static_cast<std::size_t>(c) / static_cast<std::size_t>(n);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Ring allreduce (reduce-scatter + allgather)
// ---------------------------------------------------------------------------

/// Reduction-to-all with the reduce_all contract (dest symmetric on every
/// PE, src may be private): the payload is split into n chunks; n-1
/// reduce-scatter steps pull the neighbour's accumulating chunk and combine,
/// then n-1 allgather steps circulate the fully-reduced chunks. Every PE
/// moves ~2B bytes total regardless of n — bandwidth-optimal, vs the
/// tree's B·log n on the critical path — at the price of 2(n-1) barriers.
///
/// Chunk c is combined along the ring in ascending rank order starting at
/// its owner, so for a fixed (inputs, n_pes) the float combine order is
/// deterministic (a different — but equally fixed — order than the tree's).
template <class Op, class T>
void ring_allreduce(T* dest, const T* src, std::size_t nelems, int stride,
                    Communicator& comm = world_comm()) {
  (void)detail::collective_prologue(comm, /*root=*/0, stride);
  const int n = comm.n_pes();
  const int me = comm.rank();

  if (n == 1) {
    if (nelems > 0 && dest != src) {
      for (std::size_t j = 0; j < nelems; ++j) {
        const std::size_t at = j * static_cast<std::size_t>(stride);
        dest[at] = src[at];
      }
    }
    return;
  }

  PeContext& ctx = xbrtime_ctx();
  T* acc = static_cast<T*>(
      detail::collective_staging_alloc(sizeof(T), std::max<std::size_t>(nelems, 1)));
  detail::pack_strided(acc, src, nelems, stride);
  const std::size_t max_chunk = nelems / static_cast<std::size_t>(n) + 1;
  std::vector<T> land(max_chunk);
  const int prev_world = comm.world_rank((me + n - 1) % n);
  comm.barrier();  // all accumulators loaded before any neighbour pulls

  // Reduce-scatter: at step s, pull chunk (me-1-s) from the left neighbour
  // (who finished combining it last step) and fold it into our accumulator.
  for (int s = 0; s < n - 1; ++s) {
    const int c = ((me - 1 - s) % n + n) % n;
    const std::size_t lo = detail::ring_chunk_lo(nelems, n, c);
    const std::size_t hi = detail::ring_chunk_lo(nelems, n, c + 1);
    if (hi > lo) {
      xbr_get(land.data(), acc + lo, hi - lo, 1, prev_world);
      for (std::size_t k = 0; k < hi - lo; ++k) {
        acc[lo + k] = Op::apply(land[k], acc[lo + k]);
      }
      ctx.clock().advance(detail::kReduceOpCycles * (hi - lo));
    }
    comm.barrier();
  }

  // Allgather: PE r now owns fully-reduced chunk (r+1); at step s, pull
  // chunk (me-s) — acquired by the left neighbour one step earlier.
  for (int s = 0; s < n - 1; ++s) {
    const int c = ((me - s) % n + n) % n;
    const std::size_t lo = detail::ring_chunk_lo(nelems, n, c);
    const std::size_t hi = detail::ring_chunk_lo(nelems, n, c + 1);
    if (hi > lo) {
      xbr_get(acc + lo, acc + lo, hi - lo, 1, prev_world);
    }
    comm.barrier();
  }

  detail::unpack_strided(dest, acc, nelems, stride);
  detail::collective_staging_free(acc);
}

// ---------------------------------------------------------------------------
// Ring allgather (fcollect)
// ---------------------------------------------------------------------------

/// Fixed-count gather-to-all with the fcollect contract (dest symmetric,
/// n_pes * nelems_per_pe elements; src may be private). dest doubles as the
/// symmetric exchange buffer: each PE deposits its own segment, then n-1
/// steps circulate the segments around the ring, B/n bytes per step.
template <class T>
void ring_allgather(T* dest, const T* src, std::size_t nelems_per_pe,
                    Communicator& comm = world_comm()) {
  (void)detail::collective_prologue(comm, /*root=*/0, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  const std::size_t seg = nelems_per_pe;

  if (seg > 0 && dest + static_cast<std::size_t>(me) * seg != src) {
    xbr_put(dest + static_cast<std::size_t>(me) * seg, src, seg, 1,
            comm.world_rank(me));
  }
  comm.barrier();
  if (n == 1 || seg == 0) return;

  const int prev_world = comm.world_rank((me + n - 1) % n);
  for (int s = 0; s < n - 1; ++s) {
    // The left neighbour obtained segment (me-1-s) one step earlier.
    const auto c = static_cast<std::size_t>(((me - 1 - s) % n + n) % n);
    xbr_get(dest + c * seg, dest + c * seg, seg, 1, prev_world);
    comm.barrier();
  }
}

// ---------------------------------------------------------------------------
// Segmented ring reduce
// ---------------------------------------------------------------------------

/// Reduction with the xbgas::reduce contract (src on every PE, dest
/// meaningful only on the root), pipelined over the ring in reverse:
/// segments flow n-1 -> n-2 -> ... -> 0 (virtual ranks), each hop folding
/// the forwarder's own values in before passing the partial on. Total steps
/// (n-2) + S, like ring_broadcast. A double-buffered symmetric landing zone
/// lets step t+1's put overwrite slot (t+1)%2 while slot t%2 is still being
/// combined, so one barrier per step suffices.
template <class Op, class T>
void ring_reduce(T* dest, const T* src, std::size_t nelems, int stride,
                 int root, Communicator& comm = world_comm(),
                 std::size_t segments = 0) {
  const int vr = detail::collective_prologue(comm, root, stride);
  const int n = comm.n_pes();

  if (n == 1) {
    if (nelems > 0 && dest != src) {
      for (std::size_t j = 0; j < nelems; ++j) {
        const std::size_t at = j * static_cast<std::size_t>(stride);
        dest[at] = src[at];
      }
    }
    return;
  }

  PeContext& ctx = xbrtime_ctx();
  const std::size_t nseg = std::min(
      segments == 0 ? ring_default_segments(nelems) : segments,
      std::max<std::size_t>(nelems, 1));
  const std::size_t max_seg = nelems / nseg + 1;

  T* acc = static_cast<T*>(
      detail::collective_staging_alloc(sizeof(T), std::max<std::size_t>(nelems, 1)));
  T* land = static_cast<T*>(
      detail::collective_staging_alloc(sizeof(T), 2 * max_seg));
  detail::pack_strided(acc, src, nelems, stride);
  comm.barrier();  // accumulators loaded, landing zones allocated everywhere

  const int to_world =
      vr > 0 ? comm.world_rank(logical_rank(vr - 1, root, n)) : -1;
  const auto seg_lo = [&](std::size_t s) { return nelems * s / nseg; };

  const int total_steps = (n - 2) + static_cast<int>(nseg);
  int pending = -1;  // segment received last step, combined at the top of
  int pend_slot = 0; // this step — before its slot is overwritten at t+1
  for (int t = 0; t < total_steps; ++t) {
    if (pending >= 0) {
      const std::size_t lo = seg_lo(static_cast<std::size_t>(pending));
      const std::size_t hi = seg_lo(static_cast<std::size_t>(pending) + 1);
      for (std::size_t k = 0; k < hi - lo; ++k) {
        acc[lo + k] = Op::apply(acc[lo + k], land[static_cast<std::size_t>(pend_slot) * max_seg + k]);
      }
      ctx.clock().advance(detail::kReduceOpCycles * (hi - lo));
      pending = -1;
    }
    // Virtual rank v forwards segment t - (n-1-v) toward the root — the
    // one it finished combining above (the tail PE sends its own values).
    if (vr > 0) {
      const int s = t - (n - 1 - vr);
      if (s >= 0 && s < static_cast<int>(nseg)) {
        const std::size_t lo = seg_lo(static_cast<std::size_t>(s));
        const std::size_t hi = seg_lo(static_cast<std::size_t>(s) + 1);
        if (hi > lo) {
          xbr_put(land + static_cast<std::size_t>(t % 2) * max_seg, acc + lo,
                  hi - lo, 1, to_world);
        }
      }
    }
    comm.barrier();
    if (vr < n - 1) {
      const int s_in = t - (n - 2 - vr);
      if (s_in >= 0 && s_in < static_cast<int>(nseg) &&
          seg_lo(static_cast<std::size_t>(s_in) + 1) >
              seg_lo(static_cast<std::size_t>(s_in))) {
        pending = s_in;
        pend_slot = t % 2;
      }
    }
  }
  if (pending >= 0) {  // the root's final segment arrives on the last step
    const std::size_t lo = seg_lo(static_cast<std::size_t>(pending));
    const std::size_t hi = seg_lo(static_cast<std::size_t>(pending) + 1);
    for (std::size_t k = 0; k < hi - lo; ++k) {
      acc[lo + k] = Op::apply(acc[lo + k], land[static_cast<std::size_t>(pend_slot) * max_seg + k]);
    }
    ctx.clock().advance(detail::kReduceOpCycles * (hi - lo));
  }

  if (vr == 0) {
    detail::unpack_strided(dest, acc, nelems, stride);
  }
  detail::collective_staging_free(land);
  detail::collective_staging_free(acc);
}

}  // namespace xbgas
