#include "collectives/checkpoint.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "fault/roster.hpp"
#include "machine/machine.hpp"
#include "net/fabric.hpp"
#include "trace/event.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace {

/// Modeled cost of moving `bytes` of snapshot payload in `n_shards` messages
/// to/from the replicated store: serialization on the PE's link plus one
/// message overhead per shard.
std::uint64_t replication_cycles(const NetCostParams& params,
                                 std::uint64_t bytes, std::size_t n_shards) {
  const double bpc = params.link_bytes_per_cycle > 0.0
                         ? params.link_bytes_per_cycle
                         : 1.0;
  const auto serialize =
      static_cast<std::uint64_t>(static_cast<double>(bytes) / bpc);
  const std::uint64_t per_message =
      params.injection_cycles + params.remote_mem_cycles;
  return serialize + per_message * static_cast<std::uint64_t>(n_shards);
}

}  // namespace

std::uint64_t xbr_checkpoint(Communicator& comm) {
  PeContext& ctx = xbrtime_ctx();
  Machine& machine = ctx.machine();

  comm.barrier();  // quiesce: no member's heap may change under the snapshot

  const std::size_t staging = xbrtime_stage_offset();
  std::vector<HeapShard> shards;
  std::uint64_t bytes = 0;
  for (const auto& [offset, size] : ctx.shared_allocator().live_blocks()) {
    if (offset == staging) continue;  // runtime scratch, reset on recovery
    HeapShard shard;
    shard.offset = offset;
    shard.data.resize(size);
    std::memcpy(shard.data.data(), ctx.arena().shared_at(offset), size);
    bytes += size;
    shards.push_back(std::move(shard));
  }

  ctx.clock().advance(
      replication_cycles(machine.network().params(), bytes, shards.size()));

  const std::uint64_t version =
      machine.checkpoint_store().commit(ctx.rank(), std::move(shards));

  RecoveryCounters& counters = machine.recovery().counters();
  if (comm.rank() == 0) counters.checkpoints.fetch_add(1);
  counters.checkpointed_bytes.fetch_add(bytes);
  ctx.trace().record(EventKind::kRecovery, -1,
                     static_cast<std::uint64_t>(RecoveryOp::kCheckpoint),
                     bytes);

  comm.barrier();  // no member proceeds until every snapshot is committed
  return version;
}

std::uint64_t xbr_checkpoint() { return xbr_checkpoint(world_comm()); }

RestoreReport xbr_restore(Communicator& comm) {
  PeContext& ctx = xbrtime_ctx();
  Machine& machine = ctx.machine();
  CheckpointStore& store = machine.checkpoint_store();

  comm.barrier();

  RestoreReport report;
  const std::size_t staging = xbrtime_stage_offset();

  // (1) Own snapshot back into the heap. Blocks whose allocation no longer
  // exists (or changed size) are skipped, not an error: the application may
  // legitimately have freed them since the checkpoint.
  if (store.has_snapshot(ctx.rank())) {
    report.version = store.version(ctx.rank());
    for (const HeapShard& shard : store.snapshot(ctx.rank())) {
      if (shard.offset == staging) continue;
      if (!ctx.shared_allocator().is_live(shard.offset)) continue;
      if (ctx.shared_allocator().allocation_size(shard.offset) !=
          shard.data.size()) {
        continue;
      }
      std::memcpy(ctx.arena().shared_at(shard.offset), shard.data.data(),
                  shard.data.size());
      report.restored_bytes += shard.data.size();
    }
  }

  // (2) Orphans: failed ranks with a snapshot that are not on this team.
  // Deterministic deal: orphan i (ascending rank) -> team rank i % n. Every
  // member computes the same mapping from the same roster — no exchange.
  std::vector<int> orphan_ranks;
  for (const int r : machine.recovery().failed_ranks()) {
    bool member = false;
    for (int t = 0; t < comm.n_pes(); ++t) {
      if (comm.world_rank(t) == r) {
        member = true;
        break;
      }
    }
    if (!member && store.has_snapshot(r)) orphan_ranks.push_back(r);
  }
  std::uint64_t orphan_total = 0;
  for (std::size_t i = 0; i < orphan_ranks.size(); ++i) {
    const int owner = static_cast<int>(i) % comm.n_pes();
    orphan_total += store.bytes(orphan_ranks[i]);
    if (owner != comm.rank()) continue;
    for (HeapShard& shard : store.snapshot(orphan_ranks[i])) {
      if (shard.offset == staging) continue;
      report.orphan_bytes += shard.data.size();
      report.orphans.push_back(OrphanShard{
          orphan_ranks[i], shard.offset, std::move(shard.data)});
    }
  }

  ctx.clock().advance(replication_cycles(
      machine.network().params(), report.restored_bytes + report.orphan_bytes,
      1 + report.orphans.size()));

  RecoveryCounters& counters = machine.recovery().counters();
  if (comm.rank() == 0) {
    counters.restores.fetch_add(1);
    counters.orphaned_bytes.fetch_add(orphan_total);
  }
  counters.restored_bytes.fetch_add(report.restored_bytes);
  ctx.trace().record(EventKind::kRecovery, -1,
                     static_cast<std::uint64_t>(RecoveryOp::kRestore),
                     report.restored_bytes + report.orphan_bytes);

  comm.barrier();
  return report;
}

RestoreReport xbr_restore() { return xbr_restore(world_comm()); }

}  // namespace xbgas
