#pragma once

// Linear (flat) collective baselines.
//
// The paper motivates the binomial tree against the obvious alternative —
// the root talking to every PE directly (§4.1-§4.2). These baselines
// implement that flat pattern with the same xbr_put/xbr_get primitives and
// the same symmetry requirements, so the A1 ablation bench can compare the
// two shapes like-for-like: the tree costs O(log N) serialized steps at the
// root, the linear form O(N).

#include <algorithm>
#include <cstddef>
#include <vector>

#include "collectives/collectives.hpp"

namespace xbgas {

template <class T>
void linear_broadcast(T* dest, const T* src, std::size_t nelems, int stride,
                      int root, Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, stride);
  const int n = comm.n_pes();
  if (vr == 0 && nelems > 0) {
    if (dest != src) {
      xbr_put(dest, src, nelems, stride, comm.world_rank(comm.rank()));
    }
    for (int v = 1; v < n; ++v) {
      xbr_put(dest, src, nelems, stride,
              comm.world_rank(logical_rank(v, root, n)));
    }
  }
  comm.barrier();
}

template <class Op, class T>
void linear_reduce(T* dest, const T* src, std::size_t nelems, int stride,
                   int root, Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, stride);
  const int n = comm.n_pes();
  const std::size_t span = detail::strided_span(nelems, stride);

  comm.barrier();  // every PE's src must be ready before the root pulls
  if (vr == 0) {
    std::vector<T> acc(span);
    std::vector<T> l_buff(span);
    for (std::size_t j = 0; j < nelems; ++j) {
      acc[j * static_cast<std::size_t>(stride)] =
          src[j * static_cast<std::size_t>(stride)];
    }
    PeContext& ctx = xbrtime_ctx();
    for (int v = 1; v < n; ++v) {
      const int lr = logical_rank(v, root, n);
      xbr_get(l_buff.data(), src, nelems, stride, comm.world_rank(lr));
      for (std::size_t j = 0; j < nelems; ++j) {
        const std::size_t at = j * static_cast<std::size_t>(stride);
        acc[at] = Op::apply(acc[at], l_buff[at]);
      }
      ctx.clock().advance(detail::kReduceOpCycles * nelems);
    }
    for (std::size_t j = 0; j < nelems; ++j) {
      const std::size_t at = j * static_cast<std::size_t>(stride);
      dest[at] = acc[at];
    }
  }
  comm.barrier();  // peers may reuse src only after the root is done
}

template <class T>
void linear_scatter(T* dest, const T* src, const int* pe_msgs,
                    const int* pe_disp, std::size_t nelems, int root,
                    Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  const auto adj = detail::adjusted_displacements(comm, pe_msgs, root);
  XBGAS_CHECK(adj[static_cast<std::size_t>(n)] == nelems,
              "linear_scatter: sum(pe_msgs) must equal nelems");

  // Staging must sit at a symmetric offset on every member, so size it by
  // the largest per-PE message.
  std::size_t maxc = 0;
  for (int r = 0; r < n; ++r) {
    maxc = std::max(maxc, static_cast<std::size_t>(pe_msgs[r]));
  }
  T* s_buff = static_cast<T*>(
      detail::collective_staging_alloc(sizeof(T), std::max<std::size_t>(maxc, 1)));
  // Entry barrier before the root writes into peer staging: a peer may
  // still be draining the staging region of the *previous* collective.
  comm.barrier();

  if (vr == 0) {
    for (int v = 0; v < n; ++v) {
      const int lr = logical_rank(v, root, n);
      const auto count = static_cast<std::size_t>(pe_msgs[lr]);
      if (count > 0) {
        xbr_put(s_buff, src + pe_disp[lr], count, 1, comm.world_rank(lr));
      }
    }
  }
  comm.barrier();

  const auto mine = static_cast<std::size_t>(pe_msgs[me]);
  if (mine > 0) {
    xbr_put(dest, s_buff, mine, 1, comm.world_rank(me));
  }
  comm.barrier();
  detail::collective_staging_free(s_buff);
}

template <class T>
void linear_gather(T* dest, const T* src, const int* pe_msgs,
                   const int* pe_disp, std::size_t nelems, int root,
                   Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  const auto adj = detail::adjusted_displacements(comm, pe_msgs, root);
  XBGAS_CHECK(adj[static_cast<std::size_t>(n)] == nelems,
              "linear_gather: sum(pe_msgs) must equal nelems");

  std::size_t maxc = 0;
  for (int r = 0; r < n; ++r) {
    maxc = std::max(maxc, static_cast<std::size_t>(pe_msgs[r]));
  }
  T* s_buff = static_cast<T*>(
      detail::collective_staging_alloc(sizeof(T), std::max<std::size_t>(maxc, 1)));

  const auto mine = static_cast<std::size_t>(pe_msgs[me]);
  if (mine > 0) {
    xbr_put(s_buff, src, mine, 1, comm.world_rank(me));
  }
  comm.barrier();

  if (vr == 0) {
    for (int v = 0; v < n; ++v) {
      const int lr = logical_rank(v, root, n);
      const auto count = static_cast<std::size_t>(pe_msgs[lr]);
      if (count > 0) {
        xbr_get(dest + pe_disp[lr], s_buff, count, 1, comm.world_rank(lr));
      }
    }
  }
  comm.barrier();
  detail::collective_staging_free(s_buff);
}

}  // namespace xbgas
