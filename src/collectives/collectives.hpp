#pragma once

// The binomial-tree collectives (paper §4, Algorithms 1-4).
//
// All four share the same skeleton: fetch n_pes and the calling PE's rank,
// remap to virtual ranks so the root is virtual rank 0 (vrank.hpp), then
// run ceil(log2 n) masked stages over the binomial tree with a barrier after
// every stage. Broadcast and scatter walk the tree top-down with put
// (recursive halving); reduce and gather walk bottom-up with get (recursive
// doubling). The `vir_rank < vir_part` guard suppresses the phantom
// partners that appear when n_pes is not a power of two.
//
// Symmetry requirements (paper §4.3-§4.6):
//   broadcast: dest symmetric on every PE; src meaningful (and possibly
//              private) only on the root.
//   reduce:    src symmetric on every PE; dest meaningful only on the root
//              and may be private. Internally stages through a symmetric
//              s_buff and a private l_buff so no user data is overwritten.
//   scatter:   src meaningful only on root; dest private OK. Staged through
//              a symmetric buffer reordered by *virtual* rank so that every
//              subtree's data is contiguous and one put per stage suffices
//              even with a non-zero root (§4.5).
//   gather:    mirror of scatter (§4.6).

#include <cstddef>
#include <vector>

#include "collectives/comm.hpp"
#include "collectives/ops.hpp"
#include "collectives/vrank.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {

namespace detail {

/// Cycles charged per element for the reduction combine loop.
inline constexpr std::uint64_t kReduceOpCycles = 3;

/// Allocate a symmetric staging buffer of `count` elements of `elem_size`
/// from the runtime's LIFO staging region (no synchronization; participants
/// perform identical sequences, so offsets stay symmetric). Throws on
/// exhaustion.
void* collective_staging_alloc(std::size_t elem_size, std::size_t count);

/// Release the most recent staging buffer (strict LIFO).
void collective_staging_free(void* p);

/// Buffer span in elements for an (nelems, stride) access pattern.
constexpr std::size_t strided_span(std::size_t nelems, int stride) {
  return nelems == 0 ? 0
                     : (nelems - 1) * static_cast<std::size_t>(stride) + 1;
}

/// Validate common collective arguments; returns this PE's virtual rank.
int collective_prologue(const Communicator& comm, int root, int stride);

/// adj_disp (paper §4.5): element displacement of each virtual rank's
/// segment in the virtually-reordered staging buffer; adj[n] = total.
std::vector<std::size_t> adjusted_displacements(const Communicator& comm,
                                                const int* pe_msgs, int root);

}  // namespace detail

// ---------------------------------------------------------------------------
// Broadcast (Algorithm 1)
// ---------------------------------------------------------------------------

template <class T>
void broadcast(T* dest, const T* src, std::size_t nelems, int stride, int root,
               Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, stride);
  const int n = comm.n_pes();

  // The root's own dest copy (implicit in the paper: dest holds the
  // broadcast values on *each* PE, including the root).
  if (vr == 0 && nelems > 0 && dest != src) {
    xbr_put(dest, src, nelems, stride, comm.world_rank(comm.rank()));
  }

  PeContext& ctx = xbrtime_ctx();
  const auto levels = ceil_log2(static_cast<std::uint64_t>(n));
  unsigned mask = (1u << levels) - 1u;
  const auto uvr = static_cast<unsigned>(vr);
  std::uint64_t stage = 0;
  for (int i = static_cast<int>(levels) - 1; i >= 0; --i) {
    mask ^= (1u << i);
    ctx.trace().record(EventKind::kStageBegin, -1, stage, mask);
    if ((uvr & mask) == 0 && (uvr & (1u << i)) == 0) {
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n;
      const int lpart = logical_rank(vpart, root, n);
      if (vr < vpart && nelems > 0) {
        // Senders past the first stage forward from their own dest; the
        // root sends directly from src.
        const T* from = (vr == 0) ? src : dest;
        xbr_put(dest, from, nelems, stride, comm.world_rank(lpart));
      }
    }
    comm.barrier();  // per-stage synchronization (paper §4.3)
    ctx.trace().record(EventKind::kStageEnd, -1, stage, mask);
    ++stage;
  }
}

// ---------------------------------------------------------------------------
// Reduction (Algorithm 2)
// ---------------------------------------------------------------------------

template <class Op, class T>
void reduce(T* dest, const T* src, std::size_t nelems, int stride, int root,
            Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, stride);
  const int n = comm.n_pes();
  const std::size_t span = detail::strided_span(nelems, stride);

  // s_buff: symmetric staging so partners can get() partial results.
  // l_buff: private landing zone so no PE's live data is overwritten.
  T* s_buff = static_cast<T*>(detail::collective_staging_alloc(sizeof(T), span));
  std::vector<T> l_buff(span);

  for (std::size_t j = 0; j < nelems; ++j) {
    const std::size_t at = j * static_cast<std::size_t>(stride);
    s_buff[at] = src[at];
  }
  comm.barrier();  // all s_buffs loaded before any partner pulls

  PeContext& ctx = xbrtime_ctx();
  const auto levels = ceil_log2(static_cast<std::uint64_t>(n));
  unsigned mask = (1u << levels) - 1u;
  const auto uvr = static_cast<unsigned>(vr);
  for (unsigned i = 0; i < levels; ++i) {
    mask ^= (1u << i);
    ctx.trace().record(EventKind::kStageBegin, -1, i, mask);
    if ((uvr | mask) == mask && (uvr & (1u << i)) == 0) {
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n;
      const int lpart = logical_rank(vpart, root, n);
      if (vr < vpart && nelems > 0) {
        xbr_get(l_buff.data(), s_buff, nelems, stride, comm.world_rank(lpart));
        for (std::size_t j = 0; j < nelems; ++j) {
          const std::size_t at = j * static_cast<std::size_t>(stride);
          s_buff[at] = Op::apply(s_buff[at], l_buff[at]);
        }
        ctx.clock().advance(detail::kReduceOpCycles * nelems);
      }
    }
    comm.barrier();
    ctx.trace().record(EventKind::kStageEnd, -1, i, mask);
  }

  if (vr == 0) {
    for (std::size_t k = 0; k < nelems; ++k) {
      const std::size_t at = k * static_cast<std::size_t>(stride);
      dest[at] = s_buff[at];
    }
  }
  detail::collective_staging_free(s_buff);
}

template <class T>
void reduce_sum(T* dest, const T* src, std::size_t nelems, int stride,
                int root, Communicator& comm = world_comm()) {
  reduce<OpSum>(dest, src, nelems, stride, root, comm);
}
template <class T>
void reduce_prod(T* dest, const T* src, std::size_t nelems, int stride,
                 int root, Communicator& comm = world_comm()) {
  reduce<OpProd>(dest, src, nelems, stride, root, comm);
}
template <class T>
void reduce_min(T* dest, const T* src, std::size_t nelems, int stride,
                int root, Communicator& comm = world_comm()) {
  reduce<OpMin>(dest, src, nelems, stride, root, comm);
}
template <class T>
void reduce_max(T* dest, const T* src, std::size_t nelems, int stride,
                int root, Communicator& comm = world_comm()) {
  reduce<OpMax>(dest, src, nelems, stride, root, comm);
}

// ---------------------------------------------------------------------------
// Scatter (Algorithm 3)
// ---------------------------------------------------------------------------

template <class T>
void scatter(T* dest, const T* src, const int* pe_msgs, const int* pe_disp,
             std::size_t nelems, int root, Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  const int my_world = comm.world_rank(me);

  const auto adj = detail::adjusted_displacements(comm, pe_msgs, root);
  XBGAS_CHECK(adj[static_cast<std::size_t>(n)] == nelems,
              "scatter: sum(pe_msgs) must equal nelems");

  T* s_buff =
      static_cast<T*>(detail::collective_staging_alloc(sizeof(T), nelems));

  if (vr == 0) {
    // Reorder src by *virtual* rank so each subtree's data is contiguous and
    // a single put per stage suffices even for non-zero roots (§4.5).
    for (int v = 0; v < n; ++v) {
      const int lr = logical_rank(v, root, n);
      const auto count = static_cast<std::size_t>(pe_msgs[lr]);
      if (count > 0) {
        xbr_put(s_buff + adj[static_cast<std::size_t>(v)],
                src + pe_disp[lr], count, 1, my_world);
      }
    }
  }
  comm.barrier();

  PeContext& ctx = xbrtime_ctx();
  const auto levels = ceil_log2(static_cast<std::uint64_t>(n));
  unsigned mask = (1u << levels) - 1u;
  const auto uvr = static_cast<unsigned>(vr);
  std::uint64_t stage = 0;
  for (int i = static_cast<int>(levels) - 1; i >= 0; --i) {
    mask ^= (1u << i);
    ctx.trace().record(EventKind::kStageBegin, -1, stage, mask);
    if ((uvr & mask) == 0 && (uvr & (1u << i)) == 0) {
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n;
      const int lpart = logical_rank(vpart, root, n);
      if (vr < vpart) {
        // Partner's subtree at this stage: virtual ranks
        // [vpart, min(vpart + 2^i, n)).
        const auto hi = std::min<std::size_t>(
            static_cast<std::size_t>(vpart) + (std::size_t{1} << i),
            static_cast<std::size_t>(n));
        const std::size_t msg_size =
            adj[hi] - adj[static_cast<std::size_t>(vpart)];
        if (msg_size > 0) {
          xbr_put(s_buff + adj[static_cast<std::size_t>(vpart)],
                  s_buff + adj[static_cast<std::size_t>(vpart)],
                  msg_size, 1, comm.world_rank(lpart));
        }
      }
    }
    comm.barrier();
    ctx.trace().record(EventKind::kStageEnd, -1, stage, mask);
    ++stage;
  }

  // Relocate this PE's assigned values from the staging buffer to dest.
  const auto mine = static_cast<std::size_t>(pe_msgs[me]);
  if (mine > 0) {
    xbr_put(dest, s_buff + adj[static_cast<std::size_t>(vr)], mine, 1,
            my_world);
  }
  detail::collective_staging_free(s_buff);
}

// ---------------------------------------------------------------------------
// Gather (Algorithm 4)
// ---------------------------------------------------------------------------

template <class T>
void gather(T* dest, const T* src, const int* pe_msgs, const int* pe_disp,
            std::size_t nelems, int root, Communicator& comm = world_comm()) {
  const int vr = detail::collective_prologue(comm, root, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  const int my_world = comm.world_rank(me);

  const auto adj = detail::adjusted_displacements(comm, pe_msgs, root);
  XBGAS_CHECK(adj[static_cast<std::size_t>(n)] == nelems,
              "gather: sum(pe_msgs) must equal nelems");

  T* s_buff =
      static_cast<T*>(detail::collective_staging_alloc(sizeof(T), nelems));

  // Load this PE's candidate gather data at its adjusted displacement.
  const auto mine = static_cast<std::size_t>(pe_msgs[me]);
  if (mine > 0) {
    xbr_put(s_buff + adj[static_cast<std::size_t>(vr)], src, mine, 1,
            my_world);
  }
  comm.barrier();

  PeContext& ctx = xbrtime_ctx();
  const auto levels = ceil_log2(static_cast<std::uint64_t>(n));
  unsigned mask = (1u << levels) - 1u;
  const auto uvr = static_cast<unsigned>(vr);
  for (unsigned i = 0; i < levels; ++i) {
    mask ^= (1u << i);
    ctx.trace().record(EventKind::kStageBegin, -1, i, mask);
    if ((uvr | mask) == mask && (uvr & (1u << i)) == 0) {
      const int vpart = static_cast<int>(uvr ^ (1u << i)) % n;
      const int lpart = logical_rank(vpart, root, n);
      if (vr < vpart) {
        // Partner has accumulated its full subtree [vpart, vpart + 2^i)
        // during earlier stages; pull it in one get.
        const auto hi = std::min<std::size_t>(
            static_cast<std::size_t>(vpart) + (std::size_t{1} << i),
            static_cast<std::size_t>(n));
        const std::size_t msg_size =
            adj[hi] - adj[static_cast<std::size_t>(vpart)];
        if (msg_size > 0) {
          xbr_get(s_buff + adj[static_cast<std::size_t>(vpart)],
                  s_buff + adj[static_cast<std::size_t>(vpart)],
                  msg_size, 1, comm.world_rank(lpart));
        }
      }
    }
    comm.barrier();
    ctx.trace().record(EventKind::kStageEnd, -1, i, mask);
  }

  if (vr == 0) {
    // Reorder from virtual-rank order back to logical-rank displacements.
    for (int v = 0; v < n; ++v) {
      const int lr = logical_rank(v, root, n);
      const auto count = static_cast<std::size_t>(pe_msgs[lr]);
      if (count > 0) {
        xbr_put(dest + pe_disp[lr], s_buff + adj[static_cast<std::size_t>(v)],
                count, 1, my_world);
      }
    }
  }
  detail::collective_staging_free(s_buff);
}

}  // namespace xbgas
