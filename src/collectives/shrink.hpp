#pragma once

// SurvivorTeam / xbr_team_shrink / xbr_team_revoke — the ULFM-style
// shrink-and-continue layer (docs/RESILIENCE.md).
//
// When a PE dies, every barrier is poisoned and survivors unwind with
// PeFailedError. Instead of letting the region fail, a survivor catches the
// error and calls xbr_team_shrink(parent): an xbr_agree over the parent's
// members produces the survivor roster, and every survivor constructs the
// same SurvivorTeam — a Communicator over exactly the live ranks, with its
// own rendezvous barrier born *clean* (the agreement acknowledged the death,
// so Machine::register_barrier no longer birth-poisons). Collectives,
// policy dispatch, and checkpoint/restore all run unchanged over the new
// team. If another PE dies while the team is being established, the
// constructor's rendezvous throws PeFailedError and xbr_team_shrink loops:
// it re-agrees over the smaller set until a team stands.
//
// xbr_team_revoke poisons a team's barrier with a generic "revoked" cause —
// the ULFM MPI_Comm_revoke analogue: current and future waiters throw plain
// Error (not PeFailedError), so revocation is never mistaken for a death.

#include <cstdint>
#include <memory>
#include <vector>

#include "collectives/comm.hpp"
#include "machine/barrier.hpp"

namespace xbgas {

class Machine;

/// Communicator over the survivor roster an agreement produced. Members are
/// arbitrary (not strided) world ranks; team rank r is the r-th smallest
/// surviving world rank. Construct via xbr_team_shrink.
class SurvivorTeam final : public Communicator {
 public:
  /// Collective over `members`: every member constructs with the identical
  /// (members, epoch) pair — xbr_team_shrink guarantees this by building
  /// both from the agreement decision. Rendezvouses on a shared barrier.
  SurvivorTeam(std::vector<int> members, std::uint64_t epoch);
  ~SurvivorTeam() override;

  SurvivorTeam(const SurvivorTeam&) = delete;
  SurvivorTeam& operator=(const SurvivorTeam&) = delete;

  int n_pes() const override { return static_cast<int>(members_.size()); }
  int rank() const override { return my_rank_; }
  int world_rank(int r) const override;
  void barrier() override;

  const std::vector<int>& members() const { return members_; }
  std::uint64_t epoch() const { return epoch_; }
  bool contains_world_rank(int wr) const;

  /// Poison this team's barrier with a generic "revoked" cause. Any member
  /// blocked in (or later arriving at) the team barrier throws Error.
  void revoke();

 private:
  std::vector<int> members_;
  std::uint64_t epoch_;
  int my_rank_;
  Machine* machine_;
  std::shared_ptr<ClockSyncBarrier> barrier_;
};

/// Shrink `parent` to its survivors. Called by every surviving member of
/// `parent` (typically from a PeFailedError handler); returns the same
/// SurvivorTeam on each. Resets the survivor's collective staging stack
/// (interrupted collectives may have left it asymmetric) and retries the
/// agreement if yet another member dies during team establishment.
std::unique_ptr<SurvivorTeam> xbr_team_shrink(Communicator& parent);
std::unique_ptr<SurvivorTeam> xbr_team_shrink();

/// Revoke a team: every member waiting on (or later entering) its barrier
/// throws Error whose message names the revoking rank and says "revoked".
/// Supported for SurvivorTeam and Team; throws Error for other
/// communicators (the world barrier cannot be revoked).
void xbr_team_revoke(Communicator& comm);

}  // namespace xbgas
