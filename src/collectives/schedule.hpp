#pragma once

// Communication-schedule enumeration for the binomial tree (paper §4.2,
// Figure 3). Pure functions of (n_pes): used by the Figure-3 bench to print
// the stage-by-stage tree, by tests to assert the edge set, and by the
// topology ablation (A2) to measure per-stage link load without running
// data through the runtime.

#include <vector>

namespace xbgas {

struct TreeEdge {
  int stage;       ///< loop iteration (0-based, in execution order)
  int from_vrank;  ///< data holder (broadcast: sender; reduce: getter's peer)
  int to_vrank;    ///< data receiver (broadcast: put target; reduce: getter)

  bool operator==(const TreeEdge&) const = default;
};

/// Edges of the top-down (put-based, recursive-halving) schedule used by
/// broadcast and scatter: stage s covers loop index i = L-1-s.
std::vector<TreeEdge> broadcast_schedule(int n_pes);

/// Edges of the bottom-up (get-based, recursive-doubling) schedule used by
/// reduce and gather: stage s covers loop index i = s; from_vrank is the
/// child whose data moves to to_vrank.
std::vector<TreeEdge> reduce_schedule(int n_pes);

/// Number of stages, ceil(log2(n_pes)).
int schedule_stages(int n_pes);

}  // namespace xbgas
