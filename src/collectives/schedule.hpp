#pragma once

// Communication-schedule enumeration for k-nomial trees (paper §4.2,
// Figure 3, generalized to radix k following shcoll's runtime-configurable
// tree degree). Pure functions of (n_pes, radix): used by the Figure-3 bench
// to print the stage-by-stage tree, by tests to assert the edge set, by the
// topology ablation (A2) to measure per-stage link load without running
// data through the runtime, and by the hierarchy engine
// (collectives/hierarchy.hpp) to drive every level's transfers.
//
// The binomial tree of the paper is exactly the radix-2 special case:
// broadcast_schedule(n) == knomial_broadcast_schedule(n, 2), edge for edge.

#include <vector>

namespace xbgas {

struct TreeEdge {
  int stage;       ///< loop iteration (0-based, in execution order)
  int from_vrank;  ///< data holder (broadcast: sender; reduce: getter's peer)
  int to_vrank;    ///< data receiver (broadcast: put target; reduce: getter)

  bool operator==(const TreeEdge&) const = default;
};

/// Edges of the top-down (put-based, recursive-halving) schedule used by
/// broadcast and scatter: stage s covers loop index i = L-1-s.
std::vector<TreeEdge> broadcast_schedule(int n_pes);

/// Edges of the bottom-up (get-based, recursive-doubling) schedule used by
/// reduce and gather: stage s covers loop index i = s; from_vrank is the
/// child whose data moves to to_vrank.
std::vector<TreeEdge> reduce_schedule(int n_pes);

/// Number of stages, ceil(log2(n_pes)).
int schedule_stages(int n_pes);

// -- k-nomial generalization ------------------------------------------------

/// Number of stages of the radix-k tree: smallest L with radix^L >= n_pes.
int knomial_stages(int n_pes, int radix);

/// Top-down k-nomial broadcast: at stage s (step = radix^(L-1-s)) every
/// holder vrank v ≡ 0 (mod radix*step) sends to v + j*step for
/// j = 1..radix-1, skipping targets >= n_pes. Edges are emitted in
/// execution order (stage, then sender vrank, then j). radix == 2
/// reproduces broadcast_schedule exactly.
std::vector<TreeEdge> knomial_broadcast_schedule(int n_pes, int radix);

/// Bottom-up mirror: at stage s (step = radix^s) every parent vrank
/// v ≡ 0 (mod radix*step) pulls the accumulated subtrees of v + j*step for
/// j = 1..radix-1. radix == 2 reproduces reduce_schedule exactly.
std::vector<TreeEdge> knomial_reduce_schedule(int n_pes, int radix);

}  // namespace xbgas
