#include "collectives/policy.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>

#include "collectives/schedule.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "net/topology.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

const char* coll_algo_name(CollAlgo algo) {
  switch (algo) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kTree: return "tree";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kHier: return "hier";
  }
  return "unknown";
}

const char* coll_kind_name(CollKind kind) {
  switch (kind) {
    case CollKind::kBroadcast: return "broadcast";
    case CollKind::kReduce: return "reduce";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kAllgather: return "allgather";
  }
  return "unknown";
}

CollAlgo parse_coll_algo(const std::string& name) {
  if (name == "auto") return CollAlgo::kAuto;
  if (name == "tree") return CollAlgo::kTree;
  if (name == "ring") return CollAlgo::kRing;
  if (name == "hier") return CollAlgo::kHier;
  throw Error("unknown collective algorithm: " + name +
              " (auto|tree|ring|hier)");
}

CollKind parse_coll_kind(const std::string& name) {
  if (name == "broadcast") return CollKind::kBroadcast;
  if (name == "reduce") return CollKind::kReduce;
  if (name == "allreduce") return CollKind::kAllreduce;
  if (name == "allgather") return CollKind::kAllgather;
  throw Error("unknown collective kind: " + name +
              " (broadcast|reduce|allreduce|allgather)");
}

// ---------------------------------------------------------------------------
// Tuner counters (process-wide; see emit_observability)
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_tuner_entries{0};
std::atomic<std::uint64_t> g_tuner_hits{0};
std::atomic<std::uint64_t> g_tuner_misses{0};

}  // namespace

CollTunerCounters coll_tuner_counters() {
  CollTunerCounters out;
  out.entries = g_tuner_entries.load(std::memory_order_relaxed);
  out.hits = g_tuner_hits.load(std::memory_order_relaxed);
  out.misses = g_tuner_misses.load(std::memory_order_relaxed);
  return out;
}

void reset_coll_tuner_counters() {
  g_tuner_entries.store(0, std::memory_order_relaxed);
  g_tuner_hits.store(0, std::memory_order_relaxed);
  g_tuner_misses.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TuneTable
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kTuneTableHeader = "# xbgas collective tune table v1";
}  // namespace

void TuneTable::insert(const TuneEntry& entry) {
  auto& bucket = by_key_[{static_cast<int>(entry.kind), entry.n_pes}];
  const auto at = std::lower_bound(
      bucket.begin(), bucket.end(), entry.bytes,
      [](const TuneEntry& e, std::size_t b) { return e.bytes < b; });
  if (at != bucket.end() && at->bytes == entry.bytes) {
    *at = entry;
    return;
  }
  bucket.insert(at, entry);
  ++count_;
}

std::vector<TuneEntry> TuneTable::entries() const {
  std::vector<TuneEntry> out;
  out.reserve(count_);
  for (const auto& [key, bucket] : by_key_) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  return out;
}

const TuneEntry* TuneTable::lookup(CollKind kind, int n_pes,
                                   std::size_t bytes) const {
  const auto it = by_key_.find({static_cast<int>(kind), n_pes});
  if (it == by_key_.end() || it->second.empty()) return nullptr;
  const auto& bucket = it->second;
  const auto ge = std::lower_bound(
      bucket.begin(), bucket.end(), bytes,
      [](const TuneEntry& e, std::size_t b) { return e.bytes < b; });
  if (ge == bucket.begin()) return &*ge;
  if (ge == bucket.end()) return &bucket.back();
  // Nearest measured point in log scale (the sweep is geometric).
  const auto lt = ge - 1;
  const double q = static_cast<double>(std::max<std::size_t>(bytes, 1));
  const double lo = static_cast<double>(std::max<std::size_t>(lt->bytes, 1));
  const double hi = static_cast<double>(std::max<std::size_t>(ge->bytes, 1));
  return q / lo <= hi / q ? &*lt : &*ge;
}

void TuneTable::save(const std::string& path) const {
  std::ofstream out(path);
  XBGAS_CHECK(out.good(), "tune table: cannot open for write: " + path);
  out << kTuneTableHeader << "\n";
  for (const auto& [key, bucket] : by_key_) {
    for (const auto& e : bucket) {
      out << coll_kind_name(e.kind) << ' ' << e.n_pes << ' ' << e.bytes << ' '
          << coll_algo_name(e.algo) << ' ' << e.radix << ' ' << e.chunk
          << "\n";
    }
  }
  out.flush();
  XBGAS_CHECK(out.good(), "tune table: write failed: " + path);
}

TuneTable TuneTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw Error("tune table: cannot open: " + path);
  std::string line;
  XBGAS_CHECK(std::getline(in, line) && line == kTuneTableHeader,
              "tune table: bad header in " + path);
  TuneTable table;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string kind_name, algo_name;
    TuneEntry e;
    if (!(row >> kind_name >> e.n_pes >> e.bytes >> algo_name >> e.radix >>
          e.chunk)) {
      throw Error("tune table: bad row in " + path + ": " + line);
    }
    e.kind = parse_coll_kind(kind_name);
    e.algo = parse_coll_algo(algo_name);
    XBGAS_CHECK(e.algo != CollAlgo::kAuto,
                "tune table: entries must name a concrete algorithm");
    XBGAS_CHECK(e.n_pes >= 1 && e.radix >= 2,
                "tune table: bad n_pes/radix in " + path);
    table.insert(e);
  }
  return table;
}

// ---------------------------------------------------------------------------
// CollectivePolicy
// ---------------------------------------------------------------------------

CollectivePolicy::CollectivePolicy() = default;

CollectivePolicy::CollectivePolicy(const MachineConfig& config,
                                   CollAlgo forced)
    : net_(config.net),
      default_radix_(config.coll_radix >= 2 ? config.coll_radix : 2),
      forced_(forced == CollAlgo::kAuto ? parse_coll_algo(config.coll_algo)
                                        : forced) {
  const auto topology = make_topology(config.topology_name, config.n_pes);
  mean_hops_ = config.n_pes > 1 ? topology->mean_hops() : 1.0;
  if (const auto* cluster =
          dynamic_cast<const ClusterTopology*>(topology.get())) {
    for (const auto& lv : cluster->levels()) {
      cluster_groups_.push_back(lv.group);
      cluster_hops_.push_back(lv.hops);
    }
  }
  if (!config.coll_tune_table.empty()) {
    set_tune_table(TuneTable::load(config.coll_tune_table));
  }
}

void CollectivePolicy::set_tune_table(TuneTable table) {
  tune_table_ = std::move(table);
  g_tuner_entries.store(tune_table_.size(), std::memory_order_relaxed);
}

void CollectivePolicy::apply_link_faults(
    std::vector<std::pair<int, int>> down_pairs, const MachineConfig& config) {
  for (auto& p : down_pairs) {
    if (p.first > p.second) std::swap(p.first, p.second);
  }
  std::sort(down_pairs.begin(), down_pairs.end());
  down_pairs.erase(std::unique(down_pairs.begin(), down_pairs.end()),
                   down_pairs.end());
  down_pairs_ = std::move(down_pairs);
  if (down_pairs_.empty() || config.n_pes <= 1) return;
  const auto topology = make_topology(config.topology_name, config.n_pes);
  const DegradedTopologyView view(*topology, down_pairs_);
  mean_hops_ = view.degraded_mean_hops();
}

bool CollectivePolicy::level_cut(int g, int n_pes) const {
  for (const auto& p : down_pairs_) {
    if (p.second < n_pes && p.first / g == p.second / g) return true;
  }
  return false;
}

bool CollectivePolicy::family_blocked(CollAlgo algo, int n_pes) const {
  if (down_pairs_.empty() || n_pes <= 1) return false;
  const auto down = [&](int a, int b) {
    if (a > b) std::swap(a, b);
    return std::binary_search(down_pairs_.begin(), down_pairs_.end(),
                              std::make_pair(a, b));
  };
  switch (algo) {
    case CollAlgo::kRing:
      for (int r = 0; r < n_pes; ++r) {
        if (down(r, (r + 1) % n_pes)) return true;
      }
      return false;
    case CollAlgo::kTree: {
      // k-nomial parent edges rooted at 0: rank r's parent clears r's
      // lowest nonzero base-k digit.
      const int k = std::max(default_radix_, 2);
      for (int r = 1; r < n_pes; ++r) {
        long long place = 1;
        while ((r / place) % k == 0) place *= k;
        const int parent = static_cast<int>(r - r % (place * k));
        if (down(parent, r)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

std::vector<int> CollectivePolicy::hier_groups(int n_pes) const {
  std::vector<int> groups;
  for (const int g : cluster_groups_) {
    if (g >= 2 && g < n_pes && n_pes % g == 0 && !level_cut(g, n_pes)) {
      groups.push_back(g);
    }
  }
  return groups;
}

HierShape CollectivePolicy::hier_shape(int n_pes, int radix,
                                       std::size_t chunk) const {
  return HierShape{hier_groups(n_pes), radix >= 2 ? radix : default_radix_,
                   chunk};
}

namespace {

/// Per-message startup cost with an explicit hop distance.
double alpha_cycles(const NetCostParams& net, double hops) {
  return static_cast<double>(net.olb_lookup_cycles) +
         static_cast<double>(net.injection_cycles) +
         hops * static_cast<double>(net.per_hop_cycles) +
         static_cast<double>(net.remote_mem_cycles) +
         static_cast<double>(net.fabric_message_cycles) +
         static_cast<double>(net.message_header_bytes) /
             net.link_bytes_per_cycle;
}

double message_with_hops(const NetCostParams& net, double hops,
                         std::size_t bytes) {
  return alpha_cycles(net, hops) +
         static_cast<double>(bytes) / net.link_bytes_per_cycle;
}

constexpr double kGamma = static_cast<double>(detail::kReduceOpCycles);

}  // namespace

double CollectivePolicy::message_cost(std::size_t bytes) const {
  return message_with_hops(net_, mean_hops_, bytes);
}

double CollectivePolicy::barrier_cost(int n_pes) const {
  return static_cast<double>(net_.barrier_cycles(std::max(n_pes, 1)));
}

double CollectivePolicy::tree_cost(CollKind kind, int n_pes,
                                   std::size_t nelems,
                                   std::size_t elem_size) const {
  if (n_pes <= 1) return 0.0;
  const std::size_t bytes = nelems * elem_size;
  const auto levels = static_cast<double>(
      ceil_log2(static_cast<std::uint64_t>(n_pes)));
  const double bar = barrier_cost(n_pes);
  switch (kind) {
    case CollKind::kBroadcast:
      return levels * (message_cost(bytes) + bar);
    case CollKind::kReduce:
      return levels *
             (message_cost(bytes) + bar + kGamma * static_cast<double>(nelems));
    case CollKind::kAllreduce:
      return tree_cost(CollKind::kReduce, n_pes, nelems, elem_size) +
             tree_cost(CollKind::kBroadcast, n_pes, nelems, elem_size);
    case CollKind::kAllgather: {
      // Gather with doubling subtree payloads (nelems is the TOTAL element
      // count for allgather kinds), then a full-payload broadcast. Ceiling
      // division: a sub-n_pes payload still moves at least one element's
      // bytes per stage instead of collapsing to the bare header.
      double gather = 0.0;
      const auto n = static_cast<std::size_t>(n_pes);
      const std::size_t per = (bytes + n - 1) / n;
      for (std::size_t sub = 1; sub < n; sub *= 2) {
        const std::size_t stage_bytes = sub * (per + elem_size);
        gather += message_cost(stage_bytes) + bar;
      }
      return gather + tree_cost(CollKind::kBroadcast, n_pes, nelems, elem_size);
    }
  }
  return 0.0;
}

double CollectivePolicy::ring_cost(CollKind kind, int n_pes,
                                   std::size_t nelems,
                                   std::size_t elem_size) const {
  if (n_pes <= 1) return 0.0;
  const std::size_t bytes = nelems * elem_size;
  const auto n = static_cast<double>(n_pes);
  const double bar = barrier_cost(n_pes);
  switch (kind) {
    case CollKind::kBroadcast:
    case CollKind::kReduce: {
      const auto segs = static_cast<double>(ring_default_segments(nelems));
      const double steps = (n - 2.0) + segs;
      const double per_step =
          message_cost(static_cast<std::size_t>(
              static_cast<double>(bytes) / segs)) + bar;
      const double combine = kind == CollKind::kReduce
                                 ? kGamma * static_cast<double>(nelems)
                                 : 0.0;
      return steps * per_step + combine;
    }
    case CollKind::kAllreduce: {
      const auto chunk = static_cast<std::size_t>(
          static_cast<double>(bytes) / n);
      return 2.0 * (n - 1.0) * (message_cost(chunk) + bar) +
             kGamma * static_cast<double>(nelems);
    }
    case CollKind::kAllgather: {
      const auto chunk = static_cast<std::size_t>(
          static_cast<double>(bytes) / n);
      return (n - 1.0) * (message_cost(chunk) + bar);
    }
  }
  return 0.0;
}

bool CollectivePolicy::hier_eligible(CollKind kind, int n_pes) const {
  (void)kind;  // every collective kind has a hierarchical schedule now
  if (n_pes <= 1) return false;
  return !hier_groups(n_pes).empty();
}

double CollectivePolicy::hier_cost(CollKind kind, int n_pes,
                                   std::size_t nelems,
                                   std::size_t elem_size) const {
  if (!hier_eligible(kind, n_pes)) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t bytes = nelems * elem_size;
  const int radix = default_radix_;

  // Rebuild the level stack the engine will run (hier_groups filtered from
  // the topology), pairing each level's team size with its link distance.
  std::vector<int> groups;
  std::vector<int> link_hops;
  for (std::size_t i = 0; i < cluster_groups_.size(); ++i) {
    const int g = cluster_groups_[i];
    if (g >= 2 && g < n_pes && n_pes % g == 0 && !level_cut(g, n_pes)) {
      groups.push_back(g);
      link_hops.push_back(cluster_hops_[i]);
    }
  }

  struct Level {
    int team;     ///< team size at this level
    double hops;  ///< link distance its transfers cross
  };
  std::vector<Level> stack;
  stack.push_back(Level{n_pes / groups.back(),
                        static_cast<double>(link_hops.back())});
  for (std::size_t i = groups.size(); i-- > 0;) {
    const int sub = i == 0 ? 1 : groups[i - 1];
    stack.push_back(Level{groups[i] / sub,
                          i == 0 ? 1.0
                                 : static_cast<double>(link_hops[i - 1])});
  }

  const auto stage_sum = [&](double per_stage_extra,
                             std::size_t stage_bytes) {
    double total = 0.0;
    for (const auto& lv : stack) {
      const auto stages =
          static_cast<double>(knomial_stages(lv.team, radix));
      total += stages * (message_with_hops(net_, lv.hops, stage_bytes) +
                         barrier_cost(lv.team) + per_stage_extra);
    }
    return total;
  };

  // Root -> top-leader handoff: one local message plus the pair barrier.
  const double handoff = message_with_hops(net_, 1.0, bytes) + barrier_cost(2);
  const double bcast = handoff + stage_sum(0.0, bytes);
  switch (kind) {
    case CollKind::kBroadcast:
      return bcast;
    case CollKind::kReduce:
      return handoff + stage_sum(kGamma * static_cast<double>(nelems), bytes);
    case CollKind::kAllreduce:
      return hier_cost(CollKind::kReduce, n_pes, nelems, elem_size) + bcast;
    case CollKind::kAllgather: {
      // Block gather up the stack (payload grows toward the full
      // concatenation; bound each level by its accumulated width), then a
      // full-payload broadcast back down.
      const auto n = static_cast<std::size_t>(n_pes);
      const std::size_t per = (bytes + n - 1) / n;
      double gather_up = 0.0;
      std::size_t width = 1;
      for (std::size_t l = stack.size(); l-- > 0;) {
        const auto& lv = stack[l];
        width *= static_cast<std::size_t>(lv.team);
        const auto stages = static_cast<double>(knomial_stages(lv.team, radix));
        gather_up += stages * (message_with_hops(net_, lv.hops, width * per) +
                               barrier_cost(lv.team));
      }
      return gather_up + bcast;
    }
  }
  return bcast;
}

CollAlgo CollectivePolicy::choose(CollKind kind, int n_pes,
                                  std::size_t nelems, std::size_t elem_size,
                                  bool world) const {
  const bool ring_ok = n_pes >= 2;
  const bool hier_ok = world && hier_eligible(kind, n_pes);
  if (forced_ != CollAlgo::kAuto) {
    if (forced_ == CollAlgo::kRing && !ring_ok) return CollAlgo::kTree;
    if (forced_ == CollAlgo::kHier && !hier_ok) return CollAlgo::kTree;
    return forced_;
  }
  double tree = tree_cost(kind, n_pes, nelems, elem_size);
  double ring = ring_ok ? ring_cost(kind, n_pes, nelems, elem_size)
                        : std::numeric_limits<double>::infinity();
  const double hier = hier_ok ? hier_cost(kind, n_pes, nelems, elem_size)
                              : std::numeric_limits<double>::infinity();
  if (!down_pairs_.empty()) {
    // Route around dead links: a family whose fixed schedule crosses one is
    // out of the running — unless every family is blocked, in which case
    // the costs stand and the unreachable-peer escalation takes over.
    const double inf = std::numeric_limits<double>::infinity();
    const double b_tree = family_blocked(CollAlgo::kTree, n_pes) ? inf : tree;
    const double b_ring = family_blocked(CollAlgo::kRing, n_pes) ? inf : ring;
    if (std::isfinite(b_tree) || std::isfinite(b_ring) ||
        std::isfinite(hier)) {
      tree = b_tree;
      ring = b_ring;
    }
  }
  CollAlgo best = CollAlgo::kTree;
  double best_cost = tree;
  if (ring < best_cost) {
    best = CollAlgo::kRing;
    best_cost = ring;
  }
  if (hier < best_cost) {
    best = CollAlgo::kHier;
  }
  return best;
}

CollDecision CollectivePolicy::decide(CollKind kind, int n_pes,
                                      std::size_t nelems,
                                      std::size_t elem_size,
                                      bool world) const {
  CollDecision d;
  d.radix = default_radix_;
  if (forced_ != CollAlgo::kAuto) {
    d.algo = choose(kind, n_pes, nelems, elem_size, world);
    return d;
  }
  if (!tune_table_.empty() && world) {
    const TuneEntry* e = tune_table_.lookup(kind, n_pes, nelems * elem_size);
    bool usable = e != nullptr;
    if (usable && e->algo == CollAlgo::kHier &&
        !hier_eligible(kind, n_pes)) {
      usable = false;
    }
    if (usable && e->algo == CollAlgo::kRing && n_pes < 2) usable = false;
    if (usable) {
      g_tuner_hits.fetch_add(1, std::memory_order_relaxed);
      d.algo = e->algo;
      if (e->radix >= 2) d.radix = e->radix;
      d.chunk = e->chunk;
      d.tuned = true;
      return d;
    }
    g_tuner_misses.fetch_add(1, std::memory_order_relaxed);
  }
  d.algo = choose(kind, n_pes, nelems, elem_size, world);
  return d;
}

std::size_t CollectivePolicy::crossover_nelems(CollKind kind, int n_pes,
                                               std::size_t elem_size) const {
  if (n_pes < 2) return std::numeric_limits<std::size_t>::max();
  constexpr std::size_t kCap = std::size_t{1} << 24;
  const auto ring_wins = [&](std::size_t x) {
    return ring_cost(kind, n_pes, x, elem_size) <=
           tree_cost(kind, n_pes, x, elem_size);
  };
  std::size_t hi = 1;
  while (hi <= kCap && !ring_wins(hi)) hi *= 2;
  if (hi > kCap) return std::numeric_limits<std::size_t>::max();
  std::size_t lo = hi / 2;  // ring loses at lo (or lo == 0)
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ring_wins(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

// ---------------------------------------------------------------------------
// Dispatch bookkeeping
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_total{0};
std::atomic<std::uint64_t> g_auto{0};
std::atomic<std::uint64_t> g_by_algo[kCollAlgoCount] = {};
std::atomic<std::uint64_t> g_by_kind_algo[kCollKindCount][kCollAlgoCount] = {};

}  // namespace

CollDispatchCounts coll_dispatch_counts() {
  CollDispatchCounts out;
  out.total = g_total.load(std::memory_order_relaxed);
  out.auto_resolved = g_auto.load(std::memory_order_relaxed);
  for (int a = 0; a < kCollAlgoCount; ++a) {
    out.by_algo[a] = g_by_algo[a].load(std::memory_order_relaxed);
    for (int k = 0; k < kCollKindCount; ++k) {
      out.by_kind_algo[k][a] =
          g_by_kind_algo[k][a].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset_coll_dispatch_counts() {
  g_total.store(0, std::memory_order_relaxed);
  g_auto.store(0, std::memory_order_relaxed);
  for (int a = 0; a < kCollAlgoCount; ++a) {
    g_by_algo[a].store(0, std::memory_order_relaxed);
    for (int k = 0; k < kCollKindCount; ++k) {
      g_by_kind_algo[k][a].store(0, std::memory_order_relaxed);
    }
  }
}

const CollectivePolicy& active_collective_policy() {
  // PE fibers are multiplexed N:M over pooled worker threads whose
  // thread_locals outlive any single Machine, and the allocator may hand a
  // later Machine the same address — so the cache is keyed by the
  // never-reused instance_id, not the Machine pointer.
  // The link-fault version joins the key: a scripted link going down (or
  // healing) rebuilds the policy, so routes, mean hops, and level stacks
  // re-derive from the degraded reachability view.
  thread_local std::uint64_t cached_for = 0;  // instance ids start at 1
  thread_local std::uint64_t cached_link_version = 0;
  thread_local CollectivePolicy cached;
  const Machine& machine = xbrtime_ctx().machine();
  const std::uint64_t link_version = machine.network().link_faults().version();
  if (cached_for != machine.instance_id() ||
      cached_link_version != link_version) {
    cached = CollectivePolicy(machine.config());
    if (link_version != 0) {
      cached.apply_link_faults(machine.network().link_faults().down_pairs(),
                               machine.config());
    }
    cached_for = machine.instance_id();
    cached_link_version = link_version;
  }
  return cached;
}

namespace detail {

CollDecision resolve_and_record(CollKind kind, int n_pes, std::size_t nelems,
                                std::size_t elem_size, bool world) {
  const CollectivePolicy& policy = active_collective_policy();
  const CollDecision d =
      policy.decide(kind, n_pes, nelems, elem_size, world);
  g_total.fetch_add(1, std::memory_order_relaxed);
  if (policy.forced() == CollAlgo::kAuto) {
    g_auto.fetch_add(1, std::memory_order_relaxed);
  }
  g_by_algo[static_cast<int>(d.algo)].fetch_add(1, std::memory_order_relaxed);
  g_by_kind_algo[static_cast<int>(kind)][static_cast<int>(d.algo)].fetch_add(
      1, std::memory_order_relaxed);
  xbrtime_ctx().trace().record(
      EventKind::kCollDispatch, -1,
      (static_cast<std::uint64_t>(kind) << 8) |
          static_cast<std::uint64_t>(d.algo),
      nelems * elem_size);
  return d;
}

}  // namespace detail

}  // namespace xbgas
