#include "collectives/policy.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "net/topology.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

const char* coll_algo_name(CollAlgo algo) {
  switch (algo) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kTree: return "tree";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kHier: return "hier";
  }
  return "unknown";
}

const char* coll_kind_name(CollKind kind) {
  switch (kind) {
    case CollKind::kBroadcast: return "broadcast";
    case CollKind::kReduce: return "reduce";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kAllgather: return "allgather";
  }
  return "unknown";
}

CollAlgo parse_coll_algo(const std::string& name) {
  if (name == "auto") return CollAlgo::kAuto;
  if (name == "tree") return CollAlgo::kTree;
  if (name == "ring") return CollAlgo::kRing;
  if (name == "hier") return CollAlgo::kHier;
  throw Error("unknown collective algorithm: " + name +
              " (auto|tree|ring|hier)");
}

CollectivePolicy::CollectivePolicy() = default;

CollectivePolicy::CollectivePolicy(const MachineConfig& config,
                                   CollAlgo forced)
    : net_(config.net),
      forced_(forced == CollAlgo::kAuto ? parse_coll_algo(config.coll_algo)
                                        : forced) {
  const auto topology = make_topology(config.topology_name, config.n_pes);
  mean_hops_ = config.n_pes > 1 ? topology->mean_hops() : 1.0;
  if (const auto* cluster =
          dynamic_cast<const ClusterTopology*>(topology.get())) {
    cluster_group_ = cluster->group_size();
    cluster_remote_hops_ = cluster->remote_hops();
  }
}

namespace {

/// Per-message startup cost with an explicit hop distance.
double alpha_cycles(const NetCostParams& net, double hops) {
  return static_cast<double>(net.olb_lookup_cycles) +
         static_cast<double>(net.injection_cycles) +
         hops * static_cast<double>(net.per_hop_cycles) +
         static_cast<double>(net.remote_mem_cycles) +
         static_cast<double>(net.fabric_message_cycles) +
         static_cast<double>(net.message_header_bytes) /
             net.link_bytes_per_cycle;
}

double message_with_hops(const NetCostParams& net, double hops,
                         std::size_t bytes) {
  return alpha_cycles(net, hops) +
         static_cast<double>(bytes) / net.link_bytes_per_cycle;
}

constexpr double kGamma = static_cast<double>(detail::kReduceOpCycles);

}  // namespace

double CollectivePolicy::message_cost(std::size_t bytes) const {
  return message_with_hops(net_, mean_hops_, bytes);
}

double CollectivePolicy::barrier_cost(int n_pes) const {
  return static_cast<double>(net_.barrier_cycles(std::max(n_pes, 1)));
}

double CollectivePolicy::tree_cost(CollKind kind, int n_pes,
                                   std::size_t nelems,
                                   std::size_t elem_size) const {
  if (n_pes <= 1) return 0.0;
  const std::size_t bytes = nelems * elem_size;
  const auto levels = static_cast<double>(
      ceil_log2(static_cast<std::uint64_t>(n_pes)));
  const double bar = barrier_cost(n_pes);
  switch (kind) {
    case CollKind::kBroadcast:
      return levels * (message_cost(bytes) + bar);
    case CollKind::kReduce:
      return levels *
             (message_cost(bytes) + bar + kGamma * static_cast<double>(nelems));
    case CollKind::kAllreduce:
      return tree_cost(CollKind::kReduce, n_pes, nelems, elem_size) +
             tree_cost(CollKind::kBroadcast, n_pes, nelems, elem_size);
    case CollKind::kAllgather: {
      // Gather with doubling subtree payloads (nelems is the TOTAL element
      // count for allgather kinds), then a full-payload broadcast.
      double gather = 0.0;
      const auto n = static_cast<std::size_t>(n_pes);
      for (std::size_t sub = 1; sub < n; sub *= 2) {
        const std::size_t stage_bytes =
            std::min(sub, n) * (bytes / n + elem_size);
        gather += message_cost(stage_bytes) + bar;
      }
      return gather + tree_cost(CollKind::kBroadcast, n_pes, nelems, elem_size);
    }
  }
  return 0.0;
}

double CollectivePolicy::ring_cost(CollKind kind, int n_pes,
                                   std::size_t nelems,
                                   std::size_t elem_size) const {
  if (n_pes <= 1) return 0.0;
  const std::size_t bytes = nelems * elem_size;
  const auto n = static_cast<double>(n_pes);
  const double bar = barrier_cost(n_pes);
  switch (kind) {
    case CollKind::kBroadcast:
    case CollKind::kReduce: {
      const auto segs = static_cast<double>(ring_default_segments(nelems));
      const double steps = (n - 2.0) + segs;
      const double per_step =
          message_cost(static_cast<std::size_t>(
              static_cast<double>(bytes) / segs)) + bar;
      const double combine = kind == CollKind::kReduce
                                 ? kGamma * static_cast<double>(nelems)
                                 : 0.0;
      return steps * per_step + combine;
    }
    case CollKind::kAllreduce: {
      const auto chunk = static_cast<std::size_t>(
          static_cast<double>(bytes) / n);
      return 2.0 * (n - 1.0) * (message_cost(chunk) + bar) +
             kGamma * static_cast<double>(nelems);
    }
    case CollKind::kAllgather: {
      const auto chunk = static_cast<std::size_t>(
          static_cast<double>(bytes) / n);
      return (n - 1.0) * (message_cost(chunk) + bar);
    }
  }
  return 0.0;
}

bool CollectivePolicy::hier_eligible(CollKind kind, int n_pes) const {
  if (cluster_group_ <= 1 || n_pes <= 1) return false;
  if (kind != CollKind::kBroadcast && kind != CollKind::kAllreduce) {
    return false;
  }
  return n_pes % cluster_group_ == 0 && cluster_group_ < n_pes;
}

double CollectivePolicy::hier_cost(CollKind kind, int n_pes,
                                   std::size_t nelems,
                                   std::size_t elem_size) const {
  if (!hier_eligible(kind, n_pes)) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t bytes = nelems * elem_size;
  const double bar = barrier_cost(n_pes);
  const int groups = n_pes / cluster_group_;
  const auto levels_groups = static_cast<double>(
      ceil_log2(static_cast<std::uint64_t>(groups)));
  const auto levels_local = static_cast<double>(
      ceil_log2(static_cast<std::uint64_t>(cluster_group_)));
  // root -> leader handoff (local) + leaders tree over the long links +
  // per-node local tree + the two explicit world barriers.
  const double bcast =
      message_with_hops(net_, 1.0, bytes) +
      levels_groups *
          (message_with_hops(net_, static_cast<double>(cluster_remote_hops_),
                             bytes) +
           bar) +
      levels_local * (message_with_hops(net_, 1.0, bytes) + bar) + 2.0 * bar;
  if (kind == CollKind::kAllreduce) {
    return tree_cost(CollKind::kReduce, n_pes, nelems, elem_size) + bcast;
  }
  return bcast;
}

CollAlgo CollectivePolicy::choose(CollKind kind, int n_pes,
                                  std::size_t nelems, std::size_t elem_size,
                                  bool world) const {
  const bool ring_ok = n_pes >= 2;
  const bool hier_ok = world && hier_eligible(kind, n_pes);
  if (forced_ != CollAlgo::kAuto) {
    if (forced_ == CollAlgo::kRing && !ring_ok) return CollAlgo::kTree;
    if (forced_ == CollAlgo::kHier && !hier_ok) return CollAlgo::kTree;
    return forced_;
  }
  const double tree = tree_cost(kind, n_pes, nelems, elem_size);
  const double ring = ring_ok ? ring_cost(kind, n_pes, nelems, elem_size)
                              : std::numeric_limits<double>::infinity();
  const double hier = hier_ok ? hier_cost(kind, n_pes, nelems, elem_size)
                              : std::numeric_limits<double>::infinity();
  CollAlgo best = CollAlgo::kTree;
  double best_cost = tree;
  if (ring < best_cost) {
    best = CollAlgo::kRing;
    best_cost = ring;
  }
  if (hier < best_cost) {
    best = CollAlgo::kHier;
  }
  return best;
}

std::size_t CollectivePolicy::crossover_nelems(CollKind kind, int n_pes,
                                               std::size_t elem_size) const {
  if (n_pes < 2) return std::numeric_limits<std::size_t>::max();
  constexpr std::size_t kCap = std::size_t{1} << 24;
  const auto ring_wins = [&](std::size_t x) {
    return ring_cost(kind, n_pes, x, elem_size) <=
           tree_cost(kind, n_pes, x, elem_size);
  };
  std::size_t hi = 1;
  while (hi <= kCap && !ring_wins(hi)) hi *= 2;
  if (hi > kCap) return std::numeric_limits<std::size_t>::max();
  std::size_t lo = hi / 2;  // ring loses at lo (or lo == 0)
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ring_wins(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

// ---------------------------------------------------------------------------
// Dispatch bookkeeping
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_total{0};
std::atomic<std::uint64_t> g_auto{0};
std::atomic<std::uint64_t> g_by_algo[kCollAlgoCount] = {};
std::atomic<std::uint64_t> g_by_kind_algo[kCollKindCount][kCollAlgoCount] = {};

}  // namespace

CollDispatchCounts coll_dispatch_counts() {
  CollDispatchCounts out;
  out.total = g_total.load(std::memory_order_relaxed);
  out.auto_resolved = g_auto.load(std::memory_order_relaxed);
  for (int a = 0; a < kCollAlgoCount; ++a) {
    out.by_algo[a] = g_by_algo[a].load(std::memory_order_relaxed);
    for (int k = 0; k < kCollKindCount; ++k) {
      out.by_kind_algo[k][a] =
          g_by_kind_algo[k][a].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset_coll_dispatch_counts() {
  g_total.store(0, std::memory_order_relaxed);
  g_auto.store(0, std::memory_order_relaxed);
  for (int a = 0; a < kCollAlgoCount; ++a) {
    g_by_algo[a].store(0, std::memory_order_relaxed);
    for (int k = 0; k < kCollKindCount; ++k) {
      g_by_kind_algo[k][a].store(0, std::memory_order_relaxed);
    }
  }
}

const CollectivePolicy& active_collective_policy() {
  // PE threads are created fresh for every SPMD region, so the caches can
  // never outlive the Machine they were built from.
  thread_local const Machine* cached_for = nullptr;
  thread_local CollectivePolicy cached;
  const Machine& machine = xbrtime_ctx().machine();
  if (cached_for != &machine) {
    cached = CollectivePolicy(machine.config());
    cached_for = &machine;
  }
  return cached;
}

namespace detail {

CollAlgo resolve_and_record(CollKind kind, int n_pes, std::size_t nelems,
                            std::size_t elem_size, bool world) {
  const CollectivePolicy& policy = active_collective_policy();
  const CollAlgo algo = policy.choose(kind, n_pes, nelems, elem_size, world);
  g_total.fetch_add(1, std::memory_order_relaxed);
  if (policy.forced() == CollAlgo::kAuto) {
    g_auto.fetch_add(1, std::memory_order_relaxed);
  }
  g_by_algo[static_cast<int>(algo)].fetch_add(1, std::memory_order_relaxed);
  g_by_kind_algo[static_cast<int>(kind)][static_cast<int>(algo)].fetch_add(
      1, std::memory_order_relaxed);
  xbrtime_ctx().trace().record(
      EventKind::kCollDispatch, -1,
      (static_cast<std::uint64_t>(kind) << 8) |
          static_cast<std::uint64_t>(algo),
      nelems * elem_size);
  return algo;
}

}  // namespace detail

}  // namespace xbgas
