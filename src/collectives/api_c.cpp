#include "collectives/api_c.hpp"

#include "collectives/policy.hpp"

namespace xbgas {

#define XBGAS_DEFINE_COLL(NAME, TYPE)                                       \
  void xbrtime_##NAME##_broadcast(TYPE* dest, const TYPE* src,              \
                                  std::size_t nelems, int stride,           \
                                  int root) {                               \
    dispatch_broadcast(dest, src, nelems, stride, root);                             \
  }                                                                         \
  void xbrtime_##NAME##_reduce_sum(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root) {                              \
    dispatch_reduce<OpSum>(dest, src, nelems, stride, root);                         \
  }                                                                         \
  void xbrtime_##NAME##_reduce_prod(TYPE* dest, const TYPE* src,            \
                                    std::size_t nelems, int stride,         \
                                    int root) {                             \
    dispatch_reduce<OpProd>(dest, src, nelems, stride, root);                        \
  }                                                                         \
  void xbrtime_##NAME##_reduce_min(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root) {                              \
    dispatch_reduce<OpMin>(dest, src, nelems, stride, root);                         \
  }                                                                         \
  void xbrtime_##NAME##_reduce_max(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root) {                              \
    dispatch_reduce<OpMax>(dest, src, nelems, stride, root);                         \
  }                                                                         \
  void xbrtime_##NAME##_scatter(TYPE* dest, const TYPE* src,                \
                                const int* pe_msgs, const int* pe_disp,     \
                                std::size_t nelems, int root) {             \
    scatter(dest, src, pe_msgs, pe_disp, nelems, root);                     \
  }                                                                         \
  void xbrtime_##NAME##_gather(TYPE* dest, const TYPE* src,                 \
                               const int* pe_msgs, const int* pe_disp,      \
                               std::size_t nelems, int root) {              \
    gather(dest, src, pe_msgs, pe_disp, nelems, root);                      \
  }

XBGAS_FOREACH_TYPE(XBGAS_DEFINE_COLL)

#undef XBGAS_DEFINE_COLL

#define XBGAS_DEFINE_COLL_BITWISE(NAME, TYPE)                               \
  void xbrtime_##NAME##_reduce_and(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root) {                              \
    dispatch_reduce<OpBand>(dest, src, nelems, stride, root);                        \
  }                                                                         \
  void xbrtime_##NAME##_reduce_or(TYPE* dest, const TYPE* src,              \
                                  std::size_t nelems, int stride,           \
                                  int root) {                               \
    dispatch_reduce<OpBor>(dest, src, nelems, stride, root);                         \
  }                                                                         \
  void xbrtime_##NAME##_reduce_xor(TYPE* dest, const TYPE* src,             \
                                   std::size_t nelems, int stride,          \
                                   int root) {                              \
    dispatch_reduce<OpBxor>(dest, src, nelems, stride, root);                        \
  }

XBGAS_FOREACH_INT_TYPE(XBGAS_DEFINE_COLL_BITWISE)

#undef XBGAS_DEFINE_COLL_BITWISE

}  // namespace xbgas
