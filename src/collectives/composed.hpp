#pragma once

// Composed collectives (paper §4.7 & §7).
//
// The paper notes its four binomial-tree primitives "can be combined
// together to accomplish the semantics of several more complex operations"
// and that OpenSHMEM-style result distribution "must instead be accomplished
// through the use of a broadcast operation following the original call".
// These are those compositions, plus the personalized all-to-all named as
// future work (§7):
//
//   reduce_all  — reduction whose result lands on every PE (reduce+bcast)
//   collect     — variable-count allgather (gather+bcast)
//   fcollect    — fixed-count allgather
//   alltoall    — personalized all-to-all exchange (pairwise puts)

#include <cstddef>
#include <vector>

#include "collectives/collectives.hpp"

namespace xbgas {

/// Reduction-to-all: `dest` must be symmetric on every PE and receives the
/// full reduction result everywhere.
template <class Op, class T>
void reduce_all(T* dest, const T* src, std::size_t nelems, int stride,
                Communicator& comm = world_comm()) {
  reduce<Op>(dest, src, nelems, stride, /*root=*/0, comm);
  broadcast(dest, dest, nelems, stride, /*root=*/0, comm);
}

template <class T>
void reduce_all_sum(T* dest, const T* src, std::size_t nelems, int stride,
                    Communicator& comm = world_comm()) {
  reduce_all<OpSum>(dest, src, nelems, stride, comm);
}

/// Variable-count gather-to-all (OpenSHMEM `collect`): every PE contributes
/// pe_msgs[rank] elements from src; every PE's symmetric `dest` receives the
/// full concatenation laid out by pe_disp.
template <class T>
void collect(T* dest, const T* src, const int* pe_msgs, const int* pe_disp,
             std::size_t nelems, Communicator& comm = world_comm()) {
  gather(dest, src, pe_msgs, pe_disp, nelems, /*root=*/0, comm);
  broadcast(dest, dest, nelems, /*stride=*/1, /*root=*/0, comm);
}

/// Fixed-count gather-to-all (OpenSHMEM `fcollect`): every PE contributes
/// exactly `nelems_per_pe` elements; dest must hold n_pes * nelems_per_pe.
template <class T>
void fcollect(T* dest, const T* src, std::size_t nelems_per_pe,
              Communicator& comm = world_comm()) {
  const int n = comm.n_pes();
  std::vector<int> msgs(static_cast<std::size_t>(n),
                        static_cast<int>(nelems_per_pe));
  std::vector<int> disp(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    disp[static_cast<std::size_t>(r)] =
        r * static_cast<int>(nelems_per_pe);
  }
  collect(dest, src, msgs.data(), disp.data(),
          nelems_per_pe * static_cast<std::size_t>(n), comm);
}

/// Personalized all-to-all: the segment src[d*nelems_per_pair ..) of every
/// PE lands at dest[me*nelems_per_pair ..) of PE d. `dest` must be
/// symmetric; src may be private. One pairwise-shifted put per peer so no
/// destination is hit by every sender in the same order.
template <class T>
void alltoall(T* dest, const T* src, std::size_t nelems_per_pair,
              Communicator& comm = world_comm()) {
  (void)detail::collective_prologue(comm, /*root=*/0, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  comm.barrier();  // dest buffers ready everywhere before the exchange
  if (nelems_per_pair > 0) {
    const std::size_t seg = nelems_per_pair;
    xbr_put(dest + static_cast<std::size_t>(me) * seg,
            src + static_cast<std::size_t>(me) * seg, seg, 1,
            comm.world_rank(me));
    for (int k = 1; k < n; ++k) {
      const int peer = (me + k) % n;
      xbr_put(dest + static_cast<std::size_t>(me) * seg,
              src + static_cast<std::size_t>(peer) * seg, seg, 1,
              comm.world_rank(peer));
    }
  }
  comm.barrier();
}

}  // namespace xbgas
