#pragma once

// Composed collectives (paper §4.7 & §7).
//
// The paper notes its four binomial-tree primitives "can be combined
// together to accomplish the semantics of several more complex operations"
// and that OpenSHMEM-style result distribution "must instead be accomplished
// through the use of a broadcast operation following the original call".
// These are those compositions, plus the personalized all-to-all named as
// future work (§7):
//
//   reduce_all  — reduction whose result lands on every PE (reduce+bcast)
//   collect     — variable-count allgather (gather+bcast)
//   fcollect    — fixed-count allgather
//   alltoall    — personalized all-to-all exchange (pairwise puts)
//
// reduce_all and fcollect route through the CollectivePolicy dispatcher
// (policy.hpp), so large payloads automatically switch from the composed
// tree form to the bandwidth-optimal ring algorithms.

#include <climits>
#include <cstddef>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/policy.hpp"

namespace xbgas {

/// Reduction-to-all: `dest` must be symmetric on every PE and receives the
/// full reduction result everywhere. Algorithm chosen by the active
/// CollectivePolicy (tree reduce+bcast, or ring reduce-scatter+allgather).
template <class Op, class T>
void reduce_all(T* dest, const T* src, std::size_t nelems, int stride,
                Communicator& comm = world_comm()) {
  dispatch_reduce_all<Op>(dest, src, nelems, stride, comm);
}

template <class T>
void reduce_all_sum(T* dest, const T* src, std::size_t nelems, int stride,
                    Communicator& comm = world_comm()) {
  reduce_all<OpSum>(dest, src, nelems, stride, comm);
}

/// Variable-count gather-to-all (OpenSHMEM `collect`): every PE contributes
/// pe_msgs[rank] elements from src; every PE's symmetric `dest` receives the
/// full concatenation laid out by pe_disp.
template <class T>
void collect(T* dest, const T* src, const int* pe_msgs, const int* pe_disp,
             std::size_t nelems, Communicator& comm = world_comm()) {
  gather(dest, src, pe_msgs, pe_disp, nelems, /*root=*/0, comm);
  broadcast(dest, dest, nelems, /*stride=*/1, /*root=*/0, comm);
}

/// Fixed-count gather-to-all (OpenSHMEM `fcollect`): every PE contributes
/// exactly `nelems_per_pe` elements; dest must hold n_pes * nelems_per_pe.
/// Algorithm chosen by the active CollectivePolicy (gather+bcast tree or
/// ring allgather). The total element count must fit in int because the
/// gather path's per-PE displacements are int (OpenSHMEM ABI).
template <class T>
void fcollect(T* dest, const T* src, std::size_t nelems_per_pe,
              Communicator& comm = world_comm()) {
  const int n = comm.n_pes();
  // Displacements are computed in size_t; r * int(nelems_per_pe) in int
  // arithmetic silently overflowed for large per-PE counts.
  const std::size_t total = nelems_per_pe * static_cast<std::size_t>(n);
  XBGAS_CHECK(nelems_per_pe <= total, "fcollect: total element count overflow");
  XBGAS_CHECK(total <= static_cast<std::size_t>(INT_MAX),
              "fcollect: total element count exceeds INT_MAX");
  dispatch_fcollect(dest, src, nelems_per_pe, comm);
}

/// Personalized all-to-all: the segment src[d*nelems_per_pair ..) of every
/// PE lands at dest[me*nelems_per_pair ..) of PE d. `dest` must be
/// symmetric; src may be private. One pairwise-shifted put per peer so no
/// destination is hit by every sender in the same order.
template <class T>
void alltoall(T* dest, const T* src, std::size_t nelems_per_pair,
              Communicator& comm = world_comm()) {
  (void)detail::collective_prologue(comm, /*root=*/0, /*stride=*/1);
  const int n = comm.n_pes();
  const int me = comm.rank();
  comm.barrier();  // dest buffers ready everywhere before the exchange
  if (nelems_per_pair > 0) {
    const std::size_t seg = nelems_per_pair;
    xbr_put(dest + static_cast<std::size_t>(me) * seg,
            src + static_cast<std::size_t>(me) * seg, seg, 1,
            comm.world_rank(me));
    for (int k = 1; k < n; ++k) {
      const int peer = (me + k) % n;
      xbr_put(dest + static_cast<std::size_t>(me) * seg,
              src + static_cast<std::size_t>(peer) * seg, seg, 1,
              comm.world_rank(peer));
    }
  }
  comm.barrier();
}

}  // namespace xbgas
