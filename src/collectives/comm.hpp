#pragma once

// Communicator — the PE group a collective runs over.
//
// The paper's algorithms all begin "n_pes <- number of PEs calling
// collective operation", anticipating subset collectives (listed as future
// work in §7). This abstraction provides exactly that hook: the binomial
// tree code is written against a Communicator, the default WorldComm spans
// every PE, and Team (team.hpp) implements strided subsets.

namespace xbgas {

class Communicator {
 public:
  virtual ~Communicator() = default;

  /// Number of PEs participating in collectives over this communicator.
  virtual int n_pes() const = 0;

  /// Calling PE's rank within this communicator ([0, n_pes)).
  virtual int rank() const = 0;

  /// Translate a communicator rank to a world (machine) rank.
  virtual int world_rank(int r) const = 0;

  /// Barrier over exactly this communicator's members.
  virtual void barrier() = 0;
};

/// The all-PEs communicator. Stateless: methods read the calling thread's
/// runtime context, so one shared instance serves every PE.
Communicator& world_comm();

}  // namespace xbgas
