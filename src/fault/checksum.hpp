#pragma once

// Payload checksums for optional end-to-end RMA verification.
//
// FNV-1a over the (possibly strided) element payload. Chosen over CRC for
// simplicity: the injector flips exactly one bit per corruption fault, and
// FNV-1a detects any single-bit change, which is all the verification path
// needs. The modeled cost of checksumming is charged by the caller
// (rma_transfer) as a per-byte term so enabling verification shows up in
// simulated time like any other software guard would.

#include <cstddef>
#include <cstdint>

namespace xbgas {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over one contiguous byte range.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over a strided element layout (stride in elements, as in
/// xbr_put/xbr_get): checksums exactly the bytes the transfer moves.
inline std::uint64_t strided_checksum(const void* data, std::size_t elem_size,
                                      std::size_t nelems, int stride) {
  const auto* p = static_cast<const unsigned char*>(data);
  if (stride == 1) return fnv1a(p, elem_size * nelems);
  const std::size_t step = elem_size * static_cast<std::size_t>(stride);
  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t i = 0; i < nelems; ++i) {
    h = fnv1a(p + i * step, elem_size, h);
  }
  return h;
}

}  // namespace xbgas
