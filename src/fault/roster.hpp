#pragma once

// RecoveryState — the machine-global failure roster and agreement board that
// upgrade the PR 2 fail-stop substrate to fail-recover (docs/RESILIENCE.md).
//
// Three responsibilities, all behind one mutex (recovery is a cold path):
//
//  * Failure roster: which world ranks have primarily failed. Machine::run
//    marks a rank failed the moment its exception is caught — *before* the
//    region joins — so survivors executing the recovery protocol can observe
//    the death synchronously instead of waiting for post-mortem state.
//
//  * Acknowledgment epochs: a failure starts *unacknowledged* (every barrier
//    registered while one exists is poisoned at birth — the PR 2 fail-fast
//    behavior). When an agreement's decision excludes a failed rank from the
//    survivor roster, that failure becomes *acknowledged*: the survivors
//    have collectively observed it, and barriers created for the shrunken
//    team (a later recovery epoch) are born clean. A region whose only
//    failures are acknowledged primaries returns normally from Machine::run
//    instead of throwing — the definition of "a PE death no longer kills
//    the job".
//
//  * Agreement board: the rendezvous under xbr_agree. Each participant
//    publishes a seq-stamped contribution (its flag + clock); the decision —
//    a binomial-tree fold over the live contributions, produced exactly once
//    by the smallest-indexed *live* participant — is the bitwise-identical
//    (roster, flag) every survivor returns. Leader takeover is implicit:
//    every waiter re-derives "smallest live expected rank" on each wake, so
//    a leader dying mid-agreement (KillSite::kAgree) just moves the decision
//    duty to the next survivor. The board is host shared memory standing in
//    for the xBGAS implementation, where each fold step is a remote
//    load/flag write into the parent's shared segment; the modeled
//    tree-shaped cost is charged by xbr_agree (src/collectives/agree.cpp).
//
// Sits in src/fault (depends only on common) so both the machine layer and
// the collectives layer can reach it without a dependency cycle.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "fault/errors.hpp"

namespace xbgas {

/// Machine-wide recovery counters (collect_counters folds these in as
/// recovery.*). Event counters (agreements, shrinks, ...) count protocol
/// events once — not once per participant — so their values are
/// deterministic for a scripted failure plan.
struct RecoveryCounters {
  std::atomic<std::uint64_t> agreements{0};
  std::atomic<std::uint64_t> shrinks{0};
  std::atomic<std::uint64_t> revokes{0};
  std::atomic<std::uint64_t> checkpoints{0};
  std::atomic<std::uint64_t> restores{0};
  std::atomic<std::uint64_t> checkpointed_bytes{0};
  std::atomic<std::uint64_t> restored_bytes{0};
  std::atomic<std::uint64_t> orphaned_bytes{0};

  void reset() {
    agreements = 0;
    shrinks = 0;
    revokes = 0;
    checkpoints = 0;
    restores = 0;
    checkpointed_bytes = 0;
    restored_bytes = 0;
    orphaned_bytes = 0;
  }
};

/// The outcome of one agreement: identical on every survivor.
struct AgreeDecision {
  std::uint64_t seq = 0;          ///< agreement sequence number
  std::vector<int> roster;        ///< surviving world ranks, ascending
  std::uint64_t flag = 0;         ///< AND over the survivors' contributions
  std::uint64_t max_cycles = 0;   ///< max contributor SimClock at decision
  /// Live ranks the quorum rule excluded: the minority side of a network
  /// partition plus peers evicted as unreachable over a dead link. These
  /// ranks are pre-acknowledged at decision time and unwind with
  /// PartitionedError (ascending; empty when the reachability graph is whole).
  std::vector<int> partitioned;
};

class RecoveryState {
 public:
  explicit RecoveryState(int n_pes);

  RecoveryState(const RecoveryState&) = delete;
  RecoveryState& operator=(const RecoveryState&) = delete;

  // -- Failure roster --

  /// Record that `rank` primarily failed (idempotent). Wakes agreement
  /// waiters so a mid-agreement death unblocks the decision.
  void mark_failed(int rank);

  bool failed(int rank) const;
  int n_failed() const;
  std::vector<int> failed_ranks() const;  ///< ascending

  /// True when some failed rank has not yet been excluded by an agreement.
  /// Barriers registered while this holds are poisoned at birth.
  bool has_unacknowledged_failure() const;

  /// True when `rank` failed AND an agreement has acknowledged the failure.
  bool acknowledged(int rank) const;

  // -- Reachability graph (fed by LinkFaults callbacks + escalation) --

  /// Record that the direct pair path (a, b) is scripted down / healed.
  /// Wired to LinkFaults by the Machine so the quorum rule of xbr_agree sees
  /// the same reachability graph the transport enforces.
  void note_link_down(int a, int b);
  void note_link_up(int a, int b);

  /// Record that `reporter` exhausted its retries against `suspect` across a
  /// dead link (PeUnreachableError escalation). The next agreement whose
  /// majority component still contains both endpoints evicts the larger one
  /// into AgreeDecision::partitioned — survivors expel unreachable-but-alive
  /// peers exactly like dead ones.
  void note_unreachable(int reporter, int suspect);

  /// Pairs (a < b) currently noted down (diagnostics/tests).
  std::vector<std::pair<int, int>> down_pairs() const;

  /// Completed agreements on this machine (the recovery epoch).
  std::uint64_t epoch() const;

  // -- Agreement board (driven by xbr_agree) --

  /// The calling rank's next agreement sequence number. Participants of the
  /// same agreement share one participation history (world, then each
  /// shrunken roster in turn), so they compute the same seq.
  std::uint64_t begin_agreement(int rank);

  /// Publish `rank`'s contribution to agreement (`seq`, `expected`).
  void contribute(int rank, std::uint64_t seq, const std::vector<int>& expected,
                  std::uint64_t flag, std::uint64_t cycles);

  /// Block until agreement (`seq`, `expected`) decides, taking over the
  /// decision duty whenever this rank is the smallest member of the majority
  /// component and every live member of that component has contributed.
  ///
  /// Quorum rule (split-brain safety): only the component of the live
  /// expected ranks — connected over full-mesh-minus-down-pairs — holding a
  /// *strict majority* of the live expected set may decide; its decision
  /// needs no contribution from the minority, so the majority side makes
  /// progress while partitioned. Callers the decision lists as partitioned
  /// (minority members, evicted unreachable peers) throw PartitionedError
  /// here instead of returning. When no component holds a quorum (an even
  /// split), the global smallest live rank folds an empty no-quorum decision
  /// once every live rank contributed, and every caller unwinds with
  /// PartitionedError. Throws AgreementTimeoutError after `timeout_ms` host
  /// milliseconds (0 selects the 60 s safety net) naming the ranks that
  /// neither contributed nor failed.
  AgreeDecision await_decision(int rank, std::uint64_t seq,
                               const std::vector<int>& expected,
                               std::uint64_t timeout_ms);

  RecoveryCounters& counters() { return counters_; }
  const RecoveryCounters& counters() const { return counters_; }

 private:
  struct Contribution {
    std::uint64_t flag = 0;
    std::uint64_t cycles = 0;
  };
  struct Round {
    std::map<int, Contribution> contrib;  ///< world rank -> contribution
    AgreeDecision decision;
    bool decided = false;
  };
  /// Disjoint groups can run agreements concurrently with equal seq values;
  /// keying rounds by (seq, expected set) keeps their boards separate.
  using RoundKey = std::pair<std::uint64_t, std::vector<int>>;

  Round& round_locked(std::uint64_t seq, const std::vector<int>& expected);
  /// Majority component of `live` over full-mesh-minus-down_pairs_; empty
  /// when no component holds a strict majority. Requires mutex_ held.
  std::vector<int> majority_component_locked(
      const std::vector<int>& live) const;

  const int n_pes_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<char> failed_;
  std::vector<char> acknowledged_;
  std::vector<std::uint64_t> participations_;  ///< per-rank agreement count
  std::uint64_t epoch_ = 0;
  std::map<RoundKey, Round> rounds_;
  /// Pair paths currently scripted down (normalized a < b).
  std::set<std::pair<int, int>> down_pairs_;
  /// Escalation notes: (a, b) -> times some PE reported the peer across the
  /// pair unreachable after exhausting retries.
  std::map<std::pair<int, int>, int> unreachable_notes_;
  RecoveryCounters counters_;
};

}  // namespace xbgas
