#pragma once

// CheckpointStore — the survivor-replicated snapshot store behind
// xbr_checkpoint / xbr_restore (docs/RESILIENCE.md).
//
// Each PE's snapshot is the set of its live symmetric-heap allocations,
// captured as (offset, bytes) shards. The store lives in host memory on the
// Machine — the simulation's stand-in for a snapshot replicated across
// surviving PEs' memories (the modeled replication cost is charged by
// xbr_checkpoint). After a failure, survivors restore their own shards in
// place and the dead ranks' shards become *orphans*, deterministically
// re-sharded round-robin onto the shrunken team (xbr_restore returns each
// member its assigned orphan shards).
//
// Thread-safe: PE threads commit concurrently during the collective
// checkpoint. Versions are per-rank commit counts; a collective checkpoint
// advances every member's version by one, so members of one team always
// agree on the version they took.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace xbgas {

/// One contiguous piece of a PE's symmetric heap.
struct HeapShard {
  std::size_t offset = 0;        ///< shared-segment byte offset
  std::vector<std::byte> data;   ///< snapshot of [offset, offset+size)
};

class CheckpointStore {
 public:
  explicit CheckpointStore(int n_pes);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Replace `rank`'s snapshot; returns its new version (1-based count).
  std::uint64_t commit(int rank, std::vector<HeapShard> shards);

  bool has_snapshot(int rank) const;
  std::uint64_t version(int rank) const;  ///< 0 = never checkpointed

  /// Copy of `rank`'s latest snapshot (empty when none).
  std::vector<HeapShard> snapshot(int rank) const;

  /// Payload bytes in `rank`'s latest snapshot.
  std::uint64_t bytes(int rank) const;

 private:
  struct Entry {
    std::uint64_t version = 0;
    std::vector<HeapShard> shards;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace xbgas
