#include "fault/config.hpp"

#include <cmath>
#include <string>

#include "fault/errors.hpp"

namespace xbgas {

namespace {

void check_prob(const char* name, double p) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    throw FaultConfigError("FaultConfig::" + std::string(name) +
                           " must be a probability in [0, 1], got " +
                           std::to_string(p));
  }
}

const char* kill_site_name(KillSite s) {
  switch (s) {
    case KillSite::kNone: return "none";
    case KillSite::kBarrier: return "barrier";
    case KillSite::kRma: return "rma";
    case KillSite::kAgree: return "agree";
  }
  return "unknown";
}

void check_kill(const KillSpec& k, int n_pes) {
  if (k.site == KillSite::kNone) {
    throw FaultConfigError("scripted kill has site=none; drop the entry "
                           "instead of scheduling a kill that cannot fire");
  }
  if (k.rank < 0 || k.rank >= n_pes) {
    throw FaultConfigError("scripted kill rank " + std::to_string(k.rank) +
                           " out of range for a " + std::to_string(n_pes) +
                           "-PE machine");
  }
  if (k.at == 0) {
    throw FaultConfigError(
        "scripted kill at " + std::string(kill_site_name(k.site)) +
        " #0 can never fire (trigger counts are 1-based); use at >= 1");
  }
}

}  // namespace

void validate_fault_config(const FaultConfig& config, int n_pes) {
  check_prob("rma_drop_prob", config.rma_drop_prob);
  check_prob("rma_delay_prob", config.rma_delay_prob);
  check_prob("rma_bitflip_prob", config.rma_bitflip_prob);
  check_prob("olb_fault_prob", config.olb_fault_prob);
  check_prob("amo_drop_prob", config.amo_drop_prob);
  check_prob("amo_delay_prob", config.amo_delay_prob);
  if (config.max_rma_retries < 0) {
    throw FaultConfigError("FaultConfig::max_rma_retries must be >= 0, got " +
                           std::to_string(config.max_rma_retries));
  }
  if (config.max_rma_retries > 0 && config.backoff_base_cycles == 0) {
    throw FaultConfigError(
        "FaultConfig::backoff_base_cycles is 0 with retries enabled: every "
        "retry would be charged zero modeled time, silently understating the "
        "cost of resilience; use a positive base (default 64)");
  }
  for (const KillSpec& k : config.all_kills()) check_kill(k, n_pes);
}

}  // namespace xbgas
