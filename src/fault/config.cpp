#include "fault/config.hpp"

#include <cmath>
#include <string>

#include "fault/errors.hpp"

namespace xbgas {

namespace {

void check_prob(const char* name, double p) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    throw FaultConfigError("FaultConfig::" + std::string(name) +
                           " must be a probability in [0, 1], got " +
                           std::to_string(p));
  }
}

const char* kill_site_name(KillSite s) {
  switch (s) {
    case KillSite::kNone: return "none";
    case KillSite::kBarrier: return "barrier";
    case KillSite::kRma: return "rma";
    case KillSite::kAgree: return "agree";
    case KillSite::kAmo: return "amo";
  }
  return "unknown";
}

void check_kill(const KillSpec& k, int n_pes) {
  if (k.site == KillSite::kNone) {
    throw FaultConfigError("scripted kill has site=none; drop the entry "
                           "instead of scheduling a kill that cannot fire");
  }
  if (k.rank < 0 || k.rank >= n_pes) {
    throw FaultConfigError("scripted kill rank " + std::to_string(k.rank) +
                           " out of range for a " + std::to_string(n_pes) +
                           "-PE machine");
  }
  if (k.at == 0) {
    throw FaultConfigError(
        "scripted kill at " + std::string(kill_site_name(k.site)) +
        " #0 can never fire (trigger counts are 1-based); use at >= 1");
  }
}

void check_link(const LinkSpec& l, int n_pes) {
  if (l.a < 0 || l.a >= n_pes || l.b < 0 || l.b >= n_pes) {
    throw FaultConfigError("scripted link fault (" + std::to_string(l.a) +
                           ", " + std::to_string(l.b) +
                           ") names a rank out of range for a " +
                           std::to_string(n_pes) + "-PE machine");
  }
  if (l.a == l.b) {
    throw FaultConfigError("scripted link fault (" + std::to_string(l.a) +
                           ", " + std::to_string(l.b) +
                           ") is a self-loop: a PE's local path cannot fail");
  }
  if (l.at == 0) {
    throw FaultConfigError(
        "scripted link fault activates at cycle 0; activation cycles are "
        ">= 1 so a fresh machine always starts with the link up");
  }
  if (l.heal_at != 0 && l.heal_at <= l.at) {
    throw FaultConfigError(
        "scripted link fault heals at cycle " + std::to_string(l.heal_at) +
        " which is not after its activation at cycle " + std::to_string(l.at));
  }
}

void check_partition(const PartitionSpec& p, int n_pes) {
  if (p.lo < 0 || p.hi < p.lo || p.hi >= n_pes) {
    throw FaultConfigError("scripted partition group [" +
                           std::to_string(p.lo) + ", " + std::to_string(p.hi) +
                           "] is not a valid rank range on a " +
                           std::to_string(n_pes) + "-PE machine");
  }
  if (p.lo == 0 && p.hi == n_pes - 1) {
    throw FaultConfigError(
        "scripted partition group covers every rank; a 2-way partition needs "
        "a proper subset on each side");
  }
  if (p.at == 0) {
    throw FaultConfigError(
        "scripted partition activates at cycle 0; activation cycles are "
        ">= 1 so a fresh machine always starts connected");
  }
  if (p.heal_at != 0 && p.heal_at <= p.at) {
    throw FaultConfigError(
        "scripted partition heals at cycle " + std::to_string(p.heal_at) +
        " which is not after its activation at cycle " + std::to_string(p.at));
  }
}

}  // namespace

void validate_fault_config(const FaultConfig& config, int n_pes) {
  check_prob("rma_drop_prob", config.rma_drop_prob);
  check_prob("rma_delay_prob", config.rma_delay_prob);
  check_prob("rma_bitflip_prob", config.rma_bitflip_prob);
  check_prob("olb_fault_prob", config.olb_fault_prob);
  check_prob("amo_drop_prob", config.amo_drop_prob);
  check_prob("amo_delay_prob", config.amo_delay_prob);
  if (config.max_rma_retries < 0) {
    throw FaultConfigError("FaultConfig::max_rma_retries must be >= 0, got " +
                           std::to_string(config.max_rma_retries));
  }
  if (config.max_rma_retries > 0 && config.backoff_base_cycles == 0) {
    throw FaultConfigError(
        "FaultConfig::backoff_base_cycles is 0 with retries enabled: every "
        "retry would be charged zero modeled time, silently understating the "
        "cost of resilience; use a positive base (default 64)");
  }
  for (const KillSpec& k : config.all_kills()) check_kill(k, n_pes);
  if (std::isnan(config.degraded_beta_factor) ||
      config.degraded_beta_factor < 1.0) {
    throw FaultConfigError(
        "FaultConfig::degraded_beta_factor must be >= 1 (a degraded link "
        "cannot be faster than a healthy one), got " +
        std::to_string(config.degraded_beta_factor));
  }
  for (const LinkSpec& l : config.links) check_link(l, n_pes);
  for (const PartitionSpec& p : config.partitions) check_partition(p, n_pes);
}

}  // namespace xbgas
