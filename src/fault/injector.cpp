#include "fault/injector.hpp"

#include <string>

#include "common/error.hpp"

namespace xbgas {

namespace {

/// Seed one (rank, site) stream: SplitMix64 expansion over the master seed
/// and the stream coordinates, so streams are pairwise independent and any
/// (seed, rank, site) triple maps to one fixed sequence.
std::uint64_t stream_seed(std::uint64_t master, int rank, int site) {
  SplitMix64 mix(master ^ (0x9e3779b97f4a7c15ull *
                           (static_cast<std::uint64_t>(rank) * 8 +
                            static_cast<std::uint64_t>(site) + 1)));
  return mix.next();
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, int n_pes)
    : config_(config), enabled_(config.any_faults()) {
  validate_fault_config(config, n_pes);
  kills_ = config.all_kills();
  kill_mask_.assign(static_cast<std::size_t>(n_pes), 0);
  for (const KillSpec& k : kills_) {
    kill_mask_[static_cast<std::size_t>(k.rank)] |=
        k.site == KillSite::kBarrier ? kMaskBarrier
        : k.site == KillSite::kRma   ? kMaskRma
        : k.site == KillSite::kAgree ? kMaskAgree
                                     : kMaskAmo;
  }
  pes_.reserve(static_cast<std::size_t>(n_pes));
  for (int r = 0; r < n_pes; ++r) {
    auto state = std::make_unique<PeState>();
    state->streams.reserve(kStreams);
    for (int s = 0; s < kStreams; ++s) {
      state->streams.emplace_back(stream_seed(config.seed, r, s));
    }
    pes_.push_back(std::move(state));
  }
}

Xoshiro256ss& FaultInjector::stream(int rank, StreamId id) {
  return pes_[static_cast<std::size_t>(rank)]
      ->streams[static_cast<std::size_t>(id)];
}

bool FaultInjector::draw(int rank, StreamId id, double prob) {
  if (prob <= 0.0) return false;
  // Draw unconditionally once the site is active so the stream position —
  // and therefore every later decision — depends only on program order.
  return stream(rank, id).next_double() < prob;
}

void FaultInjector::corrupt_payload(int rank, void* data,
                                    std::size_t elem_size, std::size_t nelems,
                                    int stride) {
  if (nelems == 0 || elem_size == 0) return;
  Xoshiro256ss& bits = stream(rank, StreamId::kBits);
  const std::uint64_t elem = bits.next_below(nelems);
  const std::uint64_t bit = bits.next_below(elem_size * 8);
  const std::size_t step = elem_size * static_cast<std::size_t>(stride);
  auto* p = static_cast<unsigned char*>(data);
  p[static_cast<std::size_t>(elem) * step + bit / 8] ^=
      static_cast<unsigned char>(1u << (bit % 8));
}

void FaultInjector::count_and_maybe_kill(int rank, KillSite site,
                                         const char* site_name) {
  std::uint64_t& n =
      pes_[static_cast<std::size_t>(rank)]->site_count[site_index(site)];
  ++n;
  for (const KillSpec& k : kills_) {
    if (k.rank != rank || k.site != site || k.at != n) continue;
    counters_.kills.fetch_add(1, std::memory_order_relaxed);
    throw PeKilledError("scripted fault: PE " + std::to_string(rank) +
                            " killed at " + site_name + " #" +
                            std::to_string(k.at),
                        rank);
  }
}

}  // namespace xbgas
