#pragma once

// FaultConfig — the deterministic fault-injection plan for one Machine.
//
// The paper's pitch (§3.1) is that xBGAS remote load/stores bypass the whole
// protocol stack; the flip side is that the runtime inherits none of the
// stack's fault tolerance. This config describes, up front and seeded, every
// fault the simulated fabric may inject: transient remote-transfer drops,
// extra wire delay, payload bit-flips, OLB translation faults, and scripted
// PE crashes at the k-th barrier or k-th RMA of a chosen rank.
//
// Determinism contract: all probabilistic draws come from per-PE, per-site
// RNG streams keyed on (seed, rank, site) — see FaultInjector — so a given
// (config, program, PE count) produces bit-identical fault placement on
// every run, independent of host thread scheduling. Identical seeds replay
// identical faults; that is what makes failure paths testable.

#include <cstdint>
#include <vector>

namespace xbgas {

/// Where a scripted PE kill fires (FaultConfig::kill_* / KillSpec).
enum class KillSite : std::uint8_t {
  kNone,     ///< no scripted kill
  kBarrier,  ///< at the victim's k-th barrier arrival
  kRma,      ///< at the victim's k-th remote RMA issue
  kAgree,    ///< at the victim's k-th xbr_agree protocol step
  kAmo,      ///< at the victim's k-th remote AMO issue
};

/// One scripted PE crash: `rank` dies at its `at`-th trigger of `site`.
/// Trigger counts are per (rank, site) and 1-based; every site a rank has a
/// kill scheduled at counts all of that rank's triggers there, so two kills
/// on different ranks (or different sites) fire independently — the
/// substrate the multi-failure recovery tests are built on.
struct KillSpec {
  int rank = -1;
  KillSite site = KillSite::kNone;
  std::uint64_t at = 1;
};

/// How a scripted link fault degrades the pair path it names.
enum class LinkFaultMode : std::uint8_t {
  kDown,      ///< every transfer across the link is dropped (permanently)
  kDegraded,  ///< transfers still land but pay extra alpha/beta cycles
};

/// One scripted persistent link fault: the undirected pair path (a, b)
/// enters `mode` once either endpoint's modeled clock reaches `at` cycles,
/// and (optionally) heals at `heal_at`. Unlike the probabilistic transient
/// faults above, link faults are *persistent and scripted*: they need no RNG
/// stream, they are evaluated against the issuing PE's deterministic
/// SimClock, and a down link keeps dropping until it heals — that is what
/// turns bounded retries into an unreachable-peer verdict.
struct LinkSpec {
  int a = -1;
  int b = -1;
  LinkFaultMode mode = LinkFaultMode::kDown;
  std::uint64_t at = 1;       ///< modeled cycle the fault activates (>= 1)
  std::uint64_t heal_at = 0;  ///< modeled cycle it heals; 0 = never
};

/// One scripted 2-way network partition: once a member PE's modeled clock
/// reaches `at`, every link between group A = [lo, hi] and its complement is
/// down (and heals together at `heal_at`, if set). Sugar for |A| * |B|
/// LinkSpecs; expressed separately so a 64-PE split is one CLI token and one
/// config entry, not a thousand.
struct PartitionSpec {
  int lo = -1;                ///< group A = world ranks [lo, hi] inclusive
  int hi = -1;
  std::uint64_t at = 1;       ///< modeled cycle the partition activates
  std::uint64_t heal_at = 0;  ///< modeled cycle it heals; 0 = never
};

struct FaultConfig {
  /// Master seed for every injection stream. Two runs with the same seed
  /// (and same program) inject faults at identical points.
  std::uint64_t seed = 0;

  // -- Probabilistic transient faults (per remote RMA attempt) --
  double rma_drop_prob = 0.0;     ///< transfer attempt dropped in flight
  double rma_delay_prob = 0.0;    ///< transfer delivered late
  double rma_bitflip_prob = 0.0;  ///< one payload bit flipped in flight
  double olb_fault_prob = 0.0;    ///< OLB translation transiently faults

  // -- Probabilistic transient faults (per remote AMO attempt) --
  // Remote atomics ride the same fabric as RMA transfers but skip the
  // payload path (the RMW happens at the target), so they have their own
  // drop/delay sites: a dropped AMO is retried with the same backoff as a
  // dropped transfer, a delayed one charges delay_cycles. Bit-flips do not
  // apply — the operand travels in the request header, which the drop site
  // already models losing wholesale.
  double amo_drop_prob = 0.0;   ///< remote RMW request dropped in flight
  double amo_delay_prob = 0.0;  ///< remote RMW delivered late

  /// Extra modeled cycles charged when a delay fault fires.
  std::uint64_t delay_cycles = 500;

  // -- Resilience knobs --
  /// Max re-transmissions after the first attempt of a remote transfer.
  /// Retries are charged to the SimClock with exponential backoff, so
  /// resilience has a measurable modeled-time cost.
  int max_rma_retries = 6;
  /// First retry waits this long; attempt i waits base << i (capped).
  std::uint64_t backoff_base_cycles = 64;
  /// Verify a checksum over the payload after every remote transfer and
  /// treat a mismatch (an injected bit-flip) as a transient failure to
  /// retry. Off by default: checksums model an optional software guard the
  /// paper's raw load/store path does not pay for.
  bool verify_checksum = false;
  /// Host-time watchdog for every ClockSyncBarrier (milliseconds). When a
  /// participant waits longer than this, the barrier is poisoned and every
  /// waiter throws BarrierTimeoutError naming the missing ranks instead of
  /// hanging forever. 0 disables the watchdog.
  std::uint64_t barrier_timeout_ms = 0;
  /// Host-time watchdog for xbr_agree decisions (milliseconds). An agreement
  /// can stall independently of any barrier (a participant may die between
  /// contributing and deciding), so it gets its own budget instead of
  /// borrowing the barrier watchdog's. 0 keeps the agreement board's 60 s
  /// safety net (RecoveryState::await_decision).
  std::uint64_t agree_timeout_ms = 0;

  // -- Scripted PE crashes --
  /// Legacy single-kill form (kept so existing configs/tests keep working);
  /// folded into the kill list by all_kills().
  KillSite kill_site = KillSite::kNone;
  int kill_rank = -1;        ///< world rank of the victim
  std::uint64_t kill_at = 1; ///< 1-based: fire at the k-th barrier/RMA

  /// Scripted kills, any number of victims/sites (--fault-kill accepts a
  /// comma-separated list). The recovery acceptance scenario — two ranks
  /// dying at distinct points of a 12-PE run — is expressed here.
  std::vector<KillSpec> kills;

  // -- Scripted persistent link / partition faults --
  /// Individual link faults (--fault-link "A-B:MODE@AT[@HEAL]", comma list).
  std::vector<LinkSpec> links;
  /// 2-way partitions (--fault-partition "LO-HI@AT[@HEAL]", comma list).
  std::vector<PartitionSpec> partitions;
  /// A degraded link multiplies its serialization (beta) term by this
  /// factor (--fault-link-beta); must be >= 1.
  double degraded_beta_factor = 4.0;
  /// Extra per-attempt latency (alpha) a degraded link charges, in modeled
  /// cycles (--fault-link-alpha).
  std::uint64_t degraded_alpha_cycles = 0;

  /// The legacy single-kill fields and the kill list, merged.
  std::vector<KillSpec> all_kills() const {
    std::vector<KillSpec> out;
    if (kill_site != KillSite::kNone) {
      out.push_back(KillSpec{kill_rank, kill_site, kill_at});
    }
    out.insert(out.end(), kills.begin(), kills.end());
    return out;
  }

  /// True when any injection can ever fire (the hot paths consult this
  /// before touching the injector).
  bool any_faults() const {
    return rma_drop_prob > 0.0 || rma_delay_prob > 0.0 ||
           rma_bitflip_prob > 0.0 || olb_fault_prob > 0.0 ||
           amo_drop_prob > 0.0 || amo_delay_prob > 0.0 ||
           kill_site != KillSite::kNone || !kills.empty() ||
           !links.empty() || !partitions.empty();
  }
};

/// Validate `config` against a machine of `n_pes` PEs; throws
/// FaultConfigError (fault/errors.hpp) describing the first bad parameter.
/// Called by the FaultInjector constructor, i.e. at Machine construction —
/// a bad fault plan is rejected before any PE thread runs.
void validate_fault_config(const FaultConfig& config, int n_pes);

/// Exponential backoff charged before retry attempt `attempt` (1-based):
/// base << (attempt-1), saturating at 2^63 cycles — a large configured base
/// must clamp, not wrap, so the charged backoff stays monotone in `attempt`.
inline std::uint64_t backoff_cycles(const FaultConfig& fc, int attempt) {
  constexpr std::uint64_t kMax = std::uint64_t{1} << 63;
  const int shift = attempt > 1 ? (attempt - 1 < 16 ? attempt - 1 : 16) : 0;
  const std::uint64_t base = fc.backoff_base_cycles;
  if (base >= (kMax >> shift)) return kMax;
  return base << shift;
}

}  // namespace xbgas
