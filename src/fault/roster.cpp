#include "fault/roster.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/error.hpp"
#include "machine/fiber.hpp"

namespace xbgas {

namespace {
/// Safety net when no watchdog is configured: an agreement that cannot
/// complete (an expected rank is stuck outside the protocol) must become a
/// diagnosis, not a hang.
constexpr std::uint64_t kDefaultAgreeTimeoutMs = 60'000;
}  // namespace

RecoveryState::RecoveryState(int n_pes)
    : n_pes_(n_pes),
      failed_(static_cast<std::size_t>(n_pes), 0),
      acknowledged_(static_cast<std::size_t>(n_pes), 0),
      participations_(static_cast<std::size_t>(n_pes), 0) {}

void RecoveryState::mark_failed(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    failed_[static_cast<std::size_t>(rank)] = 1;
  }
  cv_.notify_all();
}

bool RecoveryState::failed(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_[static_cast<std::size_t>(rank)] != 0;
}

int RecoveryState::n_failed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const char f : failed_) n += f != 0 ? 1 : 0;
  return n;
}

std::vector<int> RecoveryState::failed_ranks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (std::size_t r = 0; r < failed_.size(); ++r) {
    if (failed_[r] != 0) out.push_back(static_cast<int>(r));
  }
  return out;
}

bool RecoveryState::has_unacknowledged_failure() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t r = 0; r < failed_.size(); ++r) {
    if (failed_[r] != 0 && acknowledged_[r] == 0) return true;
  }
  return false;
}

bool RecoveryState::acknowledged(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(rank);
  return failed_[i] != 0 && acknowledged_[i] != 0;
}

std::uint64_t RecoveryState::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::uint64_t RecoveryState::begin_agreement(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return ++participations_[static_cast<std::size_t>(rank)];
}

RecoveryState::Round& RecoveryState::round_locked(
    std::uint64_t seq, const std::vector<int>& expected) {
  return rounds_[RoundKey{seq, expected}];
}

void RecoveryState::contribute(int rank, std::uint64_t seq,
                               const std::vector<int>& expected,
                               std::uint64_t flag, std::uint64_t cycles) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    round_locked(seq, expected).contrib[rank] = Contribution{flag, cycles};
  }
  cv_.notify_all();
}

AgreeDecision RecoveryState::await_decision(int rank, std::uint64_t seq,
                                            const std::vector<int>& expected,
                                            std::uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_ms == 0 ? kDefaultAgreeTimeoutMs
                                                : timeout_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Round& rd = round_locked(seq, expected);
    if (rd.decided) return rd.decision;

    // Leader takeover: the decision duty belongs to the smallest-indexed
    // *live* expected member, re-derived on every wake — when the current
    // leader dies mid-agreement its failure flag moves the duty down the
    // roster without any handoff message.
    int leader = -1;
    bool complete = true;
    for (const int r : expected) {
      const auto i = static_cast<std::size_t>(r);
      if (leader < 0 && failed_[i] == 0) leader = r;
      if (failed_[i] == 0 && rd.contrib.find(r) == rd.contrib.end()) {
        complete = false;
      }
    }
    if (leader == rank && complete) {
      // Fold the live contributions in binomial-tree order (the order the
      // xBGAS implementation would merge partial rosters up the tree; AND
      // and max are associative, so the fold shape only matters for the
      // modeled cost, charged by xbr_agree).
      AgreeDecision d;
      d.seq = seq;
      d.flag = ~std::uint64_t{0};
      for (const int r : expected) {
        const auto it = rd.contrib.find(r);
        if (it == rd.contrib.end() ||
            failed_[static_cast<std::size_t>(r)] != 0) {
          continue;  // dead, or died after contributing: excluded
        }
        d.roster.push_back(r);
        d.flag &= it->second.flag;
        d.max_cycles = std::max(d.max_cycles, it->second.cycles);
      }
      rd.decision = d;
      rd.decided = true;
      ++epoch_;
      for (const int r : expected) {
        const auto i = static_cast<std::size_t>(r);
        if (failed_[i] != 0) acknowledged_[i] = 1;
      }
      counters_.agreements.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_all();
      return rd.decision;
    }

    if (std::chrono::steady_clock::now() >= deadline) {
      std::vector<int> missing;
      for (const int r : expected) {
        if (failed_[static_cast<std::size_t>(r)] == 0 &&
            rd.contrib.find(r) == rd.contrib.end()) {
          missing.push_back(r);
        }
      }
      std::string msg = "xbr_agree timed out on rank " + std::to_string(rank) +
                        " (agreement #" + std::to_string(seq) +
                        "): no contribution or failure from ranks [";
      for (std::size_t i = 0; i < missing.size(); ++i) {
        msg += (i != 0 ? "," : "") + std::to_string(missing[i]);
      }
      msg += "]";
      throw AgreementTimeoutError(msg, std::move(missing));
    }

    if (FiberScheduler::on_fiber()) {
      // N:M invariant: a fiber must not sleep on the condvar — the worker
      // it would block may be the only one left to run the contributor or
      // leader fiber this wait depends on. Release the board, park
      // cooperatively, re-derive everything on resume. (`rd` is refetched
      // at the loop top; map references stay valid regardless.)
      lock.unlock();
      FiberScheduler::yield_waiting();
      lock.lock();
    } else {
      cv_.wait_until(lock, std::min(deadline,
                                    std::chrono::steady_clock::now() +
                                        std::chrono::milliseconds(10)));
    }
  }
}

}  // namespace xbgas
