#include "fault/roster.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/error.hpp"
#include "machine/fiber.hpp"

namespace xbgas {

namespace {
/// Safety net when no watchdog is configured: an agreement that cannot
/// complete (an expected rank is stuck outside the protocol) must become a
/// diagnosis, not a hang.
constexpr std::uint64_t kDefaultAgreeTimeoutMs = 60'000;

[[noreturn]] void throw_partitioned(int rank, std::uint64_t seq,
                                    const std::vector<int>& majority) {
  std::string msg;
  if (majority.empty()) {
    msg = "xbr_agree quorum: agreement #" + std::to_string(seq) +
          " found no majority component (even split); rank " +
          std::to_string(rank) + " unwinds to avoid split-brain";
  } else {
    msg = "xbr_agree quorum: rank " + std::to_string(rank) +
          " was cut off from the majority component of agreement #" +
          std::to_string(seq) + " (majority [";
    for (std::size_t i = 0; i < majority.size(); ++i) {
      if (i != 0) msg += ',';
      msg += std::to_string(majority[i]);
    }
    msg += "] decides without it)";
  }
  throw PartitionedError(msg, rank, majority);
}
}  // namespace

RecoveryState::RecoveryState(int n_pes)
    : n_pes_(n_pes),
      failed_(static_cast<std::size_t>(n_pes), 0),
      acknowledged_(static_cast<std::size_t>(n_pes), 0),
      participations_(static_cast<std::size_t>(n_pes), 0) {}

void RecoveryState::mark_failed(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    failed_[static_cast<std::size_t>(rank)] = 1;
  }
  cv_.notify_all();
}

bool RecoveryState::failed(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_[static_cast<std::size_t>(rank)] != 0;
}

int RecoveryState::n_failed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const char f : failed_) n += f != 0 ? 1 : 0;
  return n;
}

std::vector<int> RecoveryState::failed_ranks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (std::size_t r = 0; r < failed_.size(); ++r) {
    if (failed_[r] != 0) out.push_back(static_cast<int>(r));
  }
  return out;
}

bool RecoveryState::has_unacknowledged_failure() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t r = 0; r < failed_.size(); ++r) {
    if (failed_[r] != 0 && acknowledged_[r] == 0) return true;
  }
  return false;
}

bool RecoveryState::acknowledged(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(rank);
  return failed_[i] != 0 && acknowledged_[i] != 0;
}

std::uint64_t RecoveryState::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void RecoveryState::note_link_down(int a, int b) {
  if (a > b) std::swap(a, b);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    down_pairs_.insert({a, b});
  }
  cv_.notify_all();
}

void RecoveryState::note_link_up(int a, int b) {
  if (a > b) std::swap(a, b);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    down_pairs_.erase({a, b});
    // A healed link wipes its escalation notes: the peer is reachable
    // again, so pre-heal exhaustion must not evict it later.
    unreachable_notes_.erase({a, b});
  }
  cv_.notify_all();
}

void RecoveryState::note_unreachable(int reporter, int suspect) {
  const int a = reporter < suspect ? reporter : suspect;
  const int b = reporter < suspect ? suspect : reporter;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++unreachable_notes_[{a, b}];
  }
  cv_.notify_all();
}

std::vector<std::pair<int, int>> RecoveryState::down_pairs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::pair<int, int>>(down_pairs_.begin(),
                                          down_pairs_.end());
}

std::vector<int> RecoveryState::majority_component_locked(
    const std::vector<int>& live) const {
  if (live.empty()) return {};
  // Whole graph: everyone is one component (the common, fault-free case).
  if (down_pairs_.empty()) return live;
  // Union-find over the live set; an edge exists between every pair whose
  // direct path is not down. O(live^2) set probes — recovery cold path.
  const std::size_t n = live.size();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const int a = live[i] < live[j] ? live[i] : live[j];
      const int b = live[i] < live[j] ? live[j] : live[i];
      if (down_pairs_.count({a, b}) != 0) continue;
      const std::size_t ri = find(i), rj = find(j);
      if (ri != rj) parent[ri] = rj;
    }
  }
  std::vector<std::size_t> comp_size(n, 0);
  for (std::size_t i = 0; i < n; ++i) ++comp_size[find(i)];
  std::size_t best_root = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (2 * comp_size[find(i)] > n) {
      best_root = find(i);
      break;
    }
  }
  if (best_root == n) return {};  // no strict majority: even split
  std::vector<int> majority;
  for (std::size_t i = 0; i < n; ++i) {
    if (find(i) == best_root) majority.push_back(live[i]);
  }
  return majority;  // ascending: `live` is ascending
}

std::uint64_t RecoveryState::begin_agreement(int rank) {
  XBGAS_CHECK(rank >= 0 && rank < n_pes_, "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return ++participations_[static_cast<std::size_t>(rank)];
}

RecoveryState::Round& RecoveryState::round_locked(
    std::uint64_t seq, const std::vector<int>& expected) {
  return rounds_[RoundKey{seq, expected}];
}

void RecoveryState::contribute(int rank, std::uint64_t seq,
                               const std::vector<int>& expected,
                               std::uint64_t flag, std::uint64_t cycles) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    round_locked(seq, expected).contrib[rank] = Contribution{flag, cycles};
  }
  cv_.notify_all();
}

AgreeDecision RecoveryState::await_decision(int rank, std::uint64_t seq,
                                            const std::vector<int>& expected,
                                            std::uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_ms == 0 ? kDefaultAgreeTimeoutMs
                                                : timeout_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Round& rd = round_locked(seq, expected);
    if (rd.decided) {
      if (std::binary_search(rd.decision.partitioned.begin(),
                             rd.decision.partitioned.end(), rank)) {
        throw_partitioned(rank, seq, rd.decision.roster);
      }
      return rd.decision;
    }

    // The live expected set, then its majority component over the
    // reachability graph (full mesh minus the down pairs). Both are
    // re-derived on every wake: a death or a link transition mid-agreement
    // moves the leadership/quorum verdict without any handoff message.
    std::vector<int> live;
    for (const int r : expected) {
      if (failed_[static_cast<std::size_t>(r)] == 0) live.push_back(r);
    }
    const std::vector<int> majority = majority_component_locked(live);

    if (!majority.empty() && majority.front() == rank) {
      // Quorum leader: the smallest live member of the majority component.
      // The decision needs every *majority* contribution — the minority is
      // unreachable, so waiting for it would forfeit quorum-side progress.
      bool complete = true;
      for (const int r : majority) {
        if (rd.contrib.find(r) == rd.contrib.end()) complete = false;
      }
      if (complete) {
        // Evict unreachable-but-alive peers: any pair some PE escalated
        // (retries exhausted across a dead link) whose endpoints are both
        // still in the majority loses its larger endpoint — the survivors
        // expel it exactly like a dead rank, restoring an all-reachable
        // roster.
        std::vector<char> in_majority(static_cast<std::size_t>(n_pes_), 0);
        for (const int r : majority) {
          in_majority[static_cast<std::size_t>(r)] = 1;
        }
        std::vector<char> evicted(static_cast<std::size_t>(n_pes_), 0);
        for (const auto& [pair, count] : unreachable_notes_) {
          if (count <= 0) continue;
          if (in_majority[static_cast<std::size_t>(pair.first)] != 0 &&
              in_majority[static_cast<std::size_t>(pair.second)] != 0) {
            evicted[static_cast<std::size_t>(pair.second)] = 1;
          }
        }
        // Fold the majority contributions in binomial-tree order (the order
        // the xBGAS implementation would merge partial rosters up the tree;
        // AND and max are associative, so the fold shape only matters for
        // the modeled cost, charged by xbr_agree).
        AgreeDecision d;
        d.seq = seq;
        d.flag = ~std::uint64_t{0};
        for (const int r : majority) {
          if (evicted[static_cast<std::size_t>(r)] != 0) {
            d.partitioned.push_back(r);
            continue;
          }
          const auto it = rd.contrib.find(r);
          d.roster.push_back(r);
          d.flag &= it->second.flag;
          d.max_cycles = std::max(d.max_cycles, it->second.cycles);
        }
        for (const int r : live) {
          if (in_majority[static_cast<std::size_t>(r)] == 0) {
            d.partitioned.push_back(r);
          }
        }
        std::sort(d.partitioned.begin(), d.partitioned.end());
        rd.decision = d;
        rd.decided = true;
        ++epoch_;
        for (const int r : expected) {
          const auto i = static_cast<std::size_t>(r);
          if (failed_[i] != 0) acknowledged_[i] = 1;
        }
        // Pre-acknowledge the partitioned ranks: when they unwind with
        // PartitionedError and Machine::run marks them failed, the region
        // still counts as recovered — the majority collectively chose to
        // proceed without them.
        for (const int r : d.partitioned) {
          acknowledged_[static_cast<std::size_t>(r)] = 1;
        }
        counters_.agreements.fetch_add(1, std::memory_order_relaxed);
        cv_.notify_all();
        // The leader is the smallest majority member and never evicts
        // itself (evictions take the larger endpoint), so it returns.
        return rd.decision;
      }
    } else if (majority.empty() && !live.empty() && live.front() == rank) {
      // No component holds a strict majority (an even split). Once every
      // live rank has contributed — proof none of them can be decided for —
      // the global smallest live rank folds an explicit no-quorum decision:
      // empty roster, everyone partitioned, every caller unwinds typed.
      bool all_contributed = true;
      for (const int r : live) {
        if (rd.contrib.find(r) == rd.contrib.end()) all_contributed = false;
      }
      if (all_contributed) {
        AgreeDecision d;
        d.seq = seq;
        d.flag = 0;
        d.partitioned = live;
        rd.decision = d;
        rd.decided = true;
        ++epoch_;
        for (const int r : expected) {
          const auto i = static_cast<std::size_t>(r);
          if (failed_[i] != 0) acknowledged_[i] = 1;
        }
        for (const int r : d.partitioned) {
          acknowledged_[static_cast<std::size_t>(r)] = 1;
        }
        counters_.agreements.fetch_add(1, std::memory_order_relaxed);
        cv_.notify_all();
        throw_partitioned(rank, seq, rd.decision.roster);
      }
    }

    if (std::chrono::steady_clock::now() >= deadline) {
      std::vector<int> missing;
      for (const int r : expected) {
        if (failed_[static_cast<std::size_t>(r)] == 0 &&
            rd.contrib.find(r) == rd.contrib.end()) {
          missing.push_back(r);
        }
      }
      std::string msg = "xbr_agree timed out on rank " + std::to_string(rank) +
                        " (agreement #" + std::to_string(seq) +
                        "): no contribution or failure from ranks [";
      for (std::size_t i = 0; i < missing.size(); ++i) {
        if (i != 0) msg += ',';
        msg += std::to_string(missing[i]);
      }
      msg += "]";
      throw AgreementTimeoutError(msg, std::move(missing));
    }

    if (FiberScheduler::on_fiber()) {
      // N:M invariant: a fiber must not sleep on the condvar — the worker
      // it would block may be the only one left to run the contributor or
      // leader fiber this wait depends on. Release the board, park
      // cooperatively, re-derive everything on resume. (`rd` is refetched
      // at the loop top; map references stay valid regardless.)
      lock.unlock();
      FiberScheduler::yield_waiting();
      lock.lock();
    } else {
      cv_.wait_until(lock, std::min(deadline,
                                    std::chrono::steady_clock::now() +
                                        std::chrono::milliseconds(10)));
    }
  }
}

}  // namespace xbgas
