#include "fault/checkpoint_store.hpp"

#include "common/error.hpp"

namespace xbgas {

CheckpointStore::CheckpointStore(int n_pes)
    : entries_(static_cast<std::size_t>(n_pes)) {}

std::uint64_t CheckpointStore::commit(int rank, std::vector<HeapShard> shards) {
  XBGAS_CHECK(rank >= 0 && rank < static_cast<int>(entries_.size()),
              "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(rank)];
  e.shards = std::move(shards);
  return ++e.version;
}

bool CheckpointStore::has_snapshot(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < static_cast<int>(entries_.size()),
              "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_[static_cast<std::size_t>(rank)].version != 0;
}

std::uint64_t CheckpointStore::version(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < static_cast<int>(entries_.size()),
              "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_[static_cast<std::size_t>(rank)].version;
}

std::vector<HeapShard> CheckpointStore::snapshot(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < static_cast<int>(entries_.size()),
              "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_[static_cast<std::size_t>(rank)].shards;
}

std::uint64_t CheckpointStore::bytes(int rank) const {
  XBGAS_CHECK(rank >= 0 && rank < static_cast<int>(entries_.size()),
              "PE rank out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const HeapShard& s : entries_[static_cast<std::size_t>(rank)].shards) {
    total += s.data.size();
  }
  return total;
}

}  // namespace xbgas
