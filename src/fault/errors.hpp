#pragma once

// Typed errors of the resilience layer.
//
// All of them derive from xbgas::Error so existing catch sites keep working;
// the subtypes carry the structured facts (which rank died, which ranks
// reached a barrier, how many retries were spent) that the fault-sweep tests
// and post-mortem tooling assert on.

#include <string>
#include <vector>

#include "common/error.hpp"

namespace xbgas {

/// A FaultConfig (or watchdog parameter) that cannot describe a valid fault
/// plan: probabilities outside [0, 1], a retry base of 0 cycles with retries
/// enabled, a kill spec naming a rank the machine does not have, a 0 trigger
/// count that could never fire. Raised at Machine construction (or CLI
/// parse) instead of letting the bad value silently misbehave later.
class FaultConfigError : public Error {
 public:
  explicit FaultConfigError(const std::string& what_arg) : Error(what_arg) {}
};

/// A remote transfer kept failing after the bounded retry/backoff budget
/// (FaultConfig::max_rma_retries) was exhausted.
class RmaRetriesExhaustedError : public Error {
 public:
  RmaRetriesExhaustedError(const std::string& what_arg, int attempts)
      : Error(what_arg), attempts_(attempts) {}

  /// Total attempts performed (first try + retries).
  int attempts() const { return attempts_; }

 private:
  int attempts_;
};

/// A barrier watchdog fired: some participants never arrived within the
/// host-time budget. Carries the rendezvous roster so diagnostics can say
/// exactly who was missing instead of just "hung".
class BarrierTimeoutError : public Error {
 public:
  BarrierTimeoutError(const std::string& what_arg, std::vector<int> arrived,
                      std::vector<int> missing)
      : Error(what_arg),
        arrived_(std::move(arrived)),
        missing_(std::move(missing)) {}

  /// World ranks that reached the barrier before the watchdog fired.
  const std::vector<int>& arrived_ranks() const { return arrived_; }
  /// World ranks that never arrived (empty if the roster is unknown).
  const std::vector<int>& missing_ranks() const { return missing_; }

 private:
  std::vector<int> arrived_;
  std::vector<int> missing_;
};

/// An xbr_agree participant waited longer than the agreement watchdog for
/// the remaining contributions: some expected rank neither contributed nor
/// was marked failed (e.g. it is blocked in an unrelated collective).
/// Carries the roster so the diagnosis names who was missing.
class AgreementTimeoutError : public Error {
 public:
  AgreementTimeoutError(const std::string& what_arg, std::vector<int> missing)
      : Error(what_arg), missing_(std::move(missing)) {}

  /// Expected world ranks that never contributed and never failed.
  const std::vector<int>& missing_ranks() const { return missing_; }

 private:
  std::vector<int> missing_;
};

/// Thrown by every *surviving* participant of a barrier/collective when a
/// peer PE died: the fail-fast protocol's consistent verdict. Names the
/// first dead world rank.
class PeFailedError : public Error {
 public:
  PeFailedError(const std::string& what_arg, int failed_rank)
      : Error(what_arg), failed_rank_(failed_rank) {}

  /// World rank of the (first) failed PE, or -1 if unknown.
  int failed_rank() const { return failed_rank_; }

 private:
  int failed_rank_;
};

/// The exception a scripted FaultConfig kill throws *on the victim PE*.
class PeKilledError : public Error {
 public:
  PeKilledError(const std::string& what_arg, int rank)
      : Error(what_arg), rank_(rank) {}

  int rank() const { return rank_; }

 private:
  int rank_;
};

/// One PE's failure inside an SPMD region, as recorded by Machine::run.
struct PeFailure {
  int rank = -1;
  std::string what;
  /// True when the failure is a secondary PeFailedError/poison unwind
  /// triggered by another PE's death rather than an independent fault.
  bool secondary = false;
};

/// The composite report Machine::run throws when one or more PEs fail:
/// every failed rank and its cause, primaries before secondaries, instead
/// of silently dropping all but the first exception.
class SpmdRegionError : public Error {
 public:
  SpmdRegionError(const std::string& what_arg, std::vector<PeFailure> failures)
      : Error(what_arg), failures_(std::move(failures)) {}

  const std::vector<PeFailure>& failures() const { return failures_; }

 private:
  std::vector<PeFailure> failures_;
};

}  // namespace xbgas
