#pragma once

// Typed errors of the resilience layer.
//
// All of them derive from xbgas::Error so existing catch sites keep working;
// the subtypes carry the structured facts (which rank died, which ranks
// reached a barrier, how many retries were spent) that the fault-sweep tests
// and post-mortem tooling assert on.

#include <string>
#include <vector>

#include "common/error.hpp"

namespace xbgas {

/// A FaultConfig (or watchdog parameter) that cannot describe a valid fault
/// plan: probabilities outside [0, 1], a retry base of 0 cycles with retries
/// enabled, a kill spec naming a rank the machine does not have, a 0 trigger
/// count that could never fire. Raised at Machine construction (or CLI
/// parse) instead of letting the bad value silently misbehave later.
class FaultConfigError : public Error {
 public:
  explicit FaultConfigError(const std::string& what_arg) : Error(what_arg) {}
};

/// A remote transfer kept failing after the bounded retry/backoff budget
/// (FaultConfig::max_rma_retries) was exhausted. Carries structured facts —
/// which target rank, which transport site (olb/drop/checksum/amo/wc_flush),
/// how many attempts — so the serving retry layer and the unreachable-peer
/// escalation can switch on fields instead of parsing the message.
class RmaRetriesExhaustedError : public Error {
 public:
  RmaRetriesExhaustedError(const std::string& what_arg, int attempts)
      : RmaRetriesExhaustedError(what_arg, attempts, /*target_rank=*/-1,
                                 /*site=*/"") {}

  RmaRetriesExhaustedError(const std::string& what_arg, int attempts,
                           int target_rank, std::string site)
      : Error(what_arg),
        attempts_(attempts),
        target_rank_(target_rank),
        site_(std::move(site)) {}

  /// Total attempts performed (first try + retries).
  int attempts() const { return attempts_; }
  /// World rank of the remote target the transfer failed against, or -1.
  int target_rank() const { return target_rank_; }
  /// Transport site that exhausted: "olb", "drop", "checksum", "amo_drop",
  /// "wc_flush", or "" (legacy 2-arg construction).
  const std::string& site() const { return site_; }

 private:
  int attempts_;
  int target_rank_;
  std::string site_;
};

/// Escalation of RmaRetriesExhaustedError when the failing attempts were all
/// crossing a link the fault plan has scripted *down*: the peer is not
/// transiently lossy, it is unreachable from this PE. Derives from
/// RmaRetriesExhaustedError so legacy catch sites keep compiling, but sites
/// that can recover (serving) must catch this type first and feed `peer()`
/// to the suspect -> xbr_agree -> xbr_team_shrink machinery as if the peer
/// had died.
class PeUnreachableError : public RmaRetriesExhaustedError {
 public:
  PeUnreachableError(const std::string& what_arg, int attempts, int peer,
                     std::string site, int link_a, int link_b)
      : RmaRetriesExhaustedError(what_arg, attempts, peer, std::move(site)),
        link_a_(link_a),
        link_b_(link_b) {}

  /// World rank of the unreachable peer (alias of target_rank()).
  int peer() const { return target_rank(); }
  /// Endpoints of the dead link, normalized a < b.
  int link_a() const { return link_a_; }
  int link_b() const { return link_b_; }

 private:
  int link_a_;
  int link_b_;
};

/// Thrown on every PE that the quorum rule of xbr_agree placed on the losing
/// side of a network partition: the majority component decided (and will
/// shrink) without this rank, so the only safe move is to unwind — acting on
/// local state would split the brain. Carries the majority roster so
/// diagnostics can say who kept going.
class PartitionedError : public Error {
 public:
  PartitionedError(const std::string& what_arg, int rank,
                   std::vector<int> majority)
      : Error(what_arg), rank_(rank), majority_(std::move(majority)) {}

  /// This PE's world rank.
  int rank() const { return rank_; }
  /// World ranks of the majority component that proceeded without us
  /// (empty when no component reached quorum at all).
  const std::vector<int>& majority_ranks() const { return majority_; }

 private:
  int rank_;
  std::vector<int> majority_;
};

/// A barrier watchdog fired: some participants never arrived within the
/// host-time budget. Carries the rendezvous roster so diagnostics can say
/// exactly who was missing instead of just "hung".
class BarrierTimeoutError : public Error {
 public:
  BarrierTimeoutError(const std::string& what_arg, std::vector<int> arrived,
                      std::vector<int> missing)
      : Error(what_arg),
        arrived_(std::move(arrived)),
        missing_(std::move(missing)) {}

  /// World ranks that reached the barrier before the watchdog fired.
  const std::vector<int>& arrived_ranks() const { return arrived_; }
  /// World ranks that never arrived (empty if the roster is unknown).
  const std::vector<int>& missing_ranks() const { return missing_; }

 private:
  std::vector<int> arrived_;
  std::vector<int> missing_;
};

/// An xbr_agree participant waited longer than the agreement watchdog for
/// the remaining contributions: some expected rank neither contributed nor
/// was marked failed (e.g. it is blocked in an unrelated collective).
/// Carries the roster so the diagnosis names who was missing.
class AgreementTimeoutError : public Error {
 public:
  AgreementTimeoutError(const std::string& what_arg, std::vector<int> missing)
      : Error(what_arg), missing_(std::move(missing)) {}

  /// Expected world ranks that never contributed and never failed.
  const std::vector<int>& missing_ranks() const { return missing_; }

 private:
  std::vector<int> missing_;
};

/// Thrown by every *surviving* participant of a barrier/collective when a
/// peer PE died: the fail-fast protocol's consistent verdict. Names the
/// first dead world rank.
class PeFailedError : public Error {
 public:
  PeFailedError(const std::string& what_arg, int failed_rank)
      : Error(what_arg), failed_rank_(failed_rank) {}

  /// World rank of the (first) failed PE, or -1 if unknown.
  int failed_rank() const { return failed_rank_; }

 private:
  int failed_rank_;
};

/// The exception a scripted FaultConfig kill throws *on the victim PE*.
class PeKilledError : public Error {
 public:
  PeKilledError(const std::string& what_arg, int rank)
      : Error(what_arg), rank_(rank) {}

  int rank() const { return rank_; }

 private:
  int rank_;
};

/// One PE's failure inside an SPMD region, as recorded by Machine::run.
struct PeFailure {
  int rank = -1;
  std::string what;
  /// True when the failure is a secondary PeFailedError/poison unwind
  /// triggered by another PE's death rather than an independent fault.
  bool secondary = false;
};

/// The composite report Machine::run throws when one or more PEs fail:
/// every failed rank and its cause, primaries before secondaries, instead
/// of silently dropping all but the first exception.
class SpmdRegionError : public Error {
 public:
  SpmdRegionError(const std::string& what_arg, std::vector<PeFailure> failures)
      : Error(what_arg), failures_(std::move(failures)) {}

  const std::vector<PeFailure>& failures() const { return failures_; }

 private:
  std::vector<PeFailure> failures_;
};

}  // namespace xbgas
