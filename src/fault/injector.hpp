#pragma once

// FaultInjector — the deterministic fault source for one Machine.
//
// One injector per Machine, consulted from the RMA hot path and the barrier
// arrival paths. Every probabilistic decision is drawn from a per-PE,
// per-site xoshiro256** stream seeded from (FaultConfig::seed, rank, site):
// each PE thread only ever advances its own streams, in its own program
// order, so fault placement is bit-reproducible for a given seed and
// program regardless of how the host schedules the PE threads.
//
// Scripted kills (the k-th barrier / k-th RMA of a chosen rank) are counted
// here too and fire by throwing PeKilledError on the victim's thread; the
// Machine's failure handling then turns that into barrier poisoning and a
// PeFailedError on every survivor.
//
// The injector also owns the resilience counter block (fault.injected.*,
// rma.retries, barrier.timeouts, ...) surfaced through collect_counters().

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "fault/config.hpp"
#include "fault/errors.hpp"

namespace xbgas {

/// Injection site identifiers — trace payloads (EventKind::kFaultInject `a`
/// field) and diagnostics.
enum class FaultSite : std::uint8_t {
  kRmaDrop = 0,
  kRmaDelay = 1,
  kRmaBitflip = 2,
  kOlbFault = 3,
  kKill = 4,
  kAmoDrop = 5,
  kAmoDelay = 6,
  kLinkDown = 7,
  kLinkDegraded = 8,
};

constexpr const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kRmaDrop: return "rma_drop";
    case FaultSite::kRmaDelay: return "rma_delay";
    case FaultSite::kRmaBitflip: return "rma_bitflip";
    case FaultSite::kOlbFault: return "olb_fault";
    case FaultSite::kKill: return "kill";
    case FaultSite::kAmoDrop: return "amo_drop";
    case FaultSite::kAmoDelay: return "amo_delay";
    case FaultSite::kLinkDown: return "link_down";
    case FaultSite::kLinkDegraded: return "link_degraded";
  }
  return "unknown";
}

/// Machine-wide fault/resilience counters. Incremented from PE threads
/// (relaxed atomics: they are statistics, not synchronization).
struct FaultCounters {
  std::atomic<std::uint64_t> rma_drops{0};
  std::atomic<std::uint64_t> rma_delays{0};
  std::atomic<std::uint64_t> rma_bitflips{0};
  std::atomic<std::uint64_t> olb_faults{0};
  std::atomic<std::uint64_t> kills{0};
  std::atomic<std::uint64_t> rma_retries{0};
  std::atomic<std::uint64_t> checksum_failures{0};
  std::atomic<std::uint64_t> barrier_timeouts{0};
  std::atomic<std::uint64_t> amo_drops{0};
  std::atomic<std::uint64_t> amo_delays{0};
  std::atomic<std::uint64_t> amo_retries{0};
  std::atomic<std::uint64_t> link_down_drops{0};
  std::atomic<std::uint64_t> link_degraded{0};
  std::atomic<std::uint64_t> pe_unreachable{0};

  void reset() {
    rma_drops = 0;
    rma_delays = 0;
    rma_bitflips = 0;
    olb_faults = 0;
    kills = 0;
    rma_retries = 0;
    checksum_failures = 0;
    barrier_timeouts = 0;
    amo_drops = 0;
    amo_delays = 0;
    amo_retries = 0;
    link_down_drops = 0;
    link_degraded = 0;
    pe_unreachable = 0;
  }
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, int n_pes);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultConfig& config() const { return config_; }

  /// True when any fault can ever fire; hot paths gate on this so a
  /// fault-free machine pays one predictable branch.
  bool enabled() const { return enabled_; }

  // -- Per-attempt probabilistic draws (calling PE's own streams) --
  bool draw_rma_drop(int rank) {
    return draw(rank, StreamId::kDrop, config_.rma_drop_prob);
  }
  bool draw_rma_delay(int rank) {
    return draw(rank, StreamId::kDelay, config_.rma_delay_prob);
  }
  bool draw_rma_bitflip(int rank) {
    return draw(rank, StreamId::kBitflip, config_.rma_bitflip_prob);
  }
  bool draw_olb_fault(int rank) {
    return draw(rank, StreamId::kOlb, config_.olb_fault_prob);
  }
  bool draw_amo_drop(int rank) {
    return draw(rank, StreamId::kAmoDrop, config_.amo_drop_prob);
  }
  bool draw_amo_delay(int rank) {
    return draw(rank, StreamId::kAmoDelay, config_.amo_delay_prob);
  }

  /// Flip one deterministic payload bit in the (possibly strided) element
  /// layout at `data` — the corruption a bit-flip fault delivers.
  void corrupt_payload(int rank, void* data, std::size_t elem_size,
                       std::size_t nelems, int stride);

  /// Scripted-kill hooks: count this PE's barrier arrivals / RMA issues /
  /// agreement steps and throw PeKilledError on the victim at a configured
  /// trigger point. Counts are kept per (rank, site), but only for ranks
  /// with a kill scheduled at that site, so the hot paths stay one branch
  /// for everyone else and the legacy single-kill trigger sequence is
  /// unchanged.
  void on_barrier_arrival(int rank) {
    if ((kill_mask(rank) & kMaskBarrier) == 0) return;
    count_and_maybe_kill(rank, KillSite::kBarrier, "barrier");
  }
  void on_rma_issue(int rank) {
    if ((kill_mask(rank) & kMaskRma) == 0) return;
    count_and_maybe_kill(rank, KillSite::kRma, "RMA");
  }
  void on_agree_step(int rank) {
    if ((kill_mask(rank) & kMaskAgree) == 0) return;
    count_and_maybe_kill(rank, KillSite::kAgree, "agree step");
  }
  void on_amo_issue(int rank) {
    // An AMO is a remote issue too: the legacy "rma" site keeps counting
    // every remote transfer (so existing scripted-kill calibrations are
    // unchanged), while the "amo" site triggers on AMO issues alone.
    on_rma_issue(rank);
    if ((kill_mask(rank) & kMaskAmo) == 0) return;
    count_and_maybe_kill(rank, KillSite::kAmo, "AMO");
  }

  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

  /// Zero the counters (between benchmark repetitions). The RNG streams are
  /// deliberately NOT rewound: the fault timeline keeps advancing so a
  /// multi-region program stays on one deterministic schedule.
  void reset_counters() { counters_.reset(); }

 private:
  enum class StreamId : std::uint8_t {
    kDrop = 0,
    kDelay,
    kBitflip,
    kOlb,
    kBits,  // bit-position picks for corrupt_payload
    // AMO sites appended (not interleaved) so the (seed, rank, site) ->
    // sequence mapping of every pre-existing stream is unchanged.
    kAmoDrop,
    kAmoDelay,
    kCount,
  };
  static constexpr int kStreams = static_cast<int>(StreamId::kCount);

  static constexpr std::uint8_t kMaskBarrier = 1;
  static constexpr std::uint8_t kMaskRma = 2;
  static constexpr std::uint8_t kMaskAgree = 4;
  static constexpr std::uint8_t kMaskAmo = 8;
  static constexpr int kKillSites = 4;  // barrier, rma, agree, amo

  /// One PE's private injection state; cache-line separated so concurrent
  /// PEs never share a line.
  struct alignas(64) PeState {
    std::vector<Xoshiro256ss> streams;        // one per StreamId
    std::uint64_t site_count[kKillSites] = {};  // per-site trigger counts
  };

  static int site_index(KillSite site) {
    return site == KillSite::kBarrier ? 0
           : site == KillSite::kRma   ? 1
           : site == KillSite::kAgree ? 2
                                      : 3;
  }
  std::uint8_t kill_mask(int rank) const {
    return kill_mask_[static_cast<std::size_t>(rank)];
  }

  bool draw(int rank, StreamId id, double prob);
  Xoshiro256ss& stream(int rank, StreamId id);
  void count_and_maybe_kill(int rank, KillSite site, const char* site_name);

  FaultConfig config_;
  bool enabled_;
  std::vector<KillSpec> kills_;          ///< legacy fields + list, merged
  std::vector<std::uint8_t> kill_mask_;  ///< per-rank sites with kills
  std::vector<std::unique_ptr<PeState>> pes_;
  FaultCounters counters_;
};

}  // namespace xbgas
