#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace xbgas {

CliArgs::CliArgs(int argc, const char* const* argv) {
  XBGAS_CHECK(argc >= 1 && argv != nullptr, "CliArgs requires argv[0]");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.contains(name); }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<int> CliArgs::get_int_list(const std::string& name,
                                       const std::vector<int>& fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::vector<int> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

}  // namespace xbgas
