#pragma once

// Tiny command-line flag parser shared by the bench/ and examples/ binaries.
// Supports --name value, --name=value, and bare --flag booleans.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xbgas {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --pes 1,2,4,8.
  std::vector<int> get_int_list(const std::string& name,
                                const std::vector<int>& fallback) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace xbgas
