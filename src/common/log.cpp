#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/strfmt.hpp"

namespace xbgas {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<int (*)()> g_rank_provider{nullptr};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_rank_provider(int (*provider)()) {
  g_rank_provider.store(provider, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  int rank = -1;
  if (auto* provider = g_rank_provider.load(std::memory_order_relaxed)) {
    rank = provider();
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (rank >= 0) {
    std::fprintf(stderr, "[xbgas %-5s PE %d] %s\n", level_name(level), rank, msg.c_str());
  } else {
    std::fprintf(stderr, "[xbgas %-5s] %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace xbgas
