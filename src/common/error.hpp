#pragma once

// Error handling for the xBGAS stack.
//
// Policy (see DESIGN.md §4): programming errors — bad ranks, unaligned or
// out-of-segment addresses, misuse of the runtime — throw xbgas::Error.
// Expected runtime conditions (allocation exhaustion, OLB misses that are
// part of normal translation flow) are reported through return values on the
// specific APIs involved.

#include <source_location>
#include <stdexcept>
#include <string>

namespace xbgas {

/// Exception thrown on contract violations anywhere in the stack.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const std::string& msg,
                                     const std::source_location& loc) {
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
              ": check failed: " + cond + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

/// Always-on invariant check (enabled in release builds too: the runtime is a
/// simulator substrate, and silent memory corruption would invalidate every
/// experiment built on top of it).
#define XBGAS_CHECK(cond, ...)                                         \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::xbgas::detail::throw_error(#cond, ::std::string{__VA_ARGS__},  \
                                   ::std::source_location::current()); \
    }                                                                  \
  } while (false)

/// Debug-only check for hot paths (per-element loops in get/put).
#ifndef NDEBUG
#define XBGAS_DCHECK(cond, ...) XBGAS_CHECK(cond, ##__VA_ARGS__)
#else
#define XBGAS_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#endif

}  // namespace xbgas
