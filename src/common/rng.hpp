#pragma once

// Deterministic random-number generators used throughout the stack.
//
//  - SplitMix64  : seeding / general-purpose 64-bit mixing.
//  - Xoshiro256ss: fast general-purpose generator for tests and workloads.
//  - GupsStream  : the HPCC RandomAccess polynomial sequence
//                  x_{i+1} = (x_i << 1) ^ (msb(x_i) ? POLY : 0),
//                  with O(log i) jump-ahead — required so each PE of the GUPs
//                  benchmark (Figure 4) can start at its own offset of the
//                  global update stream.
//  - NasRandlc   : the NAS Parallel Benchmarks 46-bit linear congruential
//                  generator (randlc, a = 5^13), used by NAS IS key
//                  generation (Figure 5).
//
// All generators are value types with explicit state: runs are reproducible
// bit-for-bit for any PE count.

#include <cstdint>

namespace xbgas {

/// SplitMix64 (Steele, Lea, Flood 2014). Good seed expander.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** (Blackman & Vigna). Fast, high-quality, 256-bit state.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t s_[4];
};

/// HPCC RandomAccess (GUPs) update stream.
class GupsStream {
 public:
  static constexpr std::uint64_t kPoly = 0x0000000000000007ull;
  static constexpr std::uint64_t kPeriod = 1317624576693539401ull;  // (2^64-1)/7... HPCC constant

  /// Stream positioned at the n-th element of the canonical sequence
  /// (n may exceed 2^32; jump-ahead is O(64)).
  static GupsStream at(std::int64_t n);

  std::uint64_t next() {
    const std::uint64_t msb = value_ & 0x8000000000000000ull;
    value_ = (value_ << 1) ^ (msb ? kPoly : 0ull);
    return value_;
  }

  std::uint64_t value() const { return value_; }

 private:
  explicit GupsStream(std::uint64_t v) : value_(v) {}
  std::uint64_t value_;
};

/// NAS Parallel Benchmarks pseudorandom generator: 46-bit LCG,
/// x_{k+1} = a * x_k (mod 2^46), returning x_{k+1} * 2^-46 in [0,1).
class NasRandlc {
 public:
  static constexpr double kDefaultSeed = 314159265.0;
  static constexpr double kA = 1220703125.0;  // 5^13

  explicit NasRandlc(double seed = kDefaultSeed, double a = kA);

  /// Next value in [0, 1).
  double next();

  /// Current seed (the integer state as a double, NAS convention).
  double seed() const { return x_; }

  /// Advance the seed by n steps in O(log n) (NAS find_my_seed). Used to give
  /// each PE its own contiguous slice of the key stream.
  static double skip_ahead(double seed, double a, std::int64_t n);

 private:
  double x_;
  double a_;
};

}  // namespace xbgas
