#pragma once

// Minimal printf-style formatting into std::string (GCC 12 lacks <format>).

#include <cstdarg>
#include <cstdio>
#include <string>

namespace xbgas {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strfmt(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace xbgas
