#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xbgas {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256ss::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) {
  XBGAS_CHECK(bound != 0, "next_below bound must be nonzero");
  // Lemire-style rejection-free multiply-shift is fine for benchmark use; use
  // simple rejection to keep exact uniformity for property tests.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256ss::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

GupsStream GupsStream::at(std::int64_t n) {
  // HPCC RandomAccess starts() routine: compute the n-th value of the
  // sequence via 64x64 GF(2) matrix-vector products encoded as shift tables.
  while (n < 0) n += static_cast<std::int64_t>(kPeriod);
  if (n == 0) return GupsStream(0x1ull);

  std::uint64_t m2[64];
  std::uint64_t temp = 0x1;
  for (auto& m : m2) {
    m = temp;
    temp = (temp << 1) ^ ((temp >> 63) ? kPoly : 0ull);
    temp = (temp << 1) ^ ((temp >> 63) ? kPoly : 0ull);
  }

  int i = 62;
  while (i >= 0 && !((n >> i) & 1)) --i;

  std::uint64_t ran = 0x2;
  while (i > 0) {
    temp = 0;
    for (int j = 0; j < 64; ++j) {
      if ((ran >> j) & 1) temp ^= m2[j];
    }
    ran = temp;
    --i;
    if ((n >> i) & 1) ran = (ran << 1) ^ ((ran >> 63) ? kPoly : 0ull);
  }
  return GupsStream(ran);
}

NasRandlc::NasRandlc(double seed, double a) : x_(seed), a_(a) {}

namespace {
// The NAS randlc kernel: 46-bit modular multiply via double-double split.
double randlc_step(double* x, double a) {
  constexpr double r23 = 0x1.0p-23, r46 = 0x1.0p-46;
  constexpr double t23 = 0x1.0p23, t46 = 0x1.0p46;

  const double t1a = r23 * a;
  const double a1 = static_cast<double>(static_cast<long long>(t1a));
  const double a2 = a - t23 * a1;

  const double t1x = r23 * (*x);
  const double x1 = static_cast<double>(static_cast<long long>(t1x));
  const double x2 = (*x) - t23 * x1;

  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<long long>(r23 * t1));
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<long long>(r46 * t3));
  *x = t3 - t46 * t4;
  return r46 * (*x);
}
}  // namespace

double NasRandlc::next() { return randlc_step(&x_, a_); }

double NasRandlc::skip_ahead(double seed, double a, std::int64_t n) {
  // NAS IS find_my_seed: seed <- seed * a^n mod 2^46, square-and-multiply.
  XBGAS_CHECK(n >= 0, "skip_ahead requires n >= 0");
  double s = seed;
  double t = a;
  while (n != 0) {
    if (n & 1) (void)randlc_step(&s, t);
    double tt = t;
    (void)randlc_step(&t, tt);
    n >>= 1;
  }
  return s;
}

}  // namespace xbgas
