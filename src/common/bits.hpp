#pragma once

// Bit-manipulation helpers shared by the ISA encodings, the collective
// binomial-tree masks, and the cache index math.

#include <bit>
#include <concepts>
#include <cstdint>

#include "common/error.hpp"

namespace xbgas {

/// ⌈log2(n)⌉ for n >= 1. The binomial-tree loop bound of Algorithms 1-4.
constexpr unsigned ceil_log2(std::uint64_t n) {
  XBGAS_CHECK(n >= 1, "ceil_log2 domain");
  return n == 1 ? 0u : static_cast<unsigned>(std::bit_width(n - 1));
}

/// ⌊log2(n)⌋ for n >= 1.
constexpr unsigned floor_log2(std::uint64_t n) {
  XBGAS_CHECK(n >= 1, "floor_log2 domain");
  return static_cast<unsigned>(std::bit_width(n) - 1);
}

constexpr bool is_pow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Round `n` up to the next multiple of `align` (align must be a power of 2).
constexpr std::uint64_t align_up(std::uint64_t n, std::uint64_t align) {
  XBGAS_CHECK(is_pow2(align), "alignment must be a power of two");
  return (n + align - 1) & ~(align - 1);
}

/// Extract bits [lo, lo+width) of `v`.
constexpr std::uint32_t bits(std::uint32_t v, unsigned lo, unsigned width) {
  XBGAS_CHECK(lo + width <= 32, "bit range");
  return width == 32 ? v : ((v >> lo) & ((1u << width) - 1u));
}

/// Sign-extend the low `width` bits of `v` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t v, unsigned width) {
  XBGAS_CHECK(width >= 1 && width <= 64, "sign_extend width");
  if (width == 64) return static_cast<std::int64_t>(v);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  v &= mask;
  return static_cast<std::int64_t>((v ^ sign) - sign);
}

}  // namespace xbgas
