#pragma once

// Thread-safe leveled logging. PE-aware: when invoked from inside an SPMD
// region the runtime stamps messages with the calling PE's rank.

#include <string>

#include "common/strfmt.hpp"

namespace xbgas {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kWarn
/// (tests and benches stay quiet unless something is wrong).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (used via the XBGAS_LOG macro).
void log_message(LogLevel level, const std::string& msg);

/// Installed by the machine layer so log lines can carry "PE k" prefixes;
/// returns -1 outside an SPMD region.
void set_log_rank_provider(int (*provider)());

#define XBGAS_LOG(level, ...)                                  \
  do {                                                         \
    if ((level) >= ::xbgas::log_level()) {                     \
      ::xbgas::log_message((level), ::xbgas::strfmt(__VA_ARGS__)); \
    }                                                          \
  } while (false)

#define XBGAS_LOG_DEBUG(...) XBGAS_LOG(::xbgas::LogLevel::kDebug, __VA_ARGS__)
#define XBGAS_LOG_INFO(...) XBGAS_LOG(::xbgas::LogLevel::kInfo, __VA_ARGS__)
#define XBGAS_LOG_WARN(...) XBGAS_LOG(::xbgas::LogLevel::kWarn, __VA_ARGS__)
#define XBGAS_LOG_ERROR(...) XBGAS_LOG(::xbgas::LogLevel::kError, __VA_ARGS__)

}  // namespace xbgas
