#pragma once

// ServingConfig — the sharded KV/parameter-server's tuning surface
// (docs/SERVING.md).
//
// The serving layer (store.hpp + client.hpp) is the repo's production
// scenario: shards on the symmetric heap, word-atomic RMA for get/put,
// AMOs for hot counters, and the PR 5 agree/shrink/restore path for live
// failover. Everything time-like below is in *modeled* cycles — the request
// pipeline's timeouts react to simulated tail latency (injected delays,
// retry backoff), never to host scheduling, which is what keeps chaos runs
// bit-reproducible.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace xbgas {

/// A ServingConfig that cannot describe a runnable server: zero keys, a
/// per-attempt budget larger than the whole request's, a tag-breaking key
/// count. Raised before any shard is allocated.
class ServingConfigError : public Error {
 public:
  explicit ServingConfigError(const std::string& what_arg) : Error(what_arg) {}
};

/// What happens to suspect in-flight writes when their owner dies
/// (docs/SERVING.md): replay them onto the new owners (at-least-once), or
/// withdraw the acknowledgment and re-account the request as failed.
/// Either way every request stays accounted — nothing is silently dropped.
enum class InflightPolicy : std::uint8_t {
  kReplay,
  kFailFast,
};

constexpr const char* inflight_policy_name(InflightPolicy p) {
  return p == InflightPolicy::kReplay ? "replay" : "failfast";
}

/// Parse "replay" / "failfast"; throws ServingConfigError otherwise.
InflightPolicy parse_inflight_policy(const std::string& name);

struct ServingConfig {
  // -- Shard geometry --
  /// Keys in the table. Every PE symmetric-allocates one value slot per key;
  /// ownership is key % roster-size over the live roster. Capped at 2^24 so
  /// the self-verifying value tag (key in the high 40 bits) never collides
  /// with the payload bits.
  std::size_t n_keys = 4096;
  /// Hot-counter stripes per PE (bumped with xbr_amo_add on every request
  /// the stripe's owner serves).
  std::size_t hot_stripes = 64;
  /// Write-through replication: every put lands on the primary and on the
  /// next live member, gets may hedge to that replica, and failover can
  /// re-home a dead primary's keys from the replica's fresh copy instead of
  /// its checkpoint.
  bool replicate = true;

  // -- Request pipeline (modeled cycles) --
  /// Whole-request deadline; past it the request fails (and is accounted).
  std::uint64_t op_timeout_cycles = 400000;
  /// Per-attempt budget: an attempt that completes later than this is a
  /// tail-latency suspect — it counts a timeout and, for gets, arms the
  /// hedge. Machine-level RMA retries/backoff surface here as slow attempts.
  std::uint64_t attempt_timeout_cycles = 4000;
  /// Serving-level retries after the first attempt (on top of the machine's
  /// own per-transfer RMA retries).
  int max_request_retries = 3;
  /// First serving-level retry backoff; doubles per attempt (clamped).
  std::uint64_t retry_backoff_cycles = 256;
  /// Slow/failed attempts on the primary before a get is hedged to the
  /// replica. 0 disables hedging.
  int hedge_after = 1;

  // -- Failover --
  /// Policy for suspect in-flight writes on the dead primary.
  InflightPolicy policy = InflightPolicy::kReplay;
  /// Batches between checkpoints; the suspect log spans at most this many
  /// batches, bounding both replay work and worst-case data loss.
  int checkpoint_every = 4;
};

/// Throws ServingConfigError naming the first bad parameter.
void validate_serving_config(const ServingConfig& config);

}  // namespace xbgas
