#pragma once

// ServingClient — per-PE request pipeline and failover state machine
// (docs/SERVING.md).
//
// Request path: every request gets a whole-op deadline and a per-attempt
// budget (modeled cycles). A transport failure (RmaRetriesExhaustedError
// from the machine's own retry layer) or a slow attempt triggers bounded
// exponential-backoff serving-level retries; slow gets additionally hedge to
// the replica. Every request ends accounted exactly once — served or failed
// — never silently dropped.
//
// Failover path: PE deaths surface as PeFailedError at the batch barrier.
// end_batch() catches it and runs recover():
//
//   xbr_team_shrink  -> agree on the survivor roster
//   xbr_checkpoint   -> fresh survivor commit (makes the next step's
//                       own-block restore a no-op, so survivors keep their
//                       latest values)
//   xbr_restore      -> deal the dead ranks' orphaned snapshots out
//   KvStore::rebalance -> push every re-homed key onto its new owners
//   replay/failfast  -> resolve the suspect log (writes acked to the dead
//                       primary since the last checkpoint) by policy
//   xbr_checkpoint   -> commit the re-shard so back-to-back failures do not
//                       orphan a pre-rebalance snapshot
//
// Nested deaths anywhere in that sequence re-enter the loop over the
// smaller roster. The suspect log carries forward across recoveries until a
// checkpoint covers it, so a write replayed onto a new primary that also
// dies is replayed again.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "collectives/shrink.hpp"
#include "serving/config.hpp"
#include "serving/counters.hpp"
#include "serving/store.hpp"

namespace xbgas {

struct ServingRequest {
  enum class Kind : std::uint8_t { kGet, kPut, kIncr };
  Kind kind = Kind::kGet;
  std::size_t key = 0;
  std::uint64_t value = 0;  ///< put payload / incr delta (low 24 bits)
};

/// Traffic phase relative to the (first) failover, for the bench's
/// pre/during/post SLO split.
enum class ServingPhase : int { kPre = 0, kDuring = 1, kPost = 2 };

/// One request's fate, for the driver's latency accounting.
struct ServingOutcome {
  bool served = false;
  bool redirected = false;        ///< get answered by the replica
  int attempts = 1;
  std::uint64_t latency_cycles = 0;
  std::uint64_t value = 0;        ///< get result (tag-verified)
};

class ServingClient {
 public:
  /// Collective: establishes the world view and takes the baseline
  /// checkpoint that anchors the first suspect-log window.
  ServingClient(KvStore& store, const ServingConfig& config);

  ServingClient(const ServingClient&) = delete;
  ServingClient& operator=(const ServingClient&) = delete;

  /// Execute one request to completion (served or failed — always
  /// accounted). Throws PeKilledError only on the dying PE itself.
  ServingOutcome execute(const ServingRequest& request);

  /// Batch boundary: barrier over the current team, plus a checkpoint every
  /// config.checkpoint_every batches. Handles PeFailedError by running the
  /// full failover sequence; returns true when one or more failovers
  /// happened inside this call.
  bool end_batch();

  /// Fold this client's ledger into the process-wide serving.* block. Call
  /// once per PE at the end of the SPMD body; dead PEs never reach it, so
  /// the global ledger aggregates exactly the survivors.
  void finish();

  const ServingCounters& counters() const { return counters_; }
  const ShardView& view() const { return view_; }
  /// Survivor team after a failover; nullptr while the full world is live.
  SurvivorTeam* team() { return team_.get(); }

 private:
  struct Suspect {
    ServingRequest::Kind kind;
    std::size_t key;
    std::uint64_t value;
  };

  bool attempt(const ServingRequest& request, int target, int primary,
               int replica, std::uint64_t* value_out);
  /// One pass of the retry/hedge pipeline against the current view. Throws
  /// PeUnreachableError when a transfer dies against a down link; execute()
  /// catches it, runs recover(), and re-drives against the shrunken view.
  ServingOutcome execute_once(const ServingRequest& request);
  void recover();
  void resolve_suspects(const ShardView& old_view);
  void checkpoint_now();

  KvStore& store_;
  ServingConfig config_;
  ShardView view_;
  std::unique_ptr<SurvivorTeam> team_;
  std::vector<Suspect> log_;  ///< served writes since the last checkpoint
  ServingCounters counters_;
  int batches_since_ckpt_ = 0;
  bool finished_ = false;
};

}  // namespace xbgas
