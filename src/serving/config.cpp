#include "serving/config.hpp"

namespace xbgas {

InflightPolicy parse_inflight_policy(const std::string& name) {
  if (name == "replay") return InflightPolicy::kReplay;
  if (name == "failfast") return InflightPolicy::kFailFast;
  throw ServingConfigError("unknown in-flight policy: " + name +
                           " (replay|failfast)");
}

void validate_serving_config(const ServingConfig& config) {
  if (config.n_keys == 0) {
    throw ServingConfigError("ServingConfig::n_keys must be >= 1");
  }
  if (config.n_keys > (std::size_t{1} << 24)) {
    throw ServingConfigError(
        "ServingConfig::n_keys must be <= 2^24: the self-verifying value "
        "tag keeps the key in the high bits and " +
        std::to_string(config.n_keys) + " keys would collide with payloads");
  }
  if (config.hot_stripes == 0) {
    throw ServingConfigError("ServingConfig::hot_stripes must be >= 1");
  }
  if (config.attempt_timeout_cycles == 0) {
    throw ServingConfigError(
        "ServingConfig::attempt_timeout_cycles must be >= 1: a zero budget "
        "marks every attempt slow and hedges every get");
  }
  if (config.op_timeout_cycles < config.attempt_timeout_cycles) {
    throw ServingConfigError(
        "ServingConfig::op_timeout_cycles (" +
        std::to_string(config.op_timeout_cycles) +
        ") must be >= attempt_timeout_cycles (" +
        std::to_string(config.attempt_timeout_cycles) +
        "); the first attempt could never fit the request deadline");
  }
  if (config.max_request_retries < 0) {
    throw ServingConfigError(
        "ServingConfig::max_request_retries must be >= 0, got " +
        std::to_string(config.max_request_retries));
  }
  if (config.max_request_retries > 0 && config.retry_backoff_cycles == 0) {
    throw ServingConfigError(
        "ServingConfig::retry_backoff_cycles is 0 with retries enabled: "
        "serving-level retries would be charged zero modeled time");
  }
  if (config.hedge_after < 0) {
    throw ServingConfigError("ServingConfig::hedge_after must be >= 0, got " +
                             std::to_string(config.hedge_after));
  }
  if (config.checkpoint_every < 1) {
    throw ServingConfigError(
        "ServingConfig::checkpoint_every must be >= 1, got " +
        std::to_string(config.checkpoint_every));
  }
}

}  // namespace xbgas
