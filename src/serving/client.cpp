#include "serving/client.hpp"

#include <cstdint>

#include "collectives/checkpoint.hpp"
#include "collectives/comm.hpp"
#include "fault/errors.hpp"
#include "machine/machine.hpp"
#include "trace/event.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

namespace {

constexpr std::uint64_t kPayloadMask = (std::uint64_t{1} << 24) - 1;

/// Serving-level backoff for attempt `att` (>= 1): base doubled per prior
/// attempt, saturating well below uint64 overflow.
std::uint64_t serving_backoff(std::uint64_t base, int att) {
  std::uint64_t b = base;
  for (int i = 1; i < att; ++i) {
    if (b >= (std::uint64_t{1} << 62)) return std::uint64_t{1} << 62;
    b <<= 1;
  }
  return b;
}

}  // namespace

ServingClient::ServingClient(KvStore& store, const ServingConfig& config)
    : store_(store), config_(config) {
  validate_serving_config(config_);
  view_ = world_shard_view(xbrtime_ctx().n_pes());
  // Baseline checkpoint: anchors the first suspect-log window, and gives
  // xbr_restore a snapshot for ranks that die before the first periodic
  // checkpoint fires.
  xbr_checkpoint();
}

bool ServingClient::attempt(const ServingRequest& request, int target,
                            int primary, int replica,
                            std::uint64_t* value_out) {
  using Kind = ServingRequest::Kind;
  try {
    switch (request.kind) {
      case Kind::kGet: {
        store_.bump_hot(request.key, target);
        // Gets ride the request-tracked nbi path: the value lands host-side
        // at issue and the handle settles the modeled latency. Waiting right
        // here costs the same cycles as a blocking read, but because the
        // handle survives retries and failovers, the hedge machinery above
        // can leave a read in flight across a recovery and the books still
        // balance (ServingFailoverTest.HedgedNbiGetsBalanceAcrossFailover).
        std::uint64_t v = 0;
        XbrRequest r = store_.load_nbi(request.key, target, &v);
        xbr_wait_req(r);
        // A tag mismatch means the slot never received this key (routing or
        // re-shard bug, or a read raced a failover window): surface it as a
        // failed attempt so the retry/hedge machinery re-drives it instead
        // of returning wrong data.
        if (!KvStore::tag_matches(request.key, v)) return false;
        *value_out = v;
        return true;
      }
      case Kind::kPut: {
        store_.bump_hot(request.key, primary);
        const std::uint64_t v =
            KvStore::tag(request.key) | (request.value & kPayloadMask);
        store_.store_value(request.key, v, primary);
        if (replica != primary) {
          // Write-through to the replica. A replica-side transport failure
          // is absorbed — the primary write landed, the request is served —
          // but counted: replica_skips bounds how far the replica may lag,
          // which is exactly the data a later failover could lose.
          try {
            store_.store_value(request.key, v, replica);
          } catch (const PeUnreachableError&) {
            // An unreachable replica is not a lossy one: the whole component
            // behind the dead link needs eviction, so escalate to recovery
            // instead of letting the replica silently lag forever.
            throw;
          } catch (const RmaRetriesExhaustedError&) {
            ++counters_.replica_skips;
          }
        }
        *value_out = v;
        return true;
      }
      case Kind::kIncr: {
        store_.bump_hot(request.key, primary);
        const std::uint64_t delta = request.value & kPayloadMask;
        const std::uint64_t pre =
            store_.add_value(request.key, delta, primary);
        if (replica != primary) {
          try {
            store_.add_value(request.key, delta, replica);
          } catch (const PeUnreachableError&) {
            throw;  // see the put path: unreachable replicas escalate
          } catch (const RmaRetriesExhaustedError&) {
            ++counters_.replica_skips;
          }
        }
        *value_out = pre + delta;
        return true;
      }
    }
  } catch (const PeUnreachableError&) {
    // Retries died against a link scripted *down*: the peer is partitioned
    // away, not flaky, so retrying this attempt can never succeed. Escalate
    // to execute()'s recovery loop.
    throw;
  } catch (const RmaRetriesExhaustedError&) {
    // The machine's own RMA/AMO retry layer gave up on this transfer; that
    // is one failed serving attempt. (PeKilledError is deliberately not
    // caught — the dying PE itself must unwind.)
    return false;
  }
  return false;
}

ServingOutcome ServingClient::execute(const ServingRequest& request) {
  using Kind = ServingRequest::Kind;

  ++counters_.requests;
  switch (request.kind) {
    case Kind::kGet: ++counters_.gets; break;
    case Kind::kPut: ++counters_.puts; break;
    case Kind::kIncr: ++counters_.incrs; break;
  }

  // Unreachable-peer escalation: a PeUnreachableError means the owner sits
  // behind a link the fault plan scripted down, so no amount of per-request
  // retrying helps. Run the full failover sequence (agree evicts the
  // unreachable component by quorum), then re-drive the request against the
  // shrunken view's re-derived owners. Each escalation evicts at least one
  // rank, so this loop terminates. PartitionedError is *not* caught: on the
  // minority side of a split there is no quorum to serve from, and the
  // request must unwind.
  for (;;) {
    try {
      return execute_once(request);
    } catch (const PeUnreachableError&) {
      recover();
    }
  }
}

ServingOutcome ServingClient::execute_once(const ServingRequest& request) {
  using Kind = ServingRequest::Kind;
  PeContext& ctx = xbrtime_ctx();

  const std::uint64_t start = ctx.clock().cycles();
  const std::uint64_t deadline = start + config_.op_timeout_cycles;
  const int primary = view_.primary(request.key);
  const int replica = config_.replicate && view_.n() > 1
                          ? view_.replica(request.key)
                          : primary;

  ServingOutcome out;
  bool hedged = false;
  bool retried = false;
  int attempts_used = 0;
  int slow_failed_primary = 0;
  const int max_attempts = 1 + config_.max_request_retries;

  const auto serve = [&](int source, std::uint64_t value) {
    out.served = true;
    out.value = value;
    out.attempts = attempts_used;
    out.latency_cycles = ctx.clock().cycles() - start;
    ++counters_.served;
    if (retried) ++counters_.requests_retried;
    if (request.kind == Kind::kGet && source == replica &&
        replica != primary) {
      out.redirected = true;
      ++counters_.redirected;
      ctx.trace().record(EventKind::kServing, source,
                         static_cast<std::uint64_t>(ServingOp::kRedirect),
                         request.key);
    }
    if (request.kind != Kind::kGet) {
      // Served write: suspect until a checkpoint covers it. If the primary
      // dies before then, resolve_suspects replays or fail-fasts it.
      log_.push_back(Suspect{request.kind, request.key,
                             request.value & kPayloadMask});
    }
  };

  for (int att = 0; att < max_attempts; ++att) {
    if (att > 0) {
      // Serving-level retry: charge the exponential backoff to the modeled
      // clock, and stop once the whole-request deadline cannot fit another
      // attempt. (The deadline gates *further* attempts only — an attempt
      // already in flight that completes late is still served; a write that
      // landed cannot be un-acknowledged by a timer.)
      ++counters_.retries;
      retried = true;
      ctx.trace().record(EventKind::kServing, primary,
                         static_cast<std::uint64_t>(ServingOp::kRetry),
                         request.key);
      ctx.clock().advance(
          serving_backoff(config_.retry_backoff_cycles, att));
      if (ctx.clock().cycles() >= deadline) break;
    }
    const int target =
        request.kind == Kind::kGet && hedged ? replica : primary;
    ++attempts_used;
    const std::uint64_t a0 = ctx.clock().cycles();
    std::uint64_t value = 0;
    const bool ok = attempt(request, target, primary, replica, &value);
    const bool slow =
        ctx.clock().cycles() - a0 > config_.attempt_timeout_cycles;
    if (slow) ++counters_.attempt_timeouts;
    if (target == primary && (!ok || slow)) ++slow_failed_primary;

    const bool may_hedge = request.kind == Kind::kGet && !hedged &&
                           replica != primary && config_.hedge_after > 0 &&
                           slow_failed_primary >= config_.hedge_after;
    if (ok && !slow) {
      serve(target, value);
      return out;
    }
    if (ok) {  // slow but complete: tail-latency suspect
      if (may_hedge) {
        // Classic tail hedge: duplicate the read to the replica; serve the
        // hedge if it comes back inside the budget, else fall back to the
        // late-but-valid primary value.
        hedged = true;
        ++counters_.hedges;
        ctx.trace().record(EventKind::kServing, replica,
                           static_cast<std::uint64_t>(ServingOp::kHedge),
                           request.key);
        ++attempts_used;
        const std::uint64_t h0 = ctx.clock().cycles();
        std::uint64_t hedge_value = 0;
        const bool hok =
            attempt(request, replica, primary, replica, &hedge_value);
        const bool hslow =
            ctx.clock().cycles() - h0 > config_.attempt_timeout_cycles;
        if (hslow) ++counters_.attempt_timeouts;
        if (hok && !hslow) {
          serve(replica, hedge_value);
          return out;
        }
      }
      serve(target, value);
      return out;
    }
    // Failed attempt: arm the hedge so the next retry targets the replica.
    if (may_hedge) {
      hedged = true;
      ++counters_.hedges;
      ctx.trace().record(EventKind::kServing, replica,
                         static_cast<std::uint64_t>(ServingOp::kHedge),
                         request.key);
    }
  }

  // Retries exhausted (or deadline passed). Last resort for gets that never
  // touched the replica: one direct replica read before giving up.
  if (request.kind == Kind::kGet && !hedged && replica != primary) {
    hedged = true;
    ++counters_.hedges;
    ctx.trace().record(EventKind::kServing, replica,
                       static_cast<std::uint64_t>(ServingOp::kHedge),
                       request.key);
    ++attempts_used;
    const std::uint64_t f0 = ctx.clock().cycles();
    std::uint64_t value = 0;
    const bool ok = attempt(request, replica, primary, replica, &value);
    if (ctx.clock().cycles() - f0 > config_.attempt_timeout_cycles) {
      ++counters_.attempt_timeouts;
    }
    if (ok) {
      serve(replica, value);
      return out;
    }
  }

  ++counters_.failed;
  if (retried) ++counters_.requests_retried;
  out.served = false;
  out.attempts = attempts_used;
  out.latency_cycles = ctx.clock().cycles() - start;
  ctx.trace().record(EventKind::kServing, primary,
                     static_cast<std::uint64_t>(ServingOp::kFail),
                     request.key);
  return out;
}

bool ServingClient::end_batch() {
  bool failed_over = false;
  for (;;) {
    try {
      if (team_) {
        team_->barrier();
      } else {
        xbrtime_barrier();
      }
      if (++batches_since_ckpt_ >= config_.checkpoint_every) {
        checkpoint_now();
      }
      return failed_over;
    } catch (const PeFailedError&) {
      recover();
      failed_over = true;
    } catch (const PeUnreachableError&) {
      // The periodic checkpoint's snapshot traffic hit a down link: same
      // failover sequence — the quorum evicts the unreachable component.
      recover();
      failed_over = true;
    }
  }
}

void ServingClient::checkpoint_now() {
  if (team_) {
    xbr_checkpoint(*team_);
  } else {
    xbr_checkpoint();
  }
  // Only now is the logged tail durable: clear after the checkpoint
  // returns, so a death mid-checkpoint still replays it.
  log_.clear();
  batches_since_ckpt_ = 0;
}

void ServingClient::recover() {
  PeContext& ctx = xbrtime_ctx();
  ++counters_.failovers;
  ctx.trace().record(EventKind::kServing, -1,
                     static_cast<std::uint64_t>(ServingOp::kFailoverBegin),
                     view_.epoch);
  const ShardView old_view = view_;
  for (;;) {
    try {
      team_ = team_ ? xbr_team_shrink(*team_) : xbr_team_shrink();
      // Fresh survivor commit before restoring: every survivor's own-block
      // restore becomes a no-op (nobody rolls back), and a rank that dies
      // later in this sequence leaves a current snapshot to orphan-deal.
      xbr_checkpoint(*team_);
      const RestoreReport report = xbr_restore(*team_);
      view_.roster = team_->members();
      view_.epoch = team_->epoch();
      store_.rebalance(old_view, view_, report, counters_);
      team_->barrier();
      resolve_suspects(old_view);
      team_->barrier();
      // Commit the re-shard so a back-to-back failure never restores a
      // pre-rebalance snapshot; only then is the suspect log retired.
      xbr_checkpoint(*team_);
      log_.clear();
      batches_since_ckpt_ = 0;
      break;
    } catch (const PeFailedError&) {
      // Another member died mid-recovery: re-enter over the smaller roster.
      // old_view stays the pre-failure view, and the suspect log is still
      // intact, so replay is at-least-once across nested recoveries.
      continue;
    } catch (const PeUnreachableError&) {
      // Mid-recovery traffic (checkpoint, rebalance, replay) died against a
      // down link to a not-yet-evicted member: the suspect is recorded, so
      // re-entering the shrink lets the quorum evict it and move on.
      continue;
    }
  }
  ctx.trace().record(EventKind::kServing, -1,
                     static_cast<std::uint64_t>(ServingOp::kFailoverEnd),
                     view_.epoch);
}

void ServingClient::resolve_suspects(const ShardView& old_view) {
  using Kind = ServingRequest::Kind;
  PeContext& ctx = xbrtime_ctx();
  for (const Suspect& s : log_) {
    const int old_p = old_view.primary(s.key);
    const int old_r = config_.replicate && old_view.n() > 1
                          ? old_view.replica(s.key)
                          : old_p;
    // The write survives if either old owner is still live: rebalance
    // sourced the key from the surviving primary (authoritative) or from
    // the replica's write-through copy. It is lost only when both died —
    // then the new owners hold the orphaned *checkpoint*, which predates
    // this suspect window.
    const bool lost = !view_.alive(old_p) &&
                      (old_r == old_p || !view_.alive(old_r));
    if (!lost) continue;
    if (config_.policy == InflightPolicy::kReplay) {
      const int new_p = view_.primary(s.key);
      const int new_r = config_.replicate && view_.n() > 1
                            ? view_.replica(s.key)
                            : new_p;
      try {
        if (s.kind == Kind::kPut) {
          const std::uint64_t v = KvStore::tag(s.key) | s.value;
          store_.store_value(s.key, v, new_p);
          if (new_r != new_p) store_.store_value(s.key, v, new_r);
        } else {
          // Incr replay re-applies the delta (at-least-once: a nested death
          // mid-replay can apply it twice; accounting stays exact and the
          // tag is untouched — documented in docs/SERVING.md).
          store_.add_value(s.key, s.value, new_p);
          if (new_r != new_p) store_.add_value(s.key, s.value, new_r);
        }
        ++counters_.replayed;
        ctx.trace().record(EventKind::kServing, new_p,
                           static_cast<std::uint64_t>(ServingOp::kReplay),
                           s.key);
      } catch (const PeUnreachableError&) {
        // The new owner is itself behind a dead link: abandon this replay
        // pass and re-enter recovery; the log survives, so replay stays
        // at-least-once across the nested escalation.
        throw;
      } catch (const RmaRetriesExhaustedError&) {
        // Replay itself hit transport faults past the retry budget: the
        // write cannot be re-established, so withdraw the acknowledgment —
        // the failfast path, taken per-suspect. Never silently dropped.
        --counters_.served;
        ++counters_.failed;
        ++counters_.failed_fast;
        ctx.trace().record(EventKind::kServing, new_p,
                           static_cast<std::uint64_t>(ServingOp::kFail),
                           s.key);
      }
    } else {
      --counters_.served;
      ++counters_.failed;
      ++counters_.failed_fast;
      ctx.trace().record(EventKind::kServing, -1,
                         static_cast<std::uint64_t>(ServingOp::kFail),
                         s.key);
    }
  }
}

void ServingClient::finish() {
  if (finished_) return;
  finished_ = true;
  serving_counters_accumulate(counters_);
}

}  // namespace xbgas
