#pragma once

// ServingCounters — the request-accounting ledger (docs/SERVING.md).
//
// The central invariant: requests == served + failed, exactly, on every
// surviving client. Retries, hedges, redirects, replays, and failfast
// conversions all preserve it — a request changes *how* it is accounted,
// never whether. The chaos bench asserts books_balance() per survivor and
// in aggregate after every seeded kill.
//
// Each ServingClient keeps a plain (single-fiber) instance; finish() folds
// it into a process-wide atomic block that emit_observability publishes as
// serving.* counter rows, mirroring how collective dispatch counts flow.

#include <cstdint>

namespace xbgas {

struct ServingCounters {
  // Demand.
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t incrs = 0;

  // Outcomes (requests == served + failed).
  std::uint64_t served = 0;
  std::uint64_t failed = 0;

  // Pipeline mechanics.
  std::uint64_t retries = 0;           ///< serving-level retry attempts
  std::uint64_t requests_retried = 0;  ///< distinct requests that retried
  std::uint64_t attempt_timeouts = 0;  ///< attempts slower than the budget
  std::uint64_t hedges = 0;            ///< gets duplicated to the replica
  std::uint64_t redirected = 0;        ///< served from the replica
  std::uint64_t replica_skips = 0;     ///< put replica copies abandoned

  // Failover.
  std::uint64_t failovers = 0;         ///< recover() entries on this client
  std::uint64_t replayed = 0;          ///< suspect writes re-applied
  std::uint64_t failed_fast = 0;       ///< suspect writes re-accounted failed
  std::uint64_t rebalanced_keys = 0;   ///< re-shard pushes issued by this PE
  std::uint64_t hot_folds = 0;         ///< orphan hot stripes folded

  void add(const ServingCounters& other);
  bool books_balance() const { return requests == served + failed; }
};

/// Fold a client's ledger into the process-wide block (ServingClient::finish
/// calls this once per surviving PE).
void serving_counters_accumulate(const ServingCounters& c);

/// Snapshot of the process-wide block (emit_observability, tests).
ServingCounters serving_counters_snapshot();

/// Zero the process-wide block (between Machine runs in one process).
void serving_counters_reset();

}  // namespace xbgas
