#include "serving/counters.hpp"

#include <atomic>

namespace xbgas {

void ServingCounters::add(const ServingCounters& other) {
  requests += other.requests;
  gets += other.gets;
  puts += other.puts;
  incrs += other.incrs;
  served += other.served;
  failed += other.failed;
  retries += other.retries;
  requests_retried += other.requests_retried;
  attempt_timeouts += other.attempt_timeouts;
  hedges += other.hedges;
  redirected += other.redirected;
  replica_skips += other.replica_skips;
  failovers += other.failovers;
  replayed += other.replayed;
  failed_fast += other.failed_fast;
  rebalanced_keys += other.rebalanced_keys;
  hot_folds += other.hot_folds;
}

namespace {

// Process-wide ledger, one atomic per field. PE fibers run on multiple
// workers, so finish() calls may race; relaxed adds suffice — readers only
// run after Machine::run returns (or tolerate a torn-in-time view).
struct GlobalLedger {
  std::atomic<std::uint64_t> requests{0}, gets{0}, puts{0}, incrs{0};
  std::atomic<std::uint64_t> served{0}, failed{0};
  std::atomic<std::uint64_t> retries{0}, requests_retried{0};
  std::atomic<std::uint64_t> attempt_timeouts{0}, hedges{0}, redirected{0};
  std::atomic<std::uint64_t> replica_skips{0};
  std::atomic<std::uint64_t> failovers{0}, replayed{0}, failed_fast{0};
  std::atomic<std::uint64_t> rebalanced_keys{0}, hot_folds{0};
};

GlobalLedger& ledger() {
  static GlobalLedger g;
  return g;
}

}  // namespace

void serving_counters_accumulate(const ServingCounters& c) {
  GlobalLedger& g = ledger();
  g.requests.fetch_add(c.requests, std::memory_order_relaxed);
  g.gets.fetch_add(c.gets, std::memory_order_relaxed);
  g.puts.fetch_add(c.puts, std::memory_order_relaxed);
  g.incrs.fetch_add(c.incrs, std::memory_order_relaxed);
  g.served.fetch_add(c.served, std::memory_order_relaxed);
  g.failed.fetch_add(c.failed, std::memory_order_relaxed);
  g.retries.fetch_add(c.retries, std::memory_order_relaxed);
  g.requests_retried.fetch_add(c.requests_retried, std::memory_order_relaxed);
  g.attempt_timeouts.fetch_add(c.attempt_timeouts, std::memory_order_relaxed);
  g.hedges.fetch_add(c.hedges, std::memory_order_relaxed);
  g.redirected.fetch_add(c.redirected, std::memory_order_relaxed);
  g.replica_skips.fetch_add(c.replica_skips, std::memory_order_relaxed);
  g.failovers.fetch_add(c.failovers, std::memory_order_relaxed);
  g.replayed.fetch_add(c.replayed, std::memory_order_relaxed);
  g.failed_fast.fetch_add(c.failed_fast, std::memory_order_relaxed);
  g.rebalanced_keys.fetch_add(c.rebalanced_keys, std::memory_order_relaxed);
  g.hot_folds.fetch_add(c.hot_folds, std::memory_order_relaxed);
}

ServingCounters serving_counters_snapshot() {
  GlobalLedger& g = ledger();
  ServingCounters c;
  c.requests = g.requests.load(std::memory_order_relaxed);
  c.gets = g.gets.load(std::memory_order_relaxed);
  c.puts = g.puts.load(std::memory_order_relaxed);
  c.incrs = g.incrs.load(std::memory_order_relaxed);
  c.served = g.served.load(std::memory_order_relaxed);
  c.failed = g.failed.load(std::memory_order_relaxed);
  c.retries = g.retries.load(std::memory_order_relaxed);
  c.requests_retried = g.requests_retried.load(std::memory_order_relaxed);
  c.attempt_timeouts = g.attempt_timeouts.load(std::memory_order_relaxed);
  c.hedges = g.hedges.load(std::memory_order_relaxed);
  c.redirected = g.redirected.load(std::memory_order_relaxed);
  c.replica_skips = g.replica_skips.load(std::memory_order_relaxed);
  c.failovers = g.failovers.load(std::memory_order_relaxed);
  c.replayed = g.replayed.load(std::memory_order_relaxed);
  c.failed_fast = g.failed_fast.load(std::memory_order_relaxed);
  c.rebalanced_keys = g.rebalanced_keys.load(std::memory_order_relaxed);
  c.hot_folds = g.hot_folds.load(std::memory_order_relaxed);
  return c;
}

void serving_counters_reset() {
  GlobalLedger& g = ledger();
  g.requests.store(0, std::memory_order_relaxed);
  g.gets.store(0, std::memory_order_relaxed);
  g.puts.store(0, std::memory_order_relaxed);
  g.incrs.store(0, std::memory_order_relaxed);
  g.served.store(0, std::memory_order_relaxed);
  g.failed.store(0, std::memory_order_relaxed);
  g.retries.store(0, std::memory_order_relaxed);
  g.requests_retried.store(0, std::memory_order_relaxed);
  g.attempt_timeouts.store(0, std::memory_order_relaxed);
  g.hedges.store(0, std::memory_order_relaxed);
  g.redirected.store(0, std::memory_order_relaxed);
  g.replica_skips.store(0, std::memory_order_relaxed);
  g.failovers.store(0, std::memory_order_relaxed);
  g.replayed.store(0, std::memory_order_relaxed);
  g.failed_fast.store(0, std::memory_order_relaxed);
  g.rebalanced_keys.store(0, std::memory_order_relaxed);
  g.hot_folds.store(0, std::memory_order_relaxed);
}

}  // namespace xbgas
