#pragma once

// KvStore / ShardView — the sharded KV table on the symmetric heap
// (docs/SERVING.md).
//
// Every PE symmetric-allocates one 64-bit slot per key plus a small array of
// hot-counter stripes. A key's *primary* under a live roster is
// roster[key % n]; its *replica* (when enabled) is the next roster member.
// Only the owner slots are authoritative — a non-owner's slot for the same
// key is dormant until a failover re-homes the key onto it.
//
// Values are self-verifying: key in the high 40 bits (the tag), payload in
// the low 24. A get whose tag does not match its key is treated as a failed
// attempt by the client, so any routing or re-shard bug surfaces as a
// request failure instead of silent wrong data.
//
// All remote traffic uses the word-atomic RMA entry points (xbr_put_atomic /
// xbr_get_atomic) and AMOs, so concurrent serving from many PEs is race-free
// under both ThreadSanitizer and XbrSan full mode.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serving/config.hpp"
#include "xbrtime/nbi.hpp"

namespace xbgas {

struct RestoreReport;
struct ServingCounters;

/// Who owns what: the live world ranks (ascending) and the team epoch the
/// roster was agreed at. Epoch 0 is the initial world roster.
struct ShardView {
  std::vector<int> roster;
  std::uint64_t epoch = 0;

  int n() const { return static_cast<int>(roster.size()); }
  int primary(std::size_t key) const {
    return roster[key % roster.size()];
  }
  /// Next live member after the primary (== primary when the roster has one
  /// member; callers treat that as "no replica").
  int replica(std::size_t key) const {
    return roster[(key % roster.size() + 1) % roster.size()];
  }
  /// True iff `world_rank` is on the roster (roster is sorted).
  bool alive(int world_rank) const;
};

/// Initial view over an n-PE world.
ShardView world_shard_view(int n_pes);

class KvStore {
 public:
  /// Collective over the world: symmetric-allocate the value table and hot
  /// stripes, write the initial tagged values, and barrier. Throws
  /// ServingConfigError on a bad config and Error on heap exhaustion.
  explicit KvStore(const ServingConfig& config);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Initial / tag portion of a key's value: key << 24, payload bits zero.
  static std::uint64_t tag(std::size_t key) {
    return static_cast<std::uint64_t>(key) << 24;
  }
  static bool tag_matches(std::size_t key, std::uint64_t value) {
    return (value >> 24) == static_cast<std::uint64_t>(key);
  }

  const ServingConfig& config() const { return config_; }
  std::size_t n_keys() const { return config_.n_keys; }

  // -- Remote data plane (may throw RmaRetriesExhaustedError) --
  /// Atomic read of `key`'s slot on `pe`.
  std::uint64_t load(std::size_t key, int pe) const;
  /// Request-tracked atomic read of `key`'s slot on `pe`: the tagged value
  /// lands in `*out` host-side immediately; the modeled latency completes at
  /// xbr_wait_req / xbr_test on the returned handle. Several loads may be in
  /// flight at once — this is what the client's hedged gets ride on.
  XbrRequest load_nbi(std::size_t key, int pe, std::uint64_t* out) const;
  /// Atomic overwrite of `key`'s slot on `pe`.
  void store_value(std::size_t key, std::uint64_t value, int pe);
  /// Atomic add into `key`'s slot on `pe`; returns the pre-add value.
  std::uint64_t add_value(std::size_t key, std::uint64_t delta, int pe);
  /// AMO-bump the hot stripe for `key` on `pe` (request telemetry).
  void bump_hot(std::size_t key, int pe);

  // -- Local introspection (tests, verification) --
  std::uint64_t local_value(std::size_t key) const;
  /// Sum of this PE's hot stripes.
  std::uint64_t hot_sum() const;

  /// Re-shard after a failover: push every key whose ownership moved from
  /// the authoritative source (surviving old primary, else the replica's
  /// write-through copy, else the orphaned checkpoint shard `report` handed
  /// to this PE) onto its new primary and replica, and fold dead ranks' hot
  /// stripes into the survivors' telemetry. Each key has exactly one source
  /// PE, so pushes never conflict; callers barrier around this (the client's
  /// recover() does). Counts into `counters`.
  void rebalance(const ShardView& old_view, const ShardView& new_view,
                 const RestoreReport& report, ServingCounters& counters);

  /// Collective release of both allocations (clean-shutdown paths only —
  /// after a death, survivors leave the heap to the leak report like the
  /// chaos benches do).
  void release();

 private:
  std::uint64_t* value_slot(std::size_t key) const;

  ServingConfig config_;
  std::uint64_t* values_ = nullptr;  ///< symmetric, n_keys slots
  std::uint64_t* hot_ = nullptr;     ///< symmetric, hot_stripes counters
  std::size_t values_offset_ = 0;    ///< shared-segment offset of values_
  std::size_t hot_offset_ = 0;       ///< shared-segment offset of hot_
};

}  // namespace xbgas
