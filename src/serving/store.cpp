#include "serving/store.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>

#include "collectives/checkpoint.hpp"
#include "common/error.hpp"
#include "fault/errors.hpp"
#include "serving/counters.hpp"
#include "trace/event.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {

bool ShardView::alive(int world_rank) const {
  return std::binary_search(roster.begin(), roster.end(), world_rank);
}

ShardView world_shard_view(int n_pes) {
  ShardView view;
  view.roster.resize(static_cast<std::size_t>(n_pes));
  for (int r = 0; r < n_pes; ++r) view.roster[static_cast<std::size_t>(r)] = r;
  view.epoch = 0;
  return view;
}

KvStore::KvStore(const ServingConfig& config) : config_(config) {
  validate_serving_config(config_);
  values_ = static_cast<std::uint64_t*>(
      xbrtime_malloc(config_.n_keys * sizeof(std::uint64_t)));
  if (values_ == nullptr) {
    throw Error("KvStore: symmetric heap exhausted allocating the value "
                "table (" +
                std::to_string(config_.n_keys) + " keys)");
  }
  hot_ = static_cast<std::uint64_t*>(
      xbrtime_malloc(config_.hot_stripes * sizeof(std::uint64_t)));
  if (hot_ == nullptr) {
    xbrtime_free(values_);
    throw Error("KvStore: symmetric heap exhausted allocating hot stripes");
  }
  PeContext& ctx = xbrtime_ctx();
  values_offset_ = ctx.arena().shared_offset_of(values_);
  hot_offset_ = ctx.arena().shared_offset_of(hot_);
  for (std::size_t k = 0; k < config_.n_keys; ++k) values_[k] = tag(k);
  for (std::size_t s = 0; s < config_.hot_stripes; ++s) hot_[s] = 0;
  xbrtime_barrier();
}

std::uint64_t* KvStore::value_slot(std::size_t key) const {
  XBGAS_CHECK(key < config_.n_keys,
              "KvStore: key " + std::to_string(key) + " out of range");
  return values_ + key;
}

std::uint64_t KvStore::load(std::size_t key, int pe) const {
  std::uint64_t value = 0;
  xbr_get_atomic(&value, value_slot(key), 1, 1, pe);
  return value;
}

XbrRequest KvStore::load_nbi(std::size_t key, int pe,
                             std::uint64_t* out) const {
  *out = 0;
  return xbr_get_atomic_nbi(out, value_slot(key), 1, 1, pe);
}

void KvStore::store_value(std::size_t key, std::uint64_t value, int pe) {
  xbr_put_atomic(value_slot(key), &value, 1, 1, pe);
}

std::uint64_t KvStore::add_value(std::size_t key, std::uint64_t delta,
                                 int pe) {
  return xbr_amo_add(value_slot(key), delta, pe);
}

void KvStore::bump_hot(std::size_t key, int pe) {
  xbr_amo_add(hot_ + key % config_.hot_stripes, std::uint64_t{1}, pe);
}

std::uint64_t KvStore::local_value(std::size_t key) const {
  return std::atomic_ref<std::uint64_t>(*value_slot(key))
      .load(std::memory_order_relaxed);
}

std::uint64_t KvStore::hot_sum() const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < config_.hot_stripes; ++s) {
    sum += std::atomic_ref<std::uint64_t>(hot_[s])
               .load(std::memory_order_relaxed);
  }
  return sum;
}

void KvStore::rebalance(const ShardView& old_view, const ShardView& new_view,
                        const RestoreReport& report,
                        ServingCounters& counters) {
  PeContext& ctx = xbrtime_ctx();
  const int me = ctx.rank();

  // Which dead ranks' orphaned snapshots landed on this PE. xbr_restore
  // deals whole allocation blocks; ours are identified by their symmetric
  // offsets, which every PE shares by construction.
  std::map<int, const OrphanShard*> orphan_values;
  std::map<int, const OrphanShard*> orphan_hot;
  for (const OrphanShard& shard : report.orphans) {
    if (shard.offset == values_offset_ &&
        shard.data.size() == config_.n_keys * sizeof(std::uint64_t)) {
      orphan_values[shard.world_rank] = &shard;
    } else if (shard.offset == hot_offset_ &&
               shard.data.size() ==
                   config_.hot_stripes * sizeof(std::uint64_t)) {
      orphan_hot[shard.world_rank] = &shard;
    }
  }

  // Re-shard pushes run under the same injected transport faults as
  // serving traffic, but unlike a request they have no client retry loop
  // above them — an uncaught RmaRetriesExhaustedError here would abort the
  // whole recovery. Re-drive each push a few times; with machine-level
  // retries underneath, the residual failure probability is negligible, and
  // a genuinely unpushable key still fails loudly rather than leaving a
  // silently stale shard.
  const auto push_retrying = [this](std::size_t key, std::uint64_t value,
                                    int pe) {
    for (int tries = 0;; ++tries) {
      try {
        store_value(key, value, pe);
        return;
      } catch (const RmaRetriesExhaustedError&) {
        if (tries >= 8) throw;
      }
    }
  };

  std::uint64_t pushes = 0;
  const bool replicated = config_.replicate;
  for (std::size_t k = 0; k < config_.n_keys; ++k) {
    const int old_p = old_view.primary(k);
    const int old_r =
        replicated && old_view.n() > 1 ? old_view.replica(k) : old_p;
    // Authoritative source under the new roster: the old primary if it
    // survived, else the replica's write-through copy, else the holder of
    // the old primary's orphaned checkpoint (stale by up to one suspect-log
    // window; the client replays the logged tail on top).
    std::uint64_t value = 0;
    int src = -1;
    if (new_view.alive(old_p)) {
      src = old_p;
    } else if (old_r != old_p && new_view.alive(old_r)) {
      src = old_r;
    }
    if (src >= 0) {
      if (src != me) continue;
      value = std::atomic_ref<std::uint64_t>(values_[k])
                  .load(std::memory_order_relaxed);
    } else {
      auto it = orphan_values.find(old_p);
      if (it == orphan_values.end()) continue;  // not dealt to this PE
      std::memcpy(&value,
                  it->second->data.data() + k * sizeof(std::uint64_t),
                  sizeof(std::uint64_t));
    }
    // Push onto the new owners. Exactly one PE sources each key, so these
    // atomic stores never conflict; a push to self takes the local path.
    const int new_p = new_view.primary(k);
    const int new_r =
        replicated && new_view.n() > 1 ? new_view.replica(k) : new_p;
    push_retrying(k, value, new_p);
    ++pushes;
    if (new_r != new_p) {
      push_retrying(k, value, new_r);
      ++pushes;
    }
  }
  counters.rebalanced_keys += pushes;

  // Fold dead ranks' hot-stripe telemetry into the survivors so aggregate
  // load statistics survive the failover. Stripe j of each orphan goes to
  // new roster member j % n — pure arithmetic, so only this holder writes
  // it and every run places it identically. (Under back-to-back failures a
  // stripe folded into a rank that then dies before its next checkpoint is
  // lost — hot counters are telemetry, documented as approximate; request
  // accounting never routes through them.)
  for (const auto& [dead_rank, shard] : orphan_hot) {
    (void)dead_rank;
    for (std::size_t j = 0; j < config_.hot_stripes; ++j) {
      std::uint64_t v = 0;
      std::memcpy(&v, shard->data.data() + j * sizeof(std::uint64_t),
                  sizeof(std::uint64_t));
      if (v == 0) continue;
      const int target =
          new_view.roster[j % static_cast<std::size_t>(new_view.n())];
      for (int tries = 0;; ++tries) {
        try {
          xbr_amo_add(hot_ + j, v, target);
          break;
        } catch (const RmaRetriesExhaustedError&) {
          if (tries >= 8) throw;
        }
      }
      ++counters.hot_folds;
    }
  }

  ctx.trace().record(EventKind::kServing, /*target_pe=*/-1,
                     static_cast<std::uint64_t>(ServingOp::kRebalance),
                     pushes);
}

void KvStore::release() {
  xbrtime_free(hot_);
  xbrtime_free(values_);
  values_ = nullptr;
  hot_ = nullptr;
}

}  // namespace xbgas
