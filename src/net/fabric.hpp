#pragma once

// NetworkModel — first-order cost model for xBGAS remote transactions.
//
// Two mechanisms, both deterministic:
//
//  1. Per-operation latency, charged to the issuing PE's SimClock:
//       put:  OLB lookup + injection + hops x per_hop + bytes/link_bw + mem
//       get:  the same plus the return traversal (request/response)
//     This reflects xBGAS's pitch (§3.1): user-space remote load/store with
//     no kernel crossing, socket setup, or handshaking — so these costs are
//     small constants, not protocol stacks.
//
//  2. Shared-fabric serialization, accounted per *phase* (the interval
//     between runtime barriers). Every remote transaction also deposits its
//     bytes into a phase accumulator; when a barrier reconciles clocks, the
//     phase may not end before phase_anchor + phase_bytes/fabric_bw. This is
//     what produces the aggregate-bandwidth saturation that bends the
//     per-PE curves downward at 8 PEs in Figures 4 and 5.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "fault/config.hpp"
#include "net/topology.hpp"

namespace xbgas {

/// Instantaneous health of the pair path between two PEs (LinkFaults).
enum class LinkStatus : std::uint8_t {
  kUp,        ///< healthy: normal cost, transfers land
  kDown,      ///< scripted down: every transfer across it is dropped
  kDegraded,  ///< scripted degraded: transfers land but pay extra cycles
};

/// Scripted persistent link/partition faults (FaultConfig::links/partitions),
/// evaluated against the *issuing PE's modeled clock* — never host time — so
/// fault placement is bit-identical across runs and thread schedules.
///
/// Activation is sticky and global: the first consult that observes a spec
/// past its activation (heal) cycle atomically claims the transition, bumps
/// the version counter, and fires the down (heal) callback once per affected
/// pair. The Machine wires those callbacks into RecoveryState so the quorum
/// rule of xbr_agree sees the same reachability graph the transport does.
class LinkFaults {
 public:
  /// Callback invoked once per (a, b) pair, a < b, when a down-mode spec
  /// activates or heals. May be invoked from any PE's context; must be
  /// thread-safe and must not call back into LinkFaults.
  using PairCallback = std::function<void(int a, int b)>;

  /// Install the scripted plan. Called once, before any PE runs.
  void configure(const FaultConfig& config, int n_pes);

  /// True when no link/partition fault is scripted (the transport's fast
  /// path consults this before anything else).
  bool empty() const { return links_.empty() && partitions_.empty(); }

  /// Health of the pair path (src, dst) at modeled cycle `now` of the
  /// consulting PE. Down takes precedence over degraded when specs overlap.
  /// Also performs sticky activation/heal bookkeeping (callbacks, version).
  LinkStatus status(int src_pe, int dst_pe, std::uint64_t now);

  /// Monotone counter bumped on every activation/heal transition; policy
  /// caches key on it to rebuild their reachability view when it changes.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  void set_down_callback(PairCallback cb) { down_cb_ = std::move(cb); }
  void set_heal_callback(PairCallback cb) { heal_cb_ = std::move(cb); }

  /// Pairs (a < b) whose direct path is down right now, according to the
  /// transitions observed so far. Cold path (policy rebuilds).
  std::vector<std::pair<int, int>> down_pairs() const;

  // -- Observation counters (collect_counters: net.link.*) --
  std::uint64_t down_observed() const {
    return down_observed_.load(std::memory_order_relaxed);
  }
  std::uint64_t degraded_observed() const {
    return degraded_observed_.load(std::memory_order_relaxed);
  }
  std::uint64_t heals() const {
    return heals_.load(std::memory_order_relaxed);
  }

  double degraded_beta_factor() const { return degraded_beta_factor_; }
  std::uint64_t degraded_alpha_cycles() const { return degraded_alpha_cycles_; }

 private:
  struct LinkEntry {
    LinkSpec spec;  // normalized a < b
    std::atomic<bool> activated{false};
    std::atomic<bool> healed{false};
  };
  struct PartitionEntry {
    PartitionSpec spec;
    std::atomic<bool> activated{false};
    std::atomic<bool> healed{false};
  };

  static bool window_active(std::uint64_t at, std::uint64_t heal_at,
                            std::uint64_t now) {
    return now >= at && (heal_at == 0 || now < heal_at);
  }
  bool partition_covers(const PartitionSpec& p, int a, int b) const {
    const bool a_in = a >= p.lo && a <= p.hi;
    const bool b_in = b >= p.lo && b <= p.hi;
    return a_in != b_in;
  }
  void fire_link(LinkEntry& e, std::uint64_t now);
  void fire_partition(PartitionEntry& e, std::uint64_t now);

  int n_pes_ = 0;
  double degraded_beta_factor_ = 4.0;
  std::uint64_t degraded_alpha_cycles_ = 0;
  std::vector<std::unique_ptr<LinkEntry>> links_;
  std::vector<std::unique_ptr<PartitionEntry>> partitions_;
  PairCallback down_cb_;
  PairCallback heal_cb_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> down_observed_{0};
  std::atomic<std::uint64_t> degraded_observed_{0};
  std::atomic<std::uint64_t> heals_{0};
};

/// Modeled barrier algorithm (ablation A4). The thread rendezvous is always
/// the same; this selects the *cost model* for the message exchange the
/// hardware barrier would perform.
enum class BarrierAlgorithm {
  kDissemination,  ///< ceil(log2 n) rounds, all PEs active (default)
  kCentral,        ///< gather-to-root + release: 2(n-1) serialized messages
  kTournament,     ///< log2 n up the tree + log2 n release
};

struct NetCostParams {
  std::uint64_t olb_lookup_cycles = 2;    ///< OLB translation
  std::uint64_t injection_cycles = 10;    ///< endpoint overhead per message
  std::uint64_t per_hop_cycles = 5;       ///< per link traversal
  double link_bytes_per_cycle = 8.0;      ///< per-message serialization
  double fabric_bytes_per_cycle = 4.0;    ///< aggregate byte bandwidth
  /// Aggregate per-message processing cost: the fabric is message-RATE
  /// limited as well as byte limited. Fine-grained traffic (GUPs' 8-byte
  /// AMOs) saturates on this term; bulk traffic (IS' key exchange)
  /// saturates on bytes.
  std::uint64_t fabric_message_cycles = 30;
  std::uint64_t remote_mem_cycles = 30;   ///< memory access at the target PE
  std::size_t message_header_bytes = 32;  ///< per-message protocol overhead

  // Endpoint issue costs for multi-element RMA (paper §3.3: the runtime's
  // underlying assembly unrolls its remote load/store loop once nelems
  // exceeds a threshold, cutting per-element loop overhead).
  std::uint64_t issue_per_element_cycles = 4;
  std::uint64_t issue_per_element_cycles_unrolled = 1;
  std::size_t unroll_threshold = 8;

  BarrierAlgorithm barrier_algorithm = BarrierAlgorithm::kDissemination;

  /// Cycles for one barrier over n participants: a dissemination-style
  /// O(ceil(log2 n)) exchange of zero-payload messages.
  std::uint64_t barrier_cycles(int n_participants) const;
};

struct NetTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hops = 0;          ///< sum of topology hop counts per message
  std::uint64_t phases = 0;        ///< barriers reconciled (phase count)
  std::uint64_t stall_cycles = 0;  ///< cycles phases ended late because the
                                   ///< shared fabric was still serializing
};

class NetworkModel {
 public:
  NetworkModel(std::unique_ptr<Topology> topology, const NetCostParams& params);

  const Topology& topology() const { return *topology_; }
  const NetCostParams& params() const { return params_; }

  /// Latency charged to the issuing PE for a one-way put of `bytes`.
  std::uint64_t put_cost(int src_pe, int dst_pe, std::size_t bytes) const;

  /// Latency charged to the issuing PE for a round-trip get of `bytes`.
  std::uint64_t get_cost(int src_pe, int dst_pe, std::size_t bytes) const;

  /// Record one remote transaction for phase + lifetime accounting.
  /// Thread-safe; commutative, so deterministic under any interleaving.
  /// Passing the endpoints also accumulates the message's topology hop
  /// count into the lifetime totals (src == dst records zero hops).
  void record(bool is_put, std::size_t bytes, int src_pe = 0, int dst_pe = 0);

  /// Phase reconciliation — called by exactly one PE while all participants
  /// are parked inside the barrier rendezvous. `max_participant_cycles` is
  /// the max SimClock over participants. Returns the post-barrier clock
  /// value every participant must adopt, then starts the next phase.
  std::uint64_t reconcile_phase(std::uint64_t max_participant_cycles,
                                int n_participants);

  /// Lifetime traffic totals (not reset by phases).
  NetTotals totals() const;

  /// Bytes recorded in the current (open) phase.
  std::uint64_t phase_bytes() const {
    return phase_bytes_.load(std::memory_order_relaxed);
  }

  void reset_totals();

  /// Drop any recorded-but-unreconciled phase traffic and restart phase
  /// accounting at clock 0 (between benchmark repetitions).
  void reset_phase();

  /// Install the scripted link/partition fault plan (Machine construction).
  void configure_link_faults(const FaultConfig& config, int n_pes) {
    link_faults_.configure(config, n_pes);
  }

  /// Scripted link/partition fault state (LinkFaults::empty() when none).
  LinkFaults& link_faults() { return link_faults_; }
  const LinkFaults& link_faults() const { return link_faults_; }

  /// Extra cycles one attempt across a *degraded* link pays: the
  /// serialization term re-charged at the degraded beta factor, plus the
  /// configured degraded alpha.
  std::uint64_t degraded_penalty_cycles(std::size_t bytes) const;

 private:
  std::unique_ptr<Topology> topology_;
  NetCostParams params_;

  std::atomic<std::uint64_t> phase_bytes_{0};
  std::atomic<std::uint64_t> phase_messages_{0};
  std::uint64_t phase_anchor_ = 0;  // clock value when the phase opened

  std::atomic<std::uint64_t> total_messages_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> total_puts_{0};
  std::atomic<std::uint64_t> total_gets_{0};
  std::atomic<std::uint64_t> total_hops_{0};
  std::atomic<std::uint64_t> total_phases_{0};
  std::atomic<std::uint64_t> total_stall_cycles_{0};

  LinkFaults link_faults_;
};

}  // namespace xbgas
