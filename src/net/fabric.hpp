#pragma once

// NetworkModel — first-order cost model for xBGAS remote transactions.
//
// Two mechanisms, both deterministic:
//
//  1. Per-operation latency, charged to the issuing PE's SimClock:
//       put:  OLB lookup + injection + hops x per_hop + bytes/link_bw + mem
//       get:  the same plus the return traversal (request/response)
//     This reflects xBGAS's pitch (§3.1): user-space remote load/store with
//     no kernel crossing, socket setup, or handshaking — so these costs are
//     small constants, not protocol stacks.
//
//  2. Shared-fabric serialization, accounted per *phase* (the interval
//     between runtime barriers). Every remote transaction also deposits its
//     bytes into a phase accumulator; when a barrier reconciles clocks, the
//     phase may not end before phase_anchor + phase_bytes/fabric_bw. This is
//     what produces the aggregate-bandwidth saturation that bends the
//     per-PE curves downward at 8 PEs in Figures 4 and 5.

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/topology.hpp"

namespace xbgas {

/// Modeled barrier algorithm (ablation A4). The thread rendezvous is always
/// the same; this selects the *cost model* for the message exchange the
/// hardware barrier would perform.
enum class BarrierAlgorithm {
  kDissemination,  ///< ceil(log2 n) rounds, all PEs active (default)
  kCentral,        ///< gather-to-root + release: 2(n-1) serialized messages
  kTournament,     ///< log2 n up the tree + log2 n release
};

struct NetCostParams {
  std::uint64_t olb_lookup_cycles = 2;    ///< OLB translation
  std::uint64_t injection_cycles = 10;    ///< endpoint overhead per message
  std::uint64_t per_hop_cycles = 5;       ///< per link traversal
  double link_bytes_per_cycle = 8.0;      ///< per-message serialization
  double fabric_bytes_per_cycle = 4.0;    ///< aggregate byte bandwidth
  /// Aggregate per-message processing cost: the fabric is message-RATE
  /// limited as well as byte limited. Fine-grained traffic (GUPs' 8-byte
  /// AMOs) saturates on this term; bulk traffic (IS' key exchange)
  /// saturates on bytes.
  std::uint64_t fabric_message_cycles = 30;
  std::uint64_t remote_mem_cycles = 30;   ///< memory access at the target PE
  std::size_t message_header_bytes = 32;  ///< per-message protocol overhead

  // Endpoint issue costs for multi-element RMA (paper §3.3: the runtime's
  // underlying assembly unrolls its remote load/store loop once nelems
  // exceeds a threshold, cutting per-element loop overhead).
  std::uint64_t issue_per_element_cycles = 4;
  std::uint64_t issue_per_element_cycles_unrolled = 1;
  std::size_t unroll_threshold = 8;

  BarrierAlgorithm barrier_algorithm = BarrierAlgorithm::kDissemination;

  /// Cycles for one barrier over n participants: a dissemination-style
  /// O(ceil(log2 n)) exchange of zero-payload messages.
  std::uint64_t barrier_cycles(int n_participants) const;
};

struct NetTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hops = 0;          ///< sum of topology hop counts per message
  std::uint64_t phases = 0;        ///< barriers reconciled (phase count)
  std::uint64_t stall_cycles = 0;  ///< cycles phases ended late because the
                                   ///< shared fabric was still serializing
};

class NetworkModel {
 public:
  NetworkModel(std::unique_ptr<Topology> topology, const NetCostParams& params);

  const Topology& topology() const { return *topology_; }
  const NetCostParams& params() const { return params_; }

  /// Latency charged to the issuing PE for a one-way put of `bytes`.
  std::uint64_t put_cost(int src_pe, int dst_pe, std::size_t bytes) const;

  /// Latency charged to the issuing PE for a round-trip get of `bytes`.
  std::uint64_t get_cost(int src_pe, int dst_pe, std::size_t bytes) const;

  /// Record one remote transaction for phase + lifetime accounting.
  /// Thread-safe; commutative, so deterministic under any interleaving.
  /// Passing the endpoints also accumulates the message's topology hop
  /// count into the lifetime totals (src == dst records zero hops).
  void record(bool is_put, std::size_t bytes, int src_pe = 0, int dst_pe = 0);

  /// Phase reconciliation — called by exactly one PE while all participants
  /// are parked inside the barrier rendezvous. `max_participant_cycles` is
  /// the max SimClock over participants. Returns the post-barrier clock
  /// value every participant must adopt, then starts the next phase.
  std::uint64_t reconcile_phase(std::uint64_t max_participant_cycles,
                                int n_participants);

  /// Lifetime traffic totals (not reset by phases).
  NetTotals totals() const;

  /// Bytes recorded in the current (open) phase.
  std::uint64_t phase_bytes() const {
    return phase_bytes_.load(std::memory_order_relaxed);
  }

  void reset_totals();

  /// Drop any recorded-but-unreconciled phase traffic and restart phase
  /// accounting at clock 0 (between benchmark repetitions).
  void reset_phase();

 private:
  std::unique_ptr<Topology> topology_;
  NetCostParams params_;

  std::atomic<std::uint64_t> phase_bytes_{0};
  std::atomic<std::uint64_t> phase_messages_{0};
  std::uint64_t phase_anchor_ = 0;  // clock value when the phase opened

  std::atomic<std::uint64_t> total_messages_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> total_puts_{0};
  std::atomic<std::uint64_t> total_gets_{0};
  std::atomic<std::uint64_t> total_hops_{0};
  std::atomic<std::uint64_t> total_phases_{0};
  std::atomic<std::uint64_t> total_stall_cycles_{0};
};

}  // namespace xbgas
