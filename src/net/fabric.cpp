#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace xbgas {

std::uint64_t NetCostParams::barrier_cycles(int n_participants) const {
  XBGAS_CHECK(n_participants >= 1, "barrier needs >= 1 participant");
  if (n_participants == 1) return 0;
  const std::uint64_t hop = injection_cycles + per_hop_cycles;
  const auto n = static_cast<std::uint64_t>(n_participants);
  const std::uint64_t rounds = ceil_log2(n);
  switch (barrier_algorithm) {
    case BarrierAlgorithm::kDissemination:
      // All PEs exchange in parallel each round.
      return rounds * hop;
    case BarrierAlgorithm::kCentral:
      // Root serializes n-1 arrivals, then one broadcast-style release.
      return (n - 1) * hop + hop;
    case BarrierAlgorithm::kTournament:
      // log2 n up the winners' bracket plus a tree release.
      return 2 * rounds * hop;
  }
  return rounds * hop;
}

NetworkModel::NetworkModel(std::unique_ptr<Topology> topology,
                           const NetCostParams& params)
    : topology_(std::move(topology)), params_(params) {
  XBGAS_CHECK(topology_ != nullptr, "NetworkModel requires a topology");
  XBGAS_CHECK(params_.link_bytes_per_cycle > 0 &&
                  params_.fabric_bytes_per_cycle > 0,
              "bandwidths must be positive");
}

namespace {
std::uint64_t serialization_cycles(std::size_t bytes, double bytes_per_cycle) {
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle));
}
}  // namespace

void LinkFaults::configure(const FaultConfig& config, int n_pes) {
  n_pes_ = n_pes;
  degraded_beta_factor_ = config.degraded_beta_factor;
  degraded_alpha_cycles_ = config.degraded_alpha_cycles;
  links_.clear();
  partitions_.clear();
  for (const LinkSpec& l : config.links) {
    auto e = std::make_unique<LinkEntry>();
    e->spec = l;
    if (e->spec.a > e->spec.b) std::swap(e->spec.a, e->spec.b);
    links_.push_back(std::move(e));
  }
  for (const PartitionSpec& p : config.partitions) {
    auto e = std::make_unique<PartitionEntry>();
    e->spec = p;
    partitions_.push_back(std::move(e));
  }
}

void LinkFaults::fire_link(LinkEntry& e, std::uint64_t now) {
  bool expected = false;
  if (now >= e.spec.at &&
      e.activated.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    version_.fetch_add(1, std::memory_order_acq_rel);
    if (e.spec.mode == LinkFaultMode::kDown && down_cb_) {
      down_cb_(e.spec.a, e.spec.b);
    }
  }
  expected = false;
  if (e.spec.heal_at != 0 && now >= e.spec.heal_at &&
      e.healed.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    version_.fetch_add(1, std::memory_order_acq_rel);
    heals_.fetch_add(1, std::memory_order_relaxed);
    if (e.spec.mode == LinkFaultMode::kDown && heal_cb_) {
      heal_cb_(e.spec.a, e.spec.b);
    }
  }
}

void LinkFaults::fire_partition(PartitionEntry& e, std::uint64_t now) {
  bool expected = false;
  if (now >= e.spec.at &&
      e.activated.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    version_.fetch_add(1, std::memory_order_acq_rel);
    if (down_cb_) {
      for (int a = e.spec.lo; a <= e.spec.hi; ++a) {
        for (int b = 0; b < n_pes_; ++b) {
          if (b >= e.spec.lo && b <= e.spec.hi) continue;
          down_cb_(a < b ? a : b, a < b ? b : a);
        }
      }
    }
  }
  expected = false;
  if (e.spec.heal_at != 0 && now >= e.spec.heal_at &&
      e.healed.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    version_.fetch_add(1, std::memory_order_acq_rel);
    heals_.fetch_add(1, std::memory_order_relaxed);
    if (heal_cb_) {
      for (int a = e.spec.lo; a <= e.spec.hi; ++a) {
        for (int b = 0; b < n_pes_; ++b) {
          if (b >= e.spec.lo && b <= e.spec.hi) continue;
          heal_cb_(a < b ? a : b, a < b ? b : a);
        }
      }
    }
  }
}

LinkStatus LinkFaults::status(int src_pe, int dst_pe, std::uint64_t now) {
  if (empty() || src_pe == dst_pe) return LinkStatus::kUp;
  const int a = src_pe < dst_pe ? src_pe : dst_pe;
  const int b = src_pe < dst_pe ? dst_pe : src_pe;
  LinkStatus result = LinkStatus::kUp;
  for (auto& e : links_) {
    if (e->spec.a != a || e->spec.b != b) continue;
    fire_link(*e, now);
    if (!window_active(e->spec.at, e->spec.heal_at, now)) continue;
    if (e->spec.mode == LinkFaultMode::kDown) {
      result = LinkStatus::kDown;
    } else if (result == LinkStatus::kUp) {
      result = LinkStatus::kDegraded;
    }
  }
  for (auto& e : partitions_) {
    if (!partition_covers(e->spec, a, b)) continue;
    fire_partition(*e, now);
    if (window_active(e->spec.at, e->spec.heal_at, now)) {
      result = LinkStatus::kDown;
    }
  }
  if (result == LinkStatus::kDown) {
    down_observed_.fetch_add(1, std::memory_order_relaxed);
  } else if (result == LinkStatus::kDegraded) {
    degraded_observed_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::vector<std::pair<int, int>> LinkFaults::down_pairs() const {
  std::vector<std::pair<int, int>> out;
  for (const auto& e : links_) {
    if (e->spec.mode != LinkFaultMode::kDown) continue;
    if (!e->activated.load(std::memory_order_acquire)) continue;
    if (e->spec.heal_at != 0 && e->healed.load(std::memory_order_acquire)) {
      continue;
    }
    out.emplace_back(e->spec.a, e->spec.b);
  }
  for (const auto& e : partitions_) {
    if (!e->activated.load(std::memory_order_acquire)) continue;
    if (e->spec.heal_at != 0 && e->healed.load(std::memory_order_acquire)) {
      continue;
    }
    for (int a = e->spec.lo; a <= e->spec.hi; ++a) {
      for (int b = 0; b < n_pes_; ++b) {
        if (b >= e->spec.lo && b <= e->spec.hi) continue;
        out.emplace_back(a < b ? a : b, a < b ? b : a);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t NetworkModel::degraded_penalty_cycles(std::size_t bytes) const {
  const std::uint64_t ser = serialization_cycles(
      bytes + params_.message_header_bytes, params_.link_bytes_per_cycle);
  const double factor = link_faults_.degraded_beta_factor();
  const auto extra = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(ser) * (factor - 1.0)));
  return extra + link_faults_.degraded_alpha_cycles();
}

std::uint64_t NetworkModel::put_cost(int src_pe, int dst_pe,
                                     std::size_t bytes) const {
  const int h = topology_->hops(src_pe, dst_pe);
  return params_.olb_lookup_cycles + params_.injection_cycles +
         static_cast<std::uint64_t>(h) * params_.per_hop_cycles +
         serialization_cycles(bytes + params_.message_header_bytes,
                              params_.link_bytes_per_cycle) +
         params_.remote_mem_cycles;
}

std::uint64_t NetworkModel::get_cost(int src_pe, int dst_pe,
                                     std::size_t bytes) const {
  const int h = topology_->hops(src_pe, dst_pe);
  // Request traversal + remote access + response traversal carrying payload.
  return params_.olb_lookup_cycles + 2 * params_.injection_cycles +
         std::uint64_t{2} * static_cast<std::uint64_t>(h) * params_.per_hop_cycles +
         serialization_cycles(bytes + params_.message_header_bytes,
                              params_.link_bytes_per_cycle) +
         params_.remote_mem_cycles;
}

void NetworkModel::record(bool is_put, std::size_t bytes, int src_pe,
                          int dst_pe) {
  // Fabric occupancy counts payload plus per-message protocol overhead.
  phase_bytes_.fetch_add(bytes + params_.message_header_bytes,
                         std::memory_order_relaxed);
  phase_messages_.fetch_add(1, std::memory_order_relaxed);
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  total_bytes_.fetch_add(bytes + params_.message_header_bytes,
                         std::memory_order_relaxed);
  (is_put ? total_puts_ : total_gets_).fetch_add(1, std::memory_order_relaxed);
  if (src_pe != dst_pe) {
    total_hops_.fetch_add(
        static_cast<std::uint64_t>(topology_->hops(src_pe, dst_pe)),
        std::memory_order_relaxed);
  }
}

std::uint64_t NetworkModel::reconcile_phase(
    std::uint64_t max_participant_cycles, int n_participants) {
  const std::uint64_t drained = phase_bytes_.exchange(0, std::memory_order_relaxed);
  const std::uint64_t drained_msgs =
      phase_messages_.exchange(0, std::memory_order_relaxed);
  const std::uint64_t fabric_done =
      phase_anchor_ +
      serialization_cycles(drained, params_.fabric_bytes_per_cycle) +
      drained_msgs * params_.fabric_message_cycles;
  if (fabric_done > max_participant_cycles) {
    // The phase could not end when the slowest PE arrived: the shared fabric
    // was still draining. This is the §5 saturation signal the counters
    // surface as net.stall_cycles.
    total_stall_cycles_.fetch_add(fabric_done - max_participant_cycles,
                                  std::memory_order_relaxed);
  }
  total_phases_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t =
      std::max(max_participant_cycles, fabric_done) +
      params_.barrier_cycles(n_participants);
  phase_anchor_ = t;
  return t;
}

NetTotals NetworkModel::totals() const {
  return NetTotals{
      .messages = total_messages_.load(std::memory_order_relaxed),
      .bytes = total_bytes_.load(std::memory_order_relaxed),
      .puts = total_puts_.load(std::memory_order_relaxed),
      .gets = total_gets_.load(std::memory_order_relaxed),
      .hops = total_hops_.load(std::memory_order_relaxed),
      .phases = total_phases_.load(std::memory_order_relaxed),
      .stall_cycles = total_stall_cycles_.load(std::memory_order_relaxed),
  };
}

void NetworkModel::reset_phase() {
  phase_bytes_.store(0, std::memory_order_relaxed);
  phase_messages_.store(0, std::memory_order_relaxed);
  phase_anchor_ = 0;
}

void NetworkModel::reset_totals() {
  total_messages_.store(0, std::memory_order_relaxed);
  total_bytes_.store(0, std::memory_order_relaxed);
  total_puts_.store(0, std::memory_order_relaxed);
  total_gets_.store(0, std::memory_order_relaxed);
  total_hops_.store(0, std::memory_order_relaxed);
  total_phases_.store(0, std::memory_order_relaxed);
  total_stall_cycles_.store(0, std::memory_order_relaxed);
}

}  // namespace xbgas
