#pragma once

// SimClock — one PE's simulated cycle counter.
//
// The host is not the paper's 12-core RISC-V board (this build even runs on
// a single host core), so all reported performance is *modeled* time: every
// local access charges cache-model cycles, every remote transaction charges
// network-model cycles, and barriers synchronize clocks to the maximum
// participant (plus fabric serialization; see NetworkModel). The result is
// deterministic for a given program and PE count, independent of host
// scheduling.

#include <cstdint>

namespace xbgas {

class SimClock {
 public:
  constexpr std::uint64_t cycles() const { return cycles_; }
  constexpr void advance(std::uint64_t c) { cycles_ += c; }
  constexpr void set(std::uint64_t c) { cycles_ = c; }
  constexpr void reset() { cycles_ = 0; }

  /// Convert to seconds at a given core frequency.
  constexpr double seconds(double hz) const {
    return static_cast<double>(cycles_) / hz;
  }

  /// Nominal core frequency used for MOPS reporting (1 GHz).
  static constexpr double kDefaultHz = 1.0e9;

 private:
  std::uint64_t cycles_ = 0;
};

}  // namespace xbgas
