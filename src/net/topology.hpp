#pragma once

// Interconnect topology models.
//
// The paper (§4.2) chooses the binomial tree precisely because it assumes
// nothing about topology ("will perform effectively regardless of whether it
// is utilized on a torus or hypercube topology"). These models supply hop
// counts to the network cost model so the ablation benches (A2) can measure
// how the tree's recursive-halving schedule behaves on each fabric.

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace xbgas {

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of endpoints.
  virtual int size() const = 0;

  /// Hop count between two endpoints (0 when src == dst).
  virtual int hops(int src, int dst) const = 0;

  /// Number of unidirectional links in the fabric (for congestion scaling).
  virtual int link_count() const = 0;

  virtual std::string name() const = 0;

  /// Network diameter: max hops over all pairs.
  int diameter() const;

  /// Mean hops over all ordered pairs with src != dst.
  double mean_hops() const;
};

/// Crossbar/flat switch: every pair one hop apart. This is the default
/// profile — closest to the paper's single-board 12-core simulation where
/// inter-PE traffic shares one fabric.
class FlatTopology final : public Topology {
 public:
  explicit FlatTopology(int n);
  int size() const override { return n_; }
  int hops(int src, int dst) const override;
  int link_count() const override;
  std::string name() const override { return "flat"; }

 private:
  int n_;
};

/// Bidirectional ring.
class RingTopology final : public Topology {
 public:
  explicit RingTopology(int n);
  int size() const override { return n_; }
  int hops(int src, int dst) const override;
  int link_count() const override;
  std::string name() const override { return "ring"; }

 private:
  int n_;
};

/// 2-D torus with dimensions rows x cols (rows*cols endpoints, row-major
/// rank order).
class Torus2DTopology final : public Topology {
 public:
  Torus2DTopology(int rows, int cols);
  /// Near-square factorization of n.
  explicit Torus2DTopology(int n);
  int size() const override { return rows_ * cols_; }
  int hops(int src, int dst) const override;
  int link_count() const override;
  std::string name() const override;

  int rows() const { return rows_; }
  int cols() const { return cols_; }

 private:
  int rows_;
  int cols_;
};

/// Binary hypercube; size must be a power of two.
class HypercubeTopology final : public Topology {
 public:
  explicit HypercubeTopology(int n);
  int size() const override { return n_; }
  int hops(int src, int dst) const override;
  int link_count() const override;
  std::string name() const override { return "hypercube"; }

 private:
  int n_;
};

/// One grouping level of a cluster fabric: crossing the boundary between
/// `group`-wide blocks of consecutive ranks costs `hops`.
struct ClusterLevel {
  int group;  ///< block width in consecutive world ranks
  int hops;   ///< hop count charged when a pair straddles this boundary
};

/// Cluster-of-nodes fabric, arbitrary depth: PEs are grouped into nested
/// blocks of consecutive ranks (node ⊂ rack ⊂ cluster, levels innermost
/// first with strictly ascending widths in a divisibility chain). A pair in
/// the same innermost block is 1 hop apart; otherwise the OUTERMOST
/// boundary the pair straddles decides the cost. This models the
/// on-chip-vs-network split the xBGAS OLB exposes (object IDs are dense in
/// rank order, so block membership is a pure function of the ID) and is the
/// fabric where the §7 locality-aware collectives pay off.
class ClusterTopology final : public Topology {
 public:
  /// Single-level convenience: nodes of `group_size`, `remote_hops` across.
  ClusterTopology(int n, int group_size, int remote_hops);
  ClusterTopology(int n, std::vector<ClusterLevel> levels);
  int size() const override { return n_; }
  int hops(int src, int dst) const override;
  int link_count() const override;
  std::string name() const override;

  const std::vector<ClusterLevel>& levels() const { return levels_; }

  /// Innermost block width (the old two-level "group size").
  int group_size() const { return levels_.front().group; }
  /// Innermost boundary-crossing cost (the old two-level "remote hops").
  int remote_hops() const { return levels_.front().hops; }

 private:
  int n_;
  std::vector<ClusterLevel> levels_;
};

/// Reachability/cost view of a base topology with some direct pair paths
/// scripted down (LinkFaults::down_pairs()). Routing is modeled as shortest
/// path over the surviving pair graph: `hops(s, d)` is the cheapest sum of
/// base hop counts along any sequence of up pair paths, or `kUnreachable`
/// when the down set disconnects the pair. CollectivePolicy consumes this to
/// re-derive mean hops and route viability after a link fault — collectives
/// route around dead links when a path exists.
class DegradedTopologyView final : public Topology {
 public:
  static constexpr int kUnreachable = -1;

  DegradedTopologyView(const Topology& base,
                       std::vector<std::pair<int, int>> down_pairs);

  int size() const override { return base_.size(); }
  /// Cheapest multi-hop route cost, or kUnreachable when disconnected.
  int hops(int src, int dst) const override;
  int link_count() const override;
  std::string name() const override { return base_.name() + "+degraded"; }

  /// True when some up path (possibly multi-hop) connects the pair.
  bool reachable(int src, int dst) const {
    return hops(src, dst) != kUnreachable;
  }
  /// Mean route cost over *reachable* ordered pairs (src != dst); falls back
  /// to the base mean when every pair is cut off.
  double degraded_mean_hops() const;
  const std::vector<std::pair<int, int>>& down_pairs() const {
    return down_;
  }

 private:
  bool pair_down(int a, int b) const;

  const Topology& base_;
  std::vector<std::pair<int, int>> down_;  // normalized a < b, sorted
  // Precomputed all-pairs route costs (row-major, kUnreachable = cut off).
  std::vector<int> cost_;
};

/// Factory: name in {flat, ring, torus, hypercube} or
/// "cluster<G>x<H>[_<G>x<H>]*" — nested blocks of G PEs costing H hops to
/// cross, innermost first (e.g. "cluster4x8" or "cluster8x4_64x16").
/// Throws on unknown names or invalid (name, n) combinations (e.g.
/// non-power-of-two hypercube).
std::unique_ptr<Topology> make_topology(const std::string& name, int n);

}  // namespace xbgas
