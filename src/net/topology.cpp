#include "net/topology.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace xbgas {

int Topology::diameter() const {
  int best = 0;
  for (int s = 0; s < size(); ++s) {
    for (int d = 0; d < size(); ++d) best = std::max(best, hops(s, d));
  }
  return best;
}

double Topology::mean_hops() const {
  if (size() < 2) return 0.0;
  long long total = 0;
  for (int s = 0; s < size(); ++s) {
    for (int d = 0; d < size(); ++d) {
      if (s != d) total += hops(s, d);
    }
  }
  return static_cast<double>(total) /
         (static_cast<double>(size()) * (size() - 1));
}

namespace {
void check_endpoint(int n, int src, int dst) {
  XBGAS_CHECK(src >= 0 && src < n && dst >= 0 && dst < n,
              strfmt("endpoint out of range: src=%d dst=%d n=%d", src, dst, n));
}
}  // namespace

FlatTopology::FlatTopology(int n) : n_(n) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
}

int FlatTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  return src == dst ? 0 : 1;
}

int FlatTopology::link_count() const { return n_ * (n_ - 1); }

RingTopology::RingTopology(int n) : n_(n) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
}

int RingTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  const int fwd = (dst - src + n_) % n_;
  return std::min(fwd, n_ - fwd);
}

int RingTopology::link_count() const { return n_ <= 1 ? 0 : 2 * n_; }

Torus2DTopology::Torus2DTopology(int rows, int cols) : rows_(rows), cols_(cols) {
  XBGAS_CHECK(rows >= 1 && cols >= 1, "torus dims must be >= 1");
}

Torus2DTopology::Torus2DTopology(int n) : rows_(1), cols_(n) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
  for (int r = static_cast<int>(std::sqrt(static_cast<double>(n))); r >= 1; --r) {
    if (n % r == 0) {
      rows_ = r;
      cols_ = n / r;
      break;
    }
  }
}

int Torus2DTopology::hops(int src, int dst) const {
  check_endpoint(size(), src, dst);
  const int sr = src / cols_, sc = src % cols_;
  const int dr = dst / cols_, dc = dst % cols_;
  const int row_fwd = (dr - sr + rows_) % rows_;
  const int col_fwd = (dc - sc + cols_) % cols_;
  return std::min(row_fwd, rows_ - row_fwd) + std::min(col_fwd, cols_ - col_fwd);
}

int Torus2DTopology::link_count() const {
  int links = 0;
  if (rows_ > 1) links += 2 * size();
  if (cols_ > 1) links += 2 * size();
  return links;
}

std::string Torus2DTopology::name() const {
  return strfmt("torus%dx%d", rows_, cols_);
}

HypercubeTopology::HypercubeTopology(int n) : n_(n) {
  XBGAS_CHECK(n >= 1 && is_pow2(static_cast<std::uint64_t>(n)),
              "hypercube size must be a power of two");
}

int HypercubeTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  return std::popcount(static_cast<unsigned>(src ^ dst));
}

int HypercubeTopology::link_count() const {
  return n_ <= 1 ? 0 : n_ * static_cast<int>(floor_log2(static_cast<std::uint64_t>(n_)));
}

ClusterTopology::ClusterTopology(int n, int group_size, int remote_hops)
    : ClusterTopology(n, std::vector<ClusterLevel>{
                             ClusterLevel{group_size, remote_hops}}) {}

ClusterTopology::ClusterTopology(int n, std::vector<ClusterLevel> levels)
    : n_(n), levels_(std::move(levels)) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
  XBGAS_CHECK(!levels_.empty(), "cluster topology needs >= 1 level");
  int prev = 0;
  for (const auto& lv : levels_) {
    XBGAS_CHECK(lv.group >= 1 && n % lv.group == 0,
                "cluster group size must divide the endpoint count");
    XBGAS_CHECK(lv.group > prev,
                "cluster group sizes must be strictly ascending");
    XBGAS_CHECK(prev == 0 || lv.group % prev == 0,
                "each cluster group size must divide the next");
    XBGAS_CHECK(lv.hops >= 1, "remote hops must be >= 1");
    prev = lv.group;
  }
}

int ClusterTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  if (src == dst) return 0;
  // The outermost straddled boundary decides the cost; a pair inside the
  // same innermost block is on a local link.
  for (std::size_t i = levels_.size(); i-- > 0;) {
    const int g = levels_[i].group;
    if (src / g != dst / g) return levels_[i].hops;
  }
  return 1;
}

int ClusterTopology::link_count() const {
  // Full mesh inside each innermost block plus one full mesh among the
  // block representatives of every level.
  int links = n_ * (levels_.front().group - 1);
  for (const auto& lv : levels_) {
    const int blocks = n_ / lv.group;
    links += blocks * (blocks - 1);
  }
  return links;
}

std::string ClusterTopology::name() const {
  std::string out = "cluster";
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    out += strfmt(i == 0 ? "%dx%d" : "_%dx%d", levels_[i].group,
                  levels_[i].hops);
  }
  return out;
}

DegradedTopologyView::DegradedTopologyView(
    const Topology& base, std::vector<std::pair<int, int>> down_pairs)
    : base_(base), down_(std::move(down_pairs)) {
  for (auto& p : down_) {
    if (p.first > p.second) std::swap(p.first, p.second);
  }
  std::sort(down_.begin(), down_.end());
  down_.erase(std::unique(down_.begin(), down_.end()), down_.end());
  // All-pairs cheapest routes over the surviving pair graph: one dense
  // Dijkstra per source (no heap; the graph is a near-complete mesh, so the
  // O(n^2)-per-source scan is already optimal). Cold path — rebuilt only
  // when the link-fault version changes.
  const auto n = static_cast<std::size_t>(base_.size());
  cost_.assign(n * n, kUnreachable);
  std::vector<long long> dist(n);
  std::vector<char> done(n);
  constexpr long long kInf = -1;
  for (std::size_t s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(done.begin(), done.end(), 0);
    dist[s] = 0;
    for (std::size_t iter = 0; iter < n; ++iter) {
      std::size_t u = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (!done[v] && dist[v] != kInf && (u == n || dist[v] < dist[u])) {
          u = v;
        }
      }
      if (u == n) break;
      done[u] = 1;
      for (std::size_t v = 0; v < n; ++v) {
        if (done[v] || v == u ||
            pair_down(static_cast<int>(u), static_cast<int>(v))) {
          continue;
        }
        const long long cand =
            dist[u] + base_.hops(static_cast<int>(u), static_cast<int>(v));
        if (dist[v] == kInf || cand < dist[v]) dist[v] = cand;
      }
    }
    for (std::size_t d = 0; d < n; ++d) {
      cost_[s * n + d] =
          dist[d] == kInf ? kUnreachable : static_cast<int>(dist[d]);
    }
  }
}

bool DegradedTopologyView::pair_down(int a, int b) const {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return std::binary_search(down_.begin(), down_.end(), key);
}

int DegradedTopologyView::hops(int src, int dst) const {
  check_endpoint(base_.size(), src, dst);
  return cost_[static_cast<std::size_t>(src) *
                   static_cast<std::size_t>(base_.size()) +
               static_cast<std::size_t>(dst)];
}

int DegradedTopologyView::link_count() const {
  const int cut = static_cast<int>(down_.size()) * 2;  // both directions
  const int base = base_.link_count();
  return cut >= base ? 0 : base - cut;
}

double DegradedTopologyView::degraded_mean_hops() const {
  long long total = 0;
  long long pairs = 0;
  const auto n = static_cast<std::size_t>(base_.size());
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      const int h = cost_[s * n + d];
      if (h == kUnreachable) continue;
      total += h;
      ++pairs;
    }
  }
  if (pairs == 0) return base_.mean_hops();
  return static_cast<double>(total) / static_cast<double>(pairs);
}

std::unique_ptr<Topology> make_topology(const std::string& name, int n) {
  if (name == "flat") return std::make_unique<FlatTopology>(n);
  if (name == "ring") return std::make_unique<RingTopology>(n);
  if (name == "torus") return std::make_unique<Torus2DTopology>(n);
  if (name == "hypercube") return std::make_unique<HypercubeTopology>(n);
  if (name.rfind("cluster", 0) == 0) {
    std::vector<ClusterLevel> levels;
    std::size_t at = 7;  // past "cluster"
    while (at < name.size()) {
      const std::size_t end = name.find('_', at);
      const std::string tok =
          name.substr(at, end == std::string::npos ? std::string::npos
                                                   : end - at);
      int group = 0, remote = 0;
      char trail = 0;
      if (std::sscanf(tok.c_str(), "%dx%d%c", &group, &remote, &trail) != 2) {
        break;
      }
      levels.push_back(ClusterLevel{group, remote});
      if (end == std::string::npos) {
        return std::make_unique<ClusterTopology>(n, std::move(levels));
      }
      at = end + 1;
    }
    throw Error("cluster topology syntax: cluster<G>x<H>[_<G>x<H>]*, got: " +
                name);
  }
  throw Error("unknown topology: " + name);
}

}  // namespace xbgas
