#include "net/topology.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace xbgas {

int Topology::diameter() const {
  int best = 0;
  for (int s = 0; s < size(); ++s) {
    for (int d = 0; d < size(); ++d) best = std::max(best, hops(s, d));
  }
  return best;
}

double Topology::mean_hops() const {
  if (size() < 2) return 0.0;
  long long total = 0;
  for (int s = 0; s < size(); ++s) {
    for (int d = 0; d < size(); ++d) {
      if (s != d) total += hops(s, d);
    }
  }
  return static_cast<double>(total) /
         (static_cast<double>(size()) * (size() - 1));
}

namespace {
void check_endpoint(int n, int src, int dst) {
  XBGAS_CHECK(src >= 0 && src < n && dst >= 0 && dst < n,
              strfmt("endpoint out of range: src=%d dst=%d n=%d", src, dst, n));
}
}  // namespace

FlatTopology::FlatTopology(int n) : n_(n) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
}

int FlatTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  return src == dst ? 0 : 1;
}

int FlatTopology::link_count() const { return n_ * (n_ - 1); }

RingTopology::RingTopology(int n) : n_(n) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
}

int RingTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  const int fwd = (dst - src + n_) % n_;
  return std::min(fwd, n_ - fwd);
}

int RingTopology::link_count() const { return n_ <= 1 ? 0 : 2 * n_; }

Torus2DTopology::Torus2DTopology(int rows, int cols) : rows_(rows), cols_(cols) {
  XBGAS_CHECK(rows >= 1 && cols >= 1, "torus dims must be >= 1");
}

Torus2DTopology::Torus2DTopology(int n) : rows_(1), cols_(n) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
  for (int r = static_cast<int>(std::sqrt(static_cast<double>(n))); r >= 1; --r) {
    if (n % r == 0) {
      rows_ = r;
      cols_ = n / r;
      break;
    }
  }
}

int Torus2DTopology::hops(int src, int dst) const {
  check_endpoint(size(), src, dst);
  const int sr = src / cols_, sc = src % cols_;
  const int dr = dst / cols_, dc = dst % cols_;
  const int row_fwd = (dr - sr + rows_) % rows_;
  const int col_fwd = (dc - sc + cols_) % cols_;
  return std::min(row_fwd, rows_ - row_fwd) + std::min(col_fwd, cols_ - col_fwd);
}

int Torus2DTopology::link_count() const {
  int links = 0;
  if (rows_ > 1) links += 2 * size();
  if (cols_ > 1) links += 2 * size();
  return links;
}

std::string Torus2DTopology::name() const {
  return strfmt("torus%dx%d", rows_, cols_);
}

HypercubeTopology::HypercubeTopology(int n) : n_(n) {
  XBGAS_CHECK(n >= 1 && is_pow2(static_cast<std::uint64_t>(n)),
              "hypercube size must be a power of two");
}

int HypercubeTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  return std::popcount(static_cast<unsigned>(src ^ dst));
}

int HypercubeTopology::link_count() const {
  return n_ <= 1 ? 0 : n_ * static_cast<int>(floor_log2(static_cast<std::uint64_t>(n_)));
}

ClusterTopology::ClusterTopology(int n, int group_size, int remote_hops)
    : n_(n), group_size_(group_size), remote_hops_(remote_hops) {
  XBGAS_CHECK(n >= 1, "topology needs >= 1 endpoint");
  XBGAS_CHECK(group_size >= 1 && n % group_size == 0,
              "cluster group size must divide the endpoint count");
  XBGAS_CHECK(remote_hops >= 1, "remote hops must be >= 1");
}

int ClusterTopology::hops(int src, int dst) const {
  check_endpoint(n_, src, dst);
  if (src == dst) return 0;
  return src / group_size_ == dst / group_size_ ? 1 : remote_hops_;
}

int ClusterTopology::link_count() const {
  const int groups = n_ / group_size_;
  return n_ * (group_size_ - 1) + groups * (groups - 1);
}

std::string ClusterTopology::name() const {
  return strfmt("cluster%dx%d", group_size_, remote_hops_);
}

std::unique_ptr<Topology> make_topology(const std::string& name, int n) {
  if (name == "flat") return std::make_unique<FlatTopology>(n);
  if (name == "ring") return std::make_unique<RingTopology>(n);
  if (name == "torus") return std::make_unique<Torus2DTopology>(n);
  if (name == "hypercube") return std::make_unique<HypercubeTopology>(n);
  if (name.rfind("cluster", 0) == 0) {
    int group = 0, remote = 0;
    if (std::sscanf(name.c_str(), "cluster%dx%d", &group, &remote) == 2) {
      return std::make_unique<ClusterTopology>(n, group, remote);
    }
    throw Error("cluster topology syntax: cluster<G>x<H>, got: " + name);
  }
  throw Error("unknown topology: " + name);
}

}  // namespace xbgas
