#pragma once

// Typed XbrSan violations.
//
// Every finding is a SanViolationError carrying the structured facts the
// negative tests and post-mortem tooling assert on: which check fired, which
// API entry point issued the access, the issuing and target world ranks, and
// the shared-segment byte range involved. The what() string is the full
// human-readable diagnosis (docs/SANITIZER.md lists the taxonomy).

#include <cstddef>
#include <string>

#include "common/error.hpp"

namespace xbgas {

/// Which XbrSan check fired.
enum class SanViolationKind : std::uint8_t {
  kOutOfBounds,       ///< target range not covered by any live allocation
  kUseAfterFree,      ///< target range intersects a freed symmetric block
  kStraddle,          ///< target range spans two distinct live allocations
  kWriteWriteConflict,  ///< same-epoch overlapping writes from two PEs
  kReadWriteConflict,   ///< same-epoch overlapping read + write, two PEs
  kNbReadBeforeWait,  ///< local use of an in-flight nonblocking destination
  kNbWriteBeforeWait,   ///< local source of an in-flight nb-put rewritten
  kNbRemoteBeforeWait,  ///< remote access to an open nb-put landing zone
  kCollInFlight,        ///< result buffer of an unfinished nbi collective used
};

constexpr const char* san_violation_name(SanViolationKind k) {
  switch (k) {
    case SanViolationKind::kOutOfBounds: return "out_of_bounds";
    case SanViolationKind::kUseAfterFree: return "use_after_free";
    case SanViolationKind::kStraddle: return "straddle";
    case SanViolationKind::kWriteWriteConflict: return "write_write_conflict";
    case SanViolationKind::kReadWriteConflict: return "read_write_conflict";
    case SanViolationKind::kNbReadBeforeWait: return "nb_read_before_wait";
    case SanViolationKind::kNbWriteBeforeWait: return "nb_write_before_wait";
    case SanViolationKind::kNbRemoteBeforeWait: return "nb_remote_before_wait";
    case SanViolationKind::kCollInFlight: return "coll_in_flight";
  }
  return "unknown";
}

class SanViolationError : public Error {
 public:
  SanViolationError(const std::string& what_arg, SanViolationKind kind,
                    const char* fn, int issuing_rank, int target_rank,
                    std::size_t offset, std::size_t bytes)
      : Error(what_arg),
        kind_(kind),
        fn_(fn),
        issuing_rank_(issuing_rank),
        target_rank_(target_rank),
        offset_(offset),
        bytes_(bytes) {}

  SanViolationKind kind() const { return kind_; }
  /// API entry point that issued the offending access (e.g. "xbr_put").
  const char* fn() const { return fn_; }
  int issuing_rank() const { return issuing_rank_; }
  int target_rank() const { return target_rank_; }
  /// Shared-segment byte offset of the offending range on the target PE.
  std::size_t offset() const { return offset_; }
  std::size_t bytes() const { return bytes_; }

 private:
  SanViolationKind kind_;
  const char* fn_;
  int issuing_rank_;
  int target_rank_;
  std::size_t offset_;
  std::size_t bytes_;
};

}  // namespace xbgas
