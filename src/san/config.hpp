#pragma once

// SanConfig — the XbrSan runtime-sanitizer plan for one Machine.
//
// The paper's one-sided xbr_put/get semantics (§3.2-§3.3) place the whole
// correctness burden on the programmer: nothing in the architecture stops an
// out-of-bounds remote write, a put into a freed symmetric buffer, or two
// PEs racing on the same range between barriers. XbrSan (src/san) is the
// opt-in guard rail: it validates every remote access against the target
// PE's live symmetric-heap allocations and, in full mode, detects
// conflicting same-epoch accesses via barrier-synchronization reasoning.
//
// This header is deliberately dependency-free so MachineConfig can embed a
// SanConfig without the machine layer linking against the sanitizer's
// implementation.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace xbgas {

/// How much checking XbrSan performs (--xbrsan {off,bounds,full}).
enum class SanMode : std::uint8_t {
  kOff,     ///< no checking; the hot paths pay one predictable branch
  kBounds,  ///< bounds + lifetime validation of every remote access target
  kFull,    ///< kBounds plus epoch-based conflict detection (access ledger)
};

constexpr const char* san_mode_name(SanMode m) {
  switch (m) {
    case SanMode::kOff: return "off";
    case SanMode::kBounds: return "bounds";
    case SanMode::kFull: return "full";
  }
  return "unknown";
}

inline SanMode parse_san_mode(const std::string& name) {
  if (name == "off") return SanMode::kOff;
  if (name == "bounds") return SanMode::kBounds;
  if (name == "full") return SanMode::kFull;
  throw Error("unknown --xbrsan mode: " + name + " (off|bounds|full)");
}

struct SanConfig {
  SanMode mode = SanMode::kOff;

  /// Freed-block history retained per PE for use-after-free diagnosis. A
  /// freed offset that gets re-allocated leaves the history (the block is
  /// live again), so this only bounds diagnostics, not correctness.
  std::size_t freed_history = 256;

  /// Hard cap on ledger records retained per target PE within one epoch.
  /// Overflow drops the oldest records (counted in san.ledger_dropped) so a
  /// pathological epoch cannot exhaust host memory.
  std::size_t max_ledger_entries = 1 << 16;

  bool enabled() const { return mode != SanMode::kOff; }
  bool conflicts_enabled() const { return mode == SanMode::kFull; }
};

}  // namespace xbgas
