#include "san/sanitizer.hpp"

#include <algorithm>
#include <string>

#include "common/strfmt.hpp"
#include "trace/event.hpp"

namespace xbgas {

namespace {

std::string range_str(std::size_t lo, std::size_t hi) {
  return strfmt("[0x%zx, 0x%zx)", lo, hi);
}

/// True when [a_lo, a_hi) and [b_lo, b_hi) intersect.
bool overlaps(std::size_t a_lo, std::size_t a_hi, std::size_t b_lo,
              std::size_t b_hi) {
  return a_lo < b_hi && b_lo < a_hi;
}

/// Two access classes conflict when they overlap, are unordered, and are
/// not both reads or both atomics (an AMO is atomic with respect to other
/// AMOs, but not with respect to plain transfers).
bool classes_conflict(SanAccess a, SanAccess b) {
  if (a == SanAccess::kRead && b == SanAccess::kRead) return false;
  if (a == SanAccess::kAtomic && b == SanAccess::kAtomic) return false;
  return true;
}

}  // namespace

Sanitizer::Sanitizer(const SanConfig& config, int n_pes)
    : config_(config), n_pes_(n_pes) {
  if (!config_.enabled()) return;
  shadow_.resize(static_cast<std::size_t>(n_pes));
  vc_.assign(static_cast<std::size_t>(n_pes),
             std::vector<std::uint64_t>(static_cast<std::size_t>(n_pes), 0));
}

Sanitizer::Counters Sanitizer::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void Sanitizer::on_alloc(int rank, std::size_t offset, std::size_t bytes) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  PeShadow& sh = shadow_[static_cast<std::size_t>(rank)];
  sh.live[offset] = bytes;
  // The block is live again: drop any freed-history entries it covers so a
  // re-allocated offset is not misdiagnosed as use-after-free.
  std::erase_if(sh.freed, [&](const FreedBlock& f) {
    return overlaps(f.offset, f.offset + f.bytes, offset, offset + bytes);
  });
}

void Sanitizer::on_free(int rank, std::size_t offset, std::size_t bytes) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  PeShadow& sh = shadow_[static_cast<std::size_t>(rank)];
  sh.live.erase(offset);
  sh.freed.push_back(FreedBlock{offset, bytes});
  while (sh.freed.size() > config_.freed_history) sh.freed.pop_front();
}

void Sanitizer::check_remote(const char* fn, int issuing_rank, int target_rank,
                             std::size_t offset, std::size_t bytes,
                             std::size_t segment_bytes, SanAccess access,
                             std::uint64_t issue_cycles, TraceChannel* trace) {
  if (!enabled() || bytes == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.bounds_checks;
  const char* verb = access == SanAccess::kRead ? "reads" : "writes";
  // Overflow-safe segment containment: checked before forming offset+bytes.
  if (offset > segment_bytes || bytes > segment_bytes - offset) {
    raise_locked(SanViolationKind::kOutOfBounds, fn, issuing_rank, target_rank,
                 offset, bytes,
                 strfmt("%s %zu bytes at offset 0x%zx of PE %d's symmetric "
                        "segment, which is only %zu bytes long",
                        verb, bytes, offset, target_rank, segment_bytes),
                 trace);
  }
  const std::size_t hi = offset + bytes;
  bounds_check_locked(fn, issuing_rank, target_rank, offset, hi, access,
                      trace);
  if (conflicts_enabled()) {
    // An access overlapping an open nb-put landing zone can observe a
    // half-landed transfer — including by the issuer itself, whose program
    // order does not order nbi completion. Checked before the ledger so the
    // diagnosis names the pending transfer, not a generic conflict.
    for (const OpenRemote& zone :
         shadow_[static_cast<std::size_t>(target_rank)].open_remote) {
      if (!overlaps(offset, hi, zone.lo, zone.hi)) continue;
      raise_locked(
          SanViolationKind::kNbRemoteBeforeWait, fn, issuing_rank, target_rank,
          offset, bytes,
          strfmt("%s %s of PE %d's symmetric heap, which overlaps the open "
                 "landing zone %s of an in-flight %s from PE %d — the "
                 "nonblocking put has not been completed by xbr_wait_req / "
                 "xbr_quiet / a fence, so the range may hold a half-landed "
                 "transfer",
                 access == SanAccess::kRead ? "reads" : "writes",
                 range_str(offset, hi).c_str(), target_rank,
                 range_str(zone.lo, zone.hi).c_str(), zone.fn, zone.issuer),
          trace);
    }
    conflict_check_locked(fn, issuing_rank, target_rank, offset, hi, access,
                          issue_cycles, trace);
  }
}

void Sanitizer::bounds_check_locked(const char* fn, int issuing_rank,
                                    int target_rank, std::size_t lo,
                                    std::size_t hi, SanAccess access,
                                    TraceChannel* trace) {
  const PeShadow& sh = shadow_[static_cast<std::size_t>(target_rank)];
  const char* verb = access == SanAccess::kRead ? "reads" : "writes";

  // Live allocation containing the range start, if any.
  auto it = sh.live.upper_bound(lo);
  if (it != sh.live.begin()) {
    const auto& [aoff, abytes] = *std::prev(it);
    if (lo < aoff + abytes) {  // starts inside this allocation
      if (hi <= aoff + abytes) return;  // fully contained: OK
      // Runs past the end. If the overrun lands in another live allocation
      // the span straddles two objects; otherwise it is a plain overflow.
      const bool into_next = it != sh.live.end() && it->first < hi;
      raise_locked(
          into_next ? SanViolationKind::kStraddle
                    : SanViolationKind::kOutOfBounds,
          fn, issuing_rank, target_rank, lo, hi - lo,
          into_next
              ? strfmt("%s %s of PE %d's symmetric heap, straddling the live "
                       "allocation %s and the distinct allocation at 0x%zx — "
                       "one transfer may touch at most one symmetric object",
                       verb, range_str(lo, hi).c_str(), target_rank,
                       range_str(aoff, aoff + abytes).c_str(), it->first)
              : strfmt("%s %s of PE %d's symmetric heap, overflowing the live "
                       "allocation %s by %zu bytes",
                       verb, range_str(lo, hi).c_str(), target_rank,
                       range_str(aoff, aoff + abytes).c_str(),
                       hi - (aoff + abytes)),
          trace);
    }
  }

  // Start is outside every live allocation: freed block or wild range?
  for (const FreedBlock& f : sh.freed) {
    if (overlaps(lo, hi, f.offset, f.offset + f.bytes)) {
      raise_locked(SanViolationKind::kUseAfterFree, fn, issuing_rank,
                   target_rank, lo, hi - lo,
                   strfmt("%s %s of PE %d's symmetric heap, which intersects "
                          "the freed allocation %s — the block was released "
                          "by xbrtime_free and not re-allocated",
                          verb, range_str(lo, hi).c_str(), target_rank,
                          range_str(f.offset, f.offset + f.bytes).c_str()),
                   trace);
    }
  }
  raise_locked(SanViolationKind::kOutOfBounds, fn, issuing_rank, target_rank,
               lo, hi - lo,
               strfmt("%s %s of PE %d's symmetric heap, which intersects no "
                      "live allocation",
                      verb, range_str(lo, hi).c_str(), target_rank),
               trace);
}

void Sanitizer::conflict_check_locked(const char* fn, int issuing_rank,
                                      int target_rank, std::size_t lo,
                                      std::size_t hi, SanAccess access,
                                      std::uint64_t issue_cycles,
                                      TraceChannel* trace) {
  PeShadow& sh = shadow_[static_cast<std::size_t>(target_rank)];
  const std::vector<std::uint64_t>& my_vc =
      vc_[static_cast<std::size_t>(issuing_rank)];

  for (const Record& rec : sh.ledger) {
    if (rec.issuer == issuing_rank) continue;  // program order on one PE
    if (!overlaps(lo, hi, rec.lo, rec.hi)) continue;
    if (!classes_conflict(access, rec.access)) continue;
    // Ordered iff a barrier chain carried the recorder's progress to us:
    // our view of the recorder's epoch must exceed its epoch at record time.
    const auto p = static_cast<std::size_t>(rec.issuer);
    if (my_vc[p] > rec.vc[p]) continue;  // happens-before: no conflict

    // Both sides mutate (write or AMO) -> write/write; otherwise one side
    // is a plain read -> read/write.
    const SanViolationKind kind =
        access != SanAccess::kRead && rec.access != SanAccess::kRead
            ? SanViolationKind::kWriteWriteConflict
            : SanViolationKind::kReadWriteConflict;
    raise_locked(
        kind, fn, issuing_rank, target_rank, lo, hi - lo,
        strfmt("%s (%s) %s of PE %d's symmetric heap in the same "
               "synchronization epoch as %s from PE %d (%s) touching %s — "
               "epochs %llu and %llu, issue cycles %llu and %llu; overlapping "
               "remote accesses from different PEs must be separated by a "
               "barrier",
               san_access_name(access), fn, range_str(lo, hi).c_str(),
               target_rank, rec.fn, rec.issuer, san_access_name(rec.access),
               range_str(rec.lo, rec.hi).c_str(),
               static_cast<unsigned long long>(
                   my_vc[static_cast<std::size_t>(issuing_rank)]),
               static_cast<unsigned long long>(
                   rec.vc[static_cast<std::size_t>(rec.issuer)]),
               static_cast<unsigned long long>(issue_cycles),
               static_cast<unsigned long long>(rec.cycles)),
        trace);
  }

  if (sh.ledger.size() >= config_.max_ledger_entries) {
    sh.ledger.erase(sh.ledger.begin());
    ++counters_.ledger_dropped;
  }
  sh.ledger.push_back(Record{lo, hi, access, issuing_rank, fn, issue_cycles,
                             my_vc});
  ++counters_.ledger_records;
}

void Sanitizer::note_nb_dest(const char* fn, int rank, const void* p,
                             std::size_t bytes, std::uint64_t req_id) {
  if (!conflicts_enabled() || bytes == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  shadow_[static_cast<std::size_t>(rank)].open_nb.push_back(
      OpenNb{lo, lo + bytes, fn, req_id, ZoneKind::kDest});
  ++counters_.nb_tracked;
}

void Sanitizer::note_nb_src(const char* fn, int rank, const void* p,
                            std::size_t bytes, std::uint64_t req_id) {
  if (!conflicts_enabled() || bytes == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  shadow_[static_cast<std::size_t>(rank)].open_nb.push_back(
      OpenNb{lo, lo + bytes, fn, req_id, ZoneKind::kSrc});
  ++counters_.nb_tracked;
}

void Sanitizer::note_coll_dest(const char* fn, int rank, const void* p,
                               std::size_t bytes) {
  if (!conflicts_enabled() || bytes == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  shadow_[static_cast<std::size_t>(rank)].open_nb.push_back(
      OpenNb{lo, lo + bytes, fn, 0, ZoneKind::kColl});
  ++counters_.nb_tracked;
}

void Sanitizer::note_nb_remote(const char* fn, int issuing_rank,
                               int target_rank, std::size_t offset,
                               std::size_t bytes, std::uint64_t req_id) {
  if (!conflicts_enabled() || bytes == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  shadow_[static_cast<std::size_t>(target_rank)].open_remote.push_back(
      OpenRemote{offset, offset + bytes, issuing_rank, fn, req_id});
  ++counters_.nb_tracked;
}

void Sanitizer::check_local(const char* fn, int rank, const void* p,
                            std::size_t bytes, bool is_write,
                            TraceChannel* trace) {
  if (!conflicts_enabled() || bytes == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const PeShadow& sh = shadow_[static_cast<std::size_t>(rank)];
  if (sh.open_nb.empty()) return;
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  const auto hi = lo + bytes;
  for (const OpenNb& nb : sh.open_nb) {
    if (!(lo < nb.hi && nb.lo < hi)) continue;
    // An nb-put's source may still be *read* (the transferred bytes are
    // fixed); only a rewrite is a hazard. Dest and collective zones are
    // tainted either way.
    if (nb.kind == ZoneKind::kSrc && !is_write) continue;
    const char* verb = is_write ? "writes" : "reads";
    if (nb.kind == ZoneKind::kSrc) {
      raise_locked(
          SanViolationKind::kNbWriteBeforeWait, fn, rank, rank,
          static_cast<std::size_t>(lo - nb.lo), bytes,
          strfmt("%s a local range overlapping the source buffer of an "
                 "in-flight %s on PE %d — rewriting the source before "
                 "xbr_wait_req / xbr_quiet retroactively changes what the "
                 "nonblocking put sent",
                 verb, nb.fn, rank),
          trace);
    }
    if (nb.kind == ZoneKind::kColl) {
      raise_locked(
          SanViolationKind::kCollInFlight, fn, rank, rank,
          static_cast<std::size_t>(lo - nb.lo), bytes,
          strfmt("%s a local range overlapping the result buffer of an "
                 "unfinished %s on PE %d — the nonblocking collective has "
                 "not been completed; call CollReq::wait() before touching "
                 "its buffers",
                 verb, nb.fn, rank),
          trace);
    }
    raise_locked(
        SanViolationKind::kNbReadBeforeWait, fn, rank, rank,
        static_cast<std::size_t>(lo - nb.lo), bytes,
        strfmt("%s a local range overlapping the landing zone of an "
               "in-flight %s on PE %d — the nonblocking transfer has not "
               "completed; call xbr_wait() (or reach a barrier) before "
               "touching its destination",
               verb, nb.fn, rank),
        trace);
  }
}

void Sanitizer::on_wait(int rank) {
  if (!conflicts_enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  shadow_[static_cast<std::size_t>(rank)].open_nb.clear();
  for (PeShadow& sh : shadow_) {
    std::erase_if(sh.open_remote,
                  [rank](const OpenRemote& z) { return z.issuer == rank; });
  }
}

void Sanitizer::on_wait_req(int rank, std::uint64_t req_id) {
  if (!conflicts_enabled() || req_id == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(shadow_[static_cast<std::size_t>(rank)].open_nb,
                [req_id](const OpenNb& z) { return z.req_id == req_id; });
  for (PeShadow& sh : shadow_) {
    std::erase_if(sh.open_remote, [rank, req_id](const OpenRemote& z) {
      return z.issuer == rank && z.req_id == req_id;
    });
  }
}

void Sanitizer::on_pe_failed(int rank) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (PeShadow& sh : shadow_) {
    std::erase_if(sh.ledger,
                  [rank](const Record& r) { return r.issuer == rank; });
    std::erase_if(sh.open_remote,
                  [rank](const OpenRemote& z) { return z.issuer == rank; });
  }
  shadow_[static_cast<std::size_t>(rank)].open_nb.clear();
}

void Sanitizer::on_barrier_all_arrived(const std::vector<int>& members) {
  if (!conflicts_enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  // Every member is blocked in the rendezvous except the caller, so the
  // join below observes a consistent snapshot of each member's clock.
  for (const int m : members) {
    ++vc_[static_cast<std::size_t>(m)][static_cast<std::size_t>(m)];
  }
  std::vector<std::uint64_t> joined(static_cast<std::size_t>(n_pes_), 0);
  for (const int m : members) {
    const auto& mv = vc_[static_cast<std::size_t>(m)];
    for (std::size_t i = 0; i < joined.size(); ++i) {
      joined[i] = std::max(joined[i], mv[i]);
    }
  }
  for (const int m : members) {
    vc_[static_cast<std::size_t>(m)] = joined;
    // A barrier completes all outstanding nonblocking transfers.
    shadow_[static_cast<std::size_t>(m)].open_nb.clear();
  }
  for (PeShadow& sh : shadow_) {
    std::erase_if(sh.open_remote, [&members](const OpenRemote& z) {
      return std::find(members.begin(), members.end(), z.issuer) !=
             members.end();
    });
  }
  ++counters_.epochs;
  purge_dead_records_locked();
}

void Sanitizer::purge_dead_records_locked() {
  // A record by PE p is dead once every *other* PE's view of p's epoch has
  // moved past the record's: any future access is then ordered after it.
  for (PeShadow& sh : shadow_) {
    std::erase_if(sh.ledger, [&](const Record& rec) {
      const auto p = static_cast<std::size_t>(rec.issuer);
      for (int q = 0; q < n_pes_; ++q) {
        if (q == rec.issuer) continue;
        if (vc_[static_cast<std::size_t>(q)][p] <= rec.vc[p]) return false;
      }
      return true;
    });
  }
}

std::uint64_t Sanitizer::epoch(int rank) const {
  if (!enabled()) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto r = static_cast<std::size_t>(rank);
  return vc_[r][r];
}

void Sanitizer::raise_locked(SanViolationKind kind, const char* fn,
                             int issuing_rank, int target_rank,
                             std::size_t offset, std::size_t bytes,
                             const std::string& detail, TraceChannel* trace) {
  ++counters_.violations;
  if (trace != nullptr) {
    trace->record(EventKind::kSanViolation, target_rank,
                  static_cast<std::uint64_t>(kind),
                  static_cast<std::uint64_t>(offset));
  }
  throw SanViolationError(
      strfmt("XbrSan[%s]: %s from PE %d %s", san_violation_name(kind), fn,
             issuing_rank, detail.c_str()),
      kind, fn, issuing_rank, target_rank, offset, bytes);
}

}  // namespace xbgas
