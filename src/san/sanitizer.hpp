#pragma once

// XbrSan — the opt-in runtime sanitizer for the xBGAS memory model.
//
// Two layers of checking (SanMode, docs/SANITIZER.md):
//
//  * Bounds + lifetime (kBounds): every remote transfer or AMO target that
//    resolves through resolve_symmetric is validated against a shadow of the
//    target PE's FreeListAllocator live-allocation map. Out-of-bounds spans,
//    spans straddling two allocations, and accesses to freed blocks throw a
//    typed SanViolationError *before* the copy lands, so the simulated heap
//    is never corrupted by the access being diagnosed.
//
//  * Epoch-based conflict detection (kFull): a per-target-PE access ledger
//    records (range, read/write/atomic, issuing rank, epoch) for every
//    remote transfer and AMO. Barriers advance each participant's epoch —
//    transitively, via per-PE vector clocks joined when a barrier's last
//    arriver releases it, so team (subset) barriers order exactly their
//    members. Two overlapping accesses from different PEs that no chain of
//    barriers separates, at least one of them a write, are reported with
//    both endpoints' context. Nonblocking transfers additionally leave their
//    local destination "open" until xbr_wait(), catching reads of an
//    xbr_get_nb landing zone before the wait.
//
// Concurrency: one mutex guards all sanitizer state. Every hook is a no-op
// behind a single predictable branch when the mode is kOff, preserving the
// disabled-path cost contract of the observability layer. Epoch joins run
// inside the barrier rendezvous (ClockSyncBarrier's all-arrived hook), when
// every member is blocked — the only moment the join is race-free *and*
// exact.
//
// The sanitizer deliberately depends only on common + trace so the machine
// layer can own one without a dependency cycle; hooks traffic in ranks and
// byte offsets, never in machine types.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "san/config.hpp"
#include "san/errors.hpp"
#include "trace/channel.hpp"

namespace xbgas {

/// How a remote access touches its target range.
enum class SanAccess : std::uint8_t {
  kRead,    ///< get: target range is read
  kWrite,   ///< put: target range is written
  kAtomic,  ///< AMO: atomic read-modify-write (never conflicts with itself)
};

constexpr const char* san_access_name(SanAccess a) {
  switch (a) {
    case SanAccess::kRead: return "read";
    case SanAccess::kWrite: return "write";
    case SanAccess::kAtomic: return "atomic";
  }
  return "unknown";
}

class Sanitizer {
 public:
  /// Point-in-time counter snapshot (collect_counters folds these into the
  /// machine-wide registry as san.*).
  struct Counters {
    std::uint64_t bounds_checks = 0;   ///< remote targets validated
    std::uint64_t ledger_records = 0;  ///< accesses recorded for conflicts
    std::uint64_t ledger_dropped = 0;  ///< records lost to the per-PE cap
    std::uint64_t epochs = 0;          ///< barrier epoch advances observed
    std::uint64_t nb_tracked = 0;      ///< nonblocking destinations tracked
    std::uint64_t violations = 0;      ///< SanViolationErrors raised
  };

  Sanitizer(const SanConfig& config, int n_pes);

  Sanitizer(const Sanitizer&) = delete;
  Sanitizer& operator=(const Sanitizer&) = delete;

  bool enabled() const { return config_.enabled(); }
  bool conflicts_enabled() const { return config_.conflicts_enabled(); }
  const SanConfig& config() const { return config_; }
  Counters counters() const;

  // -- Symmetric-heap lifetime mirror (hooks in xbrtime_malloc/free) --

  /// A symmetric block of `bytes` became live at `offset` on PE `rank`.
  void on_alloc(int rank, std::size_t offset, std::size_t bytes);

  /// The block at `offset` on PE `rank` was released.
  void on_free(int rank, std::size_t offset, std::size_t bytes);

  // -- Remote-access validation (hooks in rma_transfer / AMO entry) --

  /// Validate the remote range [offset, offset+bytes) of PE `target_rank`'s
  /// symmetric segment (`segment_bytes` long) for an access issued by
  /// `issuing_rank` via API entry `fn`. In bounds mode this is the
  /// bounds/lifetime check; in full mode the access is additionally recorded
  /// in the target's ledger and checked for same-epoch conflicts. Throws
  /// SanViolationError (after recording a kSanViolation trace event on
  /// `trace`) when a check fires. `issue_cycles` is the issuing PE's
  /// simulated clock, carried into conflict diagnostics.
  void check_remote(const char* fn, int issuing_rank, int target_rank,
                    std::size_t offset, std::size_t bytes,
                    std::size_t segment_bytes, SanAccess access,
                    std::uint64_t issue_cycles, TraceChannel* trace);

  // -- Nonblocking-hazard tracking (full mode; hooks in rma_transfer) --

  /// Record that the local range [p, p+bytes) on PE `rank` is the landing
  /// zone of an in-flight nonblocking transfer issued via `fn`. `req_id` is
  /// the request handle the zone belongs to (0 = the legacy _nb epoch,
  /// closed only by xbr_wait / a barrier).
  void note_nb_dest(const char* fn, int rank, const void* p, std::size_t bytes,
                    std::uint64_t req_id = 0);

  /// Record that the local range [p, p+bytes) on PE `rank` is the *source*
  /// of an in-flight nb-put: rewriting it before the request completes would
  /// retroactively change what the transfer sent (kNbWriteBeforeWait).
  void note_nb_src(const char* fn, int rank, const void* p, std::size_t bytes,
                   std::uint64_t req_id);

  /// Record that [offset, offset+bytes) of PE `target_rank`'s symmetric
  /// segment is the landing zone of an nb-put in flight from `issuing_rank`:
  /// any remote access overlapping it before the issuer's wait/fence can
  /// observe a half-landed transfer (kNbRemoteBeforeWait).
  void note_nb_remote(const char* fn, int issuing_rank, int target_rank,
                      std::size_t offset, std::size_t bytes,
                      std::uint64_t req_id);

  /// Record that the local range [p, p+bytes) on PE `rank` is the result
  /// buffer of an nbi collective that has not been waited on; any use before
  /// CollReq::wait raises kCollInFlight.
  void note_coll_dest(const char* fn, int rank, const void* p,
                      std::size_t bytes);

  /// Check a local-side use (read or write of [p, p+bytes)) by PE `rank`
  /// against its open nonblocking landing zones; throws kNbReadBeforeWait /
  /// kNbWriteBeforeWait / kCollInFlight depending on the zone class.
  void check_local(const char* fn, int rank, const void* p, std::size_t bytes,
                   bool is_write, TraceChannel* trace);

  /// xbr_wait / barrier on PE `rank`: all its nonblocking transfers are
  /// complete, so every zone it opened (local and remote) closes.
  void on_wait(int rank);

  /// xbr_wait_req on PE `rank`: only the zones tagged with `req_id` close.
  void on_wait_req(int rank, std::uint64_t req_id);

  // -- Epoch advancement (ClockSyncBarrier all-arrived hook) --

  /// Called by the last arriver of a barrier over world ranks `members`
  /// while every other member is still blocked in the rendezvous: advances
  /// each member's epoch, joins their vector clocks, and purges ledger
  /// records that are now ordered before every PE.
  void on_barrier_all_arrived(const std::vector<int>& members);

  /// PE `rank`'s own barrier count (its epoch), for tests and diagnostics.
  std::uint64_t epoch(int rank) const;

  // -- Recovery (Machine::run failure handling) --

  /// PE `rank` primarily failed. Its in-flight accesses can no longer be
  /// ordered by any future barrier, so its issued ledger records and open
  /// nonblocking landing zones are dropped — otherwise every survivor access
  /// after recovery (restore writes, re-run collectives) would false-
  /// positive against the dead PE's same-epoch traffic. Records issued BY
  /// survivors onto the dead PE's memory are kept: survivor-vs-survivor
  /// conflicts there are still real.
  void on_pe_failed(int rank);

 private:
  struct FreedBlock {
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };

  /// One remote access in a target PE's ledger.
  struct Record {
    std::size_t lo = 0;  ///< shared-segment byte range [lo, hi)
    std::size_t hi = 0;
    SanAccess access = SanAccess::kRead;
    int issuer = -1;
    const char* fn = "";
    std::uint64_t cycles = 0;            ///< issuer's clock at issue
    std::vector<std::uint64_t> vc;       ///< issuer's vector clock at issue
  };

  /// What a local open zone protects (which violation a touch raises).
  enum class ZoneKind : std::uint8_t {
    kDest,  ///< nb-get landing zone: any touch -> kNbReadBeforeWait
    kSrc,   ///< nb-put source: a *write* -> kNbWriteBeforeWait
    kColl,  ///< nbi-collective result buffer: any touch -> kCollInFlight
  };

  /// An open nonblocking zone on the issuing PE (host addresses). req_id 0
  /// marks the legacy _nb epoch, closed only by xbr_wait / a barrier.
  struct OpenNb {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    const char* fn = "";
    std::uint64_t req_id = 0;
    ZoneKind kind = ZoneKind::kDest;
  };

  /// An open nb-put landing zone in the *target's* symmetric segment
  /// (byte offsets), tagged with the issuing PE and its request id.
  struct OpenRemote {
    std::size_t lo = 0;
    std::size_t hi = 0;
    int issuer = -1;
    const char* fn = "";
    std::uint64_t req_id = 0;
  };

  struct PeShadow {
    std::map<std::size_t, std::size_t> live;  ///< offset -> bytes
    std::deque<FreedBlock> freed;             ///< bounded history
    std::vector<Record> ledger;               ///< remote accesses *onto* us
    std::vector<OpenNb> open_nb;              ///< our in-flight nb dests/srcs
    std::vector<OpenRemote> open_remote;      ///< nb-put zones *onto* us
  };

  void bounds_check_locked(const char* fn, int issuing_rank, int target_rank,
                           std::size_t lo, std::size_t hi, SanAccess access,
                           TraceChannel* trace);
  void conflict_check_locked(const char* fn, int issuing_rank, int target_rank,
                             std::size_t lo, std::size_t hi, SanAccess access,
                             std::uint64_t issue_cycles, TraceChannel* trace);
  void purge_dead_records_locked();
  [[noreturn]] void raise_locked(SanViolationKind kind, const char* fn,
                                 int issuing_rank, int target_rank,
                                 std::size_t offset, std::size_t bytes,
                                 const std::string& detail,
                                 TraceChannel* trace);

  const SanConfig config_;
  const int n_pes_;

  mutable std::mutex mutex_;
  std::vector<PeShadow> shadow_;                  ///< indexed by world rank
  std::vector<std::vector<std::uint64_t>> vc_;    ///< per-PE vector clocks
  Counters counters_;
};

}  // namespace xbgas
