// Write-combining RMA engine (ISSUE PR 8 tentpole: xbr_put_wc).
//
// Contracts under test:
//   1. Correctness: a GUPs-style storm of small puts lands bitwise-identical
//      with coalescing on and off (each writer owns a disjoint stripe of the
//      target, so the comparison is exact, and the sweep runs clean under
//      XbrSan full via the conformance-style harness below).
//   2. The modeled-cycle win: k small puts to one target cost one alpha
//      after coalescing instead of k, at least halving the storm's cycles.
//   3. Flush points: capacity overflow flushes automatically; a barrier is a
//      fence (remote data visible after it); xbr_wc_disable degrades
//      xbr_put_wc to plain blocking puts.
//   4. Determinism: the same storm twice produces identical modeled cycles.
//   5. rma.coalesced.* counters show real batching (messages > flushes).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "machine/machine.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/runtime.hpp"
#include "xbrtime/wc.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, SanMode mode = SanMode::kOff) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 1024 * 1024};
  c.san.mode = mode;
  return c;
}

/// Deterministic GUPs-style update: pure function of (seed, writer, i).
std::uint64_t gup_val(std::uint64_t seed, int writer, std::size_t i) {
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(writer) << 32) ^ i);
  return rng.next();
}

/// One storm: every PE scatters `updates` single-word puts round-robin over
/// the other PEs, into its own rank-owned stripe of each target's table
/// (disjoint stripes => no write races, exact bitwise comparison). Returns
/// the issuing PE's cycles spent in the storm (including the final fence).
std::uint64_t run_storm(PeContext& pe, std::uint64_t* table,
                        std::size_t slots_per_writer, std::size_t updates,
                        std::uint64_t seed, bool coalesce) {
  const int me = pe.rank();
  const int n = pe.n_pes();
  if (coalesce) xbr_wc_enable(/*threshold_bytes=*/64, /*capacity_entries=*/64);
  const std::uint64_t t0 = pe.clock().cycles();
  for (std::size_t i = 0; i < updates; ++i) {
    const int target = (me + 1 + static_cast<int>(i) % (n - 1)) % n;
    const std::size_t slot =
        static_cast<std::size_t>(me) * slots_per_writer + i % slots_per_writer;
    std::uint64_t v = gup_val(seed, me, i);
    xbr_put_wc(table + slot, &v, 1, 1, target);
  }
  xbr_fence();  // flushes the combiner and settles all modeled time
  const std::uint64_t spent = pe.clock().cycles() - t0;
  if (coalesce) xbr_wc_disable();
  return spent;
}

TEST(WriteCombinerTest, StormLandsBitwiseIdenticalOnAndOff) {
  constexpr int kPes = 4;
  constexpr std::size_t kSlots = 32;
  constexpr std::size_t kUpdates = 256;
  std::vector<std::uint64_t> table_off, table_on;
  std::uint64_t cycles_off = 0, cycles_on = 0;
  for (const bool coalesce : {false, true}) {
    Machine machine(config(kPes, SanMode::kFull));
    std::vector<std::uint64_t> snapshot;
    std::uint64_t spent = 0;
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      auto* table = static_cast<std::uint64_t*>(
          xbrtime_malloc(kPes * kSlots * sizeof(std::uint64_t)));
      for (std::size_t s = 0; s < kPes * kSlots; ++s) table[s] = 0;
      xbrtime_barrier();
      const std::uint64_t c =
          run_storm(pe, table, kSlots, kUpdates, 0x6a95ULL, coalesce);
      xbrtime_barrier();
      if (pe.rank() == 0) {
        spent = c;
        snapshot.assign(table, table + kPes * kSlots);
      }
      xbrtime_barrier();
      xbrtime_free(table);
      xbrtime_close();
    });
    ASSERT_EQ(machine.sanitizer().counters().violations, 0u);
    if (coalesce) {
      table_on = snapshot;
      cycles_on = spent;
    } else {
      table_off = snapshot;
      cycles_off = spent;
    }
  }
  // Bitwise-identical payloads on PE 0's table...
  ASSERT_EQ(table_on, table_off);
  // ...and the coalesced storm at least halves the modeled cycles.
  EXPECT_LE(2 * cycles_on, cycles_off)
      << "coalesced=" << cycles_on << " blocking=" << cycles_off;
}

TEST(WriteCombinerTest, CapacityOverflowFlushesAutomatically) {
  reset_wc_counters();
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(64 * sizeof(std::uint64_t)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_wc_enable(/*threshold_bytes=*/64, /*capacity_entries=*/8);
      for (std::size_t i = 0; i < 20; ++i) {
        std::uint64_t v = 100 + i;
        xbr_put_wc(buf + i, &v, 1, 1, 1);
      }
      // 20 enqueues over a capacity of 8 must have flushed at least twice
      // before any explicit fence.
      EXPECT_GE(wc_counters().flushes, 2u);
      xbr_wc_disable();
    }
    xbrtime_barrier();
    if (pe.rank() == 1) {
      for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(buf[i], 100 + i);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  const WcCounters c = wc_counters();
  EXPECT_EQ(c.puts, 20u);
  EXPECT_EQ(c.enqueued, 20u);
  EXPECT_EQ(c.messages, 20u);
  EXPECT_EQ(c.bytes, 20u * sizeof(std::uint64_t));
  EXPECT_GT(c.messages, c.flushes) << "no batching happened";
}

TEST(WriteCombinerTest, BarrierIsAFlushPointAndDisableDegradesToPut) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(8 * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < 8; ++i) buf[i] = 0;
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_wc_enable();
      std::uint64_t v = 42;
      xbr_put_wc(buf, &v, 1, 1, 1);
      EXPECT_TRUE(xbr_wc_enabled());
    }
    xbrtime_barrier();  // barrier = fence: the buffered put must be visible
    if (pe.rank() == 1) {
      EXPECT_EQ(buf[0], 42u);
    }
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_wc_disable();
      EXPECT_FALSE(xbr_wc_enabled());
      // Degraded path: a plain blocking put, visible after the next barrier
      // like any other (and ineligible calls — strided, oversized — fall
      // through the same way even while coalescing is on).
      std::uint64_t v = 43;
      xbr_put_wc(buf + 1, &v, 1, 1, 1);
    }
    xbrtime_barrier();
    if (pe.rank() == 1) {
      EXPECT_EQ(buf[1], 43u);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(WriteCombinerTest, IneligiblePutsFallThroughToBlockingPath) {
  reset_wc_counters();
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(64 * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < 64; ++i) buf[i] = 0;
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_wc_enable(/*threshold_bytes=*/16, /*capacity_entries=*/8);
      std::vector<std::uint64_t> src(32);
      for (std::size_t i = 0; i < 32; ++i) src[i] = 200 + i;
      // Strided: ineligible.
      xbr_put_wc(buf, src.data(), 4, 2, 1);
      // Over the 16-byte threshold: ineligible.
      xbr_put_wc(buf + 8, src.data() + 8, 8, 1, 1);
      // Local target: ineligible (pe == rank), still lands.
      xbr_put_wc(buf + 16, src.data() + 16, 2, 1, 0);
      xbr_wc_disable();
    }
    xbrtime_barrier();
    if (pe.rank() == 1) {
      // Strided RMA strides BOTH sides: element i moves src[i*stride] into
      // dest[i*stride].
      EXPECT_EQ(buf[0], 200u);
      EXPECT_EQ(buf[2], 202u);
      EXPECT_EQ(buf[8], 208u);
      EXPECT_EQ(buf[15], 215u);
    }
    if (pe.rank() == 0) {
      EXPECT_EQ(buf[16], 216u);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  const WcCounters c = wc_counters();
  EXPECT_EQ(c.puts, 3u);
  EXPECT_EQ(c.enqueued, 0u);  // every call fell through
}

TEST(WriteCombinerTest, SameSeedStormIsCycleDeterministic) {
  constexpr int kPes = 3;
  std::uint64_t first = 0;
  for (int run = 0; run < 2; ++run) {
    Machine machine(config(kPes));
    std::uint64_t spent = 0;
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      auto* table = static_cast<std::uint64_t*>(
          xbrtime_malloc(kPes * 16 * sizeof(std::uint64_t)));
      xbrtime_barrier();
      const std::uint64_t c =
          run_storm(pe, table, 16, 96, 0xdecafULL, /*coalesce=*/true);
      xbrtime_barrier();
      if (pe.rank() == 0) spent = c;
      xbrtime_barrier();
      xbrtime_free(table);
      xbrtime_close();
    });
    if (run == 0) {
      first = spent;
    } else {
      EXPECT_EQ(spent, first) << "coalesced storm must replay identically";
    }
  }
}

}  // namespace
}  // namespace xbgas
