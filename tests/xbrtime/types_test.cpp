#include "xbrtime/types.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <type_traits>

namespace xbgas {
namespace {

TEST(TypesTest, TableOneHasTwentyFourEntries) {
  int count = 0;
#define XBGAS_COUNT(NAME, TYPE) ++count;
  XBGAS_FOREACH_TYPE(XBGAS_COUNT)
#undef XBGAS_COUNT
  EXPECT_EQ(count, 24);
  EXPECT_EQ(count, kNumTypedNames);
}

TEST(TypesTest, NamesMatchPaperTableOrder) {
  const char* const* names = typed_names();
  // Spot-check the paper's Table 1 ordering: float first, ptrdiff last.
  EXPECT_STREQ(names[0], "float");
  EXPECT_STREQ(names[1], "double");
  EXPECT_STREQ(names[2], "longdouble");
  EXPECT_STREQ(names[3], "char");
  EXPECT_STREQ(names[9], "int");
  EXPECT_STREQ(names[22], "size");
  EXPECT_STREQ(names[23], "ptrdiff");
}

TEST(TypesTest, NamesAreUnique) {
  std::set<std::string> unique;
  for (int i = 0; i < kNumTypedNames; ++i) {
    unique.insert(typed_names()[i]);
  }
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kNumTypedNames));
}

TEST(TypesTest, CtypeSpellingsMatchTable) {
  const char* const* ctypes = typed_ctypes();
  EXPECT_STREQ(ctypes[2], "long double");
  EXPECT_STREQ(ctypes[4], "unsigned char");
  EXPECT_STREQ(ctypes[12], "unsigned long long");
}

// Compile-time checks that the macro maps TYPENAMEs to the right C++ types
// (mirrors the TYPE column of Table 1).
#define XBGAS_STATIC_TYPECHECK(NAME, TYPE) \
  [[maybe_unused]] void typecheck_##NAME(TYPE) {}
XBGAS_FOREACH_TYPE(XBGAS_STATIC_TYPECHECK)
#undef XBGAS_STATIC_TYPECHECK

TEST(TypesTest, TypeWidthsAreSane) {
  // Every fixed-width entry must have its advertised width.
  static_assert(sizeof(std::uint8_t) == 1);
  static_assert(sizeof(std::int16_t) == 2);
  static_assert(sizeof(std::uint32_t) == 4);
  static_assert(sizeof(std::int64_t) == 8);
  SUCCEED();
}

TEST(TypesTest, IntTypeSubsetIsIntegralOnly) {
  int total = 0;
#define XBGAS_CHECK_INTEGRAL(NAME, TYPE)          \
  static_assert(std::is_integral_v<TYPE>,         \
                "bitwise reduction type must be integral"); \
  ++total;
  XBGAS_FOREACH_INT_TYPE(XBGAS_CHECK_INTEGRAL)
#undef XBGAS_CHECK_INTEGRAL
  EXPECT_EQ(total, 21);  // 24 minus float, double, long double
}

}  // namespace
}  // namespace xbgas
