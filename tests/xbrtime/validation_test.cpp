#include "xbrtime/validation.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 512 * 1024};
  return c;
}

TEST(ValidationTest, IsaPutMatchesRuntimePut) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* via_isa = static_cast<std::uint64_t*>(
        xbrtime_malloc(64 * sizeof(std::uint64_t)));
    auto* via_rt = static_cast<std::uint64_t*>(
        xbrtime_malloc(64 * sizeof(std::uint64_t)));
    auto* src = static_cast<std::uint64_t*>(
        xbrtime_malloc(64 * sizeof(std::uint64_t)));
    for (int i = 0; i < 64; ++i) {
      src[i] = 0xBEEF0000u + static_cast<std::uint64_t>(pe.rank()) * 1000 +
               static_cast<std::uint64_t>(i);
    }
    xbrtime_barrier();

    if (pe.rank() == 0) {
      xbr_put(via_rt, src, 64, 1, 1);
      const IsaTransferResult r =
          isa_put(pe, via_isa, src, sizeof(std::uint64_t), 64, 1, 1,
                  /*unroll=*/false);
      EXPECT_GT(r.instructions, 64u * 2);  // at least one ld+esd per element
    }
    xbrtime_barrier();

    if (pe.rank() == 1) {
      // The fidelity path and the production path must have identical
      // memory effects.
      EXPECT_EQ(std::memcmp(via_isa, via_rt, 64 * sizeof(std::uint64_t)), 0);
      EXPECT_EQ(via_isa[7], 0xBEEF0000u + 7);
    }
    xbrtime_barrier();
    xbrtime_free(src);
    xbrtime_free(via_rt);
    xbrtime_free(via_isa);
    xbrtime_close();
  });
}

TEST(ValidationTest, IsaGetMatchesRuntimeGet) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* shared = static_cast<std::uint32_t*>(
        xbrtime_malloc(32 * sizeof(std::uint32_t)));
    auto* landed_isa = static_cast<std::uint32_t*>(
        xbrtime_malloc(32 * sizeof(std::uint32_t)));
    for (int i = 0; i < 32; ++i) {
      shared[i] = static_cast<std::uint32_t>(pe.rank() * 500 + i);
    }
    xbrtime_barrier();

    if (pe.rank() == 0) {
      std::vector<std::uint32_t> landed_rt(32);
      xbr_get(landed_rt.data(), shared, 32, 1, 1);
      (void)isa_get(pe, landed_isa, shared, sizeof(std::uint32_t), 32, 1, 1,
                    /*unroll=*/true);
      EXPECT_EQ(
          std::memcmp(landed_isa, landed_rt.data(), 32 * sizeof(std::uint32_t)),
          0);
      EXPECT_EQ(landed_isa[3], 503u);
    }
    xbrtime_barrier();
    xbrtime_free(landed_isa);
    xbrtime_free(shared);
    xbrtime_close();
  });
}

TEST(ValidationTest, StridedIsaTransfer) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    constexpr std::size_t kElems = 10;
    constexpr int kStride = 4;
    constexpr std::size_t kSpan = (kElems - 1) * kStride + 1;
    auto* dst = static_cast<std::uint16_t*>(
        xbrtime_malloc(kSpan * sizeof(std::uint16_t)));
    auto* src = static_cast<std::uint16_t*>(
        xbrtime_malloc(kSpan * sizeof(std::uint16_t)));
    std::memset(dst, 0, kSpan * sizeof(std::uint16_t));
    for (std::size_t i = 0; i < kElems; ++i) {
      src[i * kStride] = static_cast<std::uint16_t>(i + 1);
    }
    xbrtime_barrier();

    if (pe.rank() == 0) {
      (void)isa_put(pe, dst, src, sizeof(std::uint16_t), kElems, kStride, 1,
                    /*unroll=*/false);
    }
    xbrtime_barrier();

    if (pe.rank() == 1) {
      for (std::size_t i = 0; i < kSpan; ++i) {
        const std::uint16_t expected =
            (i % kStride == 0) ? static_cast<std::uint16_t>(i / kStride + 1)
                               : 0;
        EXPECT_EQ(dst[i], expected) << "position " << i;
      }
    }
    xbrtime_barrier();
    xbrtime_free(src);
    xbrtime_free(dst);
    xbrtime_close();
  });
}

TEST(ValidationTest, UnrollingReducesInstructionCount) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* dst = static_cast<std::uint64_t*>(
        xbrtime_malloc(256 * sizeof(std::uint64_t)));
    auto* src = static_cast<std::uint64_t*>(
        xbrtime_malloc(256 * sizeof(std::uint64_t)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      const auto rolled = isa_put(pe, dst, src, 8, 256, 1, 1, false);
      const auto unrolled = isa_put(pe, dst, src, 8, 256, 1, 1, true);
      // The x4-unrolled loop executes fewer bookkeeping instructions
      // (paper §3.3's rationale for unrolling past the threshold).
      EXPECT_LT(unrolled.instructions, rolled.instructions);
      EXPECT_LT(unrolled.cycles, rolled.cycles);
    }
    xbrtime_barrier();
    xbrtime_free(src);
    xbrtime_free(dst);
    xbrtime_close();
  });
}

TEST(ValidationTest, ProgramShapes) {
  // Structure checks on the generated programs themselves.
  const isa::Program plain = build_put_program(4096, 8192, 8, 5, 1, 3, false);
  const isa::Program unrolled =
      build_put_program(4096, 8192, 8, 16, 1, 3, true);
  EXPECT_GT(plain.size(), 0u);
  // 16 elements unrolled x4: body emits 4 pairs per chunk.
  EXPECT_LT(unrolled.size(), plain.size() + 16 * 2);
  // Zero-element transfer degenerates to setup + ecall.
  const isa::Program zero = build_put_program(0, 0, 8, 0, 1, 0, true);
  EXPECT_LE(zero.size(), 8u);
  EXPECT_EQ(zero.insts.back().op, isa::Op::kEcall);
}

TEST(ValidationTest, RejectsUnsupportedElementSizes) {
  Machine machine(config(1));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::byte*>(xbrtime_malloc(64));
    EXPECT_THROW(
        (void)isa_put(pe, buf, buf, /*elem_size=*/16, 1, 1, 0, false), Error);
    EXPECT_THROW(
        (void)isa_put(pe, buf, buf, /*elem_size=*/3, 1, 1, 0, false), Error);
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(ValidationTest, RejectsNonArenaOperands) {
  Machine machine(config(1));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    std::vector<std::uint64_t> host(8);
    auto* buf = static_cast<std::uint64_t*>(xbrtime_malloc(64));
    EXPECT_THROW((void)isa_put(pe, buf, host.data(), 8, 8, 1, 0, false),
                 Error);
    xbrtime_free(buf);
    xbrtime_close();
  });
}

}  // namespace
}  // namespace xbgas
