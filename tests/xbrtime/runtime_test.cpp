#include "xbrtime/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include <vector>

#include "common/error.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, std::size_t shared = 512 * 1024) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = shared};
  return c;
}

TEST(RuntimeTest, InitExposesRankAndSize) {
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    EXPECT_EQ(xbrtime_mype(), -1);  // before init
    EXPECT_EQ(xbrtime_init(), 0);
    EXPECT_EQ(xbrtime_mype(), pe.rank());
    EXPECT_EQ(xbrtime_num_pes(), 4);
    EXPECT_TRUE(xbrtime_initialized());
    xbrtime_close();
    EXPECT_FALSE(xbrtime_initialized());
    EXPECT_EQ(xbrtime_mype(), -1);
  });
}

TEST(RuntimeTest, ApisRequireInit) {
  Machine machine(config(1));
  machine.run([&](PeContext&) {
    EXPECT_THROW(xbrtime_barrier(), Error);
    EXPECT_THROW(xbrtime_malloc(64), Error);
    EXPECT_THROW(xbrtime_ctx(), Error);
  });
}

TEST(RuntimeTest, InitOutsideSpmdRegionThrows) {
  EXPECT_THROW(xbrtime_init(), Error);
}

TEST(RuntimeTest, DoubleInitThrows) {
  Machine machine(config(1));
  machine.run([&](PeContext&) {
    xbrtime_init();
    EXPECT_THROW(xbrtime_init(), Error);
    xbrtime_close();
  });
}

TEST(RuntimeTest, MallocReturnsSymmetricOffsets) {
  Machine machine(config(4));
  std::atomic<std::uintptr_t> offsets[3] = {};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    for (int i = 0; i < 3; ++i) {
      void* p = xbrtime_malloc(64 + static_cast<std::size_t>(i) * 128);
      ASSERT_NE(p, nullptr);
      const std::size_t off = pe.arena().shared_offset_of(p);
      if (pe.rank() == 0) {
        offsets[i].store(off);
      }
      xbrtime_barrier();
      EXPECT_EQ(off, offsets[i].load()) << "allocation " << i;
      xbrtime_barrier();
    }
    xbrtime_close();
  });
}

TEST(RuntimeTest, MallocFreeReuse) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    void* a = xbrtime_malloc(256);
    xbrtime_free(a);
    void* b = xbrtime_malloc(256);
    EXPECT_EQ(a, b);  // first-fit reuses the freed block symmetrically
    xbrtime_free(b);
    xbrtime_close();
  });
}

TEST(RuntimeTest, MallocExhaustionReturnsNullEverywhere) {
  Machine machine(config(2, /*shared=*/128 * 1024));
  machine.run([&](PeContext&) {
    xbrtime_init();
    // The staging region consumed a quarter; ask for far more than remains.
    void* p = xbrtime_malloc(1024 * 1024);
    EXPECT_EQ(p, nullptr);
    // The failed attempt must not corrupt the heap: a small alloc still works.
    void* q = xbrtime_malloc(64);
    EXPECT_NE(q, nullptr);
    xbrtime_free(q);
    xbrtime_close();
  });
}

TEST(RuntimeTest, AsymmetricMallocDetected) {
  Machine machine(config(2));
  EXPECT_THROW(machine.run([&](PeContext& pe) {
                 xbrtime_init();
                 if (pe.rank() == 0) {
                   (void)xbrtime_malloc(64);  // extra allocation on PE 0 only
                 }
                 (void)xbrtime_malloc(128);   // offsets now diverge
                 (void)xbrtime_malloc(128);
               }),
               Error);
}

TEST(RuntimeTest, BarrierSynchronizesClocks) {
  Machine machine(config(3));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    pe.clock().advance(static_cast<std::uint64_t>(pe.rank()) * 1000);
    xbrtime_barrier();
    const std::uint64_t after = pe.clock().cycles();
    xbrtime_barrier();
    // All PEs leave the first barrier with identical clocks.
    machine.validation_slot(pe.rank()) = after;
    xbrtime_barrier();
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(machine.validation_slot(r), after);
    }
    xbrtime_barrier();
    xbrtime_close();
  });
}

TEST(RuntimeTest, StageAllocLifo) {
  Machine machine(config(1));
  machine.run([&](PeContext&) {
    xbrtime_init();
    const std::size_t before = xbrtime_stage_avail();
    void* a = xbrtime_stage_alloc(100);
    void* b = xbrtime_stage_alloc(200);
    EXPECT_NE(a, b);
    EXPECT_LT(xbrtime_stage_avail(), before);
    // Out-of-order free violates LIFO.
    EXPECT_THROW(xbrtime_stage_free(a), Error);
    xbrtime_stage_free(b);
    xbrtime_stage_free(a);
    EXPECT_EQ(xbrtime_stage_avail(), before);
    xbrtime_close();
  });
}

TEST(RuntimeTest, StageAllocationsAreSymmetric) {
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    void* p = xbrtime_stage_alloc(512);
    machine.validation_slot(pe.rank()) = pe.arena().shared_offset_of(p);
    xbrtime_barrier();
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(machine.validation_slot(r),
                machine.validation_slot(pe.rank()));
    }
    xbrtime_barrier();
    xbrtime_stage_free(p);
    xbrtime_close();
  });
}

TEST(RuntimeTest, StageExhaustionThrows) {
  Machine machine(config(1, /*shared=*/128 * 1024));
  machine.run([&](PeContext&) {
    xbrtime_init();
    EXPECT_THROW((void)xbrtime_stage_alloc(1024 * 1024), Error);
    xbrtime_close();
  });
}

TEST(RuntimeTest, AddrAccessible) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    void* p = xbrtime_malloc(64);
    EXPECT_TRUE(xbrtime_addr_accessible(p, 0));
    EXPECT_TRUE(xbrtime_addr_accessible(p, 1));
    EXPECT_FALSE(xbrtime_addr_accessible(p, 2));   // no such PE
    int local = 0;
    EXPECT_FALSE(xbrtime_addr_accessible(&local, 1));
    EXPECT_FALSE(xbrtime_addr_accessible(pe.arena().private_base(), 1));
    xbrtime_free(p);
    xbrtime_close();
  });
}

TEST(RuntimeTest, StatsSnapshotTracksActivity) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    std::vector<long> host(64, 1);
    xbrtime_barrier();
    xbr_put(buf, host.data(), 64, 1, 1 - pe.rank());
    xbrtime_barrier();

    const XbrtimeStats stats = xbrtime_stats();
    EXPECT_EQ(stats.pe, pe.rank());
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GE(stats.olb_lookups, 1u);  // the remote put translated once
    EXPECT_EQ(stats.olb_hits + stats.olb_local_shortcuts, stats.olb_lookups);
    EXPECT_GE(stats.l1_hit_rate, 0.0);
    EXPECT_LE(stats.l1_hit_rate, 1.0);

    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

}  // namespace
}  // namespace xbgas
