// Explicit-handle nonblocking RMA (ISSUE PR 8 tentpole: xbr_*_nbi).
//
// Contracts under test:
//   1. xbr_put_nbi / xbr_get_nbi charge only the injection cost at issue and
//      return a live handle; xbr_wait_req advances the clock to that
//      request's horizon and retires it.
//   2. xbr_test never advances the clock; it retires a request whose horizon
//      has passed and reports false (without side effects) otherwise.
//   3. Many requests overlap: issuing k transfers then waiting them out of
//      issue order costs the max of the horizons, not the sum.
//   4. xbr_quiet retires everything outstanding; local (pe == rank) and
//      zero-length transfers complete at issue and return the null request.
//   5. The rma.nbi.* counters tally issues, tests, waits, and quiets.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "machine/machine.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 1024 * 1024};
  return c;
}

TEST(NbiRequestTest, PutNbiChargesInjectionAndWaitReqCompletes) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(256 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(256, 7);
      const std::uint64_t t0 = pe.clock().cycles();
      XbrRequest req = xbr_put_nbi(buf, src.data(), 256, 1, 1);
      EXPECT_FALSE(req.is_null());
      const std::uint64_t at_issue = pe.clock().cycles();
      const std::uint64_t horizon = pe.pending_completion();
      // Issue charges injection only; the wire cost is still ahead of us.
      EXPECT_EQ(at_issue - t0,
                pe.machine().network().params().injection_cycles);
      EXPECT_GT(horizon, at_issue);
      xbr_wait_req(req);
      EXPECT_EQ(pe.clock().cycles(), horizon);
      // Retiring the same handle again is a no-op.
      xbr_wait_req(req);
      EXPECT_EQ(pe.clock().cycles(), horizon);
    }
    xbrtime_barrier();
    if (pe.rank() == 1) {
      for (int i = 0; i < 256; ++i) EXPECT_EQ(buf[i], 7);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NbiRequestTest, TestIsNonAdvancingAndRetiresPassedRequests) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(128 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> land(128, 0);
      XbrRequest req = xbr_get_nbi(land.data(), buf, 128, 1, 1);
      const std::uint64_t at_issue = pe.clock().cycles();
      const std::uint64_t horizon = pe.pending_completion();
      ASSERT_GT(horizon, at_issue);
      // Horizon not reached: test must say no and must not move the clock.
      EXPECT_FALSE(xbr_test(req));
      EXPECT_EQ(pe.clock().cycles(), at_issue);
      // Once the clock has (independently) passed the horizon, test retires
      // the request and reports completion — still without advancing.
      pe.clock().advance(horizon - at_issue);
      EXPECT_TRUE(xbr_test(req));
      EXPECT_EQ(pe.clock().cycles(), horizon);
      EXPECT_TRUE(xbr_test(req));  // retired handles stay complete
      // The null request is trivially complete.
      EXPECT_TRUE(xbr_test(XbrRequest{}));
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NbiRequestTest, ManyInFlightWaitedOutOfOrderShareOneHorizon) {
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> a(64, 1), b(64, 2), c(64, 3);
      XbrRequest r1 = xbr_put_nbi(buf, a.data(), 64, 1, 1);
      XbrRequest r2 = xbr_put_nbi(buf, b.data(), 64, 1, 2);
      XbrRequest r3 = xbr_put_nbi(buf, c.data(), 64, 1, 3);
      const std::uint64_t horizon = pe.pending_completion();
      // Waiting out of issue order: each wait settles at ITS request's
      // horizon, and the overall cost is the shared max, not a sum of three
      // full wire latencies.
      xbr_wait_req(r3);
      xbr_wait_req(r1);
      xbr_wait_req(r2);
      EXPECT_EQ(pe.clock().cycles(), horizon);
    }
    xbrtime_barrier();
    if (pe.rank() >= 1) {
      EXPECT_EQ(buf[0], pe.rank());
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NbiRequestTest, QuietRetiresAllOutstandingRequests) {
  Machine machine(config(3));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(64, 9);
      XbrRequest r1 = xbr_put_nbi(buf, src.data(), 64, 1, 1);
      XbrRequest r2 = xbr_put_nbi(buf, src.data(), 64, 1, 2);
      const std::uint64_t horizon = pe.pending_completion();
      xbr_quiet();
      EXPECT_GE(pe.clock().cycles(), horizon);
      EXPECT_EQ(pe.pending_completion(), 0u);
      EXPECT_TRUE(xbr_test(r1));
      EXPECT_TRUE(xbr_test(r2));
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NbiRequestTest, LocalAndZeroLengthTransfersReturnNullRequests) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(32 * sizeof(long)));
    xbrtime_barrier();
    std::vector<long> src(32, 4);
    // pe == rank: the object-ID-0 local shortcut completes at issue.
    XbrRequest local = xbr_put_nbi(buf, src.data(), 32, 1, pe.rank());
    EXPECT_TRUE(local.is_null());
    EXPECT_TRUE(xbr_test(local));
    EXPECT_EQ(buf[0], 4);
    // Zero-length: touches no memory, completes at issue.
    XbrRequest empty =
        xbr_get_nbi(src.data(), buf, 0, 1, (pe.rank() + 1) % pe.n_pes());
    EXPECT_TRUE(empty.is_null());
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NbiRequestTest, CountersTallyIssuesTestsWaitsAndQuiets) {
  reset_rma_nbi_counters();
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(64, 1);
      XbrRequest p = xbr_put_nbi(buf, src.data(), 64, 1, 1);
      XbrRequest g = xbr_get_nbi(src.data(), buf, 64, 1, 1);
      (void)xbr_test(p);
      xbr_wait_req(p);
      xbr_wait_req(g);
      xbr_quiet();
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  const RmaNbiCounters c = rma_nbi_counters();
  EXPECT_EQ(c.puts, 1u);
  EXPECT_EQ(c.gets, 1u);
  EXPECT_EQ(c.tests, 1u);
  EXPECT_EQ(c.waits, 2u);
  EXPECT_EQ(c.quiets, 1u);
}

}  // namespace
}  // namespace xbgas
