#include "xbrtime/rma.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "xbrtime/api_c.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 1024 * 1024};
  return c;
}

TEST(RmaTest, PutDeliversToRemoteSymmetricBuffer) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    auto* buf = static_cast<int*>(xbrtime_malloc(16 * sizeof(int)));
    std::fill(buf, buf + 16, -1);
    xbrtime_barrier();

    if (xbrtime_mype() == 0) {
      std::vector<int> src(16);
      std::iota(src.begin(), src.end(), 100);
      xbr_put(buf, src.data(), 16, 1, 1);
    }
    xbrtime_barrier();

    if (xbrtime_mype() == 1) {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[i], 100 + i);
    } else {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[i], -1);  // own copy intact
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, GetPullsFromRemoteSymmetricBuffer) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    auto* buf = static_cast<double*>(xbrtime_malloc(8 * sizeof(double)));
    for (int i = 0; i < 8; ++i) {
      buf[i] = xbrtime_mype() * 100.0 + i;
    }
    xbrtime_barrier();

    std::vector<double> landed(8, -1.0);
    const int peer = 1 - xbrtime_mype();
    xbr_get(landed.data(), buf, 8, 1, peer);
    for (int i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(landed[static_cast<std::size_t>(i)], peer * 100.0 + i);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, StridedTransfersTouchOnlyStridePositions) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    constexpr int kStride = 3;
    constexpr int kElems = 5;
    constexpr int kSpan = (kElems - 1) * kStride + 1;
    auto* buf = static_cast<int*>(xbrtime_malloc(kSpan * sizeof(int)));
    std::fill(buf, buf + kSpan, 0);
    xbrtime_barrier();

    if (xbrtime_mype() == 0) {
      std::vector<int> src(kSpan, 0);
      for (int i = 0; i < kElems; ++i) src[static_cast<std::size_t>(i) * kStride] = i + 1;
      xbr_put(buf, src.data(), kElems, kStride, 1);
    }
    xbrtime_barrier();

    if (xbrtime_mype() == 1) {
      for (int i = 0; i < kSpan; ++i) {
        if (i % kStride == 0) {
          EXPECT_EQ(buf[i], i / kStride + 1) << "position " << i;
        } else {
          EXPECT_EQ(buf[i], 0) << "gap position " << i;
        }
      }
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, LocalPutIsAPlainCopy) {
  Machine machine(config(1));
  machine.run([&](PeContext&) {
    xbrtime_init();
    std::vector<int> src{1, 2, 3, 4};
    std::vector<int> dst(4, 0);
    xbr_put(dst.data(), src.data(), 4, 1, 0);  // pe == self, private buffers OK
    EXPECT_EQ(dst, src);
    xbrtime_close();
  });
}

TEST(RmaTest, OverlappingStridedLocalPutIsWellDefined) {
  // Regression: the strided copy path used memcpy per element. A local
  // (pe == self) put may legally have overlapping source and destination
  // ranges — here shifted by half an element — where memcpy is undefined
  // behavior (ASan's memcpy-param-overlap fires). The contract is a
  // sequential per-element memmove in increasing index order.
  Machine machine(config(1));
  machine.run([&](PeContext&) {
    xbrtime_init();
    constexpr std::size_t kElems = 6;
    constexpr int kStride = 2;
    constexpr std::size_t kStep = sizeof(std::uint64_t) * kStride;

    std::vector<std::uint64_t> buf(kElems * kStride + 2);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = 0x0101010101010101ULL * (i + 1);
    }
    std::vector<std::uint64_t> ref = buf;

    auto* base = reinterpret_cast<std::byte*>(buf.data());
    auto* src = reinterpret_cast<std::uint64_t*>(base);
    auto* dst = reinterpret_cast<std::uint64_t*>(base + 4);
    xbr_put(dst, src, kElems, kStride, 0);

    auto* rbase = reinterpret_cast<std::byte*>(ref.data());
    for (std::size_t i = 0; i < kElems; ++i) {
      std::memmove(rbase + 4 + i * kStep, rbase + i * kStep,
                   sizeof(std::uint64_t));
    }
    EXPECT_EQ(buf, ref);
    xbrtime_close();
  });
}

TEST(RmaTest, ZeroElementTransferIsANoOp) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<int*>(xbrtime_malloc(sizeof(int)));
    *buf = 7;
    xbrtime_barrier();
    const std::uint64_t before = pe.clock().cycles();
    xbr_put(buf, buf, 0, 1, 1 - pe.rank());
    EXPECT_EQ(pe.clock().cycles(), before);
    xbrtime_barrier();
    EXPECT_EQ(*buf, 7);
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, RemotePutRequiresSymmetricDest) {
  Machine machine(config(2));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 int local = 0;
                 int v = 1;
                 xbr_put(&local, &v, 1, 1, 1 - xbrtime_mype());
               }),
               Error);
}

TEST(RmaTest, ArgumentValidation) {
  Machine machine(config(1));
  machine.run([&](PeContext&) {
    xbrtime_init();
    int v = 0;
    EXPECT_THROW(xbr_put(&v, &v, 1, 1, 5), Error);   // bad PE
    EXPECT_THROW(xbr_put(&v, &v, 1, 0, 0), Error);   // bad stride
    EXPECT_THROW(xbr_put(&v, &v, 1, -2, 0), Error);  // bad stride
    xbrtime_close();
  });
}

TEST(RmaTest, NonblockingPutCompletesAtWait) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<int*>(xbrtime_malloc(1024 * sizeof(int)));
    std::vector<int> src(1024, 42);
    xbrtime_barrier();

    if (pe.rank() == 0) {
      const std::uint64_t t0 = pe.clock().cycles();
      xbr_put_nb(buf, src.data(), 1024, 1, 1);
      const std::uint64_t issue_elapsed = pe.clock().cycles() - t0;
      // Issue charges only injection, far below the full transfer cost.
      EXPECT_EQ(issue_elapsed,
                machine.network().params().injection_cycles);
      EXPECT_GT(pe.pending_completion(), pe.clock().cycles());
      xbr_wait();
      EXPECT_GE(pe.clock().cycles(),
                t0 + machine.network().put_cost(0, 1, 1024 * sizeof(int)));
      EXPECT_EQ(pe.pending_completion(), 0u);
    }
    xbrtime_barrier();
    if (pe.rank() == 1) {
      for (int i = 0; i < 1024; ++i) EXPECT_EQ(buf[i], 42);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, NonblockingTransfersOverlap) {
  Machine machine(config(3));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<int*>(xbrtime_malloc(4096 * sizeof(int)));
    std::vector<int> src(4096, 1);
    xbrtime_barrier();

    if (pe.rank() == 0) {
      // Two equal-size non-blocking puts to different PEs overlap: the total
      // elapsed time is strictly less than the same pair issued blocking.
      const std::uint64_t t0 = pe.clock().cycles();
      xbr_put(buf, src.data(), 4096, 1, 1);
      xbr_put(buf, src.data(), 4096, 1, 2);
      const std::uint64_t blocking_elapsed = pe.clock().cycles() - t0;

      const std::uint64_t t1 = pe.clock().cycles();
      xbr_put_nb(buf, src.data(), 4096, 1, 1);
      xbr_put_nb(buf, src.data(), 4096, 1, 2);
      xbr_wait();
      const std::uint64_t nb_elapsed = pe.clock().cycles() - t1;
      EXPECT_LT(nb_elapsed, blocking_elapsed);
      // And overlap means well under 2x one transfer: the pair finishes in
      // roughly one transfer time plus one injection.
      EXPECT_LT(nb_elapsed, blocking_elapsed * 3 / 4);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, BarrierImpliesWait) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<int*>(xbrtime_malloc(256 * sizeof(int)));
    std::vector<int> src(256, 9);
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_put_nb(buf, src.data(), 256, 1, 1);
      EXPECT_GT(pe.pending_completion(), 0u);
    }
    xbrtime_barrier();
    EXPECT_EQ(pe.pending_completion(), 0u);
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, AmoXorIsARemoteReadModifyWrite) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* word =
        static_cast<std::uint64_t*>(xbrtime_malloc(sizeof(std::uint64_t)));
    *word = 0xF0F0;
    xbrtime_barrier();
    if (pe.rank() == 0) {
      const std::uint64_t old = xbr_amo_xor(word, std::uint64_t{0x0F0F}, 1);
      EXPECT_EQ(old, 0xF0F0u);
    }
    xbrtime_barrier();
    if (pe.rank() == 1) {
      EXPECT_EQ(*word, 0xFFFFu);
    } else {
      EXPECT_EQ(*word, 0xF0F0u);
    }
    xbrtime_barrier();
    xbrtime_free(word);
    xbrtime_close();
  });
}

TEST(RmaTest, AmoAddAccumulatesAcrossPes) {
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* counter =
        static_cast<std::int64_t*>(xbrtime_malloc(sizeof(std::int64_t)));
    *counter = 0;
    xbrtime_barrier();
    // Everyone bumps PE 0's counter concurrently; atomicity keeps it exact.
    for (int i = 0; i < 100; ++i) {
      (void)xbr_amo_add(counter, std::int64_t{1}, 0);
    }
    xbrtime_barrier();
    if (pe.rank() == 0) {
      EXPECT_EQ(*counter, 400);
    }
    xbrtime_barrier();
    xbrtime_free(counter);
    xbrtime_close();
  });
}

TEST(RmaTest, TypedCApiWrappers) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    auto* fbuf = static_cast<float*>(xbrtime_malloc(4 * sizeof(float)));
    auto* lbuf = static_cast<long*>(xbrtime_malloc(4 * sizeof(long)));
    std::fill(fbuf, fbuf + 4, 0.0f);
    std::fill(lbuf, lbuf + 4, 0L);
    xbrtime_barrier();

    if (xbrtime_mype() == 0) {
      const float fsrc[4] = {1.5f, 2.5f, 3.5f, 4.5f};
      const long lsrc[4] = {10, 20, 30, 40};
      xbrtime_float_put(fbuf, fsrc, 4, 1, 1);
      xbrtime_long_put(lbuf, lsrc, 4, 1, 1);
    }
    xbrtime_barrier();

    if (xbrtime_mype() == 1) {
      EXPECT_FLOAT_EQ(fbuf[2], 3.5f);
      EXPECT_EQ(lbuf[3], 40L);
      float fback[4] = {};
      xbrtime_float_get(fback, fbuf, 4, 1, 1);  // self-get
      EXPECT_FLOAT_EQ(fback[0], 1.5f);
    }
    xbrtime_barrier();
    xbrtime_free(lbuf);
    xbrtime_free(fbuf);
    xbrtime_close();
  });
}

TEST(RmaTest, AtomicPutGetRoundTrip) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(8 * sizeof(std::uint64_t)));
    std::fill(buf, buf + 8, std::uint64_t{0});
    xbrtime_barrier();

    if (xbrtime_mype() == 0) {
      std::uint64_t src[8];
      for (std::uint64_t i = 0; i < 8; ++i) src[i] = 0x1000 + i;
      xbr_put_atomic(buf, src, 8, 1, 1);
      std::uint64_t back[8] = {};
      xbr_get_atomic(back, buf, 8, 1, 1);
      for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(back[i], 0x1000 + i);
    }
    xbrtime_barrier();
    if (xbrtime_mype() == 1) {
      for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 0x1000 + i);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(RmaTest, AtomicEntryPointsInteroperateWithAmos) {
  // A word stored with xbr_put_atomic can be bumped with xbr_amo_add and
  // read back with xbr_get_atomic — the serving data plane's exact op mix.
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    auto* slot = static_cast<std::uint64_t*>(
        xbrtime_malloc(sizeof(std::uint64_t)));
    *slot = 0;
    xbrtime_barrier();
    if (xbrtime_mype() == 0) {
      const std::uint64_t v = 500;
      xbr_put_atomic(slot, &v, 1, 1, 1);
      const std::uint64_t pre = xbr_amo_add(slot, std::uint64_t{7}, 1);
      EXPECT_EQ(pre, 500u);
      std::uint64_t got = 0;
      xbr_get_atomic(&got, slot, 1, 1, 1);
      EXPECT_EQ(got, 507u);
    }
    xbrtime_barrier();
    xbrtime_free(slot);
    xbrtime_close();
  });
}

TEST(RmaTest, AtomicEntryPointsRejectMisalignedBuffers) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();
    auto* raw = static_cast<unsigned char*>(xbrtime_malloc(64));
    xbrtime_barrier();
    if (xbrtime_mype() == 0) {
      // Offset by one byte: no longer naturally aligned for a 64-bit word.
      auto* misaligned = reinterpret_cast<std::uint64_t*>(raw + 1);
      std::uint64_t v = 1;
      EXPECT_THROW(xbr_put_atomic(misaligned, &v, 1, 1, 1), Error);
      EXPECT_THROW(xbr_get_atomic(&v, misaligned, 1, 1, 1), Error);
      // The local side must be aligned too.
      alignas(8) unsigned char local[16];
      auto* local_misaligned = reinterpret_cast<std::uint64_t*>(local + 1);
      auto* aligned = reinterpret_cast<std::uint64_t*>(raw);
      EXPECT_THROW(xbr_put_atomic(aligned, local_misaligned, 1, 1, 1), Error);
    }
    xbrtime_barrier();
    xbrtime_free(raw);
    xbrtime_close();
  });
}

}  // namespace
}  // namespace xbgas
