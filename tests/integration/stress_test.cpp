// Randomized stress: a long, seeded sequence of mixed collectives, RMA and
// staging traffic. Every PE derives the same operation sequence from the
// shared seed (SPMD discipline) and every operand value is a pure function
// of (op index, rank, position), so each PE can check every result exactly.
// Catches cross-collective interference: staging reuse, barrier pairing,
// clock reconciliation and buffer lifetime bugs that single-op tests miss.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "collectives/ring.hpp"
#include "common/rng.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 128 * 1024, .shared_bytes = 2 << 20};
  return c;
}

long value_of(int op_index, int rank, std::size_t i) {
  return op_index * 10000 + rank * 100 + static_cast<long>(i);
}

class StressTest : public ::testing::TestWithParam<int> {};

TEST_P(StressTest, LongMixedCollectiveSequence) {
  const int n = GetParam();
  constexpr int kOps = 60;
  Machine machine(config(n));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const int me = pe.rank();
    const auto un = static_cast<std::size_t>(n);
    constexpr std::size_t kMax = 64;

    auto* shared = static_cast<long*>(xbrtime_malloc(kMax * sizeof(long)));
    auto* aux = static_cast<long*>(xbrtime_malloc(kMax * sizeof(long)));
    Xoshiro256ss rng(2026);  // identical stream on every PE

    for (int op = 0; op < kOps; ++op) {
      const int kind = static_cast<int>(rng.next_below(6));
      const int root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto nelems = 1 + rng.next_below(kMax - 1);
      xbrtime_barrier();  // buffer-reuse fence between operations

      switch (kind) {
        case 0: {  // broadcast
          std::vector<long> src(nelems);
          for (std::size_t i = 0; i < nelems; ++i) {
            src[i] = value_of(op, root, i);
          }
          broadcast(shared, src.data(), nelems, 1, root);
          for (std::size_t i = 0; i < nelems; ++i) {
            ASSERT_EQ(shared[i], value_of(op, root, i)) << "op " << op;
          }
          break;
        }
        case 1: {  // reduce
          for (std::size_t i = 0; i < nelems; ++i) {
            shared[i] = value_of(op, me, i);
          }
          xbrtime_barrier();
          std::vector<long> out(nelems, -1);
          reduce<OpSum>(out.data(), shared, nelems, 1, root);
          if (me == root) {
            for (std::size_t i = 0; i < nelems; ++i) {
              long expected = 0;
              for (int r = 0; r < n; ++r) expected += value_of(op, r, i);
              ASSERT_EQ(out[i], expected) << "op " << op;
            }
          }
          break;
        }
        case 2: {  // scatter + gather round trip
          std::vector<int> msgs(un), disp(un);
          for (int r = 0; r < n; ++r) {
            msgs[static_cast<std::size_t>(r)] =
                static_cast<int>((nelems + static_cast<std::size_t>(r)) % 4);
          }
          std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
          const auto total = static_cast<std::size_t>(
              std::accumulate(msgs.begin(), msgs.end(), 0));
          std::vector<long> src(std::max<std::size_t>(total, 1));
          for (std::size_t i = 0; i < total; ++i) src[i] = value_of(op, 0, i);
          const auto mine =
              static_cast<std::size_t>(msgs[static_cast<std::size_t>(me)]);
          std::vector<long> slice(std::max<std::size_t>(mine, 1));
          std::vector<long> back(std::max<std::size_t>(total, 1), 0);
          scatter(slice.data(), src.data(), msgs.data(), disp.data(), total,
                  root);
          gather(back.data(), slice.data(), msgs.data(), disp.data(), total,
                 root);
          if (me == root) {
            for (std::size_t i = 0; i < total; ++i) {
              ASSERT_EQ(back[i], value_of(op, 0, i)) << "op " << op;
            }
          }
          break;
        }
        case 3: {  // reduce_all over aux
          for (std::size_t i = 0; i < nelems; ++i) {
            aux[i] = static_cast<long>(me) + static_cast<long>(i);
          }
          xbrtime_barrier();
          reduce_all<OpMax>(shared, aux, nelems, 1);
          for (std::size_t i = 0; i < nelems; ++i) {
            ASSERT_EQ(shared[i], n - 1 + static_cast<long>(i)) << "op " << op;
          }
          break;
        }
        case 4: {  // ring broadcast
          std::vector<long> src(nelems);
          for (std::size_t i = 0; i < nelems; ++i) {
            src[i] = value_of(op, root, i) + 1;
          }
          ring_broadcast(shared, src.data(), nelems, 1, root);
          for (std::size_t i = 0; i < nelems; ++i) {
            ASSERT_EQ(shared[i], value_of(op, root, i) + 1) << "op " << op;
          }
          break;
        }
        case 5: {  // raw RMA ring: pass a token around via put
          shared[0] = -1;
          xbrtime_barrier();  // sentinels in place before any put lands
          const long token = value_of(op, me, 0);
          xbr_put(shared, &token, 1, 1, (me + 1) % n);
          xbrtime_barrier();
          ASSERT_EQ(shared[0], value_of(op, (me - 1 + n) % n, 0))
              << "op " << op;
          break;
        }
        default:
          break;
      }
    }

    xbrtime_barrier();
    xbrtime_free(aux);
    xbrtime_free(shared);
    xbrtime_close();
  });
}

INSTANTIATE_TEST_SUITE_P(PeCounts, StressTest, ::testing::Values(1, 2, 3, 5, 8),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return "n" + std::to_string(tpi.param);
                         });

TEST(StressTest, DeterministicSimulatedTime) {
  // The stress sequence must produce identical simulated makespans across
  // two fresh machines — the determinism guarantee the whole evaluation
  // rests on.
  auto run_once = [] {
    Machine machine(config(4));
    machine.run([&](PeContext&) {
      xbrtime_init();
      auto* buf = static_cast<long*>(xbrtime_malloc(32 * sizeof(long)));
      Xoshiro256ss rng(7);
      for (int op = 0; op < 20; ++op) {
        std::vector<long> src(32, static_cast<long>(rng.next_below(100)));
        broadcast(buf, src.data(), 32, 1, static_cast<int>(rng.next_below(4)));
        reduce_all<OpSum>(buf, buf, 32, 1);
      }
      xbrtime_barrier();
      xbrtime_free(buf);
      xbrtime_close();
    });
    return machine.max_cycles();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xbgas
