// End-to-end survivor recovery (the PR's acceptance scenario) plus a
// seeded chaos soak: PEs die at scripted or pseudo-random points of a real
// workload; the survivors agree, shrink, restore, and finish with verified
// results — and the whole run is bit-identical when repeated.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "collectives/checkpoint.hpp"
#include "collectives/collectives.hpp"
#include "collectives/policy.hpp"
#include "collectives/shrink.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  c.fault = fault;
  return c;
}

std::uint64_t pattern(int rank, std::size_t i) {
  return static_cast<std::uint64_t>(rank) * 1000003 + i;
}

// ---------------------------------------------------------------------------
// Acceptance scenario: 12 PEs, two deaths at distinct points (one mid-RMA,
// one mid-barrier), one shrink wave to a 10-PE team, checkpoint/restore,
// and a verified allreduce on the survivors. Returned as a digest so the
// determinism test can compare two complete runs.
// ---------------------------------------------------------------------------

struct RunDigest {
  std::vector<std::vector<int>> rosters;  // per world rank
  std::vector<std::uint64_t> reduced;     // per world rank
  std::vector<int> verified;              // per world rank
  std::vector<int> failed_ranks;
  std::string health;
  std::uint64_t kills = 0;
  std::uint64_t agreements = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;

  bool operator==(const RunDigest& o) const {
    return rosters == o.rosters && reduced == o.reduced &&
           verified == o.verified && failed_ranks == o.failed_ranks &&
           health == o.health && kills == o.kills &&
           agreements == o.agreements && shrinks == o.shrinks &&
           checkpoints == o.checkpoints && restores == o.restores;
  }
};

RunDigest acceptance_run() {
  constexpr int kPes = 12;
  constexpr std::size_t kElems = 64;
  FaultConfig fc;
  // Barrier arrivals per PE: init = 3, data malloc = 2 (#4,#5), scratch
  // malloc = 2 (#6,#7), checkpoint = 2 (#8,#9), phase-A barrier = #10,
  // phase-B barrier = #11. Rank 7 issues 2 remote puts per phase, so its
  // 4th RMA is mid-phase-B; rank 3 dies arriving at the phase-B barrier.
  fc.kills.push_back(KillSpec{3, KillSite::kBarrier, 11});
  fc.kills.push_back(KillSpec{7, KillSite::kRma, 4});
  Machine machine(config(kPes, fc));

  RunDigest d;
  d.rosters.resize(kPes);
  d.reduced.assign(kPes, 0);
  d.verified.assign(kPes, 0);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* data = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    auto* scratch = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < kElems; ++i) {
      data[i] = pattern(pe.rank(), i);
      scratch[i] = 0;
    }
    xbr_checkpoint();

    const int right = (pe.rank() + 1) % kPes;
    try {
      // Phase A: two remote puts + barrier (#10) — everyone survives it.
      xbr_put(scratch, data, kElems / 2, 1, right);
      xbr_put(scratch + kElems / 2, data + kElems / 2, kElems / 2, 1, right);
      xbrtime_barrier();
      // Phase B: rank 7 dies at its 4th RMA; rank 3 dies at barrier #11.
      xbr_put(scratch, data, kElems / 2, 1, right);
      xbr_put(scratch + kElems / 2, data + kElems / 2, kElems / 2, 1, right);
      xbrtime_barrier();
      ADD_FAILURE() << "the phase-B barrier should have been poisoned";
    } catch (const PeFailedError&) {
      auto team = xbr_team_shrink();
      const auto me = static_cast<std::size_t>(pe.rank());
      d.rosters[me] = team->members();

      // The deaths may have left `data` half-streamed-over on some ranks;
      // prove the checkpoint brings it back.
      std::memset(data, 0xCD, kElems * sizeof(std::uint64_t));
      xbr_restore(*team);
      bool ok = true;
      for (std::size_t i = 0; i < kElems; ++i) {
        ok &= data[i] == pattern(pe.rank(), i);
      }

      // Survivors finish the job: a verified allreduce over the new team.
      for (std::size_t i = 0; i < kElems; ++i) {
        data[i] = static_cast<std::uint64_t>(pe.rank() + 1);
      }
      dispatch_reduce_all<OpSum>(scratch, data, kElems, 1, *team);
      std::uint64_t expect = 0;
      for (const int wr : team->members()) {
        expect += static_cast<std::uint64_t>(wr + 1);
      }
      for (std::size_t i = 0; i < kElems; ++i) ok &= scratch[i] == expect;
      d.reduced[me] = scratch[0];
      d.verified[me] = ok ? 1 : 0;
    }
  });

  d.failed_ranks = machine.failed_ranks();
  d.health = machine.health();
  const CounterRegistry counters = collect_counters(machine);
  d.kills = counters.get("fault.injected.kills").value();
  d.agreements = counters.get("recovery.agreements").value();
  d.shrinks = counters.get("recovery.shrinks").value();
  d.checkpoints = counters.get("recovery.checkpoints").value();
  d.restores = counters.get("recovery.restores").value();
  return d;
}

TEST(RecoveryIntegrationTest, TwoDeathsShrinkToTenSurvivorsWithGoldenResult) {
  const RunDigest d = acceptance_run();

  const std::vector<int> survivors{0, 1, 2, 4, 5, 6, 8, 9, 10, 11};
  std::uint64_t golden = 0;
  for (const int wr : survivors) golden += static_cast<std::uint64_t>(wr + 1);

  EXPECT_EQ(d.failed_ranks, (std::vector<int>{3, 7}));
  for (const int wr : survivors) {
    const auto i = static_cast<std::size_t>(wr);
    EXPECT_EQ(d.rosters[i], survivors) << "world rank " << wr;
    EXPECT_EQ(d.reduced[i], golden) << "world rank " << wr;
    EXPECT_EQ(d.verified[i], 1) << "world rank " << wr;
  }
  EXPECT_EQ(d.kills, 2u);
  EXPECT_EQ(d.agreements, 1u);
  EXPECT_EQ(d.shrinks, 1u);
  EXPECT_EQ(d.checkpoints, 1u);
  EXPECT_EQ(d.restores, 1u);
}

TEST(RecoveryIntegrationTest, AcceptanceScenarioIsDeterministic) {
  const RunDigest first = acceptance_run();
  const RunDigest second = acceptance_run();
  EXPECT_TRUE(first == second)
      << "two runs of the same fault plan diverged;\nfirst:\n"
      << first.health << "\nsecond:\n" << second.health;
}

// ---------------------------------------------------------------------------
// Chaos soak: kills derived from a SplitMix64 stream per seed. Whatever the
// plan, survivors must end on an agreed team with a verified allreduce, and
// the machine's books must balance (alive = n - kills that actually fired).
// ---------------------------------------------------------------------------

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// 1-2 kills on distinct ranks. Barrier kills land at arrival >= 10 so the
// symmetric setup (init + 2 mallocs + checkpoint = 9 arrivals) always
// completes; rma/agree kills can fire anywhere they are reached.
std::vector<KillSpec> derive_kills(std::uint64_t seed, int n_pes,
                                   int rounds) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  std::vector<KillSpec> kills;
  const int n_kills = 1 + static_cast<int>(splitmix64(s) % 2);
  std::vector<int> used;
  for (int i = 0; i < n_kills; ++i) {
    KillSpec k;
    do {
      k.rank = static_cast<int>(splitmix64(s) %
                                static_cast<std::uint64_t>(n_pes));
    } while (std::find(used.begin(), used.end(), k.rank) != used.end());
    used.push_back(k.rank);
    switch (splitmix64(s) % 3) {
      case 0:
        k.site = KillSite::kBarrier;
        k.at = 10 + splitmix64(s) %
                        static_cast<std::uint64_t>(
                            static_cast<unsigned>(rounds) + 4u);
        break;
      case 1:
        k.site = KillSite::kRma;
        k.at = 1 + splitmix64(s) % 8;
        break;
      default:
        k.site = KillSite::kAgree;
        k.at = 1 + splitmix64(s) % 2;
        break;
    }
    kills.push_back(k);
  }
  return kills;
}

void soak_one_seed(std::uint64_t seed) {
  constexpr int kPes = 6;
  constexpr int kRounds = 4;
  constexpr std::size_t kElems = 32;
  FaultConfig fc;
  fc.kills = derive_kills(seed, kPes, kRounds);
  Machine machine(config(kPes, fc));
  std::vector<int> bad(kPes, 0);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* data = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    auto* scratch = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < kElems; ++i) {
      data[i] = pattern(pe.rank(), i);
    }
    xbr_checkpoint();

    const auto me = static_cast<std::size_t>(pe.rank());
    std::unique_ptr<SurvivorTeam> team;  // null while the world is whole
    auto recover = [&] {
      // Both the shrink and the restore can themselves be interrupted by a
      // further death; retry until a quorum holds still long enough. With a
      // finite kill plan this terminates.
      for (;;) {
        try {
          team = team ? xbr_team_shrink(*team) : xbr_team_shrink();
          // Restore proves the heap survives any interruption point.
          std::memset(data, 0, kElems * sizeof(std::uint64_t));
          xbr_restore(*team);
          for (std::size_t i = 0; i < kElems; ++i) {
            if (data[i] != pattern(pe.rank(), i)) bad[me] = 1;
          }
          return;
        } catch (const PeFailedError&) {
        }
      }
    };

    for (int round = 0; round < kRounds; ++round) {
      bool done = false;
      while (!done) {
        try {
          for (std::size_t i = 0; i < kElems; ++i) {
            data[i] = static_cast<std::uint64_t>(pe.rank() + 1 + round);
          }
          // Verify *before* the closing barrier: once a neighbour passes
          // it, its next-round put may land in this PE's scratch.
          std::uint64_t expect = 0;
          if (team) {
            dispatch_reduce_all<OpSum>(scratch, data, kElems, 1, *team);
            for (const int wr : team->members()) {
              expect += static_cast<std::uint64_t>(wr + 1 + round);
            }
            for (std::size_t i = 0; i < kElems; ++i) {
              if (scratch[i] != expect) bad[me] = 1;
            }
            team->barrier();
          } else {
            // Healthy path: a remote put to the neighbor plus a world
            // reduce keeps both rma and barrier kill sites live. The
            // barrier drains the puts before the reduce reuses scratch.
            xbr_put(scratch, data, kElems, 1, (pe.rank() + 1) % kPes);
            xbrtime_barrier();
            dispatch_reduce_all<OpSum>(scratch, data, kElems, 1);
            for (int wr = 0; wr < kPes; ++wr) {
              expect += static_cast<std::uint64_t>(wr + 1 + round);
            }
            for (std::size_t i = 0; i < kElems; ++i) {
              if (scratch[i] != expect) bad[me] = 1;
            }
            xbrtime_barrier();
          }
          done = true;
        } catch (const PeFailedError&) {
          recover();
        }
      }
    }
  });

  const CounterRegistry counters = collect_counters(machine);
  const auto fired = counters.get("fault.injected.kills").value();
  EXPECT_EQ(machine.n_alive(),
            kPes - static_cast<int>(fired))
      << "seed " << seed << ": books must balance\n" << machine.health();
  EXPECT_EQ(machine.failed_ranks().size(), fired) << "seed " << seed;
  for (int r = 0; r < kPes; ++r) {
    if (machine.alive(r)) {
      EXPECT_EQ(bad[static_cast<std::size_t>(r)], 0)
          << "seed " << seed << ": survivor rank " << r
          << " saw a wrong reduction or a bad restore";
    }
  }
}

TEST(RecoveryIntegrationTest, ChaosSoakTwentyFourSeeds) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    soak_one_seed(seed);
  }
}

}  // namespace
}  // namespace xbgas
