// Failure injection: a dying PE must never deadlock the machine — barriers
// are poisoned and the original error surfaces from Machine::run.

#include <gtest/gtest.h>

#include <string>

#include "collectives/collectives.hpp"
#include "collectives/team.hpp"
#include "common/error.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 512 * 1024};
  return c;
}

TEST(FailureTest, DeathDuringBarrierReleasesPeers) {
  Machine machine(config(4));
  try {
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      if (pe.rank() == 1) throw Error("injected failure on PE 1");
      xbrtime_barrier();  // would deadlock without poisoning
    });
    FAIL() << "expected the injected failure to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected failure"),
              std::string::npos);
  }
}

TEST(FailureTest, DeathMidCollectiveReleasesPeers) {
  Machine machine(config(8));
  EXPECT_THROW(machine.run([&](PeContext& pe) {
                 xbrtime_init();
                 auto* buf = static_cast<int*>(xbrtime_malloc(64));
                 if (pe.rank() == 5) throw Error("mid-collective death");
                 int src[16] = {};
                 broadcast(static_cast<int*>(buf), src, 16, 1, 0);
               }),
               Error);
}

TEST(FailureTest, DeathReleasesTeamBarrierWaiters) {
  Machine machine(config(4));
  EXPECT_THROW(machine.run([&](PeContext& pe) {
                 xbrtime_init();
                 if (pe.rank() == 3) return;  // not a team member
                 Team team(0, 1, 3);          // PEs 0-2 rendezvous here
                 if (pe.rank() == 1) throw Error("member died");
                 // PEs 0 and 2 now wait on a barrier PE 1 will never reach;
                 // only barrier poisoning can release them.
                 team.barrier();
               }),
               Error);
}

TEST(FailureTest, FirstErrorWins) {
  Machine machine(config(4));
  try {
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      // Everyone throws; exactly one (the first) must surface.
      throw Error("PE " + std::to_string(pe.rank()) + " failed");
    });
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
  }
}

TEST(FailureTest, MachineUnusableBarrierStaysPoisoned) {
  Machine machine(config(2));
  EXPECT_THROW(machine.run([&](PeContext& pe) {
                 xbrtime_init();
                 if (pe.rank() == 0) throw Error("boom");
                 xbrtime_barrier();
               }),
               Error);
  // The world barrier stays poisoned: subsequent SPMD regions that hit it
  // fail fast instead of hanging.
  EXPECT_TRUE(machine.world_barrier().poisoned());
}

TEST(FailureTest, RmaContractViolationsPropagate) {
  Machine machine(config(2));
  EXPECT_THROW(machine.run([&](PeContext& pe) {
                 xbrtime_init();
                 int private_buf[4] = {};
                 int src[4] = {};
                 // Remote put into a non-symmetric address must throw on
                 // every PE (same code path), so no PE is left waiting.
                 xbr_put(private_buf, src, 4, 1, 1 - pe.rank());
               }),
               Error);
}

}  // namespace
}  // namespace xbgas
