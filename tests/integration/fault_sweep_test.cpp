// Randomized fault sweep: across a grid of seeds x fault rates, collectives
// must either complete with correct data on every PE or unwind with the same
// typed error on every PE — never hang, never silently corrupt. A barrier
// watchdog is armed in every cell so a regression that would deadlock shows
// up as a diagnosed BarrierTimeoutError instead of a stuck test run.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "collectives/collectives.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

constexpr int kPes = 4;
constexpr std::size_t kElems = 32;

MachineConfig sweep_config(const FaultConfig& fault) {
  MachineConfig c;
  c.n_pes = kPes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 512 * 1024};
  c.fault = fault;
  if (c.fault.barrier_timeout_ms == 0) {
    c.fault.barrier_timeout_ms = 20000;  // hang => diagnosis, not a stuck job
  }
  return c;
}

/// Broadcast from root, then reduce_sum back to root; every PE validates
/// everything it can see and reports into `ok[rank]`.
void collective_round_body(PeContext& pe, std::vector<char>* ok) {
  xbrtime_init();
  const std::size_t bytes = kElems * sizeof(std::uint64_t);
  auto* bcast = static_cast<std::uint64_t*>(xbrtime_malloc(bytes));
  auto* contrib = static_cast<std::uint64_t*>(xbrtime_malloc(bytes));
  auto* sum = static_cast<std::uint64_t*>(xbrtime_malloc(bytes));
  std::uint64_t src[kElems];
  bool good = true;
  for (int root = 0; root < kPes; ++root) {
    for (std::size_t i = 0; i < kElems; ++i) {
      src[i] = pe.rank() == root ? 1000 * static_cast<std::uint64_t>(root) + i
                                 : 0;
      bcast[i] = 0;
      contrib[i] = static_cast<std::uint64_t>(pe.rank()) + i;
      sum[i] = 0;
    }
    xbrtime_barrier();  // dest zeroed everywhere before any peer's put lands
    broadcast(bcast, src, kElems, 1, root);
    for (std::size_t i = 0; i < kElems; ++i) {
      good &= bcast[i] == 1000 * static_cast<std::uint64_t>(root) + i;
    }
    reduce_sum(sum, contrib, kElems, 1, root);
    if (pe.rank() == root) {
      for (std::size_t i = 0; i < kElems; ++i) {
        // sum over ranks r of (r + i)
        const std::uint64_t want =
            kPes * (kPes - 1) / 2 + kPes * static_cast<std::uint64_t>(i);
        good &= sum[i] == want;
      }
    }
  }
  xbrtime_barrier();
  xbrtime_free(sum);
  xbrtime_free(contrib);
  xbrtime_free(bcast);
  xbrtime_close();
  (*ok)[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
}

/// Run one sweep cell. Returns "ok" when the region completed with correct
/// data everywhere, or "failed" when it unwound with the expected typed
/// composite; any other outcome fails the test.
std::string run_cell(const FaultConfig& fc) {
  Machine machine(sweep_config(fc));
  std::vector<char> ok(kPes, 0);
  try {
    machine.run([&](PeContext& pe) { collective_round_body(pe, &ok); });
  } catch (const SpmdRegionError& e) {
    // Unwinding is acceptable — but it must be coherent: at least one
    // primary whose cause is the injected fault class, and every secondary
    // reporting the fail-fast protocol (a named dead PE), never a timeout.
    EXPECT_FALSE(e.failures().empty());
    bool saw_primary = false;
    for (const PeFailure& f : e.failures()) {
      if (!f.secondary) {
        saw_primary = true;
        EXPECT_NE(f.what.find("retries exhausted"), std::string::npos)
            << "unexpected primary cause: " << f.what;
      } else {
        EXPECT_NE(f.what.find("failed"), std::string::npos);
      }
      EXPECT_EQ(f.what.find("watchdog"), std::string::npos)
          << "a watchdog timeout means a survivor hung instead of "
             "failing fast: "
          << f.what;
    }
    EXPECT_TRUE(saw_primary);
    EXPECT_GT(machine.failed_ranks().size(), 0u);
    return "failed";
  }
  for (int r = 0; r < kPes; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)])
        << "PE " << r << " saw corrupted collective data";
  }
  return "ok";
}

TEST(FaultSweepTest, DropRateGridCompletesOrFailsCleanly) {
  const std::uint64_t seeds[] = {1, 7, 42, 1234};
  const double rates[] = {0.0, 0.02, 0.2, 0.6};
  int completed = 0;
  int unwound = 0;
  for (const std::uint64_t seed : seeds) {
    for (const double rate : rates) {
      FaultConfig fc;
      fc.seed = seed;
      fc.rma_drop_prob = rate;
      fc.max_rma_retries = 5;
      const std::string outcome = run_cell(fc);
      completed += outcome == "ok" ? 1 : 0;
      unwound += outcome == "failed" ? 1 : 0;
      // Determinism: the same cell must reproduce the same outcome.
      EXPECT_EQ(run_cell(fc), outcome) << "seed " << seed << " rate " << rate;
    }
  }
  // The grid must exercise the success path (rate 0 always completes); the
  // high-rate cells may unwind, and both paths were validated above.
  EXPECT_GE(completed, static_cast<int>(std::size(seeds)));
  EXPECT_EQ(completed + unwound,
            static_cast<int>(std::size(seeds) * std::size(rates)));
}

TEST(FaultSweepTest, MixedFaultGridNeverSilentlyCorrupts) {
  // Bit-flips with checksums on, plus drops and OLB faults: whatever the
  // mix does, data observed by the application is never wrong.
  const std::uint64_t seeds[] = {3, 9, 77};
  for (const std::uint64_t seed : seeds) {
    FaultConfig fc;
    fc.seed = seed;
    fc.rma_drop_prob = 0.05;
    fc.rma_bitflip_prob = 0.1;
    fc.olb_fault_prob = 0.05;
    fc.verify_checksum = true;
    fc.max_rma_retries = 16;
    Machine machine(sweep_config(fc));
    std::vector<char> ok(kPes, 0);
    machine.run([&](PeContext& pe) { collective_round_body(pe, &ok); });
    for (int r = 0; r < kPes; ++r) {
      EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "PE " << r;
    }
    const CounterRegistry counters = collect_counters(machine);
    EXPECT_EQ(counters.get("rma.checksum_failures").value(),
              counters.get("fault.injected.bitflip").value())
        << "every injected flip must be caught by verification";
  }
}

TEST(FaultSweepTest, KillEachRankMidCollective) {
  // Scripted kill sweep: whichever rank dies, every survivor reports the
  // same dead PE and the machine's health view agrees. No cell may hang.
  for (int victim = 0; victim < kPes; ++victim) {
    FaultConfig fc;
    fc.kill_site = KillSite::kRma;
    fc.kill_rank = victim;
    fc.kill_at = 3;
    Machine machine(sweep_config(fc));
    std::vector<char> ok(kPes, 0);
    try {
      machine.run([&](PeContext& pe) { collective_round_body(pe, &ok); });
      FAIL() << "scripted kill of rank " << victim << " must propagate";
    } catch (const SpmdRegionError& e) {
      ASSERT_FALSE(e.failures().empty());
      const PeFailure& primary = e.failures().front();
      EXPECT_EQ(primary.rank, victim);
      EXPECT_FALSE(primary.secondary);
      EXPECT_NE(primary.what.find("scripted fault"), std::string::npos);
      const std::string dead_tag = "PE " + std::to_string(victim) + " failed";
      for (const PeFailure& f : e.failures()) {
        if (f.rank == victim) continue;
        EXPECT_TRUE(f.secondary);
        EXPECT_NE(f.what.find(dead_tag), std::string::npos);
      }
    }
    EXPECT_FALSE(machine.alive(victim));
    EXPECT_EQ(machine.failed_ranks(), std::vector<int>{victim});
  }
}

}  // namespace
}  // namespace xbgas
