#include "benchlib/nasis.hpp"

#include <gtest/gtest.h>

namespace xbgas {
namespace {

MachineConfig is_config(int n_pes, IsClass cls) {
  MachineConfig config;
  config.n_pes = n_pes;
  config.layout =
      MemoryLayout{.private_bytes = std::size_t{4} << 20,
                   .shared_bytes = is_shared_bytes_needed(cls, n_pes)};
  return config;
}

TEST(NasIsIntegrationTest, ClassParams) {
  EXPECT_EQ(is_class_params(IsClass::kS).total_keys, std::uint64_t{1} << 16);
  EXPECT_EQ(is_class_params(IsClass::kS).max_key, 1 << 11);
  EXPECT_EQ(is_class_params(IsClass::kB).total_keys, std::uint64_t{1} << 25);
  EXPECT_EQ(is_class_params(IsClass::kB).max_key, 1 << 21);
  EXPECT_STREQ(is_class_name(IsClass::kW), "W");
}

TEST(NasIsIntegrationTest, ClassSVerifiesAtEveryPeCount) {
  for (const int n : {1, 2, 4, 8}) {
    Machine machine(is_config(n, IsClass::kS));
    IsConfig config;
    config.cls = IsClass::kS;
    config.iterations = 2;  // keep the test quick; the bench runs 10
    const IsResult result = run_is(machine, config);
    EXPECT_TRUE(result.verified) << n << " PEs";
    EXPECT_EQ(result.total_keys, std::uint64_t{1} << 16);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.mops_total, 0.0);
  }
}

TEST(NasIsIntegrationTest, DeterministicAcrossRuns) {
  IsConfig config;
  config.cls = IsClass::kS;
  config.iterations = 2;
  Machine m1(is_config(4, IsClass::kS)), m2(is_config(4, IsClass::kS));
  const IsResult a = run_is(m1, config);
  const IsResult b = run_is(m2, config);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.verified, b.verified);
}

TEST(NasIsIntegrationTest, MoreIterationsCostProportionallyMore) {
  Machine machine(is_config(2, IsClass::kS));
  IsConfig one;
  one.cls = IsClass::kS;
  one.iterations = 1;
  IsConfig three = one;
  three.iterations = 3;
  const auto c1 = run_is(machine, one).cycles;
  const auto c3 = run_is(machine, three).cycles;
  EXPECT_GT(c3, 2 * c1);
  EXPECT_LT(c3, 4 * c1);
}

TEST(NasIsIntegrationTest, ClassWRunsAtEightPes) {
  Machine machine(is_config(8, IsClass::kW));
  IsConfig config;
  config.cls = IsClass::kW;
  config.iterations = 1;
  const IsResult result = run_is(machine, config);
  EXPECT_TRUE(result.verified);
}

}  // namespace
}  // namespace xbgas
