// Whole-stack integration: drive the ISA fidelity path and the runtime fast
// path through the same collective-style data movement and check they agree;
// exercise an end-to-end mini-application mixing every API layer.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "isa/hart.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/validation.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 256 * 1024, .shared_bytes = 2 << 20};
  return c;
}

TEST(StackTest, InterpretedBroadcastStageMatchesRuntime) {
  // Re-enact one stage of Algorithm 1 (root puts to its partner) through
  // the interpreter, and the rest via the runtime: the final state must
  // equal a full runtime broadcast.
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* via_rt = static_cast<std::uint64_t*>(
        xbrtime_malloc(16 * sizeof(std::uint64_t)));
    auto* via_mix = static_cast<std::uint64_t*>(
        xbrtime_malloc(16 * sizeof(std::uint64_t)));
    std::vector<std::uint64_t> src(16);
    std::iota(src.begin(), src.end(), 7000);

    xbrtime_barrier();
    broadcast(via_rt, src.data(), 16, 1, 0);

    // Mixed path: stage 0 (0 -> 2) interpreted, then puts for the rest.
    if (pe.rank() == 0) {
      std::copy(src.begin(), src.end(), via_mix);
      (void)isa_put(pe, via_mix, via_mix, 8, 16, 1, 2, /*unroll=*/true);
    }
    xbrtime_barrier();
    if (pe.rank() == 0) xbr_put(via_mix, via_mix, 16, 1, 1);
    if (pe.rank() == 2) xbr_put(via_mix, via_mix, 16, 1, 3);
    xbrtime_barrier();

    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(via_mix[i], via_rt[i]) << "pe=" << pe.rank() << " i=" << i;
    }
    xbrtime_barrier();
    xbrtime_free(via_mix);
    xbrtime_free(via_rt);
    xbrtime_close();
  });
}

TEST(StackTest, HartsOnEveryPeComputeAndExchange) {
  // Each PE runs an interpreted program that stores rank^2 into its own
  // shared counter; the runtime then reduces the counters.
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* counter =
        static_cast<std::uint64_t*>(xbrtime_malloc(sizeof(std::uint64_t)));
    const std::uint64_t addr = static_cast<std::uint64_t>(
        reinterpret_cast<std::byte*>(counter) - pe.arena().base());

    isa::ProgramBuilder b;
    b.li(5, pe.rank());
    b.mul(6, 5, 5);
    b.li(7, static_cast<std::int64_t>(addr));
    b.sd(6, 7, 0);
    b.ecall();
    isa::Hart hart(pe.port());
    hart.load_program(b.build());
    ASSERT_EQ(hart.run(), isa::Hart::Halt::kEcall);
    pe.clock().advance(hart.cycles());

    xbrtime_barrier();
    auto* total =
        static_cast<std::uint64_t*>(xbrtime_malloc(sizeof(std::uint64_t)));
    reduce_all<OpSum>(total, counter, 1, 1);
    EXPECT_EQ(*total, 0u + 1 + 4 + 9);
    xbrtime_barrier();
    xbrtime_free(total);
    xbrtime_free(counter);
    xbrtime_close();
  });
}

TEST(StackTest, InterpretedRemoteStoreVisibleToPeerHart) {
  // PE 0's hart stores through the OLB into PE 1's segment; PE 1's hart
  // loads it back locally.
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* slot =
        static_cast<std::uint64_t*>(xbrtime_malloc(sizeof(std::uint64_t)));
    *slot = 0;
    const std::uint64_t addr = static_cast<std::uint64_t>(
        reinterpret_cast<std::byte*>(slot) - pe.arena().base());
    xbrtime_barrier();

    if (pe.rank() == 0) {
      isa::ProgramBuilder b;
      b.li(7, static_cast<std::int64_t>(object_id_for_pe(1)));
      b.eaddie(6, 7, 0);
      b.li(6, static_cast<std::int64_t>(addr));
      b.li(8, 0x5A5A);
      b.esd(8, 6, 0);
      b.ecall();
      isa::Hart hart(pe.port());
      hart.load_program(b.build());
      ASSERT_EQ(hart.run(), isa::Hart::Halt::kEcall);
      EXPECT_EQ(hart.stats().remote_stores, 1u);
    }
    xbrtime_barrier();

    if (pe.rank() == 1) {
      isa::ProgramBuilder b;
      b.li(6, static_cast<std::int64_t>(addr));
      b.eld(5, 6, 0);  // e6 == 0: local load through the xBGAS form
      b.ecall();
      isa::Hart hart(pe.port());
      hart.load_program(b.build());
      ASSERT_EQ(hart.run(), isa::Hart::Halt::kEcall);
      EXPECT_EQ(hart.regs().x(5), 0x5A5Au);
      EXPECT_EQ(hart.stats().remote_loads, 0u);
    }
    xbrtime_barrier();
    xbrtime_free(slot);
    xbrtime_close();
  });
}

TEST(StackTest, EndToEndMiniApplication) {
  // A miniature "histogram" app touching every layer: scatter work, local
  // compute, gather results, broadcast a summary, verify with reduce.
  const int n = 5;
  Machine machine(config(n));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const int me = pe.rank();

    std::vector<int> msgs(n), disp(n);
    for (int r = 0; r < n; ++r) msgs[static_cast<std::size_t>(r)] = 4 + r;
    std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
    const auto total = static_cast<std::size_t>(
        std::accumulate(msgs.begin(), msgs.end(), 0));

    std::vector<long> work(total);
    std::iota(work.begin(), work.end(), 1);  // 1..total on the root

    const auto mine = static_cast<std::size_t>(msgs[static_cast<std::size_t>(me)]);
    std::vector<long> slice(mine);
    scatter(slice.data(), work.data(), msgs.data(), disp.data(), total, 0);

    // Local compute: square each element.
    for (auto& v : slice) v *= v;

    std::vector<long> squares(total);
    gather(squares.data(), slice.data(), msgs.data(), disp.data(), total, 0);

    auto* checksum = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    long expected_checksum = 0;
    if (me == 0) {
      for (const long v : squares) expected_checksum += v;
      *checksum = expected_checksum;
    }
    broadcast(checksum, checksum, 1, 1, 0);

    // Independent verification path: reduce the per-PE partial sums.
    auto* partial = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    *partial = std::accumulate(slice.begin(), slice.end(), 0L);
    auto* rsum = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    reduce_all<OpSum>(rsum, partial, 1, 1);

    EXPECT_EQ(*rsum, *checksum);
    const long t = static_cast<long>(total);
    EXPECT_EQ(*rsum, t * (t + 1) * (2 * t + 1) / 6);  // sum of squares

    xbrtime_barrier();
    xbrtime_free(rsum);
    xbrtime_free(partial);
    xbrtime_free(checksum);
    xbrtime_close();
  });
}

}  // namespace
}  // namespace xbgas
