// 1024-PE smoke (docs/SCALING.md, labeled `slow`): the headline scale the
// N:M scheduler exists for. One region runs barriers and an allreduce over
// 1024 fibers multiplexed onto a laptop-class worker pool; a second region
// kills PEs at scale and checks Machine::run's failure aggregation stays
// deterministically ordered (primaries by rank, then secondaries by rank)
// when the report is ~1000 entries long.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "collectives/composed.hpp"
#include "fault/errors.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

constexpr int kWorld = 1024;

MachineConfig smoke_config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 256 * 1024};
  c.fault = fault;
  return c;
}

TEST(ScalingSmokeTest, BarrierAndAllreduceAt1024) {
  Machine machine(smoke_config(kWorld));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* sum = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    const long mine = static_cast<long>(pe.rank()) + 1;
    xbrtime_barrier();
    reduce_all<OpSum>(sum, &mine, 1, 1);
    // sum(1..1024) on every PE.
    ASSERT_EQ(*sum, static_cast<long>(kWorld) * (kWorld + 1) / 2)
        << "pe=" << pe.rank();
    xbrtime_barrier();
    xbrtime_free(sum);
    xbrtime_close();
  });
  const SchedStats s = machine.sched_stats();
  EXPECT_EQ(s.fibers, static_cast<std::uint64_t>(kWorld));
  // The whole point: 1024 PEs never meant 1024 OS threads.
  EXPECT_LT(s.workers, 64u);
}

TEST(ScalingSmokeTest, FailureAggregationIsOrderedAt1024) {
  // Kill every 8th PE (128 primaries) with nobody catching: the region is
  // unrecovered, so run() must throw one SpmdRegionError aggregating all
  // ~1024 failures in deterministic order — primaries ascending by rank,
  // then the secondary unwinds ascending by rank.
  FaultConfig fc;
  for (int r = kWorld - 8; r >= 0; r -= 8) {  // scripted in DESCENDING order
    fc.kills.push_back(KillSpec{r, KillSite::kBarrier, 1});
  }
  Machine machine(smoke_config(kWorld, fc));
  try {
    machine.run([](PeContext&) {
      xbrtime_init();  // first init barrier arrival fires every kill
    });
    FAIL() << "expected SpmdRegionError";
  } catch (const SpmdRegionError& e) {
    const std::vector<PeFailure>& f = e.failures();
    ASSERT_EQ(f.size(), static_cast<std::size_t>(kWorld));
    constexpr std::size_t kPrimaries = kWorld / 8;
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_EQ(f[i].secondary, i >= kPrimaries) << "slot " << i;
      if (i > 0 && f[i].secondary == f[i - 1].secondary) {
        EXPECT_GT(f[i].rank, f[i - 1].rank) << "slot " << i;
      }
    }
    EXPECT_EQ(f[0].rank, 0);
    EXPECT_EQ(f[kPrimaries - 1].rank, kWorld - 8);
  }
  EXPECT_EQ(machine.n_alive(), kWorld - kWorld / 8);
  const std::vector<int> failed = machine.failed_ranks();
  ASSERT_EQ(failed.size(), static_cast<std::size_t>(kWorld / 8));
  EXPECT_TRUE(std::is_sorted(failed.begin(), failed.end()));
}

}  // namespace
}  // namespace xbgas
