// At-scale integration (docs/SCALING.md): the fiber-scheduled machine must
// run 256-PE worlds through the same conformance and recovery scenarios the
// unit suites pin down at 1-12 PEs — correct collective results against
// golden models, log-depth barrier clock reconciliation, and
// shrink-and-continue recovery — all multiplexed over a bounded worker
// pool. A seeded chaos soak checks the whole story is deterministic.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "collectives/shrink.hpp"
#include "common/rng.hpp"
#include "fault/errors.hpp"
#include "trace/collect.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

constexpr int kWorld = 256;

MachineConfig scale_config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  // The default layout is sized for paper-scale (12 PE) runs; hundreds of
  // PEs on one host need slim segments (docs/SCALING.md, "memory budget").
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 512 * 1024};
  c.fault = fault;
  return c;
}

/// Deterministic input: pure function of (rank, index), computable by any
/// PE — golden results need no extra communication.
long val(int rank, std::size_t i) {
  return static_cast<long>((rank * 37 + static_cast<int>(i) * 11) % 1000);
}

TEST(ScalingTest, ConformanceAllreduceAndBroadcastAt256) {
  constexpr std::size_t kElems = 16;
  Machine machine(scale_config(kWorld));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const int me = pe.rank();
    auto* buf = static_cast<long*>(xbrtime_malloc(kElems * sizeof(long)));
    std::vector<long> src(kElems);
    for (std::size_t j = 0; j < kElems; ++j) src[j] = val(me, j);
    xbrtime_barrier();

    reduce_all<OpSum>(buf, src.data(), kElems, 1);
    for (std::size_t j = 0; j < kElems; ++j) {
      long golden = 0;
      for (int r = 0; r < kWorld; ++r) golden += val(r, j);
      ASSERT_EQ(buf[j], golden) << "reduce_all pe=" << me << " j=" << j;
    }
    xbrtime_barrier();

    broadcast(buf, src.data(), kElems, 1, /*root=*/131);
    for (std::size_t j = 0; j < kElems; ++j) {
      ASSERT_EQ(buf[j], val(131, j)) << "broadcast pe=" << me << " j=" << j;
    }

    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(ScalingTest, BarrierReconcilesClocksIdenticallyAt256) {
  Machine machine(scale_config(kWorld));
  std::vector<std::uint64_t> exit_clock(kWorld, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    // Skew the clocks: every PE idles a different amount, then the barrier
    // must hand every participant the same reconciled value, monotonically
    // increasing across rounds.
    std::uint64_t prev = 0;
    for (int round = 0; round < 4; ++round) {
      pe.clock().advance(static_cast<std::uint64_t>(pe.rank() % 97));
      xbrtime_barrier();
      const std::uint64_t now = pe.clock().cycles();
      ASSERT_GT(now, prev);
      prev = now;
    }
    exit_clock[static_cast<std::size_t>(pe.rank())] = prev;
    xbrtime_close();
  });
  for (int r = 1; r < kWorld; ++r) {
    ASSERT_EQ(exit_clock[static_cast<std::size_t>(r)], exit_clock[0])
        << "rank " << r;
  }
}

TEST(ScalingTest, RecoveryShrinkAndContinueAt256) {
  // Two deaths at a mid-workload barrier; every survivor catches, agrees,
  // and finishes on the shrunken team. The region must *recover* (no
  // throw), with exactly the two primaries on the roster.
  FaultConfig fc;
  fc.kills.push_back(KillSpec{100, KillSite::kBarrier, 4});
  fc.kills.push_back(KillSpec{200, KillSite::kBarrier, 4});
  Machine machine(scale_config(kWorld, fc));
  std::vector<int> team_size(kWorld, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    try {
      xbrtime_barrier();  // barrier #4: ranks 100 and 200 die here
    } catch (const PeFailedError&) {
      auto team = xbr_team_shrink();
      team_size[static_cast<std::size_t>(pe.rank())] = team->n_pes();
      team->barrier();
    }
  });
  EXPECT_EQ(machine.failed_ranks(), (std::vector<int>{100, 200}));
  EXPECT_EQ(machine.n_alive(), kWorld - 2);
  for (int r = 0; r < kWorld; ++r) {
    if (r == 100 || r == 200) continue;
    EXPECT_EQ(team_size[static_cast<std::size_t>(r)], kWorld - 2)
        << "rank " << r;
  }
}

TEST(ScalingTest, ChaosSoakIsDeterministicAt256) {
  // Seeded chaos: each seed scripts kills at seed-derived ranks/arrivals.
  // The entire post-mortem (health string, counters) must be bit-identical
  // when the same seed runs twice.
  auto one_run = [](std::uint64_t seed) {
    SplitMix64 rng(seed);
    FaultConfig fc;
    const int n_kills = 1 + static_cast<int>(rng.next() % 3);
    for (int k = 0; k < n_kills; ++k) {
      const int rank = static_cast<int>(rng.next() % kWorld);
      // All kills land at the same arrival so one shrink absorbs every
      // death; staggered kills could fire inside the survivor team's own
      // barrier, which is a different scenario (revocation, not recovery).
      fc.kills.push_back(KillSpec{rank, KillSite::kBarrier, 4});
    }
    Machine machine(scale_config(kWorld, fc));
    machine.run([&](PeContext&) {
      xbrtime_init();
      for (int round = 0; round < 4; ++round) {
        try {
          xbrtime_barrier();
        } catch (const PeFailedError&) {
          auto team = xbr_team_shrink();
          team->barrier();
          break;
        }
      }
    });
    const CounterRegistry reg = collect_counters(machine);
    return machine.health() + "\nkills=" +
           std::to_string(reg.get("fault.injected.kills").value()) +
           " agreements=" +
           std::to_string(reg.get("recovery.agreements").value());
  };
  for (const std::uint64_t seed : {3u, 17u, 40u}) {
    const std::string first = one_run(seed);
    EXPECT_EQ(first, one_run(seed)) << "seed " << seed;
    EXPECT_NE(first.find("failed ranks: ["), std::string::npos);
  }
}

}  // namespace
}  // namespace xbgas
