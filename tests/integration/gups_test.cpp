#include "benchlib/gups.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

MachineConfig gups_config(int n_pes) {
  MachineConfig config;
  config.n_pes = n_pes;
  config.layout = MemoryLayout{.private_bytes = 1 << 20,
                               .shared_bytes = std::size_t{8} << 20};
  return config;
}

GupsConfig small_gups() {
  GupsConfig config;
  config.log2_table_entries = 14;  // 16K entries = 128 KiB total
  config.updates_per_pe = 1 << 12;
  config.verify = true;
  return config;
}

TEST(GupsIntegrationTest, VerifiesCleanAtEveryPeCount) {
  for (const int n : {1, 2, 4, 8}) {
    Machine machine(gups_config(n));
    const GupsResult result = run_gups(machine, small_gups());
    EXPECT_EQ(result.errors, 0u) << n << " PEs";
    EXPECT_EQ(result.n_pes, n);
    EXPECT_EQ(result.total_updates,
              static_cast<std::uint64_t>(n) * (1 << 12));
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.mops_total, 0.0);
    EXPECT_NEAR(result.mops_per_pe * n, result.mops_total, 1e-9);
  }
}

TEST(GupsIntegrationTest, DeterministicAcrossRuns) {
  // The whole stack is modeled, so two runs must agree cycle-for-cycle.
  Machine m1(gups_config(4)), m2(gups_config(4));
  const GupsResult a = run_gups(m1, small_gups());
  const GupsResult b = run_gups(m2, small_gups());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.errors, b.errors);
}

TEST(GupsIntegrationTest, MachineReusableAcrossRuns) {
  Machine machine(gups_config(2));
  const GupsResult a = run_gups(machine, small_gups());
  const GupsResult b = run_gups(machine, small_gups());
  EXPECT_EQ(a.cycles, b.cycles);  // reset_time_and_stats restores cold state
}

TEST(GupsIntegrationTest, RemoteTrafficScalesWithPeCount) {
  // At 1 PE every update is local; at 4 PEs ~3/4 of updates cross the
  // network (random table indices).
  Machine m1(gups_config(1));
  (void)run_gups(m1, small_gups());
  EXPECT_EQ(m1.network().totals().messages, 0u);

  Machine m4(gups_config(4));
  (void)run_gups(m4, small_gups());
  const auto msgs = m4.network().totals().messages;
  // 4 * 4096 updates, 75% remote, 2 messages per remote AMO, applied twice
  // (update phase + verification re-application): ~49k plus a handful of
  // collective messages for setup/verification.
  EXPECT_GT(msgs, 40000u);
  EXPECT_LT(msgs, 55000u);
}

TEST(GupsIntegrationTest, SkippingVerificationStillTimes) {
  Machine machine(gups_config(2));
  GupsConfig config = small_gups();
  config.verify = false;
  const GupsResult result = run_gups(machine, config);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.cycles, 0u);
}

TEST(GupsIntegrationTest, RejectsIndivisibleTable) {
  Machine machine(gups_config(3));
  EXPECT_THROW((void)run_gups(machine, small_gups()), Error);
}

}  // namespace
}  // namespace xbgas
