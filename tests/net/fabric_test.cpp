#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/sim_clock.hpp"

namespace xbgas {
namespace {

NetworkModel make_model(const NetCostParams& p = NetCostParams{},
                        const std::string& topo = "flat", int n = 4) {
  return NetworkModel(make_topology(topo, n), p);
}

TEST(SimClockTest, AdvanceAndConvert) {
  SimClock clock;
  EXPECT_EQ(clock.cycles(), 0u);
  clock.advance(100);
  clock.advance(23);
  EXPECT_EQ(clock.cycles(), 123u);
  EXPECT_DOUBLE_EQ(clock.seconds(1e9), 123e-9);
  clock.set(5);
  EXPECT_EQ(clock.cycles(), 5u);
  clock.reset();
  EXPECT_EQ(clock.cycles(), 0u);
}

TEST(BarrierCyclesTest, LogarithmicRounds) {
  NetCostParams p;
  EXPECT_EQ(p.barrier_cycles(1), 0u);
  const std::uint64_t round = p.injection_cycles + p.per_hop_cycles;
  EXPECT_EQ(p.barrier_cycles(2), 1 * round);
  EXPECT_EQ(p.barrier_cycles(4), 2 * round);
  EXPECT_EQ(p.barrier_cycles(5), 3 * round);
  EXPECT_EQ(p.barrier_cycles(8), 3 * round);
}

TEST(NetworkModelTest, PutCostComponents) {
  NetCostParams p;
  p.olb_lookup_cycles = 2;
  p.injection_cycles = 10;
  p.per_hop_cycles = 5;
  p.link_bytes_per_cycle = 8.0;
  p.remote_mem_cycles = 40;
  p.message_header_bytes = 32;
  auto model = make_model(p);
  // flat: 1 hop. serialization = ceil((8+32)/8) = 5.
  EXPECT_EQ(model.put_cost(0, 1, 8), 2u + 10u + 5u + 5u + 40u);
}

TEST(NetworkModelTest, GetCostsMoreThanPut) {
  auto model = make_model();
  // A get is a round trip; it must strictly exceed the one-way put.
  EXPECT_GT(model.get_cost(0, 1, 64), model.put_cost(0, 1, 64));
}

TEST(NetworkModelTest, CostGrowsWithSizeAndDistance) {
  auto model = make_model(NetCostParams{}, "ring", 8);
  EXPECT_LT(model.put_cost(0, 1, 8), model.put_cost(0, 1, 4096));
  EXPECT_LT(model.put_cost(0, 1, 8), model.put_cost(0, 4, 8));
}

TEST(NetworkModelTest, RecordAccumulatesTotals) {
  auto model = make_model();
  model.record(true, 100);
  model.record(false, 50);
  model.record(true, 1);
  const NetTotals t = model.totals();
  EXPECT_EQ(t.messages, 3u);
  EXPECT_EQ(t.puts, 2u);
  EXPECT_EQ(t.gets, 1u);
  // Bytes include the per-message header overhead.
  EXPECT_EQ(t.bytes, 151u + 3 * NetCostParams{}.message_header_bytes);
}

TEST(NetworkModelTest, PhaseReconcileTakesMaxOfComputeAndFabric) {
  NetCostParams p;
  p.fabric_bytes_per_cycle = 1.0;
  p.fabric_message_cycles = 0;
  p.message_header_bytes = 0;
  p.injection_cycles = 0;
  p.per_hop_cycles = 0;
  auto model = make_model(p);

  // Fabric-bound phase: 10k bytes at 1 B/cycle from anchor 0 -> ends at
  // 10000 even though PEs were computing for only 500 cycles.
  model.record(true, 10'000);
  EXPECT_EQ(model.reconcile_phase(500, 4), 10'000u);

  // Compute-bound phase: little traffic, max clock dominates.
  model.record(true, 10);
  EXPECT_EQ(model.reconcile_phase(50'000, 4), 50'000u);
}

TEST(NetworkModelTest, PhaseAnchorAdvances) {
  NetCostParams p;
  p.fabric_bytes_per_cycle = 1.0;
  p.fabric_message_cycles = 0;
  p.message_header_bytes = 0;
  p.injection_cycles = 0;
  p.per_hop_cycles = 0;
  auto model = make_model(p);

  const std::uint64_t t1 = model.reconcile_phase(100, 2);
  EXPECT_EQ(t1, 100u);
  // Next phase's fabric time is measured from t1, not from zero.
  model.record(true, 1000);
  EXPECT_EQ(model.reconcile_phase(t1 + 10, 2), t1 + 1000);
}

TEST(NetworkModelTest, BarrierCostAppliedAfterReconcile) {
  NetCostParams p;
  p.injection_cycles = 10;
  p.per_hop_cycles = 5;
  auto model = make_model(p);
  // No traffic: result = max clock + barrier cost for 4 PEs (2 rounds).
  EXPECT_EQ(model.reconcile_phase(1000, 4), 1000u + 2 * 15u);
}

TEST(NetworkModelTest, ResetPhaseDropsTraffic) {
  auto model = make_model();
  model.record(true, 1 << 20);
  model.reset_phase();
  EXPECT_EQ(model.phase_bytes(), 0u);
  NetCostParams p = model.params();
  EXPECT_EQ(model.reconcile_phase(7, 1), 7 + p.barrier_cycles(1));
}

TEST(NetworkModelTest, ResetTotals) {
  auto model = make_model();
  model.record(true, 10);
  model.reset_totals();
  const NetTotals t = model.totals();
  EXPECT_EQ(t.messages, 0u);
  EXPECT_EQ(t.bytes, 0u);
}

TEST(NetworkModelTest, InvalidBandwidthRejected) {
  NetCostParams p;
  p.fabric_bytes_per_cycle = 0.0;
  EXPECT_THROW(make_model(p), Error);
}

}  // namespace
}  // namespace xbgas
