// LinkFaults — the scripted persistent link/partition fault engine — and
// DegradedTopologyView, the reachability/cost view the collective policy
// rebuilds from it. Everything here is pure cost-model state: no Machine,
// no PE threads, so each property is pinned down in isolation.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/topology.hpp"

namespace xbgas {
namespace {

LinkSpec link(int a, int b, LinkFaultMode mode, std::uint64_t at,
              std::uint64_t heal_at = 0) {
  LinkSpec s;
  s.a = a;
  s.b = b;
  s.mode = mode;
  s.at = at;
  s.heal_at = heal_at;
  return s;
}

PartitionSpec partition(int lo, int hi, std::uint64_t at,
                        std::uint64_t heal_at = 0) {
  PartitionSpec s;
  s.lo = lo;
  s.hi = hi;
  s.at = at;
  s.heal_at = heal_at;
  return s;
}

TEST(LinkFaultsTest, EmptyPlanIsEmptyAndAlwaysUp) {
  LinkFaults lf;
  lf.configure(FaultConfig{}, 4);
  EXPECT_TRUE(lf.empty());
  EXPECT_EQ(lf.status(0, 1, 1'000'000), LinkStatus::kUp);
  EXPECT_EQ(lf.version(), 0u);
  EXPECT_TRUE(lf.down_pairs().empty());
}

TEST(LinkFaultsTest, ScriptedWindowActivatesAndHeals) {
  FaultConfig fc;
  fc.links.push_back(link(0, 2, LinkFaultMode::kDown, 100, 500));
  LinkFaults lf;
  lf.configure(fc, 4);
  EXPECT_FALSE(lf.empty());

  // Before activation: up, no transition observed.
  EXPECT_EQ(lf.status(0, 2, 99), LinkStatus::kUp);
  EXPECT_EQ(lf.version(), 0u);

  // Inside the window: down, version bumped once, pair listed.
  EXPECT_EQ(lf.status(0, 2, 100), LinkStatus::kDown);
  EXPECT_EQ(lf.version(), 1u);
  EXPECT_EQ(lf.down_pairs(),
            (std::vector<std::pair<int, int>>{{0, 2}}));
  EXPECT_GT(lf.down_observed(), 0u);

  // Repeated consults inside the window are not new transitions.
  EXPECT_EQ(lf.status(0, 2, 200), LinkStatus::kDown);
  EXPECT_EQ(lf.version(), 1u);

  // Past heal_at: up again, second transition, pair no longer down.
  EXPECT_EQ(lf.status(0, 2, 500), LinkStatus::kUp);
  EXPECT_EQ(lf.version(), 2u);
  EXPECT_EQ(lf.heals(), 1u);
  EXPECT_TRUE(lf.down_pairs().empty());
}

TEST(LinkFaultsTest, DirectionAndEndpointOrderDoNotMatter) {
  FaultConfig fc;
  fc.links.push_back(link(3, 1, LinkFaultMode::kDown, 10));  // a > b on input
  LinkFaults lf;
  lf.configure(fc, 4);
  EXPECT_EQ(lf.status(1, 3, 10), LinkStatus::kDown);
  EXPECT_EQ(lf.status(3, 1, 10), LinkStatus::kDown);
  EXPECT_EQ(lf.down_pairs(),
            (std::vector<std::pair<int, int>>{{1, 3}}));
  // Other pairs are untouched.
  EXPECT_EQ(lf.status(0, 1, 10), LinkStatus::kUp);
  EXPECT_EQ(lf.status(2, 3, 10), LinkStatus::kUp);
}

TEST(LinkFaultsTest, DownTakesPrecedenceOverDegraded) {
  FaultConfig fc;
  fc.links.push_back(link(0, 1, LinkFaultMode::kDegraded, 1));
  fc.links.push_back(link(0, 1, LinkFaultMode::kDown, 50));
  LinkFaults lf;
  lf.configure(fc, 2);
  EXPECT_EQ(lf.status(0, 1, 10), LinkStatus::kDegraded);
  EXPECT_EQ(lf.status(0, 1, 60), LinkStatus::kDown);
}

TEST(LinkFaultsTest, DegradedLinkIsObservedNotDown) {
  FaultConfig fc;
  fc.links.push_back(link(0, 1, LinkFaultMode::kDegraded, 1));
  LinkFaults lf;
  lf.configure(fc, 2);
  EXPECT_EQ(lf.status(0, 1, 5), LinkStatus::kDegraded);
  EXPECT_GT(lf.degraded_observed(), 0u);
  EXPECT_TRUE(lf.down_pairs().empty())
      << "a degraded link still carries traffic; it must not cut the "
         "reachability graph";
}

TEST(LinkFaultsTest, PartitionCoversExactlyTheCrossingPairs) {
  FaultConfig fc;
  fc.partitions.push_back(partition(1, 2, 100));
  LinkFaults lf;
  lf.configure(fc, 4);

  // Crossing pairs are down once active.
  EXPECT_EQ(lf.status(0, 1, 100), LinkStatus::kDown);
  EXPECT_EQ(lf.status(2, 3, 100), LinkStatus::kDown);
  EXPECT_EQ(lf.status(0, 2, 100), LinkStatus::kDown);
  // Pairs inside either side stay up.
  EXPECT_EQ(lf.status(1, 2, 100), LinkStatus::kUp);
  EXPECT_EQ(lf.status(0, 3, 100), LinkStatus::kUp);

  const std::vector<std::pair<int, int>> want{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(lf.down_pairs(), want);
}

TEST(LinkFaultsTest, PartitionHealRestoresEveryCrossingPair) {
  FaultConfig fc;
  fc.partitions.push_back(partition(0, 0, 10, 20));
  LinkFaults lf;
  lf.configure(fc, 3);
  EXPECT_EQ(lf.status(0, 1, 10), LinkStatus::kDown);
  EXPECT_EQ(lf.status(0, 2, 25), LinkStatus::kUp);
  EXPECT_EQ(lf.status(0, 1, 25), LinkStatus::kUp);
  EXPECT_TRUE(lf.down_pairs().empty());
  EXPECT_EQ(lf.heals(), 1u);
}

TEST(LinkFaultsTest, DownAndHealCallbacksFireOncePerPair) {
  FaultConfig fc;
  fc.partitions.push_back(partition(2, 3, 10, 50));
  LinkFaults lf;
  lf.configure(fc, 4);
  std::vector<std::pair<int, int>> downs;
  std::vector<std::pair<int, int>> heals;
  lf.set_down_callback([&](int a, int b) { downs.emplace_back(a, b); });
  lf.set_heal_callback([&](int a, int b) { heals.emplace_back(a, b); });

  // Many consults, one activation: the callback fires once per crossing
  // pair, enumerated group-member-major.
  for (int i = 0; i < 3; ++i) (void)lf.status(0, 2, 10);
  const std::vector<std::pair<int, int>> want{{0, 2}, {1, 2}, {0, 3}, {1, 3}};
  EXPECT_EQ(downs, want);
  EXPECT_TRUE(heals.empty());

  for (int i = 0; i < 3; ++i) (void)lf.status(0, 2, 50);
  EXPECT_EQ(heals, want);
  EXPECT_EQ(downs, want);
}

TEST(LinkFaultsTest, DegradedPenaltyScalesWithBytesAndBeta) {
  FaultConfig fc;
  fc.links.push_back(link(0, 1, LinkFaultMode::kDegraded, 1));
  fc.degraded_beta_factor = 4.0;
  fc.degraded_alpha_cycles = 100;
  NetworkModel model(make_topology("flat", 2), NetCostParams{});
  model.configure_link_faults(fc, 2);
  EXPECT_EQ(model.link_faults().degraded_beta_factor(), 4.0);
  EXPECT_EQ(model.link_faults().degraded_alpha_cycles(), 100u);

  const std::uint64_t small = model.degraded_penalty_cycles(64);
  const std::uint64_t large = model.degraded_penalty_cycles(64 * 1024);
  EXPECT_GE(small, 100u) << "the configured alpha is always charged";
  EXPECT_GT(large, small) << "the beta term grows with the payload";
}

// ---------------------------------------------------------------------------
// DegradedTopologyView — shortest routes over the surviving pair graph.
// ---------------------------------------------------------------------------

TEST(DegradedTopologyViewTest, NoDownPairsMatchesTheBaseTopology) {
  const auto base = make_topology("ring", 8);
  DegradedTopologyView view(*base, {});
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_EQ(view.hops(s, d), base->hops(s, d)) << s << "->" << d;
    }
  }
  EXPECT_DOUBLE_EQ(view.degraded_mean_hops(), base->mean_hops());
  EXPECT_EQ(view.link_count(), base->link_count());
}

TEST(DegradedTopologyViewTest, ReroutesAroundADownPair) {
  const auto base = make_topology("flat", 4);
  DegradedTopologyView view(*base, {{0, 1}});
  // The direct 1-hop path is cut; the cheapest detour relays through any
  // third PE for 2 hops.
  EXPECT_EQ(view.hops(0, 1), 2);
  EXPECT_EQ(view.hops(1, 0), 2);
  // Untouched pairs keep their direct path.
  EXPECT_EQ(view.hops(0, 2), 1);
  EXPECT_EQ(view.hops(2, 3), 1);
  EXPECT_EQ(view.hops(1, 1), 0);
  EXPECT_GT(view.degraded_mean_hops(), base->mean_hops());
  EXPECT_LT(view.link_count(), base->link_count());
}

TEST(DegradedTopologyViewTest, IsolatedEndpointIsUnreachable) {
  const auto base = make_topology("flat", 3);
  DegradedTopologyView view(*base, {{0, 1}, {0, 2}});
  EXPECT_EQ(view.hops(0, 1), DegradedTopologyView::kUnreachable);
  EXPECT_EQ(view.hops(0, 2), DegradedTopologyView::kUnreachable);
  EXPECT_EQ(view.hops(0, 0), 0);
  EXPECT_EQ(view.hops(1, 2), 1);
  // The mean skips unreachable pairs instead of poisoning the average.
  EXPECT_DOUBLE_EQ(view.degraded_mean_hops(), 1.0);
}

TEST(DegradedTopologyViewTest, DuplicateAndSwappedPairsAreNormalized) {
  const auto base = make_topology("flat", 4);
  DegradedTopologyView view(*base, {{1, 0}, {0, 1}, {1, 0}});
  EXPECT_EQ(view.hops(0, 1), 2);
  EXPECT_EQ(view.link_count(), base->link_count() - 2);
}

}  // namespace
}  // namespace xbgas
