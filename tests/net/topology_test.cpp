#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

// Shared metric-space properties every topology must satisfy.
class TopologyProperties
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(TopologyProperties, HopsFormAMetric) {
  const auto& [name, n] = GetParam();
  const auto topo = make_topology(name, n);
  ASSERT_EQ(topo->size(), n);
  for (int s = 0; s < n; ++s) {
    EXPECT_EQ(topo->hops(s, s), 0);
    for (int d = 0; d < n; ++d) {
      const int h = topo->hops(s, d);
      EXPECT_EQ(h, topo->hops(d, s)) << "symmetry " << s << "->" << d;
      if (s != d) {
        EXPECT_GE(h, 1);
      }
      EXPECT_LE(h, topo->diameter());
      for (int m = 0; m < n; ++m) {  // triangle inequality
        EXPECT_LE(h, topo->hops(s, m) + topo->hops(m, d));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologyProperties,
    ::testing::Values(std::tuple{"flat", 1}, std::tuple{"flat", 8},
                      std::tuple{"flat", 12}, std::tuple{"ring", 2},
                      std::tuple{"ring", 7}, std::tuple{"ring", 12},
                      std::tuple{"torus", 4}, std::tuple{"torus", 6},
                      std::tuple{"torus", 12}, std::tuple{"hypercube", 2},
                      std::tuple{"hypercube", 8},
                      std::tuple{"hypercube", 16}),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& p) {
      return std::get<0>(p.param) + "_" + std::to_string(std::get<1>(p.param));
    });

TEST(FlatTopologyTest, EveryPairOneHop) {
  FlatTopology topo(5);
  EXPECT_EQ(topo.hops(0, 4), 1);
  EXPECT_EQ(topo.hops(3, 2), 1);
  EXPECT_EQ(topo.diameter(), 1);
}

TEST(RingTopologyTest, WrapsTheShortWay) {
  RingTopology topo(8);
  EXPECT_EQ(topo.hops(0, 1), 1);
  EXPECT_EQ(topo.hops(0, 4), 4);
  EXPECT_EQ(topo.hops(0, 7), 1);
  EXPECT_EQ(topo.hops(6, 1), 3);
  EXPECT_EQ(topo.diameter(), 4);
}

TEST(RingTopologyTest, OddRingDiameter) {
  RingTopology topo(7);
  EXPECT_EQ(topo.diameter(), 3);
}

TEST(TorusTopologyTest, ManhattanWithWraparound) {
  Torus2DTopology topo(3, 4);
  // rank = row * 4 + col
  EXPECT_EQ(topo.hops(0, 3), 1);   // col 0 -> 3 wraps
  EXPECT_EQ(topo.hops(0, 5), 2);   // (0,0) -> (1,1)
  EXPECT_EQ(topo.hops(0, 11), 2);  // (0,0) -> (2,3): 1 row wrap + 1 col wrap
  EXPECT_EQ(topo.hops(1, 9), 1);   // (0,1) -> (2,1): row wraps down
}

TEST(TorusTopologyTest, AutoFactorizationIsNearSquare) {
  Torus2DTopology t12(12);
  EXPECT_EQ(t12.rows(), 3);
  EXPECT_EQ(t12.cols(), 4);
  Torus2DTopology t16(16);
  EXPECT_EQ(t16.rows(), 4);
  EXPECT_EQ(t16.cols(), 4);
  Torus2DTopology t7(7);
  EXPECT_EQ(t7.rows(), 1);
  EXPECT_EQ(t7.cols(), 7);
}

TEST(HypercubeTopologyTest, HopsArePopcountOfXor) {
  HypercubeTopology topo(8);
  EXPECT_EQ(topo.hops(0, 7), 3);
  EXPECT_EQ(topo.hops(0b101, 0b010), 3);
  EXPECT_EQ(topo.hops(2, 3), 1);
  EXPECT_EQ(topo.diameter(), 3);
}

TEST(HypercubeTopologyTest, RejectsNonPowerOfTwo) {
  EXPECT_THROW(HypercubeTopology(6), Error);
  EXPECT_THROW(make_topology("hypercube", 12), Error);
}

TEST(TopologyFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_topology("mesh", 4), Error);
}

TEST(TopologyTest, MeanHopsOrdersByConnectivity) {
  // flat <= hypercube <= torus <= ring for the same endpoint count.
  const int n = 16;
  const double flat = make_topology("flat", n)->mean_hops();
  const double cube = make_topology("hypercube", n)->mean_hops();
  const double torus = make_topology("torus", n)->mean_hops();
  const double ring = make_topology("ring", n)->mean_hops();
  EXPECT_LE(flat, cube);
  EXPECT_LE(cube, torus);
  EXPECT_LE(torus, ring);
}

TEST(TopologyTest, EndpointRangeChecked) {
  const auto topo = make_topology("ring", 4);
  EXPECT_THROW(topo->hops(0, 4), Error);
  EXPECT_THROW(topo->hops(-1, 0), Error);
}

TEST(ClusterTopologyTest, BoundaryCrossingsAreFlatCost) {
  ClusterTopology topo(8, 4, 8);
  EXPECT_EQ(topo.hops(0, 0), 0);
  EXPECT_EQ(topo.hops(0, 3), 1);   // same node
  EXPECT_EQ(topo.hops(4, 7), 1);
  EXPECT_EQ(topo.hops(0, 4), 8);   // any boundary crossing costs the same
  EXPECT_EQ(topo.hops(3, 4), 8);
  EXPECT_EQ(topo.hops(0, 7), 8);
  EXPECT_EQ(topo.diameter(), 8);
}

TEST(ClusterTopologyTest, FactoryParsesGroupAndHops) {
  const auto topo = make_topology("cluster2x5", 6);
  EXPECT_EQ(topo->name(), "cluster2x5");
  EXPECT_EQ(topo->hops(0, 1), 1);
  EXPECT_EQ(topo->hops(1, 2), 5);
  EXPECT_THROW(make_topology("cluster4x8", 6), Error);  // 4 !| 6
  EXPECT_THROW(make_topology("clusterXx8", 8), Error);
}

TEST(TopologyTest, LinkCounts) {
  EXPECT_EQ(make_topology("flat", 4)->link_count(), 12);
  EXPECT_EQ(make_topology("ring", 4)->link_count(), 8);
  EXPECT_EQ(make_topology("hypercube", 8)->link_count(), 24);
  EXPECT_EQ(make_topology("ring", 1)->link_count(), 0);
}

}  // namespace
}  // namespace xbgas
