#include "benchlib/options.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"bench"};
  v.insert(v.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(OptionsTest, DefaultsMatchPaperEnvironment) {
  const MachineConfig config = machine_config_from_cli(make({}), 4);
  EXPECT_EQ(config.n_pes, 4);
  EXPECT_EQ(config.topology_name, "flat");
  EXPECT_EQ(config.layout.shared_bytes, std::size_t{64} << 20);
  EXPECT_EQ(config.layout.private_bytes, std::size_t{8} << 20);
  EXPECT_EQ(config.net.barrier_algorithm, BarrierAlgorithm::kDissemination);
}

TEST(OptionsTest, FlagsOverrideEverything) {
  const MachineConfig config = machine_config_from_cli(
      make({"--topology", "ring", "--shared-mb", "8", "--private-mb", "1",
            "--fabric-bpc", "2.5", "--link-bpc", "16", "--fabric-mpc", "7",
            "--barrier", "tournament"}),
      6);
  EXPECT_EQ(config.topology_name, "ring");
  EXPECT_EQ(config.layout.shared_bytes, std::size_t{8} << 20);
  EXPECT_EQ(config.layout.private_bytes, std::size_t{1} << 20);
  EXPECT_DOUBLE_EQ(config.net.fabric_bytes_per_cycle, 2.5);
  EXPECT_DOUBLE_EQ(config.net.link_bytes_per_cycle, 16.0);
  EXPECT_EQ(config.net.fabric_message_cycles, 7u);
  EXPECT_EQ(config.net.barrier_algorithm, BarrierAlgorithm::kTournament);
}

TEST(OptionsTest, CentralBarrierSpelling) {
  EXPECT_EQ(machine_config_from_cli(make({"--barrier", "central"}), 2)
                .net.barrier_algorithm,
            BarrierAlgorithm::kCentral);
}

TEST(OptionsTest, UnknownBarrierThrows) {
  EXPECT_THROW(machine_config_from_cli(make({"--barrier", "magic"}), 2),
               Error);
}

TEST(OptionsTest, PeCountsDefaultToPaperSweep) {
  EXPECT_EQ(pe_counts_from_cli(make({})), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(pe_counts_from_cli(make({"--pes", "3,6,12"})),
            (std::vector<int>{3, 6, 12}));
}

TEST(OptionsTest, FaultKillParsesAmoSite) {
  const MachineConfig config =
      machine_config_from_cli(make({"--fault-kill", "2:amo:5"}), 4);
  ASSERT_EQ(config.fault.kills.size(), 1u);
  EXPECT_EQ(config.fault.kills[0].rank, 2);
  EXPECT_EQ(config.fault.kills[0].site, KillSite::kAmo);
  EXPECT_EQ(config.fault.kills[0].at, 5u);
  EXPECT_THROW(machine_config_from_cli(make({"--fault-kill", "2:mystery:5"}), 4),
               Error);
}

TEST(OptionsTest, FaultLinkParsesModeWindowAndList) {
  const MachineConfig config = machine_config_from_cli(
      make({"--fault-link", "0-3:down@500,1-2:degraded@10@900"}), 4);
  ASSERT_EQ(config.fault.links.size(), 2u);
  EXPECT_EQ(config.fault.links[0].a, 0);
  EXPECT_EQ(config.fault.links[0].b, 3);
  EXPECT_EQ(config.fault.links[0].mode, LinkFaultMode::kDown);
  EXPECT_EQ(config.fault.links[0].at, 500u);
  EXPECT_EQ(config.fault.links[0].heal_at, 0u);
  EXPECT_EQ(config.fault.links[1].a, 1);
  EXPECT_EQ(config.fault.links[1].b, 2);
  EXPECT_EQ(config.fault.links[1].mode, LinkFaultMode::kDegraded);
  EXPECT_EQ(config.fault.links[1].at, 10u);
  EXPECT_EQ(config.fault.links[1].heal_at, 900u);
}

TEST(OptionsTest, FaultLinkRejectsBadSyntaxAndMode) {
  EXPECT_THROW(machine_config_from_cli(make({"--fault-link", "0-1"}), 4),
               Error);
  EXPECT_THROW(
      machine_config_from_cli(make({"--fault-link", "0-1:flaky@5"}), 4),
      Error);
}

TEST(OptionsTest, FaultPartitionParsesGroupAndHeal) {
  const MachineConfig config = machine_config_from_cli(
      make({"--fault-partition", "0-31@2000,48-63@100@400"}), 64);
  ASSERT_EQ(config.fault.partitions.size(), 2u);
  EXPECT_EQ(config.fault.partitions[0].lo, 0);
  EXPECT_EQ(config.fault.partitions[0].hi, 31);
  EXPECT_EQ(config.fault.partitions[0].at, 2000u);
  EXPECT_EQ(config.fault.partitions[0].heal_at, 0u);
  EXPECT_EQ(config.fault.partitions[1].lo, 48);
  EXPECT_EQ(config.fault.partitions[1].hi, 63);
  EXPECT_EQ(config.fault.partitions[1].heal_at, 400u);
  EXPECT_THROW(machine_config_from_cli(make({"--fault-partition", "7@9"}), 16),
               Error);
}

TEST(OptionsTest, DegradedLinkCostKnobs) {
  const MachineConfig defaults = machine_config_from_cli(make({}), 4);
  EXPECT_DOUBLE_EQ(defaults.fault.degraded_beta_factor, 4.0);
  EXPECT_EQ(defaults.fault.degraded_alpha_cycles, 0u);
  const MachineConfig config = machine_config_from_cli(
      make({"--fault-link-beta", "2.5", "--fault-link-alpha", "200"}), 4);
  EXPECT_DOUBLE_EQ(config.fault.degraded_beta_factor, 2.5);
  EXPECT_EQ(config.fault.degraded_alpha_cycles, 200u);
}

TEST(OptionsTest, ConfigBuildsAWorkingMachine) {
  const MachineConfig config = machine_config_from_cli(
      make({"--topology", "cluster2x4", "--shared-mb", "1", "--private-mb",
            "1"}),
      4);
  Machine machine(config);
  EXPECT_EQ(machine.network().topology().name(), "cluster2x4");
  EXPECT_EQ(machine.n_pes(), 4);
}

}  // namespace
}  // namespace xbgas
