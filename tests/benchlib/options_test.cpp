#include "benchlib/options.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"bench"};
  v.insert(v.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(OptionsTest, DefaultsMatchPaperEnvironment) {
  const MachineConfig config = machine_config_from_cli(make({}), 4);
  EXPECT_EQ(config.n_pes, 4);
  EXPECT_EQ(config.topology_name, "flat");
  EXPECT_EQ(config.layout.shared_bytes, std::size_t{64} << 20);
  EXPECT_EQ(config.layout.private_bytes, std::size_t{8} << 20);
  EXPECT_EQ(config.net.barrier_algorithm, BarrierAlgorithm::kDissemination);
}

TEST(OptionsTest, FlagsOverrideEverything) {
  const MachineConfig config = machine_config_from_cli(
      make({"--topology", "ring", "--shared-mb", "8", "--private-mb", "1",
            "--fabric-bpc", "2.5", "--link-bpc", "16", "--fabric-mpc", "7",
            "--barrier", "tournament"}),
      6);
  EXPECT_EQ(config.topology_name, "ring");
  EXPECT_EQ(config.layout.shared_bytes, std::size_t{8} << 20);
  EXPECT_EQ(config.layout.private_bytes, std::size_t{1} << 20);
  EXPECT_DOUBLE_EQ(config.net.fabric_bytes_per_cycle, 2.5);
  EXPECT_DOUBLE_EQ(config.net.link_bytes_per_cycle, 16.0);
  EXPECT_EQ(config.net.fabric_message_cycles, 7u);
  EXPECT_EQ(config.net.barrier_algorithm, BarrierAlgorithm::kTournament);
}

TEST(OptionsTest, CentralBarrierSpelling) {
  EXPECT_EQ(machine_config_from_cli(make({"--barrier", "central"}), 2)
                .net.barrier_algorithm,
            BarrierAlgorithm::kCentral);
}

TEST(OptionsTest, UnknownBarrierThrows) {
  EXPECT_THROW(machine_config_from_cli(make({"--barrier", "magic"}), 2),
               Error);
}

TEST(OptionsTest, PeCountsDefaultToPaperSweep) {
  EXPECT_EQ(pe_counts_from_cli(make({})), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(pe_counts_from_cli(make({"--pes", "3,6,12"})),
            (std::vector<int>{3, 6, 12}));
}

TEST(OptionsTest, ConfigBuildsAWorkingMachine) {
  const MachineConfig config = machine_config_from_cli(
      make({"--topology", "cluster2x4", "--shared-mb", "1", "--private-mb",
            "1"}),
      4);
  Machine machine(config);
  EXPECT_EQ(machine.network().topology().name(), "cluster2x4");
  EXPECT_EQ(machine.n_pes(), 4);
}

}  // namespace
}  // namespace xbgas
