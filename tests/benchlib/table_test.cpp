#include "benchlib/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable table({"PEs", "MOPS"});
  table.add_row({"1", "2.455"});
  table.add_row({"16", "14.3"});
  const std::string out = table.render();
  // Every line has the same width (aligned box).
  std::size_t expected = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_EQ(nl - pos, expected) << "ragged line: " << out.substr(pos, nl - pos);
    pos = nl + 1;
  }
  EXPECT_NE(out.find("| PEs | MOPS  |"), std::string::npos);
  EXPECT_NE(out.find("| 16  | 14.3  |"), std::string::npos);
}

TEST(AsciiTableTest, CellFormatters) {
  EXPECT_EQ(AsciiTable::cell(2.4554999), "2.455");
  EXPECT_EQ(AsciiTable::cell(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(AsciiTable::cell(static_cast<unsigned long long>(9)), "9");
}

TEST(AsciiTableTest, WidthGrowsWithContent) {
  AsciiTable table({"x"});
  table.add_row({"a-very-long-cell"});
  EXPECT_NE(table.render().find("| a-very-long-cell |"), std::string::npos);
}

TEST(AsciiTableTest, RowWidthMismatchThrows) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(AsciiTableTest, EmptyHeadersRejected) {
  EXPECT_THROW(AsciiTable({}), Error);
}

TEST(AsciiTableTest, HeaderOnlyTableRenders) {
  AsciiTable table({"alone"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alone |"), std::string::npos);
  // rule, header, rule, rule(bottom of empty body)
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace xbgas
