// ZipfGenerator / ServingTraffic — determinism, skew shape, mix fractions,
// and stream independence (docs/SERVING.md workload model).

#include "benchlib/zipf.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbgas {
namespace {

TEST(ZipfGeneratorTest, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), Error);
  EXPECT_THROW(ZipfGenerator(16, -0.5), Error);
  EXPECT_NO_THROW(ZipfGenerator(1, 0.0));
}

TEST(ZipfGeneratorTest, SamplesStayInRange) {
  ZipfGenerator zipf(37, 0.99);
  Xoshiro256ss rng(123);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.sample(rng), 37u);
}

TEST(ZipfGeneratorTest, SkewConcentratesOnLowRanks) {
  constexpr std::size_t kN = 1024;
  constexpr int kDraws = 20000;
  ZipfGenerator zipf(kN, 0.99);
  Xoshiro256ss rng(7);
  std::vector<int> hits(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++hits[zipf.sample(rng)];
  // Rank 0 is the hottest by a wide margin; the tail is cold. Zipf(0.99)
  // over 1024 ranks puts ~13% of mass on rank 0 and < 0.2% on rank 100.
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[0], 10 * hits[100]);
  int head = 0;
  for (std::size_t r = 0; r < 16; ++r) head += hits[r];
  EXPECT_GT(head, kDraws / 3);  // the top 1.6% of keys take > a third
}

TEST(ZipfGeneratorTest, ZeroExponentIsRoughlyUniform) {
  constexpr std::size_t kN = 8;
  ZipfGenerator zipf(kN, 0.0);
  Xoshiro256ss rng(11);
  std::vector<int> hits(kN, 0);
  for (int i = 0; i < 8000; ++i) ++hits[zipf.sample(rng)];
  for (const int h : hits) {
    EXPECT_GT(h, 700);
    EXPECT_LT(h, 1300);
  }
}

TEST(ServingTrafficTest, SameSeedSameRankSameStream) {
  ServingTraffic a(42, /*rank=*/3, /*n_keys=*/512, ServingMix{});
  ServingTraffic b(42, 3, 512, ServingMix{});
  for (int i = 0; i < 500; ++i) {
    const ServingRequest x = a.next();
    const ServingRequest y = b.next();
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.value, y.value);
  }
}

TEST(ServingTrafficTest, DifferentRanksGetIndependentStreams) {
  ServingTraffic a(42, 0, 512, ServingMix{});
  ServingTraffic b(42, 1, 512, ServingMix{});
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    const ServingRequest x = a.next();
    const ServingRequest y = b.next();
    if (x.key != y.key || x.kind != y.kind) ++differing;
  }
  EXPECT_GT(differing, 150);
}

TEST(ServingTrafficTest, KeysInRangeAndValuesFitPayload) {
  constexpr std::size_t kKeys = 300;  // not a power of two
  ServingTraffic traffic(9, 2, kKeys, ServingMix{});
  for (int i = 0; i < 2000; ++i) {
    const ServingRequest req = traffic.next();
    EXPECT_LT(req.key, kKeys);
    EXPECT_LT(req.value, std::uint64_t{1} << 24);
    if (req.kind == ServingRequest::Kind::kIncr) {
      EXPECT_GE(req.value, 1u);
      EXPECT_LE(req.value, 7u);
    }
  }
}

TEST(ServingTrafficTest, MixFractionsTrackConfiguredPercentages) {
  ServingMix mix;
  mix.put_pct = 20;
  mix.incr_pct = 10;
  ServingTraffic traffic(1234, 0, 1024, mix);
  int puts = 0, incrs = 0, gets = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    switch (traffic.next().kind) {
      case ServingRequest::Kind::kPut: ++puts; break;
      case ServingRequest::Kind::kIncr: ++incrs; break;
      case ServingRequest::Kind::kGet: ++gets; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(puts) / kDraws, 0.20, 0.02);
  EXPECT_NEAR(static_cast<double>(incrs) / kDraws, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(gets) / kDraws, 0.70, 0.02);
}

TEST(ServingTrafficTest, RejectsImpossibleMix) {
  ServingMix mix;
  mix.put_pct = 80;
  mix.incr_pct = 30;  // sums past 100
  EXPECT_THROW(ServingTraffic(1, 0, 64, mix), Error);
}

TEST(ServingTrafficTest, HotKeysAreScatteredNotContiguous) {
  // The scatter permutation must spread the hot ranks across the key space:
  // the two hottest keys of a seeded stream should not be adjacent (which is
  // what sharding by key % n_pes would punish).
  ServingTraffic traffic(5, 0, 1024, ServingMix{});
  std::vector<int> hits(1024, 0);
  for (int i = 0; i < 20000; ++i) ++hits[traffic.next().key];
  std::size_t top1 = 0, top2 = 1;
  if (hits[1] > hits[0]) std::swap(top1, top2);
  for (std::size_t k = 2; k < hits.size(); ++k) {
    if (hits[k] > hits[top1]) {
      top2 = top1;
      top1 = k;
    } else if (hits[k] > hits[top2]) {
      top2 = k;
    }
  }
  const std::size_t gap = top1 > top2 ? top1 - top2 : top2 - top1;
  EXPECT_GT(gap, 1u);
}

}  // namespace
}  // namespace xbgas
