// CounterRegistry semantics plus the collect_counters aggregation contract:
// every registry value equals the sum (or max) of the raw stat fields it
// claims to aggregate, on a real machine doing real RMA.

#include <gtest/gtest.h>

#include "json_checker.hpp"
#include "trace/collect.hpp"
#include "trace/counters.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

TEST(CounterRegistryTest, SetAddGetRoundTrip) {
  CounterRegistry reg;
  EXPECT_FALSE(reg.get("missing").has_value());
  reg.set("a.b", 7);
  reg.add("a.b", 3);
  reg.add("fresh", 4);
  EXPECT_EQ(reg.get("a.b"), 10u);
  EXPECT_EQ(reg.get("fresh"), 4u);
  reg.set("a.b", 1);
  EXPECT_EQ(reg.get("a.b"), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(CounterRegistryTest, PreservesInsertionOrder) {
  CounterRegistry reg;
  reg.set("zulu", 1);
  reg.set("alpha", 2);
  reg.add("mike", 3);
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "zulu");
  EXPECT_EQ(names[1], "alpha");
  EXPECT_EQ(names[2], "mike");
}

TEST(CounterRegistryTest, JsonIsStrictlyValid) {
  CounterRegistry reg;
  reg.set("olb.hits", 12);
  reg.set("net.bytes", 345678);
  std::string error;
  const auto doc = testjson::parse(reg.json(), &error);
  ASSERT_NE(doc, nullptr) << error;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->get("olb.hits")->number(), 12.0);
  EXPECT_EQ(doc->get("net.bytes")->number(), 345678.0);
}

TEST(CounterRegistryTest, EmptyJsonIsValid) {
  const auto doc = testjson::parse(CounterRegistry{}.json());
  ASSERT_NE(doc, nullptr);
  EXPECT_TRUE(doc->object().empty());
}

class CollectCountersTest : public ::testing::Test {
 protected:
  // 4 PEs in a ring so hop counts are nontrivial; tracing on so the
  // trace.* counters are live too.
  MachineConfig config() {
    MachineConfig c;
    c.n_pes = 4;
    c.topology_name = "ring";
    c.trace.enabled = true;
    return c;
  }

  void run_workload(Machine& machine) {
    machine.run([](PeContext& pe) {
      xbrtime_init();
      auto* buf = static_cast<std::uint64_t*>(
          xbrtime_malloc(64 * sizeof(std::uint64_t)));
      std::uint64_t local[64] = {};
      const int me = pe.rank();
      const int right = (me + 1) % pe.n_pes();
      for (int rep = 0; rep < 3; ++rep) {
        xbr_put(buf, local, 64, 1, right);
        xbr_get(local, buf, 16, 1, right);
        xbrtime_barrier();
      }
      xbrtime_free(buf);
      xbrtime_close();
    });
  }
};

TEST_F(CollectCountersTest, AggregatesMatchRawStatFields) {
  Machine machine(config());
  run_workload(machine);
  const CounterRegistry reg = collect_counters(machine);

  std::uint64_t olb_lookups = 0, olb_hits = 0, olb_misses = 0, olb_local = 0;
  std::uint64_t l1_hits = 0, l1_misses = 0, l1_evictions = 0;
  std::uint64_t tlb_accesses = 0;
  for (int r = 0; r < machine.n_pes(); ++r) {
    const auto& olb = machine.pe(r).olb().stats();
    olb_lookups += olb.lookups;
    olb_hits += olb.hits;
    olb_misses += olb.misses;
    olb_local += olb.local_shortcuts;
    const auto& l1 = machine.pe(r).cache().l1().stats();
    l1_hits += l1.hits;
    l1_misses += l1.misses;
    l1_evictions += l1.evictions;
    tlb_accesses += machine.pe(r).cache().tlb().stats().accesses;
  }
  EXPECT_EQ(reg.get("olb.lookups"), olb_lookups);
  EXPECT_EQ(reg.get("olb.hits"), olb_hits);
  EXPECT_EQ(reg.get("olb.misses"), olb_misses);
  EXPECT_EQ(reg.get("olb.local_shortcuts"), olb_local);
  EXPECT_EQ(reg.get("cache.l1.hits"), l1_hits);
  EXPECT_EQ(reg.get("cache.l1.misses"), l1_misses);
  EXPECT_EQ(reg.get("cache.l1.evictions"), l1_evictions);
  EXPECT_EQ(reg.get("cache.tlb.accesses"), tlb_accesses);

  const NetTotals net = machine.network().totals();
  EXPECT_EQ(reg.get("net.messages"), net.messages);
  EXPECT_EQ(reg.get("net.bytes"), net.bytes);
  EXPECT_EQ(reg.get("net.puts"), net.puts);
  EXPECT_EQ(reg.get("net.gets"), net.gets);
  EXPECT_EQ(reg.get("net.hops"), net.hops);
  EXPECT_EQ(reg.get("net.phases"), net.phases);
  EXPECT_EQ(reg.get("net.stall_cycles"), net.stall_cycles);

  EXPECT_EQ(reg.get("cycles.max"), machine.max_cycles());
  EXPECT_EQ(reg.get("machine.pes"), 4u);
  EXPECT_EQ(reg.get("trace.enabled"), 1u);
  EXPECT_EQ(reg.get("trace.recorded"), machine.tracer().total_recorded());
}

TEST_F(CollectCountersTest, OlbHitsPlusMissesEqualRemoteRmaCount) {
  // The acceptance invariant: every remote RMA performs exactly one OLB
  // translation, so OLB hits + misses == network messages from RMA.
  Machine machine(config());
  run_workload(machine);
  const CounterRegistry reg = collect_counters(machine);
  EXPECT_EQ(*reg.get("olb.hits") + *reg.get("olb.misses"),
            *reg.get("net.messages"));
  // This workload never misses: every peer segment is OLB-resident.
  EXPECT_EQ(*reg.get("olb.misses"), 0u);
  // 4 PEs x 3 reps x (1 put + 1 get).
  EXPECT_EQ(*reg.get("net.messages"), 24u);
  EXPECT_EQ(*reg.get("net.puts"), 12u);
  EXPECT_EQ(*reg.get("net.gets"), 12u);
}

TEST_F(CollectCountersTest, HopTotalsFollowRingTopology) {
  Machine machine(config());
  run_workload(machine);
  const CounterRegistry reg = collect_counters(machine);
  // Right-neighbour traffic on a 4-ring is always 1 hop per message.
  EXPECT_EQ(*reg.get("net.hops"), *reg.get("net.messages"));
}

TEST_F(CollectCountersTest, TracingOffStillCollectsCounters) {
  MachineConfig c = config();
  c.trace.enabled = false;
  Machine machine(c);
  run_workload(machine);
  const CounterRegistry reg = collect_counters(machine);
  EXPECT_EQ(reg.get("trace.enabled"), 0u);
  EXPECT_EQ(reg.get("trace.recorded"), 0u);
  EXPECT_EQ(*reg.get("net.messages"), 24u);
}

}  // namespace
}  // namespace xbgas
