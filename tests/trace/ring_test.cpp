// EventRing: wraparound semantics, drop accounting, and writer-per-PE
// concurrency (the production discipline: 12 PE threads, each the single
// writer of its own ring).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "trace/ring.hpp"
#include "trace/tracer.hpp"

namespace xbgas {
namespace {

TraceEvent make_event(std::uint64_t i) {
  return TraceEvent{.cycles = i,
                    .a = i * 2,
                    .b = i * 3,
                    .kind = EventKind::kOlbHit,
                    .target_pe = static_cast<std::int32_t>(i % 7)};
}

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 2u);
  EXPECT_EQ(EventRing(2).capacity(), 2u);
  EXPECT_EQ(EventRing(3).capacity(), 4u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
  EXPECT_EQ(EventRing(1024).capacity(), 1024u);
}

TEST(EventRingTest, StoresInOrderBelowCapacity) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.stored(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].cycles, i);
    EXPECT_EQ(events[i].a, i * 2);
  }
}

TEST(EventRingTest, WraparoundKeepsNewestDropsOldest) {
  EventRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.stored(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the newest 8, oldest-first.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].cycles, 12 + i);
  }
}

TEST(EventRingTest, ClearResetsEverything) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 9; ++i) ring.push(make_event(i));
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.stored(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(EventRingTest, TwelveConcurrentSingleWriterRings) {
  // The production pattern: 12 PEs, each thread the sole writer of its own
  // ring, all writing simultaneously. Counts and contents must be exact.
  constexpr int kPes = 12;
  constexpr std::uint64_t kEvents = 20'000;
  Tracer tracer(kPes, TraceConfig{.enabled = true, .ring_capacity = 1 << 12});

  std::vector<std::thread> threads;
  threads.reserve(kPes);
  for (int pe = 0; pe < kPes; ++pe) {
    threads.emplace_back([&tracer, pe] {
      EventRing* ring = tracer.ring(pe);
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        TraceEvent e = make_event(i);
        e.target_pe = pe;
        ring->push(e);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(tracer.total_recorded(), kPes * kEvents);
  for (int pe = 0; pe < kPes; ++pe) {
    const EventRing* ring = tracer.ring(pe);
    EXPECT_EQ(ring->recorded(), kEvents);
    EXPECT_EQ(ring->stored(), ring->capacity());
    const auto events = ring->snapshot();
    ASSERT_EQ(events.size(), ring->capacity());
    // Newest events survived, in order, and belong to this PE only.
    const std::uint64_t first = kEvents - ring->capacity();
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].cycles, first + i);
      EXPECT_EQ(events[i].target_pe, pe);
    }
  }
}

TEST(EventRingTest, ConcurrentReaderSeesConsistentCounts) {
  // A reader polling while the writer streams: counters must be monotone
  // and the snapshot must never exceed capacity or crash.
  EventRing ring(1 << 10);
  std::atomic<bool> done{false};
  std::uint64_t last_seen = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t n = ring.recorded();
      EXPECT_GE(n, last_seen);
      last_seen = n;
      EXPECT_LE(ring.snapshot().size(), ring.capacity());
    }
  });
  for (std::uint64_t i = 0; i < 200'000; ++i) ring.push(make_event(i));
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.recorded(), 200'000u);
}

TEST(TracerTest, DisabledTracerHasNoRings) {
  Tracer tracer(4, TraceConfig{.enabled = false});
  EXPECT_FALSE(tracer.enabled());
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(tracer.ring(pe), nullptr);
  }
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.total_dropped(), 0u);
}

}  // namespace
}  // namespace xbgas
