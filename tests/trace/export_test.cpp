// Exporter schema tests: the Chrome trace_event document must be strict
// JSON with one named track per PE, matched begin/end spans, and the
// required per-event fields; the CSV must be rectangular with the declared
// header.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "json_checker.hpp"
#include "trace/export_chrome.hpp"
#include "trace/export_csv.hpp"
#include "trace/tracer.hpp"

namespace xbgas {
namespace {

using testjson::parse;
using testjson::ValuePtr;

/// A tracer with a deterministic synthetic history on every PE: one stage
/// wrapping one put and one barrier, plus an OLB hit instant.
Tracer make_synthetic_tracer(int n_pes) {
  Tracer tracer(n_pes, TraceConfig{.enabled = true, .ring_capacity = 64});
  for (int pe = 0; pe < n_pes; ++pe) {
    EventRing* ring = tracer.ring(pe);
    if (ring == nullptr) continue;  // unreachable; keeps the deref provably safe
    const auto push = [&](std::uint64_t at, EventKind k, std::int32_t target,
                          std::uint64_t a, std::uint64_t b) {
      ring->push(TraceEvent{
          .cycles = at, .a = a, .b = b, .kind = k, .target_pe = target});
    };
    push(10, EventKind::kStageBegin, -1, 0, 1);
    push(11, EventKind::kRmaPutIssue, (pe + 1) % n_pes, 256, 0);
    push(12, EventKind::kOlbHit, -1, static_cast<std::uint64_t>(pe) + 1, 0);
    push(90, EventKind::kRmaPutComplete, (pe + 1) % n_pes, 256, 0);
    push(91, EventKind::kBarrierEnter, -1, 0, 2);
    push(120, EventKind::kBarrierExit, -1, 0, 2);
    push(120, EventKind::kStageEnd, -1, 0, 1);
  }
  return tracer;
}

TEST(ChromeExportTest, ProducesStrictlyValidJson) {
  const Tracer tracer = make_synthetic_tracer(3);
  std::string error;
  const ValuePtr doc = parse(chrome_trace_json(tracer), &error);
  ASSERT_NE(doc, nullptr) << error;
  ASSERT_TRUE(doc->is_object());
  const ValuePtr events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_NE(doc->get("displayTimeUnit"), nullptr);
}

TEST(ChromeExportTest, EveryEventHasRequiredFields) {
  const Tracer tracer = make_synthetic_tracer(2);
  const ValuePtr doc = parse(chrome_trace_json(tracer));
  ASSERT_NE(doc, nullptr);
  for (const ValuePtr& e : doc->get("traceEvents")->array()) {
    ASSERT_TRUE(e->is_object());
    ASSERT_NE(e->get("name"), nullptr);
    ASSERT_NE(e->get("ph"), nullptr);
    ASSERT_NE(e->get("pid"), nullptr);
    const std::string ph = e->get("ph")->str();
    // Non-metadata events must carry a timestamp and a thread (track) id.
    if (ph != "M") {
      ASSERT_NE(e->get("ts"), nullptr);
      ASSERT_NE(e->get("tid"), nullptr);
    }
    if (ph == "X") {
      ASSERT_NE(e->get("dur"), nullptr);
      EXPECT_GE(e->get("dur")->number(), 0.0);
    }
  }
}

TEST(ChromeExportTest, OneNamedTrackPerPe) {
  constexpr int kPes = 5;
  const Tracer tracer = make_synthetic_tracer(kPes);
  const ValuePtr doc = parse(chrome_trace_json(tracer));
  ASSERT_NE(doc, nullptr);

  std::set<int> named_tracks;
  std::set<int> event_tracks;
  for (const ValuePtr& e : doc->get("traceEvents")->array()) {
    const std::string ph = e->get("ph")->str();
    if (ph == "M" && e->get("name")->str() == "thread_name") {
      named_tracks.insert(static_cast<int>(e->get("tid")->number()));
    } else if (ph != "M") {
      event_tracks.insert(static_cast<int>(e->get("tid")->number()));
    }
  }
  EXPECT_EQ(named_tracks.size(), kPes);
  EXPECT_EQ(event_tracks.size(), kPes);
  for (int pe = 0; pe < kPes; ++pe) {
    EXPECT_TRUE(named_tracks.count(pe)) << "no thread_name for PE " << pe;
  }
}

TEST(ChromeExportTest, PairsBeginEndIntoSpans) {
  const Tracer tracer = make_synthetic_tracer(1);
  const ValuePtr doc = parse(chrome_trace_json(tracer));
  ASSERT_NE(doc, nullptr);

  int stage_spans = 0, put_spans = 0, barrier_spans = 0, instants = 0;
  for (const ValuePtr& e : doc->get("traceEvents")->array()) {
    const std::string ph = e->get("ph")->str();
    const std::string name = e->get("name")->str();
    if (ph == "X") {
      if (name == "stage") {
        ++stage_spans;
        EXPECT_EQ(e->get("ts")->number(), 10.0);
        EXPECT_EQ(e->get("dur")->number(), 110.0);
      }
      if (name == "rma_put") {
        ++put_spans;
        EXPECT_EQ(e->get("ts")->number(), 11.0);
        EXPECT_EQ(e->get("dur")->number(), 79.0);
        EXPECT_EQ(e->get("args")->get("target_pe")->number(), 0.0);
      }
      if (name == "barrier") ++barrier_spans;
    }
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(stage_spans, 1);
  EXPECT_EQ(put_spans, 1);
  EXPECT_EQ(barrier_spans, 1);
  EXPECT_EQ(instants, 1);  // the OLB hit
}

TEST(ChromeExportTest, OrphanedEndDegradesToInstantNotInvalidJson) {
  Tracer tracer(1, TraceConfig{.enabled = true, .ring_capacity = 16});
  EventRing* ring = tracer.ring(0);
  ASSERT_NE(ring, nullptr);
  // An end with no begin (as after ring wraparound) and a begin never closed.
  ring->push(TraceEvent{
      .cycles = 5, .kind = EventKind::kBarrierExit, .target_pe = -1});
  ring->push(TraceEvent{
      .cycles = 9, .kind = EventKind::kStageBegin, .target_pe = -1});
  std::string error;
  const ValuePtr doc = parse(chrome_trace_json(tracer), &error);
  ASSERT_NE(doc, nullptr) << error;
  int instants = 0;
  for (const ValuePtr& e : doc->get("traceEvents")->array()) {
    if (e->get("ph")->str() == "i") ++instants;
  }
  EXPECT_EQ(instants, 2);
}

TEST(ChromeExportTest, DisabledTracerStillExportsValidEmptyDocument) {
  Tracer tracer(4, TraceConfig{.enabled = false});
  std::string error;
  const ValuePtr doc = parse(chrome_trace_json(tracer), &error);
  ASSERT_NE(doc, nullptr) << error;
  for (const ValuePtr& e : doc->get("traceEvents")->array()) {
    EXPECT_EQ(e->get("ph")->str(), "M");
  }
}

TEST(CsvExportTest, RectangularWithHeader) {
  const Tracer tracer = make_synthetic_tracer(2);
  std::istringstream in(csv_trace(tracer));
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "pe,cycles,event,target_pe,a,b");
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5) << line;
  }
  EXPECT_EQ(rows, 2 * 7);  // 2 PEs x 7 synthetic events
}

}  // namespace
}  // namespace xbgas
