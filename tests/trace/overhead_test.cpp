// Disabled-path cost guard. The contract (DESIGN.md §Observability): with
// tracing off, a record() call is one predictable branch — so a large batch
// of disabled calls must complete in a time that only a pathological
// regression (allocation, locking, atomic RMW per call) could exceed.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "trace/channel.hpp"
#include "trace/tracer.hpp"

namespace xbgas {
namespace {

/// Optimization barrier: forces the compiler to assume `p` is read and
/// modified, so the disabled record() loop cannot be deleted wholesale.
inline void clobber(void* p) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : "+r"(p) : : "memory");
#else
  (void)p;
#endif
}

TEST(TraceOverheadTest, DisabledChannelIsUnboundAndInert) {
  TraceChannel channel;
  EXPECT_FALSE(channel.enabled());
  // Must be callable without a ring or clock attached.
  channel.record(EventKind::kOlbHit, 3, 1, 2);
  channel.record_at(99, EventKind::kBarrierExit);
  EXPECT_FALSE(channel.enabled());
}

TEST(TraceOverheadTest, DisabledRecordStaysUnderBudget) {
  // 20M disabled calls. At one branch per call this is a few tens of
  // milliseconds on any machine; the one-second ceiling is ~50x headroom,
  // loose enough for loaded CI but tight enough to catch a per-call lock,
  // heap allocation, or string formatting sneaking onto the disabled path.
  constexpr std::uint64_t kCalls = 20'000'000;
  TraceChannel channel;

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    clobber(&channel);
    channel.record(EventKind::kCacheAccess, -1, i, i);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  EXPECT_LT(ms, 1000) << "disabled-path record() cost regressed: " << ms
                      << " ms for " << kCalls << " calls";
  EXPECT_FALSE(channel.enabled());
}

TEST(TraceOverheadTest, DisabledMachineAllocatesNoRings) {
  // Tracer with tracing off must not allocate per-PE rings at all — the
  // disabled path costs nothing at machine construction either.
  Tracer tracer(64, TraceConfig{.enabled = false, .ring_capacity = 1 << 20});
  for (int pe = 0; pe < 64; ++pe) {
    ASSERT_EQ(tracer.ring(pe), nullptr);
  }
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(TraceOverheadTest, EnabledRecordIsBoundedToo) {
  // Sanity ceiling on the enabled path as well: ring push is a store plus
  // two relaxed/release counter ops, so 5M calls should stay well under a
  // second even on slow CI.
  constexpr std::uint64_t kCalls = 5'000'000;
  SimClock clock;
  EventRing ring(1 << 12);
  TraceChannel channel;
  channel.bind(&ring, &clock);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    channel.record(EventKind::kOlbHit, -1, i, i);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(ring.recorded(), kCalls);
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  EXPECT_LT(ms, 2000) << "enabled-path record() cost: " << ms << " ms";
}

}  // namespace
}  // namespace xbgas
