#pragma once

// Minimal strict JSON parser for exporter-schema tests. Supports the full
// JSON grammar the exporters can emit (objects, arrays, strings without
// escapes beyond \" and \\, integers, doubles, booleans, null) and rejects
// trailing commas, unterminated values, and garbage after the document —
// the failure modes a hand-rolled string emitter is likely to have.

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace xbgas::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;
using Object = std::map<std::string, ValuePtr>;
using Array = std::vector<ValuePtr>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v;

  bool is_object() const { return std::holds_alternative<Object>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }

  const Object& object() const { return std::get<Object>(v); }
  const Array& array() const { return std::get<Array>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }

  /// Object member or nullptr.
  ValuePtr get(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = object().find(key);
    return it == object().end() ? nullptr : it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  /// Parse the whole document; returns nullptr (and sets error()) on any
  /// syntax violation, including trailing garbage.
  ValuePtr parse() {
    ValuePtr v = parse_value();
    if (v == nullptr) return nullptr;
    skip_ws();
    if (pos_ != s_.size()) {
      return fail("trailing characters after document");
    }
    return v;
  }

  const std::string& error() const { return error_; }

 private:
  ValuePtr fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return nullptr;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ValuePtr parse_value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return std::make_shared<Value>(Value{true});
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return std::make_shared<Value>(Value{false});
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_shared<Value>(Value{nullptr});
    }
    return fail("unexpected character");
  }

  ValuePtr parse_object() {
    if (!consume('{')) return fail("expected '{'");
    Object obj;
    skip_ws();
    if (consume('}')) return std::make_shared<Value>(Value{std::move(obj)});
    while (true) {
      skip_ws();
      ValuePtr key = parse_string();
      if (key == nullptr) return nullptr;
      if (!consume(':')) return fail("expected ':'");
      ValuePtr val = parse_value();
      if (val == nullptr) return nullptr;
      obj[key->str()] = val;
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    return std::make_shared<Value>(Value{std::move(obj)});
  }

  ValuePtr parse_array() {
    if (!consume('[')) return fail("expected '['");
    Array arr;
    skip_ws();
    if (consume(']')) return std::make_shared<Value>(Value{std::move(arr)});
    while (true) {
      ValuePtr val = parse_value();
      if (val == nullptr) return nullptr;
      arr.push_back(val);
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    return std::make_shared<Value>(Value{std::move(arr)});
  }

  ValuePtr parse_string() {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return std::make_shared<Value>(Value{std::move(out)});
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return fail("bad escape");
        const char e = s_[pos_ + 1];
        if (e == '"' || e == '\\' || e == '/') {
          out += e;
        } else if (e == 'n') {
          out += '\n';
        } else if (e == 't') {
          out += '\t';
        } else {
          return fail("unsupported escape");
        }
        pos_ += 2;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  ValuePtr parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ == start) return fail("bad number");
    return std::make_shared<Value>(Value{std::stod(s_.substr(start, pos_ - start))});
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

inline ValuePtr parse(const std::string& text, std::string* error = nullptr) {
  Parser p(text);
  ValuePtr v = p.parse();
  if (v == nullptr && error != nullptr) *error = p.error();
  return v;
}

}  // namespace xbgas::testjson
