// End-to-end tracing on a real machine: a traced broadcast must produce
// exactly ceil(log2 n) stage-begin events per PE, RMA issue/complete events
// must pair up, the Chrome export of a real run must be valid JSON with one
// track per PE, and tracing must not perturb the deterministic modeled time.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "collectives/collectives.hpp"
#include "common/bits.hpp"
#include "json_checker.hpp"
#include "trace/collect.hpp"
#include "trace/export_chrome.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

MachineConfig traced_config(int n_pes) {
  MachineConfig config;
  config.n_pes = n_pes;
  config.trace.enabled = true;
  return config;
}

void run_broadcast(Machine& machine) {
  machine.run([](PeContext&) {
    xbrtime_init();
    auto* dest = static_cast<long*>(xbrtime_malloc(32 * sizeof(long)));
    std::vector<long> src(32, 42);
    xbrtime_barrier();
    broadcast(dest, src.data(), 32, 1, /*root=*/0);
    xbrtime_barrier();
    xbrtime_free(dest);
    xbrtime_close();
  });
}

std::vector<TraceEvent> events_of(const Machine& machine, int pe) {
  const EventRing* ring = machine.tracer().ring(pe);
  return ring != nullptr ? ring->snapshot() : std::vector<TraceEvent>{};
}

TEST(TraceIntegrationTest, BroadcastEmitsCeilLog2StagesPerPe) {
  // The ISSUE.md acceptance assertion: n = 12 -> ceil(log2 12) = 4 stages,
  // and *every* PE records every stage (the stage markers sit outside the
  // sender/receiver guard).
  constexpr int kPes = 12;
  const auto kStages = ceil_log2(std::uint64_t{kPes});
  ASSERT_EQ(kStages, 4u);

  Machine machine(traced_config(kPes));
  run_broadcast(machine);

  for (int pe = 0; pe < kPes; ++pe) {
    const auto events = events_of(machine, pe);
    ASSERT_FALSE(events.empty()) << "PE " << pe << " recorded nothing";
    std::uint64_t begins = 0, ends = 0;
    std::set<std::uint64_t> stage_indices;
    for (const TraceEvent& e : events) {
      if (e.kind == EventKind::kStageBegin) {
        ++begins;
        stage_indices.insert(e.a);
      }
      if (e.kind == EventKind::kStageEnd) ++ends;
    }
    EXPECT_EQ(begins, kStages) << "PE " << pe;
    EXPECT_EQ(ends, kStages) << "PE " << pe;
    EXPECT_EQ(stage_indices.size(), kStages)
        << "PE " << pe << ": stage indices not distinct";
    EXPECT_TRUE(stage_indices.count(0)) << "PE " << pe;
    EXPECT_TRUE(stage_indices.count(kStages - 1)) << "PE " << pe;
  }
}

TEST(TraceIntegrationTest, RmaIssueAndCompleteEventsPairUp) {
  constexpr int kPes = 6;
  Machine machine(traced_config(kPes));
  run_broadcast(machine);

  std::uint64_t put_issues = 0, put_completes = 0;
  for (int pe = 0; pe < kPes; ++pe) {
    for (const TraceEvent& e : events_of(machine, pe)) {
      if (e.kind == EventKind::kRmaPutIssue) {
        ++put_issues;
        EXPECT_GE(e.target_pe, 0);
        EXPECT_LT(e.target_pe, kPes);
        EXPECT_NE(e.target_pe, pe) << "local puts must not be traced";
        EXPECT_EQ(e.a, 32 * sizeof(long)) << "bytes payload";
      }
      if (e.kind == EventKind::kRmaPutComplete) ++put_completes;
    }
  }
  // A 6-PE binomial broadcast moves data over exactly n - 1 = 5 remote puts.
  EXPECT_EQ(put_issues, 5u);
  EXPECT_EQ(put_completes, put_issues);
}

TEST(TraceIntegrationTest, TracedEventsMatchOlbCounters) {
  constexpr int kPes = 5;
  Machine machine(traced_config(kPes));
  run_broadcast(machine);

  std::uint64_t hit_events = 0, miss_events = 0;
  for (int pe = 0; pe < kPes; ++pe) {
    for (const TraceEvent& e : events_of(machine, pe)) {
      if (e.kind == EventKind::kOlbHit) ++hit_events;
      if (e.kind == EventKind::kOlbMiss) ++miss_events;
    }
  }
  const CounterRegistry reg = collect_counters(machine);
  EXPECT_EQ(hit_events, *reg.get("olb.hits"));
  EXPECT_EQ(miss_events, *reg.get("olb.misses"));
  // Every remote RMA performs exactly one OLB translation.
  EXPECT_EQ(hit_events + miss_events, *reg.get("net.messages"));
}

TEST(TraceIntegrationTest, ChromeExportOfRealRunIsLoadable) {
  constexpr int kPes = 12;
  Machine machine(traced_config(kPes));
  run_broadcast(machine);

  std::string error;
  const auto doc = testjson::parse(chrome_trace_json(machine.tracer()), &error);
  ASSERT_NE(doc, nullptr) << error;

  std::set<int> tracks;
  for (const auto& e : doc->get("traceEvents")->array()) {
    if (e->get("ph")->str() != "M") {
      tracks.insert(static_cast<int>(e->get("tid")->number()));
      EXPECT_GE(e->get("ts")->number(), 0.0);
    }
  }
  EXPECT_EQ(tracks.size(), kPes) << "expected one event track per PE";
}

TEST(TraceIntegrationTest, TracingDoesNotPerturbModeledTime) {
  // The observability layer reads the clock; it must never advance it.
  constexpr int kPes = 8;
  MachineConfig off = traced_config(kPes);
  off.trace.enabled = false;

  Machine traced(traced_config(kPes));
  Machine plain(off);
  run_broadcast(traced);
  run_broadcast(plain);

  EXPECT_GT(traced.tracer().total_recorded(), 0u);
  EXPECT_EQ(plain.tracer().total_recorded(), 0u);
  EXPECT_EQ(traced.max_cycles(), plain.max_cycles());
  for (int pe = 0; pe < kPes; ++pe) {
    EXPECT_EQ(traced.pe(pe).clock().cycles(), plain.pe(pe).clock().cycles())
        << "PE " << pe;
  }
}

}  // namespace
}  // namespace xbgas
